(* Tests for Pricing, Cost, Flows and Business — the building blocks of
   the §III-A model, checked against hand computations. *)

open Pan_topology
open Pan_econ

let approx = Alcotest.(check (float 1e-9))
let asn = Asn.of_int

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)

let test_pricing_flat_rate () =
  let p = Pricing.flat_rate ~fee:100.0 in
  approx "zero flow" 100.0 (Pricing.charge p 0.0);
  approx "any flow" 100.0 (Pricing.charge p 42.0);
  approx "marginal" 0.0 (Pricing.marginal p 42.0);
  Alcotest.(check bool) "is flat" true (Pricing.is_flat_rate p)

let test_pricing_per_usage () =
  let p = Pricing.per_usage ~unit_price:2.5 in
  approx "linear" 25.0 (Pricing.charge p 10.0);
  approx "marginal" 2.5 (Pricing.marginal p 10.0);
  Alcotest.(check bool) "not flat" false (Pricing.is_flat_rate p)

let test_pricing_congestion () =
  let p = Pricing.congestion ~alpha:0.5 ~beta:2.0 in
  approx "superlinear" 50.0 (Pricing.charge p 10.0);
  approx "marginal grows" 10.0 (Pricing.marginal p 10.0);
  try
    ignore (Pricing.congestion ~alpha:1.0 ~beta:1.0);
    Alcotest.fail "beta = 1 accepted"
  with Invalid_argument _ -> ()

let test_pricing_free () =
  approx "free" 0.0 (Pricing.charge Pricing.free 1000.0)

let test_pricing_validation () =
  (try
     ignore (Pricing.make ~alpha:(-1.0) ~beta:0.0);
     Alcotest.fail "negative alpha accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Pricing.charge (Pricing.per_usage ~unit_price:1.0) (-2.0));
    Alcotest.fail "negative flow accepted"
  with Invalid_argument _ -> ()

let qcheck_pricing_monotone =
  QCheck.Test.make ~count:200 ~name:"pricing is monotone in flow"
    QCheck.(quad (float_range 0.0 5.0) (float_range 0.0 3.0)
              (float_range 0.0 100.0) (float_range 0.0 50.0))
    (fun (alpha, beta, f, df) ->
      let p = Pricing.make ~alpha ~beta in
      Pricing.charge p f <= Pricing.charge p (f +. df) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)

let test_cost_zero_linear_affine () =
  approx "zero" 0.0 (Cost.eval Cost.zero 5.0);
  approx "linear" 1.5 (Cost.eval (Cost.linear ~rate:0.3) 5.0);
  approx "affine" 11.5 (Cost.eval (Cost.affine ~base:10.0 ~rate:0.3) 5.0)

let test_cost_power () =
  approx "power" 50.0 (Cost.eval (Cost.power ~alpha:0.5 ~beta:2.0) 10.0);
  approx "power beta 0" 0.5 (Cost.eval (Cost.power ~alpha:0.5 ~beta:0.0) 10.0)

let test_cost_piecewise () =
  let c = Cost.piecewise_linear [ (10.0, 1.0); (20.0, 2.0) ] in
  approx "first segment" 5.0 (Cost.eval c 5.0);
  approx "at breakpoint" 10.0 (Cost.eval c 10.0);
  approx "second segment" 20.0 (Cost.eval c 15.0);
  approx "beyond last breakpoint" 70.0 (Cost.eval c 40.0)

let test_cost_piecewise_validation () =
  (try
     ignore (Cost.piecewise_linear []);
     Alcotest.fail "empty accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Cost.piecewise_linear [ (10.0, 1.0); (5.0, 1.0) ]);
    Alcotest.fail "non-increasing breakpoints accepted"
  with Invalid_argument _ -> ()

let qcheck_cost_monotone =
  QCheck.Test.make ~count:200 ~name:"internal cost is monotone"
    QCheck.(pair (float_range 0.0 50.0) (float_range 0.0 20.0))
    (fun (f, df) ->
      let c = Cost.piecewise_linear [ (10.0, 0.5); (30.0, 2.0) ] in
      Cost.eval c f <= Cost.eval c (f +. df) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Flows                                                               *)

let test_flows_basics () =
  let f = Flows.of_list [ (asn 1, 10.0); (asn 2, 6.0) ] in
  approx "flow to 1" 10.0 (Flows.flow_to f (asn 1));
  approx "unlisted" 0.0 (Flows.flow_to f (asn 99));
  approx "total is half the sum" 8.0 (Flows.total f)

let test_flows_set_add () =
  let f = Flows.of_list [ (asn 1, 10.0) ] in
  let f = Flows.set f (asn 2) 4.0 in
  approx "set" 4.0 (Flows.flow_to f (asn 2));
  let f = Flows.add f (asn 1) (-3.0) in
  approx "add negative" 7.0 (Flows.flow_to f (asn 1));
  let f = Flows.add f (asn 1) (-100.0) in
  approx "clamped at zero" 0.0 (Flows.flow_to f (asn 1))

let test_flows_validation () =
  (try
     ignore (Flows.of_list [ (asn 1, -1.0) ]);
     Alcotest.fail "negative accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Flows.of_list [ (asn 1, 1.0); (asn 1, 2.0) ]);
    Alcotest.fail "duplicate accepted"
  with Invalid_argument _ -> ()

let test_flows_stub () =
  let s = Flows.stub (asn 5) in
  Alcotest.(check bool) "stub flag" true (Flows.is_stub s);
  Alcotest.(check bool) "real AS not stub" false (Flows.is_stub (asn 5));
  Alcotest.(check bool) "stubs distinct per AS" false
    (Asn.equal (Flows.stub (asn 5)) (Flows.stub (asn 6)))

let test_flows_neighbors_fold () =
  let f = Flows.of_list [ (asn 3, 1.0); (asn 1, 2.0); (asn 2, 0.0) ] in
  Alcotest.(check (list int)) "nonzero neighbors ascending" [ 1; 3 ]
    (List.map Asn.to_int (Flows.neighbors f));
  let sum = Flows.fold (fun _ v acc -> acc +. v) f 0.0 in
  approx "fold sums" 3.0 sum

(* ------------------------------------------------------------------ *)
(* Business (Eq. 1)                                                    *)

(* The paper's example after Eq. 1: D with provider A, customer H.
   Revenue must cover provider charges plus internal cost. *)
let d_profile () =
  Business.create ~asn:(asn 4)
    ~internal_cost:(Cost.linear ~rate:0.1)
    ~provider_prices:[ (asn 1, Pricing.per_usage ~unit_price:1.0) ]
    ~customer_prices:
      [
        (asn 8, Pricing.per_usage ~unit_price:1.2);
        (Flows.stub (asn 4), Pricing.per_usage ~unit_price:2.0);
      ]
    ()

let test_business_revenue_cost_utility () =
  let b = d_profile () in
  let f =
    Flows.of_list
      [ (asn 1, 10.0); (asn 8, 6.0); (Flows.stub (asn 4), 4.0) ]
  in
  (* revenue = 1.2*6 + 2*4 = 15.2; provider = 1*10 = 10;
     internal = 0.1 * (20/2) = 1.0; utility = 15.2 - 11 = 4.2 *)
  approx "revenue" 15.2 (Business.revenue b f);
  approx "cost" 11.0 (Business.cost b f);
  approx "utility" 4.2 (Business.utility b f)

let test_business_profit_condition () =
  (* the inequality after Eq. 1: p_DH + p_DΓ > p_AD + i_D iff U_D > 0 *)
  let b = d_profile () in
  let loss =
    Flows.of_list [ (asn 1, 30.0); (asn 8, 5.0); (Flows.stub (asn 4), 2.0) ]
  in
  Alcotest.(check bool) "loss-making flows" true (Business.utility b loss < 0.0)

let test_business_peers_free () =
  (* flow to a peer neither earns nor costs link charges, only internal *)
  let b = d_profile () in
  let without = Flows.of_list [ (asn 8, 6.0) ] in
  let with_peer = Flows.of_list [ (asn 8, 6.0); (asn 5, 10.0) ] in
  let diff = Business.utility b without -. Business.utility b with_peer in
  (* only extra internal cost: 0.1 * (10/2) = 0.5 *)
  approx "peer traffic costs only internally" 0.5 diff

let test_business_builders () =
  let b = d_profile () in
  let b = Business.with_customer b (asn 9) (Pricing.flat_rate ~fee:7.0) in
  let f = Flows.of_list [ (asn 9, 1.0) ] in
  approx "new customer billed" 7.0 (Business.revenue b f);
  let b = Business.with_internal_cost b Cost.zero in
  approx "no internal cost" 7.0 (Business.utility b f)

let test_business_validation () =
  try
    ignore
      (Business.create ~asn:(asn 1)
         ~provider_prices:[ (asn 2, Pricing.free) ]
         ~customer_prices:[ (asn 2, Pricing.free) ]
         ());
    Alcotest.fail "provider and customer overlap accepted"
  with Invalid_argument _ -> ()

let test_business_of_graph () =
  let g = Gen.fig1 () in
  let d = Gen.fig1_asn 'D' in
  let b = Business.of_graph g d in
  Alcotest.(check (list int)) "providers from graph"
    [ Asn.to_int (Gen.fig1_asn 'A') ]
    (List.map Asn.to_int (Business.providers b));
  Alcotest.(check bool) "stub included as customer" true
    (List.exists (Asn.equal (Flows.stub d)) (Business.customers b))

let suite =
  [
    Alcotest.test_case "pricing flat rate" `Quick test_pricing_flat_rate;
    Alcotest.test_case "pricing per usage" `Quick test_pricing_per_usage;
    Alcotest.test_case "pricing congestion" `Quick test_pricing_congestion;
    Alcotest.test_case "pricing free" `Quick test_pricing_free;
    Alcotest.test_case "pricing validation" `Quick test_pricing_validation;
    QCheck_alcotest.to_alcotest qcheck_pricing_monotone;
    Alcotest.test_case "cost zero/linear/affine" `Quick
      test_cost_zero_linear_affine;
    Alcotest.test_case "cost power" `Quick test_cost_power;
    Alcotest.test_case "cost piecewise" `Quick test_cost_piecewise;
    Alcotest.test_case "cost piecewise validation" `Quick
      test_cost_piecewise_validation;
    QCheck_alcotest.to_alcotest qcheck_cost_monotone;
    Alcotest.test_case "flows basics" `Quick test_flows_basics;
    Alcotest.test_case "flows set/add" `Quick test_flows_set_add;
    Alcotest.test_case "flows validation" `Quick test_flows_validation;
    Alcotest.test_case "flows stub" `Quick test_flows_stub;
    Alcotest.test_case "flows neighbors/fold" `Quick
      test_flows_neighbors_fold;
    Alcotest.test_case "business Eq.1 hand-check" `Quick
      test_business_revenue_cost_utility;
    Alcotest.test_case "business profit condition" `Quick
      test_business_profit_condition;
    Alcotest.test_case "peer traffic settlement-free" `Quick
      test_business_peers_free;
    Alcotest.test_case "business builders" `Quick test_business_builders;
    Alcotest.test_case "business validation" `Quick test_business_validation;
    Alcotest.test_case "business of_graph" `Quick test_business_of_graph;
  ]
