(* Tests for Pan_numerics.Integrate against closed-form integrals. *)

open Pan_numerics

let loose = Alcotest.(check (float 1e-6))

let test_trapezoid_linear () =
  (* trapezoid is exact for linear functions *)
  loose "∫ x on [0,2]" 2.0 (Integrate.trapezoid ~n:4 (fun x -> x) 0.0 2.0)

let test_trapezoid_invalid () =
  Alcotest.check_raises "n <= 0" (Invalid_argument "Integrate.trapezoid: n <= 0")
    (fun () -> ignore (Integrate.trapezoid ~n:0 Fun.id 0.0 1.0))

let test_simpson_polynomial () =
  (* Simpson is exact for cubics *)
  loose "∫ x^3 on [0,1]" 0.25
    (Integrate.adaptive_simpson (fun x -> x ** 3.0) 0.0 1.0)

let test_simpson_transcendental () =
  loose "∫ sin on [0,pi]" 2.0 (Integrate.adaptive_simpson sin 0.0 Float.pi);
  loose "∫ e^x on [0,1]" (exp 1.0 -. 1.0)
    (Integrate.adaptive_simpson exp 0.0 1.0)

let test_simpson_degenerate_and_reversed () =
  loose "empty interval" 0.0 (Integrate.adaptive_simpson sin 1.0 1.0);
  loose "reversed bounds flip sign" (-2.0)
    (Integrate.adaptive_simpson sin Float.pi 0.0)

let test_simpson_piecewise () =
  (* a step function stresses the adaptive subdivision *)
  let f x = if x < 0.5 then 1.0 else 3.0 in
  let v = Integrate.adaptive_simpson ~epsabs:1e-10 f 0.0 1.0 in
  if Float.abs (v -. 2.0) > 1e-3 then Alcotest.failf "step integral %f" v

let test_grid_2d_constant () =
  loose "area" 6.0
    (Integrate.grid_2d ~nx:10 ~ny:10 (fun _ _ -> 1.0) (0.0, 2.0) (0.0, 3.0))

let test_grid_2d_bilinear () =
  (* midpoint rule is exact for bilinear integrands *)
  loose "∫∫ xy over unit square" 0.25
    (Integrate.grid_2d ~nx:8 ~ny:8 (fun x y -> x *. y) (0.0, 1.0) (0.0, 1.0))

let test_grid_2d_indicator () =
  (* the truthful-Nash-product integrand uses an indicator; check the
     half-plane area converges *)
  let v =
    Integrate.grid_2d ~nx:400 ~ny:400
      (fun x y -> if x +. y >= 0.0 then 1.0 else 0.0)
      (-1.0, 1.0) (-1.0, 1.0)
  in
  if Float.abs (v -. 2.0) > 0.02 then Alcotest.failf "half-plane area %f" v

let qcheck_simpson_linearity =
  QCheck.Test.make ~count:100 ~name:"adaptive_simpson is linear in f"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (a, b) ->
      let f x = (a *. x) +. b in
      let v = Integrate.adaptive_simpson f 0.0 2.0 in
      Float.abs (v -. ((2.0 *. a) +. (2.0 *. b))) < 1e-6)

let suite =
  [
    Alcotest.test_case "trapezoid linear" `Quick test_trapezoid_linear;
    Alcotest.test_case "trapezoid invalid" `Quick test_trapezoid_invalid;
    Alcotest.test_case "simpson exact on cubics" `Quick
      test_simpson_polynomial;
    Alcotest.test_case "simpson transcendental" `Quick
      test_simpson_transcendental;
    Alcotest.test_case "simpson degenerate / reversed" `Quick
      test_simpson_degenerate_and_reversed;
    Alcotest.test_case "simpson piecewise" `Quick test_simpson_piecewise;
    Alcotest.test_case "grid_2d constant" `Quick test_grid_2d_constant;
    Alcotest.test_case "grid_2d bilinear exact" `Quick test_grid_2d_bilinear;
    Alcotest.test_case "grid_2d indicator" `Quick test_grid_2d_indicator;
    QCheck_alcotest.to_alcotest qcheck_simpson_linearity;
  ]
