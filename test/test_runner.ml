(* Determinism-equivalence suite for the parallel experiment engine
   (lib/runner).  The engine's contract: results are bit-for-bit identical
   for every pool size — including no pool at all, which takes the purely
   sequential path — because randomness is assigned per chunk index, not
   per worker.  Each ported experiment is asserted equal across
   j ∈ {1, 2, 4, 8} at reduced scale; exception propagation and pool reuse
   (including reuse after a failed run) are exercised explicitly. *)

open Pan_numerics
open Pan_runner
open Pan_topology
open Pan_bosco
open Pan_experiments

let jobs = [ 1; 2; 4; 8 ]

let small_graph =
  lazy
    (let params =
       { Gen.default_params with Gen.n_transit = 20; Gen.n_stub = 60 }
     in
     Gen.graph (Gen.generate ~params ~seed:42 ()))

(* Run [experiment] sequentially (no pool) and on pools of every size in
   [jobs]; all results must be structurally equal. *)
let check_equivalence name experiment =
  let reference = experiment None in
  List.iter
    (fun j ->
      Pool.with_pool ~domains:j (fun pool ->
          let result = experiment (Some pool) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: parallel(%d) = sequential" name j)
            true
            (result = reference)))
    jobs

(* ------------------------------------------------------------------ *)
(* Task primitives                                                     *)

let test_map_reduce_equivalence () =
  check_equivalence "map_reduce float sum" (fun pool ->
      let rng = Rng.create 7 in
      Task.map_reduce ?pool ~rng ~n:100 ~chunk:7
        ~f:(fun crng i -> Rng.float crng +. (float_of_int i /. 1000.0))
        ~combine:( +. ) ~init:0.0 ())

let test_map_equivalence () =
  check_equivalence "map squares" (fun pool ->
      Task.map ?pool ~chunk:5 ~n:57 ~f:(fun i -> i * i) ())

let test_map_reduce_empty () =
  check_equivalence "map_reduce n=0" (fun pool ->
      let rng = Rng.create 7 in
      Task.map_reduce ?pool ~rng ~n:0 ~chunk:4
        ~f:(fun _ i -> i)
        ~combine:( + ) ~init:41 ())

let test_invalid_args () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "chunk < 1"
    (Invalid_argument "Task.map_reduce: chunk < 1") (fun () ->
      ignore
        (Task.map_reduce ~rng ~n:4 ~chunk:0
           ~f:(fun _ i -> i)
           ~combine:( + ) ~init:0 ()));
  Alcotest.check_raises "n < 0" (Invalid_argument "Task.map_reduce: n < 0")
    (fun () ->
      ignore
        (Task.map_reduce ~rng ~n:(-1) ~chunk:4
           ~f:(fun _ i -> i)
           ~combine:( + ) ~init:0 ()));
  Alcotest.check_raises "domains < 1" (Invalid_argument "Pool.create: domains < 1")
    (fun () -> ignore (Pool.create ~domains:0))

let qcheck_map_reduce =
  QCheck.Test.make ~count:40
    ~name:"Task.map_reduce parallel = sequential (random n, chunk, jobs)"
    QCheck.(
      quad small_int (int_range 0 60) (int_range 1 9)
        (QCheck.oneofl [ 1; 2; 4; 8 ]))
    (fun (seed, n, chunk, j) ->
      let run pool =
        let rng = Rng.create seed in
        Task.map_reduce ?pool ~rng ~n ~chunk
          ~f:(fun crng i -> Rng.float crng *. float_of_int (i + 1))
          ~combine:( +. ) ~init:0.0 ()
      in
      let seq = run None in
      Pool.with_pool ~domains:j (fun pool -> run (Some pool) = seq))

(* ------------------------------------------------------------------ *)
(* Exceptions and pool lifecycle                                       *)

let test_exception_propagation () =
  Pool.with_pool ~domains:4 (fun pool ->
      let rng = Rng.create 1 in
      (try
         ignore
           (Task.map_reduce ~pool ~rng ~n:64 ~chunk:4
              ~f:(fun _ i -> if i = 37 then failwith "boom" else i)
              ~combine:( + ) ~init:0 ());
         Alcotest.fail "expected Failure to propagate"
       with Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* the pool must survive a failed run *)
      let rng = Rng.create 1 in
      let total =
        Task.map_reduce ~pool ~rng ~n:64 ~chunk:4
          ~f:(fun _ i -> i)
          ~combine:( + ) ~init:0 ()
      in
      Alcotest.(check int) "pool usable after crash" (64 * 63 / 2) total)

let test_sequential_exception () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "sequential path propagates too" (Failure "boom")
    (fun () ->
      ignore
        (Task.map_reduce ~rng ~n:8 ~chunk:2
           ~f:(fun _ i -> if i = 5 then failwith "boom" else i)
           ~combine:( + ) ~init:0 ()))

let test_pool_reuse () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "domains" 4 (Pool.domains pool);
      for round = 1 to 5 do
        let run pool =
          let rng = Rng.create round in
          Task.map_reduce ?pool ~rng ~n:(10 * round) ~chunk:3
            ~f:(fun crng _ -> Rng.float crng)
            ~combine:( +. ) ~init:0.0 ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "round %d reuses the pool" round)
          true
          (run (Some pool) = run None)
      done)

let test_shutdown_rejects_work () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run_jobs: pool is shut down") (fun () ->
      Pool.run_jobs pool [ (fun () -> ()) ])

(* ------------------------------------------------------------------ *)
(* Shared-Rng regression (satellite audit)                             *)

(* Service.trials used to thread a single generator through every trial,
   so trial k's randomness depended on all trials before it.  With
   per-chunk split generators, any chunk is reproducible in isolation:
   chunk c draws from the (c+1)-th split of the master generator. *)
let test_trials_chunk_isolated () =
  let dist = Fig2_pod.u1 in
  let rng = Rng.create 31 in
  let reports =
    Service.trials ~chunk:1 ~rng ~dist_x:dist ~dist_y:dist ~w:6 ~n:6 ()
  in
  let truthful =
    Efficiency.expected_nash_truthful
      Game.
        {
          dist_x = dist;
          dist_y = dist;
          claims_x = Claim.of_list [];
          claims_y = Claim.of_list [];
        }
  in
  let master = Rng.create 31 in
  for _ = 1 to 4 do
    ignore (Rng.split master)
  done;
  let crng = Rng.split master in
  let direct =
    Service.negotiate ~truthful ~rng:crng ~dist_x:dist ~dist_y:dist ~w:6 ()
  in
  let key (r : Service.report) =
    ( r.Service.pod,
      r.Service.rounds,
      r.Service.converged,
      r.Service.equilibrium_choices_x,
      r.Service.equilibrium_choices_y )
  in
  Alcotest.(check bool)
    "trial 4 is reproducible in isolation" true
    (key direct = key (List.nth reports 4))

(* ------------------------------------------------------------------ *)
(* Ported experiments: parallel(j) = sequential                        *)

let report_keys reports =
  List.map
    (fun (r : Service.report) ->
      ( r.Service.pod,
        r.Service.rounds,
        r.Service.converged,
        r.Service.equilibrium_choices_x,
        r.Service.equilibrium_choices_y ))
    reports

let test_service_trials () =
  check_equivalence "Service.trials" (fun pool ->
      let rng = Rng.create 5 in
      report_keys
        (Service.trials ?pool ~chunk:2 ~rng ~dist_x:Fig2_pod.u1
           ~dist_y:Fig2_pod.u1 ~w:6 ~n:10 ()))

let test_fig2 () =
  check_equivalence "Fig2_pod.run_both" (fun pool ->
      Fig2_pod.run_both ?pool ~ws:[ 2; 4 ] ~trials:6 ~seed:11 ())

let test_diversity () =
  let g = Lazy.force small_graph in
  check_equivalence "Diversity.analyze" (fun pool ->
      (Diversity.analyze ?pool ~sample_size:12 ~seed:7 g).Diversity.sampled)

let test_geodistance () =
  let g = Lazy.force small_graph in
  check_equivalence "Geodistance.run" (fun pool ->
      Geodistance.run ?pool ~sample_size:10 ~seed:7 g)

let test_bandwidth () =
  let g = Lazy.force small_graph in
  check_equivalence "Bandwidth_exp.run" (fun pool ->
      Bandwidth_exp.run ?pool ~sample_size:10 ~seed:7 g)

let test_methods () =
  check_equivalence "Methods_exp.run" (fun pool ->
      Methods_exp.run ?pool ~chunk:2 ~scenarios:8 ~seed:3 ())

let test_efficiency_mc () =
  let rng = Rng.create 3 in
  let report =
    Service.negotiate ~rng ~dist_x:Fig2_pod.u1 ~dist_y:Fig2_pod.u1 ~w:8 ()
  in
  check_equivalence "Efficiency.mc_expected_nash" (fun pool ->
      Efficiency.mc_expected_nash ?pool ~chunk:512 ~rng:(Rng.create 9)
        ~samples:5_000 report.Service.game report.Service.strategy_x
        report.Service.strategy_y);
  check_equivalence "Efficiency.mc_truthful" (fun pool ->
      Efficiency.mc_truthful ?pool ~chunk:512 ~rng:(Rng.create 10)
        ~samples:5_000 report.Service.game)

let suite =
  [
    Alcotest.test_case "map_reduce parallel = sequential" `Quick
      test_map_reduce_equivalence;
    Alcotest.test_case "map parallel = sequential" `Quick test_map_equivalence;
    Alcotest.test_case "map_reduce on n=0" `Quick test_map_reduce_empty;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest qcheck_map_reduce;
    Alcotest.test_case "exception propagation + pool survives" `Quick
      test_exception_propagation;
    Alcotest.test_case "sequential exception propagation" `Quick
      test_sequential_exception;
    Alcotest.test_case "pool reuse across runs" `Quick test_pool_reuse;
    Alcotest.test_case "shutdown rejects further work" `Quick
      test_shutdown_rejects_work;
    Alcotest.test_case "trials chunk-isolated (shared-Rng regression)" `Quick
      test_trials_chunk_isolated;
    Alcotest.test_case "Service.trials equivalence" `Quick test_service_trials;
    Alcotest.test_case "Fig2_pod equivalence" `Quick test_fig2;
    Alcotest.test_case "Diversity equivalence" `Quick test_diversity;
    Alcotest.test_case "Geodistance equivalence" `Quick test_geodistance;
    Alcotest.test_case "Bandwidth equivalence" `Quick test_bandwidth;
    Alcotest.test_case "Methods equivalence" `Quick test_methods;
    Alcotest.test_case "Efficiency MC equivalence" `Quick test_efficiency_mc;
  ]
