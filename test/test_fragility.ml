(* Tests for the BGP-fragility experiment (E13). *)

open Pan_experiments

let result = lazy (Fragility_exp.run ~topologies:4 ~dests_per_topology:2 ())

let test_shape () =
  let r = Lazy.force result in
  Alcotest.(check int) "four densities" 4
    (List.length r.Fragility_exp.points);
  List.iter
    (fun (p : Fragility_exp.point) ->
      Alcotest.(check int) "cases accounted for" p.Fragility_exp.instances
        (p.Fragility_exp.converged + p.Fragility_exp.oscillated);
      Alcotest.(check bool) "nondeterministic within converged" true
        (p.Fragility_exp.nondeterministic <= p.Fragility_exp.converged))
    r.Fragility_exp.points

let test_zero_density_is_safe () =
  (* pure GRC policies: the Gao-Rexford theorem guarantees convergence,
     and every run must be deterministic *)
  let r = Lazy.force result in
  match r.Fragility_exp.points with
  | p0 :: _ ->
      Alcotest.(check int) "no oscillation at density 0" 0
        p0.Fragility_exp.oscillated;
      Alcotest.(check int) "no nondeterminism at density 0" 0
        p0.Fragility_exp.nondeterministic
  | [] -> Alcotest.fail "no points"

let test_violations_create_trouble () =
  (* at full density, some instance must oscillate or be nondeterministic
     (if none did, the experiment would show nothing) *)
  let r = Lazy.force result in
  let last = List.nth r.Fragility_exp.points
      (List.length r.Fragility_exp.points - 1) in
  Alcotest.(check bool) "trouble at density 1" true
    (last.Fragility_exp.oscillated + last.Fragility_exp.nondeterministic > 0)

let test_monotone_tendency () =
  (* trouble at the extremes: density 1 must be at least as bad as 0 *)
  let r = Lazy.force result in
  let trouble (p : Fragility_exp.point) =
    p.Fragility_exp.oscillated + p.Fragility_exp.nondeterministic
  in
  match r.Fragility_exp.points with
  | first :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      Alcotest.(check bool) "worse with violations" true
        (trouble last >= trouble first)
  | [] -> Alcotest.fail "no points"

let test_wheels_track_violations () =
  let r = Lazy.force result in
  match r.Fragility_exp.points with
  | p0 :: rest ->
      Alcotest.(check int) "no wheels under pure GRC" 0
        p0.Fragility_exp.with_dispute_wheel;
      let last = List.nth rest (List.length rest - 1) in
      Alcotest.(check bool) "wheels appear with violations" true
        (last.Fragility_exp.with_dispute_wheel > 0)
  | [] -> Alcotest.fail "no points"

let suite =
  [
    Alcotest.test_case "shape" `Slow test_shape;
    Alcotest.test_case "density 0 safe (Gao-Rexford)" `Slow
      test_zero_density_is_safe;
    Alcotest.test_case "violations create trouble" `Slow
      test_violations_create_trouble;
    Alcotest.test_case "monotone tendency" `Slow test_monotone_tendency;
    Alcotest.test_case "wheels track violations" `Slow
      test_wheels_track_violations;
  ]
