(* Tests for billing conventions and volume-denominated settlement. *)

open Pan_econ
open Pan_numerics
open Pan_bosco

let approx = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Billing                                                             *)

let meter_of samples =
  let m = Billing.create_meter () in
  List.iter (Billing.sample m) samples;
  m

let test_conventions () =
  let m = meter_of [ 1.0; 2.0; 3.0; 4.0; 100.0 ] in
  approx "median" 3.0 (Billing.billed_volume Billing.Median m);
  approx "mean" 22.0 (Billing.billed_volume Billing.Mean m);
  approx "max" 100.0 (Billing.billed_volume Billing.Max m);
  (* p95 of 5 samples interpolates near the top *)
  let p95 = Billing.billed_volume Billing.P95 m in
  Alcotest.(check bool) "p95 between p50 and max" true
    (p95 > 3.0 && p95 <= 100.0)

let test_p95_discards_bursts () =
  (* burstable billing: 5% of intervals are free — one huge burst out of
     100 samples barely moves the bill *)
  let flat = List.init 99 (fun _ -> 10.0) in
  let m = meter_of (1000.0 :: flat) in
  approx "burst discarded" 10.0 (Billing.billed_volume Billing.P95 m);
  approx "max sees the burst" 1000.0 (Billing.billed_volume Billing.Max m)

let test_empty_and_reset () =
  let m = Billing.create_meter () in
  approx "empty" 0.0 (Billing.billed_volume Billing.P95 m);
  Billing.sample m 5.0;
  Alcotest.(check int) "count" 1 (Billing.sample_count m);
  Billing.reset m;
  Alcotest.(check int) "reset count" 0 (Billing.sample_count m);
  approx "reset volume" 0.0 (Billing.billed_volume Billing.Mean m)

let test_charge () =
  let m = meter_of [ 4.0; 6.0 ] in
  approx "charge via pricing" 10.0
    (Billing.charge Billing.Mean m (Pricing.per_usage ~unit_price:2.0))

let test_negative_sample () =
  let m = Billing.create_meter () in
  try
    Billing.sample m (-1.0);
    Alcotest.fail "negative sample accepted"
  with Invalid_argument _ -> ()

let qcheck_billed_within_range =
  QCheck.Test.make ~count:200 ~name:"billed volume within sample range"
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0.0 100.0))
    (fun samples ->
      let m = meter_of samples in
      let arr = Array.of_list samples in
      let lo, hi = Stats.min_max arr in
      List.for_all
        (fun c ->
          let v = Billing.billed_volume c m in
          v >= lo -. 1e-9 && v <= hi +. 1e-9)
        [ Billing.Median; Billing.Mean; Billing.P95; Billing.Max ])

let qcheck_convention_ordering =
  QCheck.Test.make ~count:200 ~name:"median <= p95 <= max"
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0.0 100.0))
    (fun samples ->
      let m = meter_of samples in
      Billing.billed_volume Billing.Median m
      <= Billing.billed_volume Billing.P95 m +. 1e-9
      && Billing.billed_volume Billing.P95 m
         <= Billing.billed_volume Billing.Max m +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Volume_terms + shift_allowance                                      *)

let test_volume_terms_of_outcome () =
  let outcome = Game.settle ~u_x:1.0 ~u_y:1.0 ~v_x:0.6 ~v_y:(-0.2) in
  (match Volume_terms.of_outcome ~rate:2.0 outcome with
  | Some t ->
      approx "transfer" 0.4 t.Volume_terms.transfer;
      approx "volume shift" 0.2 t.Volume_terms.volume_shift
  | None -> Alcotest.fail "concluded outcome produced no terms");
  Alcotest.(check bool) "cancelled yields none" true
    (Volume_terms.of_outcome ~rate:2.0 Game.Cancelled = None)

let test_volume_terms_direction () =
  (* Y benefits more: negative transfer, Y cedes volume *)
  let outcome = Game.settle ~u_x:1.0 ~u_y:1.0 ~v_x:(-0.2) ~v_y:0.8 in
  match Volume_terms.of_outcome ~rate:1.0 outcome with
  | Some t -> Alcotest.(check bool) "negative shift" true (t.Volume_terms.volume_shift < 0.0)
  | None -> Alcotest.fail "should conclude"

let test_volume_terms_invalid_rate () =
  try
    ignore (Volume_terms.of_outcome ~rate:0.0 Game.Cancelled);
    Alcotest.fail "rate 0 accepted"
  with Invalid_argument _ -> ()

let grant holder allowance =
  {
    Extension.holder = Pan_topology.Asn.of_int holder;
    segment =
      {
        Extension.via = Pan_topology.Asn.of_int 99;
        dest = Pan_topology.Asn.of_int 98;
      };
    allowance;
    committed = 0.0;
  }

let test_shift_allowance () =
  let gx = grant 1 10.0 and gy = grant 2 5.0 in
  (match Extension.shift_allowance ~from_:gx ~to_:gy 3.0 with
  | Error e -> Alcotest.fail e
  | Ok (gx', gy') ->
      approx "source reduced" 7.0 gx'.Extension.allowance;
      approx "sink increased" 8.0 gy'.Extension.allowance;
      approx "total conserved"
        (gx.Extension.allowance +. gy.Extension.allowance)
        (gx'.Extension.allowance +. gy'.Extension.allowance));
  (match Extension.shift_allowance ~from_:gx ~to_:gy 11.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-shift accepted");
  match Extension.shift_allowance ~from_:gx ~to_:gy (-1.0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative shift accepted"

let test_shift_respects_commitments () =
  let gx = { (grant 1 10.0) with Extension.committed = 8.0 } in
  match Extension.shift_allowance ~from_:gx ~to_:(grant 2 0.0) 3.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shifted committed volume"

let test_settlement_round_trip () =
  (* the full pipeline: BOSCO outcome -> volume terms -> allowance move;
     after-settlement "value" at the reference rate matches the cash
     split *)
  let outcome = Game.settle ~u_x:2.0 ~u_y:0.5 ~v_x:1.0 ~v_y:0.0 in
  match Volume_terms.of_outcome ~rate:0.5 outcome with
  | None -> Alcotest.fail "should conclude"
  | Some t ->
      approx "shift = transfer / rate" 1.0 t.Volume_terms.volume_shift;
      let gx = grant 1 10.0 and gy = grant 2 10.0 in
      (match
         Extension.shift_allowance ~from_:gx ~to_:gy
           t.Volume_terms.volume_shift
       with
      | Error e -> Alcotest.fail e
      | Ok (gx', gy') ->
          (* value ceded at the reference rate equals the cash transfer *)
          approx "value ceded"
            t.Volume_terms.transfer
            ((gx.Extension.allowance -. gx'.Extension.allowance)
            *. t.Volume_terms.rate);
          approx "value gained"
            t.Volume_terms.transfer
            ((gy'.Extension.allowance -. gy.Extension.allowance)
            *. t.Volume_terms.rate))

let suite =
  [
    Alcotest.test_case "conventions" `Quick test_conventions;
    Alcotest.test_case "p95 discards bursts" `Quick test_p95_discards_bursts;
    Alcotest.test_case "empty and reset" `Quick test_empty_and_reset;
    Alcotest.test_case "charge" `Quick test_charge;
    Alcotest.test_case "negative sample" `Quick test_negative_sample;
    QCheck_alcotest.to_alcotest qcheck_billed_within_range;
    QCheck_alcotest.to_alcotest qcheck_convention_ordering;
    Alcotest.test_case "volume terms of outcome" `Quick
      test_volume_terms_of_outcome;
    Alcotest.test_case "volume terms direction" `Quick
      test_volume_terms_direction;
    Alcotest.test_case "volume terms invalid rate" `Quick
      test_volume_terms_invalid_rate;
    Alcotest.test_case "shift allowance" `Quick test_shift_allowance;
    Alcotest.test_case "shift respects commitments" `Quick
      test_shift_respects_commitments;
    Alcotest.test_case "settlement round trip" `Quick
      test_settlement_round_trip;
  ]
