(* Marketplace determinism suite (lib/market).

   The headline properties, in the spirit of the PR 5 runner-equivalence
   and PR 7 churn-equivalence suites: a marketplace run's epoch outcomes
   — the signed agreement set, welfare totals, and the byte-exact
   transcript fingerprint — are identical for every pool size, for every
   chunk size, and under injected faults with retries; and the epoch
   loop's incrementally-spliced topology is byte-identical to a
   from-scratch freeze of the equivalently-mutated graph (the Delta
   oracle). *)

open Pan_topology
open Pan_market
module Pool = Pan_runner.Pool
module Fault = Pan_runner.Fault

let gen_graph ?(n_transit = 8) ?(n_stub = 30) seed =
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  Gen.graph (Gen.generate ~params ~seed ())

let config ?(epochs = 2) ?(seed = 11) () =
  {
    Market.default with
    Market.epochs;
    w = 8;
    max_candidates = 32;
    chunk = 5;
    seed;
  }

let same_result (a : Market.result) (b : Market.result) =
  String.equal a.Market.fingerprint b.Market.fingerprint
  && a.Market.agreements = b.Market.agreements
  && a.Market.welfare = b.Market.welfare
  && List.map (fun (r : Market.epoch_report) -> (r.Market.epoch, r.Market.welfare)) a.Market.reports
     = List.map (fun (r : Market.epoch_report) -> (r.Market.epoch, r.Market.welfare)) b.Market.reports
  (* the Both-mode comparison records hold possibly-nan PoD means, so
     [compare] (which equates nans) instead of [=] *)
  && compare
       (List.map (fun (r : Market.epoch_report) -> r.Market.mech) a.Market.reports)
       (List.map (fun (r : Market.epoch_report) -> r.Market.mech) b.Market.reports)
     = 0

let mech_gen =
  QCheck.oneofl [ Market.Bosco; Market.Nash_peering; Market.Both ]

(* ------------------------------------------------------------------ *)
(* j=1 = j=4, any chunk size — every mechanism                         *)

let qcheck_jobs_equivalence =
  QCheck.Test.make ~count:6
    ~name:
      "market: epoch outcomes byte-identical at j=1 vs j=4, any chunk, every \
       mechanism"
    QCheck.(pair (int_range 1 1_000) mech_gen)
    (fun (seed, mechanism) ->
      let g = gen_graph seed in
      let cfg = config ~seed () in
      let seq = Market.run ~mechanism cfg g in
      let par =
        Pool.with_pool ~domains:4 (fun pool ->
            Market.run ~pool ~mechanism cfg g)
      in
      let rechunked = Market.run ~mechanism { cfg with Market.chunk = 16 } g in
      same_result seq par && same_result seq rechunked)

(* ------------------------------------------------------------------ *)
(* Faults + retries reproduce the fault-free run — every mechanism     *)

let qcheck_fault_equivalence =
  QCheck.Test.make ~count:4
    ~name:
      "market: faulty run with retries = fault-free, j=1 and j=4, every \
       mechanism"
    QCheck.(pair (int_range 1 1_000) mech_gen)
    (fun (seed, mechanism) ->
      let g = gen_graph seed in
      let cfg = config ~seed () in
      let baseline = Market.run ~mechanism cfg g in
      (* rate 0.3 with 10 retries: exhausting a chunk is ~6e-6 *)
      Fault.set
        (Some { Fault.seed; rate = 0.3; delay = 0.0; delay_rate = 0.0 });
      Fun.protect
        ~finally:(fun () -> Fault.set None)
        (fun () ->
          let faulty_seq = Market.run ~mechanism ~retries:10 cfg g in
          let faulty_par =
            Pool.with_pool ~domains:4 (fun pool ->
                Market.run ~pool ~mechanism ~retries:10 cfg g)
          in
          same_result baseline faulty_seq && same_result baseline faulty_par))

(* ------------------------------------------------------------------ *)
(* Delta oracle: spliced topology = from-scratch freeze, every epoch   *)

let test_delta_oracle () =
  let g = gen_graph 3 in
  let r = Market.run ~oracle:true (config ~seed:3 ()) g in
  Alcotest.(check (option bool)) "oracle" (Some true) r.Market.oracle_ok;
  Alcotest.(check bool) "candidates were scored" true (r.Market.pairs > 0);
  Alcotest.(check bool) "negotiations ran" true (r.Market.negotiations > 0);
  Alcotest.(check bool) "agreements were signed" true
    (r.Market.agreements <> []);
  Alcotest.(check int) "reports cover the signed totals"
    (List.length r.Market.agreements)
    (List.fold_left
       (fun acc (e : Market.epoch_report) -> acc + e.Market.signed)
       0 r.Market.reports)

(* Signing reshapes the next epoch: every signed pair is connected
   afterwards, so no agreement can recur across epochs. *)
let test_agreements_distinct () =
  let g = gen_graph 7 in
  let r = Market.run (config ~epochs:3 ~seed:7 ()) g in
  let norm (x, y) = if Asn.compare x y <= 0 then (x, y) else (y, x) in
  let pairs = List.map norm r.Market.agreements in
  Alcotest.(check int) "no pair signed twice"
    (List.length pairs)
    (List.length (List.sort_uniq compare pairs))

(* ------------------------------------------------------------------ *)
(* Arena reuse is pure scratch: re-negotiating is bit-identical        *)

let test_negotiate_pair_deterministic () =
  let g = gen_graph 5 in
  let topo = Compact.freeze g in
  let cands = Candidates.enumerate ~min_gain:2 topo in
  Alcotest.(check bool) "have candidates" true (Array.length cands > 0);
  let dist = Pan_numerics.Distribution.uniform (-1.0) 1.0 in
  let truthful = 1.0 /. 12.0 in
  let once i =
    Negotiate.negotiate_pair ~graph:g ~topo ~seed:5 ~epoch:1 ~w:8
      ~max_demands:3 ~truthful ~dist cands.(i)
  in
  for i = 0 to Int.min 4 (Array.length cands - 1) do
    let a = once i and b = once i in
    Alcotest.(check bool)
      (Printf.sprintf "outcome %d bit-identical on arena reuse" i)
      true
      (a.Negotiate.u_x = b.Negotiate.u_x
      && a.Negotiate.u_y = b.Negotiate.u_y
      && (a.Negotiate.pod = b.Negotiate.pod
         || (Float.is_nan a.Negotiate.pod && Float.is_nan b.Negotiate.pod))
      && a.Negotiate.rounds = b.Negotiate.rounds
      && a.Negotiate.signed = b.Negotiate.signed)
  done

(* ------------------------------------------------------------------ *)
(* Candidate enumeration invariants                                    *)

let test_candidates_sound () =
  let g = gen_graph 9 in
  let topo = Compact.freeze g in
  let cands = Candidates.enumerate ~min_gain:2 ~max_candidates:1000 topo in
  Array.iter
    (fun (c : Candidates.t) ->
      if c.Candidates.x >= c.Candidates.y then Alcotest.fail "x >= y";
      if Compact.connected topo c.Candidates.x c.Candidates.y then
        Alcotest.fail "candidate pair already connected";
      let gx, gy = Candidates.gains topo c.Candidates.x c.Candidates.y in
      Alcotest.(check int) "gain_x" gx c.Candidates.gain_x;
      Alcotest.(check int) "gain_y" gy c.Candidates.gain_y;
      if gx < 2 || gy < 2 then Alcotest.fail "below min_gain";
      (* the cheap CSR count agrees with the bitset path algebra *)
      Alcotest.(check int) "gain_x = |ma_gain|"
        (Bitset.cardinal
           (Path_enum_compact.ma_gain topo c.Candidates.x c.Candidates.y))
        gx;
      Alcotest.(check int) "gain_y = |ma_gain|"
        (Bitset.cardinal
           (Path_enum_compact.ma_gain topo c.Candidates.y c.Candidates.x))
        gy)
    cands;
  (* pool-size independence of the enumeration itself *)
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Candidates.enumerate ~pool ~min_gain:2 ~max_candidates:1000 topo)
  in
  Alcotest.(check bool) "enumerate j=1 = j=4" true (cands = par)

(* ------------------------------------------------------------------ *)
(* Nash-Peering qualifier ≡ brute-force coalition oracle               *)

let test_qualifier_oracle () =
  List.iter
    (fun seed ->
      let g = gen_graph ~n_transit:4 ~n_stub:12 seed in
      let topo = Compact.freeze g in
      let cands = Candidates.enumerate ~min_gain:1 ~max_candidates:64 topo in
      let scores =
        Array.map
          (Nash_peering.score_pair ~graph:g ~topo ~seed ~epoch:1
             ~max_demands:3)
          cands
      in
      let v = Nash_peering.qualify scores in
      let o = Nash_peering.qualify_oracle scores in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: verdict count" seed)
        (Array.length o) (Array.length v);
      Array.iteri
        (fun i (a : Nash_peering.verdict) ->
          let b = o.(i) in
          let ctx = Printf.sprintf "seed %d verdict %d" seed i in
          Alcotest.(check bool)
            (ctx ^ ": qualified")
            b.Nash_peering.qualified a.Nash_peering.qualified;
          Alcotest.(check bool)
            (ctx ^ ": share/coalition values bit-identical")
            true
            (a.Nash_peering.share = b.Nash_peering.share
            && a.Nash_peering.best_x = b.Nash_peering.best_x
            && a.Nash_peering.best_y = b.Nash_peering.best_y))
        v;
      (* at least one graph in the sweep must actually discriminate *)
      if seed = 1 then
        Alcotest.(check bool) "qualifier keeps a strict subset somewhere" true
          (Nash_peering.count_qualified v <= Array.length v))
    [ 1; 2; 3; 17 ]

(* ------------------------------------------------------------------ *)
(* Both mode: the Bosco arm is the Bosco run; the Nash arm's first     *)
(* epoch is the Nash_peering run's first epoch (shared snapshot)       *)

let test_both_mode_arms () =
  let g = gen_graph 13 in
  let cfg = config ~seed:13 () in
  let bosco = Market.run cfg g in
  let nash = Market.run ~mechanism:Market.Nash_peering cfg g in
  let both = Market.run ~mechanism:Market.Both cfg g in
  Alcotest.(check bool) "Both splices the Bosco signings" true
    (both.Market.agreements = bosco.Market.agreements);
  Alcotest.(check bool) "Both's epoch stream = Bosco's" true
    (List.map
       (fun (r : Market.epoch_report) ->
         (r.Market.epoch, r.Market.signed, r.Market.welfare))
       both.Market.reports
    = List.map
        (fun (r : Market.epoch_report) ->
          (r.Market.epoch, r.Market.signed, r.Market.welfare))
        bosco.Market.reports);
  List.iter
    (fun (r : Market.epoch_report) ->
      match r.Market.mech with
      | None -> Alcotest.fail "Both-mode epoch without comparison record"
      | Some c ->
          Alcotest.(check int) "bosco arm signed = epoch signed"
            r.Market.signed c.Market.bosco_signed;
          Alcotest.(check bool) "bosco arm welfare = epoch welfare" true
            (c.Market.bosco_welfare = r.Market.welfare);
          Alcotest.(check bool) "nash arm is a subset" true
            (c.Market.nash_signed <= c.Market.cmp_qualified
            && c.Market.cmp_qualified <= r.Market.candidates
            && c.Market.nash_welfare <= c.Market.bosco_welfare))
    both.Market.reports;
  (* first epochs share the pristine snapshot: the counterfactual nash
     arm is bit-identical to the real nash-peering run *)
  match (both.Market.reports, nash.Market.reports) with
  | rb :: _, rn :: _ ->
      let c = Option.get rb.Market.mech in
      Alcotest.(check int) "first-epoch qualified" rn.Market.qualified
        c.Market.cmp_qualified;
      Alcotest.(check int) "first-epoch nash signed" rn.Market.signed
        c.Market.nash_signed;
      Alcotest.(check bool) "first-epoch nash welfare bit-identical" true
        (c.Market.nash_welfare = rn.Market.welfare)
  | _ -> Alcotest.fail "no epochs"

(* ------------------------------------------------------------------ *)
(* compare_candidates: saturating total order (the overflow regression)*)

let cand_gen =
  let open QCheck.Gen in
  let gain =
    oneof
      [
        int_range 0 1_000;
        oneofl [ 0; 1; (max_int / 2) - 1; max_int / 2; max_int - 1; max_int ];
      ]
  in
  map
    (fun ((x, y), (gx, gy)) -> { Candidates.x; y; gain_x = gx; gain_y = gy })
    (pair (pair (int_range 0 50) (int_range 0 50)) (pair gain gain))

(* The intended order, computed without overflow: gain sums in Int64,
   clamped to [max_int] (the saturation point), descending; ties by
   ascending pair.  Agreement with this oracle pins both the ranking and
   the saturation semantics — the pre-fix comparator wraps at
   [max_int + 5] and sorts adversarial candidates last. *)
let exact_compare a b =
  let clamp v =
    if Int64.compare v (Int64.of_int max_int) > 0 then Int64.of_int max_int
    else v
  in
  let s (c : Candidates.t) =
    clamp
      (Int64.add (Int64.of_int c.Candidates.gain_x)
         (Int64.of_int c.Candidates.gain_y))
  in
  match Int64.compare (s b) (s a) with
  | 0 ->
      compare
        (a.Candidates.x, a.Candidates.y)
        (b.Candidates.x, b.Candidates.y)
  | c -> c

let qcheck_compare_candidates =
  QCheck.Test.make ~count:1_000
    ~name:"candidates: compare is a saturating total order (= Int64 oracle)"
    (QCheck.make
       QCheck.Gen.(triple cand_gen cand_gen cand_gen)
       ~print:(fun ((a : Candidates.t), b, c) ->
         let one (d : Candidates.t) =
           Printf.sprintf "{x=%d;y=%d;gx=%d;gy=%d}" d.Candidates.x
             d.Candidates.y d.Candidates.gain_x d.Candidates.gain_y
         in
         String.concat " " [ one a; one b; one c ]))
    (fun (a, b, c) ->
      let sign n = compare n 0 in
      let cmp = Candidates.compare_candidates in
      (* agreement with the overflow-free oracle *)
      sign (cmp a b) = sign (exact_compare a b)
      (* antisymmetry and reflexivity *)
      && sign (cmp a b) = -sign (cmp b a)
      && cmp a a = 0
      (* transitivity across the triple *)
      && (not (cmp a b <= 0 && cmp b c <= 0) || cmp a c <= 0))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_jobs_equivalence;
    QCheck_alcotest.to_alcotest qcheck_fault_equivalence;
    QCheck_alcotest.to_alcotest qcheck_compare_candidates;
    Alcotest.test_case "delta oracle across epochs" `Quick test_delta_oracle;
    Alcotest.test_case "agreements distinct across epochs" `Quick
      test_agreements_distinct;
    Alcotest.test_case "negotiate_pair deterministic on arena reuse" `Quick
      test_negotiate_pair_deterministic;
    Alcotest.test_case "candidate enumeration sound" `Quick
      test_candidates_sound;
    Alcotest.test_case "nash-peering qualifier = coalition oracle" `Quick
      test_qualifier_oracle;
    Alcotest.test_case "both-mode arms consistent" `Quick test_both_mode_arms;
  ]
