(* Marketplace determinism suite (lib/market).

   The headline properties, in the spirit of the PR 5 runner-equivalence
   and PR 7 churn-equivalence suites: a marketplace run's epoch outcomes
   — the signed agreement set, welfare totals, and the byte-exact
   transcript fingerprint — are identical for every pool size, for every
   chunk size, and under injected faults with retries; and the epoch
   loop's incrementally-spliced topology is byte-identical to a
   from-scratch freeze of the equivalently-mutated graph (the Delta
   oracle). *)

open Pan_topology
open Pan_market
module Pool = Pan_runner.Pool
module Fault = Pan_runner.Fault

let gen_graph ?(n_transit = 8) ?(n_stub = 30) seed =
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  Gen.graph (Gen.generate ~params ~seed ())

let config ?(epochs = 2) ?(seed = 11) () =
  {
    Market.default with
    Market.epochs;
    w = 8;
    max_candidates = 32;
    chunk = 5;
    seed;
  }

let same_result (a : Market.result) (b : Market.result) =
  String.equal a.Market.fingerprint b.Market.fingerprint
  && a.Market.agreements = b.Market.agreements
  && a.Market.welfare = b.Market.welfare
  && List.map (fun (r : Market.epoch_report) -> (r.Market.epoch, r.Market.welfare)) a.Market.reports
     = List.map (fun (r : Market.epoch_report) -> (r.Market.epoch, r.Market.welfare)) b.Market.reports

(* ------------------------------------------------------------------ *)
(* j=1 = j=4, any chunk size                                           *)

let qcheck_jobs_equivalence =
  QCheck.Test.make ~count:4
    ~name:"market: epoch outcomes byte-identical at j=1 vs j=4, any chunk"
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let g = gen_graph seed in
      let cfg = config ~seed () in
      let seq = Market.run cfg g in
      let par =
        Pool.with_pool ~domains:4 (fun pool -> Market.run ~pool cfg g)
      in
      let rechunked = Market.run { cfg with Market.chunk = 16 } g in
      same_result seq par && same_result seq rechunked)

(* ------------------------------------------------------------------ *)
(* Faults + retries reproduce the fault-free run                       *)

let qcheck_fault_equivalence =
  QCheck.Test.make ~count:3
    ~name:"market: faulty run with retries = fault-free, j=1 and j=4"
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let g = gen_graph seed in
      let cfg = config ~seed () in
      let baseline = Market.run cfg g in
      (* rate 0.3 with 10 retries: exhausting a chunk is ~6e-6 *)
      Fault.set
        (Some { Fault.seed; rate = 0.3; delay = 0.0; delay_rate = 0.0 });
      Fun.protect
        ~finally:(fun () -> Fault.set None)
        (fun () ->
          let faulty_seq = Market.run ~retries:10 cfg g in
          let faulty_par =
            Pool.with_pool ~domains:4 (fun pool ->
                Market.run ~pool ~retries:10 cfg g)
          in
          same_result baseline faulty_seq && same_result baseline faulty_par))

(* ------------------------------------------------------------------ *)
(* Delta oracle: spliced topology = from-scratch freeze, every epoch   *)

let test_delta_oracle () =
  let g = gen_graph 3 in
  let r = Market.run ~oracle:true (config ~seed:3 ()) g in
  Alcotest.(check (option bool)) "oracle" (Some true) r.Market.oracle_ok;
  Alcotest.(check bool) "candidates were scored" true (r.Market.pairs > 0);
  Alcotest.(check bool) "negotiations ran" true (r.Market.negotiations > 0);
  Alcotest.(check bool) "agreements were signed" true
    (r.Market.agreements <> []);
  Alcotest.(check int) "reports cover the signed totals"
    (List.length r.Market.agreements)
    (List.fold_left
       (fun acc (e : Market.epoch_report) -> acc + e.Market.signed)
       0 r.Market.reports)

(* Signing reshapes the next epoch: every signed pair is connected
   afterwards, so no agreement can recur across epochs. *)
let test_agreements_distinct () =
  let g = gen_graph 7 in
  let r = Market.run (config ~epochs:3 ~seed:7 ()) g in
  let norm (x, y) = if Asn.compare x y <= 0 then (x, y) else (y, x) in
  let pairs = List.map norm r.Market.agreements in
  Alcotest.(check int) "no pair signed twice"
    (List.length pairs)
    (List.length (List.sort_uniq compare pairs))

(* ------------------------------------------------------------------ *)
(* Arena reuse is pure scratch: re-negotiating is bit-identical        *)

let test_negotiate_pair_deterministic () =
  let g = gen_graph 5 in
  let topo = Compact.freeze g in
  let cands = Candidates.enumerate ~min_gain:2 topo in
  Alcotest.(check bool) "have candidates" true (Array.length cands > 0);
  let dist = Pan_numerics.Distribution.uniform (-1.0) 1.0 in
  let truthful = 1.0 /. 12.0 in
  let once i =
    Negotiate.negotiate_pair ~graph:g ~topo ~seed:5 ~epoch:1 ~w:8
      ~max_demands:3 ~truthful ~dist cands.(i)
  in
  for i = 0 to Int.min 4 (Array.length cands - 1) do
    let a = once i and b = once i in
    Alcotest.(check bool)
      (Printf.sprintf "outcome %d bit-identical on arena reuse" i)
      true
      (a.Negotiate.u_x = b.Negotiate.u_x
      && a.Negotiate.u_y = b.Negotiate.u_y
      && (a.Negotiate.pod = b.Negotiate.pod
         || (Float.is_nan a.Negotiate.pod && Float.is_nan b.Negotiate.pod))
      && a.Negotiate.rounds = b.Negotiate.rounds
      && a.Negotiate.signed = b.Negotiate.signed)
  done

(* ------------------------------------------------------------------ *)
(* Candidate enumeration invariants                                    *)

let test_candidates_sound () =
  let g = gen_graph 9 in
  let topo = Compact.freeze g in
  let cands = Candidates.enumerate ~min_gain:2 ~max_candidates:1000 topo in
  Array.iter
    (fun (c : Candidates.t) ->
      if c.Candidates.x >= c.Candidates.y then Alcotest.fail "x >= y";
      if Compact.connected topo c.Candidates.x c.Candidates.y then
        Alcotest.fail "candidate pair already connected";
      let gx, gy = Candidates.gains topo c.Candidates.x c.Candidates.y in
      Alcotest.(check int) "gain_x" gx c.Candidates.gain_x;
      Alcotest.(check int) "gain_y" gy c.Candidates.gain_y;
      if gx < 2 || gy < 2 then Alcotest.fail "below min_gain";
      (* the cheap CSR count agrees with the bitset path algebra *)
      Alcotest.(check int) "gain_x = |ma_gain|"
        (Bitset.cardinal
           (Path_enum_compact.ma_gain topo c.Candidates.x c.Candidates.y))
        gx;
      Alcotest.(check int) "gain_y = |ma_gain|"
        (Bitset.cardinal
           (Path_enum_compact.ma_gain topo c.Candidates.y c.Candidates.x))
        gy)
    cands;
  (* pool-size independence of the enumeration itself *)
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Candidates.enumerate ~pool ~min_gain:2 ~max_candidates:1000 topo)
  in
  Alcotest.(check bool) "enumerate j=1 = j=4" true (cands = par)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_jobs_equivalence;
    QCheck_alcotest.to_alcotest qcheck_fault_equivalence;
    Alcotest.test_case "delta oracle across epochs" `Quick test_delta_oracle;
    Alcotest.test_case "agreements distinct across epochs" `Quick
      test_agreements_distinct;
    Alcotest.test_case "negotiate_pair deterministic on arena reuse" `Quick
      test_negotiate_pair_deterministic;
    Alcotest.test_case "candidate enumeration sound" `Quick
      test_candidates_sound;
  ]
