(* Tests for the CAIDA as-rel2 parser/serializer. *)

open Pan_topology

let sample =
  "# comment line\n\
   1|2|-1|bgp\n\
   2|3|0|mlp\n\
   \n\
   1|4|-1|bgp\n"

let test_parse () =
  let g = Caida.of_string sample in
  Alcotest.(check int) "ases" 4 (Graph.num_ases g);
  Alcotest.(check int) "p2c" 2 (Graph.num_provider_customer_links g);
  Alcotest.(check int) "p2p" 1 (Graph.num_peering_links g);
  Alcotest.(check bool) "1 provider of 2" true
    (Graph.relationship g (Asn.of_int 2) (Asn.of_int 1) = Some Graph.Provider);
  Alcotest.(check bool) "2 peers 3" true
    (Graph.relationship g (Asn.of_int 2) (Asn.of_int 3) = Some Graph.Peer)

let test_parse_line_variants () =
  Alcotest.(check bool) "comment is None" true
    (Caida.parse_line 1 "# foo" = None);
  Alcotest.(check bool) "blank is None" true (Caida.parse_line 1 "   " = None);
  (* older serials have no source field *)
  Alcotest.(check bool) "no source field" true
    (Caida.parse_line 1 "10|20|0" <> None)

let test_parse_errors () =
  let expect_error line =
    match Caida.parse_line 1 line with
    | exception Caida.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" line
  in
  expect_error "1|2|5|bgp";
  expect_error "x|2|-1|bgp";
  expect_error "1|-7|-1|bgp";
  expect_error "1|2"

let test_round_trip () =
  let g = Caida.of_string sample in
  let g' = Caida.of_string (Caida.to_string g) in
  Alcotest.(check int) "ases" (Graph.num_ases g) (Graph.num_ases g');
  Alcotest.(check int) "p2c"
    (Graph.num_provider_customer_links g)
    (Graph.num_provider_customer_links g');
  Alcotest.(check int) "p2p" (Graph.num_peering_links g)
    (Graph.num_peering_links g');
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "same relationship" true
            (Graph.relationship g x y = Graph.relationship g' x y))
        (Graph.ases g))
    (Graph.ases g)

let test_file_round_trip () =
  let g = Caida.of_string sample in
  let path = Filename.temp_file "panagree" ".as-rel2" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Caida.save path g;
      let g' = Caida.load path in
      Alcotest.(check int) "ases survive file round trip" (Graph.num_ases g)
        (Graph.num_ases g'))

let test_generated_graph_round_trip () =
  let gen =
    Gen.generate
      ~params:{ Gen.default_params with Gen.n_transit = 30; Gen.n_stub = 100 }
      ~seed:1 ()
  in
  let g = Gen.graph gen in
  let g' = Caida.of_string (Caida.to_string g) in
  Alcotest.(check int) "p2c preserved"
    (Graph.num_provider_customer_links g)
    (Graph.num_provider_customer_links g');
  Alcotest.(check int) "p2p preserved" (Graph.num_peering_links g)
    (Graph.num_peering_links g')

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse;
    Alcotest.test_case "parse line variants" `Quick test_parse_line_variants;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "string round trip" `Quick test_round_trip;
    Alcotest.test_case "file round trip" `Quick test_file_round_trip;
    Alcotest.test_case "generated graph round trip" `Quick
      test_generated_graph_round_trip;
  ]
