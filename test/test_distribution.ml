(* Tests for Pan_numerics.Distribution: closed-form values, CDF/quantile
   inverses, sampling consistency, and partial moments. *)

open Pan_numerics

let approx = Alcotest.(check (float 1e-6))
let loose = Alcotest.(check (float 1e-3))

let test_uniform_basics () =
  let d = Distribution.uniform 2.0 6.0 in
  approx "pdf inside" 0.25 (Distribution.pdf d 3.0);
  approx "pdf outside" 0.0 (Distribution.pdf d 7.0);
  approx "cdf at lo" 0.0 (Distribution.cdf d 2.0);
  approx "cdf mid" 0.5 (Distribution.cdf d 4.0);
  approx "cdf at hi" 1.0 (Distribution.cdf d 6.0);
  approx "mean" 4.0 (Distribution.mean d);
  approx "quantile" 5.0 (Distribution.quantile d 0.75)

let test_uniform_invalid () =
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Distribution.uniform: lo >= hi") (fun () ->
      ignore (Distribution.uniform 1.0 1.0))

let test_triangular () =
  let d = Distribution.triangular 0.0 1.0 4.0 in
  approx "mean" (5.0 /. 3.0) (Distribution.mean d);
  approx "cdf at mode" 0.25 (Distribution.cdf d 1.0);
  approx "cdf at hi" 1.0 (Distribution.cdf d 4.0);
  (* quantile inverts cdf *)
  let q = Distribution.quantile d 0.25 in
  approx "quantile of cdf(mode)" 1.0 q

let test_exponential () =
  let d = Distribution.exponential 0.5 in
  approx "mean" 2.0 (Distribution.mean d);
  approx "cdf" (1.0 -. exp (-1.0)) (Distribution.cdf d 2.0);
  loose "quantile inverse" 2.0 (Distribution.quantile d (1.0 -. exp (-1.0)))

let test_gaussian_cdf () =
  let d = Distribution.gaussian 0.0 1.0 in
  loose "cdf at 0" 0.5 (Distribution.cdf d 0.0);
  loose "cdf at 1.96" 0.975 (Distribution.cdf d 1.96);
  loose "cdf symmetric" (1.0 -. Distribution.cdf d 1.3)
    (Distribution.cdf d (-1.3))

let test_gaussian_quantile_bisection () =
  let d = Distribution.gaussian 2.0 3.0 in
  loose "median" 2.0 (Distribution.quantile d 0.5);
  let x = Distribution.quantile d 0.9 in
  loose "round trip" 0.9 (Distribution.cdf d x)

let test_shifted_scaled () =
  let d = Distribution.scaled (Distribution.uniform 0.0 1.0) 2.0 in
  let d = Distribution.shifted d 3.0 in
  let lo, hi = Distribution.support d in
  approx "support lo" 3.0 lo;
  approx "support hi" 5.0 hi;
  approx "mean" 4.0 (Distribution.mean d);
  approx "cdf mid" 0.5 (Distribution.cdf d 4.0)

let test_prob_interval () =
  let d = Distribution.uniform 0.0 10.0 in
  approx "interval" 0.3 (Distribution.prob_interval d 2.0 5.0);
  approx "empty interval" 0.0 (Distribution.prob_interval d 5.0 2.0);
  approx "prob_ge" 0.4 (Distribution.prob_ge d 6.0)

let test_sampling_matches_cdf () =
  let d = Distribution.uniform (-1.0) 1.0 in
  let rng = Rng.create 77 in
  let n = 20_000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Distribution.sample d rng <= 0.5 then incr below
  done;
  let freq = float_of_int !below /. float_of_int n in
  if Float.abs (freq -. 0.75) > 0.01 then
    Alcotest.failf "sample frequency %f vs cdf 0.75" freq

let test_expectation () =
  let d = Distribution.uniform 0.0 1.0 in
  loose "E(x)" 0.5 (Distribution.expectation d Fun.id);
  loose "E(x^2)" (1.0 /. 3.0) (Distribution.expectation d (fun x -> x *. x))

let test_partial_expectation () =
  let d = Distribution.uniform 0.0 2.0 in
  (* ∫_0^1 x/2 dx = 1/4 *)
  loose "partial" 0.25 (Distribution.partial_expectation d 0.0 1.0);
  (* whole support = mean *)
  loose "total = mean" 1.0
    (Distribution.partial_expectation d neg_infinity infinity);
  approx "empty" 0.0 (Distribution.partial_expectation d 1.0 0.5)

let test_partial_expectation_infinite_bounds () =
  let d = Distribution.uniform (-1.0) 1.0 in
  loose "negative half" (-0.25)
    (Distribution.partial_expectation d neg_infinity 0.0);
  loose "positive half" 0.25 (Distribution.partial_expectation d 0.0 infinity)

let qcheck_quantile_inverse =
  QCheck.Test.make ~count:200 ~name:"quantile inverts cdf (uniform)"
    QCheck.(pair (float_range (-10.0) 10.0) (float_range 0.01 0.99))
    (fun (lo, p) ->
      let d = Distribution.uniform lo (lo +. 5.0) in
      let x = Distribution.quantile d p in
      Float.abs (Distribution.cdf d x -. p) < 1e-9)

let qcheck_cdf_monotone =
  QCheck.Test.make ~count:200 ~name:"cdf is monotone (triangular)"
    QCheck.(pair (float_range (-5.0) 5.0) (float_range 0.0 3.0))
    (fun (x, dx) ->
      let d = Distribution.triangular (-2.0) 0.5 4.0 in
      Distribution.cdf d x <= Distribution.cdf d (x +. dx) +. 1e-12)

let suite =
  [
    Alcotest.test_case "uniform basics" `Quick test_uniform_basics;
    Alcotest.test_case "uniform invalid" `Quick test_uniform_invalid;
    Alcotest.test_case "triangular" `Quick test_triangular;
    Alcotest.test_case "exponential" `Quick test_exponential;
    Alcotest.test_case "gaussian cdf" `Quick test_gaussian_cdf;
    Alcotest.test_case "gaussian quantile by bisection" `Quick
      test_gaussian_quantile_bisection;
    Alcotest.test_case "shifted and scaled" `Quick test_shifted_scaled;
    Alcotest.test_case "prob_interval / prob_ge" `Quick test_prob_interval;
    Alcotest.test_case "sampling matches cdf" `Slow test_sampling_matches_cdf;
    Alcotest.test_case "expectation" `Quick test_expectation;
    Alcotest.test_case "partial expectation" `Quick test_partial_expectation;
    Alcotest.test_case "partial expectation with infinite bounds" `Quick
      test_partial_expectation_infinite_bounds;
    QCheck_alcotest.to_alcotest qcheck_quantile_inverse;
    QCheck_alcotest.to_alcotest qcheck_cdf_monotone;
  ]
