(* Integration tests: the experiment pipelines produce results whose
   shape matches the paper's qualitative claims (at reduced scale). *)

open Pan_topology
open Pan_experiments

let small_params =
  { Gen.default_params with Gen.n_transit = 80; Gen.n_stub = 320 }

let small_graph = lazy (Gen.graph (Gen.generate ~params:small_params ~seed:42 ()))

(* ------------------------------------------------------------------ *)
(* E1 / Fig. 2                                                         *)

let test_fig2_shape () =
  let series =
    Fig2_pod.run ~ws:[ 2; 30 ] ~trials:15 ~seed:5 ~label:"U(1)" Fig2_pod.u1
  in
  match series.Fig2_pod.points with
  | [ p2; p30 ] ->
      Alcotest.(check bool) "PoD decreases with W" true
        (p30.Fig2_pod.mean_pod < p2.Fig2_pod.mean_pod);
      Alcotest.(check bool) "PoD in [0,1]" true
        (p2.Fig2_pod.mean_pod >= 0.0 && p2.Fig2_pod.mean_pod <= 1.0);
      Alcotest.(check bool) "min <= mean" true
        (p30.Fig2_pod.min_pod <= p30.Fig2_pod.mean_pod);
      (* the paper observes ~4 equilibrium choices at large W *)
      Alcotest.(check bool) "equilibrium choices small" true
        (p30.Fig2_pod.mean_equilibrium_choices < 8.0)
  | _ -> Alcotest.fail "expected two points"

(* ------------------------------------------------------------------ *)
(* E2/E3/E6 / Figs. 3-4                                                *)

let diversity_result =
  lazy (Diversity.analyze ~sample_size:150 ~seed:7 (Lazy.force small_graph))

let per_as_total scenario extract =
  let r = Lazy.force diversity_result in
  List.fold_left
    (fun acc pa ->
      match List.assoc_opt scenario (extract pa) with
      | Some n -> acc + n
      | None -> Alcotest.fail "missing scenario")
    0 r.Diversity.sampled

let test_fig3_ordering () =
  let paths s = per_as_total s (fun pa -> pa.Diversity.paths) in
  let grc = paths Path_enum.Grc in
  let top1 = paths (Path_enum.Ma_top 1) in
  let top5 = paths (Path_enum.Ma_top 5) in
  let direct = paths Path_enum.Ma_direct_only in
  let all = paths Path_enum.Ma_all in
  Alcotest.(check bool) "GRC <= Top1" true (grc <= top1);
  Alcotest.(check bool) "Top1 <= Top5" true (top1 <= top5);
  Alcotest.(check bool) "Top5 <= MA*" true (top5 <= direct);
  Alcotest.(check bool) "MA* <= MA" true (direct <= all);
  Alcotest.(check bool) "MA adds substantially" true
    (all > grc + (grc / 2))

let test_fig3_ma_star_close_to_ma () =
  (* "most additional MA paths are directly gained" *)
  let paths s = per_as_total s (fun pa -> pa.Diversity.paths) in
  let grc = paths Path_enum.Grc in
  let direct = paths Path_enum.Ma_direct_only in
  let all = paths Path_enum.Ma_all in
  let direct_gain = float_of_int (direct - grc) in
  let all_gain = float_of_int (all - grc) in
  Alcotest.(check bool) "directly gained dominate" true
    (direct_gain >= 0.7 *. all_gain)

let test_fig4_destinations_grow () =
  let dests s = per_as_total s (fun pa -> pa.Diversity.destinations) in
  Alcotest.(check bool) "MA reaches more destinations" true
    (dests Path_enum.Ma_all > dests Path_enum.Grc)

let test_aggregate_stats_positive () =
  let agg = Diversity.aggregate_stats (Lazy.force diversity_result) in
  Alcotest.(check bool) "positive path gains" true
    (agg.Diversity.avg_additional_paths > 0.0);
  Alcotest.(check bool) "max >= avg" true
    (float_of_int agg.Diversity.max_additional_paths
    >= agg.Diversity.avg_additional_paths);
  Alcotest.(check bool) "positive destination gains" true
    (agg.Diversity.avg_additional_destinations > 0.0)

let test_cdfs_consistent () =
  let r = Lazy.force diversity_result in
  let cdf = Diversity.paths_cdf r Path_enum.Grc in
  (* CDF evaluated above the maximum must be 1 *)
  Alcotest.(check (float 1e-9)) "cdf at infinity" 1.0
    (Pan_numerics.Stats.cdf_at cdf infinity)

(* ------------------------------------------------------------------ *)
(* E4/E5 / Figs. 5-6                                                   *)

let test_fig5_shape () =
  let g = Lazy.force small_graph in
  let r = Geodistance.run ~sample_size:100 ~seed:7 g in
  (* counting conditions nest: below_min <= below_median <= below_max *)
  List.iter
    (fun (pc : Pair_analysis.pair_counts) ->
      Alcotest.(check bool) "nesting" true
        (pc.Pair_analysis.below_min <= pc.Pair_analysis.below_median
        && pc.Pair_analysis.below_median <= pc.Pair_analysis.below_max
        && pc.Pair_analysis.below_max <= pc.Pair_analysis.ma_paths))
    r.Pair_analysis.pairs;
  (* improvements are relative reductions in (0, 1] *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "reduction in (0,1]" true (i > 0.0 && i <= 1.0))
    r.Pair_analysis.improvements;
  (* some pairs do improve on this topology *)
  Alcotest.(check bool) "some improving pairs" true
    (r.Pair_analysis.improvements <> [])

let test_fig6_shape () =
  let g = Lazy.force small_graph in
  let r = Bandwidth_exp.run ~sample_size:100 ~seed:7 g in
  List.iter
    (fun i -> Alcotest.(check bool) "increase positive" true (i > 0.0))
    r.Pair_analysis.improvements;
  Alcotest.(check bool) "some pairs gain bandwidth" true
    (Pair_analysis.fraction_pairs_with r ~at_least:1 (fun p ->
         p.Pair_analysis.below_min)
    > 0.0)

let test_fraction_pairs_monotone_in_n () =
  let g = Lazy.force small_graph in
  let r = Geodistance.run ~sample_size:60 ~seed:7 g in
  let f n =
    Pair_analysis.fraction_pairs_with r ~at_least:n (fun p ->
        p.Pair_analysis.below_max)
  in
  Alcotest.(check bool) "decreasing in n" true (f 1 >= f 3 && f 3 >= f 8)

let test_improvement_cdf () =
  let g = Lazy.force small_graph in
  let r = Geodistance.run ~sample_size:60 ~seed:7 g in
  match Pair_analysis.improvement_cdf r with
  | None -> Alcotest.fail "expected improving pairs"
  | Some cdf ->
      Alcotest.(check (float 1e-9)) "cdf complete" 1.0
        (Pan_numerics.Stats.cdf_at cdf 1.0)

(* ------------------------------------------------------------------ *)
(* E7 gadgets                                                          *)

let test_gadget_report () =
  let r = Gadget_exp.run () in
  let find name =
    List.find (fun (c : Gadget_exp.bgp_case) -> c.Gadget_exp.name = name) r.Gadget_exp.bgp
  in
  (match (find "BAD GADGET").Gadget_exp.outcome with
  | Pan_routing.Bgp.Oscillation _ -> ()
  | _ -> Alcotest.fail "BAD GADGET must oscillate");
  Alcotest.(check int) "bad gadget has no stable state" 0
    (find "BAD GADGET").Gadget_exp.stable_solutions;
  Alcotest.(check bool) "DISAGREE non-deterministic" false
    (find "DISAGREE").Gadget_exp.deterministic;
  (* every PAN case delivered loop-free *)
  List.iter
    (fun (c : Gadget_exp.pan_case) ->
      Alcotest.(check bool) "delivered" true c.Gadget_exp.delivered;
      Alcotest.(check bool) "loop-free" true c.Gadget_exp.loop_free)
    r.Gadget_exp.pan

(* ------------------------------------------------------------------ *)
(* E8 methods                                                          *)

let test_methods_report () =
  let r = Methods_exp.run ~scenarios:30 ~seed:3 () in
  Alcotest.(check int) "all scenarios accounted" 30 r.Methods_exp.scenarios;
  Alcotest.(check bool) "cash concludes at least as often" true
    (r.Methods_exp.cash_concluded >= r.Methods_exp.cash_only);
  Alcotest.(check bool) "some cash-only cases (flexibility, §IV-C)" true
    (r.Methods_exp.cash_only > 0)

let suite =
  [
    Alcotest.test_case "fig2 shape" `Slow test_fig2_shape;
    Alcotest.test_case "fig3 scenario ordering" `Quick test_fig3_ordering;
    Alcotest.test_case "fig3 MA* close to MA" `Quick
      test_fig3_ma_star_close_to_ma;
    Alcotest.test_case "fig4 destinations grow" `Quick
      test_fig4_destinations_grow;
    Alcotest.test_case "aggregate stats" `Quick test_aggregate_stats_positive;
    Alcotest.test_case "cdfs consistent" `Quick test_cdfs_consistent;
    Alcotest.test_case "fig5 shape" `Quick test_fig5_shape;
    Alcotest.test_case "fig6 shape" `Quick test_fig6_shape;
    Alcotest.test_case "pair fractions monotone" `Quick
      test_fraction_pairs_monotone_in_n;
    Alcotest.test_case "improvement cdf" `Quick test_improvement_cdf;
    Alcotest.test_case "gadget report" `Quick test_gadget_report;
    Alcotest.test_case "methods report" `Slow test_methods_report;
  ]
