(* Tests for the compact frozen-topology core: Bitset laws against an
   Int-set reference model, Compact.freeze structural agreement with the
   Graph builder, and qcheck equivalence of the compact path algebra with
   the legacy Path_enum on random generated topologies — the property
   that lets every experiment driver run on the frozen core without
   changing a single figure. *)

open Pan_topology

let asn = Asn.of_int

module IS = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Bitset vs reference model                                           *)

(* (width, elements) with elements < width *)
let bitset_input =
  QCheck.(
    make
      ~print:(fun (w, l) ->
        Printf.sprintf "width=%d [%s]" w
          (String.concat ";" (List.map string_of_int l)))
      Gen.(
        int_range 1 200 >>= fun w ->
        list_size (int_range 0 80) (int_range 0 (w - 1)) >|= fun l -> (w, l)))

let qcheck_bitset_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Bitset.of_list/to_list = sorted dedup"
    bitset_input (fun (w, l) ->
      Bitset.to_list (Bitset.of_list ~width:w l)
      = IS.elements (IS.of_list l))

let qcheck_bitset_ops =
  QCheck.Test.make ~count:200
    ~name:"Bitset union/inter/diff/cardinal = model"
    QCheck.(pair bitset_input (list_of_size (QCheck.Gen.int_range 0 80) (int_range 0 199)))
    (fun ((w, l1), l2) ->
      let l2 = List.filter (fun x -> x < w) l2 in
      let b1 = Bitset.of_list ~width:w l1
      and b2 = Bitset.of_list ~width:w l2 in
      let m1 = IS.of_list l1 and m2 = IS.of_list l2 in
      let agrees op mop =
        Bitset.to_list (op b1 b2) = IS.elements (mop m1 m2)
      in
      agrees Bitset.union IS.union
      && agrees Bitset.inter IS.inter
      && agrees Bitset.diff IS.diff
      && Bitset.cardinal b1 = IS.cardinal m1
      && Bitset.is_empty b1 = IS.is_empty m1
      && List.for_all (fun x -> Bitset.mem b1 x = IS.mem x m1)
           (List.init w Fun.id))

let qcheck_bitset_into =
  QCheck.Test.make ~count:200 ~name:"Bitset union_into/diff_into = pure ops"
    QCheck.(pair bitset_input (list_of_size (QCheck.Gen.int_range 0 80) (int_range 0 199)))
    (fun ((w, l1), l2) ->
      let l2 = List.filter (fun x -> x < w) l2 in
      let b1 () = Bitset.of_list ~width:w l1 in
      let b2 = Bitset.of_list ~width:w l2 in
      let u = b1 () in
      Bitset.union_into ~into:u b2;
      let d = b1 () in
      Bitset.diff_into ~into:d b2;
      Bitset.equal u (Bitset.union (b1 ()) b2)
      && Bitset.equal d (Bitset.diff (b1 ()) b2))

let test_bitset_mutation () =
  let b = Bitset.create ~width:130 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 129;
  Bitset.add b 129;
  Alcotest.(check (list int)) "word-boundary elements" [ 0; 63; 64; 129 ]
    (Bitset.to_list b);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check bool) "out of range mem is false" false (Bitset.mem b 500);
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset.add: index 130 outside [0, 130)") (fun () ->
      Bitset.add b 130);
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) b;
  Alcotest.(check (list int)) "iter ascending" [ 0; 64; 129 ]
    (List.rev !acc);
  Alcotest.(check int) "fold" (0 + 64 + 129)
    (Bitset.fold (fun i a -> i + a) b 0)

(* ------------------------------------------------------------------ *)
(* Compact.freeze vs the Graph builder                                 *)

let gen_graph ?(n_transit = 25) ?(n_stub = 80) seed =
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  Gen.graph (Gen.generate ~params ~seed ())

let test_index_roundtrip () =
  let g = gen_graph 42 in
  let c = Compact.freeze g in
  Alcotest.(check int) "num_ases" (Graph.num_ases g) (Compact.num_ases c);
  for i = 0 to Compact.num_ases c - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "index_of (id %d)" i)
      (Some i)
      (Compact.index_of c (Compact.id c i));
    Alcotest.(check int) "index_of_exn" i
      (Compact.index_of_exn c (Compact.id c i))
  done;
  Alcotest.(check (option int)) "unknown AS" None
    (Compact.index_of c (asn 999_999));
  Alcotest.check_raises "index_of_exn unknown"
    (Invalid_argument "Compact.index_of_exn: unknown AS999999") (fun () ->
      ignore (Compact.index_of_exn c (asn 999_999)));
  Alcotest.(check (list int)) "asns = Graph.ases"
    (List.map Asn.to_int (Graph.ases g))
    (Array.to_list (Array.map Asn.to_int (Compact.asns c)))

let test_degrees_and_neighbors () =
  let g = gen_graph 7 in
  let c = Compact.freeze g in
  for i = 0 to Compact.num_ases c - 1 do
    let x = Compact.id c i in
    Alcotest.(check int)
      (Printf.sprintf "degree of AS%d" (Asn.to_int x))
      (Graph.degree g x) (Compact.degree c i);
    let collect iter =
      let acc = ref [] in
      iter c i (fun j -> acc := Compact.id c j :: !acc);
      List.rev !acc
    in
    Alcotest.(check (list int)) "providers row"
      (List.map Asn.to_int (Asn.Set.elements (Graph.providers g x)))
      (List.map Asn.to_int (collect Compact.iter_providers));
    Alcotest.(check (list int)) "peers row"
      (List.map Asn.to_int (Asn.Set.elements (Graph.peers g x)))
      (List.map Asn.to_int (collect Compact.iter_peers));
    Alcotest.(check (list int)) "customers row"
      (List.map Asn.to_int (Asn.Set.elements (Graph.customers g x)))
      (List.map Asn.to_int (collect Compact.iter_customers));
    Alcotest.(check int) "neighbors count (allocation-free iter)"
      (Asn.Set.cardinal (Graph.neighbors g x))
      (let n = ref 0 in
       Compact.iter_neighbors c i (fun _ -> incr n);
       !n)
  done

let test_membership_and_links () =
  let g = gen_graph 11 in
  let c = Compact.freeze g in
  let n = Compact.num_ases c in
  (* spot-check relationship membership on a grid of pairs *)
  let step = Stdlib.max 1 (n / 17) in
  let i = ref 0 in
  while !i < n do
    let j = ref 0 in
    while !j < n do
      let x = Compact.id c !i and y = Compact.id c !j in
      Alcotest.(check bool) "mem_provider"
        (Asn.Set.mem y (Graph.providers g x))
        (Compact.mem_provider c !i !j);
      Alcotest.(check bool) "mem_peer"
        (Asn.Set.mem y (Graph.peers g x))
        (Compact.mem_peer c !i !j);
      Alcotest.(check bool) "mem_customer"
        (Asn.Set.mem y (Graph.customers g x))
        (Compact.mem_customer c !i !j);
      Alcotest.(check bool) "connected" (Graph.connected g x y)
        (Compact.connected c !i !j);
      j := !j + step
    done;
    i := !i + step
  done;
  (* link iteration must reproduce the (sorted) Graph folds exactly *)
  let fold_peering =
    List.rev
      (Graph.fold_peering_links
         (fun x y acc -> (Asn.to_int x, Asn.to_int y) :: acc)
         g [])
  in
  let compact_peering =
    let acc = ref [] in
    Compact.iter_peering_links c (fun i j ->
        acc :=
          (Asn.to_int (Compact.id c i), Asn.to_int (Compact.id c j)) :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list (pair int int))) "peering links order" fold_peering
    compact_peering;
  let fold_p2c =
    List.rev
      (Graph.fold_provider_customer_links
         (fun ~provider ~customer acc ->
           (Asn.to_int provider, Asn.to_int customer) :: acc)
         g [])
  in
  let compact_p2c =
    let acc = ref [] in
    Compact.iter_provider_customer_links c (fun ~provider ~customer ->
        acc :=
          ( Asn.to_int (Compact.id c provider),
            Asn.to_int (Compact.id c customer) )
          :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list (pair int int))) "p2c links order" fold_p2c compact_p2c;
  Alcotest.(check int) "p2p count" (Graph.num_peering_links g)
    (Compact.num_peering_links c);
  Alcotest.(check int) "p2c count" (Graph.num_provider_customer_links g)
    (Compact.num_provider_customer_links c)

let test_freeze_is_snapshot () =
  let g = gen_graph 3 in
  let c = Compact.freeze g in
  let before = Compact.num_peering_links c in
  Graph.add_peering g (asn 888_888) (asn 888_889);
  Alcotest.(check int) "later mutation invisible" before
    (Compact.num_peering_links c);
  Alcotest.(check (option int)) "new AS unknown to the frozen view" None
    (Compact.index_of c (asn 888_888))

(* ------------------------------------------------------------------ *)
(* Path algebra equivalence: compact = legacy                          *)

let mid_sets_equal = Asn.Map.equal Asn.Set.equal

let check_equiv name legacy compact_back =
  if not (mid_sets_equal legacy compact_back) then
    Alcotest.failf "%s: compact and legacy mid-sets differ" name

let qcheck_scenario_equivalence =
  QCheck.Test.make ~count:12
    ~name:"Path_enum_compact.scenario_paths = Path_enum.scenario_paths"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = gen_graph ~n_transit:15 ~n_stub:50 seed in
      let c = Compact.freeze g in
      let scenarios =
        Path_enum.[ Grc; Ma_all; Ma_direct_only; Ma_top 1; Ma_top 3 ]
      in
      List.for_all
        (fun x ->
          let i = Compact.index_of_exn c x in
          List.for_all
            (fun s ->
              mid_sets_equal
                (Path_enum.scenario_paths g s x)
                (Path_enum_compact.to_mid_sets c
                   (Path_enum_compact.scenario_paths c s i))
              && mid_sets_equal
                   (Path_enum.additional_paths g s x)
                   (Path_enum_compact.to_mid_sets c
                      (Path_enum_compact.additional_paths c s i)))
            scenarios)
        (Graph.ases g))

let qcheck_primitive_equivalence =
  QCheck.Test.make ~count:12
    ~name:"compact grc/ma_direct/ma_indirect/by_destination = legacy"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = gen_graph ~n_transit:15 ~n_stub:50 seed in
      let c = Compact.freeze g in
      List.for_all
        (fun x ->
          let i = Compact.index_of_exn c x in
          mid_sets_equal (Path_enum.grc g x)
            (Path_enum_compact.to_mid_sets c (Path_enum_compact.grc c i))
          && mid_sets_equal
               (Path_enum.ma_direct g x)
               (Path_enum_compact.to_mid_sets c
                  (Path_enum_compact.ma_direct c i))
          && mid_sets_equal
               (Path_enum.ma_indirect g x)
               (Path_enum_compact.to_mid_sets c
                  (Path_enum_compact.ma_indirect c i))
          && mid_sets_equal
               (Path_enum.by_destination (Path_enum.grc g x))
               (Path_enum_compact.to_mid_sets c
                  (Path_enum_compact.by_destination
                     (Path_enum_compact.grc c i))))
        (Graph.ases g))

let qcheck_concluded_equivalence =
  QCheck.Test.make ~count:12
    ~name:"ma_indirect ?concluded and ma_direct ?partners = legacy"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = gen_graph ~n_transit:15 ~n_stub:50 seed in
      let c = Compact.freeze g in
      (* an arbitrary but deterministic MA subset *)
      let concluded_asn y z = (Asn.to_int y + Asn.to_int z) mod 3 = 0 in
      let concluded_idx y z = concluded_asn (Compact.id c y) (Compact.id c z) in
      List.for_all
        (fun x ->
          let i = Compact.index_of_exn c x in
          let partners_legacy =
            Asn.Set.filter
              (fun y -> concluded_asn x y)
              (Graph.peers g x)
          in
          let partners_compact =
            let b = Bitset.create ~width:(Compact.num_ases c) in
            Compact.iter_peers c i (fun y ->
                if concluded_idx i y then Bitset.add b y);
            b
          in
          mid_sets_equal
            (Path_enum.ma_indirect ~concluded:concluded_asn g x)
            (Path_enum_compact.to_mid_sets c
               (Path_enum_compact.ma_indirect ~concluded:concluded_idx c i))
          && mid_sets_equal
               (Path_enum.ma_direct ~partners:partners_legacy g x)
               (Path_enum_compact.to_mid_sets c
                  (Path_enum_compact.ma_direct ~partners:partners_compact c i)))
        (Graph.ases g))

let qcheck_top_partners_equivalence =
  QCheck.Test.make ~count:12 ~name:"compact top_partners = legacy"
    QCheck.(pair (int_range 1 1000) (int_range 0 6))
    (fun (seed, n) ->
      let g = gen_graph ~n_transit:15 ~n_stub:50 seed in
      let c = Compact.freeze g in
      List.for_all
        (fun x ->
          let i = Compact.index_of_exn c x in
          List.map Asn.to_int (Path_enum.top_partners g ~n x)
          = List.map
              (fun j -> Asn.to_int (Compact.id c j))
              (Path_enum_compact.top_partners c ~n i))
        (Graph.ases g))

let test_counts_on_fig1 () =
  let g = Gen.fig1 () in
  let c = Compact.freeze g in
  let d = Compact.index_of_exn c (Gen.fig1_asn 'D') in
  let m = Path_enum_compact.grc c d in
  Alcotest.(check int) "total_count" 4 (Path_enum_compact.total_count m);
  Alcotest.(check int) "dest_set" 4
    (Bitset.cardinal (Path_enum_compact.dest_set m));
  check_equiv "fig1 D grc"
    (Path_enum.grc g (Gen.fig1_asn 'D'))
    (Path_enum_compact.to_mid_sets c m)

(* ------------------------------------------------------------------ *)
(* Versioned binary snapshots                                          *)

(* Serialized equality is the strongest practical equality for the
   frozen view: identical interning tables, CSR arrays and counts. *)
let frozen_equal a b =
  String.equal (Compact.Snapshot.to_string a) (Compact.Snapshot.to_string b)

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~count:20 ~name:"Snapshot.of_string (to_string c) = c"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = Compact.freeze (gen_graph ~n_transit:10 ~n_stub:40 seed) in
      let image = Compact.Snapshot.to_string c in
      let c', extras = Compact.Snapshot.of_string image in
      frozen_equal c c' && extras = []
      && String.equal image (Compact.Snapshot.to_string c'))

let caida_sample = "# comment line\n1|2|-1|bgp\n2|3|0|mlp\n\n1|4|-1|bgp\n"

let test_snapshot_caida_roundtrip () =
  let c = Compact.freeze (Caida.of_string caida_sample) in
  let file = Filename.temp_file "panagree_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Compact.Snapshot.save file c;
      let c' = Compact.Snapshot.load file in
      Alcotest.(check bool) "caida round-trip" true (frozen_equal c c');
      Alcotest.(check int) "ases" 4 (Compact.num_ases c');
      Alcotest.(check int) "p2c" 2
        (Compact.num_provider_customer_links c');
      Alcotest.(check int) "p2p" 1 (Compact.num_peering_links c'))

let test_snapshot_bundle_roundtrip () =
  let c = Compact.freeze (gen_graph ~n_transit:8 ~n_stub:30 5) in
  let geo = Geo.of_compact ~seed:9 c in
  let bw = Bandwidth.of_compact ~coefficient:2.5 c in
  let file = Filename.temp_file "panagree_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Snapshot.save file ~geo ~bandwidth:bw c;
      let b = Snapshot.load file in
      Alcotest.(check bool) "topo equal" true
        (frozen_equal c b.Snapshot.topo);
      (match b.Snapshot.geo with
      | None -> Alcotest.fail "geo section lost"
      | Some geo' ->
          Alcotest.(check bool) "geo tables equal" true
            (Geo.bindings geo = Geo.bindings geo'));
      match b.Snapshot.bandwidth with
      | None -> Alcotest.fail "bandwidth section lost"
      | Some bw' ->
          Alcotest.(check (float 0.0)) "coefficient" 2.5
            (Bandwidth.coefficient bw'))

let test_snapshot_rejects_corruption () =
  let c = Compact.freeze (Caida.of_string caida_sample) in
  let image = Compact.Snapshot.to_string c in
  let expect_invalid name bytes msg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Compact.Snapshot.of_string bytes))
  in
  let flip pos byte =
    let b = Bytes.of_string image in
    Bytes.set b pos byte;
    Bytes.to_string b
  in
  expect_invalid "bad magic"
    ("NOTASNAP" ^ String.sub image 8 (String.length image - 8))
    "Compact.Snapshot.load: bad magic \"NOTASNAP\" (not a panagree snapshot)";
  expect_invalid "flipped version byte"
    (flip 8 '\255')
    "Compact.Snapshot.load: unsupported format version 255 (this build \
     reads version 1)";
  let declared = String.length image - 40 in
  expect_invalid "truncated payload"
    (String.sub image 0 50)
    (Printf.sprintf
       "Compact.Snapshot.load: truncated payload (header declares %d \
        bytes, file ends at byte offset 50)"
       declared);
  (* corrupt one payload byte: the checksum rejects it before any
     decoding happens *)
  expect_invalid "corrupted payload" (flip 60 '\255')
    (Printf.sprintf
       "Compact.Snapshot.load: checksum mismatch (corrupt snapshot \
        payload in bytes 40..%d)"
       (String.length image - 1));
  expect_invalid "truncated header" (String.sub image 0 10)
    "Compact.Snapshot.load: truncated header (file ends at byte offset \
     10, need at least 40)"

(* Regression for the byte-offset reporting on section-level damage: the
   header checks (length, checksum) pass, so the error must come from the
   section walk and name where in the file decoding stopped.  Images are
   hand-built with a correct digest over a damaged payload. *)
let make_image ~n_sections payload =
  let out = Buffer.create 64 in
  Buffer.add_string out "PANSNAPS";
  Buffer.add_int32_le out 1l;
  Buffer.add_int32_le out (Int32.of_int n_sections);
  Buffer.add_int64_le out (Int64.of_int (String.length payload));
  Buffer.add_string out (Digest.string payload);
  Buffer.add_string out payload;
  Buffer.contents out

let test_snapshot_corruption_offsets () =
  let expect_invalid name bytes msg =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Compact.Snapshot.of_string bytes))
  in
  expect_invalid "missing section header"
    (make_image ~n_sections:1 "")
    "Compact.Snapshot.load: truncated section header at byte offset 40";
  expect_invalid "truncated section tag"
    (make_image ~n_sections:1 "\x04\x00co")
    "Compact.Snapshot.load: truncated section tag at byte offset 42";
  let section tag body_len_field body =
    let buf = Buffer.create 32 in
    Buffer.add_int16_le buf (String.length tag);
    Buffer.add_string buf tag;
    Buffer.add_int64_le buf (Int64.of_int body_len_field);
    Buffer.add_string buf body;
    Buffer.contents buf
  in
  expect_invalid "section body cut short"
    (make_image ~n_sections:1 (section "core" 100 ""))
    "Compact.Snapshot.load: truncated section \"core\" at byte offset 54 \
     (declares 100 bytes, 0 available)";
  (* a "core" body whose ASN-table count points past the body's end *)
  let huge_table =
    let b = Buffer.create 8 in
    Buffer.add_int64_le b 1000L;
    Buffer.contents b
  in
  expect_invalid "ASN table overruns section"
    (make_image ~n_sections:1 (section "core" 8 huge_table))
    "Compact.Snapshot.load: truncated payload (ASN table of 1000 entries \
     at byte offset 62)";
  (* trailing garbage after the declared sections *)
  let c = Compact.freeze (Caida.of_string caida_sample) in
  let image = Compact.Snapshot.to_string c in
  let payload = String.sub image 40 (String.length image - 40) in
  expect_invalid "trailing bytes after last section"
    (make_image ~n_sections:1 (payload ^ "x"))
    (Printf.sprintf
       "Compact.Snapshot.load: payload has 1 trailing bytes at byte \
        offset %d"
       (String.length image))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_bitset_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_bitset_ops;
    QCheck_alcotest.to_alcotest qcheck_bitset_into;
    Alcotest.test_case "bitset mutation / word boundaries" `Quick
      test_bitset_mutation;
    Alcotest.test_case "index round trip" `Quick test_index_roundtrip;
    Alcotest.test_case "degrees and adjacency rows" `Quick
      test_degrees_and_neighbors;
    Alcotest.test_case "membership and link iteration" `Quick
      test_membership_and_links;
    Alcotest.test_case "freeze is a snapshot" `Quick test_freeze_is_snapshot;
    QCheck_alcotest.to_alcotest qcheck_scenario_equivalence;
    QCheck_alcotest.to_alcotest qcheck_primitive_equivalence;
    QCheck_alcotest.to_alcotest qcheck_concluded_equivalence;
    QCheck_alcotest.to_alcotest qcheck_top_partners_equivalence;
    Alcotest.test_case "fig1 counts (hand-checked)" `Quick test_counts_on_fig1;
    QCheck_alcotest.to_alcotest qcheck_snapshot_roundtrip;
    Alcotest.test_case "snapshot: CAIDA sample round-trip" `Quick
      test_snapshot_caida_roundtrip;
    Alcotest.test_case "snapshot: geo+bandwidth bundle round-trip" `Quick
      test_snapshot_bundle_roundtrip;
    Alcotest.test_case "snapshot: corruption rejected loudly" `Quick
      test_snapshot_rejects_corruption;
    Alcotest.test_case "snapshot: errors name the byte offset" `Quick
      test_snapshot_corruption_offsets;
  ]
