(* Tests for the bounded path-combination machinery: beacon segment caps
   and the combinator's per-stage budgets. *)

open Pan_topology
open Pan_scion

let dense_graph =
  lazy
    (Gen.graph
       (Gen.generate
          ~params:
            { Gen.default_params with Gen.n_transit = 60; Gen.n_stub = 240 }
          ~seed:42 ()))

let test_beacon_segment_cap () =
  let g = Lazy.force dense_graph in
  let authz = Authz.create g in
  let capped = Beacon.run ~max_segments_per_as:3 authz in
  let generous = Beacon.run ~max_segments_per_as:64 authz in
  List.iter
    (fun x ->
      let n = List.length (Beacon.down_segments capped x) in
      Alcotest.(check bool) "cap respected" true (n <= 3);
      Alcotest.(check bool) "cap <= generous" true
        (n <= List.length (Beacon.down_segments generous x)))
    (Graph.ases g);
  Alcotest.(check bool) "cap reduces total segments" true
    (Beacon.segment_count capped <= Beacon.segment_count generous)

let test_beacon_cap_keeps_shortest () =
  let g = Lazy.force dense_graph in
  let authz = Authz.create g in
  let capped = Beacon.run ~max_segments_per_as:2 authz in
  let generous = Beacon.run ~max_segments_per_as:64 authz in
  List.iter
    (fun x ->
      match (Beacon.down_segments capped x, Beacon.down_segments generous x)
      with
      | c :: _, all when all <> [] ->
          let shortest =
            List.fold_left
              (fun acc s -> Stdlib.min acc (Segment.length s))
              max_int all
          in
          Alcotest.(check int) "kept a shortest segment" shortest
            (Segment.length c)
      | _ -> ())
    (Graph.ases g)

let test_beacon_cap_validation () =
  let g = Lazy.force dense_graph in
  try
    ignore (Beacon.run ~max_segments_per_as:0 (Authz.create g));
    Alcotest.fail "cap 0 accepted"
  with Invalid_argument _ -> ()

let ps_with_all_mas () =
  let g = Lazy.force dense_graph in
  let mas = Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g [] in
  let authz = Authz.create ~mas g in
  (g, Path_server.build authz (Beacon.run authz))

let test_combinator_deterministic () =
  let g, ps = ps_with_all_mas () in
  let ases = Array.of_list (Graph.ases g) in
  let src = ases.(5) and dst = ases.(Array.length ases - 5) in
  let p1 = Combinator.end_to_end ~max_paths:10 ps ~src ~dst in
  let p2 = Combinator.end_to_end ~max_paths:10 ps ~src ~dst in
  Alcotest.(check bool) "same result on repeat" true
    (List.map Segment.ases p1 = List.map Segment.ases p2)

let test_combinator_max_paths () =
  let g, ps = ps_with_all_mas () in
  let ases = Array.of_list (Graph.ases g) in
  let src = ases.(5) and dst = ases.(Array.length ases - 5) in
  let few = Combinator.end_to_end ~max_paths:3 ps ~src ~dst in
  Alcotest.(check bool) "max_paths respected" true (List.length few <= 3);
  let many = Combinator.end_to_end ~max_paths:50 ps ~src ~dst in
  Alcotest.(check bool) "more allowed, more found" true
    (List.length many >= List.length few);
  (* shortest-first ordering *)
  let rec sorted = function
    | s1 :: (s2 :: _ as rest) ->
        Segment.length s1 <= Segment.length s2 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by length" true (sorted many)

let test_combinator_budget_monotone () =
  let g, ps = ps_with_all_mas () in
  let ases = Array.of_list (Graph.ases g) in
  let src = ases.(5) and dst = ases.(Array.length ases - 5) in
  let small =
    Combinator.end_to_end ~max_paths:50 ~candidate_budget:50 ps ~src ~dst
  in
  let large =
    Combinator.end_to_end ~max_paths:50 ~candidate_budget:50_000 ps ~src ~dst
  in
  Alcotest.(check bool) "larger budget finds at least as many" true
    (List.length large >= List.length small)

let test_path_server_up_cache_consistent () =
  let g, ps = ps_with_all_mas () in
  let ases = Array.of_list (Graph.ases g) in
  let x = ases.(7) in
  let u1 = Path_server.up_segments ps x in
  let u2 = Path_server.up_segments ps x in
  Alcotest.(check bool) "cached result identical" true
    (List.map Segment.ases u1 = List.map Segment.ases u2)

let suite =
  [
    Alcotest.test_case "beacon segment cap" `Quick test_beacon_segment_cap;
    Alcotest.test_case "beacon cap keeps shortest" `Quick
      test_beacon_cap_keeps_shortest;
    Alcotest.test_case "beacon cap validation" `Quick
      test_beacon_cap_validation;
    Alcotest.test_case "combinator deterministic" `Quick
      test_combinator_deterministic;
    Alcotest.test_case "combinator max_paths / ordering" `Quick
      test_combinator_max_paths;
    Alcotest.test_case "combinator budget monotone" `Quick
      test_combinator_budget_monotone;
    Alcotest.test_case "path server cache" `Quick
      test_path_server_up_cache_consistent;
  ]
