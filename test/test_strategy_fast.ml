(* The fast best-response kernel against the reference oracle, the
   prefix-sum helpers behind it, and a byte-level golden pinning the
   Reference pipeline to its pre-kernel-swap output. *)

open Pan_numerics
open Pan_bosco

let tol = 1e-12

(* ------------------------------------------------------------------ *)
(* Prefix-sum helpers                                                  *)

let test_exclusive_sums () =
  Alcotest.(check (array (float 0.0)))
    "sums" [| 0.0; 1.0; 3.0; 6.0 |]
    (Prefix.exclusive_sums [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (array (float 0.0))) "empty" [| 0.0 |]
    (Prefix.exclusive_sums [||]);
  let dst = Array.make 6 Float.nan in
  Prefix.exclusive_sums_into ~dst [| 1.0; 2.0; 3.0 |];
  Alcotest.(check (float 0.0)) "into last used" 6.0 dst.(3);
  Alcotest.(check bool) "into spare untouched" true (Float.is_nan dst.(4));
  Alcotest.check_raises "into too short"
    (Invalid_argument "Prefix.exclusive_sums_into: dst too short") (fun () ->
      Prefix.exclusive_sums_into ~dst:(Array.make 2 0.0) [| 1.0; 2.0 |])

let test_suffix_sums () =
  Alcotest.(check (array (float 0.0)))
    "sums" [| 6.0; 5.0; 3.0; 0.0 |]
    (Prefix.suffix_sums [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (array (float 0.0))) "empty" [| 0.0 |]
    (Prefix.suffix_sums [||]);
  (* the point of suffix sums: a tiny tail keeps full relative
     precision instead of inheriting the total's absolute error *)
  let tiny = 1e-18 in
  let sums = Prefix.suffix_sums [| 1.0; 1.0; tiny |] in
  Alcotest.(check (float 0.0)) "tiny tail exact" tiny sums.(2)

let test_range_sum () =
  let sums = Prefix.exclusive_sums [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "middle" 5.0 (Prefix.range_sum sums 1 3);
  Alcotest.(check (float 0.0)) "all" 10.0 (Prefix.range_sum sums 0 4);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Prefix.range_sum sums 2 2)

let test_lower_bound () =
  let xs = [| 1.0; 2.0; 2.0; 5.0 |] in
  Alcotest.(check int) "first of run" 1 (Prefix.lower_bound xs 2.0);
  Alcotest.(check int) "below all" 0 (Prefix.lower_bound xs 0.0);
  Alcotest.(check int) "above all" 4 (Prefix.lower_bound xs 6.0);
  Alcotest.(check int) "between" 3 (Prefix.lower_bound xs 3.0);
  Alcotest.(check int) "restricted lo" 2
    (Prefix.lower_bound ~lo:2 ~hi:4 xs 2.0);
  Alcotest.(check int) "restricted hi" 2 (Prefix.lower_bound ~lo:1 ~hi:2 xs 9.0)

(* ------------------------------------------------------------------ *)
(* Fast kernel ≡ reference oracle                                      *)

let dist_of_pick pick =
  match pick mod 4 with
  | 0 -> Distribution.uniform (-1.0) 1.0
  | 1 -> Distribution.uniform (-0.3) 1.7
  | 2 -> Distribution.triangular (-1.0) 0.25 1.0
  | _ -> Distribution.gaussian 0.1 0.6

(* |ref − fast| ≤ tol·max(1, |ref|): an envelope crossing far from the
   origin scales both kernels' reassociation error by its magnitude, so
   the bound goes relative past 1. *)
let thresholds_close a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         x = y || Float.abs (x -. y) <= tol *. Float.max 1.0 (Float.abs x))
       a b

(* A claim list that deliberately contains exact duplicates (quantized
   samples), so the dedup in Claim.of_list and zero-width strategy
   intervals are both exercised. *)
let quantized_claims rng dist w =
  Claim.of_list
    (List.init w (fun _ ->
         Float.round (Distribution.sample dist rng *. 8.0) /. 8.0))

let qcheck_fast_equals_reference =
  QCheck.Test.make ~count:120 ~name:"fast best response = reference (1e-12)"
    QCheck.(pair (int_range 1 10_000) (int_range 1 40))
    (fun (seed, w) ->
      let rng = Rng.create seed in
      let dist_own = dist_of_pick seed and dist_opp = dist_of_pick (seed + 1) in
      let own =
        if seed mod 5 = 0 then quantized_claims rng dist_own w
        else Claim.sample rng dist_own w
      in
      let opp_claims =
        if w = 1 then Claim.of_list [] (* degenerate: cancel only *)
        else Claim.sample rng dist_opp w
      in
      let ws = Workspace.create () in
      (* Walk a few dynamics steps so the opponent strategies tested
         include realistic ones with collapsed (zero-probability)
         intervals, not just truthful rounding. *)
      let opponent = ref (Strategy.truthful_rounding opp_claims) in
      let ok = ref true in
      for _ = 0 to 2 do
        let reference =
          Strategy.best_response_reference ~opponent_dist:dist_opp
            ~opponent:!opponent own
        in
        let fast =
          Strategy.best_response ~workspace:ws ~opponent_dist:dist_opp
            ~opponent:!opponent own
        in
        if
          not
            (thresholds_close
               (Strategy.thresholds reference)
               (Strategy.thresholds fast))
        then ok := false;
        (* next round: the roles flip, using the reference response so
           both kernels keep seeing identical inputs *)
        opponent :=
          Strategy.best_response_reference ~opponent_dist:dist_own
            ~opponent:reference opp_claims
      done;
      !ok)

let test_degenerate_cancel_only () =
  let own = Claim.of_list [] in
  let opp = Strategy.truthful_rounding (Claim.of_list [ 0.4; -0.2 ]) in
  let dist = Distribution.uniform (-1.0) 1.0 in
  let fast = Strategy.best_response ~opponent_dist:dist ~opponent:opp own in
  let reference =
    Strategy.best_response_reference ~opponent_dist:dist ~opponent:opp own
  in
  Alcotest.(check bool) "W=1 equal" true (Strategy.equal ~tol fast reference);
  Alcotest.(check (array (float 0.0)))
    "W=1 thresholds" [| neg_infinity; infinity |]
    (Strategy.thresholds fast)

let test_workspace_probs_bit_identical () =
  let rng = Rng.create 9 in
  let dist = Distribution.uniform (-1.0) 1.0 in
  let s = Strategy.truthful_rounding (Claim.sample rng dist 15) in
  let ws = Workspace.create () in
  let cached = Workspace.choice_probabilities ws dist (Strategy.thresholds s) in
  let plain = Strategy.choice_probabilities dist s in
  Alcotest.(check bool) "bitwise equal" true (cached = plain);
  let again = Workspace.choice_probabilities ws dist (Strategy.thresholds s) in
  Alcotest.(check bool) "second lookup hits cache" true (cached == again)

let test_strategy_equal_claim_tol () =
  (* Satellite check: Strategy.equal compares claims with the same
     tolerance as thresholds, so claim sets differing below tol cannot
     break a fixed point that the thresholds have reached. *)
  let c1 = Claim.of_list [ 0.5; -0.25 ] in
  let c2 = Claim.of_list [ 0.5 +. 1e-13; -0.25 ] in
  let s1 = Strategy.truthful_rounding c1 in
  let s2 =
    Strategy.of_thresholds c2 (Strategy.thresholds s1 |> Array.copy)
  in
  Alcotest.(check bool) "claims within tol equal" true
    (Strategy.equal ~tol:1e-9 s1 s2);
  Alcotest.(check bool) "claims beyond tol differ" false
    (Strategy.equal ~tol:1e-15 s1 s2)

(* ------------------------------------------------------------------ *)
(* Golden: the pipeline's output across the kernel swap                *)

let u1 = Distribution.uniform (-1.0) 1.0

(* (pod, rounds, converged, choices_x, choices_y) captured from
   Service.trials BEFORE the fast kernel existed (hex literals: exact
   bytes).  The Reference kernel must still reproduce them bit-for-bit;
   the Fast kernel must agree on every decision and match pod to 1e-12. *)
let golden_random =
  [
    (0x1.228c0ab948108p-2, 19, true, 3, 3);
    (0x1.525de0f04e3p-3, 26, true, 3, 3);
    (0x1.15ca33427087cp-2, 29, true, 3, 3);
    (0x1.0882d9875f702p-2, 31, true, 3, 3);
    (0x1.b3190b4fd0fap-3, 34, true, 3, 3);
    (0x1.787ce821f7e3p-3, 27, true, 4, 4);
  ]

let golden_grid =
  List.init 4 (fun _ -> (0x1.4fa5dce58e38p-3, 54, true, 4, 4))

let check_reports ~exact golden reports =
  Alcotest.(check int) "report count" (List.length golden)
    (List.length reports);
  List.iteri
    (fun i ((pod, rounds, converged, cx, cy), (r : Service.report)) ->
      let ctx fmt = Printf.sprintf "report %d: %s" i fmt in
      if exact then
        Alcotest.(check int64)
          (ctx "pod bits")
          (Int64.bits_of_float pod)
          (Int64.bits_of_float r.Service.pod)
      else
        Alcotest.(check bool)
          (ctx "pod within 1e-12")
          true
          (Float.abs (pod -. r.Service.pod) <= 1e-12);
      Alcotest.(check int) (ctx "rounds") rounds r.Service.rounds;
      Alcotest.(check bool) (ctx "converged") converged r.Service.converged;
      Alcotest.(check int) (ctx "choices_x") cx r.Service.equilibrium_choices_x;
      Alcotest.(check int) (ctx "choices_y") cy r.Service.equilibrium_choices_y)
    (List.combine golden reports)

let random_trials kernel =
  Service.trials ~kernel ~rng:(Rng.create 42) ~dist_x:u1 ~dist_y:u1 ~w:12 ~n:6
    ()

let grid_trials kernel =
  Service.trials ~construction:Service.Grid ~kernel ~rng:(Rng.create 7)
    ~dist_x:(Distribution.uniform (-0.5) 1.0)
    ~dist_y:u1 ~w:9 ~n:4 ()

let test_golden_reference_exact () =
  check_reports ~exact:true golden_random
    (random_trials Equilibrium.Reference);
  check_reports ~exact:true golden_grid (grid_trials Equilibrium.Reference)

let test_golden_fast_close () =
  check_reports ~exact:false golden_random (random_trials Equilibrium.Fast);
  check_reports ~exact:false golden_grid (grid_trials Equilibrium.Fast)

let test_kernels_same_verdict () =
  (* is_equilibrium must agree with the dynamics' own fixed point under
     either kernel (shared predicate). *)
  List.iter
    (fun kernel ->
      List.iter
        (fun (r : Service.report) ->
          Alcotest.(check bool) "verify" r.Service.converged
            (Equilibrium.is_equilibrium ~kernel r.Service.game
               r.Service.strategy_x r.Service.strategy_y))
        (random_trials kernel))
    [ Equilibrium.Fast; Equilibrium.Reference ]

let suite =
  [
    Alcotest.test_case "Prefix.exclusive_sums" `Quick test_exclusive_sums;
    Alcotest.test_case "Prefix.suffix_sums" `Quick test_suffix_sums;
    Alcotest.test_case "Prefix.range_sum" `Quick test_range_sum;
    Alcotest.test_case "Prefix.lower_bound" `Quick test_lower_bound;
    QCheck_alcotest.to_alcotest qcheck_fast_equals_reference;
    Alcotest.test_case "degenerate cancel-only choice set" `Quick
      test_degenerate_cancel_only;
    Alcotest.test_case "workspace probabilities bit-identical" `Quick
      test_workspace_probs_bit_identical;
    Alcotest.test_case "Strategy.equal applies tol to claims" `Quick
      test_strategy_equal_claim_tol;
    Alcotest.test_case "golden: Reference kernel byte-identical" `Quick
      test_golden_reference_exact;
    Alcotest.test_case "golden: Fast kernel same decisions" `Quick
      test_golden_fast_close;
    Alcotest.test_case "is_equilibrium consistent across kernels" `Quick
      test_kernels_same_verdict;
  ]
