(* Tests for the flow-redistribution model (Eq. 7): hand-computed flow
   deltas and utility changes on the Fig. 1 example. *)

open Pan_topology
open Pan_econ

let approx = Alcotest.(check (float 1e-9))
let a = Gen.fig1_asn

let scenario () = snd (Scenario_gen.fig1_scenario ())

let test_validation () =
  let g, s = Scenario_gen.fig1_scenario () in
  let agreement = Traffic_model.agreement s in
  let d = a 'D' and e = a 'E' in
  let bad_demand =
    Traffic_model.
      {
        beneficiary = d;
        transit = e;
        dest = a 'I';
        (* not granted: I is E's customer, the agreement grants B and F *)
        reroutable = 1.0;
        reroute_from = None;
        attracted_max = 1.0;
      }
  in
  match
    Traffic_model.make_scenario ~graph:g ~agreement
      ~businesses:
        [ (d, Traffic_model.business s d); (e, Traffic_model.business s e) ]
      ~baseline:
        [
          (d, Traffic_model.baseline_flows s d);
          (e, Traffic_model.baseline_flows s e);
        ]
      ~demands:[ bad_demand ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ungranted destination accepted"

let test_zero_choice_is_neutral () =
  let s = scenario () in
  let ux, uy = Traffic_model.utilities_exn s (Traffic_model.zero_choice s) in
  approx "u_x zero" 0.0 ux;
  approx "u_y zero" 0.0 uy

let test_apply_flow_deltas () =
  let s = scenario () in
  let d = a 'D' and e = a 'E' and b = a 'B' and aa = a 'A' and f = a 'F' in
  (* choices: only the first demand (D via E to B) at r=2, δ=1 *)
  let choices =
    Traffic_model.
      [
        { reroute = 2.0; attracted = 1.0 };
        { reroute = 0.0; attracted = 0.0 };
        { reroute = 0.0; attracted = 0.0 };
      ]
  in
  match Traffic_model.apply s choices with
  | Error msg -> Alcotest.fail msg
  | Ok (fd, fe) ->
      let base_d = Traffic_model.baseline_flows s d in
      let base_e = Traffic_model.baseline_flows s e in
      (* D: +3 to E, -2 from A, +1 from its stub *)
      approx "D to E" (Flows.flow_to base_d e +. 3.0) (Flows.flow_to fd e);
      approx "D to A" (Flows.flow_to base_d aa -. 2.0) (Flows.flow_to fd aa);
      approx "D stub"
        (Flows.flow_to base_d (Flows.stub d) +. 1.0)
        (Flows.flow_to fd (Flows.stub d));
      (* E: +3 from D, +3 to B *)
      approx "E to D" (Flows.flow_to base_e d +. 3.0) (Flows.flow_to fe d);
      approx "E to B" (Flows.flow_to base_e b +. 3.0) (Flows.flow_to fe b);
      approx "E to F unchanged" (Flows.flow_to base_e f) (Flows.flow_to fe f)

let test_utility_hand_computation () =
  (* With transit price 1, stub price 2, internal rate 0.1:
     choice: D-E-B at reroute r, attracted δ.
     D: saves r from A (+r), earns 2δ from stub, internal flow change:
        f_D = (Σ)/2: Σ changes by (+r+δ to E) + (-r from A) + (+δ stub)
        = +2δ/2 = δ -> internal cost +0.1δ
        u_D = r + 2δ - 0.1δ = r + 1.9δ
     E: pays B for r+δ (-(r+δ)), internal: Σ changes +2(r+δ) -> +(r+δ)
        -> cost 0.1(r+δ); u_E = -(1.1)(r+δ). *)
  let s = scenario () in
  let r = 2.0 and dl = 1.0 in
  let choices =
    Traffic_model.
      [
        { reroute = r; attracted = dl };
        { reroute = 0.0; attracted = 0.0 };
        { reroute = 0.0; attracted = 0.0 };
      ]
  in
  let ux, uy = Traffic_model.utilities_exn s choices in
  approx "u_D analytic" (r +. (1.9 *. dl)) ux;
  approx "u_E analytic" (-1.1 *. (r +. dl)) uy

let test_choice_bounds_enforced () =
  let s = scenario () in
  let too_much =
    Traffic_model.
      [
        { reroute = 100.0; attracted = 0.0 };
        { reroute = 0.0; attracted = 0.0 };
        { reroute = 0.0; attracted = 0.0 };
      ]
  in
  (match Traffic_model.utilities s too_much with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "excess reroute accepted");
  match Traffic_model.utilities s [ Traffic_model.{ reroute = 0.0; attracted = 0.0 } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arity accepted"

let test_full_choice_shape () =
  let s = scenario () in
  let full = Traffic_model.full_choice s in
  Alcotest.(check int) "one choice per demand"
    (List.length (Traffic_model.demands s))
    (List.length full);
  List.iter2
    (fun (d : Traffic_model.segment_demand) (c : Traffic_model.choice) ->
      approx "reroute maxed" d.Traffic_model.reroutable c.Traffic_model.reroute;
      approx "attracted maxed" d.Traffic_model.attracted_max
        c.Traffic_model.attracted)
    (Traffic_model.demands s) full

let test_allowance () =
  approx "allowance" 5.0
    (Traffic_model.allowance Traffic_model.{ reroute = 3.0; attracted = 2.0 })

let test_monotone_in_reroute () =
  (* more rerouted traffic always helps the beneficiary and hurts the
     transit party (linear prices) *)
  let s = scenario () in
  let at r =
    Traffic_model.utilities_exn s
      Traffic_model.
        [
          { reroute = r; attracted = 0.0 };
          { reroute = 0.0; attracted = 0.0 };
          { reroute = 0.0; attracted = 0.0 };
        ]
  in
  let ux1, uy1 = at 1.0 and ux2, uy2 = at 2.0 in
  Alcotest.(check bool) "beneficiary gains more" true (ux2 > ux1);
  Alcotest.(check bool) "transit party loses more" true (uy2 < uy1)

let suite =
  [
    Alcotest.test_case "scenario validation" `Quick test_validation;
    Alcotest.test_case "zero choice neutral" `Quick test_zero_choice_is_neutral;
    Alcotest.test_case "flow deltas (Eq. 7c hand-check)" `Quick
      test_apply_flow_deltas;
    Alcotest.test_case "utilities analytic hand-check" `Quick
      test_utility_hand_computation;
    Alcotest.test_case "choice bounds enforced" `Quick
      test_choice_bounds_enforced;
    Alcotest.test_case "full choice shape" `Quick test_full_choice_shape;
    Alcotest.test_case "allowance" `Quick test_allowance;
    Alcotest.test_case "monotone in reroute" `Quick test_monotone_in_reroute;
  ]
