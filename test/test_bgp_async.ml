(* Tests for the message-passing (asynchronous) SPVP model. *)

open Pan_topology
open Pan_numerics
open Pan_routing

let test_good_gadget_quiesces () =
  match Bgp_async.run ~schedule:Bgp_async.Fifo (Gadgets.good_gadget ()) with
  | Bgp_async.Quiesced { assignment; messages } ->
      Alcotest.(check bool) "messages flowed" true (messages > 0);
      Alcotest.(check bool) "stable at quiescence" true
        (Spp.is_stable (Gadgets.good_gadget ()) assignment);
      (* the unique stable state: direct routes *)
      List.iter
        (fun n ->
          Alcotest.(check bool) "direct route" true
            (Asn.Map.find n assignment = Some [ n; Asn.of_int 0 ]))
        (Spp.nodes (Gadgets.good_gadget ()))
  | Bgp_async.Diverged _ -> Alcotest.fail "GOOD GADGET must quiesce"

let test_quiescence_implies_stability () =
  (* whenever the network quiesces, the result is a stable assignment;
     DISAGREE-like instances may instead livelock, which is fine here *)
  let quiesced = ref 0 in
  List.iter
    (fun instance ->
      for seed = 1 to 5 do
        match
          Bgp_async.run ~max_messages:20_000
            ~schedule:(Bgp_async.Random_delivery (Rng.create seed))
            instance
        with
        | Bgp_async.Quiesced { assignment; _ } ->
            incr quiesced;
            Alcotest.(check bool) "stable" true
              (Spp.is_stable instance assignment)
        | Bgp_async.Diverged _ -> ()
      done)
    [ Gadgets.good_gadget (); Gadgets.disagree (); Gadgets.wedgie () ];
  Alcotest.(check bool) "some runs quiesced" true (!quiesced > 0)

let test_disagree_can_livelock () =
  (* the sharper async-only phenomenon: some delivery schedule makes
     DISAGREE livelock outright *)
  let livelocked = ref false in
  for seed = 1 to 10 do
    match
      Bgp_async.run ~max_messages:20_000
        ~schedule:(Bgp_async.Random_delivery (Rng.create seed))
        (Gadgets.disagree ())
    with
    | Bgp_async.Diverged _ -> livelocked := true
    | Bgp_async.Quiesced _ -> ()
  done;
  Alcotest.(check bool) "a livelocking schedule exists" true !livelocked

let test_disagree_timing_dependent () =
  Alcotest.(check bool) "DISAGREE is timing-dependent" false
    (Bgp_async.quiesces_deterministically ~seed:1 (Gadgets.disagree ()))

let test_good_gadget_deterministic () =
  Alcotest.(check bool) "GOOD GADGET deterministic" true
    (Bgp_async.quiesces_deterministically ~seed:1 (Gadgets.good_gadget ()))

let test_bad_gadget_diverges () =
  (match
     Bgp_async.run ~max_messages:20_000 ~schedule:Bgp_async.Fifo
       (Gadgets.bad_gadget ())
   with
  | Bgp_async.Diverged _ -> ()
  | Bgp_async.Quiesced _ -> Alcotest.fail "BAD GADGET must not quiesce");
  match
    Bgp_async.run ~max_messages:20_000
      ~schedule:(Bgp_async.Random_delivery (Rng.create 3))
      (Gadgets.bad_gadget ())
  with
  | Bgp_async.Diverged _ -> ()
  | Bgp_async.Quiesced _ -> Alcotest.fail "BAD GADGET must not quiesce (random)"

let test_matches_activation_model_on_grc () =
  (* on a deterministic GRC instance, both models must reach the same
     unique stable assignment *)
  let g = Gen.fig1 () in
  List.iter
    (fun dest ->
      let i = Policy.grc_instance ~max_len:4 g ~dest in
      match
        ( Bgp.run ~schedule:Bgp.Round_robin i,
          Bgp_async.run ~schedule:Bgp_async.Fifo i )
      with
      | Bgp.Converged { assignment = a1; _ }, Bgp_async.Quiesced { assignment = a2; _ }
        ->
          Alcotest.(check bool) "same fixpoint" true
            (Spp.equal_assignment a1 a2)
      | _ -> Alcotest.fail "both models must converge on GRC")
    (Graph.ases g)

let test_fig1_gadgets_async () =
  Alcotest.(check bool) "fig1 DISAGREE timing-dependent" false
    (Bgp_async.quiesces_deterministically ~seed:2 (Gadgets.fig1_disagree ()));
  match
    Bgp_async.run ~max_messages:20_000 ~schedule:Bgp_async.Fifo
      (Gadgets.fig1_bad_gadget ())
  with
  | Bgp_async.Diverged _ -> ()
  | Bgp_async.Quiesced _ -> Alcotest.fail "fig1 BAD GADGET must diverge"

let test_empty_instance () =
  let i = Spp.create ~dest:(Asn.of_int 0) ~permitted:[] in
  match Bgp_async.run ~schedule:Bgp_async.Fifo i with
  | Bgp_async.Quiesced { messages; _ } ->
      Alcotest.(check int) "no messages" 0 messages
  | _ -> Alcotest.fail "empty instance must quiesce"

let suite =
  [
    Alcotest.test_case "good gadget quiesces to direct routes" `Quick
      test_good_gadget_quiesces;
    Alcotest.test_case "quiescence implies stability" `Quick
      test_quiescence_implies_stability;
    Alcotest.test_case "DISAGREE timing-dependent" `Quick
      test_disagree_timing_dependent;
    Alcotest.test_case "DISAGREE can livelock (async only)" `Quick
      test_disagree_can_livelock;
    Alcotest.test_case "GOOD GADGET deterministic" `Quick
      test_good_gadget_deterministic;
    Alcotest.test_case "BAD GADGET diverges" `Quick test_bad_gadget_diverges;
    Alcotest.test_case "matches activation model on GRC" `Quick
      test_matches_activation_model_on_grc;
    Alcotest.test_case "fig1 gadgets (async)" `Quick test_fig1_gadgets_async;
    Alcotest.test_case "empty instance" `Quick test_empty_instance;
  ]
