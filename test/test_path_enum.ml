(* Tests for length-3 path enumeration and MA path generation — the core
   of the §VI analysis.  Hand-checked on the Fig. 1 topology plus
   consistency properties on generated topologies. *)

open Pan_topology

let a = Gen.fig1_asn
let g = Gen.fig1 ()

let mids_to_list m =
  Asn.Map.bindings m
  |> List.concat_map (fun (mid, zs) ->
         List.map (fun z -> (Asn.to_int mid, Asn.to_int z)) (Asn.Set.elements zs))
  |> List.sort compare

let test_grc_fig1_d () =
  (* GRC length-3 paths from D:
     via provider A (exports everything): customers {D is excl}, peers B,C
       -> A's customers: D only (excluded as source) => peers/providers: B, C
     via peer E: customers I only
     via peer C: customers F only
     via customer H: customers none
     => D-A-B, D-A-C, D-E-I, D-C-F *)
  let got = mids_to_list (Path_enum.grc g (a 'D')) in
  let expected =
    List.sort compare
      [
        (Asn.to_int (a 'A'), Asn.to_int (a 'B'));
        (Asn.to_int (a 'A'), Asn.to_int (a 'C'));
        (Asn.to_int (a 'E'), Asn.to_int (a 'I'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'F'));
      ]
  in
  Alcotest.(check (list (pair int int))) "GRC paths from D" expected got

let test_grc_fig1_h () =
  (* H's only neighbor is its provider D: H-D-{A,C,E} (peers+providers of D,
     exported to customer H) plus customers of D (none besides H). *)
  let got = mids_to_list (Path_enum.grc g (a 'H')) in
  let expected =
    List.sort compare
      (List.map
         (fun c -> (Asn.to_int (a 'D'), Asn.to_int (a c)))
         [ 'A'; 'C'; 'E' ])
  in
  Alcotest.(check (list (pair int int))) "GRC paths from H" expected got

let test_ma_direct_fig1_d () =
  (* D's peers: E and C.
     MA with E gives providers(E)={B} and peers(E)\{D}={C,F}, minus
     customers(D)={H}: {B, C, F}.
     MA with C gives providers(C)={} wait C is tier-1: providers(C)=∅,
     peers(C)\{D}={A,B,E}: {A, B, E}. *)
  let got = mids_to_list (Path_enum.ma_direct g (a 'D')) in
  let expected =
    List.sort compare
      [
        (Asn.to_int (a 'E'), Asn.to_int (a 'B'));
        (Asn.to_int (a 'E'), Asn.to_int (a 'C'));
        (Asn.to_int (a 'E'), Asn.to_int (a 'F'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'A'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'B'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'E'));
      ]
  in
  Alcotest.(check (list (pair int int))) "MA direct paths of D" expected got

let test_ma_direct_excludes_own_customers () =
  (* E's MA with D would grant D's peers {C} (E excluded) and providers
     {A}; none of them are customers of E, but I (E's customer) must never
     appear as a via-D destination. *)
  let m = Path_enum.ma_direct g (a 'E') in
  let dests = Path_enum.dest_set m in
  Alcotest.(check bool) "I not an MA destination" false
    (Asn.Set.mem (a 'I') dests)

let test_ma_direct_partner_restriction () =
  let only_e =
    Path_enum.ma_direct ~partners:(Asn.Set.singleton (a 'E')) g (a 'D')
  in
  Alcotest.(check int) "one mid" 1 (Asn.Map.cardinal only_e);
  Alcotest.(check bool) "mid is E" true (Asn.Map.mem (a 'E') only_e);
  (* restricting to a non-peer yields nothing *)
  let none =
    Path_enum.ma_direct ~partners:(Asn.Set.singleton (a 'A')) g (a 'D')
  in
  Alcotest.(check int) "no paths via non-peer" 0 (Path_enum.total_count none)

let test_ma_indirect_fig1_b () =
  (* B gains B-E-D indirectly from MA(E, D) (B is E's provider, B not a
     customer of D) and B-A-... A's peers' MAs: B ∈ peers(A); MA(A, ?) —
     A's peers are B, C: MA(A,C) gives C access to B, so B gains B-A-C;
     similarly B-C-A via MA(C,A); B-C-D via MA(C,D), B-C-E via MA(C,E),
     B-E-C via MA(E,C), B-E-F via MA(E,F). *)
  let got = mids_to_list (Path_enum.ma_indirect g (a 'B')) in
  let expect =
    List.sort compare
      [
        (Asn.to_int (a 'E'), Asn.to_int (a 'D'));
        (Asn.to_int (a 'E'), Asn.to_int (a 'C'));
        (Asn.to_int (a 'E'), Asn.to_int (a 'F'));
        (Asn.to_int (a 'A'), Asn.to_int (a 'C'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'A'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'D'));
        (Asn.to_int (a 'C'), Asn.to_int (a 'E'));
      ]
  in
  Alcotest.(check (list (pair int int))) "indirect MA paths of B" expect got

let test_ma_and_grc_disjoint () =
  (* MA-added paths violate the GRC, so they can never coincide with GRC
     paths — on Fig. 1 and on a generated topology. *)
  let check_disjoint g x =
    let grc = Path_enum.grc g x in
    let ma = Path_enum.ma_direct g x in
    Asn.Map.iter
      (fun mid zs ->
        match Asn.Map.find_opt mid grc with
        | None -> ()
        | Some grc_zs ->
            if not (Asn.Set.is_empty (Asn.Set.inter zs grc_zs)) then
              Alcotest.failf "overlap at AS%d" (Asn.to_int x))
      ma
  in
  List.iter (fun c -> check_disjoint g (a c)) [ 'A'; 'B'; 'C'; 'D'; 'E'; 'F' ];
  let params =
    { Gen.default_params with Gen.n_transit = 40; Gen.n_stub = 150 }
  in
  let g' = Gen.graph (Gen.generate ~params ~seed:11 ()) in
  List.iter (fun x -> check_disjoint g' x) (Graph.ases g')

let test_ma_paths_are_grc_violations () =
  (* every direct MA path, seen as an AS path, violates valley-freeness *)
  let x = a 'D' in
  Path_enum.iter_paths
    (fun ~mid ~dst ->
      let p = Path.make_exn g [ x; mid; dst ] in
      Alcotest.(check bool) "MA path violates GRC" false
        (Path.is_valley_free g p))
    (Path_enum.ma_direct g x)

let test_grc_paths_are_valley_free () =
  let check g x =
    Path_enum.iter_paths
      (fun ~mid ~dst ->
        let p = Path.make_exn g [ x; mid; dst ] in
        Alcotest.(check bool) "GRC path valley-free" true
          (Path.is_valley_free g p))
      (Path_enum.grc g x)
  in
  List.iter (fun c -> check g (a c)) [ 'A'; 'D'; 'H' ]

let test_counts_and_dests () =
  let m = Path_enum.grc g (a 'D') in
  Alcotest.(check int) "total count" 4 (Path_enum.total_count m);
  Alcotest.(check int) "distinct destinations" 4
    (Asn.Set.cardinal (Path_enum.dest_set m))

let test_union_diff () =
  let m1 = Path_enum.grc g (a 'D') in
  let m2 = Path_enum.ma_direct g (a 'D') in
  let u = Path_enum.union m1 m2 in
  Alcotest.(check int) "union counts add (disjoint)"
    (Path_enum.total_count m1 + Path_enum.total_count m2)
    (Path_enum.total_count u);
  let d = Path_enum.diff u m1 in
  Alcotest.(check int) "diff removes the base" (Path_enum.total_count m2)
    (Path_enum.total_count d)

let test_by_destination_inverts () =
  let m = Path_enum.scenario_paths g Path_enum.Ma_all (a 'D') in
  let inv = Path_enum.by_destination m in
  Alcotest.(check int) "path count preserved" (Path_enum.total_count m)
    (Path_enum.total_count inv);
  (* spot-check: D-E-B appears as dest B with mid E *)
  match Asn.Map.find_opt (a 'B') inv with
  | None -> Alcotest.fail "destination B missing"
  | Some mids -> Alcotest.(check bool) "mid E" true (Asn.Set.mem (a 'E') mids)

let test_top_partners () =
  let top = Path_enum.top_partners g ~n:2 (a 'D') in
  Alcotest.(check int) "two partners" 2 (List.length top);
  (* E yields 3 new paths, C yields 3; tie broken by AS number: C < E *)
  Alcotest.(check (list int)) "ranking"
    [ Asn.to_int (a 'C'); Asn.to_int (a 'E') ]
    (List.map Asn.to_int top);
  Alcotest.(check int) "n larger than peer count is capped" 2
    (List.length (Path_enum.top_partners g ~n:10 (a 'D')))

let test_scenario_monotonicity () =
  (* GRC ⊆ Top1 ⊆ Top2 ⊆ ... ⊆ MA* ⊆ MA, pointwise in count, on a
     generated topology. *)
  let params =
    { Gen.default_params with Gen.n_transit = 40; Gen.n_stub = 150 }
  in
  let g' = Gen.graph (Gen.generate ~params ~seed:3 ()) in
  let order =
    Path_enum.
      [ Grc; Ma_top 1; Ma_top 2; Ma_top 5; Ma_direct_only; Ma_all ]
  in
  List.iter
    (fun x ->
      let counts =
        List.map
          (fun s -> Path_enum.total_count (Path_enum.scenario_paths g' s x))
          order
      in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      if not (monotone counts) then
        Alcotest.failf "scenario counts not monotone at AS%d" (Asn.to_int x))
    (Graph.ases g')

let test_additional_paths () =
  let add = Path_enum.additional_paths g Path_enum.Ma_direct_only (a 'D') in
  Alcotest.(check int) "additional = MA direct" 6 (Path_enum.total_count add);
  let none = Path_enum.additional_paths g Path_enum.Grc (a 'D') in
  Alcotest.(check int) "GRC adds nothing" 0 (Path_enum.total_count none)

let test_scenario_labels () =
  Alcotest.(check string) "grc" "GRC" (Path_enum.scenario_label Path_enum.Grc);
  Alcotest.(check string) "top" "MA* (Top 3)"
    (Path_enum.scenario_label (Path_enum.Ma_top 3))

let qcheck_dest_set_bounded =
  QCheck.Test.make ~count:20 ~name:"destinations <= paths, paths >= 0"
    QCheck.(pair (int_range 1 1000) (int_range 0 3))
    (fun (seed, scenario_idx) ->
      let params =
        { Gen.default_params with Gen.n_transit = 20; Gen.n_stub = 60 }
      in
      let g = Gen.graph (Gen.generate ~params ~seed ()) in
      let scenario =
        List.nth
          Path_enum.[ Grc; Ma_all; Ma_direct_only; Ma_top 1 ]
          scenario_idx
      in
      List.for_all
        (fun x ->
          let m = Path_enum.scenario_paths g scenario x in
          Asn.Set.cardinal (Path_enum.dest_set m) <= Path_enum.total_count m)
        (Graph.ases g))

let suite =
  [
    Alcotest.test_case "GRC paths from D (hand-checked)" `Quick
      test_grc_fig1_d;
    Alcotest.test_case "GRC paths from H (hand-checked)" `Quick
      test_grc_fig1_h;
    Alcotest.test_case "MA direct paths of D (hand-checked)" `Quick
      test_ma_direct_fig1_d;
    Alcotest.test_case "MA excludes own customers" `Quick
      test_ma_direct_excludes_own_customers;
    Alcotest.test_case "MA partner restriction" `Quick
      test_ma_direct_partner_restriction;
    Alcotest.test_case "indirect MA paths of B (hand-checked)" `Quick
      test_ma_indirect_fig1_b;
    Alcotest.test_case "MA and GRC path sets disjoint" `Quick
      test_ma_and_grc_disjoint;
    Alcotest.test_case "MA paths violate valley-freeness" `Quick
      test_ma_paths_are_grc_violations;
    Alcotest.test_case "GRC paths are valley-free" `Quick
      test_grc_paths_are_valley_free;
    Alcotest.test_case "counts and destinations" `Quick test_counts_and_dests;
    Alcotest.test_case "union / diff" `Quick test_union_diff;
    Alcotest.test_case "by_destination inverts" `Quick
      test_by_destination_inverts;
    Alcotest.test_case "top partners" `Quick test_top_partners;
    Alcotest.test_case "scenario monotonicity" `Quick
      test_scenario_monotonicity;
    Alcotest.test_case "additional paths" `Quick test_additional_paths;
    Alcotest.test_case "scenario labels" `Quick test_scenario_labels;
    QCheck_alcotest.to_alcotest qcheck_dest_set_bounded;
  ]
