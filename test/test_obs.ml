(* Unit and property tests for the observability layer (lib/obs).

   The load-bearing properties: a virtual clock makes every duration
   deterministic (span nesting / elapsed math below), and Metrics.merge
   is commutative and associative with bucket counts preserved under
   arbitrary shard splits — which is what makes metric totals independent
   of pool size and merge order. *)

open Pan_obs

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_virtual_clock () =
  let c = Clock.virtual_ ~start:5.0 () in
  Alcotest.(check bool) "virtual" true (Clock.is_virtual c);
  Alcotest.(check (float 0.0)) "start value" 5.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  Alcotest.(check (float 1e-12)) "advanced" 6.75 (Clock.now c);
  Alcotest.check_raises "negative step"
    (Invalid_argument "Clock.advance: negative step") (fun () ->
      Clock.advance c (-1.0))

let test_real_clock () =
  let c = Clock.real () in
  Alcotest.(check bool) "not virtual" false (Clock.is_virtual c);
  let a = Clock.now c in
  let b = Clock.now c in
  Alcotest.(check bool) "monotonic" true (b >= a);
  Alcotest.check_raises "advance real"
    (Invalid_argument "Clock.advance: real clock") (fun () ->
      Clock.advance c 1.0)

let test_clock_of_env () =
  (* putenv cannot unset, so only the set cases are testable in-process;
     the unset (real clock) case is covered by every other CLI test. *)
  Unix.putenv Clock.env_var "3.5";
  let c = Clock.of_env () in
  Alcotest.(check bool) "selected virtual" true (Clock.is_virtual c);
  Alcotest.(check (float 0.0)) "parsed start" 3.5 (Clock.now c);
  Unix.putenv Clock.env_var "not-a-float";
  let c = Clock.of_env () in
  Alcotest.(check bool) "still virtual" true (Clock.is_virtual c);
  Alcotest.(check (float 0.0)) "default start" 0.0 (Clock.now c)

(* ------------------------------------------------------------------ *)
(* Span                                                                *)

let test_span_nesting () =
  let clk = Clock.virtual_ () in
  let c = Span.collector clk in
  Span.with_span c "outer" (fun () ->
      Clock.advance clk 1.0;
      Span.with_span c "inner" (fun () -> Clock.advance clk 0.25);
      Clock.advance clk 0.5);
  match Span.spans c with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Span.name;
      Alcotest.(check int) "outer depth" 0 outer.Span.depth;
      Alcotest.(check (float 0.0)) "outer start" 0.0 outer.Span.start;
      Alcotest.(check (float 1e-12)) "outer duration" 1.75 outer.Span.duration;
      Alcotest.(check int) "inner depth" 1 inner.Span.depth;
      Alcotest.(check (float 1e-12)) "inner start" 1.0 inner.Span.start;
      Alcotest.(check (float 1e-12)) "inner duration" 0.25 inner.Span.duration;
      Alcotest.(check bool) "both closed" true
        (outer.Span.closed && inner.Span.closed)
  | spans ->
      Alcotest.failf "expected 2 spans in start order, got %d"
        (List.length spans)

let test_span_exception_safety () =
  let clk = Clock.virtual_ () in
  let c = Span.collector clk in
  (try
     Span.with_span c "boom" (fun () ->
         Clock.advance clk 2.0;
         failwith "boom")
   with Failure _ -> ());
  (* the raising span was closed with its elapsed time and the depth
     counter unwound, so a subsequent span is top-level again *)
  Span.with_span c "after" (fun () -> Clock.advance clk 1.0);
  match Span.spans c with
  | [ boom; after ] ->
      Alcotest.(check bool) "closed on raise" true boom.Span.closed;
      Alcotest.(check (float 1e-12)) "elapsed on raise" 2.0 boom.Span.duration;
      Alcotest.(check int) "depth unwound" 0 after.Span.depth
  | _ -> Alcotest.fail "expected 2 spans"

(* ------------------------------------------------------------------ *)
(* Metrics: units                                                      *)

let test_buckets () =
  Alcotest.(check int) "1.0" 0 (Metrics.bucket_of 1.0);
  Alcotest.(check int) "1.5" 0 (Metrics.bucket_of 1.5);
  Alcotest.(check int) "2.0" 1 (Metrics.bucket_of 2.0);
  Alcotest.(check int) "0.75" (-1) (Metrics.bucket_of 0.75);
  Alcotest.(check int) "epsilon boundary" (-3) (Metrics.bucket_of 0.125);
  Alcotest.(check int) "zero underflows" Metrics.underflow_bucket
    (Metrics.bucket_of 0.0);
  Alcotest.(check int) "negative underflows" Metrics.underflow_bucket
    (Metrics.bucket_of (-4.0));
  Alcotest.(check int) "nan underflows" Metrics.underflow_bucket
    (Metrics.bucket_of Float.nan);
  Alcotest.(check int) "inf overflows" Metrics.overflow_bucket
    (Metrics.bucket_of infinity);
  Alcotest.(check (float 0.0)) "lower of 3" 8.0 (Metrics.bucket_lower 3);
  Alcotest.(check (float 0.0)) "lower of -3" 0.125 (Metrics.bucket_lower (-3));
  Alcotest.(check (float 0.0)) "lower of underflow" 0.0
    (Metrics.bucket_lower Metrics.underflow_bucket)

let test_metrics_basics () =
  let t = Metrics.create () in
  Alcotest.(check bool) "fresh is empty" true (Metrics.is_empty t);
  Metrics.incr t "c";
  Metrics.incr ~by:4 t "c";
  Alcotest.(check int) "counter adds" 5 (Metrics.counter t "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter t "nope");
  Metrics.gauge t "g" 2.0;
  Metrics.gauge t "g" 1.0;
  Alcotest.(check (option (float 0.0))) "gauge keeps max" (Some 2.0)
    (Metrics.gauge_value t "g");
  Metrics.observe t "h" 0.3;
  Metrics.observe t "h" 0.4;
  Metrics.observe t "h" 3.0;
  Alcotest.(check int) "histogram count" 3 (Metrics.histogram_count t "h");
  Alcotest.(check (list (pair int int)))
    "buckets sorted" [ (-2, 2); (1, 1) ] (Metrics.histogram t "h");
  let u = Metrics.create () in
  Metrics.incr ~by:7 u "c";
  let m = Metrics.merge t u in
  Alcotest.(check int) "merge adds counters" 12 (Metrics.counter m "c");
  Alcotest.(check int) "merge keeps operands intact" 5 (Metrics.counter t "c");
  Alcotest.(check bool) "merge with empty = same" true
    (Metrics.equal t (Metrics.merge t (Metrics.create ())))

(* ------------------------------------------------------------------ *)
(* Metrics: qcheck properties                                          *)

type op = Incr of int * int | Gauge of int * float | Observe of int * float

let mname i = "m" ^ string_of_int (abs i mod 3)

let apply t = function
  | Incr (n, by) -> Metrics.incr ~by t (mname n)
  | Gauge (n, v) -> Metrics.gauge t (mname n) v
  | Observe (n, v) -> Metrics.observe t (mname n) v

let of_ops ops =
  let t = Metrics.create () in
  List.iter (apply t) ops;
  t

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun n by -> Incr (n, by)) small_nat (int_range (-5) 20);
        map2 (fun n v -> Gauge (n, v)) small_nat (float_bound_inclusive 100.0);
        map2 (fun n v -> Observe (n, v)) small_nat
          (float_range (-2.0) 1000.0);
      ])

let ops_arb =
  let print ops = Printf.sprintf "<%d ops>" (List.length ops) in
  QCheck.make ~print QCheck.Gen.(list_size (int_bound 40) op_gen)

let qcheck_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"Metrics.merge is commutative"
    QCheck.(pair ops_arb ops_arb)
    (fun (a, b) ->
      let ma = of_ops a and mb = of_ops b in
      Metrics.equal (Metrics.merge ma mb) (Metrics.merge mb ma))

let qcheck_merge_associative =
  QCheck.Test.make ~count:200 ~name:"Metrics.merge is associative"
    QCheck.(triple ops_arb ops_arb ops_arb)
    (fun (a, b, c) ->
      let ma = of_ops a and mb = of_ops b and mc = of_ops c in
      Metrics.equal
        (Metrics.merge (Metrics.merge ma mb) mc)
        (Metrics.merge ma (Metrics.merge mb mc)))

let qcheck_shard_split =
  (* Any assignment of observations to shards merges back to the store
     that saw all of them — histogram bucket counts (and counters) are
     preserved under arbitrary shard splits. *)
  QCheck.Test.make ~count:200
    ~name:"metrics preserved under arbitrary shard splits"
    QCheck.(
      pair
        (list (triple (int_bound 4) small_nat (float_range (-1.0) 500.0)))
        (int_range 1 5))
    (fun (obs, shards) ->
      let split = Array.init shards (fun _ -> Metrics.create ()) in
      let whole = Metrics.create () in
      List.iter
        (fun (s, n, v) ->
          Metrics.observe split.(s mod shards) (mname n) v;
          Metrics.incr whole (mname n ^ ".count");
          Metrics.incr split.(s mod shards) (mname n ^ ".count");
          Metrics.observe whole (mname n) v)
        obs;
      let merged =
        Array.fold_left Metrics.merge (Metrics.create ()) split
      in
      Metrics.equal merged whole)

(* ------------------------------------------------------------------ *)
(* Ambient context                                                     *)

let with_ctx f =
  Obs.configure ~clock:(Clock.virtual_ ()) ();
  Fun.protect ~finally:Obs.disable f

let test_obs_disabled_noop () =
  Obs.disable ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Obs.incr "x";
  Obs.gauge "g" 1.0;
  Obs.observe "h" 1.0;
  Alcotest.(check int) "passthrough result" 41 (Obs.with_span "s" (fun () -> 41));
  Alcotest.(check bool) "no metrics recorded" true
    (Metrics.is_empty (Obs.metrics ()));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()))

let test_obs_ambient_collection () =
  with_ctx (fun () ->
      Alcotest.(check bool) "enabled" true (Obs.enabled ());
      Obs.incr ~by:2 "x";
      Obs.incr "x";
      let y =
        Obs.with_span "phase" (fun () ->
            (match Obs.clock () with
            | Some c -> Clock.advance c 0.75
            | None -> Alcotest.fail "clock expected");
            7)
      in
      Alcotest.(check int) "span passthrough" 7 y;
      let m = Obs.metrics () in
      Alcotest.(check int) "counter total" 3 (Metrics.counter m "x");
      Alcotest.(check (list (pair int int)))
        "span duration bucketed" [ (-1, 1) ]
        (Metrics.histogram m "span.phase");
      match Obs.spans () with
      | [ sp ] ->
          Alcotest.(check string) "span name" "phase" sp.Span.name;
          Alcotest.(check (float 1e-12)) "span duration" 0.75 sp.Span.duration
      | _ -> Alcotest.fail "expected one span");
  Alcotest.(check bool) "disabled after" false (Obs.enabled ())

let suite =
  [
    Alcotest.test_case "virtual clock advance/elapsed" `Quick
      test_virtual_clock;
    Alcotest.test_case "real clock monotonic" `Quick test_real_clock;
    Alcotest.test_case "clock selection from env" `Quick test_clock_of_env;
    Alcotest.test_case "span nesting + elapsed math" `Quick test_span_nesting;
    Alcotest.test_case "span closed on exception" `Quick
      test_span_exception_safety;
    Alcotest.test_case "log bucket math" `Quick test_buckets;
    Alcotest.test_case "counter/gauge/histogram basics" `Quick
      test_metrics_basics;
    QCheck_alcotest.to_alcotest qcheck_merge_commutative;
    QCheck_alcotest.to_alcotest qcheck_merge_associative;
    QCheck_alcotest.to_alcotest qcheck_shard_split;
    Alcotest.test_case "ambient context no-op when disabled" `Quick
      test_obs_disabled_noop;
    Alcotest.test_case "ambient context collects" `Quick
      test_obs_ambient_collection;
  ]
