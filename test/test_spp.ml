(* Tests for the Stable Paths Problem representation and the exhaustive
   stability checker. *)

open Pan_topology
open Pan_routing

let asn = Asn.of_int

let test_create_validation () =
  let d = asn 0 in
  let expect_invalid permitted =
    try
      ignore (Spp.create ~dest:d ~permitted);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid [ (asn 1, [ [] ]) ];
  expect_invalid [ (asn 1, [ [ asn 2; d ] ]) ];
  (* wrong head *)
  expect_invalid [ (asn 1, [ [ asn 1; asn 2 ] ]) ];
  (* wrong tail *)
  expect_invalid [ (asn 1, [ [ asn 1; asn 2; asn 1; d ] ]) ];
  (* loop *)
  expect_invalid [ (asn 1, [ [ asn 1; d ]; [ asn 1; d ] ]) ];
  (* duplicate route *)
  expect_invalid [ (asn 1, []); (asn 1, []) ];
  (* node twice *)
  expect_invalid [ (d, []) ]
(* destination listed *)

let test_accessors () =
  let i = Gadgets.disagree () in
  Alcotest.(check int) "dest" 0 (Asn.to_int (Spp.dest i));
  Alcotest.(check (list int)) "nodes" [ 1; 2 ]
    (List.map Asn.to_int (Spp.nodes i));
  Alcotest.(check int) "permitted count" 2
    (List.length (Spp.permitted i (asn 1)));
  Alcotest.(check (list int)) "unknown node empty" []
    (List.map List.length (Spp.permitted i (asn 9)))

let test_rank () =
  let i = Gadgets.disagree () in
  Alcotest.(check (option int)) "best route rank" (Some 0)
    (Spp.rank i (asn 1) [ asn 1; asn 2; asn 0 ]);
  Alcotest.(check (option int)) "fallback rank" (Some 1)
    (Spp.rank i (asn 1) [ asn 1; asn 0 ]);
  Alcotest.(check (option int)) "unknown route" None
    (Spp.rank i (asn 1) [ asn 1; asn 9; asn 0 ])

let test_consistency () =
  let i = Gadgets.disagree () in
  let empty = Spp.initial i in
  (* direct route to dest is always consistent *)
  Alcotest.(check bool) "direct consistent" true
    (Spp.consistent i empty [ asn 1; asn 0 ]);
  (* route via node 2 needs node 2's selection *)
  Alcotest.(check bool) "indirect inconsistent" false
    (Spp.consistent i empty [ asn 1; asn 2; asn 0 ]);
  let with2 = Asn.Map.add (asn 2) (Some [ asn 2; asn 0 ]) empty in
  Alcotest.(check bool) "indirect consistent" true
    (Spp.consistent i with2 [ asn 1; asn 2; asn 0 ])

let test_best_available () =
  let i = Gadgets.disagree () in
  let empty = Spp.initial i in
  Alcotest.(check bool) "fallback when peer empty" true
    (Spp.best_available i empty (asn 1) = Some [ asn 1; asn 0 ]);
  let with2 = Asn.Map.add (asn 2) (Some [ asn 2; asn 0 ]) empty in
  Alcotest.(check bool) "preferred when available" true
    (Spp.best_available i with2 (asn 1) = Some [ asn 1; asn 2; asn 0 ])

let test_stable_solutions_disagree () =
  let i = Gadgets.disagree () in
  let sols = Spp.stable_solutions i in
  Alcotest.(check int) "two stable states" 2 (List.length sols);
  List.iter
    (fun s -> Alcotest.(check bool) "is_stable agrees" true (Spp.is_stable i s))
    sols

let test_stable_solutions_bad_gadget () =
  Alcotest.(check int) "no stable state" 0
    (List.length (Spp.stable_solutions (Gadgets.bad_gadget ())))

let test_stable_solutions_good_gadget () =
  Alcotest.(check int) "unique stable state" 1
    (List.length (Spp.stable_solutions (Gadgets.good_gadget ())))

let test_empty_assignment_not_stable () =
  let i = Gadgets.good_gadget () in
  Alcotest.(check bool) "empty unstable" false (Spp.is_stable i (Spp.initial i))

let test_search_space_guard () =
  (* 24 nodes with 2 routes each: 3^24 >> 10^7 *)
  let d = asn 0 in
  let permitted =
    List.init 24 (fun k ->
        let n = asn (k + 1) in
        (n, [ [ n; d ] ]))
  in
  (* each node has 2 choices (route or none): 2^24 > 10^7 *)
  let i = Spp.create ~dest:d ~permitted in
  try
    ignore (Spp.stable_solutions ~max_space:1000 i);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_equal_assignment () =
  let i = Gadgets.disagree () in
  let a1 = Spp.initial i in
  let a2 = Spp.initial i in
  Alcotest.(check bool) "equal empties" true (Spp.equal_assignment a1 a2);
  let a3 = Asn.Map.add (asn 1) (Some [ asn 1; asn 0 ]) a1 in
  Alcotest.(check bool) "different" false (Spp.equal_assignment a1 a3)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "rank" `Quick test_rank;
    Alcotest.test_case "consistency" `Quick test_consistency;
    Alcotest.test_case "best_available" `Quick test_best_available;
    Alcotest.test_case "DISAGREE has 2 stable states" `Quick
      test_stable_solutions_disagree;
    Alcotest.test_case "BAD GADGET has none" `Quick
      test_stable_solutions_bad_gadget;
    Alcotest.test_case "GOOD GADGET has one" `Quick
      test_stable_solutions_good_gadget;
    Alcotest.test_case "empty assignment not stable" `Quick
      test_empty_assignment_not_stable;
    Alcotest.test_case "search-space guard" `Quick test_search_space_guard;
    Alcotest.test_case "equal_assignment" `Quick test_equal_assignment;
  ]
