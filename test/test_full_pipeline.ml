(* The whole-system integration test: economics decides which MAs exist,
   and the PAN substrate turns exactly those agreements into forwardable
   paths.

   generate topology -> negotiate every MA economically (E11) -> feed the
   concluded pairs into the authorization policy -> beacon, combine,
   forward -> check that the data plane matches the path-enumeration
   analysis pair by pair. *)

open Pan_topology
open Pan_scion
open Pan_experiments

let setup =
  lazy
    (let g =
       Gen.graph
         (Gen.generate
            ~params:
              { Gen.default_params with Gen.n_transit = 40; Gen.n_stub = 160 }
            ~seed:42 ())
     in
     let adoption = Adoption.run ~sample_size:50 ~seed:17 g in
     let authz =
       Authz.create ~core_transit:false ~mas:adoption.Adoption.concluded g
     in
     (g, adoption, authz))

let concluded_pred (adoption : Adoption.result) x y =
  List.exists
    (fun (a, b) ->
      (Asn.equal a x && Asn.equal b y) || (Asn.equal a y && Asn.equal b x))
    adoption.Adoption.concluded

let test_adoption_is_partial () =
  let _, adoption, _ = Lazy.force setup in
  Alcotest.(check bool) "some MAs concluded" true
    (adoption.Adoption.concluded <> []);
  Alcotest.(check bool) "some MAs refused" true
    (adoption.Adoption.adoption_rate < 1.0)

let test_dataplane_matches_analysis () =
  (* for sampled sources, every concluded-MA direct path must be
     constructible and forwardable, and every refused-MA path must be
     rejected by the data plane *)
  let g, adoption, authz = Lazy.force setup in
  let concluded = concluded_pred adoption in
  let checked_ok = ref 0 and checked_refused = ref 0 in
  List.iter
    (fun (pa : Adoption.per_as) ->
      let x = pa.Adoption.asn in
      Asn.Set.iter
        (fun y ->
          let sample = ref [] in
          Path_enum.iter_paths
            (fun ~mid ~dst ->
              if List.length !sample < 3 then sample := (mid, dst) :: !sample)
            (Path_enum.ma_direct ~partners:(Asn.Set.singleton y) g x);
          List.iter
            (fun (mid, dst) ->
              let path = [ x; mid; dst ] in
              match Forwarding.send_path authz path ~payload:"it" with
              | Ok delivery ->
                  incr checked_ok;
                  if not (concluded x y) then
                    Alcotest.failf "refused MA forwarded (AS%d-AS%d)"
                      (Asn.to_int x) (Asn.to_int y);
                  Alcotest.(check bool) "trace = path" true
                    (delivery.Forwarding.trace = path)
              | Error _ ->
                  incr checked_refused;
                  (* the middle AS may still carry the traffic under one
                     of ITS other concluded MAs only if (x, mid) is
                     concluded; otherwise refusal is mandatory *)
                  if concluded x y then
                    Alcotest.failf "concluded MA path refused (AS%d-AS%d)"
                      (Asn.to_int x) (Asn.to_int y))
            !sample)
        (Graph.peers g x))
    (List.filteri (fun i _ -> i < 15) adoption.Adoption.sampled);
  Alcotest.(check bool) "exercised both outcomes" true
    (!checked_ok > 0 && !checked_refused > 0)

let test_economic_paths_match_dataplane_counts () =
  (* the per-AS economic path analysis agrees with what the authorization
     policy actually admits, path by path *)
  let g, adoption, authz = Lazy.force setup in
  let concluded = concluded_pred adoption in
  List.iter
    (fun (pa : Adoption.per_as) ->
      let x = pa.Adoption.asn in
      (* direct MA paths of concluded partners only *)
      let partners =
        Asn.Set.filter (fun y -> concluded x y) (Graph.peers g x)
      in
      Path_enum.iter_paths
        (fun ~mid ~dst ->
          match Segment.make authz [ x; mid; dst ] with
          | Ok _ -> ()
          | Error _ ->
              Alcotest.failf "analysis path not authorized: AS%d-AS%d-AS%d"
                (Asn.to_int x) (Asn.to_int mid) (Asn.to_int dst))
        (Path_enum.ma_direct ~partners g x))
    (List.filteri (fun i _ -> i < 10) adoption.Adoption.sampled)

let test_end_to_end_delivery_over_concluded_ma () =
  (* find one concluded MA whose beneficiary has a customer, and deliver a
     packet from that customer across the GRC-violating segment via the
     full control plane (beacon -> path server -> combinator) *)
  let g, adoption, authz = Lazy.force setup in
  let ps = Path_server.build authz (Beacon.run authz) in
  let delivered = ref 0 in
  List.iter
    (fun (x, y) ->
      if !delivered < 3 then
        Asn.Set.iter
          (fun dst ->
            if
              !delivered < 3
              && (not (Asn.equal dst x))
              && not (Graph.connected g x dst)
            then
              match
                List.find_opt
                  (fun seg ->
                    (* a path actually crossing the x-y MA splice *)
                    let rec crosses = function
                      | a :: (b :: _ as rest) ->
                          (Asn.equal a x && Asn.equal b y) || crosses rest
                      | _ -> false
                    in
                    crosses (Segment.ases seg))
                  (Combinator.end_to_end ~max_paths:50 ps ~src:x ~dst)
              with
              | Some seg -> (
                  match
                    Forwarding.send authz
                      { Forwarding.segment = seg; payload = "e2e" }
                  with
                  | Ok d ->
                      incr delivered;
                      Alcotest.(check bool) "loop-free" true
                        (List.length d.Forwarding.trace
                        = List.length
                            (List.sort_uniq Asn.compare d.Forwarding.trace))
                  | Error _ -> Alcotest.fail "authorized path dropped")
              | None -> ())
          (Asn.Set.union (Graph.providers g y) (Graph.peers g y)))
    adoption.Adoption.concluded;
  Alcotest.(check bool) "delivered across MA splices" true (!delivered > 0)

let suite =
  [
    Alcotest.test_case "adoption is partial" `Quick test_adoption_is_partial;
    Alcotest.test_case "data plane matches analysis" `Quick
      test_dataplane_matches_analysis;
    Alcotest.test_case "economic paths all authorized" `Quick
      test_economic_paths_match_dataplane_counts;
    Alcotest.test_case "end-to-end delivery over concluded MAs" `Quick
      test_end_to_end_delivery_over_concluded_ma;
  ]
