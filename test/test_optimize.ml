(* Tests for Pan_numerics.Optimize on functions with known optima. *)

open Pan_numerics

let loose = Alcotest.(check (float 1e-4))

let test_golden_section () =
  let x, v = Optimize.golden_section_max (fun x -> -.((x -. 2.0) ** 2.0)) 0.0 5.0 in
  loose "argmax" 2.0 x;
  loose "max" 0.0 v

let test_golden_section_boundary () =
  (* monotone function: maximum at the right boundary *)
  let x, _ = Optimize.golden_section_max (fun x -> x) 0.0 3.0 in
  if Float.abs (x -. 3.0) > 1e-6 then Alcotest.failf "boundary argmax %f" x

let test_grid_max () =
  let x, v = Optimize.grid_max ~n:100 (fun x -> -.Float.abs (x -. 0.5)) 0.0 1.0 in
  loose "argmax" 0.5 x;
  loose "max" 0.0 v

let test_grid_max_invalid () =
  Alcotest.check_raises "n <= 0" (Invalid_argument "Optimize.grid_max: n <= 0")
    (fun () -> ignore (Optimize.grid_max ~n:0 Fun.id 0.0 1.0))

let test_project () =
  let box = [| (0.0, 1.0); (-2.0, 2.0) |] in
  let p = Optimize.project box [| 5.0; -3.0 |] in
  Alcotest.(check (array (float 0.0))) "clamped" [| 1.0; -2.0 |] p;
  let q = Optimize.project box [| 0.5; 0.5 |] in
  Alcotest.(check (array (float 0.0))) "inside unchanged" [| 0.5; 0.5 |] q

let test_nelder_mead_quadratic () =
  let f p = -.(((p.(0) -. 1.0) ** 2.0) +. ((p.(1) +. 0.5) ** 2.0)) in
  let box = [| (-5.0, 5.0); (-5.0, 5.0) |] in
  let x, v = Optimize.nelder_mead ~f ~box ~start:[| 0.0; 0.0 |] () in
  loose "x0" 1.0 x.(0);
  loose "x1" (-0.5) x.(1);
  loose "value" 0.0 v

let test_nelder_mead_respects_box () =
  (* unconstrained max at (3,3), box caps at 1 *)
  let f p = -.(((p.(0) -. 3.0) ** 2.0) +. ((p.(1) -. 3.0) ** 2.0)) in
  let box = [| (0.0, 1.0); (0.0, 1.0) |] in
  let x, _ = Optimize.nelder_mead ~f ~box ~start:[| 0.5; 0.5 |] () in
  if x.(0) > 1.0 +. 1e-9 || x.(1) > 1.0 +. 1e-9 then
    Alcotest.fail "left the box";
  loose "x0 on boundary" 1.0 x.(0);
  loose "x1 on boundary" 1.0 x.(1)

let test_multistart_escapes_local_max () =
  (* two bumps: local at x = -2 (height 1), global at x = 2 (height 2) *)
  let bump c h x = h *. exp (-.((x -. c) ** 2.0)) in
  let f p = bump (-2.0) 1.0 p.(0) +. bump 2.0 2.0 p.(0) in
  let box = [| (-5.0, 5.0) |] in
  let x, v = Optimize.multistart_nelder_mead ~starts_per_dim:5 ~f ~box () in
  if Float.abs (x.(0) -. 2.0) > 0.01 then
    Alcotest.failf "stuck at local optimum: x=%f v=%f" x.(0) v

let test_multistart_high_dimensional () =
  (* exercise the capped-lattice fallback path (spd^n > 243) *)
  let f p = -.Array.fold_left (fun a x -> a +. (x *. x)) 0.0 p in
  let box = Array.make 6 (-1.0, 1.0) in
  let x, _ = Optimize.multistart_nelder_mead ~starts_per_dim:3 ~f ~box () in
  Array.iter
    (fun xi -> if Float.abs xi > 0.01 then Alcotest.failf "coordinate %f" xi)
    x

let qcheck_nelder_mead_within_box =
  QCheck.Test.make ~count:50 ~name:"nelder_mead result stays in box"
    QCheck.(pair (float_range (-3.0) 0.0) (float_range 0.1 3.0))
    (fun (lo, width) ->
      let hi = lo +. width in
      let f p = sin (10.0 *. p.(0)) in
      let x, _ =
        Optimize.nelder_mead ~f ~box:[| (lo, hi) |]
          ~start:[| lo +. (width /. 2.0) |] ()
      in
      x.(0) >= lo -. 1e-9 && x.(0) <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "golden section" `Quick test_golden_section;
    Alcotest.test_case "golden section boundary" `Quick
      test_golden_section_boundary;
    Alcotest.test_case "grid max" `Quick test_grid_max;
    Alcotest.test_case "grid max invalid" `Quick test_grid_max_invalid;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "nelder-mead quadratic" `Quick
      test_nelder_mead_quadratic;
    Alcotest.test_case "nelder-mead respects box" `Quick
      test_nelder_mead_respects_box;
    Alcotest.test_case "multistart escapes local maximum" `Quick
      test_multistart_escapes_local_max;
    Alcotest.test_case "multistart high-dimensional fallback" `Quick
      test_multistart_high_dimensional;
    QCheck_alcotest.to_alcotest qcheck_nelder_mead_within_box;
  ]
