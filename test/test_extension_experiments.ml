(* Tests for the extension experiments (resilience, chained diversity)
   and the CSV exporter. *)

open Pan_topology
open Pan_experiments

let small_graph =
  lazy
    (Gen.graph
       (Gen.generate
          ~params:{ Gen.default_params with Gen.n_transit = 60; n_stub = 240 }
          ~seed:42 ()))

let test_resilience_shape () =
  let r = Resilience.run ~pairs:60 ~seed:5 (Lazy.force small_graph) in
  Alcotest.(check bool) "pairs measured" true (r.Resilience.pairs > 0);
  let b = r.Resilience.baseline_connectivity in
  Alcotest.(check (float 1e-9)) "baseline GRC = 1 (pairs had primaries)" 1.0
    b.Resilience.grc;
  let f = r.Resilience.first_link_failed in
  (* MAs can only help *)
  Alcotest.(check bool) "MA >= GRC under failure" true
    (f.Resilience.ma >= f.Resilience.grc);
  Alcotest.(check bool) "failure hurts GRC" true
    (f.Resilience.grc <= b.Resilience.grc);
  let m = r.Resilience.middle_link_failed in
  Alcotest.(check bool) "middle-link MA >= GRC" true
    (m.Resilience.ma >= m.Resilience.grc);
  Alcotest.(check bool) "attempts >= 1" true
    (r.Resilience.mean_attempts_ma >= 1.0)

let test_chained_shape () =
  let r = Chained_exp.run ~sample_size:80 ~seed:5 (Lazy.force small_graph) in
  Alcotest.(check bool) "sampled" true (r.Chained_exp.sampled <> []);
  List.iter
    (fun (pa : Chained_exp.per_as) ->
      Alcotest.(check bool) "non-negative counts" true
        (pa.Chained_exp.ma3_paths >= 0
        && pa.Chained_exp.chained4_paths >= 0
        && pa.Chained_exp.ma3_new_dests >= 0
        && pa.Chained_exp.chained4_extra_dests >= 0))
    r.Chained_exp.sampled;
  (* chaining multiplies the supply of paths on a peered topology *)
  Alcotest.(check bool) "ratio positive" true (Chained_exp.mean_ratio r > 0.0)

let test_chained_matches_extension_stats () =
  let g = Lazy.force small_graph in
  let r = Chained_exp.run ~sample_size:20 ~seed:5 g in
  List.iter
    (fun (pa : Chained_exp.per_as) ->
      let count, _ = Pan_econ.Extension.chained_stats g pa.Chained_exp.asn in
      Alcotest.(check int) "consistent with Extension.chained_stats" count
        pa.Chained_exp.chained4_paths)
    r.Chained_exp.sampled

let with_temp_dir f =
  let dir = Filename.temp_file "panagree" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_lines ic)

let test_export_csv_escaping () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "t.csv" in
      Export.write_csv ~path ~header:[ "a"; "b" ]
        [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ];
      match read_lines path with
      | [ h; r1; r2 ] ->
          Alcotest.(check string) "header" "a,b" h;
          Alcotest.(check string) "comma escaped" "plain,\"with,comma\"" r1;
          Alcotest.(check string) "quote escaped" "\"with\"\"quote\",x" r2
      | _ -> Alcotest.fail "unexpected line count")

let test_export_fig2 () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "fig2.csv" in
      let series =
        Fig2_pod.run ~ws:[ 2; 5 ] ~trials:5 ~seed:3 ~label:"U(1)" Fig2_pod.u1
      in
      Export.fig2 ~path [ series ];
      let lines = read_lines path in
      Alcotest.(check int) "header + 2 points" 3 (List.length lines))

let test_export_pair_metric () =
  with_temp_dir (fun dir ->
      let g = Lazy.force small_graph in
      let r = Geodistance.run ~sample_size:20 ~seed:5 g in
      let counts = Filename.concat dir "c.csv" in
      let improvements = Filename.concat dir "i.csv" in
      Export.pair_metric ~counts_csv:counts ~improvements_csv:improvements r;
      Alcotest.(check int) "one row per pair"
        (List.length r.Pair_analysis.pairs + 1)
        (List.length (read_lines counts));
      Alcotest.(check int) "one row per improvement"
        (List.length r.Pair_analysis.improvements + 1)
        (List.length (read_lines improvements)))

let test_export_resilience_and_chained () =
  with_temp_dir (fun dir ->
      let g = Lazy.force small_graph in
      let res = Resilience.run ~pairs:20 ~seed:5 g in
      let p1 = Filename.concat dir "r.csv" in
      Export.resilience ~path:p1 res;
      Alcotest.(check int) "resilience rows" 4 (List.length (read_lines p1));
      let ch = Chained_exp.run ~sample_size:10 ~seed:5 g in
      let p2 = Filename.concat dir "c.csv" in
      Export.chained ~path:p2 ch;
      Alcotest.(check int) "chained rows"
        (List.length ch.Chained_exp.sampled + 1)
        (List.length (read_lines p2)))

let test_export_topology_round_trip () =
  with_temp_dir (fun dir ->
      let g = Lazy.force small_graph in
      let path = Filename.concat dir "topo.as-rel2" in
      Export.topology ~path g;
      let g' = Caida.load path in
      Alcotest.(check int) "ases preserved" (Graph.num_ases g)
        (Graph.num_ases g'))

let suite =
  [
    Alcotest.test_case "resilience shape" `Quick test_resilience_shape;
    Alcotest.test_case "chained shape" `Quick test_chained_shape;
    Alcotest.test_case "chained matches Extension" `Quick
      test_chained_matches_extension_stats;
    Alcotest.test_case "csv escaping" `Quick test_export_csv_escaping;
    Alcotest.test_case "export fig2" `Quick test_export_fig2;
    Alcotest.test_case "export pair metric" `Quick test_export_pair_metric;
    Alcotest.test_case "export resilience + chained" `Quick
      test_export_resilience_and_chained;
    Alcotest.test_case "export topology round trip" `Quick
      test_export_topology_round_trip;
  ]
