(* Tests for the intent engine (lib/intent) and its consumers:

   - Compact.Mask semantics against hand-checked cases;
   - qcheck oracle: Yen-style k_shortest over the CSR equals brute-force
     enumeration of all simple paths sorted by (hops, lex) — including
     masked subgraphs — which pins both completeness and the
     deterministic tie-break;
   - Intent parse/print canonical round-trip (qcheck) and parse-error
     line/column positions (unit);
   - qcheck facade equivalence: the refactored Scion.Selection is
     bit-identical (scores and ranking) to a copy of the pre-refactor
     implementation on real beaconed candidate sets;
   - Engine intent memo: cached answers equal uncached recomputation
     across link churn (surgical link-down drops, link-up flushes);
   - Probe determinism under an injected fault spec. *)

open Pan_topology
open Pan_intent
module Rng = Pan_numerics.Rng

let asn = Asn.of_int

(* ------------------------------------------------------------------ *)
(* Compact.Mask                                                        *)

let diamond () =
  (* 1 -2- 3 with two middles 2 and 4, plus direct 1-3 *)
  let g = Graph.create () in
  Graph.add_peering g (asn 1) (asn 2);
  Graph.add_peering g (asn 2) (asn 3);
  Graph.add_peering g (asn 1) (asn 4);
  Graph.add_peering g (asn 4) (asn 3);
  Graph.add_peering g (asn 1) (asn 3);
  Compact.freeze g

let test_mask_semantics () =
  let c = diamond () in
  let i x = Compact.index_of_exn c (asn x) in
  let m = Compact.Mask.all c in
  Alcotest.(check bool) "all is trivial" true (Compact.Mask.is_trivial m);
  Alcotest.(check bool) "all allows link" true
    (Compact.Mask.allows_link m (i 1) (i 3));
  let m2 = Compact.Mask.exclude_as m (i 2) in
  Alcotest.(check bool) "original untouched" true (Compact.Mask.is_trivial m);
  Alcotest.(check bool) "as blocked" false (Compact.Mask.allows_as m2 (i 2));
  Alcotest.(check bool) "links at blocked as" false
    (Compact.Mask.allows_link m2 (i 1) (i 2));
  Alcotest.(check (list int)) "excluded_ases" [ i 2 ]
    (Compact.Mask.excluded_ases m2);
  let m3 = Compact.Mask.exclude_link m2 (i 3) (i 1) in
  Alcotest.(check bool) "link blocked either order" false
    (Compact.Mask.allows_link m3 (i 1) (i 3));
  Alcotest.(check bool) "other links stay" true
    (Compact.Mask.allows_link m3 (i 1) (i 4));
  (* idempotent exclusion, inverse restore *)
  let m4 = Compact.Mask.exclude_link m3 (i 1) (i 3) in
  Alcotest.(check bool) "exclude idempotent" true (Compact.Mask.equal m3 m4);
  let m5 = Compact.Mask.restore_link m4 (i 1) (i 3) in
  Alcotest.(check bool) "restore inverts" true (Compact.Mask.equal m2 m5);
  Alcotest.(check bool) "restore absent = no-op" true
    (Compact.Mask.equal m2 (Compact.Mask.restore_link m5 (i 1) (i 3)));
  (match Compact.Mask.exclude_as m (-1) with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names module" true
        (String.length msg > 12 && String.sub msg 0 12 = "Compact.Mask")
  | _ -> Alcotest.fail "out-of-range index accepted")

(* ------------------------------------------------------------------ *)
(* Yen k_shortest vs brute force                                       *)

(* Small random mixed-class topologies; dense enough that K9-ish path
   explosions keep the oracle honest but cheap. *)
let random_compact seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 5 in
  let g = Graph.create () in
  let added = ref false in
  for i = 1 to n do
    for j = i + 1 to n do
      if Rng.float rng < 0.45 then begin
        added := true;
        if Rng.bool rng then Graph.add_peering g (asn i) (asn j)
        else Graph.add_provider_customer g ~provider:(asn i) ~customer:(asn j)
      end
    done
  done;
  if not !added then Graph.add_peering g (asn 1) (asn 2);
  Compact.freeze g

let compare_hops_lex p q =
  match compare (List.length p) (List.length q) with
  | 0 -> compare p q
  | c -> c

(* Every simple path src..dst (at most max_hops ASes) over the allowed
   subgraph, sorted by (hops, lex) — the order k_shortest promises. *)
let brute_force topo ~node_ok ~edge_ok ~max_hops ~src ~dst =
  let acc = ref [] in
  let visited = Array.make (Compact.num_ases topo) false in
  let rec go cur path len =
    if cur = dst then acc := List.rev path :: !acc
    else if len < max_hops then
      Compact.iter_neighbors topo cur (fun v ->
          if (not visited.(v)) && node_ok v && edge_ok cur v then begin
            visited.(v) <- true;
            go v (v :: path) (len + 1);
            visited.(v) <- false
          end)
  in
  if node_ok src && node_ok dst then begin
    visited.(src) <- true;
    go src [ src ] 1
  end;
  List.sort compare_hops_lex !acc

let take k l = List.filteri (fun i _ -> i < k) l

let check_pair topo ?mask ~max_hops ~src ~dst k =
  let node_ok, edge_ok =
    match mask with
    | None -> ((fun _ -> true), fun _ _ -> true)
    | Some m -> (Compact.Mask.allows_as m, Compact.Mask.allows_link m)
  in
  let bound =
    match max_hops with Some h -> h | None -> Compact.num_ases topo
  in
  let expected =
    take k (brute_force topo ~node_ok ~edge_ok ~max_hops:bound ~src ~dst)
  in
  let got = Candidates.k_shortest topo ?mask ?max_hops ~src ~dst ~k () in
  if got <> expected then
    QCheck.Test.fail_reportf
      "k_shortest (src=%d dst=%d k=%d) = [%s], brute force = [%s]" src dst k
      (String.concat " | "
         (List.map (fun p -> String.concat "-" (List.map string_of_int p)) got))
      (String.concat " | "
         (List.map
            (fun p -> String.concat "-" (List.map string_of_int p))
            expected));
  true

let qcheck_yen_oracle =
  QCheck.Test.make ~count:60 ~name:"k_shortest = brute force (hops, lex)"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let topo = random_compact seed in
      let n = Compact.num_ases topo in
      List.for_all Fun.id
        (List.concat_map
           (fun src ->
             List.concat_map
               (fun dst ->
                 List.map
                   (fun k ->
                     check_pair topo ~max_hops:None ~src ~dst k
                     && check_pair topo ~max_hops:(Some 4) ~src ~dst k)
                   [ 1; 2; 5; 9 ])
               (List.init n Fun.id))
           (List.init n Fun.id)))

let qcheck_yen_oracle_masked =
  QCheck.Test.make ~count:60 ~name:"k_shortest under mask = brute force"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let topo = random_compact (seed + 77) in
      let n = Compact.num_ases topo in
      let rng = Rng.create (seed * 3) in
      let blocked_as = Rng.int rng n in
      let la = Rng.int rng n in
      let lb = (la + 1 + Rng.int rng (n - 1)) mod n in
      let mask =
        Compact.Mask.exclude_link
          (Compact.Mask.exclude_as (Compact.Mask.all topo) blocked_as)
          la lb
      in
      List.for_all Fun.id
        (List.concat_map
           (fun src ->
             List.map
               (fun dst -> check_pair topo ~mask ~max_hops:None ~src ~dst 6)
               (List.init n Fun.id))
           (List.init n Fun.id)))

(* Re-running the enumeration must reproduce it bit-for-bit: it is a
   pure function of the frozen view (no hash-order dependence). *)
let qcheck_yen_deterministic =
  QCheck.Test.make ~count:30 ~name:"k_shortest reruns bit-identical"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let topo = random_compact seed in
      let n = Compact.num_ases topo in
      let src = seed mod n and dst = (seed + 1) mod n in
      Candidates.k_shortest topo ~src ~dst ~k:8 ()
      = Candidates.k_shortest topo ~src ~dst ~k:8 ())

(* ------------------------------------------------------------------ *)
(* Intent syntax round-trip                                            *)

let arbitrary_intent =
  let open QCheck.Gen in
  let component =
    oneofl
      Intent.[ Latency; Nlatency; Bandwidth; Nbandwidth; Hops ]
  in
  let term =
    map2
      (fun weight component -> { Intent.weight; component })
      (oneofl [ 0.25; 0.5; 1.0; 2.0; 2.5; 3.0; 10.0 ])
      component
  in
  let gen =
    let* metric = list_size (int_range 1 4) term in
    let* k = int_range 1 32 in
    let* max_hops = opt (int_range 1 8) in
    let* exclude_as = list_size (int_range 0 3) (map asn (int_range 1 40)) in
    let* exclude_link =
      list_size (int_range 0 2)
        (map2
           (fun a b -> (asn a, asn (a + 1 + b)))
           (int_range 1 20) (int_range 0 20))
    in
    let* geo_fence =
      opt
        (map2
           (fun lat lon ->
             {
               Intent.center =
                 { Geo.lat = float_of_int lat; lon = float_of_int lon };
               radius_km = 2500.0;
             })
           (int_range (-80) 80) (int_range (-170) 170))
    in
    let* require =
      oneofl [ []; [ Intent.Encrypted ]; [ Intent.Monitored ];
               Intent.[ Encrypted; Monitored ] ]
    in
    (* metric lists with duplicate-free components: canonical printing
       keeps term order, so any list round-trips; no constraint needed *)
    return
      (Intent.make ~metric ~k ?max_hops ~exclude_as ~exclude_link ?geo_fence
         ~require ())
  in
  QCheck.make ~print:Intent.to_string gen

let qcheck_intent_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Intent parse (to_string t) = t"
    arbitrary_intent (fun t ->
      match Intent.parse (Intent.to_string t) with
      | Ok t' ->
          Intent.equal t t' && String.equal (Intent.to_string t') (Intent.to_string t)
      | Error (`Msg m) ->
          QCheck.Test.fail_reportf "%S did not parse: %s" (Intent.to_string t) m)

(* Whitespace and case-insensitive keywords normalize to the canonical
   form. *)
let test_parse_normalizes () =
  let t =
    Intent.parse_exn
      "  metric = 2 * nlatency + nbandwidth ;k=08; exclude-as = AS7 , AS3, \
       AS7 ; require=monitored,encrypted"
  in
  Alcotest.(check string) "canonical"
    "metric=2*nlatency+nbandwidth; k=8; exclude-as=AS3,AS7; \
     require=encrypted,monitored"
    (Intent.to_string t);
  let u = Intent.parse_exn "metric=latency" in
  Alcotest.(check bool) "defaults fill in" true (Intent.equal u Intent.default)

let check_error spec line col frag =
  match Intent.parse_located spec with
  | Ok t ->
      Alcotest.failf "%S parsed as %s, expected error" spec (Intent.to_string t)
  | Error (l, c, msg) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "position of %S" spec)
        (line, col) (l, c);
      let has_frag =
        let fl = String.length frag and ml = String.length msg in
        let rec scan i =
          i + fl <= ml && (String.sub msg i fl = frag || scan (i + 1))
        in
        scan 0
      in
      if not has_frag then
        Alcotest.failf "error %S does not mention %S" msg frag

let test_parse_error_positions () =
  check_error "metric=bogus" 1 8 "unknown metric component";
  check_error "metric=latency; k=0" 1 19 "k";
  check_error "metric=latency; k=4; k=2" 1 22 "duplicate";
  check_error "metric=" 1 8 "unknown metric component";
  check_error "metric=latency; geo-fence=1,2" 1 27 "geo-fence";
  check_error "metric=latency; exclude-link=AS1-AS1" 1 30 "self-link";
  check_error "metric=latency;\nwat=1" 2 1 "unknown clause";
  check_error "metric=latency;\n  k = x" 2 7 "k"

(* A bad spec inside a stream line reports the 1-based column within
   that line (the embedder re-anchors intent columns). *)
let test_stream_intent_error_column () =
  let line = "intent AS1 AS2 metric=bogus; k=2" in
  match Pan_service.Stream.parse line with
  | _ -> Alcotest.fail "bad intent spec accepted"
  | exception Invalid_argument msg ->
      (* "metric=" starts at column 16, so the bad component is at 23 *)
      Alcotest.(check string) "anchored column"
        "Stream.parse: line 1: intent spec (col 23): unknown metric \
         component \"bogus\" (expected latency, nlatency, bandwidth, \
         nbandwidth or hops)"
        msg

(* ------------------------------------------------------------------ *)
(* Scion.Selection facade = pre-refactor implementation                *)

(* The pre-refactor Selection, copied verbatim (modulo module paths):
   the facade must reproduce its floats bit-for-bit. *)
module Reference = struct
  let per_hop_penalty_km = 100.0

  let latency_proxy (ctx : Pan_scion.Selection.context) ases =
    match ases with
    | [] | [ _ ] -> invalid_arg "reference: path too short"
    | first :: _ ->
        let rec link_points = function
          | a :: (b :: _ as rest) ->
              Geo.link_location ctx.geo a b :: link_points rest
          | _ -> []
        in
        let links = link_points ases in
        let src_loc = Geo.as_location ctx.geo first in
        let rec last = function
          | [ x ] -> x
          | _ :: rest -> last rest
          | [] -> assert false
        in
        let dst_loc = Geo.as_location ctx.geo (last ases) in
        let rec chain acc prev = function
          | [] -> acc +. Geo.distance_km prev dst_loc
          | p :: rest -> chain (acc +. Geo.distance_km prev p) p rest
        in
        let geodist =
          match links with
          | [] -> Geo.distance_km src_loc dst_loc
          | p :: rest -> chain (Geo.distance_km src_loc p) p rest
        in
        geodist +. (per_hop_penalty_km *. float_of_int (List.length ases))

  let bandwidth_proxy (ctx : Pan_scion.Selection.context) ases =
    Bandwidth.path_bandwidth ctx.bandwidth ases

  let score ctx app ases =
    match app with
    | Pan_scion.Selection.Voip -> latency_proxy ctx ases
    | Pan_scion.Selection.File_transfer -> -.bandwidth_proxy ctx ases
    | Pan_scion.Selection.Web ->
        (latency_proxy ctx ases /. 1000.0)
        +. (1000.0 /. Float.max 1.0 (bandwidth_proxy ctx ases))

  let compare_candidates ctx app s1 s2 =
    let a1 = Pan_scion.Segment.ases s1 and a2 = Pan_scion.Segment.ases s2 in
    match compare (score ctx app a1) (score ctx app a2) with
    | 0 -> (
        match compare (List.length a1) (List.length a2) with
        | 0 -> compare a1 a2
        | c -> c)
    | c -> c

  let rank ctx app candidates =
    List.stable_sort (compare_candidates ctx app) candidates
end

let qcheck_selection_facade =
  QCheck.Test.make ~count:15
    ~name:"Selection.rank/score = pre-refactor reference (bit-identical)"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let open Pan_scion in
      let params =
        { Gen.default_params with Gen.n_transit = 8; Gen.n_stub = 30 }
      in
      let g = Gen.graph (Gen.generate ~params ~seed ()) in
      let ctx =
        {
          Selection.geo = Geo.generate ~seed:(seed + 1) g;
          Selection.bandwidth = Bandwidth.degree_gravity g;
        }
      in
      let authz = Authz.create g in
      let ps = Path_server.build authz (Beacon.run authz) in
      let ases = Array.of_list (Graph.ases g) in
      let rng = Rng.create (seed + 2) in
      let apps =
        Selection.[ Voip; File_transfer; Web ]
      in
      List.for_all Fun.id
        (List.init 20 (fun _ ->
             let src = ases.(Rng.int rng (Array.length ases)) in
             let dst = ases.(Rng.int rng (Array.length ases)) in
             let candidates = Combinator.end_to_end ps ~src ~dst in
             List.for_all
               (fun app ->
                 let got = Selection.rank ctx app candidates in
                 let expected = Reference.rank ctx app candidates in
                 List.map Segment.ases got = List.map Segment.ases expected
                 && Selection.select ctx app candidates
                    = (match expected with [] -> None | s :: _ -> Some s)
                 && List.for_all
                      (fun s ->
                        let ases = Segment.ases s in
                        (* bit-identical, not approximately equal *)
                        Float.equal
                          (Selection.score ctx app ases)
                          (Reference.score ctx app ases))
                      candidates)
               apps)))

(* ------------------------------------------------------------------ *)
(* Engine intent memo across churn                                     *)

let test_engine_intent_churn_equivalence () =
  let open Pan_service in
  let params = { Gen.default_params with Gen.n_transit = 10; Gen.n_stub = 40 } in
  let topo = Compact.freeze (Gen.graph (Gen.generate ~params ~seed:7 ())) in
  let intent = Intent.parse_exn "metric=nlatency+nbandwidth; k=4" in
  let stream =
    Stream.generate ~intent ~rng:(Rng.create 11) ~topo ~requests:120
      ~churn:0.3 ()
  in
  let engine = Engine.create topo in
  let n = Compact.num_ases topo in
  let pairs = List.init 6 (fun i -> (i * 5 mod n, ((i * 5) + 7) mod n)) in
  List.iter
    (fun item ->
      (match item with
      | Stream.Up _ | Stream.Down _ ->
          ignore (Engine.apply engine (Serve.event_of_item topo item) : int)
      | Stream.Intent_query { src; dst; intent } ->
          let src = Compact.index_of_exn topo src in
          let dst = Compact.index_of_exn topo dst in
          ignore (Engine.intent_query engine ~src ~dst intent
                   : Candidates.result list)
      | Stream.Query _ -> ());
      (* after every item, the memo (warm or churn-invalidated) must
         agree with a fresh recomputation on fixed probe pairs *)
      List.iter
        (fun (src, dst) ->
          if src <> dst then
            let cached = Engine.intent_query engine ~src ~dst intent in
            let fresh = Engine.intent_query_uncached engine ~src ~dst intent in
            if cached <> fresh then
              Alcotest.failf "memoized intent answer diverges for (%d, %d)"
                src dst)
        pairs)
    stream;
  let st = Engine.stats engine in
  Alcotest.(check bool) "memo was exercised" true (st.Engine.store_hits > 0);
  Alcotest.(check bool) "churn invalidated something" true
    (st.Engine.invalidated > 0)

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)

let test_probe_no_faults_selects_first () =
  let topo = diamond () in
  let paths = [ [ asn 1; asn 2; asn 3 ]; [ asn 1; asn 3 ] ] in
  let saved = Pan_runner.Fault.get () in
  Pan_runner.Fault.set None;
  Fun.protect
    ~finally:(fun () -> Pan_runner.Fault.set saved)
    (fun () ->
      let o = Probe.run ~topo paths in
      Alcotest.(check bool) "first candidate wins" true
        (o.Probe.selected = Some [ asn 1; asn 2; asn 3 ]);
      Alcotest.(check int) "single attempt" 1 (List.length o.Probe.attempts))

let test_probe_deterministic_under_faults () =
  let params = { Gen.default_params with Gen.n_transit = 8; Gen.n_stub = 30 } in
  let topo = Compact.freeze (Gen.graph (Gen.generate ~params ~seed:5 ())) in
  let metric =
    Metric.of_models
      ~geo:(Geo.of_compact ~seed:43 topo)
      ~bandwidth:(Bandwidth.of_compact topo)
  in
  let intent = Intent.parse_exn "metric=latency; k=6" in
  let n = Compact.num_ases topo in
  let saved = Pan_runner.Fault.get () in
  let probe_all () =
    Pan_runner.Fault.set
      (Some { Pan_runner.Fault.seed = 3; rate = 0.2; delay = 0.0;
              delay_rate = 0.0 });
    Fun.protect
      ~finally:(fun () -> Pan_runner.Fault.set saved)
      (fun () ->
        List.init 15 (fun i ->
            let src = Compact.id topo (i mod n) in
            let dst = Compact.id topo ((i + 9) mod n) in
            if Asn.equal src dst then None
            else
              let paths =
                List.map
                  (fun r -> r.Candidates.path)
                  (Candidates.generate ~topo ~metric intent ~src ~dst)
              in
              let o = Probe.run ~topo paths in
              Some (o.Probe.selected, Probe.failed_links o)))
  in
  let first = probe_all () in
  Alcotest.(check bool) "probe outcome is a pure function of the spec" true
    (first = probe_all ());
  let failed =
    List.exists
      (function Some (_, _ :: _) -> true | _ -> false)
      first
  in
  Alcotest.(check bool) "faults actually fired" true failed

let suite =
  [
    Alcotest.test_case "Compact.Mask semantics" `Quick test_mask_semantics;
    QCheck_alcotest.to_alcotest qcheck_yen_oracle;
    QCheck_alcotest.to_alcotest qcheck_yen_oracle_masked;
    QCheck_alcotest.to_alcotest qcheck_yen_deterministic;
    QCheck_alcotest.to_alcotest qcheck_intent_roundtrip;
    Alcotest.test_case "parse normalizes to canonical form" `Quick
      test_parse_normalizes;
    Alcotest.test_case "parse errors carry line/column" `Quick
      test_parse_error_positions;
    Alcotest.test_case "stream re-anchors intent error columns" `Quick
      test_stream_intent_error_column;
    QCheck_alcotest.to_alcotest qcheck_selection_facade;
    Alcotest.test_case "engine intent memo = uncached across churn" `Quick
      test_engine_intent_churn_equivalence;
    Alcotest.test_case "probe: no faults -> first candidate" `Quick
      test_probe_no_faults_selects_first;
    Alcotest.test_case "probe: deterministic under injected faults" `Quick
      test_probe_deterministic_under_faults;
  ]
