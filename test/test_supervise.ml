(* Supervision suite (lib/runner Supervise/Fault and the pool's
   exception safety).  The contracts under test:

   - a job that raises never takes a pool domain down: the pool absorbs
     it, counts [pool.job_failures]/[pool.worker_restarts], and every
     domain keeps executing subsequent work (asserted with a barrier
     that needs all domains concurrently);
   - a faulty run with enough retries is bit-identical to a fault-free
     run, for any pool size, because every attempt of a chunk replays a
     fresh copy of the chunk's split generator;
   - deadlines cancel chunks cooperatively at attempt boundaries and are
     measured on the ambient Obs clock, so a virtual clock makes expiry
     fully deterministic;
   - partial mode never raises: it returns the completed portion plus a
     manifest naming every failed or cancelled chunk. *)

open Pan_numerics
open Pan_runner
module Obs = Pan_obs.Obs
module Metrics = Pan_obs.Metrics
module Clock = Pan_obs.Clock

(* Run [f] with metrics collection on; returns (result, metrics). *)
let with_obs ?clock f =
  Obs.configure ?clock ();
  Fun.protect
    ~finally:(fun () -> Obs.disable ())
    (fun () ->
      let r = f () in
      (r, Obs.metrics ()))

(* ------------------------------------------------------------------ *)
(* Pool exception safety                                               *)

let test_pool_absorbs_raising_jobs () =
  let (), m =
    with_obs @@ fun () ->
    Pool.with_pool ~domains:4 @@ fun pool ->
    (* 16 jobs, half of which raise.  Every job must still execute. *)
    let executed = Atomic.make 0 in
    Pool.run_jobs pool
      (List.init 16 (fun i () ->
           ignore (Atomic.fetch_and_add executed 1);
           if i mod 2 = 0 then failwith "boom"));
    let deadline = Unix.gettimeofday () +. 10.0 in
    while Atomic.get executed < 16 && Unix.gettimeofday () < deadline do
      Domain.cpu_relax ()
    done;
    Alcotest.(check int) "all jobs executed" 16 (Atomic.get executed);
    (* All 4 domains (3 workers + the helping caller) must still be
       alive: a 4-way barrier only passes if 4 jobs run concurrently.
       A dead worker would leave the barrier stuck, so the spin carries
       a timeout that fails the test instead of hanging it. *)
    let arrived = Atomic.make 0 in
    let timed_out = Atomic.make false in
    Pool.run_jobs pool
      (List.init 4 (fun _ () ->
           ignore (Atomic.fetch_and_add arrived 1);
           let t0 = Unix.gettimeofday () in
           while Atomic.get arrived < 4 && not (Atomic.get timed_out) do
             if Unix.gettimeofday () -. t0 > 10.0 then
               Atomic.set timed_out true;
             Domain.cpu_relax ()
           done));
    Alcotest.(check bool) "all 4 domains reach the barrier" false
      (Atomic.get timed_out)
  in
  Alcotest.(check int) "failures counted" 8
    (Metrics.counter m "pool.job_failures");
  (* worker_restarts counts the subset absorbed on worker domains; the
     caller-helps path counts only job_failures. *)
  let restarts = Metrics.counter m "pool.worker_restarts" in
  Alcotest.(check bool) "restarts within failures" true
    (restarts >= 0 && restarts <= 8)

(* ------------------------------------------------------------------ *)
(* Retry determinism under injected faults                             *)

let fault_spec ~seed ~rate = { Fault.seed; rate; delay = 0.0; delay_rate = 0.0 }

(* The combine is deliberately non-associative and the per-item value
   draws from the chunk generator: any replay that did not restore the
   exact RNG state, or any partial chunk leaking into the fold, shifts
   the result. *)
let sum_kernel ?pool ~retries () =
  let rng = Rng.create 11 in
  Task.map_reduce ?pool ~retries ~rng ~n:60 ~chunk:3
    ~f:(fun crng i -> Rng.float crng +. (float_of_int i /. 977.0))
    ~combine:(fun acc x -> (acc *. 1.000001) +. x)
    ~init:0.0 ()

let test_faulty_run_identical () =
  let baseline = sum_kernel ~retries:0 () in
  let (), m =
    with_obs @@ fun () ->
    Fault.set (Some (fault_spec ~seed:3 ~rate:0.3));
    Fun.protect
      ~finally:(fun () -> Fault.set None)
      (fun () ->
        List.iter
          (fun j ->
            let v =
              if j = 1 then sum_kernel ~retries:8 ()
              else
                Pool.with_pool ~domains:j (fun pool ->
                    sum_kernel ~pool ~retries:8 ())
            in
            Alcotest.(check (float 0.0))
              (Printf.sprintf "faulty j=%d = fault-free" j)
              baseline v)
          [ 1; 2; 4 ])
  in
  (* The equality above is vacuous if the spec never fired. *)
  Alcotest.(check bool) "faults were injected" true
    (Metrics.counter m "fault.injected" > 0);
  Alcotest.(check bool) "retries were scheduled" true
    (Metrics.counter m "runner.retries" > 0);
  Alcotest.(check bool) "chunks recovered" true
    (Metrics.counter m "runner.chunks_recovered" > 0)

let qcheck_fault_recovery =
  QCheck.Test.make ~count:30
    ~name:"Task.map_reduce: faulty+retries = fault-free (random seeds)"
    QCheck.(
      quad small_int (int_range 0 50) (int_range 1 7)
        (QCheck.oneofl [ 1; 2; 4 ]))
    (fun (seed, n, chunk, j) ->
      let run pool retries =
        let rng = Rng.create seed in
        Task.map_reduce ?pool ~retries ~rng ~n ~chunk
          ~f:(fun crng i -> Rng.float crng *. float_of_int (i + 1))
          ~combine:( +. ) ~init:0.0 ()
      in
      let baseline = run None 0 in
      (* rate 0.4 with 12 retries: chance of exhausting a chunk is
         0.4^13 ~ 7e-6, negligible over the qcheck run count. *)
      Fault.set (Some (fault_spec ~seed ~rate:0.4));
      Fun.protect
        ~finally:(fun () -> Fault.set None)
        (fun () ->
          let faulty =
            if j = 1 then run None 12
            else Pool.with_pool ~domains:j (fun pool -> run (Some pool) 12)
          in
          faulty = baseline))

(* ------------------------------------------------------------------ *)
(* Deadlines under a virtual clock                                     *)

(* Six 1-item chunks, each advancing the virtual clock by 0.3 s, under a
   1 s deadline.  Sequentially the boundary checks see elapsed 0, 0.3,
   0.6, 0.9, 1.2, 1.2: exactly chunks 0-3 complete and 4-5 are
   cancelled unstarted. *)
let test_deadline_partial () =
  let clock = Clock.virtual_ () in
  let (acc, manifest), m =
    with_obs ~clock @@ fun () ->
    let policy = Supervise.policy ~deadline:1.0 () in
    let rng = Rng.create 1 in
    Task.map_reduce_partial ~policy ~rng ~n:6 ~chunk:1
      ~f:(fun _ i ->
        Clock.advance clock 0.3;
        i)
      ~combine:( + ) ~init:0 ()
  in
  Alcotest.(check int) "fold covers completed chunks" (0 + 1 + 2 + 3) acc;
  Alcotest.(check int) "completed" 4 manifest.Supervise.completed_chunks;
  Alcotest.(check int) "total" 6 manifest.Supervise.total_chunks;
  Alcotest.(check bool) "expired" true manifest.Supervise.deadline_expired;
  Alcotest.(check (list (triple int int string)))
    "cancelled chunks, unstarted, in ascending order"
    [ (4, 0, "deadline expired"); (5, 0, "deadline expired") ]
    (List.map
       (fun f -> (f.Supervise.chunk, f.Supervise.attempts, f.Supervise.error))
       manifest.Supervise.failures);
  Alcotest.(check int) "cancellations counted" 2
    (Metrics.counter m "runner.chunks_cancelled");
  Alcotest.(check int) "expiry counted once" 1
    (Metrics.counter m "runner.deadline_expired")

let test_deadline_raises_incomplete () =
  let clock = Clock.virtual_ () in
  let (), _ =
    with_obs ~clock @@ fun () ->
    let rng = Rng.create 1 in
    match
      Task.map_reduce ~deadline:1.0 ~rng ~n:6 ~chunk:1
        ~f:(fun _ i ->
          Clock.advance clock 0.3;
          i)
        ~combine:( + ) ~init:0 ()
    with
    | _ -> Alcotest.fail "expected Supervise.Incomplete"
    | exception Supervise.Incomplete man ->
        Alcotest.(check bool) "expired" true man.Supervise.deadline_expired;
        Alcotest.(check int) "completed" 4 man.Supervise.completed_chunks
  in
  ()

(* On a pool the cancellation point each chunk hits is scheduling-
   dependent, so only invariants are asserted: every chunk is accounted
   for, completed slots hold the right value, and failures imply the
   deadline actually expired. *)
let test_deadline_pool_invariants () =
  let clock = Clock.virtual_ () in
  let (), _ =
    with_obs ~clock @@ fun () ->
    Pool.with_pool ~domains:4 @@ fun pool ->
    let policy = Supervise.policy ~deadline:1.0 () in
    let results, man =
      Supervise.run_chunks ~pool ~policy ~partial:true ~m:12 (fun c ->
          Clock.advance clock 0.3;
          c * 2)
    in
    Alcotest.(check int) "all chunks accounted" 12
      (man.Supervise.completed_chunks + List.length man.Supervise.failures);
    Array.iteri
      (fun c r ->
        match r with
        | Some v -> Alcotest.(check int) "completed slot value" (c * 2) v
        | None -> ())
      results;
    Alcotest.(check bool) "failures imply expiry" true
      (man.Supervise.failures = [] || man.Supervise.deadline_expired)
  in
  ()

(* ------------------------------------------------------------------ *)
(* Partial mode and error surfacing for real failures                  *)

let test_partial_permanent_failure () =
  let policy = Supervise.policy ~retries:2 () in
  let arr, man =
    Task.map_partial ~policy ~chunk:4 ~n:16
      ~f:(fun i -> if i = 6 then failwith "boom" else i * 10)
      ()
  in
  (* chunk 1 (items 4-7) fails permanently; its items are missing. *)
  Alcotest.(check (list int))
    "completed chunks concatenated in index order"
    (List.map (fun i -> i * 10) [ 0; 1; 2; 3; 8; 9; 10; 11; 12; 13; 14; 15 ])
    (Array.to_list arr);
  Alcotest.(check (list (triple int int string)))
    "failure manifest"
    [ (1, 3, {|Failure("boom")|}) ]
    (List.map
       (fun f -> (f.Supervise.chunk, f.Supervise.attempts, f.Supervise.error))
       man.Supervise.failures);
  Alcotest.(check bool) "no deadline involved" false
    man.Supervise.deadline_expired

let test_lowest_failed_chunk_raises () =
  (* Two failing chunks: all-or-nothing mode must surface the lowest
     chunk index (deterministic), not whichever completed first. *)
  Alcotest.check_raises "lowest failed chunk wins" (Failure "six") (fun () ->
      Pool.with_pool ~domains:4 (fun pool ->
          ignore
            (Task.map ~pool ~chunk:2 ~retries:1 ~n:16
               ~f:(fun i ->
                 if i = 6 then failwith "six"
                 else if i = 13 then failwith "thirteen"
                 else i)
               ())))

(* ------------------------------------------------------------------ *)
(* Validation and spec parsing                                         *)

let test_policy_validation () =
  Alcotest.check_raises "retries < 0"
    (Invalid_argument "Supervise.policy: retries < 0") (fun () ->
      ignore (Supervise.policy ~retries:(-1) ()));
  Alcotest.check_raises "deadline <= 0"
    (Invalid_argument "Supervise.policy: deadline <= 0") (fun () ->
      ignore (Supervise.policy ~deadline:0.0 ()))

let test_fault_parse () =
  (match Fault.parse "rate=0.25,seed=7" with
  | Ok s ->
      Alcotest.(check (float 0.0)) "rate" 0.25 s.Fault.rate;
      Alcotest.(check int) "seed" 7 s.Fault.seed;
      Alcotest.(check (float 0.0)) "delay-rate defaults to 0" 0.0
        s.Fault.delay_rate
  | Error (`Msg msg) -> Alcotest.fail msg);
  (match Fault.parse "rate=0.1,delay=0.5" with
  | Ok s ->
      Alcotest.(check (float 0.0)) "delay-rate defaults to 1 with delay" 1.0
        s.Fault.delay_rate;
      (* the canonical form round-trips *)
      Alcotest.(check bool) "to_string round-trips" true
        (Fault.parse (Fault.to_string s) = Ok s)
  | Error (`Msg msg) -> Alcotest.fail msg);
  let rejects s = Result.is_error (Fault.parse s) in
  Alcotest.(check bool) "rate out of range" true (rejects "rate=1.5");
  Alcotest.(check bool) "negative delay" true (rejects "delay=-1");
  Alcotest.(check bool) "unknown key" true (rejects "frequency=1");
  Alcotest.(check bool) "malformed number" true (rejects "rate=x");
  Alcotest.(check bool) "missing =" true (rejects "rate");
  Alcotest.(check bool) "empty" true (rejects "")

let suite =
  [
    Alcotest.test_case "pool absorbs raising jobs, all domains alive" `Quick
      test_pool_absorbs_raising_jobs;
    Alcotest.test_case "faulty run + retries = fault-free (j=1,2,4)" `Quick
      test_faulty_run_identical;
    QCheck_alcotest.to_alcotest qcheck_fault_recovery;
    Alcotest.test_case "deadline expiry under virtual clock (partial)" `Quick
      test_deadline_partial;
    Alcotest.test_case "deadline expiry raises Incomplete" `Quick
      test_deadline_raises_incomplete;
    Alcotest.test_case "deadline on a pool: manifest invariants" `Quick
      test_deadline_pool_invariants;
    Alcotest.test_case "partial mode survives a permanent failure" `Quick
      test_partial_permanent_failure;
    Alcotest.test_case "lowest failed chunk's exception surfaces" `Quick
      test_lowest_failed_chunk_raises;
    Alcotest.test_case "policy validation" `Quick test_policy_validation;
    Alcotest.test_case "fault spec parsing" `Quick test_fault_parse;
  ]
