(* Tests for link-load accounting, placement policies, and the TE
   experiment. *)

open Pan_topology
open Pan_scion

let approx = Alcotest.(check (float 1e-9))
let a = Gen.fig1_asn
let g = Gen.fig1 ()

let test_add_and_load () =
  let t = Traffic.create g in
  approx "empty" 0.0 (Traffic.link_load t (a 'A') (a 'D'));
  Traffic.add_path t [ a 'H'; a 'D'; a 'A' ] 5.0;
  approx "first link" 5.0 (Traffic.link_load t (a 'H') (a 'D'));
  approx "second link" 5.0 (Traffic.link_load t (a 'D') (a 'A'));
  Traffic.add_path t [ a 'D'; a 'A' ] 2.0;
  approx "accumulates" 7.0 (Traffic.link_load t (a 'A') (a 'D'));
  approx "order-insensitive" 7.0 (Traffic.link_load t (a 'D') (a 'A'))

let test_add_path_validation () =
  let t = Traffic.create g in
  (try
     Traffic.add_path t [ a 'H' ] 1.0;
     Alcotest.fail "short path accepted"
   with Invalid_argument _ -> ());
  (try
     Traffic.add_path t [ a 'H'; a 'I' ] 1.0;
     Alcotest.fail "non-link accepted"
   with Invalid_argument _ -> ());
  try
    Traffic.add_path t [ a 'H'; a 'D' ] (-1.0);
    Alcotest.fail "negative volume accepted"
  with Invalid_argument _ -> ()

let test_utilization_and_stats () =
  let t = Traffic.create g in
  let bw = Bandwidth.degree_gravity g in
  Traffic.add_path t [ a 'H'; a 'D' ] 10.0;
  let cap = Bandwidth.link_capacity bw (a 'H') (a 'D') in
  approx "utilization" (10.0 /. cap) (Traffic.utilization t bw (a 'H') (a 'D'));
  let _, _, max_u = Traffic.stats t bw ~loaded_only:true in
  approx "max over loaded links" (10.0 /. cap) max_u;
  let mean_all, _, _ = Traffic.stats t bw ~loaded_only:false in
  Alcotest.(check bool) "all-links mean is diluted" true (mean_all < max_u)

let test_overloaded () =
  let t = Traffic.create g in
  let bw = Bandwidth.degree_gravity g in
  let cap = Bandwidth.link_capacity bw (a 'H') (a 'D') in
  Traffic.add_path t [ a 'H'; a 'D' ] (1.5 *. cap);
  Alcotest.(check int) "one overloaded" 1
    (Traffic.overloaded t bw ~threshold:1.0);
  Alcotest.(check int) "higher threshold" 0
    (Traffic.overloaded t bw ~threshold:2.0);
  Traffic.reset t;
  Alcotest.(check int) "reset clears" 0
    (Traffic.overloaded t bw ~threshold:0.0)

let test_place_single_and_split () =
  let bw = Bandwidth.degree_gravity g in
  let p1 = [ a 'H'; a 'D'; a 'A' ] in
  let p2 = [ a 'H'; a 'D'; a 'E' ] in
  let t = Traffic.create g in
  Traffic.place t bw Traffic.Single_path [ p1; p2 ] 6.0;
  approx "single: all on first" 6.0 (Traffic.link_load t (a 'D') (a 'A'));
  approx "single: none on second" 0.0 (Traffic.link_load t (a 'D') (a 'E'));
  let t2 = Traffic.create g in
  Traffic.place t2 bw (Traffic.Split 2) [ p1; p2 ] 6.0;
  approx "split: half" 3.0 (Traffic.link_load t2 (a 'D') (a 'A'));
  approx "split: other half" 3.0 (Traffic.link_load t2 (a 'D') (a 'E'));
  approx "split: shared prefix carries all" 6.0
    (Traffic.link_load t2 (a 'H') (a 'D'))

let test_place_split_fewer_candidates_than_k () =
  let bw = Bandwidth.degree_gravity g in
  let t = Traffic.create g in
  Traffic.place t bw (Traffic.Split 5) [ [ a 'H'; a 'D' ] ] 4.0;
  approx "all volume despite k > candidates" 4.0
    (Traffic.link_load t (a 'H') (a 'D'))

let test_place_congestion_aware () =
  let bw = Bandwidth.degree_gravity g in
  let p1 = [ a 'H'; a 'D'; a 'A' ] in
  let p2 = [ a 'H'; a 'D'; a 'E' ] in
  let t = Traffic.create g in
  (* preload p1's second link so the aware policy prefers p2 *)
  Traffic.add_path t [ a 'D'; a 'A' ] 100.0;
  Traffic.place t bw (Traffic.Congestion_aware 2) [ p1; p2 ] 5.0;
  approx "avoided the hot link" 100.0 (Traffic.link_load t (a 'D') (a 'A'));
  approx "placed on the cool path" 5.0 (Traffic.link_load t (a 'D') (a 'E'))

let test_place_empty_candidates () =
  let bw = Bandwidth.degree_gravity g in
  let t = Traffic.create g in
  Traffic.place t bw Traffic.Single_path [] 5.0;
  Alcotest.(check int) "no-op" 0 (Traffic.overloaded t bw ~threshold:0.0)

let test_te_experiment_shape () =
  let params =
    { Gen.default_params with Gen.n_transit = 50; Gen.n_stub = 200 }
  in
  let g' = Gen.graph (Gen.generate ~params ~seed:42 ()) in
  let r = Pan_experiments.Te_exp.run ~demands:100 ~seed:3 g' in
  Alcotest.(check int) "four regimes" 4
    (List.length r.Pan_experiments.Te_exp.regimes);
  let find label =
    List.find
      (fun (reg : Pan_experiments.Te_exp.regime) ->
        reg.Pan_experiments.Te_exp.label = label)
      r.Pan_experiments.Te_exp.regimes
  in
  let grc = find "GRC single-path" in
  let ma = find "MA split-3" in
  (* every MA regime routes at least as many demands *)
  Alcotest.(check bool) "MA routes more demands" true
    (ma.Pan_experiments.Te_exp.unrouted
    <= grc.Pan_experiments.Te_exp.unrouted);
  (* utilizations are positive and finite *)
  List.iter
    (fun (reg : Pan_experiments.Te_exp.regime) ->
      Alcotest.(check bool) "sane stats" true
        (reg.Pan_experiments.Te_exp.mean_utilization > 0.0
        && Float.is_finite reg.Pan_experiments.Te_exp.max_utilization
        && reg.Pan_experiments.Te_exp.p95_utilization
           <= reg.Pan_experiments.Te_exp.max_utilization +. 1e-9))
    r.Pan_experiments.Te_exp.regimes;
  (* the headline: MA multipath lowers peak utilization vs GRC single *)
  Alcotest.(check bool) "MA multipath lowers max utilization" true
    (ma.Pan_experiments.Te_exp.max_utilization
    < grc.Pan_experiments.Te_exp.max_utilization)

let suite =
  [
    Alcotest.test_case "add and load" `Quick test_add_and_load;
    Alcotest.test_case "add_path validation" `Quick test_add_path_validation;
    Alcotest.test_case "utilization and stats" `Quick
      test_utilization_and_stats;
    Alcotest.test_case "overloaded" `Quick test_overloaded;
    Alcotest.test_case "single vs split placement" `Quick
      test_place_single_and_split;
    Alcotest.test_case "split with few candidates" `Quick
      test_place_split_fewer_candidates_than_k;
    Alcotest.test_case "congestion-aware placement" `Quick
      test_place_congestion_aware;
    Alcotest.test_case "empty candidates" `Quick test_place_empty_candidates;
    Alcotest.test_case "TE experiment shape" `Quick test_te_experiment_shape;
  ]
