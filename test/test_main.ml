(* Test runner: one alcotest suite per library module. *)

let () =
  Alcotest.run "panagree"
    [
      ("numerics.rng", Test_rng.suite);
      ("numerics.distribution", Test_distribution.suite);
      ("numerics.stats", Test_stats.suite);
      ("numerics.integrate", Test_integrate.suite);
      ("numerics.optimize", Test_optimize.suite);
      ("topology.graph", Test_graph.suite);
      ("topology.caida", Test_caida.suite);
      ("topology.gen", Test_gen.suite);
      ("topology.geo", Test_geo.suite);
      ("topology.bandwidth", Test_bandwidth.suite);
      ("topology.compact", Test_compact.suite);
      ("topology.path", Test_path.suite);
      ("topology.path_enum", Test_path_enum.suite);
      ("routing.spp", Test_spp.suite);
      ("routing.bgp", Test_bgp.suite);
      ("routing.policy", Test_policy.suite);
      ("scion", Test_scion.suite);
      ("econ.basics", Test_econ_basics.suite);
      ("econ.agreement", Test_agreement.suite);
      ("econ.traffic_model", Test_traffic_model.suite);
      ("econ.nash_opt", Test_nash_opt.suite);
      ("econ.fast_kernel", Test_econ_fast.suite);
      ("bosco", Test_bosco.suite);
      ("bosco.strategy_fast", Test_strategy_fast.suite);
      ("experiments", Test_experiments.suite);
      ("routing.dispute", Test_dispute.suite);
      ("scion.failure_selection", Test_failure_selection.suite);
      ("econ.extension_enforcement", Test_extension_enforcement.suite);
      ("experiments.extensions", Test_extension_experiments.suite);
      ("experiments.adoption", Test_adoption.suite);
      ("scion.traffic", Test_traffic.suite);
      ("topology.metrics", Test_metrics_decomposition.suite);
      ("econ.billing_volume", Test_billing_volume.suite);
      ("bosco.protocol", Test_protocol.suite);
      ("cross.properties", Test_cross_properties.suite);
      ("experiments.fragility", Test_fragility.suite);
      ("scion.combinator_bounds", Test_combinator_bounds.suite);
      ("bosco.efficiency_mc", Test_efficiency_mc.suite);
      ("scion.wire", Test_wire.suite);
      ("routing.bgp_async", Test_bgp_async.suite);
      ("integration.full_pipeline", Test_full_pipeline.suite);
      ("runner.equivalence", Test_runner.suite);
      ("runner.supervise", Test_supervise.suite);
      ("runner.golden", Test_runner_golden.suite);
      ("obs.core", Test_obs.suite);
      ("obs.runner", Test_runner_obs.suite);
      ("obs.bench_json", Test_bench_json.suite);
      ("service.serve", Test_serve.suite);
      ("intent", Test_intent.suite);
      ("market", Test_market.suite);
    ]
