(* Tests for agreement-path extension (§III-B3) and flow-volume
   enforcement. *)

open Pan_topology
open Pan_econ

let approx = Alcotest.(check (float 1e-9))
let a = Gen.fig1_asn

(* ------------------------------------------------------------------ *)
(* Extension                                                           *)

let concluded_grants () =
  let _, s = Scenario_gen.fig1_scenario () in
  let r = Flow_volume_opt.optimize s in
  (s, r, Extension.of_flow_volume_result s r)

let test_grants_from_result () =
  let s, r, grants = concluded_grants () in
  Alcotest.(check bool) "concluded" true r.Flow_volume_opt.concluded;
  Alcotest.(check int) "one grant per demand"
    (List.length (Traffic_model.demands s))
    (List.length grants);
  List.iter2
    (fun (g : Extension.grant) choice ->
      approx "allowance = target" (Traffic_model.allowance choice)
        g.Extension.allowance;
      approx "nothing committed" 0.0 g.Extension.committed)
    grants r.Flow_volume_opt.choices

(* a one-sided scenario where every positive volume hurts the transit
   party and the beneficiary gains nothing (flat-rate customers): the
   flow-volume optimum is all-zero and no grants arise *)
let degenerate_scenario () =
  let g = Gen.fig1 () in
  let d = a 'D' and e = a 'E' and b = a 'B' and aa = a 'A' in
  let transit = Pricing.per_usage ~unit_price:1.0 in
  let business_d =
    Business.create ~asn:d
      ~provider_prices:[ (aa, transit) ]
      ~customer_prices:[ (Flows.stub d, Pricing.flat_rate ~fee:10.0) ]
      ()
  in
  let business_e =
    Business.create ~asn:e
      ~internal_cost:(Cost.linear ~rate:0.2)
      ~provider_prices:[ (b, transit) ]
      ~customer_prices:[ (Flows.stub e, transit) ]
      ()
  in
  Traffic_model.make_scenario_exn ~graph:g
    ~agreement:(Agreement.paper_example g)
    ~businesses:[ (d, business_d); (e, business_e) ]
    ~baseline:
      [
        (d, Flows.of_list [ (aa, 10.0); (Flows.stub d, 5.0) ]);
        (e, Flows.of_list [ (b, 10.0); (Flows.stub e, 5.0) ]);
      ]
    ~demands:
      Traffic_model.
        [
          {
            beneficiary = d;
            transit = e;
            dest = b;
            reroutable = 0.0;
            reroute_from = Some aa;
            attracted_max = 5.0;
          };
        ]

let test_grants_empty_when_not_concluded () =
  let s = degenerate_scenario () in
  let r = Flow_volume_opt.optimize s in
  Alcotest.(check bool) "not concluded" false r.Flow_volume_opt.concluded;
  Alcotest.(check int) "no grants" 0
    (List.length (Extension.of_flow_volume_result s r))

let test_commit_release () =
  let g =
    {
      Extension.holder = a 'D';
      segment = { Extension.via = a 'E'; dest = a 'B' };
      allowance = 10.0;
      committed = 0.0;
    }
  in
  approx "remaining" 10.0 (Extension.remaining g);
  (match Extension.commit g 4.0 with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      approx "committed" 4.0 g'.Extension.committed;
      approx "remaining after" 6.0 (Extension.remaining g');
      (match Extension.commit g' 7.0 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "over-commit accepted");
      let g'' = Extension.release g' 2.0 in
      approx "released" 2.0 g''.Extension.committed;
      let g3 = Extension.release g'' 100.0 in
      approx "release clamps" 0.0 g3.Extension.committed);
  match Extension.commit g (-1.0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative volume accepted"

let test_validate_secondary () =
  let graph = Gen.fig1 () in
  let grants =
    [
      {
        Extension.holder = a 'E';
        segment = { Extension.via = a 'D'; dest = a 'A' };
        allowance = 5.0;
        committed = 0.0;
      };
    ]
  in
  (* E re-offers segment E-D-A to its peer F (the paper's a' example) *)
  let good =
    {
      Extension.grantor = a 'E';
      beneficiary = a 'F';
      through = { Extension.via = a 'D'; dest = a 'A' };
      volume = 3.0;
    }
  in
  (match Extension.validate_secondary graph grants good with
  | Error e -> Alcotest.fail e
  | Ok updated ->
      approx "committed on the base grant" 3.0
        (List.hd updated).Extension.committed);
  Alcotest.(check (list int)) "extended path F-E-D-A"
    (List.map (fun c -> Asn.to_int (a c)) [ 'F'; 'E'; 'D'; 'A' ])
    (List.map Asn.to_int (Extension.extended_path good));
  (* over-volume fails *)
  (match
     Extension.validate_secondary graph grants
       { good with Extension.volume = 6.0 }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-volume secondary accepted");
  (* non-adjacent beneficiary fails: H is not a neighbor of E *)
  (match
     Extension.validate_secondary graph grants
       { good with Extension.beneficiary = a 'H' }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-adjacent beneficiary accepted");
  (* unknown segment fails *)
  match
    Extension.validate_secondary graph grants
      { good with Extension.through = { Extension.via = a 'D'; dest = a 'C' } }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unheld segment accepted"

let test_chained_stats_fig1 () =
  (* for D: y ∈ {C, E}.
     y=E: z ∈ peers(E)\{D} = {C, F};
       z=C: w ∈ providers(C) ∪ peers(C) = {A,B,D,E}; exclude x=D,
            y=E, neighbors(D)={A,C,E,H}: w ∈ {B} -> 1 path (D-E-C-B)
       z=F: w ∈ providers(F) ∪ peers(F) = {C, E}; exclude y=E and
            neighbors: C excluded (neighbor) -> 0
     y=C: z ∈ peers(C)\{D} = {A, B, E};
       z=A: w ∈ {B, C} minus neighbors/y: B stays -> 1 (D-C-A-B)
       z=B: w ∈ peers(B)={A,C} ∪ providers(B)={}: A not a neighbor of D?
            A IS D's provider -> excluded; C excluded -> 0
       z=E: w ∈ providers(E)={B} ∪ peers(E)={C,D,F}: B stays, C excluded,
            D=x excluded, F stays -> 2 (D-C-E-B, D-C-E-F)
     total = 4 paths, dests {B, F} *)
  let g = Gen.fig1 () in
  let count, dests = Extension.chained_stats g (a 'D') in
  Alcotest.(check int) "path count" 4 count;
  Alcotest.(check (list int)) "destinations"
    [ Asn.to_int (a 'B'); Asn.to_int (a 'F') ]
    (List.map Asn.to_int (Asn.Set.elements dests))

(* ------------------------------------------------------------------ *)
(* Enforcement                                                         *)

let key () =
  { Enforcement.beneficiary = a 'D'; via = a 'E'; dest = a 'B' }

let test_enforcement_metering () =
  let k = key () in
  let t = Enforcement.create ~targets:[ (k, 10.0) ] in
  approx "zero initially" 0.0 (Enforcement.usage t k);
  Enforcement.record t k 4.0;
  Enforcement.record t k 3.0;
  approx "accumulates" 7.0 (Enforcement.usage t k);
  Alcotest.(check int) "no violation yet" 0
    (List.length (Enforcement.current_violations t))

let test_enforcement_violation () =
  let k = key () in
  let t = Enforcement.create ~targets:[ (k, 10.0) ] in
  Enforcement.record t k 12.5;
  match Enforcement.current_violations t with
  | [ v ] ->
      approx "used" 12.5 v.Enforcement.used;
      approx "target" 10.0 v.Enforcement.target;
      approx "overage charge" 2.5
        (Enforcement.overage_charge (Pricing.per_usage ~unit_price:1.0) v)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_enforcement_unknown_segment_is_target_zero () =
  let t = Enforcement.create ~targets:[] in
  let k = key () in
  Enforcement.record t k 0.1;
  Alcotest.(check int) "any use violates" 1
    (List.length (Enforcement.current_violations t))

let test_enforcement_epochs () =
  let k = key () in
  let t = Enforcement.create ~targets:[ (k, 5.0) ] in
  Enforcement.record t k 9.0;
  let vs = Enforcement.close_epoch t in
  Alcotest.(check int) "violation reported" 1 (List.length vs);
  Alcotest.(check int) "epoch counted" 1 (Enforcement.epochs_closed t);
  approx "meters reset" 0.0 (Enforcement.usage t k);
  Alcotest.(check int) "clean epoch" 0
    (List.length (Enforcement.close_epoch t))

let test_enforcement_sorted_violations () =
  let k1 = key () in
  let k2 = { Enforcement.beneficiary = a 'E'; via = a 'D'; dest = a 'A' } in
  let t = Enforcement.create ~targets:[ (k1, 1.0); (k2, 1.0) ] in
  Enforcement.record t k1 2.0;
  Enforcement.record t k2 5.0;
  match Enforcement.current_violations t with
  | [ first; second ] ->
      Alcotest.(check bool) "worst overage first" true
        (first.Enforcement.used -. first.Enforcement.target
        >= second.Enforcement.used -. second.Enforcement.target)
  | _ -> Alcotest.fail "expected two violations"

let test_enforcement_of_flow_volume () =
  let _, s = Scenario_gen.fig1_scenario () in
  let r = Flow_volume_opt.optimize s in
  let t = Enforcement.of_flow_volume s r in
  (* staying within every target: no violations *)
  List.iter2
    (fun (d : Traffic_model.segment_demand) choice ->
      Enforcement.record t
        {
          Enforcement.beneficiary = d.Traffic_model.beneficiary;
          via = d.Traffic_model.transit;
          dest = d.Traffic_model.dest;
        }
        (0.9 *. Traffic_model.allowance choice))
    (Traffic_model.demands s) r.Flow_volume_opt.choices;
  Alcotest.(check int) "within targets" 0
    (List.length (Enforcement.close_epoch t))

let test_enforcement_validation () =
  (try
     ignore (Enforcement.create ~targets:[ (key (), -1.0) ]);
     Alcotest.fail "negative target accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Enforcement.create ~targets:[ (key (), 1.0); (key (), 2.0) ]);
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  let t = Enforcement.create ~targets:[] in
  try
    Enforcement.record t (key ()) (-1.0);
    Alcotest.fail "negative volume accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "grants from flow-volume result" `Quick
      test_grants_from_result;
    Alcotest.test_case "no grants without conclusion" `Quick
      test_grants_empty_when_not_concluded;
    Alcotest.test_case "commit / release" `Quick test_commit_release;
    Alcotest.test_case "validate secondary (a' example)" `Quick
      test_validate_secondary;
    Alcotest.test_case "chained stats on fig1 (hand-checked)" `Quick
      test_chained_stats_fig1;
    Alcotest.test_case "metering" `Quick test_enforcement_metering;
    Alcotest.test_case "violation and overage charge" `Quick
      test_enforcement_violation;
    Alcotest.test_case "unknown segment" `Quick
      test_enforcement_unknown_segment_is_target_zero;
    Alcotest.test_case "epochs" `Quick test_enforcement_epochs;
    Alcotest.test_case "violations sorted" `Quick
      test_enforcement_sorted_violations;
    Alcotest.test_case "of_flow_volume" `Quick test_enforcement_of_flow_volume;
    Alcotest.test_case "enforcement validation" `Quick
      test_enforcement_validation;
  ]
