(* Tests for interface numbering and the binary wire format. *)

open Pan_topology
open Pan_scion

let a = Gen.fig1_asn
let g = Gen.fig1 ()
let ifaces = Iface.build g

(* ------------------------------------------------------------------ *)
(* Iface                                                               *)

let test_iface_ids_dense_and_deterministic () =
  List.iter
    (fun x ->
      let deg = Graph.degree g x in
      Alcotest.(check int) "count = degree" deg (Iface.count ifaces x);
      (* ids are exactly 1..deg, each resolving back to a neighbor *)
      for i = 1 to deg do
        match Iface.neighbor ifaces x i with
        | Some n ->
            Alcotest.(check int) "forward/reverse agree" i
              (Iface.id ifaces x n)
        | None -> Alcotest.failf "dangling interface %d" i
      done;
      Alcotest.(check bool) "no extra interface" true
        (Iface.neighbor ifaces x (deg + 1) = None))
    (Graph.ases g)

let test_iface_unknown_raises () =
  try
    ignore (Iface.id ifaces (a 'H') (a 'I'));
    Alcotest.fail "non-adjacent pair accepted"
  with Not_found -> ()

let test_hops_with_interfaces () =
  let annotated =
    Iface.hops_with_interfaces ifaces [ a 'H'; a 'D'; a 'A' ]
  in
  match annotated with
  | [ (h, i1, e1); (d, i2, e2); (aa, i3, e3) ] ->
      Alcotest.(check bool) "ASes in order" true
        (Asn.equal h (a 'H') && Asn.equal d (a 'D') && Asn.equal aa (a 'A'));
      Alcotest.(check bool) "source has no ingress" true (i1 = None);
      Alcotest.(check bool) "source egress set" true (e1 <> None);
      Alcotest.(check bool) "transit has both" true (i2 <> None && e2 <> None);
      Alcotest.(check bool) "destination has no egress" true (e3 = None);
      Alcotest.(check bool) "destination ingress set" true (i3 <> None)
  | _ -> Alcotest.fail "wrong shape"

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let authz = Authz.create ~mas:[ (a 'D', a 'E') ] g

let segment path = Segment.make_exn authz (List.map a path)

let test_encode_size () =
  let seg = segment [ 'H'; 'D'; 'A' ] in
  let encoded = Wire.encode ifaces seg in
  Alcotest.(check int) "size formula" (Wire.encoded_size seg)
    (String.length encoded);
  Alcotest.(check int) "4 + 3*16" 52 (String.length encoded)

let test_round_trip () =
  List.iter
    (fun path ->
      let seg = segment path in
      let encoded = Wire.encode ifaces seg in
      match Wire.decode ifaces encoded with
      | Error e -> Alcotest.failf "decode failed: %a" (fun _ -> ignore) e
      | Ok decoded ->
          Alcotest.(check bool) "segments equal" true
            (Segment.equal seg decoded);
          Alcotest.(check bool) "MAC chain still verifies" true
            (Segment.verify decoded))
    [ [ 'H'; 'D'; 'A' ]; [ 'H'; 'D'; 'E'; 'B' ]; [ 'A'; 'B' ] ]

let test_decode_truncated () =
  let seg = segment [ 'H'; 'D'; 'A' ] in
  let encoded = Wire.encode ifaces seg in
  (match Wire.decode ifaces (String.sub encoded 0 2) with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "short header accepted");
  match Wire.decode ifaces (String.sub encoded 0 (String.length encoded - 1)) with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "short body accepted"

let test_decode_bad_version () =
  let seg = segment [ 'H'; 'D'; 'A' ] in
  let b = Bytes.of_string (Wire.encode ifaces seg) in
  Bytes.set_uint8 b 0 9;
  match Wire.decode ifaces (Bytes.to_string b) with
  | Error (Wire.Bad_version 9) -> ()
  | _ -> Alcotest.fail "bad version accepted"

let test_decode_bad_interface () =
  let seg = segment [ 'H'; 'D'; 'A' ] in
  let b = Bytes.of_string (Wire.encode ifaces seg) in
  (* corrupt the second hop's ingress interface *)
  Bytes.set_uint8 b (4 + 16 + 4) 0xff;
  Bytes.set_uint8 b (4 + 16 + 5) 0xff;
  match Wire.decode ifaces (Bytes.to_string b) with
  | Error (Wire.Bad_interface _) -> ()
  | _ -> Alcotest.fail "bad interface accepted"

let test_tampered_mac_fails_verification () =
  (* wire-level MAC corruption passes structural decoding but fails the
     MAC chain — the division of labor the header relies on *)
  let seg = segment [ 'H'; 'D'; 'E'; 'B' ] in
  let b = Bytes.of_string (Wire.encode ifaces seg) in
  let mac_off = 4 + 16 + 8 in
  Bytes.set_uint8 b mac_off (Bytes.get_uint8 b mac_off lxor 1);
  match Wire.decode ifaces (Bytes.to_string b) with
  | Error _ -> Alcotest.fail "structurally valid header rejected"
  | Ok decoded ->
      Alcotest.(check bool) "MAC chain broken" false (Segment.verify decoded)

let test_rewritten_path_detected () =
  (* an attacker rewrites the ASes of a valid header: either the
     interface consistency check or the MAC chain must catch it *)
  let seg = segment [ 'H'; 'D'; 'A' ] in
  let b = Bytes.of_string (Wire.encode ifaces seg) in
  (* overwrite hop 2's AS (A = 1) with B (= 2) *)
  Bytes.set_uint8 b (4 + 32 + 3) 2;
  match Wire.decode ifaces (Bytes.to_string b) with
  | Error _ -> ()
  | Ok decoded ->
      Alcotest.(check bool) "forgery fails MAC verification" false
        (Segment.verify decoded)

let test_wire_on_generated_topology () =
  let g' =
    Gen.graph
      (Gen.generate
         ~params:{ Gen.default_params with Gen.n_transit = 30; Gen.n_stub = 120 }
         ~seed:7 ())
  in
  let ifaces' = Iface.build g' in
  let authz' = Authz.create g' in
  let ps = Path_server.build authz' (Beacon.run authz') in
  let ases = Array.of_list (Graph.ases g') in
  let count = ref 0 in
  Array.iteri
    (fun i src ->
      if i mod 17 = 0 then
        let dst = ases.((i + 31) mod Array.length ases) in
        if not (Asn.equal src dst) then
          List.iter
            (fun seg ->
              incr count;
              match Wire.decode ifaces' (Wire.encode ifaces' seg) with
              | Ok decoded ->
                  Alcotest.(check bool) "round trip on real paths" true
                    (Segment.equal seg decoded && Segment.verify decoded)
              | Error _ -> Alcotest.fail "decode failed")
            (Combinator.end_to_end ~max_paths:5 ps ~src ~dst))
    ases;
  Alcotest.(check bool) "exercised some paths" true (!count > 10)

let suite =
  [
    Alcotest.test_case "iface ids dense + deterministic" `Quick
      test_iface_ids_dense_and_deterministic;
    Alcotest.test_case "iface unknown raises" `Quick test_iface_unknown_raises;
    Alcotest.test_case "hops with interfaces" `Quick
      test_hops_with_interfaces;
    Alcotest.test_case "encode size" `Quick test_encode_size;
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "decode truncated" `Quick test_decode_truncated;
    Alcotest.test_case "decode bad version" `Quick test_decode_bad_version;
    Alcotest.test_case "decode bad interface" `Quick
      test_decode_bad_interface;
    Alcotest.test_case "tampered MAC detected" `Quick
      test_tampered_mac_fails_verification;
    Alcotest.test_case "rewritten path detected" `Quick
      test_rewritten_path_detected;
    Alcotest.test_case "wire on generated topology" `Quick
      test_wire_on_generated_topology;
  ]
