(* Golden-output regression tests for the experiments ported onto the
   parallel runner, at small scale.  The topology experiments (Diversity,
   Geodistance, Bandwidth) only use randomness for sequential AS sampling,
   so their goldens are the pre-port figures and guard the port itself.
   Fig2's golden is the chunk-seeded value introduced together with the
   runner (the old value depended on one generator threaded through all
   trials); it pins today's outputs against future regressions, and is
   asserted on both the sequential path and a 4-domain pool. *)

open Pan_runner
open Pan_topology
open Pan_experiments

let graph =
  lazy
    (let params =
       { Gen.default_params with Gen.n_transit = 30; Gen.n_stub = 100 }
     in
     Gen.graph (Gen.generate ~params ~seed:42 ()))

let feq = Alcotest.(check (float 1e-9))
let ieq = Alcotest.(check int)

let sum_counts (r : Pair_analysis.result) =
  List.fold_left
    (fun (a, b, c, d) (pc : Pair_analysis.pair_counts) ->
      ( a + pc.Pair_analysis.below_max,
        b + pc.Pair_analysis.below_median,
        c + pc.Pair_analysis.below_min,
        d + pc.Pair_analysis.ma_paths ))
    (0, 0, 0, 0) r.Pair_analysis.pairs

let check_pair_result name golden (r : Pair_analysis.result) =
  let g_pairs, g_max, g_median, g_min, g_ma, g_impr_n, g_impr_sum = golden in
  let below_max, below_median, below_min, ma_paths = sum_counts r in
  ieq (name ^ ": pairs") g_pairs (List.length r.Pair_analysis.pairs);
  ieq (name ^ ": below max") g_max below_max;
  ieq (name ^ ": below median") g_median below_median;
  ieq (name ^ ": below min") g_min below_min;
  ieq (name ^ ": MA paths") g_ma ma_paths;
  ieq (name ^ ": improving pairs") g_impr_n
    (List.length r.Pair_analysis.improvements);
  feq (name ^ ": improvement sum") g_impr_sum
    (List.fold_left ( +. ) 0.0 r.Pair_analysis.improvements)

let test_diversity () =
  let r = Diversity.analyze ~sample_size:20 ~seed:7 (Lazy.force graph) in
  let agg = Diversity.aggregate_stats r in
  ieq "sampled ASes" 20 (List.length r.Diversity.sampled);
  feq "avg additional paths" 472.25 agg.Diversity.avg_additional_paths;
  ieq "max additional paths" 1568 agg.Diversity.max_additional_paths;
  feq "avg additional destinations" 32.850000000000001
    agg.Diversity.avg_additional_destinations;
  ieq "max additional destinations" 68
    agg.Diversity.max_additional_destinations;
  let total field =
    List.fold_left
      (fun acc pa -> List.fold_left (fun a (_, n) -> a + n) acc (field pa))
      0 r.Diversity.sampled
  in
  ieq "total paths over scenarios" 43830 (total (fun pa -> pa.Diversity.paths));
  ieq "total destinations over scenarios" 14332
    (total (fun pa -> pa.Diversity.destinations))

let test_geodistance () =
  (* Golden recomputed when the link folds (and hence the geo jitter RNG
     stream) became insertion-order independent; pair/MA-path totals are
     unchanged because path enumeration is geo-independent. *)
  check_pair_result "geodistance"
    (1465, 2134, 1879, 1456, 5536, 631, 102.151275271114)
    (Geodistance.run ~sample_size:15 ~seed:7 (Lazy.force graph))

let test_bandwidth () =
  check_pair_result "bandwidth"
    (1465, 2859, 2505, 1841, 5536, 768, 336.61026221092635)
    (Bandwidth_exp.run ~sample_size:15 ~seed:7 (Lazy.force graph))

(* (label, w, min_pod, mean_pod, mean_equilibrium_choices) *)
let fig2_golden =
  [
    ("U(1)", 2, 0.25323037337940635, 0.61235150267950655, 1.7);
    ("U(1)", 5, 0.20100004561263318, 0.30766201232541091, 2.2999999999999998);
    ("U(2)", 2, 0.24411001701014856, 0.44760252187636551, 1.8999999999999999);
    ("U(2)", 5, 0.13356789656239909, 0.23191017158911881, 2.6499999999999999);
  ]

let check_fig2 tag series =
  let points =
    List.concat_map
      (fun (s : Fig2_pod.series) ->
        List.map (fun p -> (s.Fig2_pod.label, p)) s.Fig2_pod.points)
      series
  in
  List.iter2
    (fun (g_label, g_w, g_min, g_mean, g_eq) ((label, p) : _ * Fig2_pod.point) ->
      let name = Printf.sprintf "fig2 %s %s w=%d" tag g_label g_w in
      Alcotest.(check string) (name ^ ": label") g_label label;
      ieq (name ^ ": w") g_w p.Fig2_pod.w;
      feq (name ^ ": min PoD") g_min p.Fig2_pod.min_pod;
      feq (name ^ ": mean PoD") g_mean p.Fig2_pod.mean_pod;
      feq (name ^ ": mean eq choices") g_eq p.Fig2_pod.mean_equilibrium_choices;
      Alcotest.(check bool) (name ^ ": converged") true p.Fig2_pod.all_converged)
    fig2_golden points

let test_fig2_sequential () =
  check_fig2 "seq" (Fig2_pod.run_both ~ws:[ 2; 5 ] ~trials:10 ~seed:42 ())

let test_fig2_parallel () =
  Pool.with_pool ~domains:4 (fun pool ->
      check_fig2 "par"
        (Fig2_pod.run_both ~pool ~ws:[ 2; 5 ] ~trials:10 ~seed:42 ()))

let suite =
  [
    Alcotest.test_case "Diversity.analyze golden" `Quick test_diversity;
    Alcotest.test_case "Geodistance.run golden" `Quick test_geodistance;
    Alcotest.test_case "Bandwidth_exp.run golden" `Quick test_bandwidth;
    Alcotest.test_case "Fig2_pod.run_both golden (sequential)" `Quick
      test_fig2_sequential;
    Alcotest.test_case "Fig2_pod.run_both golden (4-domain pool)" `Quick
      test_fig2_parallel;
  ]
