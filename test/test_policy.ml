(* Tests for deriving SPP instances from topologies with GRC policies. *)

open Pan_topology
open Pan_routing

let a = Gen.fig1_asn
let g = Gen.fig1 ()

let test_all_simple_routes () =
  let routes = Policy.all_simple_routes ~max_len:3 g ~dest:(a 'A') (a 'H') in
  (* H -> D -> A is the only route within 3 ASes *)
  Alcotest.(check int) "one route" 1 (List.length routes);
  Alcotest.(check (list int)) "the route"
    (List.map (fun c -> Asn.to_int (a c)) [ 'H'; 'D'; 'A' ])
    (List.map Asn.to_int (List.hd routes))

let test_all_simple_routes_dest_itself () =
  Alcotest.(check int) "trivial route" 1
    (List.length (Policy.all_simple_routes g ~dest:(a 'A') (a 'A')))

let test_routes_are_simple_and_terminate () =
  let routes = Policy.all_simple_routes ~max_len:5 g ~dest:(a 'A') (a 'G') in
  List.iter
    (fun r ->
      let rec distinct = function
        | [] -> true
        | x :: rest -> (not (List.exists (Asn.equal x) rest)) && distinct rest
      in
      Alcotest.(check bool) "simple" true (distinct r);
      Alcotest.(check bool) "ends at dest" true
        (Asn.equal (List.nth r (List.length r - 1)) (a 'A'));
      Alcotest.(check bool) "length bound" true (List.length r <= 5))
    routes

let test_grc_rank_ordering () =
  (* customer routes beat peer routes beat provider routes *)
  let rank route = Policy.grc_rank g route in
  let via_customer = [ a 'D'; a 'H' ] in
  let via_peer = [ a 'D'; a 'E'; a 'I' ] in
  let via_provider = [ a 'D'; a 'A'; a 'B' ] in
  Alcotest.(check bool) "customer < peer" true
    (rank via_customer < rank via_peer);
  Alcotest.(check bool) "peer < provider" true
    (rank via_peer < rank via_provider)

let test_grc_instance_permits_only_valley_free () =
  let i = Policy.grc_instance ~max_len:4 g ~dest:(a 'A') in
  List.iter
    (fun node ->
      List.iter
        (fun route ->
          Alcotest.(check bool) "permitted implies valley-free" true
            (Path.is_valley_free g (Path.make_exn g route)))
        (Spp.permitted i node))
    (Spp.nodes i)

let test_grc_instance_converges_deterministically () =
  (* the Gao-Rexford theorem: GRC policies converge, and on this topology
     the fixpoint is schedule-independent *)
  let i = Policy.grc_instance ~max_len:4 g ~dest:(a 'A') in
  (match Bgp.run ~schedule:Bgp.Round_robin i with
  | Bgp.Converged _ -> ()
  | _ -> Alcotest.fail "GRC instance must converge");
  Alcotest.(check bool) "deterministic" true
    (Bgp.converges_deterministically ~seed:9 i)

let test_grc_instance_every_dest () =
  (* GRC instances converge for every possible destination of Fig. 1 *)
  List.iter
    (fun dest ->
      let i = Policy.grc_instance ~max_len:4 g ~dest in
      match Bgp.run ~schedule:Bgp.Round_robin i with
      | Bgp.Converged _ -> ()
      | _ ->
          Alcotest.failf "no convergence for destination AS%d"
            (Asn.to_int dest))
    (Graph.ases g)

let test_custom_instance_recreates_disagree () =
  (* permit the GRC-violating peer detour and prefer it: DISAGREE *)
  let d = a 'D' and e = a 'E' and b = a 'B' and dest = a 'A' in
  let permit node route =
    match route with
    | _ when Path.is_valley_free g (Path.make_exn g route) -> true
    | [ n1; n2; n3; n4 ]
      when Asn.equal n1 d && Asn.equal n2 e && Asn.equal n3 b
           && Asn.equal n4 dest ->
        Asn.equal node d
    | [ n1; n2; n3 ]
      when Asn.equal n1 e && Asn.equal n2 d && Asn.equal n3 dest ->
        Asn.equal node e
    | _ -> false
  in
  let prefer node r1 r2 =
    (* D and E prefer peer-learned routes; everyone else follows GRC *)
    let peer_first r =
      match r with
      | _ :: next :: _ when Graph.relationship g node next = Some Graph.Peer ->
          0
      | _ -> 1
    in
    match compare (peer_first r1) (peer_first r2) with
    | 0 -> compare (Policy.grc_rank g r1) (Policy.grc_rank g r2)
    | c -> c
  in
  let i = Policy.custom_instance ~max_len:4 g ~dest ~permit ~prefer in
  (* both D and E should now have their GRC-violating route on top *)
  Alcotest.(check bool) "D prefers the detour" true
    (Spp.rank i d [ d; e; b; dest ] = Some 0);
  Alcotest.(check bool) "non-deterministic like DISAGREE" false
    (Bgp.converges_deterministically ~seed:4 i)

let suite =
  [
    Alcotest.test_case "all_simple_routes" `Quick test_all_simple_routes;
    Alcotest.test_case "route from the destination itself" `Quick
      test_all_simple_routes_dest_itself;
    Alcotest.test_case "routes simple, bounded, terminated" `Quick
      test_routes_are_simple_and_terminate;
    Alcotest.test_case "grc_rank ordering" `Quick test_grc_rank_ordering;
    Alcotest.test_case "grc_instance permits only valley-free" `Quick
      test_grc_instance_permits_only_valley_free;
    Alcotest.test_case "grc_instance converges deterministically" `Quick
      test_grc_instance_converges_deterministically;
    Alcotest.test_case "grc_instance converges for every destination" `Quick
      test_grc_instance_every_dest;
    Alcotest.test_case "custom_instance recreates DISAGREE" `Quick
      test_custom_instance_recreates_disagree;
  ]
