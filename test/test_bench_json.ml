(* Schema tests for the machine-readable bench snapshots
   (BENCH_<part>.json): canonical emission round-trips through the
   parser, value-level validation rejects malformed snapshots with
   specific diagnostics, and the fingerprint convention is stable across
   worker counts (the property CI asserts on the emitted files). *)

open Pan_obs
module B = Bench_snap

let snap =
  B.make ~part:"econ" ~wall_s:1.25 ~throughput:48.0 ~speedup:2.125
    ~fingerprint:(B.fingerprint_of_string "payload") ~jobs:4
    ~meta:[ ("scenarios", "24"); ("b", "two") ]
    ()

let index_of_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
  in
  go 0

let test_emit_canonical () =
  (* sorted keys, sorted meta, trailing newline: equal snapshots are
     equal bytes *)
  let json = B.to_json snap in
  Alcotest.(check string) "stable bytes" json (B.to_json snap);
  Alcotest.(check bool) "keys sorted" true
    (index_of_sub json "\"fingerprint\"" < index_of_sub json "\"jobs\""
    && index_of_sub json "\"jobs\"" < index_of_sub json "\"meta\""
    && index_of_sub json "\"speedup\"" < index_of_sub json "\"wall_s\"");
  Alcotest.(check bool) "meta sorted" true
    (index_of_sub json "\"b\"" < index_of_sub json "\"scenarios\"")

let test_roundtrip () =
  match B.of_string (B.to_json snap) with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok t ->
      Alcotest.(check string) "part" snap.B.part t.B.part;
      Alcotest.(check (float 0.0)) "wall_s" snap.B.wall_s t.B.wall_s;
      Alcotest.(check (float 0.0)) "throughput" snap.B.throughput
        t.B.throughput;
      Alcotest.(check (float 0.0)) "speedup" snap.B.speedup t.B.speedup;
      Alcotest.(check string) "fingerprint" snap.B.fingerprint t.B.fingerprint;
      Alcotest.(check int) "jobs" snap.B.jobs t.B.jobs;
      Alcotest.(check (list (pair string string)))
        "meta" (List.sort compare snap.B.meta)
        (List.sort compare t.B.meta)

let test_schema_negatives () =
  let expect_err name s =
    match B.of_string s with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  expect_err "not json" "}{";
  expect_err "not an object" "[1, 2]";
  expect_err "missing part"
    {|{"fingerprint": "0123", "jobs": 1, "speedup": 1, "throughput": 1, "wall_s": 1}|};
  expect_err "missing fingerprint"
    {|{"part": "econ", "jobs": 1, "speedup": 1, "throughput": 1, "wall_s": 1}|};
  expect_err "wrong type"
    {|{"part": 3, "fingerprint": "x", "jobs": 1, "speedup": 1, "throughput": 1, "wall_s": 1}|};
  (* value-level validation *)
  let valid_fp = B.fingerprint_of_string "x" in
  let mk ?(part = "p") ?(fp = valid_fp) ?(wall = 1.0) ?(jobs = 1) () =
    Printf.sprintf
      {|{"fingerprint": "%s", "jobs": %d, "part": "%s", "speedup": 1, "throughput": 1, "wall_s": %g}|}
      fp jobs part wall
  in
  (match B.of_string (mk ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "baseline should validate: %s" e);
  expect_err "short fingerprint" (mk ~fp:"abc123" ());
  expect_err "non-hex fingerprint"
    (mk ~fp:(String.make 32 'z') ());
  expect_err "bad part name" (mk ~part:"no spaces" ());
  expect_err "negative wall_s" (mk ~wall:(-1.0) ());
  expect_err "jobs < 1" (mk ~jobs:0 ())

let test_make_rejects_bad_part () =
  Alcotest.check_raises "bad part"
    (Invalid_argument "Bench_snap.make: part must be non-empty [A-Za-z0-9_-]")
    (fun () ->
      ignore
        (B.make ~part:"a/b" ~wall_s:1.0 ~throughput:1.0 ~speedup:1.0
           ~fingerprint:(B.fingerprint_of_string "x") ~jobs:1 ()))

let test_write_read_file () =
  let dir = Filename.temp_file "panagree_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let path = B.write ~dir snap in
      Alcotest.(check string) "path" (Filename.concat dir "BENCH_econ.json")
        path;
      match B.read path with
      | Error e -> Alcotest.fail ("read failed: " ^ e)
      | Ok t -> Alcotest.(check string) "read part" "econ" t.B.part);
  match B.read "/nonexistent/BENCH_x.json" with
  | Ok _ -> Alcotest.fail "read of missing file succeeded"
  | Error _ -> ()

(* The fingerprint the econ bench part snapshots: a job-count-invariant
   render of the Methods_exp report.  Running in-process at -j1 and -j4
   must agree bit-for-bit (chunk-deterministic map_reduce), which is
   exactly what CI checks on the emitted BENCH_econ.json. *)
let report_fingerprint (r : Pan_experiments.Methods_exp.report) =
  B.fingerprint_of_string
    (Printf.sprintf "%d,%d,%d,%d,%.17g,%.17g"
       r.Pan_experiments.Methods_exp.scenarios r.Pan_experiments.Methods_exp.cash_concluded
       r.Pan_experiments.Methods_exp.flow_volume_concluded
       r.Pan_experiments.Methods_exp.cash_only
       r.Pan_experiments.Methods_exp.mean_cash_joint
       r.Pan_experiments.Methods_exp.mean_flow_volume_joint)

let test_fingerprint_jobs_invariant () =
  let run pool = Pan_experiments.Methods_exp.run ?pool ~scenarios:8 ~seed:5 () in
  let fp_j1 = report_fingerprint (run None) in
  let fp_j4 =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        report_fingerprint (run (Some pool)))
  in
  Alcotest.(check string) "fingerprints agree across -j1/-j4" fp_j1 fp_j4

let suite =
  [
    Alcotest.test_case "canonical emission" `Quick test_emit_canonical;
    Alcotest.test_case "round-trip through parser" `Quick test_roundtrip;
    Alcotest.test_case "schema negatives rejected" `Quick
      test_schema_negatives;
    Alcotest.test_case "make rejects bad part names" `Quick
      test_make_rejects_bad_part;
    Alcotest.test_case "write/read BENCH file" `Quick test_write_read_file;
    Alcotest.test_case "fingerprint invariant across jobs" `Slow
      test_fingerprint_jobs_invariant;
  ]
