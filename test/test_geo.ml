(* Tests for the geolocation substrate. *)

open Pan_topology

let loose = Alcotest.(check (float 1.0))

let test_haversine_known_points () =
  (* London -> Paris is roughly 344 km *)
  let london = { Geo.lat = 51.5074; lon = -0.1278 } in
  let paris = { Geo.lat = 48.8566; lon = 2.3522 } in
  let d = Geo.distance_km london paris in
  if Float.abs (d -. 344.0) > 10.0 then Alcotest.failf "London-Paris %f km" d

let test_haversine_properties () =
  let p = { Geo.lat = 10.0; lon = 20.0 } in
  let q = { Geo.lat = -30.0; lon = 50.0 } in
  loose "self distance" 0.0 (Geo.distance_km p p);
  Alcotest.(check (float 1e-6)) "symmetry" (Geo.distance_km p q)
    (Geo.distance_km q p);
  Alcotest.(check bool) "positive" true (Geo.distance_km p q > 0.0)

let test_antipodal_bound () =
  let p = { Geo.lat = 0.0; lon = 0.0 } in
  let q = { Geo.lat = 0.0; lon = 180.0 } in
  let d = Geo.distance_km p q in
  (* half the Earth's circumference, ~20015 km *)
  if Float.abs (d -. 20015.0) > 30.0 then Alcotest.failf "antipodal %f" d

let graph_and_geo () =
  let gen =
    Gen.generate
      ~params:{ Gen.default_params with Gen.n_transit = 30; Gen.n_stub = 100 }
      ~seed:5 ()
  in
  let g = Gen.graph gen in
  (g, Geo.generate ~seed:7 g)

let test_every_as_placed () =
  let g, geo = graph_and_geo () in
  List.iter
    (fun x ->
      let p = Geo.as_location geo x in
      if p.Geo.lat < -90.0 || p.Geo.lat > 90.0 then Alcotest.fail "bad lat";
      if p.Geo.lon < -180.0 || p.Geo.lon > 180.0 then Alcotest.fail "bad lon")
    (Graph.ases g)

let test_every_link_placed () =
  let g, geo = graph_and_geo () in
  Graph.fold_peering_links
    (fun x y () -> ignore (Geo.link_location geo x y))
    g ();
  Graph.fold_provider_customer_links
    (fun ~provider ~customer () ->
      ignore (Geo.link_location geo provider customer))
    g ()

let test_link_location_symmetric () =
  let g, geo = graph_and_geo () in
  Graph.fold_peering_links
    (fun x y () ->
      let p = Geo.link_location geo x y and q = Geo.link_location geo y x in
      Alcotest.(check (float 1e-9)) "lat" p.Geo.lat q.Geo.lat;
      Alcotest.(check (float 1e-9)) "lon" p.Geo.lon q.Geo.lon)
    g ()

let test_unknown_link_raises () =
  let _, geo = graph_and_geo () in
  try
    ignore (Geo.link_location geo (Asn.of_int 9999) (Asn.of_int 9998));
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_determinism () =
  let gen =
    Gen.generate
      ~params:{ Gen.default_params with Gen.n_transit = 20; Gen.n_stub = 50 }
      ~seed:5 ()
  in
  let g = Gen.graph gen in
  let geo1 = Geo.generate ~seed:7 g and geo2 = Geo.generate ~seed:7 g in
  List.iter
    (fun x ->
      let p = Geo.as_location geo1 x and q = Geo.as_location geo2 x in
      Alcotest.(check (float 0.0)) "lat deterministic" p.Geo.lat q.Geo.lat)
    (Graph.ases g)

let test_path3_geodistance_triangle () =
  let g, geo = graph_and_geo () in
  (* find some 3-AS path *)
  let found = ref None in
  List.iter
    (fun x ->
      Asn.Set.iter
        (fun y ->
          Asn.Set.iter
            (fun z ->
              if !found = None && not (Asn.equal z x) then
                found := Some (x, y, z))
            (Graph.neighbors g y))
        (Graph.neighbors g x))
    (Graph.ases g);
  match !found with
  | None -> Alcotest.fail "no length-3 path in test graph"
  | Some (x, y, z) ->
      let d = Geo.path3_geodistance geo x y z in
      Alcotest.(check bool) "non-negative" true (d >= 0.0);
      (* the decomposed distance is at least the direct distance between
         the endpoints' link attachment points (triangle inequality) *)
      let direct =
        Geo.distance_km (Geo.as_location geo x) (Geo.as_location geo z)
      in
      let slack = 1e-6 in
      (* d(x,l1)+d(l1,l2)+d(l2,z) >= d(x,z) *)
      Alcotest.(check bool) "triangle inequality" true (d +. slack >= direct)

let test_of_locations () =
  let g = Gen.fig1 () in
  let locations =
    List.fold_left
      (fun acc x ->
        Asn.Map.add x
          { Geo.lat = float_of_int (Asn.to_int x); lon = 0.0 }
          acc)
      Asn.Map.empty (Graph.ases g)
  in
  let geo = Geo.of_locations g locations in
  let a = Gen.fig1_asn 'A' in
  Alcotest.(check (float 1e-9)) "supplied location" 1.0
    (Geo.as_location geo a).Geo.lat;
  (* link location defaults to the midpoint *)
  let d = Gen.fig1_asn 'D' in
  let link = Geo.link_location geo a d in
  Alcotest.(check (float 1e-9)) "midpoint" 2.5 link.Geo.lat

let test_of_locations_missing_raises () =
  let g = Gen.fig1 () in
  try
    ignore (Geo.of_locations g Asn.Map.empty);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "haversine known points" `Quick
      test_haversine_known_points;
    Alcotest.test_case "haversine properties" `Quick test_haversine_properties;
    Alcotest.test_case "antipodal bound" `Quick test_antipodal_bound;
    Alcotest.test_case "every AS placed" `Quick test_every_as_placed;
    Alcotest.test_case "every link placed" `Quick test_every_link_placed;
    Alcotest.test_case "link location symmetric" `Quick
      test_link_location_symmetric;
    Alcotest.test_case "unknown link raises" `Quick test_unknown_link_raises;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "path3 geodistance" `Quick
      test_path3_geodistance_triangle;
    Alcotest.test_case "of_locations" `Quick test_of_locations;
    Alcotest.test_case "of_locations missing raises" `Quick
      test_of_locations_missing_raises;
  ]
