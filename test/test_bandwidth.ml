(* Tests for the degree-gravity bandwidth model. *)

open Pan_topology

let asn = Asn.of_int

(* star: 1 is provider of 2,3,4; 2 peers 3 *)
let star () =
  let g = Graph.create () in
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 4);
  Graph.add_peering g (asn 2) (asn 3);
  g

let test_link_capacity () =
  let g = star () in
  let bw = Bandwidth.degree_gravity g in
  (* deg(1)=3, deg(2)=2, deg(3)=2, deg(4)=1 *)
  Alcotest.(check (float 1e-9)) "1-2" 6.0 (Bandwidth.link_capacity bw (asn 1) (asn 2));
  Alcotest.(check (float 1e-9)) "1-4" 3.0 (Bandwidth.link_capacity bw (asn 1) (asn 4));
  Alcotest.(check (float 1e-9)) "2-3" 4.0 (Bandwidth.link_capacity bw (asn 2) (asn 3))

let test_capacity_symmetric () =
  let g = star () in
  let bw = Bandwidth.degree_gravity g in
  Alcotest.(check (float 1e-9)) "symmetric"
    (Bandwidth.link_capacity bw (asn 1) (asn 2))
    (Bandwidth.link_capacity bw (asn 2) (asn 1))

let test_coefficient () =
  let g = star () in
  let bw = Bandwidth.degree_gravity ~coefficient:2.5 g in
  Alcotest.(check (float 1e-9)) "scaled" 15.0
    (Bandwidth.link_capacity bw (asn 1) (asn 2))

let test_invalid_coefficient () =
  let g = star () in
  try
    ignore (Bandwidth.degree_gravity ~coefficient:0.0 g);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_unconnected_raises () =
  let g = star () in
  let bw = Bandwidth.degree_gravity g in
  try
    ignore (Bandwidth.link_capacity bw (asn 2) (asn 4));
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_path3_bottleneck () =
  let g = star () in
  let bw = Bandwidth.degree_gravity g in
  (* 4 - 1 - 2: min(3, 6) = 3 *)
  Alcotest.(check (float 1e-9)) "bottleneck" 3.0
    (Bandwidth.path3_bandwidth bw (asn 4) (asn 1) (asn 2))

let test_path_bandwidth () =
  let g = star () in
  let bw = Bandwidth.degree_gravity g in
  Alcotest.(check (float 1e-9)) "3-hop path" 3.0
    (Bandwidth.path_bandwidth bw [ asn 4; asn 1; asn 2; asn 3 ])

let test_path_too_short () =
  let g = star () in
  let bw = Bandwidth.degree_gravity g in
  try
    ignore (Bandwidth.path_bandwidth bw [ asn 1 ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "link capacity" `Quick test_link_capacity;
    Alcotest.test_case "capacity symmetric" `Quick test_capacity_symmetric;
    Alcotest.test_case "coefficient" `Quick test_coefficient;
    Alcotest.test_case "invalid coefficient" `Quick test_invalid_coefficient;
    Alcotest.test_case "unconnected raises" `Quick test_unconnected_raises;
    Alcotest.test_case "path3 bottleneck" `Quick test_path3_bottleneck;
    Alcotest.test_case "path bandwidth" `Quick test_path_bandwidth;
    Alcotest.test_case "path too short" `Quick test_path_too_short;
  ]
