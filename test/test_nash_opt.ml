(* Tests for Nash bargaining (Eq. 11) and the two agreement-optimization
   methods (Eq. 9 and Eq. 10). *)

open Pan_numerics
open Pan_econ

let approx = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Nash                                                                *)

let test_product () =
  approx "both positive" 6.0 (Nash.product 2.0 3.0);
  approx "one negative" 0.0 (Nash.product (-1.0) 3.0);
  approx "zero" 0.0 (Nash.product 0.0 3.0)

let test_transfer_closed_form () =
  (* Eq. 11: Π = u_X − (u_X + u_Y)/2 *)
  match Nash.transfer ~u_x:10.0 ~u_y:2.0 with
  | None -> Alcotest.fail "viable agreement rejected"
  | Some pi -> approx "transfer" 4.0 pi

let test_transfer_negative_direction () =
  (* y benefits more: x receives money (negative transfer) *)
  match Nash.transfer ~u_x:1.0 ~u_y:5.0 with
  | None -> Alcotest.fail "viable"
  | Some pi -> approx "negative transfer" (-2.0) pi

let test_transfer_unviable () =
  Alcotest.(check bool) "negative surplus" true
    (Nash.transfer ~u_x:1.0 ~u_y:(-3.0) = None)

let test_after_transfer_equal_split () =
  match Nash.after_transfer ~u_x:10.0 ~u_y:(-4.0) with
  | None -> Alcotest.fail "viable (surplus 6)"
  | Some (ax, ay) ->
      approx "equal split x" 3.0 ax;
      approx "equal split y" 3.0 ay

let qcheck_after_transfer_properties =
  QCheck.Test.make ~count:300 ~name:"Nash transfer: equal split, budget balance"
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (ux, uy) ->
      match Nash.after_transfer ~u_x:ux ~u_y:uy with
      | None -> ux +. uy < 0.0
      | Some (ax, ay) ->
          Float.abs (ax -. ay) < 1e-9
          && Float.abs (ax +. ay -. (ux +. uy)) < 1e-9
          && ax >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Cash compensation (Eq. 10)                                          *)

let test_cash_on_fig1 () =
  let _, s = Scenario_gen.fig1_scenario () in
  let r = Cash_opt.optimize s in
  Alcotest.(check bool) "concluded" true r.Cash_opt.concluded;
  (* after the transfer both parties hold half the surplus *)
  approx "equal after-utilities" r.Cash_opt.u_x_after r.Cash_opt.u_y_after;
  approx "budget balance"
    (r.Cash_opt.u_x +. r.Cash_opt.u_y)
    (r.Cash_opt.u_x_after +. r.Cash_opt.u_y_after);
  Alcotest.(check bool) "loser compensated" true
    (r.Cash_opt.u_y_after >= 0.0)

let test_cash_not_concluded_on_negative_surplus () =
  (* make transit ruinously expensive so the joint utility is negative *)
  let _, s =
    Scenario_gen.fig1_scenario ~transit_price:10.0 ~stub_price:0.1 ()
  in
  let r = Cash_opt.optimize s in
  Alcotest.(check bool) "not concluded" false r.Cash_opt.concluded;
  approx "no transfer" 0.0 r.Cash_opt.transfer

(* ------------------------------------------------------------------ *)
(* Flow-volume targets (Eq. 9)                                         *)

let test_flow_volume_on_fig1 () =
  let _, s = Scenario_gen.fig1_scenario () in
  let r = Flow_volume_opt.optimize s in
  Alcotest.(check bool) "concluded" true r.Flow_volume_opt.concluded;
  Alcotest.(check bool) "both non-negative" true
    (r.Flow_volume_opt.u_x >= -1e-9 && r.Flow_volume_opt.u_y >= -1e-9);
  Alcotest.(check bool) "positive Nash product" true
    (r.Flow_volume_opt.nash > 0.0);
  (* Pareto/fairness sanity: the optimizer should do at least as well as
     simply using everything (which leaves u_E negative => product 0) *)
  let full_ux, full_uy =
    Traffic_model.utilities_exn s (Traffic_model.full_choice s)
  in
  Alcotest.(check bool) "beats full usage" true
    (r.Flow_volume_opt.nash >= Nash.product full_ux full_uy)

let test_flow_volume_respects_bounds () =
  let _, s = Scenario_gen.fig1_scenario () in
  let r = Flow_volume_opt.optimize s in
  List.iter2
    (fun (d : Traffic_model.segment_demand) (c : Traffic_model.choice) ->
      Alcotest.(check bool) "reroute within bound" true
        (c.Traffic_model.reroute >= -1e-9
        && c.Traffic_model.reroute <= d.Traffic_model.reroutable +. 1e-6);
      Alcotest.(check bool) "attracted within bound" true
        (c.Traffic_model.attracted >= -1e-9
        && c.Traffic_model.attracted <= d.Traffic_model.attracted_max +. 1e-6))
    (Traffic_model.demands s) r.Flow_volume_opt.choices

let test_flow_volume_degenerates_when_one_sided () =
  (* only E-transit demands with nothing in return and superlinear costs:
     every positive volume hurts E, so targets must collapse to ~0 and the
     agreement is not concluded (§IV-C) *)
  let g = Pan_topology.Gen.fig1 () in
  let d = Pan_topology.Gen.fig1_asn 'D'
  and e = Pan_topology.Gen.fig1_asn 'E'
  and b = Pan_topology.Gen.fig1_asn 'B'
  and aa = Pan_topology.Gen.fig1_asn 'A' in
  let agreement = Agreement.paper_example g in
  let transit = Pricing.per_usage ~unit_price:1.0 in
  let business_d =
    Business.create ~asn:d
      ~provider_prices:[ (aa, transit) ]
      ~customer_prices:[ (Flows.stub d, Pricing.flat_rate ~fee:10.0) ]
      ()
    (* flat-rate customers: attracted traffic earns D nothing *)
  in
  let business_e =
    Business.create ~asn:e
      ~internal_cost:(Cost.linear ~rate:0.2)
      ~provider_prices:[ (b, transit) ]
      ~customer_prices:[ (Flows.stub e, transit) ]
      ()
  in
  let baseline_d = Flows.of_list [ (aa, 10.0); (Flows.stub d, 5.0) ] in
  let baseline_e = Flows.of_list [ (b, 10.0); (Flows.stub e, 5.0) ] in
  let demands =
    Traffic_model.
      [
        {
          beneficiary = d;
          transit = e;
          dest = b;
          reroutable = 0.0;
          (* nothing to reroute: only new flat-rate (worthless) traffic *)
          reroute_from = Some aa;
          attracted_max = 5.0;
        };
      ]
  in
  let s =
    Traffic_model.make_scenario_exn ~graph:g ~agreement
      ~businesses:[ (d, business_d); (e, business_e) ]
      ~baseline:[ (d, baseline_d); (e, baseline_e) ]
      ~demands
  in
  let r = Flow_volume_opt.optimize s in
  Alcotest.(check bool) "not concluded" false r.Flow_volume_opt.concluded

let test_flow_volume_empty_demands () =
  let g = Pan_topology.Gen.fig1 () in
  let d = Pan_topology.Gen.fig1_asn 'D'
  and e = Pan_topology.Gen.fig1_asn 'E' in
  let s =
    Traffic_model.make_scenario_exn ~graph:g
      ~agreement:(Agreement.paper_example g)
      ~businesses:[ (d, Business.of_graph g d); (e, Business.of_graph g e) ]
      ~baseline:[ (d, Flows.empty); (e, Flows.empty) ]
      ~demands:[]
  in
  let r = Flow_volume_opt.optimize s in
  Alcotest.(check bool) "empty not concluded" false r.Flow_volume_opt.concluded

(* ------------------------------------------------------------------ *)
(* Negotiation comparison & random scenarios                           *)

let test_compare_methods () =
  let _, s = Scenario_gen.fig1_scenario () in
  let c = Negotiation.compare_methods s in
  Alcotest.(check bool) "both concluded on the benign example" true
    (c.Negotiation.cash.Cash_opt.concluded
    && c.Negotiation.flow_volume.Flow_volume_opt.concluded);
  Alcotest.(check bool) "cash_only false here" false (Negotiation.cash_only c);
  Alcotest.(check bool) "joint utilities non-negative" true
    (Negotiation.cash_joint c >= 0.0 && Negotiation.flow_volume_joint c >= 0.0)

let qcheck_random_scenarios_consistent =
  QCheck.Test.make ~count:20 ~name:"random scenarios: cash settles viably"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Pan_topology.Gen.fig1 () in
      let rng = Rng.create seed in
      let s =
        Scenario_gen.random_scenario rng g
          ~x:(Pan_topology.Gen.fig1_asn 'D')
          ~y:(Pan_topology.Gen.fig1_asn 'E')
      in
      let r = Cash_opt.optimize s in
      if r.Cash_opt.concluded then
        (* equal split, individually rational *)
        Float.abs (r.Cash_opt.u_x_after -. r.Cash_opt.u_y_after) < 1e-6
        && r.Cash_opt.u_x_after >= -1e-9
      else Nash.surplus ~u_x:r.Cash_opt.u_x ~u_y:r.Cash_opt.u_y < 0.0)

let qcheck_flow_volume_never_worse_than_zero =
  QCheck.Test.make ~count:10
    ~name:"flow-volume optimum dominates the zero choice"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Pan_topology.Gen.fig1 () in
      let rng = Rng.create seed in
      let s =
        Scenario_gen.random_scenario rng g
          ~x:(Pan_topology.Gen.fig1_asn 'D')
          ~y:(Pan_topology.Gen.fig1_asn 'E')
      in
      let r = Flow_volume_opt.optimize ~starts_per_dim:2 s in
      (* the zero choice is always feasible with Nash product 0 *)
      r.Flow_volume_opt.nash >= 0.0)

let suite =
  [
    Alcotest.test_case "nash product" `Quick test_product;
    Alcotest.test_case "transfer closed form (Eq. 11)" `Quick
      test_transfer_closed_form;
    Alcotest.test_case "transfer direction" `Quick
      test_transfer_negative_direction;
    Alcotest.test_case "transfer unviable" `Quick test_transfer_unviable;
    Alcotest.test_case "after-transfer equal split" `Quick
      test_after_transfer_equal_split;
    QCheck_alcotest.to_alcotest qcheck_after_transfer_properties;
    Alcotest.test_case "cash on fig1" `Quick test_cash_on_fig1;
    Alcotest.test_case "cash refuses negative surplus" `Quick
      test_cash_not_concluded_on_negative_surplus;
    Alcotest.test_case "flow-volume on fig1" `Quick test_flow_volume_on_fig1;
    Alcotest.test_case "flow-volume respects bounds" `Quick
      test_flow_volume_respects_bounds;
    Alcotest.test_case "flow-volume degenerates (§IV-C)" `Quick
      test_flow_volume_degenerates_when_one_sided;
    Alcotest.test_case "flow-volume empty demands" `Quick
      test_flow_volume_empty_demands;
    Alcotest.test_case "compare methods" `Quick test_compare_methods;
    QCheck_alcotest.to_alcotest qcheck_random_scenarios_consistent;
    QCheck_alcotest.to_alcotest qcheck_flow_volume_never_worse_than_zero;
  ]
