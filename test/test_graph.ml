(* Tests for Pan_topology.Asn and Pan_topology.Graph. *)

open Pan_topology

let asn = Asn.of_int

let small () =
  let g = Graph.create () in
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  Graph.add_peering g (asn 2) (asn 3);
  g

let test_asn_basics () =
  Alcotest.(check int) "round trip" 42 (Asn.to_int (asn 42));
  Alcotest.(check bool) "equal" true (Asn.equal (asn 5) (asn 5));
  Alcotest.check_raises "negative" (Invalid_argument "Asn.of_int: negative AS number")
    (fun () -> ignore (asn (-1)))

let test_counts () =
  let g = small () in
  Alcotest.(check int) "ases" 3 (Graph.num_ases g);
  Alcotest.(check int) "p2c" 2 (Graph.num_provider_customer_links g);
  Alcotest.(check int) "p2p" 1 (Graph.num_peering_links g)

let test_neighbor_decomposition () =
  let g = small () in
  Alcotest.(check int) "providers of 2" 1
    (Asn.Set.cardinal (Graph.providers g (asn 2)));
  Alcotest.(check bool) "1 is provider of 2" true
    (Asn.Set.mem (asn 1) (Graph.providers g (asn 2)));
  Alcotest.(check bool) "3 is peer of 2" true
    (Asn.Set.mem (asn 3) (Graph.peers g (asn 2)));
  Alcotest.(check int) "customers of 1" 2
    (Asn.Set.cardinal (Graph.customers g (asn 1)));
  Alcotest.(check int) "neighbors of 2" 2
    (Asn.Set.cardinal (Graph.neighbors g (asn 2)));
  Alcotest.(check int) "degree of 2" 2 (Graph.degree g (asn 2))

let test_relationship () =
  let g = small () in
  Alcotest.(check bool) "provider view" true
    (Graph.relationship g (asn 2) (asn 1) = Some Graph.Provider);
  Alcotest.(check bool) "customer view" true
    (Graph.relationship g (asn 1) (asn 2) = Some Graph.Customer);
  Alcotest.(check bool) "peer view" true
    (Graph.relationship g (asn 2) (asn 3) = Some Graph.Peer);
  Alcotest.(check bool) "unrelated" true
    (Graph.relationship g (asn 2) (asn 99) = None);
  Alcotest.(check bool) "connected" true (Graph.connected g (asn 1) (asn 3));
  Alcotest.(check bool) "not connected" false
    (Graph.connected g (asn 99) (asn 1))

let test_idempotent_links () =
  let g = small () in
  Graph.add_peering g (asn 3) (asn 2);
  Alcotest.(check int) "peering not duplicated" 1
    (Graph.num_peering_links g);
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  Alcotest.(check int) "p2c not duplicated" 2
    (Graph.num_provider_customer_links g)

let test_conflicting_link_raises () =
  let g = small () in
  (try
     Graph.add_peering g (asn 1) (asn 2);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    Graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 3);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_self_link_raises () =
  let g = Graph.create () in
  try
    Graph.add_peering g (asn 4) (asn 4);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_isolated_as () =
  let g = Graph.create () in
  Graph.add_as g (asn 9);
  Alcotest.(check bool) "mem" true (Graph.mem g (asn 9));
  Alcotest.(check int) "degree" 0 (Graph.degree g (asn 9));
  Alcotest.(check (list int)) "ases" [ 9 ]
    (List.map Asn.to_int (Graph.ases g))

let test_fold_peering_links () =
  let g = small () in
  Graph.add_peering g (asn 1) (asn 9);
  let links = Graph.fold_peering_links (fun x y acc -> (Asn.to_int x, Asn.to_int y) :: acc) g [] in
  Alcotest.(check int) "two peering links" 2 (List.length links);
  List.iter
    (fun (x, y) ->
      if x >= y then Alcotest.fail "endpoints not ascending")
    links

let test_fold_p2c_links () =
  let g = small () in
  let links =
    Graph.fold_provider_customer_links
      (fun ~provider ~customer acc ->
        (Asn.to_int provider, Asn.to_int customer) :: acc)
      g []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "p2c links" [ (1, 2); (1, 3) ] links

let test_copy_isolation () =
  let g = small () in
  let g' = Graph.copy g in
  Graph.add_peering g' (asn 1) (asn 50);
  Alcotest.(check bool) "copy modified" true (Graph.mem g' (asn 50));
  Alcotest.(check bool) "original untouched" false (Graph.mem g (asn 50));
  Alcotest.(check int) "original peering count" 1 (Graph.num_peering_links g)

let test_fold_order_insertion_independent () =
  (* The folds iterate the sorted AS set, not the underlying hash tables,
     so two graphs with the same links added in different orders must
     produce byte-identical link sequences. *)
  let links =
    [ (1, 2, `P2c); (1, 3, `P2c); (2, 3, `P2p); (5, 2, `P2p); (3, 9, `P2c);
      (9, 5, `P2p); (1, 9, `P2p); (5, 6, `P2c); (6, 7, `P2p) ]
  in
  let build order =
    let g = Graph.create () in
    List.iter
      (fun (x, y, kind) ->
        match kind with
        | `P2c -> Graph.add_provider_customer g ~provider:(asn x) ~customer:(asn y)
        | `P2p -> Graph.add_peering g (asn x) (asn y))
      order;
    g
  in
  let peering g =
    Graph.fold_peering_links
      (fun x y acc -> (Asn.to_int x, Asn.to_int y) :: acc)
      g []
  in
  let p2c g =
    Graph.fold_provider_customer_links
      (fun ~provider ~customer acc ->
        (Asn.to_int provider, Asn.to_int customer) :: acc)
      g []
  in
  let g1 = build links in
  let g2 = build (List.rev links) in
  let g3 =
    build
      (List.sort (fun (x1, y1, _) (x2, y2, _) -> compare (y1, x1) (y2, x2)) links)
  in
  Alcotest.(check (list (pair int int))) "peering order g2" (peering g1)
    (peering g2);
  Alcotest.(check (list (pair int int))) "peering order g3" (peering g1)
    (peering g3);
  Alcotest.(check (list (pair int int))) "p2c order g2" (p2c g1) (p2c g2);
  Alcotest.(check (list (pair int int))) "p2c order g3" (p2c g1) (p2c g3)

let test_ases_sorted () =
  let g = Graph.create () in
  Graph.add_as g (asn 5);
  Graph.add_as g (asn 1);
  Graph.add_as g (asn 3);
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5 ]
    (List.map Asn.to_int (Graph.ases g))

let suite =
  [
    Alcotest.test_case "asn basics" `Quick test_asn_basics;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "neighbor decomposition" `Quick
      test_neighbor_decomposition;
    Alcotest.test_case "relationship queries" `Quick test_relationship;
    Alcotest.test_case "idempotent links" `Quick test_idempotent_links;
    Alcotest.test_case "conflicting link raises" `Quick
      test_conflicting_link_raises;
    Alcotest.test_case "self link raises" `Quick test_self_link_raises;
    Alcotest.test_case "isolated AS" `Quick test_isolated_as;
    Alcotest.test_case "fold peering links" `Quick test_fold_peering_links;
    Alcotest.test_case "fold p2c links" `Quick test_fold_p2c_links;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "fold order insertion-independent" `Quick
      test_fold_order_insertion_independent;
    Alcotest.test_case "ases sorted" `Quick test_ases_sorted;
  ]
