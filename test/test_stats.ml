(* Tests for Pan_numerics.Stats. *)

open Pan_numerics

let approx = Alcotest.(check (float 1e-9))

let test_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  approx "mean" 2.5 (Stats.mean xs);
  approx "variance" 1.25 (Stats.variance xs);
  approx "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_empty_raises () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0; 2.0 |] in
  approx "min" (-1.0) lo;
  approx "max" 7.0 hi

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  approx "p0" 10.0 (Stats.percentile xs 0.0);
  approx "p50" 30.0 (Stats.percentile xs 50.0);
  approx "p100" 50.0 (Stats.percentile xs 100.0);
  approx "p25 interpolates" 20.0 (Stats.percentile xs 25.0);
  approx "p10 interpolates" 14.0 (Stats.percentile xs 10.0)

let test_percentile_unsorted_input () =
  let xs = [| 50.0; 10.0; 40.0; 20.0; 30.0 |] in
  approx "median of unsorted" 30.0 (Stats.median xs);
  (* input must not be mutated *)
  Alcotest.(check (array (float 0.0))) "input untouched"
    [| 50.0; 10.0; 40.0; 20.0; 30.0 |] xs

let test_ecdf () =
  let c = Stats.ecdf [| 1.0; 2.0; 2.0; 4.0 |] in
  approx "below all" 0.0 (Stats.cdf_at c 0.5);
  approx "at 1" 0.25 (Stats.cdf_at c 1.0);
  approx "at 2" 0.75 (Stats.cdf_at c 2.0);
  approx "between" 0.75 (Stats.cdf_at c 3.0);
  approx "at max" 1.0 (Stats.cdf_at c 4.0);
  approx "survival" 0.25 (Stats.survival_at c 2.0)

let test_cdf_points () =
  let c = Stats.ecdf [| 1.0; 2.0; 2.0; 4.0 |] in
  let points = Stats.cdf_points c in
  Alcotest.(check int) "knot count" 3 (List.length points);
  let values = List.map fst points in
  Alcotest.(check (list (float 0.0))) "knot values" [ 1.0; 2.0; 4.0 ] values;
  let fractions = List.map snd points in
  Alcotest.(check (list (float 1e-9))) "knot fractions" [ 0.25; 0.75; 1.0 ]
    fractions

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "first cell" 2 c0;
  Alcotest.(check int) "second cell (right-closed)" 2 c1

let test_histogram_constant () =
  (* all-equal samples must not divide by zero *)
  let h = Stats.histogram ~bins:3 [| 5.0; 5.0; 5.0 |] in
  let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 h in
  Alcotest.(check int) "all samples counted" 3 total

let test_fraction_where () =
  approx "fraction" 0.5
    (Stats.fraction_where (fun x -> x > 0) [| 1; -1; 2; -2 |]);
  approx "empty" 0.0 (Stats.fraction_where (fun _ -> true) [||])

let qcheck_percentile_bounds =
  QCheck.Test.make ~count:200 ~name:"percentile stays within min/max"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.) 100.))
              (float_range 0.0 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let lo, hi = Stats.min_max arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let qcheck_ecdf_monotone =
  QCheck.Test.make ~count:200 ~name:"ecdf is monotone"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-10.) 10.))
              (pair (float_range (-12.) 12.) (float_range 0.0 5.0)))
    (fun (xs, (x, dx)) ->
      let c = Stats.ecdf (Array.of_list xs) in
      Stats.cdf_at c x <= Stats.cdf_at c (x +. dx))

(* NaN-adjacent edges: a NaN percentile rank slips through the
   [p < 0 || p > 100] range check (both comparisons are false), and NaN
   samples would sort to an arbitrary position — all must raise, never
   return an order-dependent quantile. *)
let test_nan_edges () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  Alcotest.check_raises "NaN p"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile xs Float.nan));
  Alcotest.check_raises "p below range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile xs (-0.5)));
  Alcotest.check_raises "p above range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile xs 100.5));
  let with_nan = [| 1.0; Float.nan; 3.0 |] in
  Alcotest.check_raises "NaN sample in percentile"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.percentile with_nan 50.0));
  Alcotest.check_raises "NaN sample in median"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.median with_nan));
  Alcotest.check_raises "NaN sample in ecdf"
    (Invalid_argument "Stats.ecdf: NaN input") (fun () ->
      ignore (Stats.ecdf with_nan));
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "empty ecdf"
    (Invalid_argument "Stats.ecdf: empty array") (fun () ->
      ignore (Stats.ecdf [||]))

let suite =
  [
    Alcotest.test_case "mean / variance / stddev" `Quick test_mean_variance;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile leaves input alone" `Quick
      test_percentile_unsorted_input;
    Alcotest.test_case "ecdf" `Quick test_ecdf;
    Alcotest.test_case "cdf_points" `Quick test_cdf_points;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram of constant sample" `Quick
      test_histogram_constant;
    Alcotest.test_case "fraction_where" `Quick test_fraction_where;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_ecdf_monotone;
    Alcotest.test_case "NaN-adjacent edges raise" `Quick test_nan_edges;
  ]
