(* Tests for topology metrics (customer cones, summaries) and the
   Eq. 4/5 revenue-cost decomposition. *)

open Pan_topology
open Pan_econ

let approx = Alcotest.(check (float 1e-9))
let a = Gen.fig1_asn
let g = Gen.fig1 ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_customer_cone_fig1 () =
  (* cone(A) = {A, D, H}; cone(D) = {D, H}; cone(H) = {H} *)
  let cone x = Metrics.customer_cone g (a x) in
  Alcotest.(check (list int)) "cone of A"
    (List.map (fun c -> Asn.to_int (a c)) [ 'A'; 'D'; 'H' ])
    (List.map Asn.to_int (Asn.Set.elements (cone 'A')));
  Alcotest.(check int) "cone of D" 2 (Metrics.cone_size g (a 'D'));
  Alcotest.(check int) "cone of H" 1 (Metrics.cone_size g (a 'H'))

let test_cone_sizes_consistent () =
  let sizes = Metrics.cone_sizes g in
  List.iter
    (fun x ->
      Alcotest.(check int) "matches per-AS computation"
        (Metrics.cone_size g x) (Asn.Map.find x sizes))
    (Graph.ases g)

let test_cone_sizes_on_generated () =
  let gen =
    Gen.generate
      ~params:{ Gen.default_params with Gen.n_transit = 40; Gen.n_stub = 160 }
      ~seed:3 ()
  in
  let g' = Gen.graph gen in
  let sizes = Metrics.cone_sizes g' in
  (* stubs have singleton cones; some transit AS has a bigger cone *)
  List.iter
    (fun x -> Alcotest.(check int) "stub cone" 1 (Asn.Map.find x sizes))
    (Gen.stubs gen);
  Alcotest.(check bool) "transit cones grow" true
    (List.exists (fun x -> Asn.Map.find x sizes > 10) (Gen.transit gen));
  (* provider cones contain their customers' cones *)
  List.iter
    (fun x ->
      Asn.Set.iter
        (fun c ->
          Alcotest.(check bool) "cone monotone" true
            (Asn.Map.find x sizes >= Asn.Map.find c sizes))
        (Graph.customers g' x))
    (Graph.ases g')

let test_hierarchy_depth () =
  Alcotest.(check int) "A: A->D->H" 2 (Metrics.hierarchy_depth g (a 'A'));
  Alcotest.(check int) "D: D->H" 1 (Metrics.hierarchy_depth g (a 'D'));
  Alcotest.(check int) "stub" 0 (Metrics.hierarchy_depth g (a 'H'))

let test_hierarchy_cycle_detected () =
  (* a 3-cycle of provider-customer links (a 2-cycle is already rejected
     by Graph's one-relationship-per-pair invariant) *)
  let g' = Graph.create () in
  let n1 = Asn.of_int 1 and n2 = Asn.of_int 2 and n3 = Asn.of_int 3 in
  Graph.add_provider_customer g' ~provider:n1 ~customer:n2;
  Graph.add_provider_customer g' ~provider:n2 ~customer:n3;
  Graph.add_provider_customer g' ~provider:n3 ~customer:n1;
  try
    ignore (Metrics.hierarchy_depth g' n1);
    Alcotest.fail "cycle not detected"
  with Invalid_argument _ -> ()

let test_summary_fig1 () =
  let s = Metrics.summary g in
  Alcotest.(check int) "ases" 9 s.Metrics.ases;
  Alcotest.(check int) "p2c" 6 s.Metrics.p2c_links;
  Alcotest.(check int) "p2p" 7 s.Metrics.p2p_links;
  approx "peering share" (7.0 /. 13.0) s.Metrics.peering_share;
  Alcotest.(check int) "provider-less = A,B,C" 3 s.Metrics.provider_less;
  Alcotest.(check int) "depth" 2 s.Metrics.max_hierarchy_depth;
  (* E has degree 5: B, C, D, F, I *)
  Alcotest.(check int) "max degree" 5 s.Metrics.max_degree

let test_summary_generated_realism () =
  let g' =
    Gen.graph
      (Gen.generate
         ~params:{ Gen.default_params with Gen.n_transit = 60; Gen.n_stub = 240 }
         ~seed:5 ())
  in
  let s = Metrics.summary g' in
  Alcotest.(check bool) "peering dominates (CAIDA-like)" true
    (s.Metrics.peering_share > 0.5);
  Alcotest.(check bool) "heavy tail: max >> mean" true
    (float_of_int s.Metrics.max_degree > 5.0 *. s.Metrics.mean_degree);
  Alcotest.(check bool) "shallow hierarchy" true
    (s.Metrics.max_hierarchy_depth <= 10)

let test_degree_histogram () =
  let h = Metrics.degree_histogram ~bins:5 g in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "every AS binned" 9 total

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)

let test_decomposition_matches_utilities () =
  let _, s = Scenario_gen.fig1_scenario () in
  let choices = Traffic_model.full_choice s in
  match Decomposition.of_choices s choices with
  | Error e -> Alcotest.fail e
  | Ok (dx, dy) ->
      let ux, uy = Traffic_model.utilities_exn s choices in
      approx "u_x from decomposition" ux dx.Decomposition.utility;
      approx "u_y from decomposition" uy dy.Decomposition.utility;
      approx "cost split adds up x"
        dx.Decomposition.d_cost
        (dx.Decomposition.d_internal +. dx.Decomposition.d_provider);
      approx "u = Δr − Δc" dx.Decomposition.utility
        (dx.Decomposition.d_revenue -. dx.Decomposition.d_cost)

let test_decomposition_analytic () =
  (* the analytic expectations from the Eq. 7 hand-check: for the first
     demand only (D-E-B at r=2, δ=1): Δr_D = 2δ, Δi_D = 0.1δ,
     Δprovider_D = −r; Δr_E = 0, Δi_E = 0.1(r+δ), Δprovider_E = r+δ *)
  let _, s = Scenario_gen.fig1_scenario () in
  let choices =
    Traffic_model.
      [
        { reroute = 2.0; attracted = 1.0 };
        { reroute = 0.0; attracted = 0.0 };
        { reroute = 0.0; attracted = 0.0 };
      ]
  in
  match Decomposition.of_choices s choices with
  | Error e -> Alcotest.fail e
  | Ok (dx, dy) ->
      approx "Δr_D" 2.0 dx.Decomposition.d_revenue;
      approx "Δi_D" 0.1 dx.Decomposition.d_internal;
      approx "Δprovider_D" (-2.0) dx.Decomposition.d_provider;
      approx "Δr_E" 0.0 dy.Decomposition.d_revenue;
      approx "Δi_E" 0.3 dy.Decomposition.d_internal;
      approx "Δprovider_E" 3.0 dy.Decomposition.d_provider

let test_peering_scenario_eq45 () =
  (* §III-B1: with per-usage customer prices and cheap internals, the
     peering agreement's strongest rationale — strongly negative Δc from
     avoiding the provider — shows up in the decomposition *)
  let _, s = Scenario_gen.fig1_peering_scenario () in
  let dx, dy = Decomposition.of_full s in
  Alcotest.(check bool) "provider charges fall for D" true
    (dx.Decomposition.d_provider < 0.0);
  Alcotest.(check bool) "provider charges fall for E" true
    (dy.Decomposition.d_provider < 0.0);
  Alcotest.(check bool) "both utilities positive" true
    (dx.Decomposition.utility > 0.0 && dy.Decomposition.utility > 0.0);
  (* peering conforms to the GRC, unlike the Eq. 6 agreement *)
  let g', s' = Scenario_gen.fig1_peering_scenario () in
  Alcotest.(check bool) "GRC-conforming" false
    (Agreement.violates_grc g' (Traffic_model.agreement s'))

let test_peering_can_be_unattractive () =
  (* the paper's flip side (§III-B1): a substantial internal-cost increase
     with no extra end-host income makes peering unattractive.  At
     internal rate 3, carrying the partner's traffic costs strictly more
     than the provider savings plus customer billing for any positive
     volume split, so the flow-volume optimum collapses to zero. *)
  let _, s =
    Scenario_gen.fig1_peering_scenario ~stub_price:0.0 ~internal_rate:3.0 ()
  in
  let r = Flow_volume_opt.optimize s in
  Alcotest.(check bool) "unattractive peering not concluded" false
    r.Flow_volume_opt.concluded;
  (* at full volumes both parties lose outright *)
  let dx, dy = Decomposition.of_full s in
  Alcotest.(check bool) "full-volume utilities negative" true
    (dx.Decomposition.utility < 0.0 && dy.Decomposition.utility < 0.0)

let suite =
  [
    Alcotest.test_case "customer cone (fig1)" `Quick test_customer_cone_fig1;
    Alcotest.test_case "cone_sizes consistent" `Quick
      test_cone_sizes_consistent;
    Alcotest.test_case "cone sizes on generated graph" `Quick
      test_cone_sizes_on_generated;
    Alcotest.test_case "hierarchy depth" `Quick test_hierarchy_depth;
    Alcotest.test_case "hierarchy cycle detected" `Quick
      test_hierarchy_cycle_detected;
    Alcotest.test_case "summary (fig1)" `Quick test_summary_fig1;
    Alcotest.test_case "generated graph realism" `Quick
      test_summary_generated_realism;
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "decomposition = utilities" `Quick
      test_decomposition_matches_utilities;
    Alcotest.test_case "decomposition analytic (Eq. 7)" `Quick
      test_decomposition_analytic;
    Alcotest.test_case "peering example (Eq. 4/5)" `Quick
      test_peering_scenario_eq45;
    Alcotest.test_case "peering can be unattractive" `Quick
      test_peering_can_be_unattractive;
  ]
