(* Tests for the synthetic topology generator and the Fig. 1 builder. *)

open Pan_topology

let small_params =
  {
    Gen.default_params with
    Gen.n_tier1 = 4;
    n_transit = 40;
    n_stub = 150;
  }

let gen ?(seed = 1) () = Gen.generate ~params:small_params ~seed ()

let test_determinism () =
  let g1 = Gen.graph (gen ()) and g2 = Gen.graph (gen ()) in
  Alcotest.(check int) "ases" (Graph.num_ases g1) (Graph.num_ases g2);
  Alcotest.(check int) "p2c"
    (Graph.num_provider_customer_links g1)
    (Graph.num_provider_customer_links g2);
  Alcotest.(check int) "p2p" (Graph.num_peering_links g1)
    (Graph.num_peering_links g2);
  List.iter
    (fun x ->
      Alcotest.(check bool) "same neighbors" true
        (Asn.Set.equal (Graph.neighbors g1 x) (Graph.neighbors g2 x)))
    (Graph.ases g1)

let test_seed_changes_topology () =
  let g1 = Gen.graph (gen ~seed:1 ()) and g2 = Gen.graph (gen ~seed:2 ()) in
  let differs =
    List.exists
      (fun x -> not (Asn.Set.equal (Graph.neighbors g1 x) (Graph.neighbors g2 x)))
      (Graph.ases g1)
  in
  Alcotest.(check bool) "seeds differ" true differs

let test_tier_sizes () =
  let t = gen () in
  Alcotest.(check int) "tier1" 4 (List.length (Gen.tier1 t));
  Alcotest.(check int) "transit" 40 (List.length (Gen.transit t));
  Alcotest.(check int) "stubs" 150 (List.length (Gen.stubs t));
  Alcotest.(check int) "total" 194 (Graph.num_ases (Gen.graph t))

let test_tier1_clique_and_no_providers () =
  let t = gen () in
  let g = Gen.graph t in
  List.iter
    (fun x ->
      Alcotest.(check bool) "tier1 has no providers" true
        (Asn.Set.is_empty (Graph.providers g x));
      List.iter
        (fun y ->
          if not (Asn.equal x y) then
            Alcotest.(check bool) "clique peering" true
              (Graph.relationship g x y = Some Graph.Peer))
        (Gen.tier1 t))
    (Gen.tier1 t)

let test_everyone_else_has_providers () =
  let t = gen () in
  let g = Gen.graph t in
  List.iter
    (fun x ->
      Alcotest.(check bool) "transit has a provider" false
        (Asn.Set.is_empty (Graph.providers g x)))
    (Gen.transit t);
  List.iter
    (fun x ->
      Alcotest.(check bool) "stub has a provider" false
        (Asn.Set.is_empty (Graph.providers g x)))
    (Gen.stubs t)

let test_stub_has_no_customers () =
  let t = gen () in
  let g = Gen.graph t in
  List.iter
    (fun x ->
      Alcotest.(check bool) "stub childless" true
        (Asn.Set.is_empty (Graph.customers g x)))
    (Gen.stubs t)

let test_tier_of () =
  let t = gen () in
  List.iter
    (fun x -> Alcotest.(check bool) "tier1" true (Gen.tier_of t x = Gen.Tier1))
    (Gen.tier1 t);
  List.iter
    (fun x -> Alcotest.(check bool) "stub" true (Gen.tier_of t x = Gen.Stub))
    (Gen.stubs t)

let test_provider_hierarchy_acyclic () =
  (* walking up providers must always terminate at tier-1 *)
  let t = gen () in
  let g = Gen.graph t in
  let rec climbs_to_top x depth =
    if depth > 50 then false
    else if Asn.Set.is_empty (Graph.providers g x) then true
    else climbs_to_top (Asn.Set.min_elt (Graph.providers g x)) (depth + 1)
  in
  List.iter
    (fun x ->
      Alcotest.(check bool) "provider chain reaches the top" true
        (climbs_to_top x 0))
    (Graph.ases g)

let test_invalid_params () =
  let bad = { small_params with Gen.n_tier1 = 0 } in
  try
    ignore (Gen.generate ~params:bad ~seed:1 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_fig1_structure () =
  let g = Gen.fig1 () in
  let a = Gen.fig1_asn in
  Alcotest.(check int) "9 ASes" 9 (Graph.num_ases g);
  Alcotest.(check bool) "A provider of D" true
    (Graph.relationship g (a 'D') (a 'A') = Some Graph.Provider);
  Alcotest.(check bool) "D peers E" true
    (Graph.relationship g (a 'D') (a 'E') = Some Graph.Peer);
  Alcotest.(check bool) "E peers F" true
    (Graph.relationship g (a 'E') (a 'F') = Some Graph.Peer);
  Alcotest.(check bool) "H customer of D" true
    (Graph.relationship g (a 'D') (a 'H') = Some Graph.Customer);
  Alcotest.(check bool) "C peers both D and E" true
    (Graph.relationship g (a 'C') (a 'D') = Some Graph.Peer
    && Graph.relationship g (a 'C') (a 'E') = Some Graph.Peer)

let test_fig1_asn_invalid () =
  try
    ignore (Gen.fig1_asn 'Z');
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_hub_peering_increases_density () =
  let without =
    Gen.graph
      (Gen.generate
         ~params:{ small_params with Gen.route_server_hubs = 0 }
         ~seed:3 ())
  in
  let with_hubs =
    Gen.graph
      (Gen.generate
         ~params:{ small_params with Gen.route_server_hubs = 5 }
         ~seed:3 ())
  in
  Alcotest.(check bool) "hubs add peering links" true
    (Graph.num_peering_links with_hubs > Graph.num_peering_links without)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed changes topology" `Quick
      test_seed_changes_topology;
    Alcotest.test_case "tier sizes" `Quick test_tier_sizes;
    Alcotest.test_case "tier1 clique / no providers" `Quick
      test_tier1_clique_and_no_providers;
    Alcotest.test_case "non-tier1 have providers" `Quick
      test_everyone_else_has_providers;
    Alcotest.test_case "stubs childless" `Quick test_stub_has_no_customers;
    Alcotest.test_case "tier_of" `Quick test_tier_of;
    Alcotest.test_case "provider hierarchy terminates" `Quick
      test_provider_hierarchy_acyclic;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
    Alcotest.test_case "fig1 structure" `Quick test_fig1_structure;
    Alcotest.test_case "fig1_asn invalid" `Quick test_fig1_asn_invalid;
    Alcotest.test_case "hub peering adds density" `Quick
      test_hub_peering_increases_density;
  ]
