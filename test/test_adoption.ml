(* Tests for economic MA adoption (E11) and the economic path scenario. *)

open Pan_topology
open Pan_experiments

let small_graph =
  lazy
    (Gen.graph
       (Gen.generate
          ~params:{ Gen.default_params with Gen.n_transit = 50; n_stub = 200 }
          ~seed:42 ()))

let first_peering g =
  match
    Graph.fold_peering_links
      (fun x y acc -> match acc with None -> Some (x, y) | some -> some)
      g None
  with
  | Some p -> p
  | None -> Alcotest.fail "no peering links in test graph"

let test_negotiate_pair_deterministic () =
  let g = Lazy.force small_graph in
  let x, y = first_peering g in
  let n1 = Adoption.negotiate_pair ~seed:3 g x y in
  let n2 = Adoption.negotiate_pair ~seed:3 g x y in
  Alcotest.(check bool) "same outcome" true
    (n1.Adoption.concluded = n2.Adoption.concluded
    && n1.Adoption.joint_utility = n2.Adoption.joint_utility)

let test_negotiate_pair_seed_sensitivity () =
  let g = Lazy.force small_graph in
  (* at least one pair must flip between two seeds on a 50-transit graph *)
  let flips = ref 0 in
  let count = ref 0 in
  Graph.fold_peering_links
    (fun x y () ->
      if !count < 300 then begin
        incr count;
        let n1 = Adoption.negotiate_pair ~seed:1 g x y in
        let n2 = Adoption.negotiate_pair ~seed:2 g x y in
        if n1.Adoption.concluded <> n2.Adoption.concluded then incr flips
      end)
    g ();
  Alcotest.(check bool) "business conditions matter" true (!flips > 0)

let result = lazy (Adoption.run ~sample_size:100 ~seed:17 (Lazy.force small_graph))

let test_adoption_rate_non_trivial () =
  let r = Lazy.force result in
  Alcotest.(check bool) "some adopted" true (r.Adoption.adoption_rate > 0.0);
  Alcotest.(check bool) "not everything adopted" true
    (r.Adoption.adoption_rate < 1.0);
  Alcotest.(check int) "concluded list consistent"
    (List.length r.Adoption.concluded)
    (int_of_float
       (Float.round
          (r.Adoption.adoption_rate *. float_of_int r.Adoption.pairs_evaluated)))

let test_adoption_ordering () =
  let r = Lazy.force result in
  List.iter
    (fun (pa : Adoption.per_as) ->
      Alcotest.(check bool) "GRC <= economic" true
        (pa.Adoption.grc_paths <= pa.Adoption.economic_paths);
      Alcotest.(check bool) "economic <= all-MA" true
        (pa.Adoption.economic_paths <= pa.Adoption.all_ma_paths);
      Alcotest.(check bool) "dest ordering" true
        (pa.Adoption.grc_dests <= pa.Adoption.economic_dests
        && pa.Adoption.economic_dests <= pa.Adoption.all_ma_dests))
    r.Adoption.sampled

let test_concluded_pairs_are_peers () =
  let g = Lazy.force small_graph in
  let r = Lazy.force result in
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool) "peers" true
        (Graph.relationship g x y = Some Graph.Peer))
    r.Adoption.concluded

let test_economic_paths_bounds () =
  let g = Lazy.force small_graph in
  let x = List.hd (Graph.ases g) in
  (* nothing concluded: exactly the GRC baseline *)
  let none = Path_enum.economic_paths ~concluded:(fun _ _ -> false) g x in
  Alcotest.(check int) "no MAs = GRC"
    (Path_enum.total_count (Path_enum.grc g x))
    (Path_enum.total_count none);
  (* everything concluded: exactly the Ma_all scenario *)
  List.iter
    (fun asn ->
      let all = Path_enum.economic_paths ~concluded:(fun _ _ -> true) g asn in
      Alcotest.(check int) "all MAs = Ma_all scenario"
        (Path_enum.total_count
           (Path_enum.scenario_paths g Path_enum.Ma_all asn))
        (Path_enum.total_count all))
    (List.filteri (fun i _ -> i < 25) (Graph.ases g))

let suite =
  [
    Alcotest.test_case "negotiation deterministic" `Quick
      test_negotiate_pair_deterministic;
    Alcotest.test_case "negotiation seed-sensitive" `Quick
      test_negotiate_pair_seed_sensitivity;
    Alcotest.test_case "adoption rate non-trivial" `Quick
      test_adoption_rate_non_trivial;
    Alcotest.test_case "scenario ordering" `Quick test_adoption_ordering;
    Alcotest.test_case "concluded pairs are peers" `Quick
      test_concluded_pairs_are_peers;
    Alcotest.test_case "economic_paths bounds" `Quick
      test_economic_paths_bounds;
  ]
