(* The fast (unboxed, SoA) econ kernels against the reference
   map-based oracle: qcheck equivalence over randomized scenarios and
   decision vectors, degenerate cases, batch Nash helpers, and a
   hex-float golden pinning the Reference optimizer output across the
   kernel swap. *)

open Pan_topology
open Pan_numerics
open Pan_econ

let tol = 1e-12

(* |ref − fast| ≤ tol·max(1, |ref|), the same envelope the BOSCO kernel
   suite uses.  The econ kernels are designed to be bit-identical, so
   this is a weaker bound than what the goldens below pin — but it is the
   documented contract. *)
let close x y =
  x = y || Float.abs (x -. y) <= tol *. Float.max 1.0 (Float.abs x)

let utilities_agree s choices =
  let model = Model_fast.compile s in
  match (Traffic_model.utilities s choices, Model_fast.utilities model choices)
  with
  | Ok (rx, ry), Ok (fx, fy) -> close rx fx && close ry fy
  | Error e_ref, Error e_fast -> String.equal e_ref e_fast
  | Ok _, Error _ | Error _, Ok _ -> false

(* ------------------------------------------------------------------ *)
(* qcheck: fast ≡ reference on random scenarios and random vectors     *)

let random_choices rng s =
  (* Scale each demand's forecast maximum by a random factor; factors a
     bit above 1 push the vector out of the box so the validation-error
     paths (identical messages) are exercised too. *)
  List.map
    (fun (c : Traffic_model.choice) ->
      {
        Traffic_model.reroute = c.Traffic_model.reroute *. Rng.float rng *. 1.1;
        attracted = c.Traffic_model.attracted *. Rng.float rng *. 1.1;
      })
    (Traffic_model.full_choice s)

let qcheck_fast_equals_reference =
  QCheck.Test.make ~count:200
    ~name:"fast utilities = reference (all slots, 1e-12)"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let g = Gen.fig1 () in
      let d = Gen.fig1_asn 'D' and e = Gen.fig1_asn 'E' in
      let rng = Rng.create seed in
      let s = Scenario_gen.random_scenario rng g ~x:d ~y:e in
      List.for_all
        (fun choices -> utilities_agree s choices)
        [
          Traffic_model.zero_choice s;
          Traffic_model.full_choice s;
          random_choices rng s;
          random_choices rng s;
        ])

let qcheck_nash_objective_equals_reference =
  QCheck.Test.make ~count:100 ~name:"nash objective = reference penalty form"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let g = Gen.fig1 () in
      let d = Gen.fig1_asn 'D' and e = Gen.fig1_asn 'E' in
      let rng = Rng.create seed in
      let s = Scenario_gen.random_scenario rng g ~x:d ~y:e in
      let model = Model_fast.compile s in
      let choices = random_choices rng s in
      let vector =
        Array.concat
          (List.map
             (fun (c : Traffic_model.choice) ->
               [| c.Traffic_model.reroute; c.Traffic_model.attracted |])
             choices)
      in
      let fast = Model_fast.nash_objective model vector in
      let reference =
        match Traffic_model.utilities s choices with
        | Error _ -> neg_infinity
        | Ok (ux, uy) ->
            let worst = Float.min ux uy in
            if worst < 0.0 then worst else ux *. uy
      in
      fast = reference)

(* ------------------------------------------------------------------ *)
(* Unit: exact equality on the worked examples and degenerate cases    *)

let bits = Int64.bits_of_float

let check_bits ctx expect actual =
  Alcotest.(check int64) ctx (bits expect) (bits actual)

let test_fig1_bit_identical () =
  List.iter
    (fun (_, s) ->
      let model = Model_fast.compile s in
      List.iter
        (fun choices ->
          match
            ( Traffic_model.utilities s choices,
              Model_fast.utilities model choices )
          with
          | Ok (rx, ry), Ok (fx, fy) ->
              check_bits "u_x bits" rx fx;
              check_bits "u_y bits" ry fy
          | Error e_ref, Error e_fast ->
              Alcotest.(check string) "error" e_ref e_fast
          | _ -> Alcotest.fail "kernels disagree on feasibility")
        [ Traffic_model.zero_choice s; Traffic_model.full_choice s ])
    [ Scenario_gen.fig1_scenario (); Scenario_gen.fig1_peering_scenario () ]

let test_zero_traffic_neutral () =
  (* Degenerate: the all-zero choice changes nothing, so both kernels
     must report exactly (0, 0) agreement utility. *)
  let _, s = Scenario_gen.fig1_scenario () in
  let model = Model_fast.compile s in
  let fx, fy = Model_fast.utilities_exn model (Traffic_model.zero_choice s) in
  check_bits "zero u_x" 0.0 fx;
  check_bits "zero u_y" 0.0 fy

let test_single_flow () =
  (* Degenerate: only the first demand used, the rest zero. *)
  let _, s = Scenario_gen.fig1_scenario () in
  let model = Model_fast.compile s in
  let choices =
    List.mapi
      (fun i (c : Traffic_model.choice) ->
        if i = 0 then c else { Traffic_model.reroute = 0.0; attracted = 0.0 })
      (Traffic_model.full_choice s)
  in
  let rx, ry = Traffic_model.utilities_exn s choices in
  let fx, fy = Model_fast.utilities_exn model choices in
  check_bits "single u_x" rx fx;
  check_bits "single u_y" ry fy

let test_vector_and_list_agree () =
  let _, s = Scenario_gen.fig1_scenario () in
  let model = Model_fast.compile s in
  let choices = Traffic_model.full_choice s in
  let vector =
    Array.concat
      (List.map
         (fun (c : Traffic_model.choice) ->
           [| c.Traffic_model.reroute; c.Traffic_model.attracted |])
         choices)
  in
  match
    (Model_fast.utilities model choices, Model_fast.utilities_vector model vector)
  with
  | Ok (lx, ly), Ok (vx, vy) ->
      check_bits "vector u_x" lx vx;
      check_bits "vector u_y" ly vy
  | _ -> Alcotest.fail "vector and list evaluation disagree"

let test_wrong_length_rejected () =
  let _, s = Scenario_gen.fig1_scenario () in
  let model = Model_fast.compile s in
  (match Model_fast.utilities model [] with
  | Error msg ->
      Alcotest.(check string) "same message as reference"
        (match Traffic_model.utilities s [] with
        | Error m -> m
        | Ok _ -> "reference accepted an empty choice list")
        msg
  | Ok _ -> Alcotest.fail "empty choice list accepted");
  match Model_fast.utilities_vector model [| 0.0 |] with
  | Error msg ->
      Alcotest.(check string) "vector length" "choice list length mismatch" msg
  | Ok _ -> Alcotest.fail "short vector accepted"

(* ------------------------------------------------------------------ *)
(* Batch entry points                                                  *)

let test_batch_equals_scalar () =
  let _, s = Scenario_gen.fig1_scenario () in
  let model = Model_fast.compile s in
  let n = Model_fast.n_demands model in
  let rng = Rng.create 11 in
  let m = 7 in
  let vectors =
    Array.init
      (m * 2 * n)
      (fun i -> if i mod 3 = 0 then 0.0 else Rng.float rng *. 2.0)
  in
  let ws = Econ_workspace.create () in
  let out_x = Array.make m Float.nan and out_y = Array.make m Float.nan in
  Model_fast.utilities_batch ~workspace:ws model ~vectors ~m ~out_x ~out_y;
  for k = 0 to m - 1 do
    let v = Array.sub vectors (k * 2 * n) (2 * n) in
    match Model_fast.utilities_vector ~workspace:ws model v with
    | Ok (ux, uy) ->
        check_bits "batch u_x" ux out_x.(k);
        check_bits "batch u_y" uy out_y.(k)
    | Error e -> Alcotest.fail ("batch vector infeasible: " ^ e)
  done

let test_nash_batch_helpers () =
  let u_x = [| 2.0; -1.0; 10.0; 1.0 |] and u_y = [| 3.0; 3.0; 2.0; -3.0 |] in
  let n = 4 in
  let prod = Array.make n Float.nan in
  Nash.product_into ~n ~u_x ~u_y prod;
  Array.iteri
    (fun i p -> check_bits "product" (Nash.product u_x.(i) u_y.(i)) p)
    prod;
  let surp = Array.make n Float.nan in
  Nash.surplus_into ~n ~u_x ~u_y surp;
  Array.iteri
    (fun i v ->
      check_bits "surplus" (Nash.surplus ~u_x:u_x.(i) ~u_y:u_y.(i)) v)
    surp;
  let out_x = Array.make n Float.nan and out_y = Array.make n Float.nan in
  let viable = Nash.after_transfer_into ~n ~u_x ~u_y ~out_x ~out_y in
  Alcotest.(check int) "viable count" 3 viable;
  Array.iteri
    (fun i _ ->
      match Nash.after_transfer ~u_x:u_x.(i) ~u_y:u_y.(i) with
      | Some (ax, ay) ->
          check_bits "after x" ax out_x.(i);
          check_bits "after y" ay out_y.(i)
      | None ->
          check_bits "non-viable x" 0.0 out_x.(i);
          check_bits "non-viable y" 0.0 out_y.(i))
    out_x

(* ------------------------------------------------------------------ *)
(* Flows SoA round-trip                                                *)

let test_flows_sorted_arrays_roundtrip () =
  let d = Gen.fig1_asn in
  let f =
    Flows.of_list [ (d 'A', 4.0); (d 'B', 2.5); (d 'F', 0.0); (d 'H', 1.0) ]
  in
  let keys, vals = Flows.to_sorted_arrays f in
  Alcotest.(check int) "lengths" (Array.length keys) (Array.length vals);
  Alcotest.(check bool) "ascending" true
    (Array.for_all2
       (fun a b -> Asn.compare a b < 0)
       (Array.sub keys 0 (Array.length keys - 1))
       (Array.sub keys 1 (Array.length keys - 1)));
  let g = Flows.of_sorted_arrays keys vals in
  check_bits "total preserved" (Flows.total f) (Flows.total g);
  List.iter
    (fun asn ->
      check_bits "flow preserved" (Flows.flow_to f asn) (Flows.flow_to g asn))
    [ d 'A'; d 'B'; d 'F'; d 'H' ]

(* ------------------------------------------------------------------ *)
(* Golden: the Reference optimizer across the kernel swap              *)

(* Captured from Flow_volume_opt.optimize ~kernel:Reference on
   fig1_scenario BEFORE the fast kernel became the default (hex
   literals: exact bytes).  The Reference path must still reproduce them
   bit-for-bit; the Fast path must match it exactly (the kernels are
   bit-identical, so the optimizer walks the same simplex). *)
let golden_u_x = 0x1.62e158731b5dcp+2
let golden_u_y = 0x1.429e31eb23a18p+2
let golden_nash = 0x1.bf3abd8877a5cp+4

let golden_choices =
  [ (0x0p+0, 0x1p+2); (0x1p+1, 0x1p+1); (0x1.090498518a082p+2, 0x1.8p+1) ]

let golden_cash = (0x1.5333333333334p+3, -0x1.666666666668p-1, 0x1.699999999999cp+2)

let check_fv_result (r : Flow_volume_opt.result) =
  Alcotest.(check bool) "concluded" true r.Flow_volume_opt.concluded;
  check_bits "u_x" golden_u_x r.Flow_volume_opt.u_x;
  check_bits "u_y" golden_u_y r.Flow_volume_opt.u_y;
  check_bits "nash" golden_nash r.Flow_volume_opt.nash;
  List.iter2
    (fun (gr, ga) (c : Traffic_model.choice) ->
      check_bits "choice reroute" gr c.Traffic_model.reroute;
      check_bits "choice attracted" ga c.Traffic_model.attracted)
    golden_choices r.Flow_volume_opt.choices

let test_golden_optimize_both_kernels () =
  let _, s = Scenario_gen.fig1_scenario () in
  check_fv_result (Flow_volume_opt.optimize ~kernel:Model_fast.Reference s);
  check_fv_result (Flow_volume_opt.optimize ~kernel:Model_fast.Fast s);
  let gx, gy, gt = golden_cash in
  List.iter
    (fun kernel ->
      let c = Cash_opt.optimize ~kernel s in
      Alcotest.(check bool) "cash concluded" true c.Cash_opt.concluded;
      check_bits "cash u_x" gx c.Cash_opt.u_x;
      check_bits "cash u_y" gy c.Cash_opt.u_y;
      check_bits "cash transfer" gt c.Cash_opt.transfer)
    [ Model_fast.Reference; Model_fast.Fast ]

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_fast_equals_reference;
    QCheck_alcotest.to_alcotest qcheck_nash_objective_equals_reference;
    Alcotest.test_case "fig1 scenarios bit-identical" `Quick
      test_fig1_bit_identical;
    Alcotest.test_case "zero-traffic choice is neutral" `Quick
      test_zero_traffic_neutral;
    Alcotest.test_case "single-flow degenerate" `Quick test_single_flow;
    Alcotest.test_case "vector = list evaluation" `Quick
      test_vector_and_list_agree;
    Alcotest.test_case "wrong lengths rejected like reference" `Quick
      test_wrong_length_rejected;
    Alcotest.test_case "batch = scalar (bitwise)" `Quick
      test_batch_equals_scalar;
    Alcotest.test_case "Nash batch helpers = scalar" `Quick
      test_nash_batch_helpers;
    Alcotest.test_case "Flows sorted-arrays round-trip" `Quick
      test_flows_sorted_arrays_roundtrip;
    Alcotest.test_case "golden: optimizers across kernels" `Quick
      test_golden_optimize_both_kernels;
  ]
