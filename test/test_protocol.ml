(* Tests for the BOSCO negotiation protocol state machine. *)

open Pan_numerics
open Pan_bosco

let u1 = Distribution.uniform (-1.0) 1.0

let published_session ?(seed = 4) ?(w = 15) () =
  let rng = Rng.create seed in
  let report = Service.negotiate ~rng ~dist_x:u1 ~dist_y:u1 ~w () in
  match
    Protocol.publish (Protocol.propose ()) ~game:report.Service.game
      ~strategy_x:report.Service.strategy_x
      ~strategy_y:report.Service.strategy_y
  with
  | Ok s -> (report, s)
  | Error e -> Alcotest.failf "publish failed: %s" e

let expect_error label = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected an error" label

let test_happy_path () =
  let report, s = published_session () in
  let ( >>= ) r f = Result.bind r f in
  let result =
    Protocol.verify s Protocol.Party_x
    >>= fun s ->
    Protocol.verify s Protocol.Party_y
    >>= fun s ->
    Protocol.commit s Protocol.Party_x
      ~claim:(Strategy.apply report.Service.strategy_x 0.5)
    >>= fun s ->
    Protocol.commit s Protocol.Party_y
      ~claim:(Strategy.apply report.Service.strategy_y 0.3)
    >>= Protocol.settle
  in
  match result with
  | Error e -> Alcotest.fail e
  | Ok s -> (
      match Protocol.settlement s with
      | Some r -> Alcotest.(check bool) "settled" true (r.Protocol.concluded || not r.Protocol.concluded)
      | None -> Alcotest.fail "no settlement after settle")

let test_dishonest_service_rejected () =
  let report, _ = published_session () in
  (* swap in a non-equilibrium strategy: truthful rounding generally is
     not one *)
  let fake =
    Strategy.truthful_rounding report.Service.game.Game.claims_x
  in
  expect_error "non-equilibrium publish"
    (Protocol.publish (Protocol.propose ()) ~game:report.Service.game
       ~strategy_x:fake ~strategy_y:report.Service.strategy_y)

let test_commit_before_verification_rejected () =
  let report, s = published_session () in
  expect_error "commit before both verified"
    (Protocol.commit s Protocol.Party_x
       ~claim:(Strategy.apply report.Service.strategy_x 0.5));
  match Protocol.verify s Protocol.Party_x with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* still only one verification *)
      expect_error "commit with one verification"
        (Protocol.commit s Protocol.Party_x
           ~claim:(Strategy.apply report.Service.strategy_x 0.5))

let test_foreign_claim_rejected () =
  let _, s = published_session () in
  let s =
    Result.get_ok (Protocol.verify s Protocol.Party_x) |> fun s ->
    Result.get_ok (Protocol.verify s Protocol.Party_y)
  in
  expect_error "claim outside the choice set"
    (Protocol.commit s Protocol.Party_x ~claim:123.456)

let test_double_commit_rejected () =
  let report, s = published_session () in
  let s =
    Result.get_ok (Protocol.verify s Protocol.Party_x) |> fun s ->
    Result.get_ok (Protocol.verify s Protocol.Party_y)
  in
  let claim = Strategy.apply report.Service.strategy_x 0.5 in
  let s = Result.get_ok (Protocol.commit s Protocol.Party_x ~claim) in
  expect_error "double commit" (Protocol.commit s Protocol.Party_x ~claim)

let test_settle_requires_both () =
  let report, s = published_session () in
  let s =
    Result.get_ok (Protocol.verify s Protocol.Party_x) |> fun s ->
    Result.get_ok (Protocol.verify s Protocol.Party_y)
  in
  expect_error "settle with no claims" (Protocol.settle s);
  let s =
    Result.get_ok
      (Protocol.commit s Protocol.Party_x
         ~claim:(Strategy.apply report.Service.strategy_x 0.5))
  in
  expect_error "settle with one claim" (Protocol.settle s)

let test_abort () =
  let _, s = published_session () in
  let s = Protocol.abort s ~reason:"changed my mind" in
  (match Protocol.state s with
  | Protocol.Aborted _ -> ()
  | _ -> Alcotest.fail "not aborted");
  expect_error "no verify after abort" (Protocol.verify s Protocol.Party_x)

let test_run_honest_matches_direct_play () =
  (* the protocol's end-to-end result must equal playing the game
     directly with the same service configuration *)
  let u_x = 0.62 and u_y = -0.18 in
  let direct =
    let rng = Rng.create 4 in
    let report = Service.negotiate ~rng ~dist_x:u1 ~dist_y:u1 ~w:15 () in
    Game.play report.Service.game ~strategy_x:report.Service.strategy_x
      ~strategy_y:report.Service.strategy_y ~u_x ~u_y
  in
  match
    Protocol.run_honest ~rng:(Rng.create 4) ~dist_x:u1 ~dist_y:u1 ~w:15 ~u_x
      ~u_y
  with
  | Error e -> Alcotest.fail e
  | Ok via_protocol ->
      Alcotest.(check bool) "same outcome" true (direct = via_protocol)

let test_run_honest_rationality () =
  (* over several sessions, after-negotiation utilities are never
     negative (Thm 1 carried through the protocol) *)
  let rng = Rng.create 31 in
  for seed = 1 to 10 do
    let u_x = Distribution.sample u1 rng in
    let u_y = Distribution.sample u1 rng in
    match
      Protocol.run_honest ~rng:(Rng.create seed) ~dist_x:u1 ~dist_y:u1 ~w:12
        ~u_x ~u_y
    with
    | Error e -> Alcotest.fail e
    | Ok Game.Cancelled -> ()
    | Ok (Game.Concluded { u_x_after; u_y_after; _ }) ->
        Alcotest.(check bool) "rational" true
          (u_x_after >= -1e-9 && u_y_after >= -1e-9)
  done

let suite =
  [
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "dishonest service rejected" `Quick
      test_dishonest_service_rejected;
    Alcotest.test_case "commit before verification rejected" `Quick
      test_commit_before_verification_rejected;
    Alcotest.test_case "foreign claim rejected" `Quick
      test_foreign_claim_rejected;
    Alcotest.test_case "double commit rejected" `Quick
      test_double_commit_rejected;
    Alcotest.test_case "settle requires both claims" `Quick
      test_settle_requires_both;
    Alcotest.test_case "abort" `Quick test_abort;
    Alcotest.test_case "run_honest = direct play" `Quick
      test_run_honest_matches_direct_play;
    Alcotest.test_case "run_honest rationality" `Quick
      test_run_honest_rationality;
  ]
