Observability flags: --metrics FILE and --trace FILE (``-`` = stdout).
Under PANAGREE_VCLOCK the CLI uses a virtual clock that is never advanced,
so every duration is exactly zero and the snapshot is byte-stable — for
repeated runs and (modulo engine-internal pool.* metrics) across --jobs.

  $ export OCAMLRUNPARAM=b
  $ export PANAGREE_VCLOCK=0

Repeated runs emit byte-identical metrics and traces:

  $ panagree fig3 --jobs 2 --transit 25 --stubs 80 --sample-size 20 \
  >   --metrics m.run1 --trace t.run1 > out.run1
  $ panagree fig3 --jobs 2 --transit 25 --stubs 80 --sample-size 20 \
  >   --metrics m.run2 --trace t.run2 > out.run2
  $ cmp out.run1 out.run2
  $ cmp m.run1 m.run2
  $ cmp t.run1 t.run2

Counters and histogram shapes (not the engine-internal pool.* metrics)
are identical for any pool size:

  $ panagree fig3 --jobs 4 --transit 25 --stubs 80 --sample-size 20 \
  >   --metrics m.j4 --trace t.j4 > /dev/null
  $ grep -v '"pool\.' m.run1 > m.run1.nopool
  $ grep -v '"pool\.' m.j4 > m.j4.nopool
  $ cmp m.run1.nopool m.j4.nopool
  $ cmp t.run1 t.j4

The snapshot itself: sorted keys, per-scenario path counters, and the
per-chunk duration histogram with one sample per chunk (20 sources in
chunks of 8 -> 3 chunks; all durations land in the zero-width "-inf"
bucket under the frozen clock):

  $ grep -A 99 '"counters"' m.run1 | sed -n '1,/},/p'
    "counters": {
      "diversity.dests.GRC": 1681,
      "diversity.dests.MA": 2141,
      "diversity.dests.MA*": 2081,
      "diversity.dests.MA* (Top 1)": 1928,
      "diversity.dests.MA* (Top 2)": 2020,
      "diversity.dests.MA* (Top 5)": 2081,
      "diversity.paths.GRC": 2550,
      "diversity.paths.MA": 9592,
      "diversity.paths.MA*": 9010,
      "diversity.paths.MA* (Top 1)": 3694,
      "diversity.paths.MA* (Top 2)": 4738,
      "diversity.paths.MA* (Top 5)": 6701,
      "diversity.sources": 20,
      "path_enum.compact": 120,
      "pool.created": 1,
      "pool.jobs": 3,
      "runner.chunks": 3,
      "runner.items": 20,
      "topology.compact.ases": 117,
      "topology.compact.p2c_links": 165,
      "topology.compact.p2p_links": 746,
      "topology.freeze": 1
    },
  $ grep -A 6 '"runner.chunk"' m.run1
      "runner.chunk": {"count": 3, "buckets": {"-inf": 3}},
      "span.diversity/analyze": {"count": 1, "buckets": {"-inf": 1}},
      "span.diversity/enumerate": {"count": 1, "buckets": {"-inf": 1}},
      "span.diversity/sample": {"count": 1, "buckets": {"-inf": 1}},
      "span.topology.freeze": {"count": 1, "buckets": {"-inf": 1}}
    }
  }

The trace is one JSON object per line, durations frozen at zero:

  $ cat t.run1
  {"name":"diversity/analyze","depth":0,"start":0,"duration":0}
  {"name":"topology.freeze","depth":1,"start":0,"duration":0}
  {"name":"diversity/sample","depth":1,"start":0,"duration":0}
  {"name":"diversity/enumerate","depth":1,"start":0,"duration":0}

--metrics - streams to stdout after the figure output:

  $ panagree methods --jobs 2 --scenarios 4 --seed 3 --metrics - \
  >   | grep -c 'methods.scenarios'
  1
