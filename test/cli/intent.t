Intent engine CLI: ``panagree paths`` ranks K-shortest-path candidates
between two ASes under a path intent (composite metric, hard
constraints, candidate budget K) over the frozen compact core, and
``panagree serve`` accepts the same intents — as an ``intent`` stream
verb and as ``--intent`` for generated streams.  Transcripts are
byte-stable for every --jobs value, with or without injected faults.

Ranked candidates for a simple latency intent; the direct peering wins,
then middles in score order:

  $ panagree paths 8 12 --transit 6 --stubs 20 --intent 'metric=latency; k=3'
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  AS8 -> AS12 [intent metric=latency; k=3]: 3 candidates
    AS8 AS12 (score 11575, hops 2)
    AS8 AS1 AS12 (score 13305.2, hops 3)
    AS8 AS2 AS12 (score 18240.9, hops 3)

--intent defaults to the single-candidate minimum-latency intent:

  $ panagree paths 8 12 --transit 6 --stubs 20
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  AS8 -> AS12 [intent metric=latency; k=1]: 1 candidate
    AS8 AS12 (score 11575, hops 2)

A composite weighted metric re-ranks: the direct path rides a
low-capacity link, so with a bandwidth term it drops behind two
three-hop candidates:

  $ panagree paths 8 12 --transit 6 --stubs 20 \
  >   --intent 'metric=nlatency+2*nbandwidth; k=4; max-hops=3'
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  AS8 -> AS12 [intent metric=nlatency+2*nbandwidth; k=4; max-hops=3]: 4 candidates
    AS8 AS1 AS12 (score 25.4264, hops 3)
    AS8 AS3 AS12 (score 26.135, hops 3)
    AS8 AS12 (score 26.7265, hops 2)
    AS8 AS2 AS12 (score 33.3924, hops 3)

Hard constraints mask the subgraph; exclusions print normalized
(endpoints ordered, lists sorted) in the echoed canonical intent:

  $ panagree paths 8 12 --transit 6 --stubs 20 \
  >   --intent 'metric=latency; k=3; exclude-link=AS8-AS12, AS8-AS1'
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  AS8 -> AS12 [intent metric=latency; k=3; exclude-link=AS1-AS8,AS8-AS12]: 3 candidates
    AS8 AS3 AS12 (score 12149, hops 3)
    AS8 AS4 AS12 (score 12744.5, hops 3)
    AS8 AS2 AS12 (score 18240.9, hops 3)

Malformed intent specs are rejected at option parse time with 1-based
line/column diagnostics:

  $ panagree paths 8 12 --transit 6 --stubs 20 --intent 'metric=latency; k=0'
  panagree: option '--intent': line 1, col 19: k must be >= 1, got 0
  Usage: panagree paths [OPTION]… SRC DST
  Try 'panagree paths --help' or 'panagree --help' for more information.
  [124]

  $ panagree paths 8 12 --transit 6 --stubs 20 --intent 'metric=latency+speed'
  panagree: option '--intent': line 1, col 16: unknown metric component "speed"
            (expected latency, nlatency, bandwidth, nbandwidth or hops)
  Usage: panagree paths [OPTION]… SRC DST
  Try 'panagree paths --help' or 'panagree --help' for more information.
  [124]

Unknown endpoints fail loudly after the topology is built:

  $ panagree paths 8 999 --transit 6 --stubs 20
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  panagree: paths: destination AS999 is not in the topology
  [1]

--probe walks the ranked list with failover: under an injected fault
spec each link's outage is a pure function of (spec, link), so the
failover trace is deterministic; without a spec the best candidate
wins immediately:

  $ panagree paths 8 12 --transit 6 --stubs 20 \
  >   --intent 'metric=latency; k=4' --probe --faults rate=0.6,seed=4
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  AS8 -> AS12 [intent metric=latency; k=4]: 4 candidates
    AS8 AS12 (score 11575, hops 2)
    AS8 AS3 AS12 (score 12149, hops 3)
    AS8 AS1 AS12 (score 13305.2, hops 3)
    AS8 AS2 AS12 (score 18240.9, hops 3)
  probe 1: AS8 AS12 failed (link AS8-AS12 down)
  probe 2: AS8 AS3 AS12 ok
  selected: AS8 AS3 AS12

  $ panagree paths 8 12 --transit 6 --stubs 20 \
  >   --intent 'metric=latency; k=4' --probe | tail -2
  probe 1: AS8 AS12 ok
  selected: AS8 AS12

The serve stream takes ``intent`` items beside policy queries.  Churn
invalidates the intent store surgically: downing the direct link drops
only the cached answers that ride it (the re-ask loses exactly the
direct candidate), and healing it flushes so the direct path returns:

  $ cat > mix.stream <<'EOF'
  > # policy and intent queries share the drain; churn hits both stores
  > query AS8 AS12 ma-all
  > intent AS8 AS12 metric=latency; k=3
  > down peer AS8 AS12
  > intent AS8 AS12 metric=latency; k=3
  > up peer AS8 AS12
  > intent AS8 AS12 metric=latency; k=3
  > EOF
  $ panagree serve --transit 6 --stubs 20 --stream mix.stream --oracle
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  # stream mix.stream: 6 items
  AS8 -> AS12 [ma-all]: 10 paths via AS1, AS2, AS3, AS4, AS5, AS6, AS7, AS9, AS10, AS11
  AS8 -> AS12 [intent metric=latency; k=3]: 3 candidates
    AS8 AS12 (score 11575, hops 2)
    AS8 AS1 AS12 (score 13305.2, hops 3)
    AS8 AS2 AS12 (score 18240.9, hops 3)
  link down peer AS8 -- AS12: invalidated 2 store entries
  AS8 -> AS12 [intent metric=latency; k=3]: 3 candidates
    AS8 AS3 AS12 (score 12149, hops 3)
    AS8 AS1 AS12 (score 13305.2, hops 3)
    AS8 AS2 AS12 (score 18240.9, hops 3)
  link up peer AS8 -- AS12: invalidated 1 store entry
  AS8 -> AS12 [intent metric=latency; k=3]: 3 candidates
    AS8 AS12 (score 11575, hops 2)
    AS8 AS1 AS12 (score 13305.2, hops 3)
    AS8 AS2 AS12 (score 18240.9, hops 3)
  # served 4 queries (0 store hits, 4 misses), 2 events, 3 invalidations
  # transcript fingerprint efdb68c1b8b3c393399c23e27c773873

A bad intent spec inside a stream line is reported with the 1-based
column within that line (the spec tail starts after the endpoints):

  $ cat > bad.stream <<'EOF'
  > query AS1 AS2 ma-all
  > intent AS3 AS4 metric=latency; k=oops
  > EOF
  $ panagree serve --transit 6 --stubs 20 --stream bad.stream
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  panagree: Stream.parse: line 2: intent spec (col 34): expected an integer k, got "oops"
  [1]

Generated all-intent streams (--intent) drain byte-identically at any
pool size and under injected faults with retries — intent answers are
computed on the sequential pass, never through the pool:

  $ panagree serve --transit 10 --stubs 40 --requests 40 --churn 0.2 \
  >   --intent 'metric=nlatency+nbandwidth; k=2' > int.j1
  $ panagree serve --transit 10 --stubs 40 --requests 40 --churn 0.2 \
  >   --intent 'metric=nlatency+nbandwidth; k=2' --jobs 4 > int.j4
  $ cmp int.j1 int.j4
  $ panagree serve --transit 10 --stubs 40 --requests 40 --churn 0.2 \
  >   --intent 'metric=nlatency+nbandwidth; k=2' --jobs 4 \
  >   --faults rate=0.4,seed=9 --retries 6 > int.f4
  $ cmp int.j1 int.f4
  $ tail -2 int.j1
  # served 30 queries (0 store hits, 30 misses), 10 events, 26 invalidations
  # transcript fingerprint ad2f266a7978a84b3507fa84a47cea2d
