Structural metrics of the default synthetic topology (reduced size):

  $ panagree topology --transit 30 --stubs 100
  # synthetic topology (seed 42): 142 ASes, 202 provider-customer links, 1032 peering links
  142 ASes; 202 p2c + 1032 p2p links (peering share 0.84); degree mean 17.4, p99 81, max 84; hierarchy depth 4; 12 provider-less ASes
  compact core: 142 ASes interned, 202 provider-customer + 1032 peering links (CSR)
  largest customer cones:
    AS1: 78 ASes
    AS3: 48 ASes
    AS2: 40 ASes
    AS12: 33 ASes
    AS18: 33 ASes
    AS10: 30 ASes
    AS5: 27 ASes
    AS13: 26 ASes
    AS6: 25 ASes
    AS37: 21 ASes
