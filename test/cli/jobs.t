The parallel experiment engine assigns randomness per chunk index, so any
--jobs value must produce byte-identical output.  Run each equivalence pair
with backtraces enabled to surface worker-domain crashes.

  $ export OCAMLRUNPARAM=b

Fig. 2 (BOSCO trials):

  $ panagree fig2 --jobs 1 --trials 6 --ws 2,5 --seed 3 > fig2.j1
  $ panagree fig2 --jobs 4 --trials 6 --ws 2,5 --seed 3 > fig2.j4
  $ cmp fig2.j1 fig2.j4

Fig. 3/4 (path diversity on a reduced topology):

  $ panagree fig3 --jobs 1 --transit 25 --stubs 80 --sample-size 30 > fig3.j1
  $ panagree fig3 --jobs 4 --transit 25 --stubs 80 --sample-size 30 > fig3.j4
  $ cmp fig3.j1 fig3.j4

Methods comparison (cash vs. future-value scenarios):

  $ panagree methods --jobs 1 --scenarios 12 --seed 5 > methods.j1
  $ panagree methods --jobs 4 --scenarios 12 --seed 5 > methods.j4
  $ cmp methods.j1 methods.j4

--jobs must be positive:

  $ panagree fig2 --jobs 0 --trials 1 --ws 2
  panagree: option '--jobs': invalid value '0' (expected an integer >= 1)
  Usage: panagree fig2 [OPTION]…
  Try 'panagree fig2 --help' or 'panagree --help' for more information.
  [124]
