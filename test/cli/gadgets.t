The §II stability comparison is fully deterministic, so its output is a
stable contract of the CLI:

  $ panagree gadgets
  # BGP (SPVP) on gadget policy configurations
  instance           round-robin outcome                           stable   deterministic  wheel
  DISAGREE           converged after 4 activations                 2        false          true
  GOOD GADGET        converged after 6 activations                 1        true           false
  BAD GADGET         oscillation with period 4 detected after 15 activations 0        false          true
  WEDGIE             converged after 6 activations                 2        false          true
  Fig.1 DISAGREE     converged after 6 activations                 2        false          true
  Fig.1 BAD GADGET   oscillation with period 4 detected after 20 activations 0        false          true
  # SURPRISE: a benign configuration until a link fails
    before failure: converged after 12 activations (dispute wheel hidden: true)
    after failing link 4-0: oscillation with period 4 detected after 20 activations (stable solutions: 0)
  # message-passing SPVP (async): livelock probes over 10 schedules
  instance           global-FIFO delivery                     livelock found
  DISAGREE           no quiescence within 20000 messages      true
  GOOD GADGET        quiesced after 6 messages                false
  BAD GADGET         no quiescence within 20000 messages      true
  # PAN forwarding along GRC-violating paths (Fig.1)
  path                       delivered  loop-free
  4-5-2                      true       true
  8-4-5-2                    true       true
  5-4-1                      true       true
  3-4-5                      true       true
  4-5-6                      true       true
