Resident path-query service: ``panagree serve`` drains a query/churn
stream over the incrementally-updated frozen core, answering from a
per-pair memoized store and invalidating on link up/down.  Transcripts
are byte-stable for every --jobs value, with or without injected
faults, and --oracle shadow-checks the incremental freeze against a
full re-freeze after every event.

A hand-written stream file: warm a pair, take down a peering link it
rides, re-ask, heal the link, re-ask.  The oracle stays silent (the
incremental core never diverges from re-freeze):

  $ cat > ask.stream <<'EOF'
  > # warm the pair, churn the link it rides, re-ask, heal, re-ask
  > query AS8 AS12 ma-all
  > down peer AS4 AS8
  > query AS8 AS12 ma-all
  > up peer AS4 AS8
  > query AS8 AS12 ma-all
  > EOF
  $ panagree serve --transit 6 --stubs 20 --stream ask.stream --oracle \
  >   --mode incremental
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  # stream ask.stream: 5 items
  AS8 -> AS12 [ma-all]: 10 paths via AS1, AS2, AS3, AS4, AS5, AS6, AS7, AS9, AS10, AS11
  link down peer AS4 -- AS8: invalidated 1 store entry
  AS8 -> AS12 [ma-all]: 9 paths via AS1, AS2, AS3, AS5, AS6, AS7, AS9, AS10, AS11
  link up peer AS4 -- AS8: invalidated 1 store entry
  AS8 -> AS12 [ma-all]: 10 paths via AS1, AS2, AS3, AS4, AS5, AS6, AS7, AS9, AS10, AS11
  # served 3 queries (0 store hits, 3 misses), 2 events, 2 invalidations
  # transcript fingerprint 8d3b79a36b06ebd7f0d3afd1ba57489b

--mode refreeze rebuilds the core from the mutable mirror after every
event instead of splicing CSR rows; the bytes must not change:

  $ panagree serve --transit 6 --stubs 20 --stream ask.stream \
  >   --mode incremental > ask.inc
  $ panagree serve --transit 6 --stubs 20 --stream ask.stream \
  >   --mode refreeze > ask.refreeze
  $ cmp ask.inc ask.refreeze

A generated stream (--requests/--churn) is byte-identical at any pool
size, and under injected faults with retries:

  $ panagree serve --transit 10 --stubs 40 --requests 60 --churn 0.2 > gen.j1
  $ panagree serve --transit 10 --stubs 40 --requests 60 --churn 0.2 \
  >   --jobs 4 > gen.j4
  $ cmp gen.j1 gen.j4
  $ panagree serve --transit 10 --stubs 40 --requests 60 --churn 0.2 \
  >   --jobs 4 --faults rate=0.4,seed=9 --retries 6 > gen.f4
  $ cmp gen.j1 gen.f4
  $ tail -2 gen.j1
  # served 41 queries (0 store hits, 41 misses), 19 events, 36 invalidations
  # transcript fingerprint fea73a6506e03d1ae77f40f701765603

The service is instrumented: the metrics snapshot counts queries,
store traffic and invalidations, and carries a serve.query latency
histogram (the virtual clock keeps the snapshot byte-stable):

  $ PANAGREE_VCLOCK=0 panagree serve --transit 6 --stubs 20 \
  >   --stream ask.stream --metrics m.json > /dev/null
  $ grep -o '"serve\.[a-z_]*": [0-9][0-9]*' m.json
  "serve.events": 2
  "serve.invalidations": 2
  "serve.queries": 3
  "serve.store_misses": 3
  $ grep -c '"serve.query"' m.json
  1

A stream naming an AS outside the topology, or a malformed policy,
fails with a parse-located message and exit code 1:

  $ cat > bad.stream <<'EOF'
  > query AS8 AS999 ma-all
  > EOF
  $ panagree serve --transit 6 --stubs 20 --stream bad.stream
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  # stream bad.stream: 1 items
  panagree: Serve.run: destination AS999 is not in the topology
  [1]
  $ cat > badpolicy.stream <<'EOF'
  > query AS8 AS12 shortest
  > EOF
  $ panagree serve --transit 6 --stubs 20 --stream badpolicy.stream
  # synthetic topology (seed 42): 38 ASes, 38 provider-customer links, 128 peering links
  panagree: Stream.parse: line 1: unknown policy "shortest" (expected grc, ma-all, ma-direct or ma-top:N)
  [1]

``panagree validate-bench`` rejects files that do not parse as bench
snapshots:

  $ echo 'not json' > BENCH_bogus.json
  $ panagree validate-bench BENCH_bogus.json
  BENCH_bogus.json: INVALID: bad literal null at offset 0
  [1]
