Versioned topology snapshots: ``topology snapshot`` freezes the topology
and writes a checksummed binary bundle (core CSR + geo + bandwidth
sections); ``--snapshot`` reloads it without re-parsing or re-freezing.

  $ export PANAGREE_VCLOCK=0

  $ panagree topology snapshot --transit 30 --stubs 100 --out topo.snap
  # synthetic topology (seed 42): 142 ASes, 202 provider-customer links, 1032 peering links
  wrote topo.snap (67390 bytes): 142 ASes interned, 202 provider-customer + 1032 peering links (CSR); geo + bandwidth sections included

  $ panagree topology --snapshot topo.snap
  # loaded snapshot topo.snap: 142 ASes interned, 202 provider-customer + 1032 peering links (CSR)
  geo section: 142 AS locations, 1234 link locations
  bandwidth section: coefficient 1

Loading is observable and byte-stable: under the virtual clock two loads
emit identical metrics snapshots, with the snapshot counters visible:

  $ panagree topology --snapshot topo.snap --metrics m.run1 > /dev/null
  $ panagree topology --snapshot topo.snap --metrics m.run2 > /dev/null
  $ cmp m.run1 m.run2
  $ grep 'topology.snapshot' m.run1
      "topology.snapshot.ases": 142,
      "topology.snapshot.load": 1

Stale or damaged snapshots are rejected loudly, never decoded.  A flipped
format-version byte:

  $ cp topo.snap stale.snap
  $ printf '\377' | dd of=stale.snap bs=1 seek=8 count=1 conv=notrunc status=none
  $ panagree topology --snapshot stale.snap
  panagree: Compact.Snapshot.load: unsupported format version 255 (this build reads version 1)
  [1]

A corrupted payload byte fails the checksum:

  $ cp topo.snap corrupt.snap
  $ printf '\377' | dd of=corrupt.snap bs=1 seek=50 count=1 conv=notrunc status=none
  $ panagree topology --snapshot corrupt.snap
  panagree: Compact.Snapshot.load: checksum mismatch (corrupt snapshot payload in bytes 40..67389)
  [1]

A truncated file is caught by the declared payload length, reporting
where the file actually ends:

  $ head -c 100 topo.snap > trunc.snap
  $ panagree topology --snapshot trunc.snap
  panagree: Compact.Snapshot.load: truncated payload (header declares 67350 bytes, file ends at byte offset 100)
  [1]
