MA negotiation marketplace: ``panagree market`` enumerates candidate
pairs over the frozen core, negotiates them concurrently (the results
are chunk-deterministic), and splices each epoch's signed agreements
back into the core, reshaping the next epoch's candidate set.

A small two-epoch run, with the delta oracle shadow-checking every
epoch's incremental splice against a from-scratch freeze.  Pinned
byte-for-byte — the fingerprint digests the exact negotiation
transcript (hex-float utilities, PoD, rounds), so any numeric drift
shows up here:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --oracle
  # synthetic topology (seed 7): 38 ASes, 39 provider-customer links, 151 peering links
  epoch 1: 12 candidates, 11 viable, 11 signed, welfare 42.934, PoD 0.280, 71 new MA paths, 0 invalidated
  epoch 2: 12 candidates, 9 viable, 9 signed, welfare 35.866, PoD 0.229, 104 new MA paths, 11 invalidated
  market: 24 pairs scored, 20 negotiations, 20 agreements signed, total welfare 78.800
  delta oracle: ok
  transcript fingerprint 9bf2825897de6d69c4cacef0f02856d4

The run is byte-identical at any pool size, with any chunk size, and
under injected faults with retries (retried chunks replay their
deterministic split):

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 > m.j1
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --jobs 4 > m.j4
  $ cmp m.j1 m.j4
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --chunk 3 > m.c3
  $ cmp m.j1 m.c3
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --jobs 4 --faults rate=0.3,seed=9 --retries 8 \
  >   > m.f4
  $ cmp m.j1 m.f4

The marketplace counters are sharded per domain and merged
order-independently, so the metrics snapshot is stable too:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 3 -w 6 \
  >   --max-candidates 12 --metrics - 2>/dev/null | grep '"market\.'
      "market.candidates.enumerated": 1192,
      "market.candidates.kept": 36,
      "market.epochs": 3,
      "market.negotiations": 22,
      "market.pairs": 36,
      "market.rounds": 275,
      "market.signed": 22,
      "market.viable": 22,

``--mechanism both`` runs the Nash-Peering global-bargaining qualifier
alongside BOSCO on a shared epoch snapshot, identical candidate streams
and identical pair-keyed randomness: the per-epoch comparison record
(agreement counts, welfare, mean Price of Dishonesty of each arm) is
attributable to the mechanism, never to noise.  The outcome transcript
and the comparison lines share one fingerprint, pinned here:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --mechanism both --oracle
  # synthetic topology (seed 7): 38 ASes, 39 provider-customer links, 151 peering links
  mechanism: both (theta 0.50)
  epoch 1: 12 candidates, 11 viable, 11 signed, welfare 42.934, PoD 0.280, 71 new MA paths, 0 invalidated
    mechanisms: bosco 11 signed, welfare 42.934, PoD 0.280 | nash-peering 6 qualified, 6 signed, welfare 33.337, PoD 0.303
  epoch 2: 12 candidates, 9 viable, 9 signed, welfare 35.866, PoD 0.229, 104 new MA paths, 11 invalidated
    mechanisms: bosco 9 signed, welfare 35.866, PoD 0.229 | nash-peering 3 qualified, 3 signed, welfare 24.486, PoD 0.226
  market: 24 pairs scored, 20 negotiations, 20 agreements signed, total welfare 78.800
  delta oracle: ok
  transcript fingerprint 4234b34ed25ba5d7cda8aa1c1deb5728

The comparison is byte-identical at j=1/2/4 and with a different chunk
size:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --mechanism both > mech.j1
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --mechanism both --jobs 2 > mech.j2
  $ cmp mech.j1 mech.j2
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --mechanism both --jobs 4 --chunk 3 > mech.j4
  $ cmp mech.j1 mech.j4

``--mechanism nash-peering`` feeds only the qualifier's survivors into
the BOSCO path; the splice applies their signings, so the epoch loop
evolves the nash-peering topology (epoch 1 matches the counterfactual
nash arm above, later epochs diverge):

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --mechanism nash-peering --oracle
  # synthetic topology (seed 7): 38 ASes, 39 provider-customer links, 151 peering links
  mechanism: nash-peering (theta 0.50)
  epoch 1: 6/12 candidates qualified
  epoch 1: 12 candidates, 6 viable, 6 signed, welfare 33.337, PoD 0.303, 22 new MA paths, 0 invalidated
  epoch 2: 5/12 candidates qualified
  epoch 2: 12 candidates, 5 viable, 5 signed, welfare 25.500, PoD 0.322, 36 new MA paths, 6 invalidated
  market: 11 pairs scored, 11 negotiations, 11 agreements signed, total welfare 58.837
  delta oracle: ok
  transcript fingerprint c41ac6936d009dc0e2c6d3b011c1712d

Both-mode arm counters land in the metrics snapshot:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --mechanism both --metrics - 2>/dev/null \
  >   | grep '"market\.mech'
      "market.mech.bosco_signed": 20,
      "market.mech.nash_signed": 9,
      "market.mech.qualified": 9,

Out-of-range knobs are rejected at parse time, loudly and uniformly —
``--epochs 0`` or ``--max-candidates 0`` would otherwise silently run
an empty marketplace:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 0
  panagree: option '--epochs': invalid value '0' (expected an integer >= 1)
  Usage: panagree market [OPTION]…
  Try 'panagree market --help' or 'panagree --help' for more information.
  [124]
  $ panagree market --transit 6 --stubs 20 --seed 7 --max-candidates=-1
  panagree: option '--max-candidates': invalid value '-1' (expected an integer
            >= 1)
  Usage: panagree market [OPTION]…
  Try 'panagree market --help' or 'panagree --help' for more information.
  [124]
  $ panagree market --transit 6 --stubs 20 --seed 7 --mechanism frob
  panagree: option '--mechanism': invalid value 'frob', expected one of
            'bosco', 'nash-peering' or 'both'
  Usage: panagree market [OPTION]…
  Try 'panagree market --help' or 'panagree --help' for more information.
  [124]
