MA negotiation marketplace: ``panagree market`` enumerates candidate
pairs over the frozen core, negotiates them concurrently (the results
are chunk-deterministic), and splices each epoch's signed agreements
back into the core, reshaping the next epoch's candidate set.

A small two-epoch run, with the delta oracle shadow-checking every
epoch's incremental splice against a from-scratch freeze.  Pinned
byte-for-byte — the fingerprint digests the exact negotiation
transcript (hex-float utilities, PoD, rounds), so any numeric drift
shows up here:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --oracle
  # synthetic topology (seed 7): 38 ASes, 39 provider-customer links, 151 peering links
  epoch 1: 12 candidates, 11 viable, 11 signed, welfare 42.934, PoD 0.280, 71 new MA paths, 0 invalidated
  epoch 2: 12 candidates, 9 viable, 9 signed, welfare 35.866, PoD 0.229, 104 new MA paths, 11 invalidated
  market: 24 pairs scored, 20 negotiations, 20 agreements signed, total welfare 78.800
  delta oracle: ok
  transcript fingerprint 9bf2825897de6d69c4cacef0f02856d4

The run is byte-identical at any pool size, with any chunk size, and
under injected faults with retries (retried chunks replay their
deterministic split):

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 > m.j1
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --jobs 4 > m.j4
  $ cmp m.j1 m.j4
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --chunk 3 > m.c3
  $ cmp m.j1 m.c3
  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 2 -w 6 \
  >   --max-candidates 12 --jobs 4 --faults rate=0.3,seed=9 --retries 8 \
  >   > m.f4
  $ cmp m.j1 m.f4

The marketplace counters are sharded per domain and merged
order-independently, so the metrics snapshot is stable too:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 3 -w 6 \
  >   --max-candidates 12 --metrics - 2>/dev/null | grep '"market\.'
      "market.candidates.enumerated": 1192,
      "market.candidates.kept": 36,
      "market.epochs": 3,
      "market.negotiations": 22,
      "market.pairs": 36,
      "market.rounds": 275,
      "market.signed": 22,
      "market.viable": 22,

Config validation fails loudly before any work happens:

  $ panagree market --transit 6 --stubs 20 --seed 7 --epochs 0
  # synthetic topology (seed 7): 38 ASes, 39 provider-customer links, 151 peering links
  panagree: Market.run: epochs < 1
  [1]
