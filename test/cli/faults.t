Deterministic fault injection (--faults / PANAGREE_FAULTS) with bounded
retry (--retries): a run that recovers from injected faults must be
byte-identical to the fault-free run, at any --jobs value, because every
retried chunk replays a fresh copy of its split generator.

  $ panagree fig2 --trials 6 --ws 2,5 --seed 3 > fig2.base

Injected faults plus retries, sequentially and on 4 domains:

  $ panagree fig2 --trials 6 --ws 2,5 --seed 3 \
  >   --faults rate=0.5,seed=3 --retries 6 > fig2.f1
  $ cmp fig2.base fig2.f1
  $ panagree fig2 --trials 6 --ws 2,5 --seed 3 --jobs 4 \
  >   --faults rate=0.5,seed=3 --retries 6 > fig2.f4
  $ cmp fig2.base fig2.f4

The recovery is real, not vacuous: the metrics snapshot counts the
injections and the retries that absorbed them, and injection decisions
are a pure function of (seed, chunk, attempt), so the counts are the
same for every pool size (the virtual clock keeps the snapshot itself
deterministic):

  $ PANAGREE_VCLOCK=0 panagree fig2 --trials 6 --ws 2,5 --seed 3 \
  >   --faults rate=0.5,seed=3 --retries 6 --metrics metrics.json > /dev/null
  $ grep -o '"fault.injected": [0-9]*' metrics.json
  "fault.injected": 4
  $ grep -o '"runner.retries": [0-9]*' metrics.json
  "runner.retries": 4
  $ grep -o '"runner.chunks_recovered": [0-9]*' metrics.json
  "runner.chunks_recovered": 4
  $ PANAGREE_VCLOCK=0 panagree fig2 --trials 6 --ws 2,5 --seed 3 --jobs 4 \
  >   --faults rate=0.5,seed=3 --retries 6 --metrics metrics.j4.json > /dev/null
  $ grep -o '"fault.injected": [0-9]*' metrics.j4.json
  "fault.injected": 4

The PANAGREE_FAULTS environment variable is equivalent to --faults:

  $ PANAGREE_FAULTS=rate=0.5,seed=3 panagree fig2 --trials 6 --ws 2,5 \
  >   --seed 3 --retries 6 > fig2.env
  $ cmp fig2.base fig2.env

Without retries an injected fault escapes, and its printer renders the
(chunk, attempt) coordinates deterministically:

  $ panagree fig2 --trials 6 --ws 2 --seed 3 --faults rate=1,seed=1 2>&1 \
  >   | head -2
  panagree: internal error, uncaught exception:
            Fault.Injected(chunk=0, attempt=1)

Malformed specs are rejected up front:

  $ panagree fig2 --trials 1 --ws 2 --faults rate=2
  panagree: option '--faults': rate must be in [0,1], got 2
  Usage: panagree fig2 [OPTION]…
  Try 'panagree fig2 --help' or 'panagree --help' for more information.
  [124]
  $ panagree fig2 --trials 1 --ws 2 --faults frequency=1
  panagree: option '--faults': unknown key "frequency"
  Usage: panagree fig2 [OPTION]…
  Try 'panagree fig2 --help' or 'panagree --help' for more information.
  [124]

--retries must be non-negative and --deadline positive:

  $ panagree fig2 --trials 1 --ws 2 --retries=-1
  panagree: option '--retries': invalid value '-1' (expected an integer >= 0)
  Usage: panagree fig2 [OPTION]…
  Try 'panagree fig2 --help' or 'panagree --help' for more information.
  [124]
  $ panagree fig2 --trials 1 --ws 2 --deadline 0
  panagree: option '--deadline': invalid value '0' (expected a number > 0)
  Usage: panagree fig2 [OPTION]…
  Try 'panagree fig2 --help' or 'panagree --help' for more information.
  [124]
