The fragility experiment (E13) is deterministic given its seed:

  $ panagree fragility --topologies 2
  # BGP fragility vs. density of GRC-violating agreements (E13)
  # (in a PAN, every case is stable by construction: the embedded path needs no convergence)
  density    cases      converged   oscillated   nondeterministic   dispute_wheel
  0.00       6          6           0            0                  0
  0.25       6          6           0            6                  6
  0.50       6          6           0            5                  6
  1.00       6          6           0            6                  6
