(* Runner instrumentation under a virtual clock.

   Two contracts are pinned down here.  First, the engine-level
   [runner.*] metrics (chunk count, item count, per-chunk duration
   histogram) merge to identical totals for every pool size, because the
   chunk decomposition — not the worker schedule — drives them.  Second,
   collecting metrics must not perturb the engine's determinism: every
   experiment result is bit-identical with observability on and off, and
   parallel(j) = sequential stays true while metrics are being recorded. *)

open Pan_numerics
open Pan_runner
open Pan_topology
open Pan_bosco
open Pan_experiments
open Pan_obs

let jobs = [ 1; 2; 4 ]

let small_graph =
  lazy
    (let params =
       { Gen.default_params with Gen.n_transit = 20; Gen.n_stub = 60 }
     in
     Gen.graph (Gen.generate ~params ~seed:42 ()))

(* Run [f] with a fresh virtual-clock context; return (result, metrics
   snapshot).  Always disables afterwards so suites stay independent. *)
let observed f =
  Obs.configure ~clock:(Clock.virtual_ ()) ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let r = f () in
      (r, Obs.metrics ()))

(* ------------------------------------------------------------------ *)
(* Per-chunk counters from Task                                        *)

let check_runner_counters name ~chunks ~items run =
  let check label pool =
    let _, m = observed (fun () -> run pool) in
    Alcotest.(check int)
      (Printf.sprintf "%s (%s): runner.chunks" name label)
      chunks
      (Metrics.counter m "runner.chunks");
    Alcotest.(check int)
      (Printf.sprintf "%s (%s): runner.items" name label)
      items
      (Metrics.counter m "runner.items");
    Alcotest.(check int)
      (Printf.sprintf "%s (%s): one duration sample per chunk" name label)
      chunks
      (Metrics.histogram_count m "runner.chunk")
  in
  check "seq" None;
  List.iter
    (fun j ->
      Pool.with_pool ~domains:j (fun pool ->
          check (Printf.sprintf "j=%d" j) (Some pool)))
    jobs

let test_map_reduce_counters () =
  (* n=100, chunk=7 → ceil(100/7) = 15 chunks *)
  check_runner_counters "map_reduce" ~chunks:15 ~items:100 (fun pool ->
      let rng = Rng.create 7 in
      Task.map_reduce ?pool ~rng ~n:100 ~chunk:7
        ~f:(fun crng i -> Rng.float crng +. (float_of_int i /. 1000.0))
        ~combine:( +. ) ~init:0.0 ())

let test_map_counters () =
  (* n=57, chunk=5 → ceil(57/5) = 12 chunks *)
  check_runner_counters "map" ~chunks:12 ~items:57 (fun pool ->
      Task.map ?pool ~chunk:5 ~n:57 ~f:(fun i -> i * i) ())

let test_empty_run_counters () =
  check_runner_counters "map_reduce n=0" ~chunks:0 ~items:0 (fun pool ->
      let rng = Rng.create 7 in
      Task.map_reduce ?pool ~rng ~n:0 ~chunk:4
        ~f:(fun _ i -> i)
        ~combine:( + ) ~init:41 ())

(* Shards really are written from several domains, and still merge to
   the same totals: the merged counter is the ground-truth item count. *)
let test_counters_merge_across_shards () =
  Pool.with_pool ~domains:4 (fun pool ->
      let _, m =
        observed (fun () ->
            Task.map_reduce ~pool ~rng:(Rng.create 1) ~n:96 ~chunk:3
              ~f:(fun _ i -> Obs.incr "work.units"; i)
              ~combine:( + ) ~init:0 ())
      in
      Alcotest.(check int) "user counter from chunk bodies" 96
        (Metrics.counter m "work.units");
      Alcotest.(check int) "runner.items agrees" 96
        (Metrics.counter m "runner.items"))

(* ------------------------------------------------------------------ *)
(* Metrics collection does not perturb determinism                     *)

(* [experiment pool] must return a structurally comparable value.  The
   plain (obs disabled) sequential run is the reference; the observed
   sequential and observed parallel runs must match it, and the
   experiment-level metric totals must be identical across pool sizes. *)
let check_obs_equivalence name experiment =
  Obs.disable ();
  let reference = experiment None in
  let seq_result, seq_metrics = observed (fun () -> experiment None) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: observed sequential = plain sequential" name)
    true (seq_result = reference);
  List.iter
    (fun j ->
      Pool.with_pool ~domains:j (fun pool ->
          let result, metrics = observed (fun () -> experiment (Some pool)) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: observed parallel(%d) = plain sequential"
               name j)
            true (result = reference);
          (* pool.* metrics are engine-internal and j-dependent; all
             others (runner.*, experiment counters, span durations) must
             merge to the same totals as the sequential run. *)
          let drop_pool m =
            List.filter
              (fun (n, _) -> not (String.starts_with ~prefix:"pool." n))
              (Metrics.bindings m)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: metric totals at j=%d = sequential" name j)
            true
            (drop_pool metrics = drop_pool seq_metrics)))
    jobs

let test_service_trials_observed () =
  let report_keys =
    List.map (fun (r : Service.report) ->
        ( r.Service.pod,
          r.Service.rounds,
          r.Service.converged,
          r.Service.equilibrium_choices_x,
          r.Service.equilibrium_choices_y ))
  in
  check_obs_equivalence "Service.trials" (fun pool ->
      let rng = Rng.create 5 in
      report_keys
        (Service.trials ?pool ~chunk:2 ~rng ~dist_x:Fig2_pod.u1
           ~dist_y:Fig2_pod.u1 ~w:6 ~n:10 ()))

let test_diversity_observed () =
  let g = Lazy.force small_graph in
  check_obs_equivalence "Diversity.analyze" (fun pool ->
      (Diversity.analyze ?pool ~sample_size:12 ~seed:7 g).Diversity.sampled)

let test_methods_observed () =
  check_obs_equivalence "Methods_exp.run" (fun pool ->
      Methods_exp.run ?pool ~chunk:2 ~scenarios:8 ~seed:3 ())

(* ------------------------------------------------------------------ *)
(* Experiment counters equal values recomputed from the result         *)

let test_diversity_counters_match_result () =
  let g = Lazy.force small_graph in
  Pool.with_pool ~domains:4 (fun pool ->
      let result, m =
        observed (fun () -> Diversity.analyze ~pool ~sample_size:12 ~seed:7 g)
      in
      let sampled = result.Diversity.sampled in
      Alcotest.(check int) "diversity.sources = |sampled|"
        (List.length sampled)
        (Metrics.counter m "diversity.sources");
      let total extract scenario =
        List.fold_left
          (fun acc pa ->
            acc + Option.value ~default:0 (List.assoc_opt scenario (extract pa)))
          0 sampled
      in
      List.iter
        (fun scenario ->
          let label = Path_enum.scenario_label scenario in
          Alcotest.(check int)
            (Printf.sprintf "diversity.paths.%s = recomputed total" label)
            (total (fun pa -> pa.Diversity.paths) scenario)
            (Metrics.counter m ("diversity.paths." ^ label));
          Alcotest.(check int)
            (Printf.sprintf "diversity.dests.%s = recomputed total" label)
            (total (fun pa -> pa.Diversity.destinations) scenario)
            (Metrics.counter m ("diversity.dests." ^ label)))
        result.Diversity.scenarios)

let test_methods_counters_match_result () =
  Pool.with_pool ~domains:2 (fun pool ->
      let r, m =
        observed (fun () ->
            Methods_exp.run ~pool ~chunk:2 ~scenarios:8 ~seed:3 ())
      in
      Alcotest.(check int) "methods.scenarios" r.Methods_exp.scenarios
        (Metrics.counter m "methods.scenarios");
      Alcotest.(check int) "methods.cash_concluded"
        r.Methods_exp.cash_concluded
        (Metrics.counter m "methods.cash_concluded");
      Alcotest.(check int) "methods.flow_volume_concluded"
        r.Methods_exp.flow_volume_concluded
        (Metrics.counter m "methods.flow_volume_concluded");
      Alcotest.(check int) "methods.cash_only" r.Methods_exp.cash_only
        (Metrics.counter m "methods.cash_only"))

(* ------------------------------------------------------------------ *)
(* Byte-stable snapshots under a never-advanced virtual clock          *)

let snapshot_string () =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Report.pp_metrics_json fmt (Obs.metrics ());
  Report.pp_spans_jsonl fmt (Obs.spans ());
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_snapshot_byte_stable () =
  let g = Lazy.force small_graph in
  let run j =
    Obs.configure ~clock:(Clock.virtual_ ()) ();
    Fun.protect ~finally:Obs.disable (fun () ->
        Pool.with_pool ~domains:j (fun pool ->
            ignore (Diversity.analyze ~pool ~sample_size:12 ~seed:7 g));
        snapshot_string ())
  in
  let a = run 2 and b = run 2 in
  Alcotest.(check string) "repeated j=2 runs are byte-identical" a b;
  (* across pool sizes only the pool.* lines may differ *)
  let contains line needle =
    let n = String.length needle in
    let rec has i =
      i + n <= String.length line
      && (String.sub line i n = needle || has (i + 1))
    in
    has 0
  in
  let strip s =
    String.split_on_char '\n' s
    |> List.filter (fun line -> not (contains line "\"pool."))
    |> String.concat "\n"
  in
  let c = run 4 in
  Alcotest.(check string) "j=2 and j=4 agree modulo pool.* lines" (strip a)
    (strip c)

let suite =
  [
    Alcotest.test_case "map_reduce per-chunk counters (seq + j=1,2,4)" `Quick
      test_map_reduce_counters;
    Alcotest.test_case "map per-chunk counters (seq + j=1,2,4)" `Quick
      test_map_counters;
    Alcotest.test_case "empty run records nothing" `Quick
      test_empty_run_counters;
    Alcotest.test_case "shards merge to ground-truth totals" `Quick
      test_counters_merge_across_shards;
    Alcotest.test_case "Service.trials unperturbed by metrics" `Quick
      test_service_trials_observed;
    Alcotest.test_case "Diversity unperturbed by metrics" `Quick
      test_diversity_observed;
    Alcotest.test_case "Methods unperturbed by metrics" `Quick
      test_methods_observed;
    Alcotest.test_case "diversity counters = recomputed totals" `Quick
      test_diversity_counters_match_result;
    Alcotest.test_case "methods counters = report fields" `Quick
      test_methods_counters_match_result;
    Alcotest.test_case "snapshot byte-stable under virtual clock" `Quick
      test_snapshot_byte_stable;
  ]
