(* Tests for the BOSCO mechanism (§V): claims, strategies, Algorithm 1
   (verified against brute force), equilibria, efficiency, and the
   theorem-level properties. *)

open Pan_numerics
open Pan_bosco

let approx = Alcotest.(check (float 1e-9))
let u1 = Distribution.uniform (-1.0) 1.0

(* ------------------------------------------------------------------ *)
(* Claim                                                               *)

let test_claim_of_list () =
  let c = Claim.of_list [ 0.5; -0.5; 0.0; 0.5 ] in
  let v = Claim.values c in
  Alcotest.(check int) "cancel + 3 distinct" 4 (Array.length v);
  Alcotest.(check bool) "first is cancel" true (v.(0) = neg_infinity);
  Alcotest.(check bool) "ascending" true (v.(1) < v.(2) && v.(2) < v.(3))

let test_claim_rejects_nan_inf () =
  (try
     ignore (Claim.of_list [ Float.nan ]);
     Alcotest.fail "NaN accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Claim.of_list [ infinity ]);
    Alcotest.fail "+inf accepted"
  with Invalid_argument _ -> ()

let test_claim_sample () =
  let rng = Rng.create 3 in
  let c = Claim.sample rng u1 30 in
  let v = Claim.values c in
  Alcotest.(check bool) "cancel present" true (v.(0) = neg_infinity);
  Alcotest.(check bool) "at most w+1" true (Array.length v <= 31);
  Array.iteri
    (fun i x ->
      if i > 0 && (x < -1.0 || x > 1.0) then
        Alcotest.fail "sampled claim outside support")
    v

let test_claim_grid () =
  let c = Claim.grid u1 5 in
  let v = Claim.values c in
  Alcotest.(check int) "w+1 values" 6 (Array.length v);
  (* equally spaced over the central 98% *)
  let d1 = v.(2) -. v.(1) and d2 = v.(3) -. v.(2) in
  Alcotest.(check (float 1e-9)) "equal spacing" d1 d2

(* ------------------------------------------------------------------ *)
(* Strategy                                                            *)

let claims_small = Claim.of_list [ -0.5; 0.0; 0.5 ]

let test_truthful_rounding () =
  let s = Strategy.truthful_rounding claims_small in
  approx "below all claims -> cancel" neg_infinity (Strategy.apply s (-0.9));
  approx "rounds down" (-0.5) (Strategy.apply s (-0.2));
  approx "exact claim" 0.0 (Strategy.apply s 0.0);
  approx "top claim" 0.5 (Strategy.apply s 3.0)

let test_of_thresholds_validation () =
  (try
     ignore (Strategy.of_thresholds claims_small [| neg_infinity; infinity |]);
     Alcotest.fail "wrong arity accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Strategy.of_thresholds claims_small
         [| neg_infinity; 1.0; 0.0; 0.5; infinity |]);
    Alcotest.fail "non-monotone accepted"
  with Invalid_argument _ -> ()

let test_choice_probabilities_sum_to_one () =
  let s = Strategy.truthful_rounding claims_small in
  let p = Strategy.choice_probabilities u1 s in
  let total = Array.fold_left ( +. ) 0.0 p in
  approx "probabilities sum to 1" 1.0 total;
  (* cancel region is [-inf, -0.5): mass 0.25 under U[-1,1] *)
  approx "cancel mass" 0.25 p.(0)

let test_line_coefficients_match_expectation () =
  (* m and q of Eq. 16/17 must reproduce Game.expected_after_utility_x *)
  let opp = Strategy.truthful_rounding claims_small in
  let own = Claim.of_list [ -0.3; 0.2; 0.7 ] in
  let lines = Strategy.line_coefficients ~opponent_dist:u1 ~opponent:opp own in
  let game =
    Game.{ dist_x = u1; dist_y = u1; claims_x = own; claims_y = claims_small }
  in
  Array.iteri
    (fun i v ->
      let m, q = lines.(i) in
      List.iter
        (fun u ->
          let direct = Game.expected_after_utility_x game ~opponent:opp ~u_x:u ~v_x:v in
          let linear = (m *. u) +. q in
          if Float.abs (direct -. linear) > 1e-9 then
            Alcotest.failf "line mismatch at claim %g, u %g: %g vs %g" v u
              direct linear)
        [ -0.8; -0.1; 0.0; 0.4; 0.9 ])
    (Claim.values own)

let test_cancel_line_is_zero () =
  let opp = Strategy.truthful_rounding claims_small in
  let own = Claim.of_list [ 0.1 ] in
  let lines = Strategy.line_coefficients ~opponent_dist:u1 ~opponent:opp own in
  let m, q = lines.(0) in
  approx "m of cancel" 0.0 m;
  approx "q of cancel" 0.0 q

(* Brute-force check of Algorithm 1: for a dense sweep of true utilities,
   the best response must pick the claim with maximal expected
   after-negotiation utility. *)
let best_response_agrees_with_bruteforce claims_x claims_y =
  let opp = Strategy.truthful_rounding claims_y in
  let br = Strategy.best_response ~opponent_dist:u1 ~opponent:opp claims_x in
  let game =
    Game.{ dist_x = u1; dist_y = u1; claims_x; claims_y }
  in
  let values = Claim.values claims_x in
  let rec sweep u =
    if u > 1.5 then true
    else begin
      let chosen = Strategy.apply br u in
      let best_value =
        Array.fold_left
          (fun acc v ->
            Float.max acc
              (Game.expected_after_utility_x game ~opponent:opp ~u_x:u ~v_x:v))
          neg_infinity values
      in
      let chosen_value =
        Game.expected_after_utility_x game ~opponent:opp ~u_x:u ~v_x:chosen
      in
      if Float.abs (best_value -. chosen_value) > 1e-9 then false
      else sweep (u +. 0.013)
    end
  in
  sweep (-1.5)

let test_best_response_bruteforce_small () =
  Alcotest.(check bool) "3-claim set" true
    (best_response_agrees_with_bruteforce
       (Claim.of_list [ -0.3; 0.2; 0.7 ])
       claims_small)

let test_best_response_bruteforce_random () =
  let rng = Rng.create 17 in
  for _ = 1 to 10 do
    let cx = Claim.sample rng u1 8 in
    let cy = Claim.sample rng u1 8 in
    if not (best_response_agrees_with_bruteforce cx cy) then
      Alcotest.fail "Algorithm 1 disagrees with brute force"
  done

let test_best_response_thresholds_monotone () =
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let cx = Claim.sample rng u1 15 in
    let cy = Claim.sample rng u1 15 in
    let opp = Strategy.truthful_rounding cy in
    let br = Strategy.best_response ~opponent_dist:u1 ~opponent:opp cx in
    let th = Strategy.thresholds br in
    for i = 0 to Array.length th - 2 do
      if th.(i) > th.(i + 1) then Alcotest.fail "thresholds not monotone"
    done
  done

let test_support_size () =
  let s = Strategy.truthful_rounding claims_small in
  Alcotest.(check int) "all four claims played" 4
    (Strategy.support_size u1 s)

(* ------------------------------------------------------------------ *)
(* Game                                                                *)

let test_settle () =
  (match Game.settle ~u_x:1.0 ~u_y:1.0 ~v_x:0.6 ~v_y:(-0.2) with
  | Game.Concluded { transfer; u_x_after; u_y_after } ->
      approx "transfer" 0.4 transfer;
      approx "x after" 0.6 u_x_after;
      approx "y after" 1.4 u_y_after
  | Game.Cancelled -> Alcotest.fail "should conclude");
  match Game.settle ~u_x:1.0 ~u_y:1.0 ~v_x:0.1 ~v_y:(-0.2) with
  | Game.Cancelled -> ()
  | Game.Concluded _ -> Alcotest.fail "negative apparent surplus concluded"

let test_settle_cancel_claim () =
  match Game.settle ~u_x:5.0 ~u_y:5.0 ~v_x:Claim.cancel ~v_y:3.0 with
  | Game.Cancelled -> ()
  | Game.Concluded _ -> Alcotest.fail "cancel claim concluded"

let test_nash_value () =
  approx "cancelled" 0.0 (Game.nash_value ~u_x:1.0 ~u_y:1.0 Game.Cancelled);
  approx "concluded" 6.0
    (Game.nash_value ~u_x:0.0 ~u_y:0.0
       (Game.Concluded { transfer = 0.0; u_x_after = 2.0; u_y_after = 3.0 }))

(* ------------------------------------------------------------------ *)
(* Equilibrium                                                         *)

let small_game seed w =
  let rng = Rng.create seed in
  Game.
    {
      dist_x = u1;
      dist_y = u1;
      claims_x = Claim.sample rng u1 w;
      claims_y = Claim.sample rng u1 w;
    }

let test_dynamics_converge () =
  for seed = 1 to 10 do
    let game = small_game seed 12 in
    let eq = Equilibrium.best_response_dynamics game in
    Alcotest.(check bool) "converged" true eq.Equilibrium.converged;
    Alcotest.(check bool) "verifies as equilibrium" true
      (Equilibrium.is_equilibrium game eq.Equilibrium.strategy_x
         eq.Equilibrium.strategy_y)
  done

let test_truthful_not_equilibrium_generally () =
  (* with private information, truth-telling is generally NOT a Nash
     equilibrium of the claim game — the heart of §V-A *)
  let game = small_game 5 12 in
  let tx = Strategy.truthful_rounding game.Game.claims_x in
  let ty = Strategy.truthful_rounding game.Game.claims_y in
  Alcotest.(check bool) "truthful rounding is not an equilibrium" false
    (Equilibrium.is_equilibrium game tx ty)

let test_all_cancel_is_equilibrium () =
  (* the degenerate no-trade equilibrium exists and dynamics started
     there stay there *)
  let game = small_game 6 8 in
  let eq =
    Equilibrium.best_response_dynamics ~start:Equilibrium.All_cancel game
  in
  Alcotest.(check bool) "converged" true eq.Equilibrium.converged;
  Alcotest.(check int) "x plays only cancel" 1
    (Strategy.support_size game.Game.dist_x eq.Equilibrium.strategy_x)

(* ------------------------------------------------------------------ *)
(* Efficiency                                                          *)

let test_truthful_benchmark_u1 () =
  (* E(N | truth) for U(1) = ∬_{x+y>=0} ((x+y)/2)^2 /4 dx dy.
     Substituting s = x+y: the density of s is triangular on [-2,2] with
     peak 1/2 at 0; E = ∫_0^2 (s/2)^2 (2-s)/4 ds = 1/12 - 1/16 = 1/24
     ... computed directly: ∫_0^2 s^2/4 * (2-s)/4 ds
       = 1/16 ∫_0^2 (2s^2 - s^3) ds = 1/16 (16/3 - 4) = 1/12. *)
  let game =
    Game.{ dist_x = u1; dist_y = u1; claims_x = claims_small; claims_y = claims_small }
  in
  let v = Efficiency.expected_nash_truthful ~grid:600 game in
  if Float.abs (v -. (1.0 /. 12.0)) > 1e-3 then
    Alcotest.failf "truthful benchmark %f vs 1/12" v

let test_expected_nash_truthful_strategies_approach_benchmark () =
  (* with a very fine claim grid, truthful-rounding strategies approach
     the continuous truthful benchmark *)
  let claims = Claim.grid u1 400 in
  let game =
    Game.{ dist_x = u1; dist_y = u1; claims_x = claims; claims_y = claims }
  in
  let s = Strategy.truthful_rounding claims in
  let v = Efficiency.expected_nash game s s in
  let benchmark = Efficiency.expected_nash_truthful ~grid:600 game in
  if Float.abs (v -. benchmark) > 0.01 *. benchmark then
    Alcotest.failf "piecewise %f vs benchmark %f" v benchmark

let test_pod_properties () =
  for seed = 1 to 8 do
    let game = small_game seed 10 in
    let eq = Equilibrium.best_response_dynamics game in
    let pod =
      Efficiency.price_of_dishonesty game eq.Equilibrium.strategy_x
        eq.Equilibrium.strategy_y
    in
    if pod < -1e-6 || pod > 1.0 +. 1e-6 then
      Alcotest.failf "PoD %f outside [0,1] (Thm 3)" pod
  done

let test_pod_decreases_with_w () =
  (* more claims help: mean PoD at W=40 below mean PoD at W=2 *)
  let rng = Rng.create 31 in
  let mean_pod w =
    let reports = Service.trials ~rng ~dist_x:u1 ~dist_y:u1 ~w ~n:20 () in
    Service.mean_pod reports
  in
  let coarse = mean_pod 2 in
  let fine = mean_pod 40 in
  Alcotest.(check bool) "PoD improves with richer choice sets" true
    (fine < coarse)

(* ------------------------------------------------------------------ *)
(* Properties (Theorems 1-4)                                           *)

let equilibrium_of game =
  let eq = Equilibrium.best_response_dynamics game in
  (eq.Equilibrium.strategy_x, eq.Equilibrium.strategy_y)

let test_theorem1_individual_rationality () =
  for seed = 1 to 6 do
    let game = small_game seed 10 in
    let sx, sy = equilibrium_of game in
    Alcotest.(check bool) "Thm 1" true
      (Properties.individual_rationality (Rng.create (seed * 7)) game sx sy)
  done

let test_theorem2_soundness () =
  for seed = 1 to 6 do
    let game = small_game seed 10 in
    let sx, sy = equilibrium_of game in
    Alcotest.(check bool) "Thm 2" true
      (Properties.soundness (Rng.create (seed * 13)) game sx sy)
  done

let test_theorem4_privacy () =
  for seed = 1 to 6 do
    let game = small_game seed 10 in
    let sx, sy = equilibrium_of game in
    Alcotest.(check bool) "Thm 4" true
      (Properties.privacy sx && Properties.privacy sy);
    let shortest = Properties.shortest_interval sx in
    Alcotest.(check bool) "positive shortest interval" true (shortest > 0.0)
  done

let test_budget_balance () =
  Alcotest.(check bool) "balance" true
    (Properties.budget_balance
       (Game.settle ~u_x:1.0 ~u_y:0.5 ~v_x:0.4 ~v_y:0.1))

(* individual rationality can fail for NON-equilibrium strategies,
   showing the check has teeth *)
let test_rationality_check_has_teeth () =
  let claims = Claim.of_list [ 5.0 ] in
  (* a party that always claims 5.0 even with terrible true utility *)
  let overclaim =
    Strategy.of_thresholds claims [| neg_infinity; neg_infinity; infinity |]
  in
  let game =
    Game.{ dist_x = u1; dist_y = u1; claims_x = claims; claims_y = claims }
  in
  Alcotest.(check bool) "overclaiming violates rationality" false
    (Properties.individual_rationality (Rng.create 2) game overclaim overclaim)

(* ------------------------------------------------------------------ *)
(* Service                                                             *)

let test_service_negotiate_and_verify () =
  let rng = Rng.create 4 in
  let r = Service.negotiate ~rng ~dist_x:u1 ~dist_y:u1 ~w:25 () in
  Alcotest.(check bool) "converged" true r.Service.converged;
  Alcotest.(check bool) "verifies" true (Service.verify r);
  Alcotest.(check bool) "pod in range" true
    (r.Service.pod >= -1e-6 && r.Service.pod <= 1.0 +. 1e-6)

let test_service_trials_and_best () =
  let rng = Rng.create 8 in
  let reports = Service.trials ~rng ~dist_x:u1 ~dist_y:u1 ~w:15 ~n:10 () in
  Alcotest.(check int) "ten runs" 10 (List.length reports);
  let best = Service.best reports in
  List.iter
    (fun (r : Service.report) ->
      Alcotest.(check bool) "best is minimal" true
        (best.Service.pod <= r.Service.pod))
    reports;
  approx "min accessor" best.Service.pod (Service.min_pod reports);
  Alcotest.(check bool) "mean >= min" true
    (Service.mean_pod reports >= Service.min_pod reports -. 1e-12)

let test_service_grid_construction () =
  let rng = Rng.create 9 in
  let r =
    Service.negotiate ~construction:Service.Grid ~rng ~dist_x:u1 ~dist_y:u1
      ~w:20 ()
  in
  Alcotest.(check bool) "grid negotiation verifies" true (Service.verify r)

(* ------------------------------------------------------------------ *)
(* Workspace CDF cache: bounded, LRU, and a pure memo                  *)

let test_workspace_cache_eviction () =
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Workspace.create: cache_capacity < 1") (fun () ->
      ignore (Workspace.create ~cache_capacity:0 () : Workspace.t));
  let ws = Workspace.create ~cache_capacity:2 () in
  Alcotest.(check int) "capacity accessor" 2 (Workspace.cache_capacity ws);
  let t1 = [| -0.5; 0.0; 0.5 |]
  and t2 = [| -0.25; 0.25 |]
  and t3 = [| -0.75; -0.1; 0.3; 0.8 |] in
  let probe thresholds =
    Array.copy (Workspace.choice_probabilities ws u1 thresholds)
  in
  let p1 = probe t1 and p2 = probe t2 in
  Alcotest.(check int) "two entries live" 2 (Workspace.cache_size ws);
  (* hit: same physical thresholds return the cached array itself *)
  Alcotest.(check bool) "t1 hit is physically cached" true
    (Workspace.choice_probabilities ws u1 t1
    == Workspace.choice_probabilities ws u1 t1);
  (* t1 was just promoted to most-recent, so inserting t3 evicts t2 *)
  let p3 = probe t3 in
  Alcotest.(check int) "still at capacity" 2 (Workspace.cache_size ws);
  Alcotest.(check bool) "t1 survived (was promoted)" true
    (Array.copy (Workspace.choice_probabilities ws u1 t1) = p1);
  (* recomputing the evicted entry is bit-identical to a fresh
     workspace: eviction can never change results *)
  let fresh = Workspace.create () in
  Alcotest.(check bool) "evicted t2 recomputes bit-identically" true
    (probe t2 = Array.copy (Workspace.choice_probabilities fresh u1 t2));
  Alcotest.(check bool) "t3 stable across the t2 re-insertion" true
    (probe t3 = p3);
  Workspace.clear_cache ws;
  Alcotest.(check int) "clear_cache empties" 0 (Workspace.cache_size ws);
  Alcotest.(check bool) "post-clear recompute bit-identical" true
    (probe t1 = p1 && probe t2 = p2 && probe t3 = p3)

let test_workspace_capacity_invariant_negotiation () =
  (* a cap of 1 forces an eviction on every opponent switch inside
     best-response dynamics; the negotiation must not notice *)
  let run workspace =
    let rng = Rng.create 21 in
    Service.negotiate ?workspace ~rng ~dist_x:u1 ~dist_y:u1 ~w:20 ()
  in
  let base = run None in
  let tiny = run (Some (Workspace.create ~cache_capacity:1 ())) in
  Alcotest.(check bool) "cache_capacity:1 negotiation bit-identical" true
    (base.Service.pod = tiny.Service.pod
    && base.Service.rounds = tiny.Service.rounds
    && base.Service.converged = tiny.Service.converged)

(* Capacity 1 is the adversarial LRU case: every distinct probe evicts,
   every repeated probe must still promote-and-hit.  Interleaving two
   distributions over the same thresholds pins the eviction order. *)
let test_workspace_lru_capacity_one_interleaved () =
  let ws = Workspace.create ~cache_capacity:1 () in
  let d2 = Distribution.uniform 0.0 1.0 in
  let thr = [| -0.5; 0.0; 0.5 |] in
  let fresh dist =
    Workspace.choice_probabilities (Workspace.create ()) dist thr
  in
  let p1 = Workspace.choice_probabilities ws u1 thr in
  Alcotest.(check bool) "repeat probe hits (promote keeps the entry)" true
    (Workspace.choice_probabilities ws u1 thr == p1);
  Alcotest.(check int) "one entry" 1 (Workspace.cache_size ws);
  (* structural-equality hit: a copy of the thresholds, same floats *)
  Alcotest.(check bool) "threshold copy still hits" true
    (Workspace.choice_probabilities ws u1 (Array.copy thr) == p1);
  let p2 = Workspace.choice_probabilities ws d2 thr in
  Alcotest.(check bool) "distribution switch misses" true (p2 != p1);
  Alcotest.(check int) "still one entry" 1 (Workspace.cache_size ws);
  Alcotest.(check bool) "d2 hit after eviction of d1" true
    (Workspace.choice_probabilities ws d2 thr == p2);
  let p1' = Workspace.choice_probabilities ws u1 thr in
  Alcotest.(check bool) "re-inserted d1 is a fresh array" true (p1' != p1);
  Alcotest.(check bool) "interleaved recomputes bit-identical" true
    (Array.to_list p1' = Array.to_list (fresh u1)
    && Array.to_list p2 = Array.to_list (fresh d2))

(* Model-based interleaving property: the cache behaves as a reference
   LRU over (distribution, thresholds) keys — hits return the physically
   cached array, misses allocate, eviction drops exactly the
   least-recently-used key — and every returned value is bit-identical
   to an uncached computation. *)
let qcheck_workspace_lru_interleaving =
  QCheck.Test.make ~count:200
    ~name:"workspace: CDF LRU = reference model under interleaved probes"
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 1 40)
           (pair (int_range 0 5) QCheck.bool)))
    (fun (capacity, ops) ->
      let dists =
        [|
          Distribution.uniform (-1.0) 1.0;
          Distribution.uniform 0.0 1.0;
          Distribution.uniform (-2.0) 0.5;
        |]
      in
      let thrs =
        [|
          [| -0.5; 0.0; 0.5 |];
          [| -0.25; 0.25 |];
          [| -0.75; -0.1; 0.3; 0.8 |];
          [| -1.0; 1.0 |];
          [| -0.9; -0.3; 0.6 |];
          [| 0.0; 0.1; 0.2; 0.4 |];
        |]
      in
      let key k = (dists.(k / 2), thrs.(k)) in
      let ws = Workspace.create ~cache_capacity:capacity () in
      let model = ref [] (* (key index, cached probs) MRU first *) in
      List.for_all
        (fun (k, use_copy) ->
          let dist, thr = key k in
          let expect = List.assoc_opt k !model in
          let probs =
            Workspace.choice_probabilities ws dist
              (if use_copy then Array.copy thr else thr)
          in
          let reference =
            Workspace.choice_probabilities (Workspace.create ()) dist thr
          in
          let ok =
            match expect with
            | Some cached -> probs == cached
            | None -> List.for_all (fun (_, p) -> p != probs) !model
          in
          model :=
            (k, probs) :: List.filter (fun (k', _) -> k' <> k) !model;
          model := List.filteri (fun i _ -> i < capacity) !model;
          ok
          && Array.to_list probs = Array.to_list reference
          && Workspace.cache_size ws = List.length !model)
        ops)

let suite =
  [
    Alcotest.test_case "claim of_list" `Quick test_claim_of_list;
    Alcotest.test_case "claim rejects nan/inf" `Quick
      test_claim_rejects_nan_inf;
    Alcotest.test_case "claim sample" `Quick test_claim_sample;
    Alcotest.test_case "claim grid" `Quick test_claim_grid;
    Alcotest.test_case "truthful rounding" `Quick test_truthful_rounding;
    Alcotest.test_case "of_thresholds validation" `Quick
      test_of_thresholds_validation;
    Alcotest.test_case "choice probabilities" `Quick
      test_choice_probabilities_sum_to_one;
    Alcotest.test_case "line coefficients = Eq. 14" `Quick
      test_line_coefficients_match_expectation;
    Alcotest.test_case "cancel line is zero" `Quick test_cancel_line_is_zero;
    Alcotest.test_case "Alg. 1 vs brute force (small)" `Quick
      test_best_response_bruteforce_small;
    Alcotest.test_case "Alg. 1 vs brute force (random)" `Quick
      test_best_response_bruteforce_random;
    Alcotest.test_case "best-response thresholds monotone" `Quick
      test_best_response_thresholds_monotone;
    Alcotest.test_case "support size" `Quick test_support_size;
    Alcotest.test_case "settle" `Quick test_settle;
    Alcotest.test_case "settle with cancel claim" `Quick
      test_settle_cancel_claim;
    Alcotest.test_case "nash value" `Quick test_nash_value;
    Alcotest.test_case "dynamics converge to equilibria" `Quick
      test_dynamics_converge;
    Alcotest.test_case "truthful is not an equilibrium" `Quick
      test_truthful_not_equilibrium_generally;
    Alcotest.test_case "all-cancel equilibrium" `Quick
      test_all_cancel_is_equilibrium;
    Alcotest.test_case "truthful benchmark (analytic 1/12)" `Quick
      test_truthful_benchmark_u1;
    Alcotest.test_case "piecewise E(N) matches benchmark" `Quick
      test_expected_nash_truthful_strategies_approach_benchmark;
    Alcotest.test_case "PoD in [0,1] (Thm 3)" `Quick test_pod_properties;
    Alcotest.test_case "PoD decreases with W" `Slow test_pod_decreases_with_w;
    Alcotest.test_case "Thm 1: individual rationality" `Quick
      test_theorem1_individual_rationality;
    Alcotest.test_case "Thm 2: soundness" `Quick test_theorem2_soundness;
    Alcotest.test_case "Thm 4: privacy" `Quick test_theorem4_privacy;
    Alcotest.test_case "budget balance" `Quick test_budget_balance;
    Alcotest.test_case "rationality check has teeth" `Quick
      test_rationality_check_has_teeth;
    Alcotest.test_case "service negotiate + verify" `Quick
      test_service_negotiate_and_verify;
    Alcotest.test_case "service trials + best" `Quick
      test_service_trials_and_best;
    Alcotest.test_case "service grid construction" `Quick
      test_service_grid_construction;
    Alcotest.test_case "workspace cache eviction (LRU, bounded, pure)" `Quick
      test_workspace_cache_eviction;
    Alcotest.test_case "workspace capacity invariant under negotiation" `Quick
      test_workspace_capacity_invariant_negotiation;
    Alcotest.test_case "workspace LRU capacity 1, interleaved" `Quick
      test_workspace_lru_capacity_one_interleaved;
    QCheck_alcotest.to_alcotest qcheck_workspace_lru_interleaving;
  ]
