(* Tests for AS-level paths and valley-free (GRC) conformance. *)

open Pan_topology

let a = Gen.fig1_asn

let g = Gen.fig1 ()

let path cs = Path.make_exn g (List.map a cs)

let test_make_validation () =
  (match Path.make g [ a 'A' ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "singleton accepted");
  (match Path.make g [ a 'A'; a 'D'; a 'A' ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repeated AS accepted");
  (match Path.make g [ a 'A'; a 'I' ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-adjacent accepted");
  match Path.make g [ a 'A'; a 'D'; a 'H' ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid path rejected: %s" e

let test_accessors () =
  let p = path [ 'H'; 'D'; 'E'; 'I' ] in
  Alcotest.(check int) "length" 4 (Path.length p);
  Alcotest.(check int) "source" (Asn.to_int (a 'H'))
    (Asn.to_int (Path.source p));
  Alcotest.(check int) "destination" (Asn.to_int (a 'I'))
    (Asn.to_int (Path.destination p));
  Alcotest.(check int) "links" 3 (List.length (Path.links p));
  let r = Path.reverse p in
  Alcotest.(check int) "reverse source" (Asn.to_int (a 'I'))
    (Asn.to_int (Path.source r))

let test_steps () =
  let p = path [ 'H'; 'D'; 'E'; 'I' ] in
  Alcotest.(check bool) "up flat down" true
    (Path.steps g p = [ Path.Up; Path.Flat; Path.Down ])

let test_valley_free_positive () =
  List.iter
    (fun cs ->
      let p = path cs in
      Alcotest.(check bool)
        (Printf.sprintf "valley-free %s"
           (String.concat "" (List.map (String.make 1) cs)))
        true (Path.is_valley_free g p))
    [
      [ 'H'; 'D'; 'A' ];           (* up up *)
      [ 'H'; 'D'; 'E'; 'I' ];      (* up peer down *)
      [ 'A'; 'D'; 'H' ];           (* down down *)
      [ 'H'; 'D'; 'A'; 'B'; 'E'; 'I' ]; (* up up peer down down *)
      [ 'D'; 'E' ];                (* single peer step *)
      [ 'D'; 'E'; 'I' ];           (* peer down *)
    ]

let test_valley_free_negative () =
  List.iter
    (fun cs ->
      let p = path cs in
      Alcotest.(check bool)
        (Printf.sprintf "valley %s"
           (String.concat "" (List.map (String.make 1) cs)))
        false (Path.is_valley_free g p))
    [
      [ 'D'; 'E'; 'B' ];           (* peer then up: the MA path of Eq. 6 *)
      [ 'A'; 'D'; 'E' ];           (* down then peer *)
      [ 'D'; 'E'; 'F' ];           (* peer then peer *)
      [ 'A'; 'D'; 'E'; 'B' ];      (* down peer up *)
      [ 'H'; 'D'; 'E'; 'B' ];      (* up peer up *)
    ]

let test_grc_usable_alias () =
  let p = path [ 'D'; 'E'; 'B' ] in
  Alcotest.(check bool) "alias agrees" (Path.is_valley_free g p)
    (Path.grc_usable g p)

let qcheck_reverse_involution =
  (* reversing twice restores the path, on arbitrary valid fig1 paths *)
  let paths =
    [
      [ 'H'; 'D'; 'A' ];
      [ 'H'; 'D'; 'E'; 'I' ];
      [ 'D'; 'E'; 'B' ];
      [ 'A'; 'B'; 'C' ];
      [ 'G'; 'F'; 'E'; 'D' ];
    ]
  in
  QCheck.Test.make ~count:50 ~name:"reverse is an involution"
    QCheck.(oneofl paths)
    (fun cs ->
      let p = path cs in
      Path.ases (Path.reverse (Path.reverse p)) = Path.ases p)

let qcheck_reverse_valley_free_symmetric =
  (* a length-3 path through a peering top is valley-free in both
     directions; the MA paths are valley-free in neither *)
  QCheck.Test.make ~count:50 ~name:"valley-freeness of reverse (length-3)"
    QCheck.(oneofl [ [ 'H'; 'D'; 'A' ]; [ 'D'; 'E'; 'B' ]; [ 'I'; 'E'; 'D' ] ])
    (fun cs ->
      let p = path cs in
      match cs with
      | [ 'H'; 'D'; 'A' ] ->
          (* up up reversed = down down: both valley-free *)
          Path.is_valley_free g p
          && Path.is_valley_free g (Path.reverse p)
      | [ 'D'; 'E'; 'B' ] ->
          (* peer-up reversed = down-peer: both violate *)
          (not (Path.is_valley_free g p))
          && not (Path.is_valley_free g (Path.reverse p))
      | _ ->
          (* I-E-D: up peer; reversed D-E-I: peer down — both fine *)
          Path.is_valley_free g p
          && Path.is_valley_free g (Path.reverse p))

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "steps" `Quick test_steps;
    Alcotest.test_case "valley-free positive" `Quick test_valley_free_positive;
    Alcotest.test_case "valley-free negative" `Quick test_valley_free_negative;
    Alcotest.test_case "grc_usable alias" `Quick test_grc_usable_alias;
    QCheck_alcotest.to_alcotest qcheck_reverse_involution;
    QCheck_alcotest.to_alcotest qcheck_reverse_valley_free_symmetric;
  ]
