(* Churn-equivalence suite for the resident path-query service
   (lib/service) and the incremental freeze (Compact.Delta).

   The headline properties: after ANY random sequence of link up/down
   events, (1) the incrementally-updated frozen core is byte-identical
   to a from-scratch Compact.freeze of the equivalently-mutated Graph —
   checked after every single event, not just at the end — and (2) the
   memoized per-pair path store answers every query identically to an
   unmemoized recompute, interleaved with churn.  Together they are the
   license for a resident service to never re-freeze and never recompute
   a warm pair. *)

open Pan_numerics
open Pan_topology
open Pan_service

let asn = Asn.of_int

let gen_graph ?(n_transit = 8) ?(n_stub = 30) seed =
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  Gen.graph (Gen.generate ~params ~seed ())

let frozen_equal a b =
  String.equal (Compact.Snapshot.to_string a) (Compact.Snapshot.to_string b)

let policies =
  [ Path_enum.Grc; Path_enum.Ma_all; Path_enum.Ma_direct_only;
    Path_enum.Ma_top 2 ]

(* Apply a stream churn item to a mutable Graph — the independent
   mutation path the incremental core is checked against. *)
let apply_to_graph g = function
  | Stream.Up (Stream.Peer (a, b)) -> Graph.add_peering g a b
  | Stream.Down (Stream.Peer (a, b)) -> Graph.remove_peering g a b
  | Stream.Up (Stream.Transit { provider; customer }) ->
      Graph.add_provider_customer g ~provider ~customer
  | Stream.Down (Stream.Transit { provider; customer }) ->
      Graph.remove_provider_customer g ~provider ~customer
  | Stream.Query _ | Stream.Intent_query _ ->
      invalid_arg "apply_to_graph: query"

(* An all-events stream is exactly what churn probability 1 generates,
   and the generator guarantees each event is applicable in order. *)
let gen_events ~seed ~topo n =
  Stream.generate ~rng:(Rng.create seed) ~topo ~requests:n ~churn:1.0 ()

(* ------------------------------------------------------------------ *)
(* Headline 1: incremental freeze = full re-freeze, after every event   *)

let qcheck_churn_equivalence =
  QCheck.Test.make ~count:12
    ~name:"churn: incremental core = refreeze engine = freeze of mutated graph"
    QCheck.(pair (int_range 1 10_000) (int_range 1 40))
    (fun (seed, n_events) ->
      let g = gen_graph seed in
      let topo = Compact.freeze g in
      let events = gen_events ~seed:(seed + 1) ~topo n_events in
      let inc = Engine.create ~mode:Engine.Incremental topo in
      let orc = Engine.create ~mode:Engine.Refreeze topo in
      let mirror = Compact.thaw topo in
      List.for_all
        (fun item ->
          let ev = Serve.event_of_item topo item in
          ignore (Engine.apply inc ev : int);
          ignore (Engine.apply orc ev : int);
          apply_to_graph mirror item;
          frozen_equal (Engine.topology inc) (Engine.topology orc)
          && frozen_equal (Engine.topology inc) (Compact.freeze mirror))
        events
      &&
      (* ... and the churned engine answers every sampled query exactly
         like a cold engine built on the mutated graph. *)
      let cold = Engine.of_graph mirror in
      let n = Compact.num_ases topo in
      let rng = Rng.create (seed + 2) in
      List.for_all
        (fun policy ->
          List.for_all
            (fun _ ->
              let src = Rng.int rng n in
              let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
              Engine.query inc ~src ~dst ~policy
              = Engine.query cold ~src ~dst ~policy)
            [ (); (); (); (); (); (); (); () ])
        policies)

(* ------------------------------------------------------------------ *)
(* Headline 2: memoized store = unmemoized recompute, under churn       *)

let qcheck_store_equivalence =
  QCheck.Test.make ~count:12
    ~name:"store: memoized = unmemoized, interleaved with churn"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let topo = Compact.freeze (gen_graph seed) in
      let stream =
        Stream.generate ~rng:(Rng.create (seed + 1)) ~topo ~requests:80
          ~churn:0.3 ()
      in
      let e = Engine.create topo in
      List.for_all
        (fun item ->
          match item with
          | Stream.Query { src; dst; policy } ->
              let src = Compact.index_of_exn topo src in
              let dst = Compact.index_of_exn topo dst in
              let first = Engine.query e ~src ~dst ~policy in
              let fresh = Engine.query_uncached e ~src ~dst ~policy in
              (* second hit must come from the store and still agree *)
              let again = Engine.query e ~src ~dst ~policy in
              first = fresh && again = fresh
          | ev ->
              ignore (Engine.apply e (Serve.event_of_item topo ev) : int);
              true)
        stream
      &&
      (* hits + misses account for every query made above *)
      let s = Engine.stats e in
      s.Engine.queries = s.Engine.store_hits + s.Engine.store_misses)

(* ------------------------------------------------------------------ *)
(* Delta round-trips and thaw                                          *)

let qcheck_delta_roundtrip =
  QCheck.Test.make ~count:20
    ~name:"Delta: remove;add (and add;remove) round-trip byte-identically"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let topo = Compact.freeze (gen_graph seed) in
      let peers = ref [] and transits = ref [] in
      Compact.iter_peering_links topo (fun i j -> peers := (i, j) :: !peers);
      Compact.iter_provider_customer_links topo (fun ~provider ~customer ->
          transits := (provider, customer) :: !transits);
      let rng = Rng.create (seed + 1) in
      let peer_rt =
        match !peers with
        | [] -> true
        | l ->
            let i, j = Rng.choose rng (Array.of_list l) in
            frozen_equal topo
              (Compact.Delta.add_peering
                 (Compact.Delta.remove_peering topo i j)
                 i j)
        in
      let transit_rt =
        match !transits with
        | [] -> true
        | l ->
            let provider, customer = Rng.choose rng (Array.of_list l) in
            frozen_equal topo
              (Compact.Delta.add_provider_customer
                 (Compact.Delta.remove_provider_customer topo ~provider
                    ~customer)
                 ~provider ~customer)
      in
      (* add a fresh link, then remove it again *)
      let n = Compact.num_ases topo in
      let rec fresh_pair tries =
        if tries = 0 then None
        else
          let i = Rng.int rng n in
          let j = (i + 1 + Rng.int rng (n - 1)) mod n in
          if Compact.connected topo i j then fresh_pair (tries - 1)
          else Some (i, j)
      in
      let add_rt =
        match fresh_pair 50 with
        | None -> true
        | Some (i, j) ->
            frozen_equal topo
              (Compact.Delta.remove_peering
                 (Compact.Delta.add_peering topo i j)
                 i j)
            && frozen_equal topo
                 (Compact.Delta.remove_provider_customer
                    (Compact.Delta.add_provider_customer topo ~provider:i
                       ~customer:j)
                    ~provider:i ~customer:j)
      in
      peer_rt && transit_rt && add_rt)

let qcheck_freeze_thaw =
  QCheck.Test.make ~count:20 ~name:"freeze (thaw c) = c"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = Compact.freeze (gen_graph seed) in
      frozen_equal c (Compact.freeze (Compact.thaw c)))

(* ------------------------------------------------------------------ *)
(* Batch application = sequential fold                                  *)

let delta_edit_of_event = function
  | Engine.Link_up (Engine.Peer (i, j)) -> Compact.Delta.Add_peering (i, j)
  | Engine.Link_down (Engine.Peer (i, j)) ->
      Compact.Delta.Remove_peering (i, j)
  | Engine.Link_up (Engine.Transit { provider; customer }) ->
      Compact.Delta.Add_provider_customer { provider; customer }
  | Engine.Link_down (Engine.Transit { provider; customer }) ->
      Compact.Delta.Remove_provider_customer { provider; customer }

let apply_single topo = function
  | Compact.Delta.Add_peering (i, j) -> Compact.Delta.add_peering topo i j
  | Compact.Delta.Remove_peering (i, j) ->
      Compact.Delta.remove_peering topo i j
  | Compact.Delta.Add_provider_customer { provider; customer } ->
      Compact.Delta.add_provider_customer topo ~provider ~customer
  | Compact.Delta.Remove_provider_customer { provider; customer } ->
      Compact.Delta.remove_provider_customer topo ~provider ~customer

let qcheck_batch_equals_sequential =
  QCheck.Test.make ~count:20
    ~name:"Delta.apply_batch = sequential single-link fold (byte-identical)"
    QCheck.(pair (int_range 1 10_000) (int_range 0 40))
    (fun (seed, n_events) ->
      let topo = Compact.freeze (gen_graph seed) in
      let edits =
        gen_events ~seed:(seed + 1) ~topo n_events
        |> List.map (fun item ->
               delta_edit_of_event (Serve.event_of_item topo item))
      in
      let sequential = List.fold_left apply_single topo edits in
      let batch = Compact.Delta.apply_batch topo edits in
      frozen_equal sequential batch
      (* add-then-remove chains on the same pair collapse correctly *)
      &&
      match edits with
      | Compact.Delta.Add_peering (i, j) :: _ ->
          frozen_equal topo
            (Compact.Delta.apply_batch topo
               [
                 Compact.Delta.Add_peering (i, j);
                 Compact.Delta.Remove_peering (i, j);
               ])
      | _ -> true)

let qcheck_engine_batch_equals_fold =
  QCheck.Test.make ~count:15
    ~name:"Engine.apply_batch = folded Engine.apply (topology, store, counts)"
    QCheck.(pair (int_range 1 10_000) (int_range 1 30))
    (fun (seed, n_events) ->
      let topo = Compact.freeze (gen_graph seed) in
      let evs =
        gen_events ~seed:(seed + 1) ~topo n_events
        |> List.map (Serve.event_of_item topo)
      in
      let e_fold = Engine.create topo and e_batch = Engine.create topo in
      (* warm both stores identically so the splice has entries to drop *)
      let n = Compact.num_ases topo in
      let rng = Rng.create (seed + 2) in
      let pairs =
        List.init 25 (fun _ ->
            let src = Rng.int rng n in
            let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
            (src, dst))
      in
      List.iter
        (fun (src, dst) ->
          List.iter
            (fun policy ->
              ignore (Engine.query e_fold ~src ~dst ~policy : int list);
              ignore (Engine.query e_batch ~src ~dst ~policy : int list))
            policies)
        pairs;
      let d_fold =
        List.fold_left (fun acc ev -> acc + Engine.apply e_fold ev) 0 evs
      in
      let d_batch = Engine.apply_batch e_batch evs in
      d_fold = d_batch
      && frozen_equal (Engine.topology e_fold) (Engine.topology e_batch)
      && (Engine.stats e_fold).Engine.events
         = (Engine.stats e_batch).Engine.events
      && List.for_all
           (fun (src, dst) ->
             List.for_all
               (fun policy ->
                 Engine.query e_fold ~src ~dst ~policy
                 = Engine.query e_batch ~src ~dst ~policy
                 && Engine.query e_batch ~src ~dst ~policy
                    = Engine.query_uncached e_batch ~src ~dst ~policy)
               policies)
           pairs)

(* A 5-AS topology small enough to check answers by hand:
     AS1 provider of AS2 and AS3;  AS2 -- AS3 peering;
     AS2 provider of AS4;  AS3 provider of AS5.
   Dense indices are ASN - 1. *)
let hand_graph () =
  let g = Graph.create () in
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  Graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  Graph.add_peering g (asn 2) (asn 3);
  Graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 4);
  Graph.add_provider_customer g ~provider:(asn 3) ~customer:(asn 5);
  g

let test_delta_validation () =
  let c = Compact.freeze (hand_graph ()) in
  let expect name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  expect "add existing link"
    "Compact.Delta.add_peering: AS1 and AS2 are already linked" (fun () ->
      Compact.Delta.add_peering c 0 1);
  expect "add existing link (transit over peering)"
    "Compact.Delta.add_provider_customer: AS2 and AS3 are already linked"
    (fun () -> Compact.Delta.add_provider_customer c ~provider:1 ~customer:2);
  expect "remove non-peering"
    "Compact.Delta.remove_peering: AS1 and AS3 are not peers" (fun () ->
      Compact.Delta.remove_peering c 0 2);
  expect "remove absent transit"
    "Compact.Delta.remove_provider_customer: AS4 is not a provider of AS5"
    (fun () ->
      Compact.Delta.remove_provider_customer c ~provider:3 ~customer:4);
  expect "self link" "Compact.Delta.add_peering: self-link on AS2" (fun () ->
      Compact.Delta.add_peering c 1 1);
  expect "index out of range"
    "Compact.Delta.add_peering: index 9 outside [0, 5)" (fun () ->
      Compact.Delta.add_peering c 0 9)

let test_engine_apply_validation () =
  let e = Engine.of_graph (hand_graph ()) in
  let expect name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  expect "up on linked pair" "Engine.apply: AS2 and AS3 are already linked"
    (fun () -> Engine.apply e (Engine.Link_up (Engine.Peer (1, 2))));
  expect "down on non-peers" "Engine.apply: AS1 and AS2 are not peers"
    (fun () -> Engine.apply e (Engine.Link_down (Engine.Peer (0, 1))));
  expect "down absent transit" "Engine.apply: AS4 is not a provider of AS5"
    (fun () ->
      Engine.apply e
        (Engine.Link_down (Engine.Transit { provider = 3; customer = 4 })));
  expect "self link" "Engine.apply: self-link on AS1" (fun () ->
      Engine.apply e (Engine.Link_up (Engine.Peer (0, 0))));
  expect "out of range" "Engine.apply: index 7 outside [0, 5)" (fun () ->
      Engine.apply e (Engine.Link_up (Engine.Peer (0, 7))))

let test_engine_batch_validates_before_mutation () =
  let e = Engine.of_graph (hand_graph ()) in
  let before = Compact.Snapshot.to_string (Engine.topology e) in
  (* second event invalid against the state left by the first *)
  (try
     ignore
       (Engine.apply_batch e
          [
            Engine.Link_up (Engine.Peer (0, 3));
            Engine.Link_up (Engine.Peer (0, 3));
          ]
        : int);
     Alcotest.fail "duplicate up accepted"
   with Invalid_argument msg ->
     Alcotest.(check string) "sequential-semantics message"
       "Engine.apply: AS1 and AS4 are already linked" msg);
  Alcotest.(check string) "engine unchanged on batch failure" before
    (Compact.Snapshot.to_string (Engine.topology e));
  Alcotest.(check int) "no events recorded" 0 (Engine.stats e).Engine.events;
  (* down-then-up of the same pair is valid within one batch *)
  let dropped =
    Engine.apply_batch e
      [
        Engine.Link_down (Engine.Peer (1, 2));
        Engine.Link_up (Engine.Peer (1, 2));
      ]
  in
  Alcotest.(check bool) "round-trip batch applies" true (dropped >= 0);
  Alcotest.(check string) "round-trip leaves topology identical" before
    (Compact.Snapshot.to_string (Engine.topology e))

(* ------------------------------------------------------------------ *)
(* Invalidation soundness: warm every pair, churn, re-check every pair  *)

let test_invalidation_soundness () =
  let topo = Compact.freeze (gen_graph ~n_transit:5 ~n_stub:12 7) in
  let n = Compact.num_ases topo in
  let e = Engine.create topo in
  let sweep_equal () =
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then
          List.iter
            (fun policy ->
              let memo = Engine.query e ~src ~dst ~policy in
              let fresh = Engine.query_uncached e ~src ~dst ~policy in
              if memo <> fresh then
                Alcotest.failf "stale answer for (%d, %d) after churn" src dst)
            policies
      done
    done
  in
  sweep_equal ();
  let warm = Engine.stats e in
  Alcotest.(check int) "cold sweep misses everywhere" warm.Engine.queries
    warm.Engine.store_misses;
  List.iteri
    (fun k item ->
      let dropped = Engine.apply e (Serve.event_of_item topo item) in
      if dropped < 0 then Alcotest.failf "negative drop count at event %d" k;
      (* every pair must still answer as if computed cold *)
      sweep_equal ())
    (gen_events ~seed:8 ~topo 6);
  let s = Engine.stats e in
  Alcotest.(check int) "events counted" 6 s.Engine.events;
  if s.Engine.store_hits = 0 then
    Alcotest.fail "memo never hit: invalidation is dropping everything"

(* ------------------------------------------------------------------ *)
(* Hand-checked answers and transcript rendering                       *)

let test_hand_answers () =
  let topo = Compact.freeze (hand_graph ()) in
  let e = Engine.create topo in
  (* GRC from AS4: 4 - 2 - z with z in {1, 3} (AS2 is AS4's provider) *)
  Alcotest.(check (list int)) "AS4->AS3 grc via AS2" [ 1 ]
    (Engine.query e ~src:3 ~dst:2 ~policy:Path_enum.Grc);
  Alcotest.(check (list int)) "AS4->AS1 grc via AS2" [ 1 ]
    (Engine.query e ~src:3 ~dst:0 ~policy:Path_enum.Grc);
  Alcotest.(check (list int)) "AS4->AS5 grc: none" []
    (Engine.query e ~src:3 ~dst:4 ~policy:Path_enum.Grc);
  (* GRC from AS5 mirrors it: 5 - 3 - z with z in {1, 2} *)
  Alcotest.(check (list int)) "AS5->AS2 grc via AS3" [ 2 ]
    (Engine.query e ~src:4 ~dst:1 ~policy:Path_enum.Grc)

let test_transcript_rendering () =
  let topo = Compact.freeze (hand_graph ()) in
  let stream =
    Stream.parse
      "# warm, churn, re-ask, heal, re-ask\n\
       query AS4 AS3 grc\n\
       down peer AS2 AS3\n\
       query AS4 AS3 grc\n\
       up peer AS2 AS3\n\
       query AS4 AS3 grc\n"
  in
  let out = Serve.run ~mode:Engine.Incremental ~oracle:true ~topo stream in
  Alcotest.(check string) "transcript"
    "AS4 -> AS3 [grc]: 1 path via AS2\n\
     link down peer AS2 -- AS3: invalidated 1 store entry\n\
     AS4 -> AS3 [grc]: no paths\n\
     link up peer AS2 -- AS3: invalidated 1 store entry\n\
     AS4 -> AS3 [grc]: 1 path via AS2\n"
    out.Serve.transcript;
  let s = out.Serve.stats in
  Alcotest.(check int) "queries" 3 s.Engine.queries;
  Alcotest.(check int) "misses" 3 s.Engine.store_misses;
  Alcotest.(check int) "events" 2 s.Engine.events;
  Alcotest.(check int) "invalidated" 2 s.Engine.invalidated

(* ------------------------------------------------------------------ *)
(* Serve.run determinism: pool sizes and injected faults               *)

let serve_fixture () =
  let topo = Compact.freeze (gen_graph 11) in
  let stream =
    Stream.generate ~rng:(Rng.create 12) ~topo ~requests:120 ~churn:0.15 ()
  in
  (topo, stream)

let stats_equal a b =
  a.Engine.queries = b.Engine.queries
  && a.Engine.store_hits = b.Engine.store_hits
  && a.Engine.store_misses = b.Engine.store_misses
  && a.Engine.events = b.Engine.events
  && a.Engine.invalidated = b.Engine.invalidated

let test_serve_jobs_equal () =
  let topo, stream = serve_fixture () in
  let base = Serve.run ~mode:Engine.Incremental ~topo stream in
  let par =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        Serve.run ~pool ~mode:Engine.Incremental ~topo stream)
  in
  Alcotest.(check string) "-j1 = -j4 transcript" base.Serve.transcript
    par.Serve.transcript;
  Alcotest.(check bool) "stats equal" true
    (stats_equal base.Serve.stats par.Serve.stats)

let test_serve_faults_equal () =
  let topo, stream = serve_fixture () in
  let base = Serve.run ~mode:Engine.Incremental ~topo stream in
  let faulty =
    Pan_runner.Fault.set
      (Some
         { Pan_runner.Fault.seed = 3; rate = 0.3; delay = 0.0;
           delay_rate = 0.0 });
    Fun.protect
      ~finally:(fun () -> Pan_runner.Fault.set None)
      (fun () ->
        Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
            Serve.run ~pool ~retries:6 ~mode:Engine.Incremental ~topo stream))
  in
  Alcotest.(check string) "fault-injected run is byte-identical"
    base.Serve.transcript faulty.Serve.transcript;
  Alcotest.(check string) "fingerprint too" base.Serve.fingerprint
    faulty.Serve.fingerprint

let test_serve_mode_equal () =
  let topo, stream = serve_fixture () in
  let inc = Serve.run ~mode:Engine.Incremental ~topo stream in
  let refr = Serve.run ~mode:Engine.Refreeze ~topo stream in
  Alcotest.(check string) "incremental = refreeze transcript"
    inc.Serve.transcript refr.Serve.transcript

(* ------------------------------------------------------------------ *)
(* Stream format                                                       *)

let qcheck_stream_roundtrip =
  QCheck.Test.make ~count:25 ~name:"Stream: parse (to_string s) = s"
    QCheck.(pair (int_range 1 10_000) (int_range 0 60))
    (fun (seed, requests) ->
      let topo = Compact.freeze (gen_graph seed) in
      let s =
        Stream.generate ~rng:(Rng.create (seed + 1)) ~topo ~requests
          ~churn:0.4 ()
      in
      Stream.parse (Stream.to_string s) = s)

let test_stream_parse_errors () =
  let expect name msg input =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Stream.parse input))
  in
  expect "unknown policy"
    "Stream.parse: line 1: unknown policy \"bogus\" (expected grc, ma-all, \
     ma-direct or ma-top:N)"
    "query AS1 AS2 bogus";
  expect "unknown verb, right line number"
    "Stream.parse: line 3: unknown item \"nonsense\" (expected query, \
     intent, up or down)"
    "# comment\nquery AS1 AS2 grc\nnonsense\n";
  expect "bad ASN"
    "Stream.parse: line 1: expected an AS number like AS42, got \"ASx\""
    "query AS1 ASx grc";
  expect "short link"
    "Stream.parse: line 1: expected <kind> <AS> <AS>, got 2 token(s)"
    "up peer AS1";
  expect "bad link kind"
    "Stream.parse: line 1: unknown link kind \"cable\" (expected peer or \
     transit)"
    "down cable AS1 AS2"

let test_policy_labels () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Stream.policy_label p))
        true
        (Stream.policy_of_label (Stream.policy_label p) = Some p))
    (Path_enum.Ma_top 7 :: policies);
  Alcotest.(check bool) "ma-top:5" true
    (Stream.policy_of_label "ma-top:5" = Some (Path_enum.Ma_top 5));
  Alcotest.(check bool) "ma-top junk rejected" true
    (Stream.policy_of_label "ma-top:x" = None);
  Alcotest.(check bool) "empty rejected" true
    (Stream.policy_of_label "" = None)

let test_generated_events_applicable () =
  (* 200 pure-churn events on a small graph stay applicable throughout —
     the down/up state tracking never desyncs. *)
  let topo = Compact.freeze (gen_graph ~n_transit:4 ~n_stub:8 21) in
  let e = Engine.create topo in
  List.iter
    (fun item -> ignore (Engine.apply e (Serve.event_of_item topo item) : int))
    (gen_events ~seed:22 ~topo 200)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_churn_equivalence;
    QCheck_alcotest.to_alcotest qcheck_store_equivalence;
    QCheck_alcotest.to_alcotest qcheck_delta_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_freeze_thaw;
    QCheck_alcotest.to_alcotest qcheck_batch_equals_sequential;
    QCheck_alcotest.to_alcotest qcheck_engine_batch_equals_fold;
    Alcotest.test_case "Engine.apply_batch validates before mutating" `Quick
      test_engine_batch_validates_before_mutation;
    Alcotest.test_case "Delta validation errors" `Quick test_delta_validation;
    Alcotest.test_case "Engine.apply validation errors" `Quick
      test_engine_apply_validation;
    Alcotest.test_case "invalidation soundness (exhaustive sweeps)" `Quick
      test_invalidation_soundness;
    Alcotest.test_case "hand-checked answers (5-AS topology)" `Quick
      test_hand_answers;
    Alcotest.test_case "transcript rendering + oracle" `Quick
      test_transcript_rendering;
    Alcotest.test_case "Serve.run -j1 = -j4" `Quick test_serve_jobs_equal;
    Alcotest.test_case "Serve.run faults+retries byte-identical" `Quick
      test_serve_faults_equal;
    Alcotest.test_case "Serve.run incremental = refreeze" `Quick
      test_serve_mode_equal;
    QCheck_alcotest.to_alcotest qcheck_stream_roundtrip;
    Alcotest.test_case "stream parse errors" `Quick test_stream_parse_errors;
    Alcotest.test_case "policy labels round-trip" `Quick test_policy_labels;
    Alcotest.test_case "generated churn always applicable" `Quick
      test_generated_events_applicable;
  ]
