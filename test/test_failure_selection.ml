(* Tests for link failures / failover and application-aware path
   selection. *)

open Pan_topology
open Pan_scion

let a = Gen.fig1_asn
let g = Gen.fig1 ()

let net_with_mas () =
  Failure.create (Authz.create ~mas:[ (a 'D', a 'E') ] g)

let test_link_state () =
  let net = net_with_mas () in
  Alcotest.(check bool) "up initially" true (Failure.link_up net (a 'A') (a 'D'));
  Failure.fail_link net (a 'A') (a 'D');
  Alcotest.(check bool) "down" false (Failure.link_up net (a 'D') (a 'A'));
  Failure.fail_link net (a 'D') (a 'A');
  Alcotest.(check int) "idempotent" 1 (List.length (Failure.failed_links net));
  Failure.restore_link net (a 'A') (a 'D');
  Alcotest.(check bool) "restored" true (Failure.link_up net (a 'A') (a 'D'));
  Failure.fail_link net (a 'A') (a 'D');
  Failure.fail_link net (a 'B') (a 'E');
  Failure.restore_all net;
  Alcotest.(check int) "restore_all" 0 (List.length (Failure.failed_links net))

let test_send_on_segment_drops_on_failed_link () =
  let net = net_with_mas () in
  let seg =
    Segment.make_exn (Failure.authz net) (List.map a [ 'H'; 'D'; 'A' ])
  in
  (match Failure.send_on_segment net seg ~payload:"x" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "live path dropped: %s" e);
  Failure.fail_link net (a 'D') (a 'A');
  match Failure.send_on_segment net seg ~payload:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "packet crossed a failed link"

let test_failover_uses_alternate () =
  (* H -> I has both H-D-E-I (via peering) and H-D-A-B-E-I (via core);
     failing D-E must shift delivery to the longer path *)
  let net = net_with_mas () in
  Failure.fail_link net (a 'D') (a 'E');
  match Failure.send_with_failover net ~src:(a 'H') ~dst:(a 'I') ~payload:"x" with
  | Error e -> Alcotest.failf "failover failed: %s" e
  | Ok outcome ->
      Alcotest.(check bool) "took more than one attempt" true
        (outcome.Failure.attempts > 1);
      let trace = outcome.Failure.delivery.Forwarding.trace in
      Alcotest.(check bool) "avoids the failed link" true
        (let rec ok = function
           | x :: (y :: _ as rest) ->
               (not
                  (Asn.equal x (a 'D') && Asn.equal y (a 'E')
                  || (Asn.equal x (a 'E') && Asn.equal y (a 'D'))))
               && ok rest
           | _ -> true
         in
         ok trace)

let test_connectivity_lost_when_cut () =
  let net = net_with_mas () in
  (* H's only access link is D-H *)
  Failure.fail_link net (a 'D') (a 'H');
  Alcotest.(check bool) "H unreachable" false
    (Failure.connectivity net ~src:(a 'H') ~dst:(a 'I'))

let test_ma_improves_survival () =
  (* destination B from H: GRC paths go H-D-A-B only; with the MA the
     H-D-E-B path also exists, so failing A-D cuts GRC but not MA *)
  let grc_net = Failure.create (Authz.create g) in
  let ma_net = net_with_mas () in
  Failure.fail_link grc_net (a 'A') (a 'D');
  Failure.fail_link ma_net (a 'A') (a 'D');
  Alcotest.(check bool) "GRC-only loses H->B" false
    (Failure.connectivity grc_net ~src:(a 'H') ~dst:(a 'B'));
  Alcotest.(check bool) "MA keeps H->B" true
    (Failure.connectivity ma_net ~src:(a 'H') ~dst:(a 'B'))

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)

let ctx () =
  {
    Selection.geo = Geo.generate ~seed:3 g;
    Selection.bandwidth = Bandwidth.degree_gravity g;
  }

let test_latency_proxy_monotone_in_hops () =
  let c = ctx () in
  let short = [ a 'H'; a 'D'; a 'A' ] in
  let long = [ a 'H'; a 'D'; a 'A'; a 'B' ] in
  (* the proxy is bounded below by the per-hop penalty *)
  Alcotest.(check bool) "penalty floor (3 hops)" true
    (Selection.latency_proxy c short >= 300.0);
  Alcotest.(check bool) "penalty floor (4 hops)" true
    (Selection.latency_proxy c long >= 400.0);
  (* extending a path by one more link can only add distance and penalty *)
  Alcotest.(check bool) "superpath costs more" true
    (Selection.latency_proxy c long > Selection.latency_proxy c short)

let test_latency_proxy_invalid () =
  let c = ctx () in
  try
    ignore (Selection.latency_proxy c [ a 'H' ]);
    Alcotest.fail "short path accepted"
  with Invalid_argument _ -> ()

let test_bandwidth_proxy () =
  let c = ctx () in
  let bw = Selection.bandwidth_proxy c [ a 'H'; a 'D'; a 'A' ] in
  Alcotest.(check (float 1e-9)) "matches Bandwidth.path_bandwidth"
    (Bandwidth.path_bandwidth c.Selection.bandwidth [ a 'H'; a 'D'; a 'A' ])
    bw

let test_selection_prefers_app_metric () =
  let c = ctx () in
  let authz = Authz.create ~mas:[ (a 'D', a 'E') ] g in
  let ps = Path_server.build authz (Beacon.run authz) in
  let candidates = Combinator.end_to_end ps ~src:(a 'H') ~dst:(a 'I') in
  Alcotest.(check bool) "multiple candidates" true
    (List.length candidates >= 2);
  (match Selection.select c Selection.Voip candidates with
  | None -> Alcotest.fail "no selection"
  | Some best ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "voip pick minimizes latency" true
            (Selection.latency_proxy c (Segment.ases best)
            <= Selection.latency_proxy c (Segment.ases s) +. 1e-9))
        candidates);
  match Selection.select c Selection.File_transfer candidates with
  | None -> Alcotest.fail "no selection"
  | Some best ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "ft pick maximizes bandwidth" true
            (Selection.bandwidth_proxy c (Segment.ases best)
            >= Selection.bandwidth_proxy c (Segment.ases s) -. 1e-9))
        candidates

let test_rank_sorted () =
  let c = ctx () in
  let authz = Authz.create g in
  let ps = Path_server.build authz (Beacon.run authz) in
  let candidates = Combinator.end_to_end ps ~src:(a 'H') ~dst:(a 'G') in
  let ranked = Selection.rank c Selection.Voip candidates in
  Alcotest.(check int) "same cardinality" (List.length candidates)
    (List.length ranked);
  let rec sorted = function
    | s1 :: (s2 :: _ as rest) ->
        Selection.score c Selection.Voip (Segment.ases s1)
        <= Selection.score c Selection.Voip (Segment.ases s2) +. 1e-9
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by score" true (sorted ranked)

let test_select_empty () =
  let c = ctx () in
  Alcotest.(check bool) "none on empty" true
    (Selection.select c Selection.Web [] = None)

let suite =
  [
    Alcotest.test_case "link state management" `Quick test_link_state;
    Alcotest.test_case "segment drops on failed link" `Quick
      test_send_on_segment_drops_on_failed_link;
    Alcotest.test_case "failover uses alternate path" `Quick
      test_failover_uses_alternate;
    Alcotest.test_case "connectivity lost when cut" `Quick
      test_connectivity_lost_when_cut;
    Alcotest.test_case "MAs improve survival" `Quick test_ma_improves_survival;
    Alcotest.test_case "latency proxy" `Quick test_latency_proxy_monotone_in_hops;
    Alcotest.test_case "latency proxy invalid" `Quick
      test_latency_proxy_invalid;
    Alcotest.test_case "bandwidth proxy" `Quick test_bandwidth_proxy;
    Alcotest.test_case "selection per application" `Quick
      test_selection_prefers_app_metric;
    Alcotest.test_case "rank sorted" `Quick test_rank_sorted;
    Alcotest.test_case "select on empty" `Quick test_select_empty;
  ]
