(* Tests for the agreement formalization (Eq. 2) and its canonical
   instances. *)

open Pan_topology
open Pan_econ

let a = Gen.fig1_asn
let g = Gen.fig1 ()

let set cs = Asn.set_of_list (List.map a cs)

let test_make_validates_grants () =
  (* offering a provider one does not have is rejected *)
  let bad =
    Agreement.make g ~x:(a 'D') ~y:(a 'E')
      ~x_grant:{ Agreement.empty_grant with Agreement.providers = set [ 'B' ] }
      ~y_grant:Agreement.empty_grant
  in
  (match bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign provider accepted");
  (* same parties *)
  match
    Agreement.make g ~x:(a 'D') ~y:(a 'D')
      ~x_grant:Agreement.empty_grant ~y_grant:Agreement.empty_grant
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "x = y accepted"

let test_paper_example () =
  let ag = Agreement.paper_example g in
  let x, y = Agreement.parties ag in
  Alcotest.(check int) "x is D" (Asn.to_int (a 'D')) (Asn.to_int x);
  Alcotest.(check int) "y is E" (Asn.to_int (a 'E')) (Asn.to_int y);
  (* D gains access to B and F through E *)
  let d_access = Agreement.accessible ag ~to_:(a 'D') in
  Alcotest.(check bool) "D reaches B" true (Asn.Set.mem (a 'B') d_access);
  Alcotest.(check bool) "D reaches F" true (Asn.Set.mem (a 'F') d_access);
  Alcotest.(check int) "exactly two" 2 (Asn.Set.cardinal d_access);
  (* E gains access to A *)
  let e_access = Agreement.accessible ag ~to_:(a 'E') in
  Alcotest.(check bool) "E reaches A" true (Asn.Set.mem (a 'A') e_access);
  Alcotest.(check int) "exactly one" 1 (Asn.Set.cardinal e_access);
  Alcotest.(check bool) "violates GRC" true (Agreement.violates_grc g ag)

let test_counterparty () =
  let ag = Agreement.paper_example g in
  Alcotest.(check int) "counterparty of D" (Asn.to_int (a 'E'))
    (Asn.to_int (Agreement.counterparty ag (a 'D')));
  try
    ignore (Agreement.counterparty ag (a 'A'));
    Alcotest.fail "non-party accepted"
  with Invalid_argument _ -> ()

let test_classic_peering () =
  let ag = Agreement.classic_peering g (a 'D') (a 'E') in
  (* a_p = [D(down {H}); E(down {I})] as in §III-B1 *)
  let d_grant = Agreement.grant_of ag (a 'D') in
  Alcotest.(check bool) "D offers H" true
    (Asn.Set.mem (a 'H') d_grant.Agreement.customers);
  Alcotest.(check bool) "no providers offered" true
    (Asn.Set.is_empty d_grant.Agreement.providers);
  Alcotest.(check bool) "peering conforms to GRC" false
    (Agreement.violates_grc g ag)

let test_mutuality () =
  let ag = Agreement.mutuality g (a 'D') (a 'E') in
  (* D offers providers {A}, peers {C} (E excluded, H is a customer of E?
     no -- nothing excluded since E has no customers among them) *)
  let d_grant = Agreement.grant_of ag (a 'D') in
  Alcotest.(check bool) "D offers A" true
    (Asn.Set.mem (a 'A') d_grant.Agreement.providers);
  Alcotest.(check bool) "D offers peer C" true
    (Asn.Set.mem (a 'C') d_grant.Agreement.peers);
  Alcotest.(check bool) "partner itself excluded" false
    (Asn.Set.mem (a 'E') d_grant.Agreement.peers);
  (* E offers providers {B}, peers {C, F} *)
  let e_access = Agreement.accessible ag ~to_:(a 'D') in
  Alcotest.(check bool) "D gains B, C, F" true
    (Asn.Set.equal e_access (set [ 'B'; 'C'; 'F' ]))

let test_mutuality_excludes_partner_customers () =
  (* add an AS that is both a peer of D and a customer of E: it must not
     be offered to E *)
  let g' = Graph.copy g in
  let extra = Asn.of_int 99 in
  Graph.add_peering g' (a 'D') extra;
  Graph.add_provider_customer g' ~provider:(a 'E') ~customer:extra;
  let ag = Agreement.mutuality g' (a 'D') (a 'E') in
  let d_grant = Agreement.grant_of ag (a 'D') in
  Alcotest.(check bool) "E's customer filtered from D's grant" false
    (Asn.Set.mem extra d_grant.Agreement.peers)

let test_mutuality_requires_peers () =
  try
    ignore (Agreement.mutuality g (a 'A') (a 'D'));
    Alcotest.fail "non-peers accepted"
  with Invalid_argument _ -> ()

let test_grant_all () =
  let grant =
    {
      Agreement.providers = set [ 'A' ];
      peers = set [ 'C' ];
      customers = set [ 'H' ];
    }
  in
  Alcotest.(check int) "union size" 3
    (Asn.Set.cardinal (Agreement.grant_all grant))

let suite =
  [
    Alcotest.test_case "make validates grants" `Quick
      test_make_validates_grants;
    Alcotest.test_case "paper example (Eq. 6)" `Quick test_paper_example;
    Alcotest.test_case "counterparty" `Quick test_counterparty;
    Alcotest.test_case "classic peering (§III-B1)" `Quick
      test_classic_peering;
    Alcotest.test_case "mutuality (§VI MA)" `Quick test_mutuality;
    Alcotest.test_case "mutuality excludes partner customers" `Quick
      test_mutuality_excludes_partner_customers;
    Alcotest.test_case "mutuality requires peers" `Quick
      test_mutuality_requires_peers;
    Alcotest.test_case "grant_all" `Quick test_grant_all;
  ]
