(* Cross-stack property tests: invariants that must hold on arbitrary
   generated topologies, tying the substrates together the way the paper's
   argument does. *)

open Pan_topology
open Pan_numerics
open Pan_scion
open Pan_routing

let graph_of_seed seed =
  let params =
    {
      Gen.default_params with
      Gen.n_tier1 = 3 + (seed mod 3);
      n_transit = 15 + (seed mod 10);
      n_stub = 40 + (seed mod 20);
      route_server_hubs = 2;
    }
  in
  Gen.graph (Gen.generate ~params ~seed ())

(* 1. Beaconing only registers verifiable, GRC-authorized segments. *)
let qcheck_beacon_segments_sound =
  QCheck.Test.make ~count:10 ~name:"beacon segments verify and are GRC paths"
    QCheck.(int_range 1 500)
    (fun seed ->
      let g = graph_of_seed seed in
      let authz = Authz.create g in
      let b = Beacon.run authz in
      List.for_all
        (fun x ->
          List.for_all
            (fun seg ->
              Segment.verify seg
              && Path.is_valley_free g (Path.make_exn g (Segment.ases seg)))
            (Beacon.down_segments b x))
        (Graph.ases g))

(* 2. Combinator output: verified, loop-free, correct endpoints — with
   every MA concluded, i.e. including GRC-violating splices. *)
let qcheck_combinator_paths_wellformed =
  QCheck.Test.make ~count:6 ~name:"combinator paths well-formed under MAs"
    QCheck.(int_range 1 500)
    (fun seed ->
      let g = graph_of_seed seed in
      let mas = Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g [] in
      let authz = Authz.create ~mas g in
      let ps = Path_server.build authz (Beacon.run authz) in
      let rng = Rng.create seed in
      let ases = Array.of_list (Graph.ases g) in
      let ok = ref true in
      for _ = 1 to 10 do
        let src = Rng.choose rng ases and dst = Rng.choose rng ases in
        if not (Asn.equal src dst) then
          List.iter
            (fun seg ->
              let path = Segment.ases seg in
              let rec distinct = function
                | [] -> true
                | x :: rest ->
                    (not (List.exists (Asn.equal x) rest)) && distinct rest
              in
              if
                not
                  (Segment.verify seg && distinct path
                  && Asn.equal (Segment.source seg) src
                  && Asn.equal (Segment.destination seg) dst)
              then ok := false)
            (Combinator.end_to_end ~max_paths:20 ps ~src ~dst)
      done;
      !ok)

(* 3. GRC-derived SPP instances are certified safe and conform. *)
let qcheck_grc_instances_safe =
  QCheck.Test.make ~count:5 ~name:"GRC instances conform and are wheel-free"
    QCheck.(int_range 1 500)
    (fun seed ->
      (* a small random sub-hierarchy so route enumeration stays cheap *)
      let params =
        {
          Gen.default_params with
          Gen.n_tier1 = 2;
          n_transit = 4;
          n_stub = 6;
          transit_peering_degree = 2.0;
          stub_peering_prob = 0.3;
          route_server_hubs = 0;
        }
      in
      let g = Gen.graph (Gen.generate ~params ~seed ()) in
      let rng = Rng.create seed in
      let dests =
        Rng.sample_without_replacement rng 3 (Array.of_list (Graph.ases g))
      in
      Array.for_all
        (fun dest ->
          let i = Policy.grc_instance ~max_len:4 g ~dest in
          Grc_check.conforms g i
          && Dispute.certified_safe i
          &&
          match Bgp.run ~schedule:Bgp.Round_robin i with
          | Bgp.Converged _ -> true
          | _ -> false)
        dests)

(* 4. MA paths are exactly the GRC-violating peer-transit paths:
   disjointness plus the authorization view agree. *)
let qcheck_ma_paths_authorized_only_with_ma =
  QCheck.Test.make ~count:6
    ~name:"MA paths refused without the MA, authorized with it"
    QCheck.(int_range 1 500)
    (fun seed ->
      let g = graph_of_seed seed in
      (* core transit would authorize tier1-tier1-tier1 peer paths even
         without an MA; disable it to isolate the MA effect *)
      let no_ma = Authz.create ~core_transit:false g in
      let rng = Rng.create (seed + 1) in
      let ases = Array.of_list (Graph.ases g) in
      let ok = ref true in
      for _ = 1 to 5 do
        let x = Rng.choose rng ases in
        let sample_paths = ref [] in
        Path_enum.iter_paths
          (fun ~mid ~dst ->
            if List.length !sample_paths < 5 then
              sample_paths := (mid, dst) :: !sample_paths)
          (Path_enum.ma_direct g x);
        List.iter
          (fun (mid, dst) ->
            let with_ma =
              Authz.create ~core_transit:false ~mas:[ (x, mid) ] g
            in
            (match Segment.make no_ma [ x; mid; dst ] with
            | Ok _ -> ok := false (* must be refused without the MA *)
            | Error _ -> ());
            match Segment.make with_ma [ x; mid; dst ] with
            | Ok _ -> ()
            | Error _ -> ok := false (* must be authorized with it *))
          !sample_paths
      done;
      !ok)

(* 5. Economic identities on random scenarios over generated graphs. *)
let qcheck_cash_settlement_identities =
  QCheck.Test.make ~count:15 ~name:"cash settlement identities (random graphs)"
    QCheck.(int_range 1 2000)
    (fun seed ->
      let g = graph_of_seed (1 + (seed mod 7)) in
      let rng = Rng.create seed in
      (* find a peering pair *)
      let pair =
        Graph.fold_peering_links
          (fun x y acc -> match acc with None -> Some (x, y) | s -> s)
          g None
      in
      match pair with
      | None -> true
      | Some (x, y) -> (
          match Pan_econ.Scenario_gen.random_scenario rng g ~x ~y with
          | exception Invalid_argument _ -> true
          | scenario ->
              let r = Pan_econ.Cash_opt.optimize scenario in
              if r.Pan_econ.Cash_opt.concluded then
                Float.abs
                  (r.Pan_econ.Cash_opt.u_x_after
                  -. r.Pan_econ.Cash_opt.u_y_after)
                < 1e-6
                && Float.abs
                     (r.Pan_econ.Cash_opt.u_x_after
                     +. r.Pan_econ.Cash_opt.u_y_after
                     -. (r.Pan_econ.Cash_opt.u_x +. r.Pan_econ.Cash_opt.u_y))
                   < 1e-6
              else
                r.Pan_econ.Cash_opt.u_x +. r.Pan_econ.Cash_opt.u_y < 0.0))

(* 6. Decomposition sums to utility on random scenarios. *)
let qcheck_decomposition_consistent =
  QCheck.Test.make ~count:15 ~name:"decomposition sums to utility"
    QCheck.(int_range 1 2000)
    (fun seed ->
      let g = Gen.fig1 () in
      let rng = Rng.create seed in
      let scenario =
        Pan_econ.Scenario_gen.random_scenario rng g
          ~x:(Gen.fig1_asn 'D') ~y:(Gen.fig1_asn 'E')
      in
      let choices = Pan_econ.Traffic_model.full_choice scenario in
      match Pan_econ.Decomposition.of_choices scenario choices with
      | Error _ -> false
      | Ok (dx, dy) ->
          let ux, uy =
            Pan_econ.Traffic_model.utilities_exn scenario choices
          in
          Float.abs (dx.Pan_econ.Decomposition.utility -. ux) < 1e-9
          && Float.abs (dy.Pan_econ.Decomposition.utility -. uy) < 1e-9)

(* 7. BOSCO theorems hold on random games end to end. *)
let qcheck_bosco_theorems =
  QCheck.Test.make ~count:8 ~name:"BOSCO theorems on random games"
    QCheck.(int_range 1 2000)
    (fun seed ->
      let open Pan_bosco in
      let rng = Rng.create seed in
      let lo = -1.0 -. Rng.float rng and hi = 0.5 +. Rng.float rng in
      let dist = Distribution.uniform lo hi in
      let report =
        Service.negotiate ~rng ~dist_x:dist ~dist_y:dist ~w:12 ()
      in
      let sx = report.Service.strategy_x and sy = report.Service.strategy_y in
      let game = report.Service.game in
      let check_rng = Rng.create (seed * 3) in
      Properties.individual_rationality ~samples:300 check_rng game sx sy
      && Properties.soundness ~samples:300 (Rng.create (seed * 5)) game sx sy
      && Properties.privacy sx && Properties.privacy sy
      && report.Service.pod >= -1e-6
      && report.Service.pod <= 1.0 +. 1e-6)

(* 8. Traffic conservation: link-load mass equals the placed volume
   weighted by path length. *)
let qcheck_traffic_conservation =
  QCheck.Test.make ~count:20 ~name:"traffic mass conservation"
    QCheck.(pair (int_range 1 100) (float_range 0.1 50.0))
    (fun (seed, volume) ->
      let g = Gen.fig1 () in
      let a = Gen.fig1_asn in
      let bw = Bandwidth.degree_gravity g in
      let paths =
        [ [ a 'H'; a 'D'; a 'A' ]; [ a 'H'; a 'D'; a 'E'; a 'I' ] ]
      in
      let k = 1 + (seed mod 2) in
      let t = Traffic.create g in
      Traffic.place t bw (Traffic.Split k) paths volume;
      let total_load =
        List.fold_left
          (fun acc (x, y) -> acc +. Traffic.link_load t x y)
          0.0
          [ (a 'H', a 'D'); (a 'D', a 'A'); (a 'D', a 'E'); (a 'E', a 'I') ]
      in
      let chosen = List.filteri (fun i _ -> i < k) paths in
      let expected =
        List.fold_left
          (fun acc p ->
            acc
            +. (volume /. float_of_int k *. float_of_int (List.length p - 1)))
          0.0 chosen
      in
      Float.abs (total_load -. expected) < 1e-6)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_beacon_segments_sound;
    QCheck_alcotest.to_alcotest qcheck_combinator_paths_wellformed;
    QCheck_alcotest.to_alcotest qcheck_grc_instances_safe;
    QCheck_alcotest.to_alcotest qcheck_ma_paths_authorized_only_with_ma;
    QCheck_alcotest.to_alcotest qcheck_cash_settlement_identities;
    QCheck_alcotest.to_alcotest qcheck_decomposition_consistent;
    QCheck_alcotest.to_alcotest qcheck_bosco_theorems;
    QCheck_alcotest.to_alcotest qcheck_traffic_conservation;
  ]
