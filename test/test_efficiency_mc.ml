(* Monte-Carlo cross-validation of the semi-analytic efficiency
   computations: Eq. 19's piecewise-exact integral must agree with a
   direct simulation of the bargaining game (Efficiency.mc_expected_nash,
   shared with the bench suite), and the PoD with a simulated PoD. *)

open Pan_numerics
open Pan_bosco

let equilibrium_game seed w =
  let rng = Rng.create seed in
  let dist = Distribution.uniform (-1.0) 1.0 in
  let report = Service.negotiate ~rng ~dist_x:dist ~dist_y:dist ~w () in
  (report.Service.game, report.Service.strategy_x, report.Service.strategy_y)

let test_expected_nash_vs_mc () =
  for seed = 1 to 5 do
    let game, sx, sy = equilibrium_game seed 15 in
    let exact = Efficiency.expected_nash game sx sy in
    let mc =
      Efficiency.mc_expected_nash ~rng:(Rng.create (seed * 11))
        ~samples:200_000 game sx sy
    in
    let tolerance = 0.02 *. Float.max 0.01 (Float.abs exact) +. 0.002 in
    if Float.abs (exact -. mc) > tolerance then
      Alcotest.failf "seed %d: exact %f vs MC %f" seed exact mc
  done

let test_truthful_benchmark_vs_mc () =
  let game, _, _ = equilibrium_game 3 10 in
  let exact = Efficiency.expected_nash_truthful ~grid:600 game in
  let mc = Efficiency.mc_truthful ~rng:(Rng.create 77) ~samples:400_000 game in
  if Float.abs (exact -. mc) > 0.003 then
    Alcotest.failf "truthful: exact %f vs MC %f" exact mc

let test_pod_vs_mc () =
  let game, sx, sy = equilibrium_game 9 20 in
  let pod = Efficiency.price_of_dishonesty ~grid:600 game sx sy in
  let mc_pod =
    1.0
    -. Efficiency.mc_expected_nash ~rng:(Rng.create 5) ~samples:300_000 game
         sx sy
       /. Efficiency.mc_truthful ~rng:(Rng.create 6) ~samples:300_000 game
  in
  if Float.abs (pod -. mc_pod) > 0.03 then
    Alcotest.failf "PoD %f vs MC %f" pod mc_pod

let test_all_cancel_pod_is_one () =
  (* sanity anchor: the degenerate no-trade equilibrium throws away the
     entire surplus *)
  let game, _, _ = equilibrium_game 4 10 in
  let eq =
    Equilibrium.best_response_dynamics ~start:Equilibrium.All_cancel game
  in
  let pod =
    Efficiency.price_of_dishonesty game eq.Equilibrium.strategy_x
      eq.Equilibrium.strategy_y
  in
  Alcotest.(check (float 1e-9)) "PoD of no-trade" 1.0 pod

let suite =
  [
    Alcotest.test_case "expected Nash product vs Monte-Carlo" `Slow
      test_expected_nash_vs_mc;
    Alcotest.test_case "truthful benchmark vs Monte-Carlo" `Slow
      test_truthful_benchmark_vs_mc;
    Alcotest.test_case "PoD vs Monte-Carlo" `Slow test_pod_vs_mc;
    Alcotest.test_case "all-cancel PoD = 1" `Quick
      test_all_cancel_pod_is_one;
  ]
