(* Monte-Carlo cross-validation of the semi-analytic efficiency
   computations: Eq. 19's piecewise-exact integral must agree with a
   direct simulation of the bargaining game, and the PoD with a simulated
   PoD. *)

open Pan_numerics
open Pan_bosco

let mc_expected_nash ~samples rng (game : Game.t) sx sy =
  let open Game in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let u_x = Distribution.sample game.dist_x rng in
    let u_y = Distribution.sample game.dist_y rng in
    let outcome = Game.play game ~strategy_x:sx ~strategy_y:sy ~u_x ~u_y in
    acc := !acc +. Game.nash_value ~u_x ~u_y outcome
  done;
  !acc /. float_of_int samples

let mc_truthful ~samples rng (game : Game.t) =
  let open Game in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let u_x = Distribution.sample game.dist_x rng in
    let u_y = Distribution.sample game.dist_y rng in
    if u_x +. u_y >= 0.0 then begin
      let half = (u_x +. u_y) /. 2.0 in
      acc := !acc +. (half *. half)
    end
  done;
  !acc /. float_of_int samples

let equilibrium_game seed w =
  let rng = Rng.create seed in
  let dist = Distribution.uniform (-1.0) 1.0 in
  let report = Service.negotiate ~rng ~dist_x:dist ~dist_y:dist ~w () in
  (report.Service.game, report.Service.strategy_x, report.Service.strategy_y)

let test_expected_nash_vs_mc () =
  for seed = 1 to 5 do
    let game, sx, sy = equilibrium_game seed 15 in
    let exact = Efficiency.expected_nash game sx sy in
    let mc = mc_expected_nash ~samples:200_000 (Rng.create (seed * 11)) game sx sy in
    let tolerance = 0.02 *. Float.max 0.01 (Float.abs exact) +. 0.002 in
    if Float.abs (exact -. mc) > tolerance then
      Alcotest.failf "seed %d: exact %f vs MC %f" seed exact mc
  done

let test_truthful_benchmark_vs_mc () =
  let game, _, _ = equilibrium_game 3 10 in
  let exact = Efficiency.expected_nash_truthful ~grid:600 game in
  let mc = mc_truthful ~samples:400_000 (Rng.create 77) game in
  if Float.abs (exact -. mc) > 0.003 then
    Alcotest.failf "truthful: exact %f vs MC %f" exact mc

let test_pod_vs_mc () =
  let game, sx, sy = equilibrium_game 9 20 in
  let pod = Efficiency.price_of_dishonesty ~grid:600 game sx sy in
  let rng = Rng.create 5 in
  let mc_pod =
    1.0
    -. mc_expected_nash ~samples:300_000 rng game sx sy
       /. mc_truthful ~samples:300_000 (Rng.create 6) game
  in
  if Float.abs (pod -. mc_pod) > 0.03 then
    Alcotest.failf "PoD %f vs MC %f" pod mc_pod

let test_all_cancel_pod_is_one () =
  (* sanity anchor: the degenerate no-trade equilibrium throws away the
     entire surplus *)
  let game, _, _ = equilibrium_game 4 10 in
  let eq =
    Equilibrium.best_response_dynamics ~start:Equilibrium.All_cancel game
  in
  let pod =
    Efficiency.price_of_dishonesty game eq.Equilibrium.strategy_x
      eq.Equilibrium.strategy_y
  in
  Alcotest.(check (float 1e-9)) "PoD of no-trade" 1.0 pod

let suite =
  [
    Alcotest.test_case "expected Nash product vs Monte-Carlo" `Slow
      test_expected_nash_vs_mc;
    Alcotest.test_case "truthful benchmark vs Monte-Carlo" `Slow
      test_truthful_benchmark_vs_mc;
    Alcotest.test_case "PoD vs Monte-Carlo" `Slow test_pod_vs_mc;
    Alcotest.test_case "all-cancel PoD = 1" `Quick
      test_all_cancel_pod_is_one;
  ]
