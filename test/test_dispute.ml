(* Tests for dispute-wheel detection and GRC conformance checking. *)

open Pan_topology
open Pan_routing

let asn = Asn.of_int

let test_good_gadget_no_wheel () =
  Alcotest.(check bool) "no wheel" false (Dispute.has_wheel (Gadgets.good_gadget ()));
  Alcotest.(check bool) "certified safe" true
    (Dispute.certified_safe (Gadgets.good_gadget ()))

let test_bad_gadget_wheel () =
  match Dispute.find_wheel (Gadgets.bad_gadget ()) with
  | None -> Alcotest.fail "BAD GADGET must contain a wheel"
  | Some wheel ->
      Alcotest.(check bool) "at least two pivots" true (List.length wheel >= 2);
      (* every pivot's rim must be permitted and weakly preferred *)
      let i = Gadgets.bad_gadget () in
      List.iter
        (fun (s : Dispute.spoke) ->
          match
            ( Spp.rank i s.Dispute.pivot s.Dispute.rim,
              Spp.rank i s.Dispute.pivot s.Dispute.spoke )
          with
          | Some r_rim, Some r_spoke ->
              Alcotest.(check bool) "rim weakly preferred" true
                (r_rim <= r_spoke)
          | _ -> Alcotest.fail "wheel routes not permitted")
        wheel

let test_disagree_wheel () =
  Alcotest.(check bool) "DISAGREE has a wheel" true
    (Dispute.has_wheel (Gadgets.disagree ()))

let test_wedgie_wheel () =
  (* two stable solutions => a wheel must exist (contrapositive of the
     GSW uniqueness theorem) *)
  Alcotest.(check bool) "wedgie has a wheel" true
    (Dispute.has_wheel (Gadgets.wedgie ()))

let test_fig1_instances_wheel () =
  Alcotest.(check bool) "fig1 DISAGREE" true
    (Dispute.has_wheel (Gadgets.fig1_disagree ()));
  Alcotest.(check bool) "fig1 BAD GADGET" true
    (Dispute.has_wheel (Gadgets.fig1_bad_gadget ()))

let test_grc_instance_no_wheel () =
  (* Gao-Rexford configurations contain no dispute wheel *)
  let g = Gen.fig1 () in
  List.iter
    (fun dest ->
      let i = Policy.grc_instance ~max_len:4 g ~dest in
      Alcotest.(check bool) "GRC => wheel-free" false (Dispute.has_wheel i))
    (Graph.ases g)

let test_no_wheel_implies_safe_and_unique () =
  (* spot-validate the GSW theorem on our instances: wheel-free implies a
     unique stable solution and deterministic convergence *)
  let check i =
    if Dispute.certified_safe i then begin
      Alcotest.(check int) "unique stable solution" 1
        (List.length (Spp.stable_solutions i));
      Alcotest.(check bool) "deterministic" true
        (Bgp.converges_deterministically ~seed:3 i)
    end
  in
  check (Gadgets.good_gadget ());
  let g = Gen.fig1 () in
  check (Policy.grc_instance ~max_len:4 g ~dest:(Gen.fig1_asn 'A'))

(* ------------------------------------------------------------------ *)
(* Grc_check                                                           *)

let test_conforms () =
  let g = Gen.fig1 () in
  let i = Policy.grc_instance ~max_len:4 g ~dest:(Gen.fig1_asn 'A') in
  Alcotest.(check bool) "GRC instance conforms" true (Grc_check.conforms g i)

let test_violations_detected () =
  let g = Gen.fig1 () in
  let i = Gadgets.fig1_disagree () in
  let vs = Grc_check.violations g i in
  Alcotest.(check bool) "violations found" true (vs <> []);
  (* D's route D-E-B-A is a valley violation *)
  Alcotest.(check bool) "valley violation present" true
    (List.exists
       (function Grc_check.Valley _ -> true | _ -> false)
       vs)

let test_preference_violation () =
  (* a valley-free configuration that ranks a provider route above a peer
     route: 1 is provider of 2 and 3, 2-3 peer, destination 3; node 2
     prefers the provider detour [2;1;3] over the peer route [2;3] *)
  let g2 = Graph.create () in
  let n1 = asn 1 and n2 = asn 2 and n3 = asn 3 in
  Graph.add_provider_customer g2 ~provider:n1 ~customer:n2;
  Graph.add_provider_customer g2 ~provider:n1 ~customer:n3;
  Graph.add_peering g2 n2 n3;
  let i =
    Spp.create ~dest:n3
      ~permitted:[ (n2, [ [ n2; n1; n3 ]; [ n2; n3 ] ]); (n1, [ [ n1; n3 ] ]) ]
  in
  let vs = Grc_check.violations g2 i in
  Alcotest.(check bool) "preference violation detected" true
    (List.exists
       (function Grc_check.Preference _ -> true | _ -> false)
       vs)

let test_remove_link () =
  let i = Gadgets.surprise () in
  let failed = Grc_check.remove_link i (asn 4, asn 0) in
  (* all routes through the helper disappear *)
  List.iter
    (fun node ->
      List.iter
        (fun route ->
          if List.exists (Asn.equal (asn 4)) route then
            Alcotest.fail "route through failed link survived")
        (Spp.permitted failed node))
    (Spp.nodes failed)

let test_surprise_reduction () =
  let benign = Gadgets.surprise () in
  (* benign: converges deterministically *)
  Alcotest.(check bool) "benign converges deterministically" true
    (Bgp.converges_deterministically ~seed:2 benign);
  Alcotest.(check int) "benign has a unique stable state" 1
    (List.length (Spp.stable_solutions benign));
  (* but it hides a dispute wheel... *)
  Alcotest.(check bool) "wheel hidden inside" true (Dispute.has_wheel benign);
  (* ...exposed by the link failure: BAD GADGET *)
  let failed = Grc_check.remove_link benign (asn 4, asn 0) in
  Alcotest.(check int) "no stable state after failure" 0
    (List.length (Spp.stable_solutions failed));
  match Bgp.run ~schedule:Bgp.Round_robin failed with
  | Bgp.Oscillation _ -> ()
  | _ -> Alcotest.fail "failed SURPRISE must oscillate"

let suite =
  [
    Alcotest.test_case "GOOD GADGET wheel-free" `Quick
      test_good_gadget_no_wheel;
    Alcotest.test_case "BAD GADGET wheel" `Quick test_bad_gadget_wheel;
    Alcotest.test_case "DISAGREE wheel" `Quick test_disagree_wheel;
    Alcotest.test_case "WEDGIE wheel" `Quick test_wedgie_wheel;
    Alcotest.test_case "fig1 instances have wheels" `Quick
      test_fig1_instances_wheel;
    Alcotest.test_case "GRC instances wheel-free" `Quick
      test_grc_instance_no_wheel;
    Alcotest.test_case "wheel-free => unique + deterministic" `Quick
      test_no_wheel_implies_safe_and_unique;
    Alcotest.test_case "conforms" `Quick test_conforms;
    Alcotest.test_case "violations detected" `Quick test_violations_detected;
    Alcotest.test_case "preference violation" `Quick
      test_preference_violation;
    Alcotest.test_case "remove_link" `Quick test_remove_link;
    Alcotest.test_case "SURPRISE reduces to BAD GADGET" `Quick
      test_surprise_reduction;
  ]
