(* Tests for the SPVP (BGP) dynamics: convergence, non-determinism, and
   oscillation — the §II claims. *)

open Pan_topology
open Pan_numerics
open Pan_routing

let asn = Asn.of_int

let test_good_gadget_converges () =
  match Bgp.run ~schedule:Bgp.Round_robin (Gadgets.good_gadget ()) with
  | Bgp.Converged { assignment; _ } ->
      (* every node settles on its direct route *)
      List.iter
        (fun n ->
          Alcotest.(check bool) "direct route" true
            (Asn.Map.find n assignment = Some [ n; asn 0 ]))
        (Spp.nodes (Gadgets.good_gadget ()))
  | other -> Alcotest.failf "expected convergence, got %a" (fun _ -> ignore) other

let test_converged_state_is_stable () =
  let i = Gadgets.disagree () in
  match Bgp.run ~schedule:Bgp.Round_robin i with
  | Bgp.Converged { assignment; _ } ->
      Alcotest.(check bool) "stable" true (Spp.is_stable i assignment)
  | _ -> Alcotest.fail "DISAGREE should converge under round-robin"

let test_random_schedule_converges_disagree () =
  let i = Gadgets.disagree () in
  for seed = 1 to 10 do
    match Bgp.run ~schedule:(Bgp.Random (Rng.create seed)) i with
    | Bgp.Converged { assignment; _ } ->
        Alcotest.(check bool) "stable endpoint" true
          (Spp.is_stable i assignment)
    | _ -> Alcotest.failf "seed %d did not converge" seed
  done

let test_disagree_nondeterministic () =
  Alcotest.(check bool) "different schedules, different fixpoints" false
    (Bgp.converges_deterministically ~seed:1 (Gadgets.disagree ()))

let test_good_gadget_deterministic () =
  Alcotest.(check bool) "unique outcome" true
    (Bgp.converges_deterministically ~seed:1 (Gadgets.good_gadget ()))

let test_bad_gadget_oscillates () =
  match Bgp.run ~schedule:Bgp.Round_robin (Gadgets.bad_gadget ()) with
  | Bgp.Oscillation { period; _ } ->
      Alcotest.(check bool) "positive period" true (period > 0)
  | _ -> Alcotest.fail "BAD GADGET must oscillate under round-robin"

let test_bad_gadget_random_exhausts () =
  match
    Bgp.run ~max_activations:5000
      ~schedule:(Bgp.Random (Rng.create 3))
      (Gadgets.bad_gadget ())
  with
  | Bgp.Exhausted _ -> ()
  | Bgp.Converged _ -> Alcotest.fail "BAD GADGET cannot converge"
  | Bgp.Oscillation _ -> Alcotest.fail "random schedule cannot prove cycles"

let test_wedgie_two_states () =
  let i = Gadgets.wedgie () in
  let sols = Spp.stable_solutions i in
  Alcotest.(check int) "two stable states" 2 (List.length sols);
  let intended = Gadgets.wedgie_intended () in
  let stuck = Gadgets.wedgie_stuck () in
  Alcotest.(check bool) "intended is stable" true (Spp.is_stable i intended);
  Alcotest.(check bool) "stuck is stable" true (Spp.is_stable i stuck);
  Alcotest.(check bool) "they differ" false
    (Spp.equal_assignment intended stuck)

let test_wedgie_stuck_persists () =
  (* restarting the dynamics from the stuck state keeps it stuck: the
     failure is not repaired by protocol dynamics alone (RFC 4264) *)
  let i = Gadgets.wedgie () in
  match Bgp.run_from ~schedule:Bgp.Round_robin i (Gadgets.wedgie_stuck ()) with
  | Bgp.Converged { assignment; activations } ->
      Alcotest.(check bool) "still stuck" true
        (Spp.equal_assignment assignment (Gadgets.wedgie_stuck ()));
      Alcotest.(check bool) "no changes needed" true (activations <= 6)
  | _ -> Alcotest.fail "unexpected"

let test_fig1_instances () =
  Alcotest.(check int) "fig1 DISAGREE: 2 stable" 2
    (List.length (Spp.stable_solutions (Gadgets.fig1_disagree ())));
  Alcotest.(check int) "fig1 BAD GADGET: none" 0
    (List.length (Spp.stable_solutions (Gadgets.fig1_bad_gadget ())));
  match Bgp.run ~schedule:Bgp.Round_robin (Gadgets.fig1_bad_gadget ()) with
  | Bgp.Oscillation _ -> ()
  | _ -> Alcotest.fail "fig1 BAD GADGET must oscillate"

let test_empty_instance () =
  let i = Spp.create ~dest:(asn 0) ~permitted:[] in
  match Bgp.run ~schedule:Bgp.Round_robin i with
  | Bgp.Converged { activations; _ } ->
      Alcotest.(check int) "trivial convergence" 0 activations
  | _ -> Alcotest.fail "empty instance must converge immediately"

let qcheck_random_convergence_is_stable =
  QCheck.Test.make ~count:30
    ~name:"random-schedule convergence implies stability"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let i = Gadgets.wedgie () in
      match Bgp.run ~schedule:(Bgp.Random (Rng.create seed)) i with
      | Bgp.Converged { assignment; _ } -> Spp.is_stable i assignment
      | _ -> false)

let suite =
  [
    Alcotest.test_case "good gadget converges to direct routes" `Quick
      test_good_gadget_converges;
    Alcotest.test_case "converged state is stable" `Quick
      test_converged_state_is_stable;
    Alcotest.test_case "random schedules converge on DISAGREE" `Quick
      test_random_schedule_converges_disagree;
    Alcotest.test_case "DISAGREE is non-deterministic" `Quick
      test_disagree_nondeterministic;
    Alcotest.test_case "GOOD GADGET is deterministic" `Quick
      test_good_gadget_deterministic;
    Alcotest.test_case "BAD GADGET oscillates" `Quick
      test_bad_gadget_oscillates;
    Alcotest.test_case "BAD GADGET exhausts under random schedule" `Quick
      test_bad_gadget_random_exhausts;
    Alcotest.test_case "wedgie has two stable states" `Quick
      test_wedgie_two_states;
    Alcotest.test_case "wedgie stuck state persists" `Quick
      test_wedgie_stuck_persists;
    Alcotest.test_case "fig1 instances" `Quick test_fig1_instances;
    Alcotest.test_case "empty instance" `Quick test_empty_instance;
    QCheck_alcotest.to_alcotest qcheck_random_convergence_is_stable;
  ]
