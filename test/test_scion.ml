(* Tests for the SCION-like PAN substrate: authorization, authenticated
   segments, beaconing, path lookup/combination, and forwarding. *)

open Pan_topology
open Pan_scion

let a = Gen.fig1_asn
let g = Gen.fig1 ()

let grc_authz () = Authz.create g
let ma_authz () = Authz.create ~mas:[ (a 'D', a 'E') ] g

(* ------------------------------------------------------------------ *)
(* Authz                                                               *)

let test_authz_endpoints_allowed () =
  let z = grc_authz () in
  Alcotest.(check bool) "origin" true
    (Authz.allows z ~at:(a 'D') ~prev:None ~next:(Some (a 'A')));
  Alcotest.(check bool) "delivery" true
    (Authz.allows z ~at:(a 'D') ~prev:(Some (a 'A')) ~next:None)

let test_authz_grc_transit () =
  let z = grc_authz () in
  (* customer on either side: allowed *)
  Alcotest.(check bool) "to customer" true
    (Authz.allows z ~at:(a 'D') ~prev:(Some (a 'A')) ~next:(Some (a 'H')));
  Alcotest.(check bool) "from customer" true
    (Authz.allows z ~at:(a 'D') ~prev:(Some (a 'H')) ~next:(Some (a 'A')));
  (* peer to provider: refused *)
  Alcotest.(check bool) "peer to provider refused" false
    (Authz.allows z ~at:(a 'E') ~prev:(Some (a 'D')) ~next:(Some (a 'B')));
  (* provider to peer: refused *)
  Alcotest.(check bool) "provider to peer refused" false
    (Authz.allows z ~at:(a 'E') ~prev:(Some (a 'B')) ~next:(Some (a 'D')))

let test_authz_ma_enables_transit () =
  let z = ma_authz () in
  (* the MA makes E willing to carry D's traffic to its provider B and
     its peer F *)
  Alcotest.(check bool) "MA peer to provider" true
    (Authz.allows z ~at:(a 'E') ~prev:(Some (a 'D')) ~next:(Some (a 'B')));
  Alcotest.(check bool) "MA peer to peer" true
    (Authz.allows z ~at:(a 'E') ~prev:(Some (a 'D')) ~next:(Some (a 'F')));
  (* but not to its customers' customers direction reversal: traffic from
     B (provider) towards D (peer) is still refused *)
  Alcotest.(check bool) "MA is directional per prev" false
    (Authz.allows z ~at:(a 'E') ~prev:(Some (a 'B')) ~next:(Some (a 'F')))

let test_authz_core_transit () =
  let z = grc_authz () in
  (* A, B, C are provider-less: core transit allowed among them *)
  Alcotest.(check bool) "core transit" true
    (Authz.allows z ~at:(a 'B') ~prev:(Some (a 'A')) ~next:(Some (a 'C')));
  let no_core = Authz.create ~core_transit:false g in
  Alcotest.(check bool) "disabled core transit" false
    (Authz.allows no_core ~at:(a 'B') ~prev:(Some (a 'A')) ~next:(Some (a 'C')))

let test_authz_non_adjacent_refused () =
  let z = grc_authz () in
  Alcotest.(check bool) "non-adjacent prev" false
    (Authz.allows z ~at:(a 'D') ~prev:(Some (a 'I')) ~next:(Some (a 'H')))

let test_authz_ma_requires_peering () =
  try
    ignore (Authz.create ~mas:[ (a 'A', a 'D') ] g);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_authz_ma_accessors () =
  let z = ma_authz () in
  Alcotest.(check bool) "has_ma either order" true
    (Authz.has_ma z (a 'E') (a 'D'));
  Alcotest.(check int) "mas listed" 1 (List.length (Authz.mas z))

(* ------------------------------------------------------------------ *)
(* Segment                                                             *)

let test_segment_make_and_verify () =
  let z = grc_authz () in
  match Segment.make z (List.map a [ 'A'; 'D'; 'H' ]) with
  | Error _ -> Alcotest.fail "valid segment rejected"
  | Ok seg ->
      Alcotest.(check bool) "verifies" true (Segment.verify seg);
      Alcotest.(check int) "length" 3 (Segment.length seg);
      Alcotest.(check int) "source" (Asn.to_int (a 'A'))
        (Asn.to_int (Segment.source seg));
      Alcotest.(check int) "destination" (Asn.to_int (a 'H'))
        (Asn.to_int (Segment.destination seg))

let test_segment_rejects_bad_input () =
  let z = grc_authz () in
  (match Segment.make z [ a 'A' ] with
  | Error Segment.Too_short -> ()
  | _ -> Alcotest.fail "short segment accepted");
  (match Segment.make z (List.map a [ 'A'; 'D'; 'A' ]) with
  | Error (Segment.Loop _) -> ()
  | _ -> Alcotest.fail "loop accepted");
  (match Segment.make z (List.map a [ 'A'; 'I' ]) with
  | Error (Segment.Not_adjacent _) -> ()
  | _ -> Alcotest.fail "non-adjacent accepted");
  match Segment.make z (List.map a [ 'D'; 'E'; 'B' ]) with
  | Error (Segment.Unauthorized { at; _ }) ->
      Alcotest.(check int) "refused at E" (Asn.to_int (a 'E')) (Asn.to_int at)
  | _ -> Alcotest.fail "GRC-violating segment accepted without MA"

let test_segment_ma_authorized () =
  let z = ma_authz () in
  match Segment.make z (List.map a [ 'D'; 'E'; 'B' ]) with
  | Ok seg -> Alcotest.(check bool) "verifies" true (Segment.verify seg)
  | Error _ -> Alcotest.fail "MA-authorized segment rejected"

let test_segment_tamper_detected () =
  let z = grc_authz () in
  let seg = Segment.make_exn z (List.map a [ 'A'; 'D'; 'H' ]) in
  let hops = Segment.hops seg in
  (* flip each hop's MAC in turn: all forgeries must be detected *)
  List.iteri
    (fun i _ ->
      let forged =
        Segment.unsafe_of_hops
          (List.mapi
             (fun j (h : Segment.hop) ->
               if i = j then { h with Segment.mac = h.Segment.mac + 1 } else h)
             hops)
      in
      Alcotest.(check bool) "forgery detected" false (Segment.verify forged))
    hops

let test_segment_truncation_detected () =
  (* cutting off the tail changes the last hop's "next" and must fail *)
  let z = grc_authz () in
  let seg = Segment.make_exn z (List.map a [ 'A'; 'D'; 'H' ]) in
  let truncated =
    Segment.unsafe_of_hops
      (List.filteri (fun i _ -> i < 2) (Segment.hops seg))
  in
  Alcotest.(check bool) "truncation detected" false (Segment.verify truncated)

let test_segment_reverse () =
  let z = grc_authz () in
  let seg = Segment.make_exn z (List.map a [ 'A'; 'D'; 'H' ]) in
  match Segment.reverse z seg with
  | Ok rev ->
      Alcotest.(check bool) "reversed ases" true
        (Segment.ases rev = List.rev (Segment.ases seg));
      Alcotest.(check bool) "reversed verifies" true (Segment.verify rev)
  | Error _ -> Alcotest.fail "reverse of an up/down segment must authorize"

let test_segment_reverse_can_fail () =
  (* D-E-I is GRC-fine (peer then down) but I-E-D is up then peer:
     E refuses to carry its customer's traffic to a peer?  No — that is
     allowed (from customer).  Use B-E-D instead: fine from provider to
     peer? also refused.  Actually B-E-I is provider->customer (ok) and
     reversed I-E-B is customer->provider (ok).  A genuinely asymmetric
     case is D-E-B with an MA: authorized D->E->B but reversed B-E-D is
     provider->peer at E, not covered by the MA with D. *)
  let z = ma_authz () in
  let seg = Segment.make_exn z (List.map a [ 'D'; 'E'; 'B' ]) in
  match Segment.reverse z seg with
  | Error (Segment.Unauthorized { at; _ }) ->
      Alcotest.(check int) "E refuses the reverse" (Asn.to_int (a 'E'))
        (Asn.to_int at)
  | Ok _ -> Alcotest.fail "asymmetric MA segment reversed"
  | Error _ -> Alcotest.fail "unexpected error kind"

(* ------------------------------------------------------------------ *)
(* Beacon / Path_server / Combinator                                   *)

let test_beacon_core_detection () =
  let b = Beacon.run (grc_authz ()) in
  Alcotest.(check (list int)) "core = A, B, C"
    (List.map (fun c -> Asn.to_int (a c)) [ 'A'; 'B'; 'C' ])
    (List.sort compare (List.map Asn.to_int (Beacon.core_ases b)))

let test_beacon_down_segments () =
  let b = Beacon.run (grc_authz ()) in
  (* H must have the down segment A-D-H *)
  let segs = Beacon.down_segments b (a 'H') in
  Alcotest.(check bool) "A-D-H registered" true
    (List.exists
       (fun s -> Segment.ases s = List.map a [ 'A'; 'D'; 'H' ])
       segs);
  (* all down segments verify and end at H *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "verifies" true (Segment.verify s);
      Alcotest.(check int) "ends at H" (Asn.to_int (a 'H'))
        (Asn.to_int (Segment.destination s)))
    segs

let test_beacon_core_segments () =
  let b = Beacon.run (grc_authz ()) in
  let segs = Beacon.core_segments b ~src:(a 'A') ~dst:(a 'B') in
  Alcotest.(check bool) "direct core segment exists" true
    (List.exists (fun s -> Segment.length s = 2) segs)

let test_path_server_up_segments () =
  let authz = grc_authz () in
  let ps = Path_server.build authz (Beacon.run authz) in
  let ups = Path_server.up_segments ps (a 'H') in
  Alcotest.(check bool) "has up segment" true (ups <> []);
  List.iter
    (fun s ->
      Alcotest.(check int) "starts at H" (Asn.to_int (a 'H'))
        (Asn.to_int (Segment.source s)))
    ups

let test_combinator_grc_paths () =
  let authz = grc_authz () in
  let ps = Path_server.build authz (Beacon.run authz) in
  let paths = Combinator.end_to_end ps ~src:(a 'H') ~dst:(a 'G') in
  Alcotest.(check bool) "paths exist" true (paths <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "verifies" true (Segment.verify s);
      Alcotest.(check bool) "src" true (Asn.equal (Segment.source s) (a 'H'));
      Alcotest.(check bool) "dst" true
        (Asn.equal (Segment.destination s) (a 'G')))
    paths

let test_combinator_ma_adds_paths () =
  let base = grc_authz () in
  let with_ma = ma_authz () in
  let ps_base = Path_server.build base (Beacon.run base) in
  let ps_ma = Path_server.build with_ma (Beacon.run with_ma) in
  let count authz_ps = List.length (Combinator.end_to_end authz_ps ~src:(a 'H') ~dst:(a 'I')) in
  Alcotest.(check bool) "MA adds end-to-end paths" true
    (count ps_ma >= count ps_base);
  (* the H-D-E-I peering shortcut exists even without the MA; with the MA
     the D-E-B splice towards I's provider-side also appears *)
  let ma_paths = Combinator.end_to_end ps_ma ~src:(a 'H') ~dst:(a 'I') in
  Alcotest.(check bool) "shortcut present" true
    (List.exists
       (fun s -> Segment.ases s = List.map a [ 'H'; 'D'; 'E'; 'I' ])
       ma_paths)

let test_combinator_same_src_dst () =
  let authz = grc_authz () in
  let ps = Path_server.build authz (Beacon.run authz) in
  Alcotest.(check int) "no self paths" 0
    (List.length (Combinator.end_to_end ps ~src:(a 'H') ~dst:(a 'H')))

let test_best_path_is_shortest () =
  let authz = grc_authz () in
  let ps = Path_server.build authz (Beacon.run authz) in
  match Combinator.best_path ps ~src:(a 'H') ~dst:(a 'I') with
  | None -> Alcotest.fail "no path"
  | Some best ->
      let all = Combinator.end_to_end ps ~src:(a 'H') ~dst:(a 'I') in
      List.iter
        (fun s ->
          Alcotest.(check bool) "minimal" true
            (Segment.length best <= Segment.length s))
        all

(* ------------------------------------------------------------------ *)
(* Forwarding                                                          *)

let test_forwarding_delivers () =
  let z = ma_authz () in
  match Forwarding.send_path z (List.map a [ 'H'; 'D'; 'E'; 'B' ]) ~payload:"p" with
  | Ok d ->
      Alcotest.(check (list int)) "trace equals path"
        (List.map (fun c -> Asn.to_int (a c)) [ 'H'; 'D'; 'E'; 'B' ])
        (List.map Asn.to_int d.Forwarding.trace);
      Alcotest.(check string) "payload" "p" d.Forwarding.payload
  | Error e -> Alcotest.failf "delivery failed: %s" e

let test_forwarding_refuses_unauthorized () =
  let z = grc_authz () in
  match Forwarding.send_path z (List.map a [ 'H'; 'D'; 'E'; 'B' ]) ~payload:"p" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unauthorized path forwarded"

let test_forwarding_drops_forged () =
  let z = grc_authz () in
  let seg = Segment.make_exn z (List.map a [ 'A'; 'D'; 'H' ]) in
  let forged =
    Segment.unsafe_of_hops
      (List.map
         (fun (h : Segment.hop) -> { h with Segment.mac = h.Segment.mac lxor 1 })
         (Segment.hops seg))
  in
  match Forwarding.send z { Forwarding.segment = forged; payload = "p" } with
  | Error (Forwarding.Bad_mac at) ->
      Alcotest.(check int) "dropped at first hop" (Asn.to_int (a 'A'))
        (Asn.to_int at)
  | _ -> Alcotest.fail "forged packet not dropped"

let test_forwarding_loop_free () =
  (* sweep all combinator paths on the MA topology: traces never repeat
     an AS, whatever the agreements *)
  let z = Authz.create ~mas:[ (a 'D', a 'E'); (a 'C', a 'D'); (a 'C', a 'E') ] g in
  let ps = Path_server.build z (Beacon.run z) in
  let rec distinct = function
    | [] -> true
    | x :: rest -> (not (List.exists (Asn.equal x) rest)) && distinct rest
  in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Asn.equal src dst) then
            List.iter
              (fun seg ->
                match Forwarding.send z { Forwarding.segment = seg; payload = "" } with
                | Ok d ->
                    Alcotest.(check bool) "loop-free trace" true
                      (distinct d.Forwarding.trace)
                | Error _ -> Alcotest.fail "authorized path dropped")
              (Combinator.end_to_end ps ~src ~dst))
        (Graph.ases g))
    (Graph.ases g)

let suite =
  [
    Alcotest.test_case "authz endpoints" `Quick test_authz_endpoints_allowed;
    Alcotest.test_case "authz GRC transit" `Quick test_authz_grc_transit;
    Alcotest.test_case "authz MA transit" `Quick test_authz_ma_enables_transit;
    Alcotest.test_case "authz core transit" `Quick test_authz_core_transit;
    Alcotest.test_case "authz non-adjacent" `Quick
      test_authz_non_adjacent_refused;
    Alcotest.test_case "authz MA requires peering" `Quick
      test_authz_ma_requires_peering;
    Alcotest.test_case "authz MA accessors" `Quick test_authz_ma_accessors;
    Alcotest.test_case "segment make/verify" `Quick
      test_segment_make_and_verify;
    Alcotest.test_case "segment rejects bad input" `Quick
      test_segment_rejects_bad_input;
    Alcotest.test_case "segment MA authorized" `Quick
      test_segment_ma_authorized;
    Alcotest.test_case "segment tamper detected" `Quick
      test_segment_tamper_detected;
    Alcotest.test_case "segment truncation detected" `Quick
      test_segment_truncation_detected;
    Alcotest.test_case "segment reverse" `Quick test_segment_reverse;
    Alcotest.test_case "segment reverse can fail" `Quick
      test_segment_reverse_can_fail;
    Alcotest.test_case "beacon core detection" `Quick
      test_beacon_core_detection;
    Alcotest.test_case "beacon down segments" `Quick
      test_beacon_down_segments;
    Alcotest.test_case "beacon core segments" `Quick
      test_beacon_core_segments;
    Alcotest.test_case "path server up segments" `Quick
      test_path_server_up_segments;
    Alcotest.test_case "combinator GRC paths" `Quick
      test_combinator_grc_paths;
    Alcotest.test_case "combinator MA adds paths" `Quick
      test_combinator_ma_adds_paths;
    Alcotest.test_case "combinator self pair" `Quick
      test_combinator_same_src_dst;
    Alcotest.test_case "best path is shortest" `Quick
      test_best_path_is_shortest;
    Alcotest.test_case "forwarding delivers" `Quick test_forwarding_delivers;
    Alcotest.test_case "forwarding refuses unauthorized" `Quick
      test_forwarding_refuses_unauthorized;
    Alcotest.test_case "forwarding drops forged packets" `Quick
      test_forwarding_drops_forged;
    Alcotest.test_case "forwarding loop-free over all paths" `Quick
      test_forwarding_loop_free;
  ]
