(* Tests for Pan_numerics.Rng: determinism, stream independence, and the
   statistical sanity of each sampler. *)

open Pan_numerics

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.int64 a = Rng.int64 b)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  (* advancing b must not advance a: both produce the same next value *)
  let vb = Rng.int64 b in
  let va = Rng.int64 a in
  Alcotest.(check int64) "copy continues the same stream" vb va

let test_split_diverges () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_float_mean () =
  let rng = Rng.create 4 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then
    Alcotest.failf "uniform mean %f too far from 0.5" mean

let test_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of bounds"
  done

let test_int_uniformity () =
  let rng = Rng.create 6 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      if Float.abs (freq -. 0.2) > 0.02 then
        Alcotest.failf "bucket frequency %f too far from 0.2" freq)
    counts

let test_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0))

let test_uniform_range () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng (-3.0) 5.0 in
    if x < -3.0 || x >= 5.0 then Alcotest.fail "uniform out of range"
  done

let test_exponential_positive () =
  let rng = Rng.create 10 in
  for _ = 1 to 1000 do
    if Rng.exponential rng 2.0 < 0.0 then Alcotest.fail "negative exponential"
  done

let test_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 2.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then
    Alcotest.failf "Exp(2) mean %f too far from 0.5" mean

let test_gaussian_moments () =
  let rng = Rng.create 12 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng 1.5 2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 1.5) > 0.05 then Alcotest.failf "mean %f" mean;
  if Float.abs (var -. 4.0) > 0.2 then Alcotest.failf "variance %f" var

let test_pareto_minimum () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    if Rng.pareto rng 2.0 3.0 < 3.0 then Alcotest.fail "below x_min"
  done

let test_shuffle_permutation () =
  let rng = Rng.create 14 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 15 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample_without_replacement rng 10 arr in
  Alcotest.(check int) "size" 10 (Array.length s);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      if Hashtbl.mem seen x then Alcotest.fail "duplicate in sample";
      Hashtbl.add seen x ())
    s

let test_sample_too_many () =
  let rng = Rng.create 15 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement rng 5 [| 1; 2 |]))

let test_choose_covers () =
  let rng = Rng.create 16 in
  let arr = [| 0; 1; 2 |] in
  let seen = Array.make 3 false in
  for _ = 1 to 200 do
    seen.(Rng.choose rng arr) <- true
  done;
  Alcotest.(check (array bool)) "all elements chosen" [| true; true; true |]
    seen

let qcheck_float_unit =
  QCheck.Test.make ~count:200 ~name:"Rng.uniform stays within bounds"
    QCheck.(triple small_int (float_range (-100.) 100.) (float_range 0.0 100.))
    (fun (seed, lo, width) ->
      let rng = Rng.create seed in
      let hi = lo +. width in
      let x = Rng.uniform rng lo hi in
      (width = 0.0 && x = lo) || (x >= lo && x < hi))

(* The runner's determinism contract rests on chunk-indexed splits: the
   c-th split of a master generator must yield the same stream no matter
   when (or on which domain) chunk c is evaluated, and the streams must
   not collide.  Draw all split generators up front, consume a prefix of
   each in a random chunk order, and require (a) the streams to be
   independent of that order and (b) the prefixes to be pairwise
   disjoint — 64-bit collisions across a few hundred draws would signal
   correlated streams, not chance. *)
let qcheck_split_streams =
  let prefix_len = 16 in
  QCheck.Test.make ~count:100
    ~name:"Rng.split chunk streams are order-independent and disjoint"
    QCheck.(triple small_int (int_range 2 12) (int_range 0 1000))
    (fun (seed, chunks, order_seed) ->
      let streams order =
        let master = Rng.create seed in
        let rngs = Array.make chunks master in
        for c = 0 to chunks - 1 do
          rngs.(c) <- Rng.split master
        done;
        let out = Array.make chunks [||] in
        Array.iter
          (fun c ->
            let prefix = Array.make prefix_len 0L in
            for i = 0 to prefix_len - 1 do
              prefix.(i) <- Rng.int64 rngs.(c)
            done;
            out.(c) <- prefix)
          order;
        out
      in
      let ascending = Array.init chunks Fun.id in
      let shuffled =
        let a = Array.copy ascending in
        Rng.shuffle (Rng.create order_seed) a;
        a
      in
      let fwd = streams ascending in
      let any_order = streams shuffled in
      let order_independent = fwd = any_order in
      let disjoint =
        let seen = Hashtbl.create (chunks * prefix_len) in
        Array.for_all
          (Array.for_all (fun v ->
               if Hashtbl.mem seen v then false
               else begin
                 Hashtbl.add seen v ();
                 true
               end))
          fwd
      in
      order_independent && disjoint)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy continues stream" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "float mean" `Slow test_float_mean;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "pareto minimum" `Quick test_pareto_minimum;
    Alcotest.test_case "shuffle is a permutation" `Quick
      test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "sample too many raises" `Quick test_sample_too_many;
    Alcotest.test_case "choose covers all" `Quick test_choose_covers;
    QCheck_alcotest.to_alcotest qcheck_float_unit;
    QCheck_alcotest.to_alcotest qcheck_split_streams;
  ]
