.PHONY: all build quick test bench bench-topo bench-bosco bench-faults \
	bench-serve bench-intent bench-market bench-market-mech \
	bench-snapshots validate-bench profile clean

all: build

build:
	dune build

# Tier-1 gate: build everything and run the quick test cases only
# (skips the `Slow statistical/Monte-Carlo checks), plus the
# observability suites by name.
quick:
	dune build @quick @obs

# Full test suite: unit + property + golden + cram.
test:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# Compact-core smoke: freeze + legacy-vs-compact sweep on a 1k-AS
# topology, verifying equal results and --jobs determinism (CI runs
# this too; `topo-full` adds the 10k and 50k sizes).
bench-topo:
	dune exec bench/main.exe -- topo

# BOSCO best-response kernel sweep: fast O(W log W) vs reference O(W²)
# dynamics at W ∈ {8..2048} plus the Service.trials --jobs determinism
# check; exits non-zero on any fingerprint mismatch (CI runs the
# `bosco-smoke` variant, capped at W = 128).
bench-bosco:
	dune exec bench/main.exe -- bosco

# Supervised-runner smoke: the E1 kernel under injected faults (rate
# 0.1) with 5 retries must reproduce the fault-free fingerprint at -j1
# and -j4 and must actually exercise retries; exits non-zero otherwise
# (CI runs this too).
bench-faults:
	dune exec bench/main.exe -- faults

# Resident-service sweep (bench part 11): queries/sec and latency
# percentiles under link churn on a 3k-AS topology, with the
# incremental-vs-refreeze and -j1/-j4 transcript fingerprint checks;
# exits non-zero on any mismatch (CI runs the `serve-smoke` variant
# through the bench-serve-smoke alias, which also schema-checks the
# emitted BENCH_serve.json).
bench-serve:
	dune exec bench/main.exe -- serve

# Intent-engine sweep (bench part 12): K-shortest candidate throughput
# at K = 1..32 over a 3k-AS compact core, deterministic probe failover
# under an injected fault spec, and the all-intent serve drain with the
# -j1/-j4 transcript fingerprint check; exits non-zero on any mismatch
# (CI runs the `intent-smoke` variant through the bench-intent-smoke
# alias, which also schema-checks the emitted BENCH_intent.json).
bench-intent:
	dune exec bench/main.exe -- intent

# Marketplace sweep (bench part 13): the full epoch loop — candidate
# enumeration, concurrent BOSCO negotiations, batch agreement splices —
# timed at -j1/-j2/-j4 in negotiations/sec, with fingerprint, re-run,
# and delta-oracle checks; exits non-zero on any mismatch (CI runs the
# `market-smoke` variant through the bench-market-smoke alias, which
# also schema-checks the emitted BENCH_market.json).
bench-market:
	dune exec bench/main.exe -- market

# Mechanism comparison (bench part 14): the marketplace in Both mode —
# BOSCO and the Nash-Peering global-bargaining qualifier on shared
# epoch snapshots and identical candidate streams — timed at -j1/-j2/
# -j4, with per-epoch welfare / agreement-count / PoD comparison lines
# and the same fingerprint, re-run, and re-freeze-oracle checks as part
# 13; exits non-zero on any mismatch (CI runs the `market-mech-smoke`
# variant through the bench-market-mech-smoke alias, which also
# schema-checks the emitted BENCH_market_mech.json).
bench-market-mech:
	dune exec bench/main.exe -- market-mech

# Machine-readable bench trajectory: run the econ-kernel, topology-
# snapshot, BOSCO, serve, intent, market, and mechanism-comparison
# parts at smoke scale, emit BENCH_<part>.json for each, and
# re-validate the files through the schema checker (CI runs the same
# alias).
bench-snapshots:
	dune build @bench/bench-snapshot-smoke

# Schema-check every committed BENCH_<part>.json in the repo root
# through the CLI validator; exits non-zero on any malformed file.
validate-bench:
	dune exec bin/panagree.exe -- validate-bench $(wildcard BENCH_*.json)

# Real-clock profile of the Fig. 3/4 pipeline on the default synthetic
# topology: per-chunk durations and per-scenario path counters to stdout.
profile:
	dune exec bin/panagree.exe -- fig3 --jobs 4 --metrics -

clean:
	dune clean
