.PHONY: all build quick test bench clean

all: build

build:
	dune build

# Tier-1 gate: build everything and run the quick test cases only
# (skips the `Slow statistical/Monte-Carlo checks).
quick:
	dune build @quick

# Full test suite: unit + property + golden + cram.
test:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
