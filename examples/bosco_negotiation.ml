(* Mechanism-assisted negotiation with BOSCO (§V).

   Two ASes want to conclude a mutuality-based agreement but will not
   reveal their true utilities.  A BOSCO service estimates utility
   distributions, constructs choice sets, computes an equilibrium, and the
   parties play the one-shot game.  Run with:

     dune exec examples/bosco_negotiation.exe
*)

open Pan_numerics
open Pan_bosco

let printf = Format.printf

let () =
  let rng = Rng.create 2021 in

  (* The BOSCO service estimates both parties' utility distributions
     (e.g. from standard transit and equipment prices). *)
  let dist_x = Distribution.uniform (-1.0) 1.0 in
  let dist_y = Distribution.uniform (-0.5) 1.0 in

  (* The service tries a number of random choice-set combinations and
     keeps the equilibrium with the lowest Price of Dishonesty. *)
  let reports = Service.trials ~rng ~dist_x ~dist_y ~w:50 ~n:40 () in
  let chosen = Service.best reports in
  printf "BOSCO service explored %d choice-set combinations@."
    (List.length reports);
  printf "  mean PoD = %.3f, best PoD = %.3f@." (Service.mean_pod reports)
    chosen.Service.pod;
  printf "  equilibrium plays %d / %d claims with positive probability@.@."
    chosen.Service.equilibrium_choices_x
    chosen.Service.equilibrium_choices_y;

  (* Each party verifies the communicated equilibrium before playing. *)
  printf "Parties verify the mechanism-information set: %b@.@."
    (Service.verify chosen);

  (* The parties now play the game with their private true utilities. *)
  let u_x = 0.62 and u_y = -0.18 in
  let sx = chosen.Service.strategy_x and sy = chosen.Service.strategy_y in
  let v_x = Strategy.apply sx u_x and v_y = Strategy.apply sy u_y in
  printf "True utilities:    u_X = %+.2f, u_Y = %+.2f (private)@." u_x u_y;
  printf "Committed claims:  v_X = %+.2f, v_Y = %+.2f@." v_x v_y;
  let outcome = Game.settle ~u_x ~u_y ~v_x ~v_y in
  printf "Mechanism outcome: %a@.@." Game.pp_outcome outcome;

  (* The mechanism's guarantees hold on this and any other play. *)
  let check_rng = Rng.create 7 in
  printf "Strong individual rationality (Thm 1): %b@."
    (Properties.individual_rationality check_rng chosen.Service.game sx sy);
  printf "Soundness (Thm 2):                     %b@."
    (Properties.soundness check_rng chosen.Service.game sx sy);
  printf "PoD within [0,1] (Thm 3):              %b@."
    (Properties.pod_in_unit_interval chosen.Service.game sx sy);
  printf "Privacy (Thm 4):                       %b@."
    (Properties.privacy sx && Properties.privacy sy);
  printf "Shortest non-empty claim interval:     %.3f@."
    (Float.min
       (Properties.shortest_interval sx)
       (Properties.shortest_interval sy))
