(* Path diversity from mutuality-based agreements (§VI).

   Generates a synthetic Internet-like topology, picks an AS, and shows
   the length-3 paths and destinations it gains under different degrees
   of MA conclusion — the per-AS view behind Figs. 3 and 4.  Run with:

     dune exec examples/path_diversity.exe
*)

open Pan_topology

let printf = Format.printf

let () =
  let gen =
    Gen.generate
      ~params:{ Gen.default_params with Gen.n_transit = 200; n_stub = 800 }
      ~seed:42 ()
  in
  let g = Gen.graph gen in
  printf "Synthetic topology: %a@.@." Graph.pp_stats g;

  (* Pick the stub AS with the most peers: a typical IXP member. *)
  let x =
    List.fold_left
      (fun best candidate ->
        if
          Asn.Set.cardinal (Graph.peers g candidate)
          > Asn.Set.cardinal (Graph.peers g best)
        then candidate
        else best)
      (List.hd (Gen.stubs gen))
      (Gen.stubs gen)
  in
  printf "Analyzed AS: %a (%d providers, %d peers, %d customers)@.@." Asn.pp x
    (Asn.Set.cardinal (Graph.providers g x))
    (Asn.Set.cardinal (Graph.peers g x))
    (Asn.Set.cardinal (Graph.customers g x));

  let scenarios =
    Path_enum.
      [ Grc; Ma_top 1; Ma_top 2; Ma_top 5; Ma_direct_only; Ma_all ]
  in
  printf "%-14s %-12s %s@." "scenario" "paths" "destinations";
  List.iter
    (fun s ->
      let paths = Path_enum.scenario_paths g s x in
      printf "%-14s %-12d %d@."
        (Path_enum.scenario_label s)
        (Path_enum.total_count paths)
        (Asn.Set.cardinal (Path_enum.dest_set paths)))
    scenarios;

  (* Which MAs should this AS negotiate first? *)
  printf "@.Most attractive MA partners (by directly gained paths):@.";
  List.iter
    (fun y ->
      let gain = Path_enum.ma_direct ~partners:(Asn.Set.singleton y) g x in
      printf "  %a: %d new length-3 paths@." Asn.pp y
        (Path_enum.total_count gain))
    (Path_enum.top_partners g ~n:5 x);

  (* A few of the concrete new paths from the best agreement. *)
  match Path_enum.top_partners g ~n:1 x with
  | [] -> printf "@.This AS has no peers, hence no MA opportunities.@."
  | best :: _ ->
      let gained = Path_enum.ma_direct ~partners:(Asn.Set.singleton best) g x in
      printf "@.Example paths gained from the MA with %a:@." Asn.pp best;
      let shown = ref 0 in
      Path_enum.iter_paths
        (fun ~mid ~dst ->
          if !shown < 5 then begin
            incr shown;
            printf "  %a - %a - %a@." Asn.pp x Asn.pp mid Asn.pp dst
          end)
        gained
