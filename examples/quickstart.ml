(* Quickstart: negotiate the paper's example agreement (Eq. 6 on Fig. 1)
   end to end.

   We build the Fig. 1 topology, set up the mutuality-based agreement
   a = [D(up {A}); E(up {B}, peer {F})], attach business numbers, and
   optimize it with both methods of §IV.  Run with:

     dune exec examples/quickstart.exe
*)

open Pan_topology
open Pan_econ

let printf = Format.printf

let () =
  (* 1. The topology of Fig. 1 and the agreement of Eq. 6. *)
  let graph, scenario = Scenario_gen.fig1_scenario () in
  let agreement = Traffic_model.agreement scenario in
  printf "Topology: %a@." Graph.pp_stats graph;
  printf "Agreement (Eq. 6): %a@." Agreement.pp agreement;
  printf "Violates the Gao-Rexford conditions: %b@.@."
    (Agreement.violates_grc graph agreement);

  (* 2. What would D and E gain if every forecast flow materialized? *)
  let u_d, u_e =
    Traffic_model.utilities_exn scenario (Traffic_model.full_choice scenario)
  in
  printf "Utilities at full forecast volumes: u_D = %.2f, u_E = %.2f@.@." u_d
    u_e;

  (* 3. Optimize with flow-volume targets (Eq. 9). *)
  let fv = Flow_volume_opt.optimize scenario in
  printf "Flow-volume targets (Eq. 9):@.  %a@.@." Flow_volume_opt.pp fv;

  (* 4. Optimize with cash compensation (Eq. 10/11). *)
  let cash = Cash_opt.optimize scenario in
  printf "Cash compensation (Eq. 11):@.  %a@.@." Cash_opt.pp cash;

  (* 5. The Nash solution splits the surplus equally. *)
  (match Nash.after_transfer ~u_x:u_d ~u_y:u_e with
  | Some (after_d, after_e) ->
      printf "After the Nash transfer both parties hold %.2f and %.2f@."
        after_d after_e
  | None -> printf "The agreement is not viable (negative joint utility)@.");

  (* 6. The paths the agreement enables, as seen by the PAN data plane. *)
  let authz =
    Pan_scion.Authz.create
      ~mas:[ (Gen.fig1_asn 'D', Gen.fig1_asn 'E') ]
      graph
  in
  let path = List.map Gen.fig1_asn [ 'H'; 'D'; 'E'; 'B' ] in
  (match Pan_scion.Forwarding.send_path authz path ~payload:"hello" with
  | Ok delivery ->
      printf "@.Packet from H over the new MA path delivered via %a@."
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
           Asn.pp)
        delivery.Pan_scion.Forwarding.trace
  | Error e -> printf "@.Forwarding failed: %s@." e);

  (* Without the MA, AS E refuses the same path. *)
  let grc_only = Pan_scion.Authz.create graph in
  match Pan_scion.Forwarding.send_path grc_only path ~payload:"hello" with
  | Ok _ -> printf "unexpected: GRC-only network accepted the MA path@."
  | Error e -> printf "Without the agreement the path is refused: %s@." e
