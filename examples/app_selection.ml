(* Application-aware path selection and failure resilience.

   The paper's pitch to end-hosts (§I): with multiple authorized paths
   available simultaneously, a VoIP call takes the low-latency path while
   a file transfer takes the high-bandwidth one — and when a link fails,
   traffic shifts to the next path with no routing convergence at all.
   Run with:

     dune exec examples/app_selection.exe
*)

open Pan_topology
open Pan_scion

let printf = Format.printf

let () =
  (* A mid-sized synthetic internet with every MA concluded. *)
  let gen =
    Gen.generate
      ~params:{ Gen.default_params with Gen.n_transit = 120; n_stub = 480 }
      ~seed:11 ()
  in
  let g = Gen.graph gen in
  let mas = Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g [] in
  let authz = Authz.create ~mas g in
  let net = Failure.create authz in
  let ps = Failure.path_server net in
  printf "topology: %a, %d MAs concluded@.@." Graph.pp_stats g
    (List.length mas);

  let ctx =
    {
      Selection.geo = Geo.generate ~seed:3 g;
      Selection.bandwidth = Bandwidth.degree_gravity g;
    }
  in

  (* Pick a well-connected pair: two stubs with peers. *)
  let stubs = Array.of_list (Gen.stubs gen) in
  let src = stubs.(7) and dst = stubs.(Array.length stubs - 11) in
  let paths = Combinator.end_to_end ~max_paths:200 ps ~src ~dst in
  printf "%a -> %a: %d authorized paths@.@." Asn.pp src Asn.pp dst
    (List.length paths);

  let describe seg =
    let ases = Segment.ases seg in
    Format.asprintf "%a  (latency %.0f km-eq, bandwidth %.0f)" Segment.pp seg
      (Selection.latency_proxy ctx ases)
      (Selection.bandwidth_proxy ctx ases)
  in
  List.iter
    (fun app ->
      match Selection.select ctx app paths with
      | Some best ->
          printf "%-14s -> %s@."
            (Format.asprintf "%a" Selection.pp_application app)
            (describe best)
      | None -> printf "no path@.")
    [ Selection.Voip; Selection.File_transfer; Selection.Web ];

  (* Fail the links of the VoIP path one by one and watch selection move
     to the next-best live path, with zero convergence delay. *)
  (match Selection.select ctx Selection.Voip paths with
  | None -> ()
  | Some best ->
      printf "@.failing the links of the preferred VoIP path:@.";
      List.iter
        (fun (x, y) ->
          Failure.fail_link net x y;
          match Failure.send_with_failover ~max_paths:200 net ~src ~dst ~payload:"rtp" with
          | Ok outcome ->
              printf "  link %a-%a down: delivered after %d attempt(s) via %a@."
                Asn.pp x Asn.pp y outcome.Failure.attempts
                (Format.pp_print_list
                   ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ">")
                   Asn.pp)
                outcome.Failure.delivery.Forwarding.trace
          | Error e -> printf "  link %a-%a down: %s@." Asn.pp x Asn.pp y e)
        (let rec links = function
           | a :: (b :: _ as rest) -> (a, b) :: links rest
           | _ -> []
         in
         links (Segment.ases best)))
