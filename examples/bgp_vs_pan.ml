(* Why PANs do not need the Gao-Rexford conditions (§II).

   Runs BGP (SPVP) dynamics on GRC-violating policy configurations over
   the Fig. 1 topology — showing non-determinism and persistent
   oscillation — and then forwards packets over the very same
   GRC-violating paths in a PAN, where the embedded path makes the
   question of convergence moot.  Run with:

     dune exec examples/bgp_vs_pan.exe
*)

open Pan_topology
open Pan_routing
open Pan_scion
open Pan_numerics

let printf = Format.printf

let show_bgp name instance =
  printf "@.%s:@." name;
  printf "  round-robin: %a@." Bgp.pp_outcome
    (Bgp.run ~schedule:Bgp.Round_robin instance);
  let stable = Spp.stable_solutions instance in
  printf "  stable assignments: %d@." (List.length stable);
  printf "  deterministic under random schedules: %b@."
    (Bgp.converges_deterministically ~seed:1 instance)

let () =
  printf "=== BGP with GRC-violating policies (Fig. 1, destination A) ===@.";

  (* D and E exchange provider routes: the DISAGREE pattern. *)
  show_bgp "D-E mutual provider access (DISAGREE)" (Gadgets.fig1_disagree ());

  (* C concludes similar agreements with both D and E: BAD GADGET. *)
  show_bgp "C joins with both D and E (BAD GADGET)" (Gadgets.fig1_bad_gadget ());

  (* The RFC 4264 wedgie: recovery does not restore the intended state. *)
  let wedgie = Gadgets.wedgie () in
  printf "@.RFC 4264 wedgie:@.";
  let intended = Gadgets.wedgie_intended () in
  let stuck = Gadgets.wedgie_stuck () in
  printf "  intended state stable: %b@." (Spp.is_stable wedgie intended);
  printf "  stuck state stable:    %b@." (Spp.is_stable wedgie stuck);
  (match Bgp.run_from ~schedule:Bgp.Round_robin wedgie stuck with
  | Bgp.Converged { assignment; _ } ->
      printf "  restarting BGP from the stuck state stays stuck: %b@."
        (Spp.equal_assignment assignment stuck)
  | _ -> printf "  unexpected non-convergence@.");

  printf "@.=== The same paths in a PAN ===@.";
  let g = Gen.fig1 () in
  let a c = Gen.fig1_asn c in
  let authz =
    Authz.create ~mas:[ (a 'D', a 'E'); (a 'C', a 'D'); (a 'C', a 'E') ] g
  in

  (* Control plane: beacon, register, look up, combine. *)
  let beacons = Beacon.run authz in
  printf "beaconing registered %d segments from %d core ASes@."
    (Beacon.segment_count beacons)
    (List.length (Beacon.core_ases beacons));
  let ps = Path_server.build authz beacons in
  let paths = Combinator.end_to_end ps ~src:(a 'H') ~dst:(a 'I') in
  printf "end-to-end paths H -> I: %d@." (List.length paths);
  List.iter (fun seg -> printf "  %a@." Segment.pp seg) paths;

  (* Data plane: all those paths forward loop-free, GRC or not. *)
  let all_ok =
    List.for_all
      (fun seg ->
        match Forwarding.send authz { Forwarding.segment = seg; payload = "x" }
        with
        | Ok d -> d.Forwarding.trace = Segment.ases seg
        | Error _ -> false)
      paths
  in
  printf "all paths forward exactly as embedded: %b@." all_ok;

  (* Tampering with a hop field is detected. *)
  (match paths with
  | seg :: _ ->
      let hops = Segment.hops seg in
      let forged =
        Segment.unsafe_of_hops
          (List.mapi
             (fun i (h : Segment.hop) ->
               if i = 1 then { h with Segment.mac = h.Segment.mac + 1 } else h)
             hops)
      in
      printf "forged segment passes verification: %b@." (Segment.verify forged);
      (match Forwarding.send authz { Forwarding.segment = forged; payload = "x" }
       with
      | Error reason ->
          printf "forged packet dropped: %a@." Forwarding.pp_drop_reason reason
      | Ok _ -> printf "unexpected: forged packet delivered@.")
  | [] -> ());

  (* And the PAN keeps working under any "activation order" because there
     is nothing to converge: 100 random packets, all delivered. *)
  let rng = Rng.create 5 in
  let ases = Array.of_list (Graph.ases g) in
  let delivered = ref 0 and attempts = ref 0 in
  for _ = 1 to 100 do
    let src = Rng.choose rng ases and dst = Rng.choose rng ases in
    if not (Asn.equal src dst) then begin
      incr attempts;
      match Combinator.best_path ps ~src ~dst with
      | Some seg -> (
          match
            Forwarding.send authz { Forwarding.segment = seg; payload = "p" }
          with
          | Ok _ -> incr delivered
          | Error _ -> ())
      | None -> ()
    end
  done;
  printf "random traffic: %d/%d source-destination pairs delivered@."
    !delivered !attempts
