(* The full lifecycle of a mutuality-based agreement.

   1. D and E conclude the Eq. 6 agreement with flow-volume targets.
   2. The targets become segment grants with volume budgets (§III-B3).
   3. E re-offers part of its E-D-A segment to its peer F (agreement a').
   4. A BOSCO-negotiated side deal is settled in volume units instead of
      cash.
   5. Operation: traffic is metered per 95th-percentile billing, targets
      are enforced per epoch, and an overage is priced.

   Run with:  dune exec examples/agreement_lifecycle.exe
*)

open Pan_topology
open Pan_econ
open Pan_numerics

let printf = Format.printf

let () =
  (* 1. Conclude the agreement with flow-volume targets (Eq. 9). *)
  let graph, scenario = Scenario_gen.fig1_scenario () in
  let result = Flow_volume_opt.optimize scenario in
  printf "1. flow-volume optimization: %a@.@." Flow_volume_opt.pp result;
  let dx, dy = Decomposition.of_full scenario in
  printf "   decomposition at full volumes (Eq. 4/5):@.";
  printf "   %a@.   %a@.@." Decomposition.pp dx Decomposition.pp dy;

  (* 2. The targets become grants. *)
  let grants = Extension.of_flow_volume_result scenario result in
  printf "2. segment grants with budgets:@.";
  List.iter
    (fun (g : Extension.grant) ->
      printf "   %a holds %a-%a-%a with allowance %.2f@." Asn.pp
        g.Extension.holder Asn.pp g.Extension.holder Asn.pp
        g.Extension.segment.Extension.via Asn.pp
        g.Extension.segment.Extension.dest g.Extension.allowance)
    grants;
  printf "@.";

  (* 3. Secondary agreement: E re-offers E-D-A to its peer F. *)
  let e = Gen.fig1_asn 'E' and f = Gen.fig1_asn 'F' and a = Gen.fig1_asn 'A'
  and d = Gen.fig1_asn 'D' in
  let secondary =
    {
      Extension.grantor = e;
      beneficiary = f;
      through = { Extension.via = d; dest = a };
      volume = 1.0;
    }
  in
  (match Extension.validate_secondary graph grants secondary with
  | Ok _updated ->
      printf "3. secondary agreement a' accepted: F gains path %a@.@."
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "-")
           Asn.pp)
        (Extension.extended_path secondary)
  | Error msg -> printf "3. secondary agreement rejected: %s@.@." msg);

  (* 4. A BOSCO side deal settled in volume units. *)
  let rng = Rng.create 7 in
  let dist = Distribution.uniform (-1.0) 1.0 in
  let report =
    Pan_bosco.Service.negotiate ~rng ~dist_x:dist ~dist_y:dist ~w:30 ()
  in
  let outcome =
    Pan_bosco.Game.play report.Pan_bosco.Service.game
      ~strategy_x:report.Pan_bosco.Service.strategy_x
      ~strategy_y:report.Pan_bosco.Service.strategy_y ~u_x:0.4 ~u_y:0.1
  in
  printf "4. BOSCO side negotiation: %a@." Pan_bosco.Game.pp_outcome outcome;
  (match Pan_bosco.Volume_terms.of_outcome ~rate:1.0 outcome with
  | Some terms -> printf "   settled in volume: %a@.@."
                    Pan_bosco.Volume_terms.pp terms
  | None -> printf "   side negotiation cancelled@.@.");

  (* 5. Operation: metering, billing, enforcement. *)
  let enforcement = Enforcement.of_flow_volume scenario result in
  let meter = Billing.create_meter () in
  let key =
    match Traffic_model.demands scenario with
    | demand :: _ ->
        {
          Enforcement.beneficiary = demand.Traffic_model.beneficiary;
          via = demand.Traffic_model.transit;
          dest = demand.Traffic_model.dest;
        }
    | [] -> assert false
  in
  (* a month of five-minute-style samples with an aggressive burst *)
  let rng = Rng.create 99 in
  for _ = 1 to 100 do
    let v = Rng.uniform rng 4.0 12.0 in
    Billing.sample meter v
  done;
  let billed = Billing.billed_volume Billing.P95 meter in
  printf "5. metered %d samples; 95th-percentile billed volume: %.2f@."
    (Billing.sample_count meter) billed;
  Enforcement.record enforcement key billed;
  (match Enforcement.close_epoch enforcement with
  | [] -> printf "   epoch closed: within targets@."
  | violations ->
      List.iter
        (fun v ->
          printf "   violation: %a -> overage charge %.2f@."
            Enforcement.pp_violation v
            (Enforcement.overage_charge
               (Pricing.per_usage ~unit_price:1.0)
               v))
        violations);
  printf "   epochs closed so far: %d@." (Enforcement.epochs_closed enforcement)
