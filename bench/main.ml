(* Benchmark and reproduction harness.

   Part 1 regenerates every figure of the paper's evaluation at a scale
   that completes in a few minutes (the `panagree` CLI runs the full-scale
   versions; EXPERIMENTS.md records full-scale results).

   Part 2 times the computational kernel behind each experiment with
   Bechamel — one Test.make per figure/experiment — and prints OLS
   estimates of ns/run.

   Part 3 runs the ablations called out in DESIGN.md §5.

   Part 4 measures the parallel experiment engine (lib/runner): wall-clock
   scaling of the ported experiment kernels over worker-domain counts,
   verifying on the fly that every parallel run reproduces the sequential
   result bit-for-bit, plus a sequential-vs-parallel Bechamel pair.

   Part 5 demonstrates the observability layer (lib/obs): one instrumented
   diversity run with the real clock, printing the metrics table and the
   span tree — the same data `panagree --metrics/--trace` exports.

   Part 6 measures the compact frozen-topology core (lib/topology
   Compact/Bitset): freeze cost and legacy-vs-compact scenario_paths
   sweep throughput on generated topologies, verifying equal results and
   --jobs 1 = --jobs 4 determinism on the fly.

   Part 7 measures the BOSCO best-response kernel (lib/bosco
   Strategy/Workspace): best-response dynamics with the fast
   O(W log W) kernel vs the O(W²) reference across choice-set sizes,
   verifying fingerprint equality (thresholds, rounds, convergence,
   support) and --jobs 1 = --jobs 4 determinism of Service.trials on
   the fly.

   Part 8 measures the supervised runner (lib/runner Supervise/Fault):
   the E1 kernel fault-free vs supervised-with-retries vs under injected
   faults (rate 0.1, retries 5), verifying that every recovered run
   reproduces the fault-free fingerprint bit-for-bit at -j1 and -j4 and
   that the faulty runs actually exercised retries.

   Part 9 measures the econ fast kernel (lib/econ Model_fast): the E8
   method-comparison sweep with the flat SoA utility kernel vs the
   map-based reference, verifying bit-identical reports and -j1 = -j4
   fingerprints.

   Part 10 measures versioned topology snapshots (lib/topology
   Snapshot): Snapshot.load of a frozen graph vs re-parsing and
   re-freezing its CAIDA serialization, verifying byte-identical frozen
   cores.

   Part 11 measures the resident path-query service (lib/service):
   sustained queries/sec and per-query latency percentiles under link
   churn, the incremental-freeze drain vs the full re-freeze oracle,
   verifying byte-identical transcripts between the two modes and
   between -j1 and -j4, and emitting BENCH_serve.json
   (`main.exe serve[-smoke]`, `make bench-serve`).

   Part 12 measures the intent engine (lib/intent): K-shortest candidate
   generation throughput over the compact core across K = 1..32,
   deterministic probe-with-failover under an injected fault spec, and a
   serve drain of an all-intent stream under churn, verifying -j1 = -j4
   transcripts and emitting BENCH_intent.json
   (`main.exe intent[-smoke]`, `make bench-intent`).

   Part 13 measures the MA negotiation marketplace (lib/market): the
   full epoch loop — candidate enumeration, concurrent BOSCO
   negotiations, batch agreement splices — timed at -j1/-j2/-j4 in
   negotiations/sec, verifying byte-identical transcript fingerprints
   at every pool size, across re-runs, and against the from-scratch
   freeze oracle, and emitting BENCH_market.json
   (`main.exe market[-smoke]`, `make bench-market`).

   Parts 7, 9 and 10 also emit machine-readable BENCH_<part>.json
   snapshots (Pan_obs.Bench_snap) recording wall-clock, throughput,
   speedup and a result fingerprint; `main.exe validate-bench FILE...`
   re-parses and schema-checks emitted files.

   Invocation: no argument runs everything at moderate scale;
   `main.exe topo` runs only the Part 6 smoke (1k ASes, used by CI and
   `make bench-topo`); `main.exe topo-full` runs Part 6 at 1k/10k/50k;
   `main.exe topo-snapshot[-smoke]` runs Part 10 (full: 1k/10k/50k);
   `main.exe bosco` runs only Part 7 at W ∈ {8..2048} (used by
   `make bench-bosco`); `main.exe bosco-smoke` caps Part 7 at W = 128
   and emits BENCH_bosco.json (used by CI); `main.exe econ[-smoke]`
   runs Part 9 (60/24 scenarios); `main.exe faults` runs only Part 8
   (used by CI and `make bench-faults`).  The bosco, econ,
   topo-snapshot and faults parts exit non-zero on any fingerprint or
   determinism mismatch. *)

open Bechamel
open Toolkit
open Pan_numerics
open Pan_topology
open Pan_bosco
open Pan_experiments

let fmt = Format.std_formatter
let section name =
  Format.fprintf fmt "@.==================== %s ====================@." name

(* ------------------------------------------------------------------ *)
(* Part 1: figure reproduction (reduced scale)                         *)

let shared_graph =
  lazy
    (let params =
       { Gen.default_params with Gen.n_transit = 250; Gen.n_stub = 1250 }
     in
     Gen.graph (Gen.generate ~params ~seed:42 ()))

let reproduce_fig2 () =
  section "Fig. 2 — Price of Dishonesty vs. choice-set size (E1)";
  List.iter
    (fun s -> Fig2_pod.pp_series fmt s)
    (Fig2_pod.run_both ~ws:[ 2; 5; 10; 20; 50 ] ~trials:60 ~seed:42 ())

let reproduce_fig34 () =
  section "Figs. 3 & 4 — length-3 paths and destinations (E2/E3/E6)";
  let g = Lazy.force shared_graph in
  Format.fprintf fmt "# topology: %a@." Graph.pp_stats g;
  Diversity.pp_result fmt (Diversity.analyze ~sample_size:300 ~seed:7 g)

let reproduce_fig5 () =
  section "Fig. 5 — geodistance of MA paths (E4)";
  let g = Lazy.force shared_graph in
  Geodistance.pp fmt (Geodistance.run ~sample_size:200 ~seed:7 g)

let reproduce_fig6 () =
  section "Fig. 6 — bandwidth of MA paths (E5)";
  let g = Lazy.force shared_graph in
  Bandwidth_exp.pp fmt (Bandwidth_exp.run ~sample_size:200 ~seed:7 g)

let reproduce_gadgets () =
  section "§II — BGP gadgets vs. PAN forwarding (E7)";
  Gadget_exp.pp fmt (Gadget_exp.run ())

let reproduce_methods () =
  section "§IV-C — cash compensation vs. flow-volume targets (E8)";
  Methods_exp.pp fmt (Methods_exp.run ~scenarios:60 ~seed:3 ())

let reproduce_resilience () =
  section "Extension E9 — failover resilience with and without MAs";
  let _, r = Resilience.run_default () in
  Resilience.pp fmt r

let reproduce_chained () =
  section "Extension E10 — agreement-path extension (§III-B3)";
  let _, r = Chained_exp.run_default () in
  Chained_exp.pp fmt r

let reproduce_te () =
  section "Extension E12 — traffic engineering with MA multipath";
  let _, r = Te_exp.run_default () in
  Te_exp.pp fmt r

let reproduce_fragility () =
  section "Extension E13 — BGP fragility vs. violation density";
  Fragility_exp.pp fmt (Fragility_exp.run ~topologies:6 ())

let reproduce_adoption () =
  section "Extension E11 — economically concluded MAs";
  let params =
    { Gen.default_params with Gen.n_transit = 120; Gen.n_stub = 480 }
  in
  let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
  Adoption.pp fmt (Adoption.run ~sample_size:200 ~seed:17 g)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks, one per experiment                *)

let bench_tests () =
  let dist = Fig2_pod.u1 in
  (* E1 kernel: one full BOSCO negotiation (choice sets, equilibrium,
     PoD) at W = 20. *)
  let e1 =
    Test.make ~name:"E1 fig2: bosco negotiation (W=20)"
      (Staged.stage (fun () ->
           let rng = Rng.create 11 in
           ignore
             (Service.negotiate ~truthful:0.1 ~rng ~dist_x:dist ~dist_y:dist
                ~w:20 ())))
  in
  let g = Lazy.force shared_graph in
  let ases = Array.of_list (Graph.ases g) in
  let pick = ases.(Array.length ases / 2) in
  (* E2/E3 kernel: the per-AS scenario path enumeration. *)
  let e2 =
    Test.make ~name:"E2 fig3: scenario_paths MA (one AS)"
      (Staged.stage (fun () ->
           ignore (Path_enum.scenario_paths g Path_enum.Ma_all pick)))
  in
  let geo = Geo.generate ~seed:11 g in
  let e4 =
    Test.make ~name:"E4 fig5: geodistance of one AS's GRC paths"
      (Staged.stage (fun () ->
           Path_enum.iter_paths
             (fun ~mid ~dst -> ignore (Geo.path3_geodistance geo pick mid dst))
             (Path_enum.grc g pick)))
  in
  let bw = Bandwidth.degree_gravity g in
  let e5 =
    Test.make ~name:"E5 fig6: bandwidth of one AS's GRC paths"
      (Staged.stage (fun () ->
           Path_enum.iter_paths
             (fun ~mid ~dst ->
               ignore (Bandwidth.path3_bandwidth bw pick mid dst))
             (Path_enum.grc g pick)))
  in
  let bad = Pan_routing.Gadgets.bad_gadget () in
  let e7 =
    Test.make ~name:"E7 gadgets: SPVP round-robin on BAD GADGET"
      (Staged.stage (fun () ->
           ignore
             (Pan_routing.Bgp.run ~schedule:Pan_routing.Bgp.Round_robin bad)))
  in
  let _, scenario = Pan_econ.Scenario_gen.fig1_scenario () in
  let e8_cash =
    Test.make ~name:"E8 methods: cash optimization (Eq. 11)"
      (Staged.stage (fun () -> ignore (Pan_econ.Cash_opt.optimize scenario)))
  in
  let e8_fv =
    Test.make ~name:"E8 methods: flow-volume optimization (Eq. 9)"
      (Staged.stage (fun () ->
           ignore
             (Pan_econ.Flow_volume_opt.optimize ~starts_per_dim:2 scenario)))
  in
  let e7b =
    Test.make ~name:"E7 gadgets: dispute-wheel search (SURPRISE)"
      (Staged.stage (fun () ->
           ignore (Pan_routing.Dispute.has_wheel (Pan_routing.Gadgets.surprise ()))))
  in
  (* E9 runs on its own small network: beaconing plus full path
     combination over the dense shared graph would time a different thing
     (control-plane construction) than the failover delivery itself. *)
  let small_net =
    lazy
      (let params =
         { Gen.default_params with Gen.n_transit = 50; Gen.n_stub = 200 }
       in
       let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
       let mas =
         Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g []
       in
       (g, Pan_scion.Failure.create (Pan_scion.Authz.create ~mas g)))
  in
  let e9 =
    Test.make ~name:"E9 resilience: one failover delivery"
      (Staged.stage (fun () ->
           let g, net = Lazy.force small_net in
           let ases = Array.of_list (Graph.ases g) in
           ignore
             (Pan_scion.Failure.send_with_failover ~max_paths:8 net
                ~src:ases.(10)
                ~dst:ases.(Array.length ases - 10)
                ~payload:"")))
  in
  let e10 =
    Test.make ~name:"E10 chained: Extension.chained_stats (one AS)"
      (Staged.stage (fun () ->
           ignore (Pan_econ.Extension.chained_stats g pick)))
  in
  let e7c =
    Test.make ~name:"E7 gadgets: async SPVP on GOOD GADGET"
      (Staged.stage (fun () ->
           ignore
             (Pan_routing.Bgp_async.run ~schedule:Pan_routing.Bgp_async.Fifo
                (Pan_routing.Gadgets.good_gadget ()))))
  in
  let e11 =
    Test.make ~name:"E11 adoption: negotiate one MA"
      (Staged.stage
         (let g11, _ = Lazy.force small_net in
          let pair =
            Graph.fold_peering_links
              (fun x y acc -> match acc with None -> Some (x, y) | s -> s)
              g11 None
          in
          fun () ->
            match pair with
            | Some (x, y) ->
                ignore (Adoption.negotiate_pair ~seed:3 g11 x y)
            | None -> ()))
  in
  let e12 =
    Test.make ~name:"E12 te: place one split demand"
      (Staged.stage
         (let g12, net12 = Lazy.force small_net in
          let bw12 = Bandwidth.degree_gravity g12 in
          let t12 = Pan_scion.Traffic.create g12 in
          let ases12 = Array.of_list (Graph.ases g12) in
          let paths =
            List.map Pan_scion.Segment.ases
              (Pan_scion.Combinator.end_to_end ~max_paths:3
                 (Pan_scion.Failure.path_server net12)
                 ~src:ases12.(10)
                 ~dst:ases12.(Array.length ases12 - 10))
          in
          fun () ->
            Pan_scion.Traffic.place t12 bw12 (Pan_scion.Traffic.Split 2)
              paths 1.0))
  in
  let e13 =
    Test.make ~name:"E13 fragility: one violating instance + dynamics"
      (Staged.stage (fun () ->
           ignore (Fragility_exp.run ~densities:[ 0.5 ] ~topologies:1
                     ~dests_per_topology:1 ())))
  in
  [ e1; e2; e4; e5; e7; e7b; e7c; e8_cash; e8_fv; e9; e10; e11; e12; e13 ]

let run_bechamel tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyses = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> Float.nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> Float.nan
          in
          Format.fprintf fmt "%-48s %14.1f ns/run  (r2=%.3f)@." name estimate
            r2)
        analyses)
    tests

let run_benchmarks () =
  section "Microbenchmarks (Bechamel, OLS ns/run)";
  run_bechamel (bench_tests ())

(* ------------------------------------------------------------------ *)
(* Part 3: ablations                                                   *)

let ablation_choice_sets () =
  section "Ablation: random vs. grid choice-set construction";
  let run construction label =
    let rng = Rng.create 5 in
    let reports =
      Service.trials ~construction ~rng ~dist_x:Fig2_pod.u1 ~dist_y:Fig2_pod.u1
        ~w:20 ~n:40 ()
    in
    Format.fprintf fmt "%-22s min PoD %.4f  mean PoD %.4f@." label
      (Service.min_pod reports) (Service.mean_pod reports)
  in
  run Service.Random_sampling "random sampling";
  run Service.Grid "grid"

let ablation_dynamics_start () =
  section "Ablation: best-response dynamics start point";
  let rng = Rng.create 5 in
  let claims_x = Claim.sample rng Fig2_pod.u1 20 in
  let claims_y = Claim.sample rng Fig2_pod.u1 20 in
  let game =
    Game.{ dist_x = Fig2_pod.u1; dist_y = Fig2_pod.u1; claims_x; claims_y }
  in
  List.iter
    (fun (start, label) ->
      let eq = Equilibrium.best_response_dynamics ~start game in
      let pod =
        Efficiency.price_of_dishonesty game eq.Equilibrium.strategy_x
          eq.Equilibrium.strategy_y
      in
      Format.fprintf fmt "%-22s rounds %3d  converged %b  PoD %.4f@." label
        eq.Equilibrium.rounds eq.Equilibrium.converged pod)
    [
      (Equilibrium.Truthful, "truthful start");
      (Equilibrium.All_cancel, "all-cancel start");
    ]

let ablation_asymmetric_distributions () =
  section "Ablation: PoD under asymmetric utility distributions";
  (* the paper evaluates two symmetric uniforms; check the mechanism
     copes when one party's stakes are much larger, or skewed *)
  let cases =
    [
      ("U[-1,1] vs U[-1,1]", Fig2_pod.u1, Fig2_pod.u1);
      ("U[-1,1] vs U[-3,3]", Fig2_pod.u1, Distribution.uniform (-3.0) 3.0);
      (* note: U[-0.2,1] vs U[-1,0.2] would be affinely equivalent to the
         symmetric case (opposite shifts cancel in the surplus), so use
         genuinely different widths instead *)
      ( "U[-0.2,1] vs U[-1,1]",
        Distribution.uniform (-0.2) 1.0,
        Fig2_pod.u1 );
      ( "triangular vs uniform",
        Distribution.triangular (-1.0) 0.5 1.0,
        Fig2_pod.u1 );
    ]
  in
  List.iter
    (fun (label, dist_x, dist_y) ->
      let rng = Rng.create 5 in
      let reports = Service.trials ~rng ~dist_x ~dist_y ~w:25 ~n:30 () in
      Format.fprintf fmt "%-26s min PoD %.4f  mean PoD %.4f@." label
        (Service.min_pod reports) (Service.mean_pod reports))
    cases

let ablation_topology_density () =
  section "Ablation: transit peering density vs. MA path gains";
  List.iter
    (fun degree ->
      let params =
        {
          Gen.default_params with
          Gen.n_transit = 200;
          Gen.n_stub = 800;
          Gen.transit_peering_degree = degree;
        }
      in
      let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
      let result = Diversity.analyze ~sample_size:200 ~seed:7 g in
      let agg = Diversity.aggregate_stats result in
      Format.fprintf fmt
        "peering degree %5.1f: additional paths avg %8.0f max %8d@." degree
        agg.Diversity.avg_additional_paths agg.Diversity.max_additional_paths)
    [ 5.0; 20.0; 40.0 ]

(* ------------------------------------------------------------------ *)
(* Part 4: runner scaling (sequential vs parallel)                     *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let runner_scaling () =
  section "Runner scaling: wall-clock per worker-domain count";
  let g = Lazy.force shared_graph in
  (* Each kernel returns a plain fingerprint (floats only) so bit-for-bit
     parallel-equals-sequential can be checked with (=). *)
  let kernels =
    [
      ( "E1 fig2 (trials=60, W=20)",
        fun pool ->
          let rng = Rng.create 42 in
          let reports =
            Service.trials ?pool ~rng ~dist_x:Fig2_pod.u1 ~dist_y:Fig2_pod.u1
              ~w:20 ~n:60 ()
          in
          List.map (fun (r : Service.report) -> r.Service.pod) reports );
      ( "E2/E3 diversity (sample=300)",
        fun pool ->
          let r = Diversity.analyze ?pool ~sample_size:300 ~seed:7 g in
          List.concat_map
            (fun pa -> List.map (fun (_, n) -> float_of_int n) pa.Diversity.paths)
            r.Diversity.sampled );
      ( "E5 fig6 bandwidth (sample=200)",
        fun pool ->
          let r = Bandwidth_exp.run ?pool ~sample_size:200 ~seed:7 g in
          List.fold_left ( +. ) 0.0 r.Pair_analysis.improvements
          :: List.map
               (fun (pc : Pair_analysis.pair_counts) ->
                 float_of_int pc.Pair_analysis.below_min)
               r.Pair_analysis.pairs );
      ( "E8 methods (scenarios=60)",
        fun pool ->
          let r = Methods_exp.run ?pool ~scenarios:60 ~seed:3 () in
          [
            float_of_int r.Methods_exp.cash_concluded;
            float_of_int r.Methods_exp.flow_volume_concluded;
            float_of_int r.Methods_exp.cash_only;
            r.Methods_exp.mean_cash_joint;
            r.Methods_exp.mean_flow_volume_joint;
          ] );
      ( "Eq.19 MC nash (samples=2e6)",
        let game, sx, sy =
          let rng = Rng.create 11 in
          let r =
            Service.negotiate ~truthful:0.1 ~rng ~dist_x:Fig2_pod.u1
              ~dist_y:Fig2_pod.u1 ~w:20 ()
          in
          (r.Service.game, r.Service.strategy_x, r.Service.strategy_y)
        in
        fun pool ->
          [
            Efficiency.mc_expected_nash ?pool ~rng:(Rng.create 5)
              ~samples:2_000_000 game sx sy;
          ] );
    ]
  in
  Format.fprintf fmt "%-32s %10s %10s %10s %10s  %s@." "kernel" "seq (s)"
    "j=2 (s)" "j=4 (s)" "speedup@4" "par=seq";
  List.iter
    (fun (name, kernel) ->
      let seq, t_seq = time (fun () -> kernel None) in
      let run_jobs jobs =
        Pan_runner.Pool.with_pool ~domains:jobs (fun pool ->
            time (fun () -> kernel (Some pool)))
      in
      let r2, t2 = run_jobs 2 in
      let r4, t4 = run_jobs 4 in
      Format.fprintf fmt "%-32s %10.3f %10.3f %10.3f %9.2fx  %b@." name t_seq
        t2 t4 (t_seq /. t4)
        (seq = r2 && seq = r4))
    kernels

let run_runner_pair () =
  (* Bechamel pair: the same E1 kernel sequentially and on a reused
     4-domain pool. *)
  section "Runner microbenchmark (Bechamel): sequential vs 4-domain pool";
  let dist = Fig2_pod.u1 in
  let kernel pool () =
    let rng = Rng.create 42 in
    ignore (Service.trials ?pool ~rng ~dist_x:dist ~dist_y:dist ~w:20 ~n:20 ())
  in
  Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
      run_bechamel
        [
          Test.make ~name:"runner E1 kernel: sequential"
            (Staged.stage (kernel None));
          Test.make ~name:"runner E1 kernel: 4-domain pool"
            (Staged.stage (kernel (Some pool)));
        ])

(* ------------------------------------------------------------------ *)
(* Part 5: observability (lib/obs)                                     *)

let obs_profile () =
  section "Observability: instrumented diversity run (lib/obs)";
  Pan_obs.Obs.configure ~clock:(Pan_obs.Clock.real ()) ();
  Fun.protect
    ~finally:(fun () ->
      let m = Pan_obs.Obs.metrics () in
      let spans = Pan_obs.Obs.spans () in
      Pan_obs.Obs.disable ();
      Pan_obs.Report.pp_metrics_table fmt m;
      Format.fprintf fmt "# span tree@.";
      Pan_obs.Report.pp_span_tree fmt spans)
    (fun () ->
      let g = Lazy.force shared_graph in
      Pan_runner.Pool.with_pool ~domains:2 (fun pool ->
          ignore (Diversity.analyze ~pool ~sample_size:150 ~seed:7 g)))

(* ------------------------------------------------------------------ *)
(* Part 6: compact frozen-topology core (lib/topology Compact/Bitset)  *)

(* (label, n_transit, n_stub, sampled sources); 12 tier-1 ASes are added
   by the generator, so n_transit + n_stub + 12 = the label. *)
let compact_sizes = function
  | `Smoke -> [ ("1k", 60, 928, 100) ]
  | `Full ->
      [ ("1k", 60, 928, 100); ("10k", 500, 9488, 60); ("50k", 1500, 48488, 20) ]

let compact_core_bench sizes =
  section "Compact core: legacy Path_enum vs Compact+Bitset (MA sweep)";
  Format.fprintf fmt "%-6s %7s %11s %11s %12s %9s  %s@." "size" "srcs"
    "freeze (s)" "legacy (s)" "compact (s)" "speedup" "equal";
  List.iter
    (fun (label, n_transit, n_stub, sample) ->
      let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
      let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
      let c, t_freeze = time (fun () -> Compact.freeze g) in
      let ases = Compact.asns c in
      let n = Array.length ases in
      (* deterministic stride sample; index i interns ases.(i), so both
         sweeps enumerate exactly the same sources *)
      let stride = Stdlib.max 1 (n / sample) in
      let sources =
        List.filter (fun i -> i mod stride = 0) (List.init n Fun.id)
      in
      let legacy, t_legacy =
        time (fun () ->
            List.fold_left
              (fun (p, d) i ->
                let m = Path_enum.scenario_paths g Path_enum.Ma_all ases.(i) in
                ( p + Path_enum.total_count m,
                  d + Asn.Set.cardinal (Path_enum.dest_set m) ))
              (0, 0) sources)
      in
      let compact, t_compact =
        time (fun () ->
            List.fold_left
              (fun (p, d) i ->
                let m = Path_enum_compact.scenario_paths c Path_enum.Ma_all i in
                ( p + Path_enum_compact.total_count m,
                  d + Bitset.cardinal (Path_enum_compact.dest_set m) ))
              (0, 0) sources)
      in
      Format.fprintf fmt "%-6s %7d %11.3f %11.3f %12.3f %8.2fx  %b@." label
        (List.length sources) t_freeze t_legacy t_compact
        (t_legacy /. t_compact) (legacy = compact))
    sizes

let compact_jobs_check ~n_transit ~n_stub () =
  section "Compact core: Diversity --jobs 1 vs --jobs 4 over one frozen view";
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
  let fingerprint pool =
    let r = Diversity.analyze ?pool ~sample_size:200 ~seed:7 g in
    List.map
      (fun pa ->
        (pa.Diversity.asn, pa.Diversity.paths, pa.Diversity.destinations))
      r.Diversity.sampled
  in
  let seq, t_seq = time (fun () -> fingerprint None) in
  let par, t_par =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        time (fun () -> fingerprint (Some pool)))
  in
  Format.fprintf fmt
    "sequential %.3f s, 4 domains %.3f s (%.2fx); identical: %b@." t_seq t_par
    (t_seq /. t_par) (seq = par)

let run_compact_core scale =
  compact_core_bench (compact_sizes scale);
  match scale with
  | `Smoke -> compact_jobs_check ~n_transit:60 ~n_stub:928 ()
  | `Full -> compact_jobs_check ~n_transit:500 ~n_stub:9488 ()

(* ------------------------------------------------------------------ *)
(* Part 7: BOSCO best-response kernel (lib/bosco Strategy/Workspace)   *)

let bosco_sizes = function
  | `Smoke -> [ 8; 32; 128 ]
  | `Full -> [ 8; 32; 128; 512; 2048 ]

(* Everything the dynamics decide, with thresholds rounded to 9
   significant digits: the fast kernel reassociates prefix sums, so its
   floats may differ from the reference in the last couple of ulps, but
   both kernels must agree on every decision at this resolution. *)
let dynamics_fingerprint (eq : Equilibrium.result) =
  let th s =
    Array.to_list
      (Array.map (Printf.sprintf "%.9g") (Strategy.thresholds s))
  in
  ( th eq.Equilibrium.strategy_x,
    th eq.Equilibrium.strategy_y,
    eq.Equilibrium.rounds,
    eq.Equilibrium.converged )

let bosco_kernel_bench sizes =
  section "BOSCO kernel: fast O(W log W) vs reference O(W^2) dynamics";
  Format.fprintf fmt "%-6s %5s %12s %12s %9s  %s@." "W" "reps" "ref (s)"
    "fast (s)" "speedup" "equal";
  let ok = ref true in
  List.iter
    (fun w ->
      (* Fresh claims per size, same seed: both kernels see the same
         game.  Repetitions keep small-W timings above clock noise. *)
      let rng = Rng.create 42 in
      let dist = Fig2_pod.u1 in
      let claims_x = Claim.sample rng dist w in
      let claims_y = Claim.sample rng dist w in
      let game = Game.{ dist_x = dist; dist_y = dist; claims_x; claims_y } in
      let reps = if w <= 32 then 100 else if w <= 128 then 10 else 1 in
      let run kernel =
        let eq = ref None in
        let _, t =
          time (fun () ->
              for _ = 1 to reps do
                eq := Some (Equilibrium.best_response_dynamics ~kernel game)
              done)
        in
        (Option.get !eq, t)
      in
      let eq_ref, t_ref = run Equilibrium.Reference in
      let eq_fast, t_fast = run Equilibrium.Fast in
      let equal = dynamics_fingerprint eq_ref = dynamics_fingerprint eq_fast in
      if not equal then ok := false;
      Format.fprintf fmt "%-6d %5d %12.4f %12.4f %8.2fx  %b@." w reps t_ref
        t_fast (t_ref /. t_fast) equal)
    sizes;
  !ok

let bosco_jobs_check () =
  section "BOSCO kernel: Service.trials --jobs 1 vs --jobs 4";
  let fingerprint pool =
    let rng = Rng.create 42 in
    let reports =
      Service.trials ?pool ~rng ~dist_x:Fig2_pod.u1 ~dist_y:Fig2_pod.u1 ~w:32
        ~n:24 ()
    in
    List.map
      (fun (r : Service.report) ->
        ( r.Service.pod,
          r.Service.rounds,
          r.Service.converged,
          r.Service.equilibrium_choices_x,
          r.Service.equilibrium_choices_y ))
      reports
  in
  let seq, t_seq = time (fun () -> fingerprint None) in
  let par, t_par =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        time (fun () -> fingerprint (Some pool)))
  in
  let ok = seq = par in
  Format.fprintf fmt
    "sequential %.3f s, 4 domains %.3f s (%.2fx); identical: %b@." t_seq t_par
    (t_seq /. t_par) ok;
  ok

let run_bosco scale =
  let ok_kernel = bosco_kernel_bench (bosco_sizes scale) in
  let ok_jobs = bosco_jobs_check () in
  ok_kernel && ok_jobs

(* ------------------------------------------------------------------ *)
(* BENCH_<part>.json emission (Pan_obs.Bench_snap)                     *)

let emit_snapshot snap =
  let path = Pan_obs.Bench_snap.write snap in
  Format.fprintf fmt "bench snapshot: %s@." path

(* Part 7 again, instrumented for a snapshot: the -j1/-j4 trial
   fingerprints must agree, and the fast/reference speedup at the largest
   smoke size is recorded. *)
let run_bosco_snapshot () =
  let ok_kernel = bosco_kernel_bench (bosco_sizes `Smoke) in
  section "BOSCO kernel: snapshot (BENCH_bosco.json)";
  let trials pool =
    let rng = Rng.create 42 in
    Service.trials ?pool ~rng ~dist_x:Fig2_pod.u1 ~dist_y:Fig2_pod.u1 ~w:32
      ~n:24 ()
  in
  let render reports =
    String.concat ";"
      (List.map
         (fun (r : Service.report) ->
           Printf.sprintf "%.17g,%d,%b" r.Service.pod r.Service.rounds
             r.Service.converged)
         reports)
  in
  let seq, t_seq = time (fun () -> render (trials None)) in
  let par, t_par =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        time (fun () -> render (trials (Some pool))))
  in
  let fp_seq = Pan_obs.Bench_snap.fingerprint_of_string seq in
  let fp_par = Pan_obs.Bench_snap.fingerprint_of_string par in
  let ok = fp_seq = fp_par in
  Format.fprintf fmt "fingerprint -j1 %s  -j4 %s  equal %b@." fp_seq fp_par ok;
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"bosco" ~wall_s:t_par
       ~throughput:(24.0 /. t_par) ~speedup:(t_seq /. t_par)
       ~fingerprint:fp_seq ~jobs:4
       ~meta:[ ("fingerprint_j1", fp_seq); ("fingerprint_j4", fp_par) ]
       ());
  ok_kernel && ok

(* ------------------------------------------------------------------ *)
(* Part 9: econ fast kernel (lib/econ Model_fast)                      *)

let methods_fingerprint (r : Methods_exp.report) =
  Pan_obs.Bench_snap.fingerprint_of_string
    (Printf.sprintf "%d,%d,%d,%d,%.17g,%.17g" r.Methods_exp.scenarios
       r.Methods_exp.cash_concluded r.Methods_exp.flow_volume_concluded
       r.Methods_exp.cash_only r.Methods_exp.mean_cash_joint
       r.Methods_exp.mean_flow_volume_joint)

let run_econ ~scenarios () =
  section "Econ kernel: flat Model_fast vs map-based reference (E8 sweep)";
  (* Single-scenario microbench: the Nelder-Mead inner loop dominated by
     utility evaluation. *)
  let _, scenario = Pan_econ.Scenario_gen.fig1_scenario () in
  let reps = 20 in
  let run kernel =
    let r = ref None in
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            r :=
              Some
                (Pan_econ.Flow_volume_opt.optimize ~kernel ~starts_per_dim:2
                   scenario)
          done)
    in
    (Option.get !r, t)
  in
  let r_ref, t_ref1 = run Pan_econ.Model_fast.Reference in
  let r_fast, t_fast1 = run Pan_econ.Model_fast.Fast in
  let single_equal =
    r_ref.Pan_econ.Flow_volume_opt.u_x = r_fast.Pan_econ.Flow_volume_opt.u_x
    && r_ref.Pan_econ.Flow_volume_opt.u_y = r_fast.Pan_econ.Flow_volume_opt.u_y
    && r_ref.Pan_econ.Flow_volume_opt.nash
       = r_fast.Pan_econ.Flow_volume_opt.nash
  in
  Format.fprintf fmt
    "fig1 flow-volume opt (%d reps): ref %.3f s, fast %.3f s (%.2fx); \
     bit-identical: %b@."
    reps t_ref1 t_fast1 (t_ref1 /. t_fast1) single_equal;
  (* The full E8 sweep, both kernels, then -j1 vs -j4 on the fast one. *)
  let run_methods ?pool kernel =
    time (fun () -> Methods_exp.run ?pool ~scenarios ~seed:3 ~kernel ())
  in
  let rep_ref, t_ref = run_methods Pan_econ.Model_fast.Reference in
  let rep_fast, t_fast = run_methods Pan_econ.Model_fast.Fast in
  let kernels_equal = rep_ref = rep_fast in
  Format.fprintf fmt
    "E8 sweep (%d scenarios): ref %.3f s, fast %.3f s (%.2fx); reports \
     identical: %b@."
    scenarios t_ref t_fast (t_ref /. t_fast) kernels_equal;
  let rep_par, t_par =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        run_methods ~pool Pan_econ.Model_fast.Fast)
  in
  let fp_j1 = methods_fingerprint rep_fast in
  let fp_j4 = methods_fingerprint rep_par in
  let jobs_equal = fp_j1 = fp_j4 in
  Format.fprintf fmt
    "fast -j1 %.3f s, -j4 %.3f s (%.2fx); fingerprint -j1 %s -j4 %s equal \
     %b@."
    t_fast t_par (t_fast /. t_par) fp_j1 fp_j4 jobs_equal;
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"econ" ~wall_s:t_fast
       ~throughput:(float_of_int scenarios /. t_fast)
       ~speedup:(t_ref /. t_fast) ~fingerprint:fp_j1 ~jobs:4
       ~meta:
         [
           ("fingerprint_j1", fp_j1);
           ("fingerprint_j4", fp_j4);
           ("scenarios", string_of_int scenarios);
         ]
       ());
  single_equal && kernels_equal && jobs_equal

(* ------------------------------------------------------------------ *)
(* Part 10: versioned topology snapshots (lib/topology Snapshot)       *)

let snapshot_sizes = function
  | `Smoke -> [ ("1k", 60, 928) ]
  | `Full -> [ ("1k", 60, 928); ("10k", 500, 9488); ("50k", 1500, 48488) ]

(* Generate-and-serialize in its own function so the legacy Graph (large
   Asn.Map adjacency) is dead before the timed phases; otherwise every
   load's allocations pay major-GC slices marking it. *)
let write_caida_file ~n_transit ~n_stub file =
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  Caida.save file (Gen.graph (Gen.generate ~params ~seed:42 ()))

let run_topo_snapshot scale =
  section "Topology snapshots: parse+freeze vs Snapshot.load";
  Format.fprintf fmt "%-6s %8s %15s %13s %9s  %s@." "size" "ases"
    "parse+freeze(s)" "snap load (s)" "speedup" "equal";
  let ok = ref true in
  let last_fp = ref "" and last_speedup = ref 0.0 and last_wall = ref 0.0 in
  let last_ases = ref 0 in
  List.iter
    (fun (label, n_transit, n_stub) ->
      let caida_file = Filename.temp_file "panagree_bench" ".caida" in
      let snap_file = Filename.temp_file "panagree_bench" ".snap" in
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove caida_file with Sys_error _ -> ());
          try Sys.remove snap_file with Sys_error _ -> ())
        (fun () ->
          write_caida_file ~n_transit ~n_stub caida_file;
          (* Steady-state cost for both paths: best of [reps], a
             [Gc.full_major] before each so one rep's garbage is not
             charged to the next rep's timed region. *)
          let best_of reps f =
            let result = ref None and best = ref infinity in
            for _ = 1 to reps do
              Gc.full_major ();
              let r, t = time f in
              result := Some r;
              if t < !best then best := t
            done;
            (Option.get !result, !best)
          in
          (* the cold-start path a snapshot replaces: parse the serialized
             topology and freeze it *)
          let frozen, t_parse =
            best_of 2 (fun () -> Compact.freeze (Caida.load caida_file))
          in
          Compact.Snapshot.save snap_file frozen;
          let loaded, t_load =
            best_of 5 (fun () -> Compact.Snapshot.load snap_file)
          in
          let loaded = ref loaded in
          let bytes_frozen = Compact.Snapshot.to_string frozen in
          let bytes_loaded = Compact.Snapshot.to_string !loaded in
          let equal = String.equal bytes_frozen bytes_loaded in
          if not equal then ok := false;
          let speedup = t_parse /. t_load in
          Format.fprintf fmt "%-6s %8d %15.4f %13.5f %8.1fx  %b@." label
            (Compact.num_ases frozen) t_parse t_load speedup equal;
          last_fp := Pan_obs.Bench_snap.fingerprint_of_string bytes_frozen;
          last_speedup := speedup;
          last_wall := t_load;
          last_ases := Compact.num_ases frozen))
    (snapshot_sizes scale);
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"topo-snapshot" ~wall_s:!last_wall
       ~throughput:(float_of_int !last_ases /. !last_wall)
       ~speedup:!last_speedup ~fingerprint:!last_fp ~jobs:1
       ~meta:[ ("ases", string_of_int !last_ases) ]
       ());
  !ok

let validate_bench files =
  let ok =
    List.fold_left
      (fun ok file ->
        match Pan_obs.Bench_snap.read file with
        | Ok snap ->
            Format.fprintf fmt "%s: ok (part %s, fingerprint %s)@." file
              snap.Pan_obs.Bench_snap.part snap.Pan_obs.Bench_snap.fingerprint;
            ok
        | Error e ->
            Format.eprintf "%s: INVALID: %s@." file e;
            false)
      true files
  in
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Part 8: supervised runner (lib/runner Supervise/Fault)              *)

(* Seed chosen so the 0.1 rate actually fires (twice) across the E1
   kernel's chunk grid — the trailing retries-exercised check guards the
   choice against drifting chunk counts. *)
let fault_spec =
  { Pan_runner.Fault.seed = 8; rate = 0.1; delay = 0.0; delay_rate = 0.0 }

let run_supervised () =
  section "Supervised runner: fault-injection recovery overhead (E1 kernel)";
  (* Same E1 fingerprint as Part 4.  A run that recovers from injected
     faults via retries replays each failed chunk's RNG split, so every
     row must reproduce the fault-free fingerprint bit-for-bit. *)
  let fingerprint ?pool ~retries () =
    let rng = Rng.create 42 in
    List.map
      (fun (r : Service.report) -> r.Service.pod)
      (Service.trials ?pool ~retries ~rng ~dist_x:Fig2_pod.u1
         ~dist_y:Fig2_pod.u1 ~w:20 ~n:60 ())
  in
  let saved = Pan_runner.Fault.get () in
  let run ~faults ~retries pool =
    Pan_runner.Fault.set (if faults then Some fault_spec else None);
    Fun.protect
      ~finally:(fun () -> Pan_runner.Fault.set saved)
      (fun () -> time (fun () -> fingerprint ?pool ~retries ()))
  in
  let baseline, t_base = run ~faults:false ~retries:0 None in
  let ok = ref true in
  Format.fprintf fmt "%-36s %10s %10s %10s  %s@." "configuration" "seq (s)"
    "j=4 (s)" "overhead" "par=seq=base";
  Format.fprintf fmt "%-36s %10.3f %10s %10s  %b@." "fault-free (fast path)"
    t_base "-" "-" true;
  List.iter
    (fun (label, faults, retries) ->
      let seq, t_seq = run ~faults ~retries None in
      let par, t_par =
        Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
            run ~faults ~retries (Some pool))
      in
      let equal = seq = baseline && par = baseline in
      if not equal then ok := false;
      Format.fprintf fmt "%-36s %10.3f %10.3f %9.1f%%  %b@." label t_seq t_par
        ((t_seq /. t_base -. 1.0) *. 100.0)
        equal)
    [
      ("supervised, no faults (retries=5)", false, 5);
      ("faults rate=0.1 + retries=5", true, 5);
    ];
  (* The faulty rows only prove recovery if faults actually fired: re-run
     the sequential faulty case instrumented and demand retries > 0. *)
  Pan_obs.Obs.configure ();
  let retried =
    Fun.protect
      ~finally:(fun () -> Pan_obs.Obs.disable ())
      (fun () ->
        ignore (run ~faults:true ~retries:5 None);
        Pan_obs.Metrics.counter (Pan_obs.Obs.metrics ()) "runner.retries")
  in
  Format.fprintf fmt "injected-fault retries exercised: %d@." retried;
  if retried <= 0 then ok := false;
  !ok

(* ------------------------------------------------------------------ *)
(* Part 11: resident path-query service (lib/service)                  *)

(* transit, stubs, requests, churn *)
let serve_params = function
  | `Smoke -> (60, 928, 3000, 0.02)
  | `Full -> (200, 3000, 20000, 0.02)

let run_serve scale =
  let module Sv = Pan_service in
  section "Resident service: sustained path queries under link churn";
  let n_transit, n_stub, requests, churn = serve_params scale in
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  let topo = Compact.freeze (Gen.graph (Gen.generate ~params ~seed:42 ())) in
  let stream =
    Sv.Stream.generate ~rng:(Rng.create 44) ~topo ~requests ~churn ()
  in
  let n_queries =
    List.length
      (List.filter
         (function Sv.Stream.Query _ -> true | _ -> false)
         stream)
  in
  let n_events = requests - n_queries in
  Format.fprintf fmt "topology: %a@.stream: %d queries, %d events (churn %g)@."
    Compact.pp_stats topo n_queries n_events churn;
  (* Latency pass: drive the engine directly, timing each memoized query
     individually (the sustained-service shape: store hits dominate once
     the memo warms between churn events). *)
  let engine = Sv.Engine.create topo in
  let latencies = Array.make (max 1 n_queries) 0.0 in
  let q = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Sv.Stream.Query { src; dst; policy } ->
          let src = Option.get (Compact.index_of topo src) in
          let dst = Option.get (Compact.index_of topo dst) in
          let t0 = Unix.gettimeofday () in
          ignore (Sv.Engine.query engine ~src ~dst ~policy : int list);
          latencies.(!q) <- Unix.gettimeofday () -. t0;
          incr q
      | ev ->
          ignore (Sv.Engine.apply engine (Sv.Serve.event_of_item topo ev) : int))
    stream;
  let st = Sv.Engine.stats engine in
  let p50 = Pan_numerics.Stats.percentile latencies 50.0 *. 1e6 in
  let p99 = Pan_numerics.Stats.percentile latencies 99.0 *. 1e6 in
  Format.fprintf fmt
    "store: %d hits, %d misses, %d invalidations@.\
     query latency: p50 %.1f us, p99 %.1f us@."
    st.Sv.Engine.store_hits st.Sv.Engine.store_misses st.Sv.Engine.invalidated
    p50 p99;
  (* Incremental freeze vs full re-freeze, same stream end to end. *)
  let inc, t_inc =
    time (fun () -> Sv.Serve.run ~mode:Sv.Engine.Incremental ~topo stream)
  in
  let refr, t_refr =
    time (fun () -> Sv.Serve.run ~mode:Sv.Engine.Refreeze ~topo stream)
  in
  let modes_equal =
    String.equal inc.Sv.Serve.fingerprint refr.Sv.Serve.fingerprint
  in
  let qps = float_of_int n_queries /. t_inc in
  Format.fprintf fmt
    "drain: incremental %.3f s (%.0f queries/s), refreeze %.3f s (%.1fx); \
     transcripts equal %b@."
    t_inc qps t_refr (t_refr /. t_inc) modes_equal;
  (* Parallel prefill must not change a byte of the transcript. *)
  let par, _t_par =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        time (fun () ->
            Sv.Serve.run ~pool ~mode:Sv.Engine.Incremental ~topo stream))
  in
  let jobs_equal =
    String.equal inc.Sv.Serve.fingerprint par.Sv.Serve.fingerprint
  in
  Format.fprintf fmt "fingerprint -j1 %s  -j4 %s  equal %b@."
    inc.Sv.Serve.fingerprint par.Sv.Serve.fingerprint jobs_equal;
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"serve" ~wall_s:t_inc ~throughput:qps
       ~speedup:(t_refr /. t_inc) ~fingerprint:inc.Sv.Serve.fingerprint
       ~jobs:4
       ~meta:
         [
           ("queries", string_of_int n_queries);
           ("events", string_of_int n_events);
           ("churn", Printf.sprintf "%g" churn);
           ("p50_us", Printf.sprintf "%.1f" p50);
           ("p99_us", Printf.sprintf "%.1f" p99);
           ("fingerprint_j1", inc.Sv.Serve.fingerprint);
           ("fingerprint_j4", par.Sv.Serve.fingerprint);
         ]
       ());
  modes_equal && jobs_equal

(* ------------------------------------------------------------------ *)
(* Part 12: intent engine (lib/intent): K-shortest candidates          *)

(* transit, stubs, candidate pairs, serve-drain requests *)
let intent_params = function
  | `Smoke -> (60, 928, 200, 1500)
  | `Full -> (200, 3000, 600, 8000)

let run_intent scale =
  let module I = Pan_intent in
  let module Sv = Pan_service in
  section "Intent engine: K-shortest candidates over the compact core";
  let n_transit, n_stub, pairs, requests = intent_params scale in
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  let topo = Compact.freeze (Gen.graph (Gen.generate ~params ~seed:42 ())) in
  Format.fprintf fmt "topology: %a, %d endpoint pairs@." Compact.pp_stats topo
    pairs;
  let n = Compact.num_ases topo in
  let rng = Rng.create 45 in
  let endpoints =
    Array.init pairs (fun _ ->
        let src = Rng.int rng n in
        let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
        (Compact.id topo src, Compact.id topo dst))
  in
  (* The same metric environment Engine pins at creation (geo seed 43). *)
  let metric =
    I.Metric.of_models
      ~geo:(Geo.of_compact ~seed:43 topo)
      ~bandwidth:(Bandwidth.of_compact topo)
  in
  let web =
    [
      { I.Intent.weight = 1.0; component = I.Intent.Nlatency };
      { I.Intent.weight = 1.0; component = I.Intent.Nbandwidth };
    ]
  in
  let ok = ref true in
  (* Candidate generation throughput across the K sweep; each K is run
     twice and must reproduce bit-for-bit (pure function of the frozen
     view). *)
  let rate_k8 = ref 0.0 and wall_k8 = ref 0.0 in
  Format.fprintf fmt "%4s %12s %10s %14s  %s@." "K" "candidates" "wall (s)"
    "candidates/s" "deterministic";
  List.iter
    (fun k ->
      let intent = I.Intent.make ~metric:web ~k () in
      let sweep () =
        Array.fold_left
          (fun acc (src, dst) ->
            I.Candidates.generate ~topo ~metric intent ~src ~dst :: acc)
          [] endpoints
      in
      let r1, t = time sweep in
      let r2, _ = time sweep in
      let count =
        List.fold_left (fun acc rs -> acc + List.length rs) 0 r1
      in
      let det = r1 = r2 in
      if not det then ok := false;
      let rate = float_of_int count /. t in
      if k = 8 then (rate_k8 := rate; wall_k8 := t);
      Format.fprintf fmt "%4d %12d %10.3f %14.0f  %b@." k count t rate det)
    [ 1; 2; 4; 8; 16; 32 ];
  (* Probe-with-failover under an active fault spec: outages are a pure
     function of (spec, link), so two probe passes must select the same
     paths. *)
  let k8 = I.Intent.make ~metric:web ~k:8 () in
  let candidate_paths =
    Array.map
      (fun (src, dst) ->
        List.map
          (fun r -> r.I.Candidates.path)
          (I.Candidates.generate ~topo ~metric k8 ~src ~dst))
      endpoints
  in
  let saved = Pan_runner.Fault.get () in
  let probe_pass () =
    Pan_runner.Fault.set
      (Some { Pan_runner.Fault.seed = 9; rate = 0.1; delay = 0.0;
              delay_rate = 0.0 });
    Fun.protect
      ~finally:(fun () -> Pan_runner.Fault.set saved)
      (fun () ->
        Array.fold_left
          (fun (sel, fail) paths ->
            let o = I.Probe.run ~topo paths in
            ( o.I.Probe.selected :: sel,
              fail + List.length (I.Probe.failed_links o) ))
          ([], 0) candidate_paths)
  in
  let (sel1, failovers), t_probe = time probe_pass in
  let (sel2, _), _ = time probe_pass in
  let probe_det = sel1 = sel2 in
  if not probe_det then ok := false;
  let survived =
    List.length (List.filter Option.is_some sel1)
  in
  Format.fprintf fmt
    "probe (fault rate 0.1): %d/%d pairs served, %d failed links, %.3f s; \
     deterministic %b@."
    survived pairs failovers t_probe probe_det;
  (* Serve drain over an all-intent stream under churn: byte-identical
     transcripts at -j1 and -j4 (intent answers never touch the pool). *)
  let stream =
    Sv.Stream.generate ~intent:k8 ~rng:(Rng.create 44) ~topo ~requests
      ~churn:0.02 ()
  in
  let j1, t_j1 =
    time (fun () -> Sv.Serve.run ~mode:Sv.Engine.Incremental ~topo stream)
  in
  let j4, _ =
    Pan_runner.Pool.with_pool ~domains:4 (fun pool ->
        time (fun () ->
            Sv.Serve.run ~pool ~mode:Sv.Engine.Incremental ~topo stream))
  in
  let jobs_equal = String.equal j1.Sv.Serve.fingerprint j4.Sv.Serve.fingerprint in
  if not jobs_equal then ok := false;
  Format.fprintf fmt
    "serve drain (%d intent items, churn 0.02): %.3f s; fingerprint -j1 %s  \
     -j4 %s  equal %b@."
    requests t_j1 j1.Sv.Serve.fingerprint j4.Sv.Serve.fingerprint jobs_equal;
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"intent" ~wall_s:!wall_k8
       ~throughput:!rate_k8
       ~speedup:1.0 ~fingerprint:j1.Sv.Serve.fingerprint ~jobs:4
       ~meta:
         [
           ("pairs", string_of_int pairs);
           ("requests", string_of_int requests);
           ("candidates_per_s_k8", Printf.sprintf "%.0f" !rate_k8);
           ("probe_failed_links", string_of_int failovers);
           ("fingerprint_j1", j1.Sv.Serve.fingerprint);
           ("fingerprint_j4", j4.Sv.Serve.fingerprint);
         ]
       ());
  !ok

(* ------------------------------------------------------------------ *)
(* Part 13: MA negotiation marketplace (lib/market)                    *)

(* transit, stubs, epochs, max candidates per epoch, W *)
let market_params = function
  | `Smoke -> (24, 170, 2, 384, 24)
  | `Full -> (48, 440, 3, 768, 32)

let run_market scale =
  let module M = Pan_market.Market in
  section "MA marketplace: concurrent negotiations over the frozen core";
  let n_transit, n_stub, epochs, max_candidates, w = market_params scale in
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
  Format.fprintf fmt "topology: %a@." Graph.pp_stats g;
  let config = { M.default with M.epochs; w; max_candidates; chunk = 8 } in
  let ok = ref true in
  (* Scaling sweep: the whole epoch loop (enumerate, negotiate, splice)
     at increasing pool sizes; every fingerprint must match -j1. *)
  let results = ref [] in
  Format.fprintf fmt "%4s %10s %15s  %s@." "j" "wall (s)" "negotiations/s"
    "fingerprint";
  List.iter
    (fun j ->
      let r, t =
        if j = 1 then time (fun () -> M.run config g)
        else
          Pan_runner.Pool.with_pool ~domains:j (fun pool ->
              time (fun () -> M.run ~pool config g))
      in
      let rate = float_of_int r.M.negotiations /. t in
      results := (j, r, t, rate) :: !results;
      Format.fprintf fmt "%4d %10.3f %15.0f  %s@." j t rate r.M.fingerprint)
    [ 1; 2; 4 ];
  let results = List.rev !results in
  let _, r1, t1, rate1 = List.hd results in
  let jobs_equal =
    List.for_all
      (fun (_, r, _, _) -> String.equal r.M.fingerprint r1.M.fingerprint)
      results
  in
  if not jobs_equal then ok := false;
  (* Double run at -j1: the transcript is a pure function of the seed. *)
  let r1', _ = time (fun () -> M.run config g) in
  let rerun_equal = String.equal r1.M.fingerprint r1'.M.fingerprint in
  if not rerun_equal then ok := false;
  (* Delta oracle: each epoch's incrementally-spliced core must equal a
     from-scratch freeze of the equivalently-mutated graph. *)
  let oracle = M.run ~oracle:true config g in
  let oracle_ok = oracle.M.oracle_ok = Some true in
  if not oracle_ok then ok := false;
  List.iter
    (fun (e : M.epoch_report) ->
      Format.fprintf fmt
        "epoch %d: %d candidates, %d viable, %d signed, %d invalidated@."
        e.M.epoch e.M.candidates e.M.viable e.M.signed e.M.invalidated)
    r1.M.reports;
  Format.fprintf fmt
    "agreements: %d, welfare %.3f; -j equal %b, rerun equal %b, oracle %b@."
    (List.length r1.M.agreements)
    r1.M.welfare jobs_equal rerun_equal oracle_ok;
  let _, r4, _, rate4 =
    List.find (fun (j, _, _, _) -> j = 4) results
  in
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"market" ~wall_s:t1 ~throughput:rate1
       ~speedup:(rate4 /. rate1) ~fingerprint:r1.M.fingerprint ~jobs:4
       ~meta:
         ([
            ("epochs", string_of_int epochs);
            ("pairs", string_of_int r1.M.pairs);
            ("negotiations", string_of_int r1.M.negotiations);
            ("agreements", string_of_int (List.length r1.M.agreements));
            ("welfare", Printf.sprintf "%.3f" r1.M.welfare);
            ("fingerprint_j1", r1.M.fingerprint);
            ("fingerprint_j4", r4.M.fingerprint);
            ("oracle", string_of_bool oracle_ok);
          ]
         @ List.map
             (fun (e : M.epoch_report) ->
               ( Printf.sprintf "epoch%d_candidates" e.M.epoch,
                 string_of_int e.M.candidates ))
             r1.M.reports)
       ());
  !ok

(* ------------------------------------------------------------------ *)
(* Part 14: mechanism comparison (Bosco vs Nash-Peering, Both mode)    *)

let run_market_mech scale =
  let module M = Pan_market.Market in
  section
    "Mechanism comparison: Bosco vs Nash-Peering on shared candidate streams";
  let n_transit, n_stub, epochs, max_candidates, w = market_params scale in
  let params = { Gen.default_params with Gen.n_transit; Gen.n_stub } in
  let g = Gen.graph (Gen.generate ~params ~seed:42 ()) in
  Format.fprintf fmt "topology: %a@." Graph.pp_stats g;
  let config = { M.default with M.epochs; w; max_candidates; chunk = 8 } in
  let ok = ref true in
  (* Both mode negotiates the full candidate stream and scores the
     Nash-Peering arm counterfactually on the same outcomes, so the
     comparison rides the epoch loop at the Bosco arm's cost; the
     fingerprint covers the comparison records too and must match -j1 at
     every pool size. *)
  let results = ref [] in
  Format.fprintf fmt "%4s %10s %15s  %s@." "j" "wall (s)" "negotiations/s"
    "fingerprint";
  List.iter
    (fun j ->
      let r, t =
        if j = 1 then time (fun () -> M.run ~mechanism:M.Both config g)
        else
          Pan_runner.Pool.with_pool ~domains:j (fun pool ->
              time (fun () -> M.run ~pool ~mechanism:M.Both config g))
      in
      let rate = float_of_int r.M.negotiations /. t in
      results := (j, r, t, rate) :: !results;
      Format.fprintf fmt "%4d %10.3f %15.0f  %s@." j t rate r.M.fingerprint)
    [ 1; 2; 4 ];
  let results = List.rev !results in
  let _, r1, t1, rate1 = List.hd results in
  let jobs_equal =
    List.for_all
      (fun (_, r, _, _) -> String.equal r.M.fingerprint r1.M.fingerprint)
      results
  in
  if not jobs_equal then ok := false;
  let r1', _ = time (fun () -> M.run ~mechanism:M.Both config g) in
  let rerun_equal = String.equal r1.M.fingerprint r1'.M.fingerprint in
  if not rerun_equal then ok := false;
  (* Re-freeze oracle, as in part 13: the Both-mode splice chain (the
     Bosco arm's signings) must equal a from-scratch freeze per epoch. *)
  let oracle = M.run ~oracle:true ~mechanism:M.Both config g in
  let oracle_ok = oracle.M.oracle_ok = Some true in
  if not oracle_ok then ok := false;
  let mech_meta = ref [] in
  List.iter
    (fun (e : M.epoch_report) ->
      match e.M.mech with
      | None -> ok := false
      | Some c ->
          Format.fprintf fmt
            "epoch %d: bosco %d signed welfare %.3f pod %.3f | nash-peering \
             %d/%d qualified %d signed welfare %.3f pod %.3f@."
            e.M.epoch c.M.bosco_signed c.M.bosco_welfare c.M.bosco_pod
            c.M.cmp_qualified e.M.candidates c.M.nash_signed c.M.nash_welfare
            c.M.nash_pod;
          let p = Printf.sprintf "epoch%d_" e.M.epoch in
          mech_meta :=
            !mech_meta
            @ [
                (p ^ "qualified", string_of_int c.M.cmp_qualified);
                (p ^ "bosco_signed", string_of_int c.M.bosco_signed);
                (p ^ "bosco_welfare", Printf.sprintf "%.3f" c.M.bosco_welfare);
                (p ^ "bosco_pod", Printf.sprintf "%.3f" c.M.bosco_pod);
                (p ^ "nash_signed", string_of_int c.M.nash_signed);
                (p ^ "nash_welfare", Printf.sprintf "%.3f" c.M.nash_welfare);
                (p ^ "nash_pod", Printf.sprintf "%.3f" c.M.nash_pod);
              ])
    r1.M.reports;
  Format.fprintf fmt
    "agreements: %d, welfare %.3f; -j equal %b, rerun equal %b, oracle %b@."
    (List.length r1.M.agreements)
    r1.M.welfare jobs_equal rerun_equal oracle_ok;
  let _, r4, _, rate4 = List.find (fun (j, _, _, _) -> j = 4) results in
  emit_snapshot
    (Pan_obs.Bench_snap.make ~part:"market_mech" ~wall_s:t1 ~throughput:rate1
       ~speedup:(rate4 /. rate1) ~fingerprint:r1.M.fingerprint ~jobs:4
       ~meta:
         ([
            ("mechanism", "both");
            ("epochs", string_of_int epochs);
            ("pairs", string_of_int r1.M.pairs);
            ("negotiations", string_of_int r1.M.negotiations);
            ("agreements", string_of_int (List.length r1.M.agreements));
            ("welfare", Printf.sprintf "%.3f" r1.M.welfare);
            ("fingerprint_j1", r1.M.fingerprint);
            ("fingerprint_j4", r4.M.fingerprint);
            ("oracle", string_of_bool oracle_ok);
          ]
         @ !mech_meta)
       ());
  !ok

let full_run () =
  reproduce_gadgets ();
  reproduce_methods ();
  reproduce_fig2 ();
  reproduce_fig34 ();
  reproduce_fig5 ();
  reproduce_fig6 ();
  reproduce_resilience ();
  reproduce_chained ();
  reproduce_adoption ();
  reproduce_te ();
  reproduce_fragility ();
  ablation_choice_sets ();
  ablation_dynamics_start ();
  ablation_asymmetric_distributions ();
  ablation_topology_density ();
  runner_scaling ();
  run_compact_core `Smoke;
  ignore (run_bosco `Smoke : bool);
  ignore (run_econ ~scenarios:24 () : bool);
  ignore (run_topo_snapshot `Smoke : bool);
  ignore (run_supervised () : bool);
  ignore (run_serve `Smoke : bool);
  ignore (run_intent `Smoke : bool);
  ignore (run_market `Smoke : bool);
  ignore (run_market_mech `Smoke : bool);
  run_benchmarks ();
  run_runner_pair ();
  obs_profile ()

let () =
  (match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "all" -> full_run ()
  | "topo" -> run_compact_core `Smoke
  | "topo-full" -> run_compact_core `Full
  | "topo-snapshot" -> if not (run_topo_snapshot `Full) then exit 1
  | "topo-snapshot-smoke" -> if not (run_topo_snapshot `Smoke) then exit 1
  | "bosco" -> if not (run_bosco `Full) then exit 1
  | "bosco-smoke" -> if not (run_bosco_snapshot ()) then exit 1
  | "econ" -> if not (run_econ ~scenarios:60 ()) then exit 1
  | "econ-smoke" -> if not (run_econ ~scenarios:24 ()) then exit 1
  | "faults" -> if not (run_supervised ()) then exit 1
  | "serve" -> if not (run_serve `Full) then exit 1
  | "serve-smoke" -> if not (run_serve `Smoke) then exit 1
  | "intent" -> if not (run_intent `Full) then exit 1
  | "intent-smoke" -> if not (run_intent `Smoke) then exit 1
  | "market" -> if not (run_market `Full) then exit 1
  | "market-smoke" -> if not (run_market `Smoke) then exit 1
  | "market-mech" -> if not (run_market_mech `Full) then exit 1
  | "market-mech-smoke" -> if not (run_market_mech `Smoke) then exit 1
  | "validate-bench" ->
      validate_bench
        (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)))
  | other ->
      Format.eprintf
        "usage: %s \
         [topo|topo-full|topo-snapshot|topo-snapshot-smoke|bosco|bosco-smoke|\
         econ|econ-smoke|faults|serve|serve-smoke|intent|intent-smoke|\
         market|market-smoke|market-mech|market-mech-smoke|\
         validate-bench FILE...]  \
         (unknown part %S)@."
        Sys.argv.(0) other;
      exit 2);
  Format.fprintf fmt "@.bench: done@."
