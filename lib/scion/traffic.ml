open Pan_topology

type t = {
  graph : Graph.t;
  loads : (Asn.t * Asn.t, float ref) Hashtbl.t;
}

let create graph = { graph; loads = Hashtbl.create 4096 }

let key x y = if Asn.compare x y <= 0 then (x, y) else (y, x)

let rec links = function
  | a :: (b :: _ as rest) -> (a, b) :: links rest
  | _ -> []

let add_path t path volume =
  if volume < 0.0 then invalid_arg "Traffic.add_path: negative volume";
  match path with
  | [] | [ _ ] -> invalid_arg "Traffic.add_path: path too short"
  | _ ->
      List.iter
        (fun (a, b) ->
          if not (Graph.connected t.graph a b) then
            invalid_arg "Traffic.add_path: hop is not a link";
          let k = key a b in
          match Hashtbl.find_opt t.loads k with
          | Some r -> r := !r +. volume
          | None -> Hashtbl.replace t.loads k (ref volume))
        (links path)

let link_load t x y =
  if not (Graph.connected t.graph x y) then
    invalid_arg "Traffic.link_load: not a link";
  match Hashtbl.find_opt t.loads (key x y) with
  | Some r -> !r
  | None -> 0.0

let utilization t bw x y = link_load t x y /. Bandwidth.link_capacity bw x y

let all_links g =
  Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g []
  @ Graph.fold_provider_customer_links
      (fun ~provider ~customer acc -> (provider, customer) :: acc)
      g []

let stats t bw ~loaded_only =
  let values =
    if loaded_only then
      Hashtbl.fold
        (fun (x, y) r acc ->
          if !r > 0.0 then (!r /. Bandwidth.link_capacity bw x y) :: acc
          else acc)
        t.loads []
    else List.map (fun (x, y) -> utilization t bw x y) (all_links t.graph)
  in
  match values with
  | [] -> invalid_arg "Traffic.stats: no links to aggregate"
  | _ ->
      let arr = Array.of_list values in
      ( Pan_numerics.Stats.mean arr,
        Pan_numerics.Stats.percentile arr 95.0,
        snd (Pan_numerics.Stats.min_max arr) )

let overloaded t bw ~threshold =
  Hashtbl.fold
    (fun (x, y) r acc ->
      if !r /. Bandwidth.link_capacity bw x y > threshold then acc + 1
      else acc)
    t.loads 0

let reset t = Hashtbl.reset t.loads

type policy = Single_path | Split of int | Congestion_aware of int

let bottleneck_after t bw path volume =
  List.fold_left
    (fun worst (a, b) ->
      let cap = Bandwidth.link_capacity bw a b in
      Float.max worst ((link_load t a b +. volume) /. cap))
    0.0 (links path)

let place t bw policy candidates volume =
  if volume < 0.0 then invalid_arg "Traffic.place: negative volume";
  match candidates with
  | [] -> ()
  | first :: _ -> (
      match policy with
      | Single_path -> add_path t first volume
      | Split k ->
          if k < 1 then invalid_arg "Traffic.place: k < 1";
          let chosen = List.filteri (fun i _ -> i < k) candidates in
          let share = volume /. float_of_int (List.length chosen) in
          List.iter (fun p -> add_path t p share) chosen
      | Congestion_aware k ->
          if k < 1 then invalid_arg "Traffic.place: k < 1";
          let chosen = List.filteri (fun i _ -> i < k) candidates in
          let best =
            List.fold_left
              (fun best p ->
                let cost = bottleneck_after t bw p volume in
                match best with
                | Some (_, c) when c <= cost -> best
                | _ -> Some (p, cost))
              None chosen
          in
          match best with
          | Some (p, _) -> add_path t p volume
          | None -> ())
