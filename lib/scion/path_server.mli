(** Path lookup service.

    Indexes the segments registered by a beaconing run so that end-hosts
    (and the {!Combinator}) can retrieve the up-, core- and down-segments
    needed to build end-to-end paths, mirroring SCION's path servers. *)

open Pan_topology

type t

val build : Authz.t -> Beacon.t -> t

val up_segments : t -> Asn.t -> Segment.t list
(** Authorized segments from the AS up to a core AS (reversals of its
    registered down-segments). *)

val down_segments : t -> Asn.t -> Segment.t list
val core_segments : t -> src:Asn.t -> dst:Asn.t -> Segment.t list

val core_ases : t -> Asn.t list
val authz : t -> Authz.t
