(** Data-plane forwarding along header-embedded paths.

    A packet carries its full authorized path; each on-path AS verifies its
    own hop authenticator and hands the packet to the next AS on the path.
    No forwarding table, no shared view, no convergence: this is the
    mechanism that makes the Gao–Rexford conditions unnecessary for
    stability in a PAN (§II). *)

open Pan_topology

type packet = { segment : Segment.t; payload : string }

type drop_reason =
  | Bad_mac of Asn.t  (** hop authenticator failed verification at this AS *)
  | Link_down of Asn.t * Asn.t
      (** the embedded path uses a link absent from the graph *)

type delivery = { trace : Asn.t list; payload : string }

val send : Authz.t -> packet -> (delivery, drop_reason) result
(** Forward hop by hop.  On success the trace equals the embedded path —
    in particular it is loop-free, whatever the inter-AS agreements, since
    every AS simply follows the header. *)

val send_path :
  Authz.t -> Asn.t list -> payload:string -> (delivery, string) result
(** Convenience: construct the segment (asking each AS for authorization)
    and forward. The error string reports either the refused hop or the
    drop reason. *)

val pp_drop_reason : Format.formatter -> drop_reason -> unit
