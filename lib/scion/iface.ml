open Pan_topology

type t = {
  forward : (Asn.t * Asn.t, int) Hashtbl.t;
  reverse : (Asn.t * int, Asn.t) Hashtbl.t;
  counts : (Asn.t, int) Hashtbl.t;
}

let build g =
  let forward = Hashtbl.create 4096 in
  let reverse = Hashtbl.create 4096 in
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun x ->
      let neighbors = Asn.Set.elements (Graph.neighbors g x) in
      List.iteri
        (fun i n ->
          Hashtbl.replace forward (x, n) (i + 1);
          Hashtbl.replace reverse (x, i + 1) n)
        neighbors;
      Hashtbl.replace counts x (List.length neighbors))
    (Graph.ases g);
  { forward; reverse; counts }

let id t asn neighbor = Hashtbl.find t.forward (asn, neighbor)

let neighbor t asn iface = Hashtbl.find_opt t.reverse (asn, iface)

let count t asn =
  match Hashtbl.find_opt t.counts asn with Some c -> c | None -> 0

let hops_with_interfaces t path =
  let rec go prev = function
    | [] -> []
    | [ last ] -> [ (last, Option.map (id t last) prev, None) ]
    | x :: (next :: _ as rest) ->
        (x, Option.map (id t x) prev, Some (id t x next)) :: go (Some x) rest
  in
  go None path
