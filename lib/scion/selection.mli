(** Application-aware end-host path selection.

    The paper's opening argument (§I, and again in the conclusion): once
    multiple paths are available simultaneously, end-hosts choose per
    application — "low latency for voice-over-IP calls and high bandwidth
    for file transfers".  This module scores AS-level paths with a latency
    proxy (geodistance plus a per-hop processing penalty) and a bandwidth
    proxy (degree-gravity bottleneck capacity) and picks the best
    authorized path per application class.

    Since the intent-engine refactor this module is a thin compiler onto
    [Pan_intent]: each application class maps to a fixed composite
    metric ({!intent_of_application}), and scoring/ranking delegate to
    [Pan_intent.Metric] with arithmetic that reproduces the historical
    proxies bit-for-bit (the facade-equivalence qcheck suite pins
    this). *)

open Pan_topology

type application =
  | Voip  (** minimize the latency proxy *)
  | File_transfer  (** maximize bottleneck bandwidth *)
  | Web  (** balanced: normalized latency and bandwidth mixed 50/50 *)

type context = { geo : Geo.t; bandwidth : Bandwidth.t }

val intent_of_application : ?k:int -> application -> Pan_intent.Intent.t
(** The intent an application class compiles to: [Voip] minimizes
    [latency], [File_transfer] minimizes [bandwidth] (negated
    capacity), [Web] minimizes [nlatency+nbandwidth].  [k] is the
    candidate budget (default 1). *)

val latency_proxy : context -> Asn.t list -> float
(** Sum of great-circle link distances through the interconnection points,
    in km, plus 100 km of equivalent distance per AS hop (processing /
    intra-AS detour penalty).  @raise Invalid_argument on paths shorter
    than 2 ASes. *)

val bandwidth_proxy : context -> Asn.t list -> float
(** Bottleneck capacity of the path under the degree-gravity model. *)

val score : context -> application -> Asn.t list -> float
(** Lower is better, for every application class. *)

val select :
  context -> application -> Segment.t list -> Segment.t option
(** The best path among the candidates ([None] on an empty list); ties are
    broken by shorter AS-level length, then lexicographically. *)

val rank : context -> application -> Segment.t list -> Segment.t list
(** All candidates, best first, same tie-breaking. *)

val pp_application : Format.formatter -> application -> unit
