open Pan_topology

let header_size = 4
let hop_size = 16

let encoded_size seg = header_size + (hop_size * Segment.length seg)

let set_u16 b off v =
  Bytes.set_uint8 b off ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 1) (v land 0xff)

let get_u16 s off =
  (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let set_u32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* MACs are OCaml ints (Hashtbl.hash output, < 2^30): 8 bytes is ample. *)
let set_u64 b off v =
  set_u32 b off ((v lsr 32) land 0xffffffff);
  set_u32 b (off + 4) (v land 0xffffffff)

let get_u64 s off = (get_u32 s off lsl 32) lor get_u32 s (off + 4)

let encode ifaces seg =
  let hops = Segment.hops seg in
  let annotated = Iface.hops_with_interfaces ifaces (Segment.ases seg) in
  let b = Bytes.create (encoded_size seg) in
  Bytes.set_uint8 b 0 1;
  Bytes.set_uint8 b 1 (List.length hops);
  set_u16 b 2 0;
  List.iteri
    (fun i ((hop : Segment.hop), (_, ingress, egress)) ->
      let off = header_size + (i * hop_size) in
      set_u32 b off (Asn.to_int hop.Segment.asn);
      set_u16 b (off + 4) (Option.value ~default:0 ingress);
      set_u16 b (off + 6) (Option.value ~default:0 egress);
      set_u64 b (off + 8) hop.Segment.mac)
    (List.combine hops annotated);
  Bytes.to_string b

type error =
  | Truncated
  | Bad_version of int
  | Bad_interface of { asn : Asn.t; ingress : int; egress : int }

let decode ifaces s =
  if String.length s < header_size then Error Truncated
  else
    let version = Char.code s.[0] in
    if version <> 1 then Error (Bad_version version)
    else
      let n = Char.code s.[1] in
      if String.length s < header_size + (n * hop_size) then Error Truncated
      else begin
        let hops = ref [] in
        let bad = ref None in
        let prev = ref None in
        for i = 0 to n - 1 do
          let off = header_size + (i * hop_size) in
          let asn = Asn.of_int (get_u32 s off) in
          let ingress = get_u16 s (off + 4) in
          let egress = get_u16 s (off + 6) in
          let mac = get_u64 s (off + 8) in
          (* interface consistency: ingress must point back to the
             previous AS; the first hop has none *)
          let ingress_ok =
            match (!prev, ingress) with
            | None, 0 -> true
            | Some p, i when i > 0 -> Iface.neighbor ifaces asn i = Some p
            | _ -> false
          in
          (* egress must exist except on the last hop *)
          let egress_ok =
            if i = n - 1 then egress = 0
            else egress > 0 && Iface.neighbor ifaces asn egress <> None
          in
          if not (ingress_ok && egress_ok) && !bad = None then
            bad := Some (Bad_interface { asn; ingress; egress });
          (* follow the egress pointer for the next hop's check *)
          prev := Some asn;
          hops := { Segment.asn; mac } :: !hops
        done;
        match !bad with
        | Some e -> Error e
        | None -> Ok (Segment.unsafe_of_hops (List.rev !hops))
      end

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated header"
  | Bad_version v -> Format.fprintf fmt "unsupported version %d" v
  | Bad_interface { asn; ingress; egress } ->
      Format.fprintf fmt
        "inconsistent interfaces at %a (ingress %d, egress %d)" Asn.pp asn
        ingress egress
