open Pan_topology

type t = {
  core : Asn.t list;
  down : Segment.t list Asn.Map.t;
  core_segs : Segment.t list;
}

let register key seg map =
  Asn.Map.update key
    (function None -> Some [ seg ] | Some l -> Some (seg :: l))
    map

let run ?(max_depth = 6) ?(max_core_len = 4) ?(max_segments_per_as = 8) authz
    =
  if max_depth < 2 then invalid_arg "Beacon.run: max_depth < 2";
  if max_core_len < 2 then invalid_arg "Beacon.run: max_core_len < 2";
  if max_segments_per_as < 1 then
    invalid_arg "Beacon.run: max_segments_per_as < 1";
  let g = Authz.graph authz in
  let core =
    List.filter (fun x -> Asn.Set.is_empty (Graph.providers g x)) (Graph.ases g)
  in
  (* Propagate PCBs down customer links.  [trail] is the reversed AS
     sequence from the originating core AS to the current AS. *)
  let down = ref Asn.Map.empty in
  let rec propagate trail current depth =
    let seg_ases = List.rev (current :: trail) in
    (match Segment.make authz seg_ases with
    | Ok seg -> down := register current seg !down
    | Error _ -> ());
    if depth < max_depth then
      Asn.Set.iter
        (fun customer ->
          if not (List.exists (Asn.equal customer) (current :: trail)) then
            propagate (current :: trail) customer (depth + 1))
        (Graph.customers g current)
  in
  List.iter
    (fun c ->
      Asn.Set.iter (fun customer -> propagate [ c ] customer 2)
        (Graph.customers g c))
    core;
  (* Core beaconing: simple paths across the core peering mesh. *)
  let core_set = Asn.set_of_list core in
  let core_segs = ref [] in
  let rec explore trail current len =
    let seg_ases = List.rev (current :: trail) in
    (match Segment.make authz seg_ases with
    | Ok seg -> core_segs := seg :: !core_segs
    | Error _ -> ());
    if len < max_core_len then
      Asn.Set.iter
        (fun peer ->
          if
            Asn.Set.mem peer core_set
            && not (List.exists (Asn.equal peer) (current :: trail))
          then explore (current :: trail) peer (len + 1))
        (Graph.peers g current)
  in
  List.iter
    (fun c ->
      Asn.Set.iter
        (fun peer ->
          if Asn.Set.mem peer core_set then explore [ c ] peer 2)
        (Graph.peers g c))
    core;
  (* keep the shortest segments per AS, with a deterministic tiebreak *)
  let down =
    Asn.Map.map
      (fun segs ->
        let sorted =
          List.stable_sort
            (fun s1 s2 ->
              match compare (Segment.length s1) (Segment.length s2) with
              | 0 -> compare (Segment.ases s1) (Segment.ases s2)
              | c -> c)
            segs
        in
        List.filteri (fun i _ -> i < max_segments_per_as) sorted)
      !down
  in
  { core; down; core_segs = !core_segs }

let core_ases t = t.core

let down_segments t x =
  match Asn.Map.find_opt x t.down with Some l -> l | None -> []

let core_segments t ~src ~dst =
  List.filter
    (fun seg ->
      Asn.equal (Segment.source seg) src && Asn.equal (Segment.destination seg) dst)
    t.core_segs

let segment_count t =
  Asn.Map.fold (fun _ l acc -> acc + List.length l) t.down 0
  + List.length t.core_segs
