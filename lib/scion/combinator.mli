(** Combination of registered segments into end-to-end paths.

    Mirrors SCION path combination: an end-to-end path is an up-segment of
    the source, optionally a core-segment, and a down-segment of the
    destination.  Two kinds of shortcut splices are supported:

    - {e peering shortcuts}: cross from an AS on the up-segment to a peer
      on the down-segment (GRC-conforming, as both sides see customer
      traffic);
    - {e MA shortcuts}: where a mutuality-based agreement between peers
      X and Y has been concluded, cross from X to Y and continue to one of
      Y's providers or peers — the GRC-violating paths the paper's
      agreements enable (§III-B3).

    Every returned path is validated and stamped hop-by-hop via
    {!Segment.make}, so only paths authorized by all on-path ASes are
    produced. *)

open Pan_topology

val end_to_end :
  ?max_paths:int ->
  ?candidate_budget:int ->
  Path_server.t ->
  src:Asn.t ->
  dst:Asn.t ->
  Segment.t list
(** Distinct authorized end-to-end paths found by combination, sorted by
    increasing AS-level length then lexicographically, truncated to
    [max_paths] (default 1000).  Candidate generation is bounded per
    stage: each of the three stages (core combinations, peering
    shortcuts, MA splices) stops after contributing [2 × max_paths] valid
    paths or scanning [candidate_budget] candidates (default 50,000), so
    on densely peered graphs the result is a deterministic,
    shortest-biased, stage-diverse subset rather than the full
    (potentially huge) path set. *)

val best_path :
  ?metric:(Asn.t list -> float) ->
  Path_server.t ->
  src:Asn.t ->
  dst:Asn.t ->
  Segment.t option
(** The minimum-[metric] path among {!end_to_end} results (default metric:
    AS-level length) — the "path selection by the packet source". *)
