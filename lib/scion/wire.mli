(** Binary wire format for forwarding headers.

    A compact serialization of an authorized path — what would actually
    travel in a PAN packet header.  The layout (big-endian) is:

    {v
    0       1       2       3
    +-------+-------+-------+-------+
    | ver=1 | hops  |   reserved    |
    +-------+-------+-------+-------+      per hop (16 bytes):
    |          hop 0 ...            |      0..3   AS number
    +--             --+             |      4..5   ingress interface (0 = none)
    |     hop 1 ...                 |      6..7   egress interface  (0 = none)
    +--       ...                 --+      8..15  hop authenticator (MAC)
    v}

    Encoding requires an {!Iface} numbering so hop fields carry interface
    identifiers as in SCION; decoding restores the {!Segment.t} (and
    checks interface consistency against the numbering), after which
    {!Segment.verify} re-checks the MAC chain. *)

open Pan_topology

val header_size : int
(** Fixed prefix size in bytes (4). *)

val hop_size : int
(** Per-hop size in bytes (16). *)

val encoded_size : Segment.t -> int

val encode : Iface.t -> Segment.t -> string
(** @raise Not_found if consecutive ASes of the segment are not adjacent
    under the interface numbering's graph. *)

type error =
  | Truncated
  | Bad_version of int
  | Bad_interface of { asn : Asn.t; ingress : int; egress : int }
      (** an interface id does not match the numbering, or dangling
          interfaces at the endpoints *)

val decode : Iface.t -> string -> (Segment.t, error) result
(** Parse and validate a header. The returned segment still needs
    {!Segment.verify} (MAC chain) before being trusted. *)

val pp_error : Format.formatter -> error -> unit
