open Pan_topology

type t = {
  authz : Authz.t;
  beacon : Beacon.t;
  up_cache : (Asn.t, Segment.t list) Hashtbl.t;
}

let build authz beacon = { authz; beacon; up_cache = Hashtbl.create 256 }

let down_segments t x = Beacon.down_segments t.beacon x

let up_segments t x =
  match Hashtbl.find_opt t.up_cache x with
  | Some segs -> segs
  | None ->
      let segs =
        List.filter_map
          (fun seg ->
            match Segment.reverse t.authz seg with
            | Ok up -> Some up
            | Error _ -> None)
          (down_segments t x)
      in
      Hashtbl.replace t.up_cache x segs;
      segs

let core_segments t ~src ~dst = Beacon.core_segments t.beacon ~src ~dst
let core_ases t = Beacon.core_ases t.beacon
let authz t = t.authz
