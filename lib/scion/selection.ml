open Pan_topology

type application = Voip | File_transfer | Web

type context = { geo : Geo.t; bandwidth : Bandwidth.t }

let per_hop_penalty_km = 100.0

let latency_proxy ctx ases =
  match ases with
  | [] | [ _ ] -> invalid_arg "Selection.latency_proxy: path too short"
  | first :: _ ->
      (* distance source -> first link -> ... -> last link -> destination,
         as in the paper's geodistance decomposition, generalized to any
         length *)
      let rec link_points = function
        | a :: (b :: _ as rest) ->
            Geo.link_location ctx.geo a b :: link_points rest
        | _ -> []
      in
      let links = link_points ases in
      let src_loc = Geo.as_location ctx.geo first in
      let rec last = function
        | [ x ] -> x
        | _ :: rest -> last rest
        | [] -> assert false
      in
      let dst_loc = Geo.as_location ctx.geo (last ases) in
      let rec chain acc prev = function
        | [] -> acc +. Geo.distance_km prev dst_loc
        | p :: rest -> chain (acc +. Geo.distance_km prev p) p rest
      in
      let geodist =
        match links with
        | [] -> Geo.distance_km src_loc dst_loc
        | p :: rest -> chain (Geo.distance_km src_loc p) p rest
      in
      geodist +. (per_hop_penalty_km *. float_of_int (List.length ases))

let bandwidth_proxy ctx ases = Bandwidth.path_bandwidth ctx.bandwidth ases

let score ctx app ases =
  match app with
  | Voip -> latency_proxy ctx ases
  | File_transfer -> -.bandwidth_proxy ctx ases
  | Web ->
      (* normalize both proxies to comparable magnitudes: latency in
         thousands of km, bandwidth as its reciprocal *)
      (latency_proxy ctx ases /. 1000.0)
      +. (1000.0 /. Float.max 1.0 (bandwidth_proxy ctx ases))

let compare_candidates ctx app s1 s2 =
  let a1 = Segment.ases s1 and a2 = Segment.ases s2 in
  match compare (score ctx app a1) (score ctx app a2) with
  | 0 -> (
      match compare (List.length a1) (List.length a2) with
      | 0 -> compare a1 a2
      | c -> c)
  | c -> c

let rank ctx app candidates =
  List.stable_sort (compare_candidates ctx app) candidates

let select ctx app candidates =
  match rank ctx app candidates with [] -> None | best :: _ -> Some best

let pp_application fmt = function
  | Voip -> Format.pp_print_string fmt "voip"
  | File_transfer -> Format.pp_print_string fmt "file-transfer"
  | Web -> Format.pp_print_string fmt "web"
