open Pan_topology
module Intent = Pan_intent.Intent
module Metric = Pan_intent.Metric

type application = Voip | File_transfer | Web

type context = { geo : Geo.t; bandwidth : Bandwidth.t }

(* Each application class is one fixed composite metric; everything
   below delegates to the intent engine.  The compiled terms reproduce
   the historical proxies bit-for-bit: Voip is the bare latency proxy,
   File_transfer the negated bottleneck bandwidth, Web the
   1000-normalized latency plus reciprocal bandwidth, summed in that
   order (see [Pan_intent.Metric]). *)
let terms_of_application = function
  | Voip -> [ { Intent.weight = 1.0; component = Intent.Latency } ]
  | File_transfer -> [ { Intent.weight = 1.0; component = Intent.Bandwidth } ]
  | Web ->
      [
        { Intent.weight = 1.0; component = Intent.Nlatency };
        { Intent.weight = 1.0; component = Intent.Nbandwidth };
      ]

let intent_of_application ?k app =
  Intent.make ~metric:(terms_of_application app) ?k ()

let metric_ctx ctx = Metric.of_models ~geo:ctx.geo ~bandwidth:ctx.bandwidth

let latency_proxy ctx ases = Metric.latency_km (metric_ctx ctx) ases
let bandwidth_proxy ctx ases = Metric.bandwidth (metric_ctx ctx) ases

let score ctx app ases =
  Metric.score (metric_ctx ctx) (terms_of_application app) ases

let rank ctx app candidates =
  let mctx = metric_ctx ctx in
  let terms = terms_of_application app in
  List.stable_sort
    (fun s1 s2 ->
      Metric.compare_paths mctx terms (Segment.ases s1) (Segment.ases s2))
    candidates

let select ctx app candidates =
  match rank ctx app candidates with [] -> None | best :: _ -> Some best

let pp_application fmt = function
  | Voip -> Format.pp_print_string fmt "voip"
  | File_transfer -> Format.pp_print_string fmt "file-transfer"
  | Web -> Format.pp_print_string fmt "web"
