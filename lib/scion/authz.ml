open Pan_topology

type t = {
  graph : Graph.t;
  mas : (Asn.t * Asn.t) list;
  core_transit : bool;
}

let normalize (x, y) = if Asn.compare x y <= 0 then (x, y) else (y, x)

let create ?(core_transit = true) ?(mas = []) graph =
  List.iter
    (fun (x, y) ->
      match Graph.relationship graph x y with
      | Some Graph.Peer -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Authz.create: MA between AS%d and AS%d without peering link"
               (Asn.to_int x) (Asn.to_int y)))
    mas;
  { graph; mas = List.map normalize mas; core_transit }

let graph t = t.graph

let has_ma t x y = List.mem (normalize (x, y)) t.mas

let allows t ~at ~prev ~next =
  let adjacent = function
    | None -> true
    | Some n -> Graph.connected t.graph at n
  in
  if not (adjacent prev && adjacent next) then false
  else
    match (prev, next) with
    | None, _ | _, None -> true
    | Some p, Some n ->
        let customers = Graph.customers t.graph at in
        let grc_ok = Asn.Set.mem p customers || Asn.Set.mem n customers in
        let ma_ok =
          has_ma t at p
          && (Asn.Set.mem n (Graph.providers t.graph at)
             || Asn.Set.mem n (Graph.peers t.graph at))
        in
        let is_core x = Asn.Set.is_empty (Graph.providers t.graph x) in
        let core_ok = t.core_transit && is_core at && is_core p && is_core n in
        grc_ok || ma_ok || core_ok

let mas t = t.mas
