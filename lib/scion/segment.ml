open Pan_topology

type hop = { asn : Asn.t; mac : int }

type t = { hops : hop list }

type error =
  | Too_short
  | Loop of Asn.t
  | Not_adjacent of Asn.t * Asn.t
  | Unauthorized of { at : Asn.t; prev : Asn.t option; next : Asn.t option }

(* A deterministic per-AS "secret". A real deployment derives hop
   authenticators from AS-local symmetric keys; any keyed hash with the
   same interface would do here. *)
let key asn = Hashtbl.hash (0x5ec2e7, Asn.to_int asn)

let hop_mac ~prev_mac asn ~prev ~next =
  let enc = function None -> -1 | Some a -> Asn.to_int a in
  Hashtbl.hash (key asn, Asn.to_int asn, enc prev, enc next, prev_mac)

let rec window prev = function
  | [] -> []
  | [ x ] -> [ (prev, x, None) ]
  | x :: (y :: _ as rest) -> (prev, x, Some y) :: window (Some x) rest

let make authz ases =
  match ases with
  | [] | [ _ ] -> Error Too_short
  | _ -> (
      let g = Authz.graph authz in
      let rec check_distinct = function
        | [] -> Ok ()
        | x :: rest ->
            if List.exists (Asn.equal x) rest then Error (Loop x)
            else check_distinct rest
      in
      let rec check_adjacent = function
        | a :: (b :: _ as rest) ->
            if Graph.connected g a b then check_adjacent rest
            else Error (Not_adjacent (a, b))
        | [ _ ] | [] -> Ok ()
      in
      match (check_distinct ases, check_adjacent ases) with
      | Error e, _ | _, Error e -> Error e
      | Ok (), Ok () ->
          let rec stamp prev_mac acc = function
            | [] -> Ok { hops = List.rev acc }
            | (prev, at, next) :: rest ->
                if not (Authz.allows authz ~at ~prev ~next) then
                  Error (Unauthorized { at; prev; next })
                else
                  let mac = hop_mac ~prev_mac at ~prev ~next in
                  stamp mac ({ asn = at; mac } :: acc) rest
          in
          stamp 0 [] (window None ases))

let make_exn authz ases =
  match make authz ases with
  | Ok t -> t
  | Error _ -> invalid_arg "Segment.make_exn: construction failed"

let ases t = List.map (fun h -> h.asn) t.hops
let hops t = t.hops
let source t = match t.hops with h :: _ -> h.asn | [] -> assert false

let rec last = function
  | [ h ] -> h
  | _ :: rest -> last rest
  | [] -> assert false

let destination t = (last t.hops).asn
let length t = List.length t.hops

let reverse authz t = make authz (List.rev (ases t))

let verify t =
  let rec go prev_mac = function
    | [] -> true
    | (prev, hop, next) :: rest ->
        let expected = hop_mac ~prev_mac hop.asn ~prev ~next in
        hop.mac = expected && go hop.mac rest
  in
  let triples =
    window None (ases t)
    |> List.map2 (fun hop (prev, _, next) -> (prev, hop, next)) t.hops
  in
  go 0 triples

let unsafe_of_hops hops = { hops }

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ">")
    Asn.pp fmt (ases t)

let pp_error fmt = function
  | Too_short -> Format.pp_print_string fmt "segment too short"
  | Loop a -> Format.fprintf fmt "loop at %a" Asn.pp a
  | Not_adjacent (a, b) ->
      Format.fprintf fmt "%a and %a are not adjacent" Asn.pp a Asn.pp b
  | Unauthorized { at; prev; next } ->
      let pp_opt fmt = function
        | None -> Format.pp_print_string fmt "(end)"
        | Some a -> Asn.pp fmt a
      in
      Format.fprintf fmt "%a refused hop %a -> %a -> %a" Asn.pp at pp_opt prev
        Asn.pp at pp_opt next

let equal t1 t2 = t1.hops = t2.hops
