open Pan_topology

type t = {
  authz : Authz.t;
  path_server : Path_server.t;
  mutable failed : (Asn.t * Asn.t) list;
}

let normalize (x, y) = if Asn.compare x y <= 0 then (x, y) else (y, x)

let create authz =
  let beacons = Beacon.run authz in
  { authz; path_server = Path_server.build authz beacons; failed = [] }

let authz t = t.authz
let path_server t = t.path_server

let fail_link t x y =
  let key = normalize (x, y) in
  if not (List.mem key t.failed) then t.failed <- key :: t.failed

let restore_link t x y =
  let key = normalize (x, y) in
  t.failed <- List.filter (fun k -> k <> key) t.failed

let restore_all t = t.failed <- []

let failed_links t = t.failed

let link_up t x y = not (List.mem (normalize (x, y)) t.failed)

(* Walk the embedded path hop by hop; a failed link drops the packet at
   the upstream AS, as a border router with a dead interface would. *)
let send_on_segment t segment ~payload =
  match
    Forwarding.send t.authz { Forwarding.segment; payload }
  with
  | Error reason ->
      Error (Format.asprintf "%a" Forwarding.pp_drop_reason reason)
  | Ok delivery ->
      let rec check = function
        | a :: (b :: _ as rest) ->
            if link_up t a b then check rest
            else
              Error
                (Format.asprintf "link %a-%a is down" Asn.pp a Asn.pp b)
        | _ -> Ok delivery
      in
      check delivery.Forwarding.trace

type outcome = {
  delivery : Forwarding.delivery;
  attempts : int;  (** paths tried, including the successful one *)
}

let send_with_failover ?(max_paths = 32) t ~src ~dst ~payload =
  let paths = Combinator.end_to_end ~max_paths t.path_server ~src ~dst in
  let rec try_paths attempts = function
    | [] ->
        Error
          (Printf.sprintf "no live path among %d candidates"
             (List.length paths))
    | seg :: rest -> (
        match send_on_segment t seg ~payload with
        | Ok delivery -> Ok { delivery; attempts = attempts + 1 }
        | Error _ -> try_paths (attempts + 1) rest)
  in
  try_paths 0 paths

let connectivity ?(max_paths = 32) t ~src ~dst =
  match send_with_failover ~max_paths t ~src ~dst ~payload:"" with
  | Ok _ -> true
  | Error _ -> false
