(** Interface numbering.

    SCION hop fields identify links by per-AS {e interface identifiers},
    not by neighbor AS numbers.  This module assigns each AS a dense,
    deterministic numbering of its links (sorted by neighbor AS number,
    starting at 1), providing the translation layer between the AS-level
    paths used throughout this library and the interface-level hop fields
    of the wire format ({!Wire}). *)

open Pan_topology

type t

val build : Graph.t -> t
(** Number every AS's interfaces. Deterministic for a given graph. *)

val id : t -> Asn.t -> Asn.t -> int
(** [id t asn neighbor] is the interface of [asn] facing [neighbor].
    @raise Not_found if they are not adjacent. *)

val neighbor : t -> Asn.t -> int -> Asn.t option
(** Reverse lookup: which neighbor is behind this interface id? *)

val count : t -> Asn.t -> int
(** Number of interfaces of an AS (= its degree). *)

val hops_with_interfaces :
  t -> Asn.t list -> (Asn.t * int option * int option) list
(** Annotate an AS-level path with (ingress, egress) interface ids per
    AS; [None] at the endpoints.
    @raise Not_found if consecutive ASes are not adjacent. *)
