open Pan_topology

(* AS sequences of the source's up-paths (source first) and the
   destination's down-paths (core AS first).  A core AS contributes the
   trivial one-element sequence. *)
let up_sequences ps src =
  let segs = List.map Segment.ases (Path_server.up_segments ps src) in
  if List.exists (Asn.equal src) (Path_server.core_ases ps) then
    [ src ] :: segs
  else segs

let down_sequences ps dst =
  let segs = List.map Segment.ases (Path_server.down_segments ps dst) in
  if List.exists (Asn.equal dst) (Path_server.core_ases ps) then
    [ dst ] :: segs
  else segs

let rec last = function
  | [ x ] -> x
  | _ :: rest -> last rest
  | [] -> invalid_arg "Combinator.last"

(* src..c1 joined with c2..dst through the core. *)
let core_combinations ~emit ps ups downs =
  List.iter
    (fun up ->
      let c1 = last up in
      List.iter
        (fun down ->
          match down with
          | [] -> ()
          | c2 :: down_rest ->
              if Asn.equal c1 c2 then emit (up @ down_rest)
              else
                List.iter
                  (fun core_seg ->
                    match Segment.ases core_seg with
                    | _ :: core_rest -> emit (up @ core_rest @ down_rest)
                    | [] -> assert false)
                  (Path_server.core_segments ps ~src:c1 ~dst:c2))
        downs)
    ups

let prefixes seq =
  let rec go acc rev = function
    | [] -> List.rev acc
    | x :: rest ->
        let rev = x :: rev in
        go (List.rev rev :: acc) rev rest
  in
  go [] [] seq

let rec suffixes = function
  | [] -> []
  | _ :: rest as seq -> seq :: suffixes rest

(* Cross from the last AS of an up-prefix to an AS opening a down-suffix
   over a peering link (standard SCION shortcut). *)
let peering_combinations ~emit g ups downs =
  let down_suffixes = List.concat_map suffixes downs in
  List.iter
    (fun up ->
      List.iter
        (fun pre ->
          let x = last pre in
          let x_peers = Graph.peers g x in
          List.iter
            (fun suf ->
              match suf with
              | y :: _ when Asn.Set.mem y x_peers -> emit (pre @ suf)
              | _ -> ())
            down_suffixes)
        (prefixes up))
    ups

(* Cross from X to its MA partner Y, then onward to a provider or peer Z
   of Y opening a down-suffix: the GRC-violating splice the MA enables.
   Driven by the up-prefixes (not the global MA list) so dense topologies
   with thousands of concluded MAs stay tractable. *)
let ma_combinations ~emit g mas ups downs =
  let partners = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let add x y =
        let existing =
          match Hashtbl.find_opt partners x with Some l -> l | None -> []
        in
        Hashtbl.replace partners x (y :: existing)
      in
      add a b;
      add b a)
    mas;
  let continuation_cache = Hashtbl.create 16 in
  let continuations y =
    match Hashtbl.find_opt continuation_cache y with
    | Some s -> s
    | None ->
        let s = Asn.Set.union (Graph.providers g y) (Graph.peers g y) in
        Hashtbl.replace continuation_cache y s;
        s
  in
  let down_suffixes = List.concat_map suffixes downs in
  List.iter
    (fun up ->
      List.iter
        (fun pre ->
          let x = last pre in
          match Hashtbl.find_opt partners x with
          | None -> ()
          | Some ys ->
              List.iter
                (fun y ->
                  let conts = continuations y in
                  List.iter
                    (fun suf ->
                      match suf with
                      | z :: _ when Asn.Set.mem z conts ->
                          emit (pre @ (y :: suf))
                      | _ -> ())
                    down_suffixes)
                ys)
        (prefixes up))
    ups

exception Enough

let end_to_end ?(max_paths = 1000) ?(candidate_budget = 50_000) ps ~src ~dst
    =
  if Asn.equal src dst then []
  else begin
    let authz = Path_server.authz ps in
    let g = Authz.graph authz in
    let ups = up_sequences ps src in
    let downs = down_sequences ps dst in
    let seen = Hashtbl.create 64 in
    let collected = ref [] in
    (* Validate candidates as they are emitted, with a per-stage quota of
       valid paths and a per-stage scan budget: every stage (core,
       peering shortcut, MA splice) contributes to the result even on
       densely peered graphs where the earlier stages alone could fill
       the whole path set. *)
    let run_stage stage =
      let valid_count = ref 0 in
      let scanned = ref 0 in
      let emit ases =
        incr scanned;
        if not (Hashtbl.mem seen ases) then begin
          Hashtbl.replace seen ases ();
          match Segment.make authz ases with
          | Ok seg ->
              incr valid_count;
              collected := (ases, seg) :: !collected
          | Error _ -> ()
        end;
        if !valid_count >= max_paths * 2 || !scanned >= candidate_budget then
          raise Enough
      in
      try stage emit with Enough -> ()
    in
    run_stage (fun emit -> core_combinations ~emit ps ups downs);
    run_stage (fun emit -> peering_combinations ~emit g ups downs);
    run_stage (fun emit -> ma_combinations ~emit g (Authz.mas authz) ups downs);
    let sorted =
      List.stable_sort
        (fun (a1, _) (a2, _) ->
          match compare (List.length a1) (List.length a2) with
          | 0 -> compare a1 a2
          | c -> c)
        (List.rev !collected)
    in
    List.filteri (fun i _ -> i < max_paths) sorted |> List.map snd
  end

let best_path ?metric ps ~src ~dst =
  let score =
    match metric with
    | Some m -> m
    | None -> fun ases -> float_of_int (List.length ases)
  in
  let paths = end_to_end ps ~src ~dst in
  List.fold_left
    (fun best seg ->
      let s = score (Segment.ases seg) in
      match best with
      | Some (_, bs) when bs <= s -> best
      | _ -> Some (seg, s))
    None paths
  |> Option.map fst
