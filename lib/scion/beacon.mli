(** Path-segment construction by beaconing.

    Core ASes (those without providers) periodically originate path
    construction beacons (PCBs) that propagate down provider→customer
    links; every traversed AS authorizes and stamps its hop and the
    terminal AS registers the accumulated segment as a {e down-segment}
    (used in reverse as an {e up-segment}).  Core ASes additionally
    disseminate {e core-segments} between each other across the core
    peering mesh.

    Beaconing is independent of BGP: path discovery resembles BGP's
    announcement flooding, but since data packets carry their full path,
    no convergence of a shared view is required (§II). *)

open Pan_topology

type t
(** The result of a beaconing run: all registered segments. *)

val run :
  ?max_depth:int -> ?max_core_len:int -> ?max_segments_per_as:int ->
  Authz.t -> t
(** Disseminate PCBs over the policy's graph. [max_depth] bounds the number
    of ASes in a down-segment (default 6); [max_core_len] bounds core
    segments (default 4); [max_segments_per_as] keeps only that many
    registered down-segments per AS, shortest first (default 8) —
    mirroring how SCION path services cap the segments they serve, and
    keeping path combination tractable on dense graphs. *)

val core_ases : t -> Asn.t list
(** The provider-less ASes that originate beacons. *)

val down_segments : t -> Asn.t -> Segment.t list
(** Segments from some core AS down to the given AS (empty for core ASes
    themselves and unknown ASes). *)

val core_segments : t -> src:Asn.t -> dst:Asn.t -> Segment.t list
(** Core segments from one core AS to another. *)

val segment_count : t -> int
