(** Link-load accounting and multipath traffic placement.

    The paper's §I argues that simultaneous multipath use increases the
    network's overall capacity through the possibility to avoid congested
    links.  This module provides the bookkeeping to quantify that: an
    accumulator of per-link volumes, utilization statistics against a
    capacity model, and three placement policies for a demand over its
    candidate paths — single-path, even splitting, and congestion-aware
    (place where the resulting bottleneck utilization is lowest). *)

open Pan_topology

type t
(** Mutable per-link load accumulator over a fixed topology. *)

val create : Graph.t -> t

val add_path : t -> Asn.t list -> float -> unit
(** Add volume on every link of the path.
    @raise Invalid_argument on a negative volume, a path shorter than 2
    ASes, or a hop that is not a link of the graph. *)

val link_load : t -> Asn.t -> Asn.t -> float
(** Current volume on the (unordered) link; 0 if never loaded.
    @raise Invalid_argument if the ASes are not adjacent. *)

val utilization : t -> Bandwidth.t -> Asn.t -> Asn.t -> float
(** [link_load / capacity] under the given capacity model. *)

val stats : t -> Bandwidth.t -> loaded_only:bool -> float * float * float
(** [(mean, p95, max)] utilization — over links that carry load when
    [loaded_only], over every link of the graph otherwise.
    @raise Invalid_argument when there are no links to aggregate. *)

val overloaded : t -> Bandwidth.t -> threshold:float -> int
(** Number of links with utilization above the threshold. *)

val reset : t -> unit

type policy =
  | Single_path  (** all volume on the first candidate *)
  | Split of int  (** even split over the first [k] candidates *)
  | Congestion_aware of int
      (** place the whole demand on whichever of the first [k] candidates
          minimizes the resulting bottleneck utilization *)

val place :
  t -> Bandwidth.t -> policy -> Asn.t list list -> float -> unit
(** Place a demand of the given volume over the candidate paths (best
    first) according to the policy; no-op on an empty candidate list.
    @raise Invalid_argument on a negative volume or a [k < 1]. *)
