(** Per-AS path-authorization policy.

    In a PAN, paths are {e provider-acknowledged}: an AS cryptographically
    authorizes each hop through its network during path construction, so
    end-hosts can only use paths every on-path AS agreed to carry (§I, §II).
    This module captures the local decision each AS makes when asked to
    authorize a hop [prev → self → next]:

    - under plain GRC economics, transit is authorized iff the traffic
      comes from or goes to a customer (the valley-free local condition);
    - a concluded mutuality-based agreement with a peer additionally
      authorizes transit from that peer towards the AS's providers and
      peers (§III-B2). *)

open Pan_topology

type t

val create : ?core_transit:bool -> ?mas:(Asn.t * Asn.t) list -> Graph.t -> t
(** [create ~mas g]: [mas] lists concluded mutuality-based agreements as
    unordered peer pairs.  [core_transit] (default [true]) makes
    provider-less ASes authorize transit between their provider-less peers,
    as core ASes do in SCION's inter-ISD routing.
    @raise Invalid_argument if a listed MA pair is not a peering link of
    [g]. *)

val graph : t -> Graph.t

val has_ma : t -> Asn.t -> Asn.t -> bool
(** Is there a concluded MA between the two ASes (order-insensitive)? *)

val allows : t -> at:Asn.t -> prev:Asn.t option -> next:Asn.t option -> bool
(** Does AS [at] authorize the hop?  [prev = None] means [at] originates
    the traffic, [next = None] means [at] is the destination; both are
    always authorized.  For transit, [at] checks the GRC rule and any MA it
    concluded with [prev]. Non-adjacent [prev]/[next] are refused. *)

val mas : t -> (Asn.t * Asn.t) list
(** The concluded MAs, normalized with the smaller AS number first. *)
