open Pan_topology

type packet = { segment : Segment.t; payload : string }

type drop_reason = Bad_mac of Asn.t | Link_down of Asn.t * Asn.t

type delivery = { trace : Asn.t list; payload : string }

let pp_drop_reason fmt = function
  | Bad_mac a -> Format.fprintf fmt "MAC verification failed at %a" Asn.pp a
  | Link_down (a, b) ->
      Format.fprintf fmt "no link between %a and %a" Asn.pp a Asn.pp b

(* Each AS verifies its own hop in the chain.  We recompute the chain
   prefix as the packet progresses; a mismatch at any hop drops the packet
   there, just as a border router rejecting an invalid hop field would. *)
let send authz packet =
  let g = Authz.graph authz in
  let seg = packet.segment in
  let ases = Segment.ases seg in
  let hops = Segment.hops seg in
  let expected =
    match Segment.make authz ases with
    | Ok reference -> Some (Segment.hops reference)
    | Error _ -> None
  in
  let rec walk trace hops expected_hops prev =
    match (hops, expected_hops) with
    | [], _ -> Ok { trace = List.rev trace; payload = packet.payload }
    | (hop : Segment.hop) :: rest, exp ->
        (* adjacency check before handing over *)
        let link_ok =
          match prev with
          | None -> true
          | Some p -> Graph.connected g p hop.asn
        in
        if not link_ok then
          Error (Link_down (Option.get prev, hop.asn))
        else
          let mac_ok =
            match exp with
            | Some ((e : Segment.hop) :: _) -> e.mac = hop.mac
            | Some [] | None -> false
          in
          if not mac_ok then Error (Bad_mac hop.asn)
          else
            walk (hop.asn :: trace) rest
              (Option.map List.tl exp)
              (Some hop.asn)
  in
  walk [] hops expected None

let send_path authz ases ~payload =
  match Segment.make authz ases with
  | Error e -> Error (Format.asprintf "%a" Segment.pp_error e)
  | Ok segment -> (
      match send authz { segment; payload } with
      | Ok d -> Ok d
      | Error reason -> Error (Format.asprintf "%a" pp_drop_reason reason))
