(** Authenticated path segments.

    A segment is a sequence of ASes in which every AS has stamped a hop
    authenticator (a keyed MAC, simulated here with a keyed hash) chained
    over the preceding hops.  The chain makes a segment tamper-evident: a
    path not authorized hop-by-hop by the on-path ASes fails verification,
    which is what distinguishes PAN path selection from end-host source
    routing (§I). *)

open Pan_topology

type hop = { asn : Asn.t; mac : int }

type t

type error =
  | Too_short  (** fewer than 2 ASes *)
  | Loop of Asn.t  (** an AS appears twice *)
  | Not_adjacent of Asn.t * Asn.t
  | Unauthorized of { at : Asn.t; prev : Asn.t option; next : Asn.t option }
      (** the AS refused to authorize the hop under its {!Authz} policy *)

val make : Authz.t -> Asn.t list -> (t, error) result
(** Construct a segment along the given AS sequence, asking each on-path AS
    to authorize and stamp its hop. *)

val make_exn : Authz.t -> Asn.t list -> t
(** @raise Invalid_argument when {!make} fails. *)

val ases : t -> Asn.t list
val hops : t -> hop list
val source : t -> Asn.t
val destination : t -> Asn.t
val length : t -> int

val reverse : Authz.t -> t -> (t, error) result
(** Re-authorize the segment in the opposite direction (PAN segments are
    used bidirectionally when both directions are authorized). *)

val verify : t -> bool
(** Recompute the MAC chain; [false] if any hop was tampered with. *)

val unsafe_of_hops : hop list -> t
(** Build a segment from raw hops without authorization — the adversary's
    constructor, provided so tests and examples can demonstrate that forged
    segments fail {!verify}. *)

val key : Asn.t -> int
(** The per-AS secret used by the simulated MAC; deterministic so the whole
    simulation is reproducible. Exposed for white-box tests only. *)

val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
val equal : t -> t -> bool
