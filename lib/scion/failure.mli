(** Link failures and end-host multipath failover.

    One of the paper's motivations for PANs (§I) is that the availability
    of multiple authorized paths lets end-hosts route around failures
    without waiting for any control-plane convergence.  This module keeps
    a mutable set of failed links over an authorization policy, forwards
    packets with hop-by-hop liveness checks, and implements the end-host
    strategy of retrying across the path set.

    Mutuality-based agreements enlarge the path set, so they directly
    improve the failover success rate — quantified by
    {!Pan_experiments.Resilience}. *)

open Pan_topology

type t

val create : Authz.t -> t
(** Beacon over the policy's graph and index the segments; all links start
    up. *)

val authz : t -> Authz.t
val path_server : t -> Path_server.t

val fail_link : t -> Asn.t -> Asn.t -> unit
(** Order-insensitive; idempotent. *)

val restore_link : t -> Asn.t -> Asn.t -> unit
val restore_all : t -> unit
val failed_links : t -> (Asn.t * Asn.t) list
val link_up : t -> Asn.t -> Asn.t -> bool

val send_on_segment :
  t -> Segment.t -> payload:string -> (Forwarding.delivery, string) result
(** Forward along one embedded path; drops at the upstream AS of a failed
    link (or on any authorization/MAC error). *)

type outcome = { delivery : Forwarding.delivery; attempts : int }

val send_with_failover :
  ?max_paths:int ->
  t ->
  src:Asn.t ->
  dst:Asn.t ->
  payload:string ->
  (outcome, string) result
(** Try the combinator's paths shortest-first until one delivers;
    [attempts] counts the paths tried. *)

val connectivity : ?max_paths:int -> t -> src:Asn.t -> dst:Asn.t -> bool
(** Does any live authorized path connect the pair right now? *)
