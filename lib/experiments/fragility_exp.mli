(** Extension experiment E13 — BGP's fragility as GRC-violating
    agreements accumulate.

    §II argues that in a BGP internet, mutuality-like policies "need to
    be implemented very carefully and with coordination among all
    involved parties", because seemingly benign combinations reduce to
    DISAGREE or BAD GADGET.  This experiment measures that: on random
    topologies, a fraction [p] of peer pairs exchange provider routes and
    prefer peer-learned routes (exactly the D–E arrangement of Fig. 1);
    SPVP is then run for random destinations, and the outcomes are
    classified.  In a PAN the same agreements are trivially stable — the
    whole point of the paper — so the PAN column would read "100%
    stable" at every density. *)


type point = {
  violation_density : float;  (** fraction of peer pairs with the policy *)
  instances : int;  (** (topology, destination) cases evaluated *)
  converged : int;  (** round-robin SPVP converged *)
  oscillated : int;  (** round-robin SPVP cycled *)
  nondeterministic : int;
      (** converged, but different schedules reach different states *)
  with_dispute_wheel : int;
      (** instances containing a dispute wheel — the structural
          precondition for both failure modes; it appears as soon as
          violations do, even when the dynamics still happen to
          converge *)
}

type result = { points : point list }

val run :
  ?densities:float list ->
  ?topologies:int ->
  ?dests_per_topology:int ->
  ?seed:int ->
  unit ->
  result
(** Defaults: densities 0, 0.25, 0.5, 1.0; 8 random ~20-AS topologies;
    3 destinations each. *)

val pp : Format.formatter -> result -> unit
