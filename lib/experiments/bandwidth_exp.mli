(** Experiment E5 — Fig. 6: bandwidth of MA-added paths under the
    degree-gravity capacity model (§VI-C). *)

open Pan_topology

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?sample_size:int ->
  ?seed:int ->
  Graph.t ->
  Pair_analysis.result
(** A path is "better" when its bottleneck capacity is higher; the
    improvement metric is the relative bandwidth increase of the best MA
    path over the best GRC path.  Sources run on [pool]; the result is
    bit-identical for any pool size.  [retries]/[deadline] supervise as
    in {!Pair_analysis.analyze}. *)

val run_default : ?params:Gen.params -> ?topology_seed:int -> unit ->
  Graph.t * Pair_analysis.result

val pp : Format.formatter -> Pair_analysis.result -> unit
(** Fig. 6a and Fig. 6b tables. *)
