open Pan_routing
open Pan_topology
open Pan_scion

type bgp_case = {
  name : string;
  outcome : Bgp.outcome;
  stable_solutions : int;
  deterministic : bool;
  dispute_wheel : bool;
}

type surprise_case = {
  before : Bgp.outcome;
  before_wheel : bool;
  after : Bgp.outcome;
  after_stable_solutions : int;
}

type pan_case = {
  path : Asn.t list;
  delivered : bool;
  loop_free : bool;
}

type async_case = {
  async_name : string;
  fifo : Bgp_async.outcome;
  livelock_found : bool;
}

type report = {
  bgp : bgp_case list;
  pan : pan_case list;
  surprise : surprise_case;
  async : async_case list;
}

let async_case ~seed name instance =
  let livelock_found = ref false in
  for i = 1 to 10 do
    match
      Bgp_async.run ~max_messages:20_000
        ~schedule:
          (Bgp_async.Random_delivery (Pan_numerics.Rng.create (seed + i)))
        instance
    with
    | Bgp_async.Diverged _ -> livelock_found := true
    | Bgp_async.Quiesced _ -> ()
  done;
  {
    async_name = name;
    fifo = Bgp_async.run ~max_messages:20_000 ~schedule:Bgp_async.Fifo instance;
    livelock_found = !livelock_found;
  }

let bgp_case ~seed name instance =
  {
    name;
    outcome = Bgp.run ~schedule:Bgp.Round_robin instance;
    stable_solutions = List.length (Spp.stable_solutions instance);
    deterministic = Bgp.converges_deterministically ~seed instance;
    dispute_wheel = Dispute.has_wheel instance;
  }

let surprise_case () =
  let benign = Gadgets.surprise () in
  let failed = Grc_check.remove_link benign (Asn.of_int 4, Asn.of_int 0) in
  {
    before = Bgp.run ~schedule:Bgp.Round_robin benign;
    before_wheel = Dispute.has_wheel benign;
    after = Bgp.run ~schedule:Bgp.Round_robin failed;
    after_stable_solutions = List.length (Spp.stable_solutions failed);
  }

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.exists (Asn.equal x) rest)) && distinct rest

let pan_case authz path =
  match Forwarding.send_path authz path ~payload:"probe" with
  | Ok delivery ->
      {
        path;
        delivered = delivery.Forwarding.trace = path;
        loop_free = distinct delivery.Forwarding.trace;
      }
  | Error _ -> { path; delivered = false; loop_free = true }

let run ?(seed = 20210527) () =
  let bgp =
    [
      bgp_case ~seed "DISAGREE" (Gadgets.disagree ());
      bgp_case ~seed "GOOD GADGET" (Gadgets.good_gadget ());
      bgp_case ~seed "BAD GADGET" (Gadgets.bad_gadget ());
      bgp_case ~seed "WEDGIE" (Gadgets.wedgie ());
      bgp_case ~seed "Fig.1 DISAGREE" (Gadgets.fig1_disagree ());
      bgp_case ~seed "Fig.1 BAD GADGET" (Gadgets.fig1_bad_gadget ());
    ]
  in
  (* The same GRC-violating routes, forwarded in a PAN with the matching
     MAs concluded. *)
  let g = Gen.fig1 () in
  let a c = Gen.fig1_asn c in
  let authz =
    Authz.create
      ~mas:[ (a 'D', a 'E'); (a 'C', a 'D'); (a 'C', a 'E') ]
      g
  in
  let pan =
    List.map (pan_case authz)
      [
        [ a 'D'; a 'E'; a 'B' ];        (* D over its MA peer E to B *)
        [ a 'H'; a 'D'; a 'E'; a 'B' ]; (* extended to D's customer H *)
        [ a 'E'; a 'D'; a 'A' ];        (* the reciprocal direction *)
        [ a 'C'; a 'D'; a 'E' ];        (* C's MA with D towards E *)
        [ a 'D'; a 'E'; a 'F' ];        (* MA access to E's peer F *)
      ]
  in
  let async =
    [
      async_case ~seed "DISAGREE" (Gadgets.disagree ());
      async_case ~seed "GOOD GADGET" (Gadgets.good_gadget ());
      async_case ~seed "BAD GADGET" (Gadgets.bad_gadget ());
    ]
  in
  { bgp; pan; surprise = surprise_case (); async }

let pp fmt report =
  Format.fprintf fmt "# BGP (SPVP) on gadget policy configurations@.";
  Format.fprintf fmt "%-18s %-45s %-8s %-14s %s@." "instance"
    "round-robin outcome" "stable" "deterministic" "wheel";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-18s %-45s %-8d %-14b %b@." c.name
        (Format.asprintf "%a" Bgp.pp_outcome c.outcome)
        c.stable_solutions c.deterministic c.dispute_wheel)
    report.bgp;
  Format.fprintf fmt "# SURPRISE: a benign configuration until a link fails@.";
  Format.fprintf fmt "  before failure: %a (dispute wheel hidden: %b)@."
    Bgp.pp_outcome report.surprise.before report.surprise.before_wheel;
  Format.fprintf fmt "  after failing link 4-0: %a (stable solutions: %d)@."
    Bgp.pp_outcome report.surprise.after
    report.surprise.after_stable_solutions;
  Format.fprintf fmt
    "# message-passing SPVP (async): livelock probes over 10 schedules@.";
  Format.fprintf fmt "%-18s %-40s %s@." "instance" "global-FIFO delivery"
    "livelock found";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-18s %-40s %b@." c.async_name
        (Format.asprintf "%a" Bgp_async.pp_outcome c.fifo)
        c.livelock_found)
    report.async;
  Format.fprintf fmt "# PAN forwarding along GRC-violating paths (Fig.1)@.";
  Format.fprintf fmt "%-26s %-10s %s@." "path" "delivered" "loop-free";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-26s %-10b %b@."
        (String.concat "-"
           (List.map (fun x -> string_of_int (Asn.to_int x)) c.path))
        c.delivered c.loop_free)
    report.pan
