open Pan_topology

let run ?pool ?retries ?deadline ?(sample_size = 500) ?(seed = 7) g =
  (* One freeze serves both the capacity model and the pair analysis. *)
  let c = Compact.freeze g in
  let bw =
    Pan_obs.Obs.with_span "fig6/bw_model" (fun () -> Bandwidth.of_compact c)
  in
  Pair_analysis.analyze ?pool ?retries ?deadline ~compact:c ~obs_prefix:"fig6"
    ~sample_size ~seed ~graph:g ~metric:(Bandwidth.path3_bandwidth bw)
    ~better:`Higher ()

let run_default ?(params = Gen.default_params) ?(topology_seed = 42) () =
  let g = Gen.graph (Gen.generate ~params ~seed:topology_seed ()) in
  (g, run g)

let pp fmt result =
  Pair_analysis.pp_counts ~label:"Fig.6a bandwidth" fmt result;
  Pair_analysis.pp_improvements ~label:"Fig.6b bandwidth increase" fmt result
