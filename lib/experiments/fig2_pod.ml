open Pan_numerics
open Pan_bosco

type point = {
  w : int;
  min_pod : float;
  mean_pod : float;
  mean_equilibrium_choices : float;
  all_converged : bool;
}

type series = { label : string; points : point list }

let u1 = Distribution.uniform (-1.0) 1.0
let u2 = Distribution.uniform (-0.5) 1.0

let default_ws = [ 2; 5; 10; 20; 35; 50; 75; 100 ]

let run ?construction ?pool ?retries ?deadline ?(ws = default_ws)
    ?(trials = 200) ~seed ~label dist =
  Pan_obs.Obs.with_span ("fig2/" ^ label) @@ fun () ->
  let rng = Rng.create seed in
  let points =
    List.map
      (fun w ->
        let reports =
          Pan_obs.Obs.with_span (Printf.sprintf "fig2/%s/w%d" label w)
            (fun () ->
              Service.trials ?construction ?pool ?retries ?deadline ~rng
                ~dist_x:dist ~dist_y:dist ~w ~n:trials ())
        in
        let eq_choices =
          List.fold_left
            (fun acc (r : Service.report) ->
              acc
              +. (float_of_int
                    (r.equilibrium_choices_x + r.equilibrium_choices_y)
                 /. 2.0))
            0.0 reports
          /. float_of_int (List.length reports)
        in
        {
          w;
          min_pod = Service.min_pod reports;
          mean_pod = Service.mean_pod reports;
          mean_equilibrium_choices = eq_choices;
          all_converged =
            List.for_all (fun (r : Service.report) -> r.converged) reports;
        })
      ws
  in
  { label; points }

let run_both ?pool ?retries ?deadline ?ws ?trials ~seed () =
  [
    run ?pool ?retries ?deadline ?ws ?trials ~seed ~label:"U(1)" u1;
    run ?pool ?retries ?deadline ?ws ?trials ~seed:(seed + 1) ~label:"U(2)" u2;
  ]

let pp_series fmt s =
  Format.fprintf fmt "# Fig.2 series %s@." s.label;
  Format.fprintf fmt "%-6s %-10s %-10s %-8s %s@." "W" "min_PoD" "mean_PoD"
    "eq_ch" "converged";
  List.iter
    (fun p ->
      Format.fprintf fmt "%-6d %-10.4f %-10.4f %-8.2f %b@." p.w p.min_pod
        p.mean_pod p.mean_equilibrium_choices p.all_converged)
    s.points
