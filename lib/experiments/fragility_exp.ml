open Pan_topology
open Pan_numerics
open Pan_routing

type point = {
  violation_density : float;
  instances : int;
  converged : int;
  oscillated : int;
  nondeterministic : int;
  with_dispute_wheel : int;
}

type result = { points : point list }

let small_params =
  {
    Gen.default_params with
    Gen.n_tier1 = 3;
    n_transit = 8;
    n_stub = 10;
    transit_peering_degree = 5.0;
    stub_peering_prob = 0.4;
    route_server_hubs = 0;
  }

(* Select a [density] fraction of peering links as "sibling-style"
   arrangements: both endpoints offer each other their provider routes
   and prefer peer-learned routes. *)
let select_violating_pairs rng g density =
  let pairs = Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g [] in
  List.filter (fun _ -> Rng.float rng < density) pairs

let violating_instance g pairs ~dest =
  let is_selected x y =
    List.exists
      (fun (a, b) ->
        (Asn.equal a x && Asn.equal b y) || (Asn.equal a y && Asn.equal b x))
      pairs
  in
  (* a route is permitted if valley-free, or if its only valley is the
     first step crossing a selected peer pair (the partner re-exports its
     provider route, as agreed) *)
  let valley_free_from g = function
    | _ :: _ :: _ as route -> Path.is_valley_free g (Path.make_exn g route)
    | _ -> true
  in
  let permit node route =
    match route with
    | _ when valley_free_from g route -> true
    | u :: (v :: rest_tail as tail) ->
        Asn.equal u node
        && Graph.relationship g u v = Some Graph.Peer
        && is_selected u v
        && (rest_tail = [] || valley_free_from g tail)
    | _ -> false
  in
  let prefer _node r1 r2 =
    (* agreement routes (over a selected peer pair) are preferred, as in
       the DISAGREE setup of §II *)
    let agreement_route r =
      match r with
      | u :: v :: _
        when Graph.relationship g u v = Some Graph.Peer && is_selected u v ->
          0
      | _ -> 1
    in
    match compare (agreement_route r1) (agreement_route r2) with
    | 0 -> compare (Policy.grc_rank g r1) (Policy.grc_rank g r2)
    | c -> c
  in
  Policy.custom_instance ~max_len:4 g ~dest ~permit ~prefer

let run ?(densities = [ 0.0; 0.25; 0.5; 1.0 ]) ?(topologies = 8)
    ?(dests_per_topology = 3) ?(seed = 23) () =
  let points =
    List.map
      (fun density ->
        let converged = ref 0
        and oscillated = ref 0
        and nondet = ref 0
        and wheels = ref 0
        and instances = ref 0 in
        for t = 1 to topologies do
          let g =
            Gen.graph (Gen.generate ~params:small_params ~seed:(seed + t) ())
          in
          let rng = Rng.create (seed + (100 * t)) in
          let pairs = select_violating_pairs rng g density in
          let ases = Array.of_list (Graph.ases g) in
          let dests =
            Rng.sample_without_replacement rng dests_per_topology ases
          in
          Array.iter
            (fun dest ->
              incr instances;
              let i = violating_instance g pairs ~dest in
              if Dispute.has_wheel i then incr wheels;
              match Bgp.run ~schedule:Bgp.Round_robin i with
              | Bgp.Oscillation _ -> incr oscillated
              | Bgp.Exhausted _ -> incr oscillated
              | Bgp.Converged _ ->
                  incr converged;
                  if
                    not
                      (Bgp.converges_deterministically ~trials:10
                         ~seed:(seed + t) i)
                  then incr nondet)
            dests
        done;
        {
          violation_density = density;
          instances = !instances;
          converged = !converged;
          oscillated = !oscillated;
          nondeterministic = !nondet;
          with_dispute_wheel = !wheels;
        })
      densities
  in
  { points }

let pp fmt r =
  Format.fprintf fmt
    "# BGP fragility vs. density of GRC-violating agreements (E13)@.";
  Format.fprintf fmt
    "# (in a PAN, every case is stable by construction: the embedded \
     path needs no convergence)@.";
  Format.fprintf fmt "%-10s %-10s %-11s %-12s %-18s %s@." "density" "cases"
    "converged" "oscillated" "nondeterministic" "dispute_wheel";
  List.iter
    (fun p ->
      Format.fprintf fmt "%-10.2f %-10d %-11d %-12d %-18d %d@."
        p.violation_density p.instances p.converged p.oscillated
        p.nondeterministic p.with_dispute_wheel)
    r.points
