open Pan_topology
open Pan_numerics
open Pan_econ

type per_as = {
  asn : Asn.t;
  ma3_paths : int;
  chained4_paths : int;
  ma3_new_dests : int;
  chained4_extra_dests : int;
}

type result = { sampled : per_as list }

let run ?(sample_size = 200) ?(seed = 7) g =
  let rng = Rng.create seed in
  let all = Array.of_list (Graph.ases g) in
  let sample =
    if Array.length all <= sample_size then all
    else Rng.sample_without_replacement rng sample_size all
  in
  let analyze asn =
    let ma3 = Path_enum.ma_direct g asn in
    let ma3_dests = Path_enum.dest_set ma3 in
    let grc_dests = Path_enum.dest_set (Path_enum.grc g asn) in
    let chained4_paths, chained_dests = Extension.chained_stats g asn in
    let known =
      Asn.Set.union (Graph.neighbors g asn)
        (Asn.Set.union ma3_dests grc_dests)
    in
    {
      asn;
      ma3_paths = Path_enum.total_count ma3;
      chained4_paths;
      ma3_new_dests = Asn.Set.cardinal (Asn.Set.diff ma3_dests grc_dests);
      chained4_extra_dests =
        Asn.Set.cardinal (Asn.Set.diff chained_dests known);
    }
  in
  { sampled = Array.to_list (Array.map analyze sample) }

let run_default ?(params = Gen.default_params) ?(topology_seed = 42) () =
  let small = { params with Gen.n_transit = 100; Gen.n_stub = 400 } in
  let g = Gen.graph (Gen.generate ~params:small ~seed:topology_seed ()) in
  (g, run g)

let mean_ratio r =
  match r.sampled with
  | [] -> 0.0
  | l ->
      List.fold_left
        (fun acc pa ->
          acc
          +. (float_of_int pa.chained4_paths
             /. float_of_int (Stdlib.max 1 pa.ma3_paths)))
        0.0 l
      /. float_of_int (List.length l)

let pp fmt r =
  let arr f = Array.of_list (List.map f r.sampled) in
  let p50 xs = Stats.median (arr xs) in
  Format.fprintf fmt
    "# Agreement-path extension (§III-B3, extension experiment)@.";
  Format.fprintf fmt "%-28s %-10s@." "metric" "median";
  Format.fprintf fmt "%-28s %-10.0f@." "length-3 MA paths" (p50 (fun pa ->
      float_of_int pa.ma3_paths));
  Format.fprintf fmt "%-28s %-10.0f@." "length-4 chained paths"
    (p50 (fun pa -> float_of_int pa.chained4_paths));
  Format.fprintf fmt "%-28s %-10.0f@." "new dests (length-3 MA)"
    (p50 (fun pa -> float_of_int pa.ma3_new_dests));
  Format.fprintf fmt "%-28s %-10.0f@." "extra dests (chaining)"
    (p50 (fun pa -> float_of_int pa.chained4_extra_dests));
  Format.fprintf fmt "mean chained/direct path ratio: %.2f@." (mean_ratio r)
