open Pan_topology
open Pan_numerics
open Pan_econ

type negotiation = {
  x : Asn.t;
  y : Asn.t;
  joint_utility : float;
  concluded : bool;
}

type per_as = {
  asn : Asn.t;
  grc_paths : int;
  economic_paths : int;
  all_ma_paths : int;
  grc_dests : int;
  economic_dests : int;
  all_ma_dests : int;
}

type result = {
  pairs_evaluated : int;
  concluded : (Asn.t * Asn.t) list;
  adoption_rate : float;
  mean_joint_utility : float;
  sampled : per_as list;
}

(* Deterministic per-AS business conditions: prices and internal-cost
   rates vary across ASes (drawn from a seed-derived stream), which is
   what makes some agreements viable and others not. *)
let business_of ~seed g x =
  let rng = Rng.create (Hashtbl.hash (seed, Asn.to_int x, "biz")) in
  let transit = Pricing.per_usage ~unit_price:(Rng.uniform rng 0.7 1.3) in
  (* a sizable share of ASes bills end-hosts flat-rate: for them newly
     attracted traffic generates no extra revenue — the paper's §III-B1
     reason why even classic peering can be unattractive *)
  let stub =
    if Rng.float rng < 0.4 then Pricing.flat_rate ~fee:20.0
    else Pricing.per_usage ~unit_price:(Rng.uniform rng 1.2 2.5)
  in
  let internal = Cost.linear ~rate:(Rng.uniform rng 0.05 0.7) in
  Business.of_graph ~default_transit:transit ~default_internal:internal
    ~stub_price:stub g x

(* Baseline link volumes follow a gravity-ish rule so large ASes carry
   more traffic; the stub (end-host) volume scales with customer count. *)
let baseline_of g x =
  let entries =
    Asn.Set.fold
      (fun y acc ->
        let v =
          2.0 *. sqrt (float_of_int (Graph.degree g x * Graph.degree g y))
        in
        (y, v) :: acc)
      (Graph.neighbors g x) []
  in
  let stub_volume = 4.0 +. float_of_int (Graph.degree g x) in
  Flows.of_list ((Flows.stub x, stub_volume) :: entries)

(* Forecast demands for one side of the MA.  The partner's providers come
   first — access to providers is the headline MA case and the one that
   costs the transit party money — followed by the partner's peers in
   degree order. *)
let demands_for ~rng ~max_demands g ~beneficiary ~transit ~granted =
  let providers, peers =
    Asn.Set.partition
      (fun z -> Asn.Set.mem z (Graph.providers g transit))
      granted
  in
  let by_degree set =
    Asn.Set.elements set
    |> List.map (fun z -> (Graph.degree g z, z))
    |> List.sort (fun (d1, z1) (d2, z2) ->
           match compare d2 d1 with 0 -> Asn.compare z1 z2 | c -> c)
    |> List.map snd
  in
  let dests =
    by_degree providers @ by_degree peers
    |> List.filteri (fun i _ -> i < max_demands)
  in
  let providers = Graph.providers g beneficiary in
  let reroute_from =
    if Asn.Set.is_empty providers then None
    else Some (Asn.Set.min_elt providers)
  in
  let provider_traffic =
    4.0 *. sqrt (float_of_int (Graph.degree g beneficiary))
  in
  List.map
    (fun z ->
      let share = Rng.uniform rng 0.05 0.3 in
      let reroutable =
        if reroute_from = None then 0.0 else provider_traffic *. share
      in
      Traffic_model.
        {
          beneficiary;
          transit;
          dest = z;
          reroutable;
          reroute_from;
          attracted_max = reroutable *. Rng.uniform rng 0.2 0.8;
        })
    dests

let negotiate_pair_with ~max_demands ~seed g x y =
  let rng =
    Rng.create
      (Hashtbl.hash (seed, Asn.to_int x, Asn.to_int y, "pair"))
  in
  let agreement = Agreement.mutuality g x y in
  let demands =
    demands_for ~rng ~max_demands g ~beneficiary:x ~transit:y
      ~granted:(Agreement.accessible agreement ~to_:x)
    @ demands_for ~rng ~max_demands g ~beneficiary:y ~transit:x
        ~granted:(Agreement.accessible agreement ~to_:y)
  in
  if demands = [] then { x; y; joint_utility = 0.0; concluded = false }
  else
    let scenario =
      Traffic_model.make_scenario_exn ~graph:g ~agreement
        ~businesses:
          [ (x, business_of ~seed g x); (y, business_of ~seed g y) ]
        ~baseline:[ (x, baseline_of g x); (y, baseline_of g y) ]
        ~demands
    in
    let r = Cash_opt.optimize scenario in
    {
      x;
      y;
      joint_utility = r.Cash_opt.u_x +. r.Cash_opt.u_y;
      concluded = r.Cash_opt.concluded;
    }

let negotiate_pair ~seed g x y = negotiate_pair_with ~max_demands:3 ~seed g x y

let run ?(sample_size = 300) ?(max_demands = 3) ?(seed = 17) g =
  let negotiations =
    Graph.fold_peering_links
      (fun x y acc -> negotiate_pair_with ~max_demands ~seed g x y :: acc)
      g []
  in
  let concluded =
    List.filter_map
      (fun (n : negotiation) -> if n.concluded then Some (n.x, n.y) else None)
      negotiations
  in
  let concluded_set =
    List.fold_left
      (fun acc (x, y) ->
        let key (a, b) = if Asn.compare a b <= 0 then (a, b) else (b, a) in
        let k = key (x, y) in
        Hashtbl.replace acc k ();
        acc)
      (Hashtbl.create 4096) concluded
  in
  let is_concluded a b =
    let k = if Asn.compare a b <= 0 then (a, b) else (b, a) in
    Hashtbl.mem concluded_set k
  in
  let joint_sum =
    List.fold_left
      (fun acc (n : negotiation) ->
        if n.concluded then acc +. n.joint_utility else acc)
      0.0 negotiations
  in
  let rng = Rng.create seed in
  let all = Array.of_list (Graph.ases g) in
  let sample =
    if Array.length all <= sample_size then all
    else Rng.sample_without_replacement rng sample_size all
  in
  let analyze asn =
    let grc = Path_enum.grc g asn in
    let economic = Path_enum.economic_paths ~concluded:is_concluded g asn in
    let all_ma = Path_enum.scenario_paths g Path_enum.Ma_all asn in
    {
      asn;
      grc_paths = Path_enum.total_count grc;
      economic_paths = Path_enum.total_count economic;
      all_ma_paths = Path_enum.total_count all_ma;
      grc_dests = Asn.Set.cardinal (Path_enum.dest_set grc);
      economic_dests = Asn.Set.cardinal (Path_enum.dest_set economic);
      all_ma_dests = Asn.Set.cardinal (Path_enum.dest_set all_ma);
    }
  in
  {
    pairs_evaluated = List.length negotiations;
    concluded;
    adoption_rate =
      (if negotiations = [] then 0.0
       else
         float_of_int (List.length concluded)
         /. float_of_int (List.length negotiations));
    mean_joint_utility =
      (if concluded = [] then 0.0
       else joint_sum /. float_of_int (List.length concluded));
    sampled = Array.to_list (Array.map analyze sample);
  }

let pp fmt r =
  Format.fprintf fmt
    "# Economic MA adoption (extension): %d peering pairs negotiated@."
    r.pairs_evaluated;
  Format.fprintf fmt "adopted: %d (%.1f%%), mean joint utility %.2f@."
    (List.length r.concluded)
    (100.0 *. r.adoption_rate)
    r.mean_joint_utility;
  let med f =
    Pan_numerics.Stats.median
      (Array.of_list (List.map (fun pa -> float_of_int (f pa)) r.sampled))
  in
  Format.fprintf fmt "%-22s %-10s %-12s %s@." "median per AS" "GRC"
    "economic" "all-MA";
  Format.fprintf fmt "%-22s %-10.0f %-12.0f %.0f@." "length-3 paths"
    (med (fun pa -> pa.grc_paths))
    (med (fun pa -> pa.economic_paths))
    (med (fun pa -> pa.all_ma_paths));
  Format.fprintf fmt "%-22s %-10.0f %-12.0f %.0f@." "destinations"
    (med (fun pa -> pa.grc_dests))
    (med (fun pa -> pa.economic_dests))
    (med (fun pa -> pa.all_ma_dests))
