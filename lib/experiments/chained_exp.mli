(** Extension experiment E10 — diversity gains from agreement-path
    extension (§III-B3).

    The paper sketches, but does not evaluate, secondary agreements that
    re-offer MA-created segments.  This experiment measures how many
    length-4 paths and additional destinations full chaining would add on
    top of the length-3 MA gains of Fig. 3/4. *)

open Pan_topology

type per_as = {
  asn : Asn.t;
  ma3_paths : int;  (** direct length-3 MA paths (the Fig. 3 quantity) *)
  chained4_paths : int;  (** length-4 paths from one level of chaining *)
  ma3_new_dests : int;  (** destinations added by length-3 MA paths *)
  chained4_extra_dests : int;
      (** destinations reachable only through chained paths: not a
          neighbor, not a GRC or MA-3 destination *)
}

type result = { sampled : per_as list }

val run : ?sample_size:int -> ?seed:int -> Graph.t -> result

val run_default :
  ?params:Gen.params -> ?topology_seed:int -> unit -> Graph.t * result

val mean_ratio : result -> float
(** Mean of [chained4_paths / max(1, ma3_paths)] over the sample: how much
    a second level of agreements multiplies the path supply. *)

val pp : Format.formatter -> result -> unit
