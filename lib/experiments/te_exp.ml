open Pan_topology
open Pan_numerics
open Pan_scion

type regime = {
  label : string;
  mean_utilization : float;
  p95_utilization : float;
  max_utilization : float;
  overloaded_links : int;
  unrouted : int;
}

type result = { demands : int; regimes : regime list }

let all_mas g = Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g []

let gravity_volume g src dst =
  sqrt (float_of_int (Graph.degree g src * Graph.degree g dst))

let run ?(demands = 300) ?(k = 3) ?(seed = 19) ?(volume_scale = 10.0) g =
  let rng = Rng.create seed in
  let ases = Array.of_list (Graph.ases g) in
  let demand_list =
    List.init demands (fun _ ->
        let src = Rng.choose rng ases in
        let rec pick () =
          let dst = Rng.choose rng ases in
          if Asn.equal src dst then pick () else dst
        in
        let dst = pick () in
        (src, dst, volume_scale *. gravity_volume g src dst))
  in
  let bw = Bandwidth.degree_gravity g in
  let grc_ps =
    let authz = Authz.create g in
    Path_server.build authz (Beacon.run authz)
  in
  let ma_ps =
    let authz = Authz.create ~mas:(all_mas g) g in
    Path_server.build authz (Beacon.run authz)
  in
  (* path candidates are computed once per (pair, path-server) *)
  let candidates ps src dst =
    List.map Segment.ases (Combinator.end_to_end ~max_paths:k ps ~src ~dst)
  in
  let run_regime label ps policy =
    let t = Traffic.create g in
    let unrouted = ref 0 in
    List.iter
      (fun (src, dst, volume) ->
        match candidates ps src dst with
        | [] -> incr unrouted
        | paths -> Traffic.place t bw policy paths volume)
      demand_list;
    let mean, p95, max_u = Traffic.stats t bw ~loaded_only:true in
    {
      label;
      mean_utilization = mean;
      p95_utilization = p95;
      max_utilization = max_u;
      overloaded_links = Traffic.overloaded t bw ~threshold:1.0;
      unrouted = !unrouted;
    }
  in
  {
    demands;
    regimes =
      [
        run_regime "GRC single-path" grc_ps Traffic.Single_path;
        run_regime
          (Printf.sprintf "GRC split-%d" k)
          grc_ps (Traffic.Split k);
        run_regime (Printf.sprintf "MA split-%d" k) ma_ps (Traffic.Split k);
        run_regime
          (Printf.sprintf "MA congestion-aware (k=%d)" k)
          ma_ps (Traffic.Congestion_aware k);
      ];
  }

let run_default ?(params = Gen.default_params) ?(topology_seed = 42) () =
  let small = { params with Gen.n_transit = 100; Gen.n_stub = 400 } in
  let g = Gen.graph (Gen.generate ~params:small ~seed:topology_seed ()) in
  (g, run g)

let pp fmt r =
  Format.fprintf fmt
    "# Traffic engineering (extension): %d gravity demands@." r.demands;
  Format.fprintf fmt "%-28s %-8s %-8s %-8s %-12s %s@." "regime" "mean"
    "p95" "max" "overloaded" "unrouted";
  List.iter
    (fun reg ->
      Format.fprintf fmt "%-28s %-8.3f %-8.3f %-8.3f %-12d %d@." reg.label
        reg.mean_utilization reg.p95_utilization reg.max_utilization
        reg.overloaded_links reg.unrouted)
    r.regimes
