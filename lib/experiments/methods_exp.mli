(** Experiment E8 — §IV-C: flexibility of cash compensation vs. flow-volume
    targets, measured over randomized mutuality scenarios. *)

type report = {
  scenarios : int;
  cash_concluded : int;
  flow_volume_concluded : int;
  cash_only : int;
      (** scenarios concluded by cash compensation but not by flow-volume
          targets — the paper's flexibility argument *)
  mean_cash_joint : float;
      (** mean joint utility over scenarios the cash method concluded *)
  mean_flow_volume_joint : float;
}

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?chunk:int ->
  ?scenarios:int ->
  ?seed:int ->
  ?kernel:Pan_econ.Model_fast.kernel ->
  unit ->
  report
(** Randomized scenarios on the Fig. 1 topology between peers D and E
    (default 100 scenarios).  Scenario chunks ([chunk], default 4) draw
    from split generators and run on [pool]; counters and utility sums are
    folded in scenario order, so the report is bit-identical for any pool
    size.  [retries]/[deadline] supervise as in
    {!Pan_runner.Task.map_reduce}. *)

val pp : Format.formatter -> report -> unit
