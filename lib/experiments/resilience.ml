open Pan_topology
open Pan_numerics
open Pan_scion

type survival = { grc : float; ma : float }

type result = {
  pairs : int;
  baseline_connectivity : survival;
  first_link_failed : survival;
  middle_link_failed : survival;
  mean_attempts_ma : float;
}

let all_mas g =
  Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g []

let rec path_links = function
  | a :: (b :: _ as rest) -> (a, b) :: path_links rest
  | _ -> []

let run ?(pairs = 100) ?(seed = 13) g =
  let rng = Rng.create seed in
  let grc_net = Failure.create (Authz.create g) in
  let ma_net = Failure.create (Authz.create ~mas:(all_mas g) g) in
  let ases = Array.of_list (Graph.ases g) in
  (* sample pairs that have a primary GRC path: those are the pairs whose
     service can degrade in the first place *)
  let sampled = ref [] in
  let attempts_budget = pairs * 20 in
  let tries = ref 0 in
  while List.length !sampled < pairs && !tries < attempts_budget do
    incr tries;
    let src = Rng.choose rng ases and dst = Rng.choose rng ases in
    if not (Asn.equal src dst) then
      match
        Combinator.best_path (Failure.path_server grc_net) ~src ~dst
      with
      | Some primary -> sampled := (src, dst, primary) :: !sampled
      | None -> ()
  done;
  let sampled = !sampled in
  let n = List.length sampled in
  let attempts_total = ref 0 and deliveries = ref 0 in
  let survive net ~src ~dst =
    match Failure.send_with_failover net ~src ~dst ~payload:"" with
    | Ok outcome ->
        if net == ma_net then begin
          attempts_total := !attempts_total + outcome.Failure.attempts;
          incr deliveries
        end;
        true
    | Error _ -> false
  in
  let measure select_link =
    let ok_grc = ref 0 and ok_ma = ref 0 in
    List.iter
      (fun (src, dst, primary) ->
        let links = path_links (Segment.ases primary) in
        (match select_link links with
        | None -> ()
        | Some (x, y) ->
            Failure.fail_link grc_net x y;
            Failure.fail_link ma_net x y);
        if survive grc_net ~src ~dst then incr ok_grc;
        if survive ma_net ~src ~dst then incr ok_ma;
        Failure.restore_all grc_net;
        Failure.restore_all ma_net)
      sampled;
    let frac c = if n = 0 then 0.0 else float_of_int c /. float_of_int n in
    { grc = frac !ok_grc; ma = frac !ok_ma }
  in
  let baseline = measure (fun _ -> None) in
  let first = measure (function l :: _ -> Some l | [] -> None) in
  let middle =
    measure (fun links ->
        match links with
        | [] -> None
        | l -> Some (List.nth l (List.length l / 2)))
  in
  {
    pairs = n;
    baseline_connectivity = baseline;
    first_link_failed = first;
    middle_link_failed = middle;
    mean_attempts_ma =
      (if !deliveries = 0 then 0.0
       else float_of_int !attempts_total /. float_of_int !deliveries);
  }

let run_default ?(params = Gen.default_params) ?(topology_seed = 42) () =
  let small = { params with Gen.n_transit = 100; Gen.n_stub = 400 } in
  let g = Gen.graph (Gen.generate ~params:small ~seed:topology_seed ()) in
  (g, run g)

let pp fmt r =
  Format.fprintf fmt
    "# Resilience (extension): failover survival over %d pairs@." r.pairs;
  Format.fprintf fmt "%-24s %-10s %s@." "failure" "GRC-only" "with MAs";
  let row label s =
    Format.fprintf fmt "%-24s %-10.3f %.3f@." label s.grc s.ma
  in
  row "none (baseline)" r.baseline_connectivity;
  row "primary first link" r.first_link_failed;
  row "primary middle link" r.middle_link_failed;
  Format.fprintf fmt "mean paths tried per MA delivery: %.2f@."
    r.mean_attempts_ma
