(** Experiments E2/E3/E6 — Figs. 3 and 4 and the §VI-A aggregate
    statistics: path-diversity gains from mutuality-based agreements.

    On a topology (synthetic by default, or a loaded CAIDA graph), sample
    source ASes and count, per agreement-conclusion scenario, the length-3
    paths available to each source and the destinations reachable over
    them. *)

open Pan_topology
open Pan_numerics

type config = {
  params : Gen.params;  (** synthetic topology shape *)
  topology_seed : int;
  sample_seed : int;
  sample_size : int;  (** the paper samples 500 ASes *)
  top_ns : int list;  (** "MA* (Top n)" scenarios (default [1; 2; 5]) *)
}

val default_config : config

type per_as = {
  asn : Asn.t;
  paths : (Path_enum.scenario * int) list;  (** total length-3 paths *)
  destinations : (Path_enum.scenario * int) list;
}

type result = {
  graph : Graph.t;
  scenarios : Path_enum.scenario list;
  sampled : per_as list;
}

val scenarios_of : config -> Path_enum.scenario list
(** GRC, MA, MA*, and the configured Top-n scenarios. *)

val analyze :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?sample_size:int ->
  ?seed:int ->
  ?top_ns:int list ->
  Graph.t ->
  result
(** Run the analysis on an existing graph (e.g. parsed CAIDA data).  The
    per-AS enumeration runs on [pool]; AS sampling stays on the sequential
    generator, so the result is bit-identical for any pool size.
    [retries]/[deadline] supervise the enumeration chunks as in
    {!Pan_runner.Task.map}. *)

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  config ->
  result
(** Generate the synthetic topology and {!analyze} it. *)

val paths_cdf : result -> Path_enum.scenario -> Stats.cdf
(** The Fig. 3 distribution for one scenario. *)

val destinations_cdf : result -> Path_enum.scenario -> Stats.cdf
(** The Fig. 4 distribution for one scenario. *)

type aggregate = {
  avg_additional_paths : float;
  max_additional_paths : int;
  avg_additional_destinations : float;
  max_additional_destinations : int;
}

val aggregate_stats : result -> aggregate
(** §VI-A: averages and maxima of MA-additional paths and destinations
    over the sampled ASes (paper: 22 891 / 196 796 paths and
    2 181 / 7 144 destinations on the CAIDA graph). *)

val pp_result : Format.formatter -> result -> unit
(** Fig. 3 and Fig. 4 as CDF tables (one row per decile). *)
