open Pan_topology

let run ?pool ?retries ?deadline ?(sample_size = 500) ?(seed = 7)
    ?(geo_seed = 11) g =
  (* One freeze serves both the geo embedding and the pair analysis. *)
  let c = Compact.freeze g in
  let geo =
    Pan_obs.Obs.with_span "fig5/geo_model" (fun () ->
        Geo.of_compact ~seed:geo_seed c)
  in
  Pair_analysis.analyze ?pool ?retries ?deadline ~compact:c ~obs_prefix:"fig5"
    ~sample_size ~seed ~graph:g ~metric:(Geo.path3_geodistance geo)
    ~better:`Lower ()

let run_default ?(params = Gen.default_params) ?(topology_seed = 42) () =
  let g = Gen.graph (Gen.generate ~params ~seed:topology_seed ()) in
  (g, run g)

let pp fmt result =
  Pair_analysis.pp_counts ~label:"Fig.5a geodistance" fmt result;
  Pair_analysis.pp_improvements ~label:"Fig.5b geodistance reduction" fmt
    result
