open Pan_topology
open Pan_numerics
open Pan_econ

type report = {
  scenarios : int;
  cash_concluded : int;
  flow_volume_concluded : int;
  cash_only : int;
  mean_cash_joint : float;
  mean_flow_volume_joint : float;
}

let run ?(scenarios = 100) ?(seed = 3) () =
  let g = Gen.fig1 () in
  let d = Gen.fig1_asn 'D' and e = Gen.fig1_asn 'E' in
  let rng = Rng.create seed in
  let cash_n = ref 0
  and fv_n = ref 0
  and cash_only_n = ref 0
  and cash_joint = ref 0.0
  and fv_joint = ref 0.0 in
  for _ = 1 to scenarios do
    let scenario = Scenario_gen.random_scenario rng g ~x:d ~y:e in
    let c = Negotiation.compare_methods ~starts_per_dim:2 scenario in
    if c.Negotiation.cash.Cash_opt.concluded then begin
      incr cash_n;
      cash_joint := !cash_joint +. Negotiation.cash_joint c
    end;
    if c.Negotiation.flow_volume.Flow_volume_opt.concluded then begin
      incr fv_n;
      fv_joint := !fv_joint +. Negotiation.flow_volume_joint c
    end;
    if Negotiation.cash_only c then incr cash_only_n
  done;
  {
    scenarios;
    cash_concluded = !cash_n;
    flow_volume_concluded = !fv_n;
    cash_only = !cash_only_n;
    mean_cash_joint =
      (if !cash_n = 0 then 0.0 else !cash_joint /. float_of_int !cash_n);
    mean_flow_volume_joint =
      (if !fv_n = 0 then 0.0 else !fv_joint /. float_of_int !fv_n);
  }

let pp fmt r =
  Format.fprintf fmt
    "# §IV-C method comparison over %d random scenarios@.\
     cash concluded:        %d@.\
     flow-volume concluded: %d@.\
     cash-only conclusions: %d@.\
     mean joint utility (cash):        %.3f@.\
     mean joint utility (flow-volume): %.3f@."
    r.scenarios r.cash_concluded r.flow_volume_concluded r.cash_only
    r.mean_cash_joint r.mean_flow_volume_joint
