open Pan_topology
open Pan_numerics
open Pan_econ
module Obs = Pan_obs.Obs

type report = {
  scenarios : int;
  cash_concluded : int;
  flow_volume_concluded : int;
  cash_only : int;
  mean_cash_joint : float;
  mean_flow_volume_joint : float;
}

(* One scenario's contribution, folded in scenario order below so float
   sums are reproducible for any pool size. *)
type outcome = {
  cash_joint : float option;
  fv_joint : float option;
  is_cash_only : bool;
}

let run ?pool ?retries ?deadline ?(chunk = 4) ?(scenarios = 100) ?(seed = 3)
    ?kernel () =
  Obs.with_span "methods/run" @@ fun () ->
  let g = Gen.fig1 () in
  let d = Gen.fig1_asn 'D' and e = Gen.fig1_asn 'E' in
  let rng = Rng.create seed in
  let cash_n, fv_n, cash_only_n, cash_joint, fv_joint =
    Pan_runner.Task.map_reduce ?pool ?retries ?deadline ~rng ~n:scenarios ~chunk
      ~f:(fun crng _ ->
        let scenario = Scenario_gen.random_scenario crng g ~x:d ~y:e in
        let c =
          Negotiation.compare_methods ?kernel ~starts_per_dim:2 scenario
        in
        let outcome =
          {
            cash_joint =
              (if c.Negotiation.cash.Cash_opt.concluded then
                 Some (Negotiation.cash_joint c)
               else None);
            fv_joint =
              (if c.Negotiation.flow_volume.Flow_volume_opt.concluded then
                 Some (Negotiation.flow_volume_joint c)
               else None);
            is_cash_only = Negotiation.cash_only c;
          }
        in
        Obs.incr "methods.scenarios";
        if outcome.cash_joint <> None then Obs.incr "methods.cash_concluded";
        if outcome.fv_joint <> None then
          Obs.incr "methods.flow_volume_concluded";
        if outcome.is_cash_only then Obs.incr "methods.cash_only";
        outcome)
      ~combine:(fun (cn, fn, on, cj, fj) o ->
        ( (match o.cash_joint with Some _ -> cn + 1 | None -> cn),
          (match o.fv_joint with Some _ -> fn + 1 | None -> fn),
          (if o.is_cash_only then on + 1 else on),
          (match o.cash_joint with Some v -> cj +. v | None -> cj),
          match o.fv_joint with Some v -> fj +. v | None -> fj ))
      ~init:(0, 0, 0, 0.0, 0.0) ()
  in
  {
    scenarios;
    cash_concluded = cash_n;
    flow_volume_concluded = fv_n;
    cash_only = cash_only_n;
    mean_cash_joint =
      (if cash_n = 0 then 0.0 else cash_joint /. float_of_int cash_n);
    mean_flow_volume_joint =
      (if fv_n = 0 then 0.0 else fv_joint /. float_of_int fv_n);
  }

let pp fmt r =
  Format.fprintf fmt
    "# §IV-C method comparison over %d random scenarios@.\
     cash concluded:        %d@.\
     flow-volume concluded: %d@.\
     cash-only conclusions: %d@.\
     mean joint utility (cash):        %.3f@.\
     mean joint utility (flow-volume): %.3f@."
    r.scenarios r.cash_concluded r.flow_volume_concluded r.cash_only
    r.mean_cash_joint r.mean_flow_volume_joint
