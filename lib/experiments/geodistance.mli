(** Experiment E4 — Fig. 5: geodistance of MA-added paths.

    AS geolocations come from the synthetic embedding of
    {!Pan_topology.Geo} (standing in for prefix2as + GeoLite2 + the CAIDA
    geographic dataset); path geodistance follows the paper's
    [d(A1,l12) + d(l12,l23) + d(l23,A3)] decomposition. *)

open Pan_topology

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?sample_size:int ->
  ?seed:int ->
  ?geo_seed:int ->
  Graph.t ->
  Pair_analysis.result
(** Analyze all pairs with a GRC length-3 path among [sample_size]
    sampled sources (defaults 500 / seed 7 / geo_seed 11).  Sources run
    on [pool]; the result is bit-identical for any pool size.
    [retries]/[deadline] supervise as in {!Pair_analysis.analyze}. *)

val run_default : ?params:Gen.params -> ?topology_seed:int -> unit ->
  Graph.t * Pair_analysis.result
(** Generate the default synthetic topology and run. *)

val pp : Format.formatter -> Pair_analysis.result -> unit
(** Fig. 5a and Fig. 5b tables. *)
