(** Experiment E7 — the §II stability comparison.

    Runs the SPVP (BGP) dynamics on the classic gadgets and on their Fig. 1
    incarnations, and contrasts them with PAN forwarding over the same
    GRC-violating paths: BGP is non-deterministic on DISAGREE/WEDGIE and
    diverges on BAD GADGET, while the PAN data plane forwards along every
    authorized embedded path without any convergence requirement. *)

open Pan_routing
open Pan_topology

type bgp_case = {
  name : string;
  outcome : Bgp.outcome;  (** round-robin SPVP from the empty assignment *)
  stable_solutions : int;
  deterministic : bool;
      (** do 20 random schedules all converge to the same assignment? *)
  dispute_wheel : bool;
      (** does the configuration contain a dispute wheel? (its absence
          certifies safety) *)
}

type surprise_case = {
  before : Bgp.outcome;  (** the benign configuration converges *)
  before_wheel : bool;
  after : Bgp.outcome;  (** after failing link (4, 0): BAD GADGET *)
  after_stable_solutions : int;
}

type pan_case = {
  path : Asn.t list;  (** a GRC-violating path on Fig. 1 *)
  delivered : bool;  (** did the PAN data plane deliver along it? *)
  loop_free : bool;  (** trace visited no AS twice *)
}

type async_case = {
  async_name : string;
  fifo : Bgp_async.outcome;  (** deterministic global-FIFO delivery *)
  livelock_found : bool;
      (** did some random delivery schedule fail to quiesce? *)
}

type report = {
  bgp : bgp_case list;
  pan : pan_case list;
  surprise : surprise_case;
      (** §II's "benign topologies may reduce to BAD GADGET when a link
          fails", exhibited concretely *)
  async : async_case list;
      (** the same instances under message-passing SPVP, where DISAGREE
          can additionally livelock outright *)
}

val run : ?seed:int -> unit -> report
val pp : Format.formatter -> report -> unit
