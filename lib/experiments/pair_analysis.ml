open Pan_topology
open Pan_numerics
module Obs = Pan_obs.Obs

type pair_counts = {
  below_max : int;
  below_median : int;
  below_min : int;
  ma_paths : int;
}

type result = { pairs : pair_counts list; improvements : float list }

let analyze ?pool ?retries ?deadline ?compact ?(obs_prefix = "pairs")
    ?(sample_size = 500) ?(seed = 7) ~graph:g ~metric ~better () =
  Obs.with_span (obs_prefix ^ "/analyze") @@ fun () ->
  (* Callers that already hold a frozen view (e.g. to build the metric
     model) pass it in; otherwise freeze here.  Either way the view is
     shared read-only by every pool domain. *)
  let c = match compact with Some c -> c | None -> Compact.freeze g in
  let rng = Rng.create seed in
  let all = Compact.asns c in
  let sample =
    if Array.length all <= sample_size then all
    else Rng.sample_without_replacement rng sample_size all
  in
  (* Orient all comparisons so that "improvement" means a smaller score. *)
  let score src mid dst =
    let v = metric src mid dst in
    match better with `Lower -> v | `Higher -> -.v
  in
  (* Per-source analysis is pure, so sources run on the pool; the per-src
     lists are concatenated in sample order below, reproducing exactly the
     lists the previous sequential accumulation built.  Index order equals
     ascending ASN order, so iterating destinations and mids by index
     reproduces the legacy Asn.Map / Asn.Set accumulation order. *)
  let analyze_src src =
    Obs.incr (obs_prefix ^ ".sources");
    let si = Compact.index_of_exn c src in
    let pairs = ref [] in
    let improvements = ref [] in
    let grc = Path_enum_compact.by_destination (Path_enum_compact.grc c si) in
    let ma =
      Path_enum_compact.by_destination
        (Path_enum_compact.additional_paths c Ma_all si)
    in
    Path_enum_compact.iter_sets
      (fun dsti grc_mids ->
        let dst = Compact.id c dsti in
        let grc_scores =
          let a = Array.make (Bitset.cardinal grc_mids) 0.0 in
          let k = ref 0 in
          Bitset.iter
            (fun mi ->
              a.(!k) <- score src (Compact.id c mi) dst;
              incr k)
            grc_mids;
          a
        in
        let g_min, g_max = Stats.min_max grc_scores in
        let g_med = Stats.median grc_scores in
        let ma_scores =
          match Path_enum_compact.find ma dsti with
          | Some mids ->
              List.rev
                (Bitset.fold
                   (fun mi acc -> score src (Compact.id c mi) dst :: acc)
                   mids [])
          | None -> []
        in
        let count pred = List.length (List.filter pred ma_scores) in
        let counts =
          {
            below_max = count (fun s -> s < g_max);
            below_median = count (fun s -> s < g_med);
            below_min = count (fun s -> s < g_min);
            ma_paths = List.length ma_scores;
          }
        in
        pairs := counts :: !pairs;
        Obs.incr (obs_prefix ^ ".pairs");
        Obs.incr ~by:counts.ma_paths (obs_prefix ^ ".ma_paths");
        match ma_scores with
        | [] -> ()
        | _ ->
            let best_ma = List.fold_left Float.min infinity ma_scores in
            if best_ma < g_min then begin
              let improvement =
                match better with
                | `Lower -> 1.0 -. (best_ma /. g_min)
                | `Higher ->
                    (* scores are negated capacities *)
                    (best_ma /. g_min) -. 1.0
              in
              Obs.incr (obs_prefix ^ ".improved");
              improvements := improvement :: !improvements
            end)
      grc;
    (!pairs, !improvements)
  in
  let per_src =
    Pan_runner.Task.map ?pool ?retries ?deadline ~chunk:4
      ~n:(Array.length sample)
      ~f:(fun i -> analyze_src sample.(i))
      ()
  in
  let pairs, improvements =
    Array.fold_left
      (fun (ps, is) (lp, li) -> (lp @ ps, li @ is))
      ([], []) per_src
  in
  { pairs; improvements }

let fraction_pairs_with result ~at_least select =
  let arr = Array.of_list result.pairs in
  Stats.fraction_where (fun pc -> select pc >= at_least) arr

let improvement_cdf result =
  match result.improvements with
  | [] -> None
  | l -> Some (Stats.ecdf (Array.of_list l))

let pp_counts ~label fmt result =
  Format.fprintf fmt "# %s: fraction of AS pairs with >= n better MA paths@."
    label;
  Format.fprintf fmt "%-4s %-12s %-12s %-12s %-12s@." "n" "vs_max"
    "vs_median" "vs_min" "any_MA_path";
  List.iter
    (fun n ->
      Format.fprintf fmt "%-4d %-12.3f %-12.3f %-12.3f %-12.3f@." n
        (fraction_pairs_with result ~at_least:n (fun p -> p.below_max))
        (fraction_pairs_with result ~at_least:n (fun p -> p.below_median))
        (fraction_pairs_with result ~at_least:n (fun p -> p.below_min))
        (fraction_pairs_with result ~at_least:n (fun p -> p.ma_paths)))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let pp_improvements ~label fmt result =
  match result.improvements with
  | [] -> Format.fprintf fmt "# %s: no pair improves@." label
  | l ->
      let arr = Array.of_list l in
      Format.fprintf fmt
        "# %s: relative improvement among improving pairs (%d pairs)@." label
        (Array.length arr);
      Format.fprintf fmt "%-12s %s@." "percentile" "improvement";
      List.iter
        (fun p ->
          Format.fprintf fmt "p%-11d %.3f@." p
            (Stats.percentile arr (float_of_int p)))
        [ 10; 25; 50; 75; 90 ]
