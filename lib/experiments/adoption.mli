(** Extension experiment E11 — economically concluded MAs.

    The paper's §VI evaluates the extreme case where {e all} possible
    mutuality-based agreements are concluded, noting that automated
    negotiation (§V) would have to make each one economically viable for
    both parties.  This experiment closes that loop: every peering pair
    negotiates its MA with the cash-compensation method (Eq. 10/11) over
    a topology-derived scenario — business profiles from the graph with
    per-AS price variation, demand forecasts proportional to destination
    degree — and the path-diversity analysis is then re-run with only the
    {e concluded} agreements in force. *)

open Pan_topology

type negotiation = {
  x : Asn.t;
  y : Asn.t;
  joint_utility : float;
  concluded : bool;
}

type per_as = {
  asn : Asn.t;
  grc_paths : int;
  economic_paths : int;  (** length-3 paths with concluded MAs only *)
  all_ma_paths : int;  (** the paper's extreme case, for comparison *)
  grc_dests : int;
  economic_dests : int;
  all_ma_dests : int;
}

type result = {
  pairs_evaluated : int;
  concluded : (Asn.t * Asn.t) list;
  adoption_rate : float;
  mean_joint_utility : float;  (** over concluded agreements *)
  sampled : per_as list;
}

val negotiate_pair :
  seed:int -> Graph.t -> Asn.t -> Asn.t -> negotiation
(** Negotiate one MA: deterministic given the seed and the pair. *)

val run :
  ?sample_size:int -> ?max_demands:int -> ?seed:int -> Graph.t -> result
(** Negotiate every peering pair of the graph, then analyze
    [sample_size] (default 300) sampled ASes. [max_demands] (default 3)
    bounds the forecast segments per agreement side. *)

val pp : Format.formatter -> result -> unit
