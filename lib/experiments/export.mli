(** CSV export of experiment results, for replotting the paper's figures
    with external tools. *)

open Pan_topology

val write_csv : path:string -> header:string list -> string list list -> unit
(** Write rows (comma-separated, values escaped if they contain commas or
    quotes) under the given header. *)

val fig2 : path:string -> Fig2_pod.series list -> unit
(** Columns: series, w, min_pod, mean_pod, mean_equilibrium_choices. *)

val diversity : paths_csv:string -> dests_csv:string -> Diversity.result -> unit
(** Per-AS rows: scenario, asn, value — one file for Fig. 3 (paths), one
    for Fig. 4 (destinations). *)

val pair_metric : counts_csv:string -> improvements_csv:string ->
  Pair_analysis.result -> unit
(** Fig. 5a/6a rows (per pair: below_max, below_median, below_min,
    ma_paths) and Fig. 5b/6b rows (one improvement per line). *)

val resilience : path:string -> Resilience.result -> unit

val chained : path:string -> Chained_exp.result -> unit

val topology : path:string -> Graph.t -> unit
(** The graph in the CAIDA as-rel2 format (not CSV), so external tooling
    and real-data pipelines can consume it. *)

val adoption : path:string -> Adoption.result -> unit

val te : path:string -> Te_exp.result -> unit

val fragility : path:string -> Fragility_exp.result -> unit
