(** Extension experiment E9 — failure resilience of PAN multipath, with
    and without mutuality-based agreements.

    Not a figure of the paper, but a direct quantification of its §I
    motivation: MAs enlarge the authorized path set, so end-host failover
    keeps more source–destination pairs connected when links on their
    primary path fail.

    For every sampled pair we compute the primary (shortest authorized)
    GRC path, then fail (a) its first link — typically the source's access
    link — and (b) its middle link, and measure whether failover still
    delivers, under GRC-only authorization and with every MA concluded. *)

open Pan_topology

type survival = {
  grc : float;  (** fraction of pairs that survive without MAs *)
  ma : float;  (** fraction that survive with all MAs concluded *)
}

type result = {
  pairs : int;  (** pairs with a primary path, i.e. actually measured *)
  baseline_connectivity : survival;  (** before any failure *)
  first_link_failed : survival;
  middle_link_failed : survival;
  mean_attempts_ma : float;
      (** mean paths tried per successful MA delivery across the failure
          trials *)
}

val run : ?pairs:int -> ?seed:int -> Graph.t -> result
(** [pairs] (default 100) sampled source–destination pairs. *)

val run_default :
  ?params:Gen.params -> ?topology_seed:int -> unit -> Graph.t * result

val pp : Format.formatter -> result -> unit
