open Pan_topology

let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let write_csv ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let line fields =
        output_string oc (String.concat "," (List.map escape fields));
        output_char oc '\n'
      in
      line header;
      List.iter line rows)

let fig2 ~path series =
  let rows =
    List.concat_map
      (fun (s : Fig2_pod.series) ->
        List.map
          (fun (p : Fig2_pod.point) ->
            [
              s.Fig2_pod.label;
              string_of_int p.Fig2_pod.w;
              Printf.sprintf "%.6f" p.Fig2_pod.min_pod;
              Printf.sprintf "%.6f" p.Fig2_pod.mean_pod;
              Printf.sprintf "%.3f" p.Fig2_pod.mean_equilibrium_choices;
            ])
          s.Fig2_pod.points)
      series
  in
  write_csv ~path
    ~header:[ "series"; "w"; "min_pod"; "mean_pod"; "mean_eq_choices" ]
    rows

let diversity ~paths_csv ~dests_csv (r : Diversity.result) =
  let rows extract =
    List.concat_map
      (fun (pa : Diversity.per_as) ->
        List.map
          (fun (scenario, value) ->
            [
              Path_enum.scenario_label scenario;
              string_of_int (Asn.to_int pa.Diversity.asn);
              string_of_int value;
            ])
          (extract pa))
      r.Diversity.sampled
  in
  write_csv ~path:paths_csv
    ~header:[ "scenario"; "asn"; "paths" ]
    (rows (fun pa -> pa.Diversity.paths));
  write_csv ~path:dests_csv
    ~header:[ "scenario"; "asn"; "destinations" ]
    (rows (fun pa -> pa.Diversity.destinations))

let pair_metric ~counts_csv ~improvements_csv (r : Pair_analysis.result) =
  write_csv ~path:counts_csv
    ~header:[ "below_max"; "below_median"; "below_min"; "ma_paths" ]
    (List.map
       (fun (pc : Pair_analysis.pair_counts) ->
         [
           string_of_int pc.Pair_analysis.below_max;
           string_of_int pc.Pair_analysis.below_median;
           string_of_int pc.Pair_analysis.below_min;
           string_of_int pc.Pair_analysis.ma_paths;
         ])
       r.Pair_analysis.pairs);
  write_csv ~path:improvements_csv
    ~header:[ "relative_improvement" ]
    (List.map
       (fun i -> [ Printf.sprintf "%.6f" i ])
       r.Pair_analysis.improvements)

let resilience ~path (r : Resilience.result) =
  let row label (s : Resilience.survival) =
    [
      label;
      Printf.sprintf "%.4f" s.Resilience.grc;
      Printf.sprintf "%.4f" s.Resilience.ma;
    ]
  in
  write_csv ~path
    ~header:[ "failure"; "survival_grc"; "survival_ma" ]
    [
      row "baseline" r.Resilience.baseline_connectivity;
      row "first_link" r.Resilience.first_link_failed;
      row "middle_link" r.Resilience.middle_link_failed;
    ]

let chained ~path (r : Chained_exp.result) =
  write_csv ~path
    ~header:
      [ "asn"; "ma3_paths"; "chained4_paths"; "ma3_new_dests";
        "chained4_extra_dests" ]
    (List.map
       (fun (pa : Chained_exp.per_as) ->
         [
           string_of_int (Asn.to_int pa.Chained_exp.asn);
           string_of_int pa.Chained_exp.ma3_paths;
           string_of_int pa.Chained_exp.chained4_paths;
           string_of_int pa.Chained_exp.ma3_new_dests;
           string_of_int pa.Chained_exp.chained4_extra_dests;
         ])
       r.Chained_exp.sampled)

let topology ~path g = Caida.save path g

let adoption ~path (r : Adoption.result) =
  write_csv ~path
    ~header:
      [ "asn"; "grc_paths"; "economic_paths"; "all_ma_paths"; "grc_dests";
        "economic_dests"; "all_ma_dests" ]
    (List.map
       (fun (pa : Adoption.per_as) ->
         [
           string_of_int (Asn.to_int pa.Adoption.asn);
           string_of_int pa.Adoption.grc_paths;
           string_of_int pa.Adoption.economic_paths;
           string_of_int pa.Adoption.all_ma_paths;
           string_of_int pa.Adoption.grc_dests;
           string_of_int pa.Adoption.economic_dests;
           string_of_int pa.Adoption.all_ma_dests;
         ])
       r.Adoption.sampled)

let te ~path (r : Te_exp.result) =
  write_csv ~path
    ~header:[ "regime"; "mean"; "p95"; "max"; "overloaded"; "unrouted" ]
    (List.map
       (fun (reg : Te_exp.regime) ->
         [
           reg.Te_exp.label;
           Printf.sprintf "%.4f" reg.Te_exp.mean_utilization;
           Printf.sprintf "%.4f" reg.Te_exp.p95_utilization;
           Printf.sprintf "%.4f" reg.Te_exp.max_utilization;
           string_of_int reg.Te_exp.overloaded_links;
           string_of_int reg.Te_exp.unrouted;
         ])
       r.Te_exp.regimes)

let fragility ~path (r : Fragility_exp.result) =
  write_csv ~path
    ~header:
      [ "density"; "cases"; "converged"; "oscillated"; "nondeterministic";
        "dispute_wheel" ]
    (List.map
       (fun (p : Fragility_exp.point) ->
         [
           Printf.sprintf "%.2f" p.Fragility_exp.violation_density;
           string_of_int p.Fragility_exp.instances;
           string_of_int p.Fragility_exp.converged;
           string_of_int p.Fragility_exp.oscillated;
           string_of_int p.Fragility_exp.nondeterministic;
           string_of_int p.Fragility_exp.with_dispute_wheel;
         ])
       r.Fragility_exp.points)
