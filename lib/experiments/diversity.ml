open Pan_topology
open Pan_numerics
module Obs = Pan_obs.Obs

type config = {
  params : Gen.params;
  topology_seed : int;
  sample_seed : int;
  sample_size : int;
  top_ns : int list;
}

let default_config =
  {
    params = Gen.default_params;
    topology_seed = 42;
    sample_seed = 7;
    sample_size = 500;
    top_ns = [ 1; 2; 5 ];
  }

type per_as = {
  asn : Asn.t;
  paths : (Path_enum.scenario * int) list;
  destinations : (Path_enum.scenario * int) list;
}

type result = {
  graph : Graph.t;
  scenarios : Path_enum.scenario list;
  sampled : per_as list;
}

let scenarios_for top_ns =
  Path_enum.Grc
  :: Path_enum.Ma_all
  :: Path_enum.Ma_direct_only
  :: List.map (fun n -> Path_enum.Ma_top n) top_ns

let scenarios_of config = scenarios_for config.top_ns

let analyze ?pool ?retries ?deadline ?(sample_size = 500) ?(seed = 7)
    ?(top_ns = [ 1; 2; 5 ]) g =
  Obs.with_span "diversity/analyze" @@ fun () ->
  let scenarios = scenarios_for top_ns in
  (* Freeze once; the read-only view is shared by every pool domain. *)
  let c = Compact.freeze g in
  let rng = Rng.create seed in
  let all = Compact.asns c in
  let sample =
    Obs.with_span "diversity/sample" (fun () ->
        if Array.length all <= sample_size then all
        else Rng.sample_without_replacement rng sample_size all)
  in
  let analyze_as asn =
    Obs.incr "diversity.sources";
    let src = Compact.index_of_exn c asn in
    let per_scenario =
      List.map
        (fun s -> (s, Path_enum_compact.scenario_paths c s src))
        scenarios
    in
    let count label s n =
      Obs.incr ~by:n
        ("diversity." ^ label ^ "." ^ Path_enum.scenario_label s);
      n
    in
    {
      asn;
      paths =
        List.map
          (fun (s, m) ->
            (s, count "paths" s (Path_enum_compact.total_count m)))
          per_scenario;
      destinations =
        List.map
          (fun (s, m) ->
            ( s,
              count "dests" s
                (Bitset.cardinal (Path_enum_compact.dest_set m)) ))
          per_scenario;
    }
  in
  (* Sampling above consumes the sequential rng; the per-AS analysis is
     pure, so running it on the pool leaves the figures bit-identical. *)
  let sampled =
    Obs.with_span "diversity/enumerate" (fun () ->
        Pan_runner.Task.map ?pool ?retries ?deadline ~chunk:8
          ~n:(Array.length sample)
          ~f:(fun i -> analyze_as sample.(i))
          ())
  in
  { graph = g; scenarios; sampled = Array.to_list sampled }

let run ?pool ?retries ?deadline config =
  let gen = Gen.generate ~params:config.params ~seed:config.topology_seed () in
  analyze ?pool ?retries ?deadline ~sample_size:config.sample_size
    ~seed:config.sample_seed ~top_ns:config.top_ns (Gen.graph gen)

let values_for result extract scenario =
  Array.of_list
    (List.map
       (fun pa ->
         match List.assoc_opt scenario (extract pa) with
         | Some n -> float_of_int n
         | None -> invalid_arg "Diversity: unknown scenario")
       result.sampled)

let paths_cdf result scenario =
  Stats.ecdf (values_for result (fun pa -> pa.paths) scenario)

let destinations_cdf result scenario =
  Stats.ecdf (values_for result (fun pa -> pa.destinations) scenario)

type aggregate = {
  avg_additional_paths : float;
  max_additional_paths : int;
  avg_additional_destinations : float;
  max_additional_destinations : int;
}

let aggregate_stats result =
  let additional pa extract =
    let get s =
      match List.assoc_opt s (extract pa) with
      | Some n -> n
      | None -> invalid_arg "Diversity.aggregate_stats: missing scenario"
    in
    get Path_enum.Ma_all - get Path_enum.Grc
  in
  let paths =
    List.map (fun pa -> additional pa (fun p -> p.paths)) result.sampled
  in
  let dests =
    List.map (fun pa -> additional pa (fun p -> p.destinations)) result.sampled
  in
  let avg l =
    List.fold_left ( + ) 0 l |> float_of_int |> fun s ->
    s /. float_of_int (Stdlib.max 1 (List.length l))
  in
  {
    avg_additional_paths = avg paths;
    max_additional_paths = List.fold_left Stdlib.max 0 paths;
    avg_additional_destinations = avg dests;
    max_additional_destinations = List.fold_left Stdlib.max 0 dests;
  }

let pp_cdf_table fmt title result extract =
  let percentiles = [ 10; 25; 50; 75; 90; 99 ] in
  Format.fprintf fmt "# %s (value at percentile, per scenario)@." title;
  Format.fprintf fmt "%-14s" "scenario";
  List.iter (fun p -> Format.fprintf fmt " p%-8d" p) percentiles;
  Format.fprintf fmt "@.";
  List.iter
    (fun s ->
      let values = values_for result extract s in
      Format.fprintf fmt "%-14s" (Path_enum.scenario_label s);
      List.iter
        (fun p ->
          Format.fprintf fmt " %-9.0f"
            (Stats.percentile values (float_of_int p)))
        percentiles;
      Format.fprintf fmt "@.")
    result.scenarios

let pp_result fmt result =
  pp_cdf_table fmt "Fig.3 length-3 paths" result (fun pa -> pa.paths);
  pp_cdf_table fmt "Fig.4 nearby destinations" result (fun pa ->
      pa.destinations);
  let agg = aggregate_stats result in
  Format.fprintf fmt
    "# §VI-A aggregates: additional paths avg=%.0f max=%d; additional \
     destinations avg=%.0f max=%d@."
    agg.avg_additional_paths agg.max_additional_paths
    agg.avg_additional_destinations agg.max_additional_destinations
