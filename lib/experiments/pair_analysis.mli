(** Shared per-AS-pair machinery for the geodistance (Fig. 5) and bandwidth
    (Fig. 6) analyses.

    Both experiments score each (source, destination) pair connected by at
    least one GRC length-3 path: they compare the metric of every MA-added
    path against the max / median / min metric of the pair's GRC paths, and
    measure the relative improvement of the best MA path over the best GRC
    path. *)

open Pan_topology
open Pan_numerics

type pair_counts = {
  below_max : int;
      (** MA paths strictly better than the worst GRC path *)
  below_median : int;
  below_min : int;  (** MA paths strictly better than the best GRC path *)
  ma_paths : int;  (** all MA paths of the pair *)
}

type result = {
  pairs : pair_counts list;  (** one entry per analyzed AS pair *)
  improvements : float list;
      (** relative improvement of the best MA path for pairs whose best
          path improves (e.g. 0.24 = 24% geodistance reduction) *)
}

val analyze :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?compact:Compact.t ->
  ?obs_prefix:string ->
  ?sample_size:int ->
  ?seed:int ->
  graph:Graph.t ->
  metric:(Asn.t -> Asn.t -> Asn.t -> float) ->
  better:[ `Lower | `Higher ] ->
  unit ->
  result
(** [metric src mid dst] scores a length-3 path; [better] says whether
    lower (geodistance) or higher (bandwidth) is preferable.  [metric]
    must be pure: source ASes are analyzed on [pool], and the result is
    bit-identical for any pool size.  [retries]/[deadline] supervise the
    source chunks as in {!Pan_runner.Task.map}.

    Path enumeration runs on the frozen {!Compact} view.  Pass [compact]
    (which must be [Compact.freeze graph], or a view of an equal graph)
    to share a view the caller already built — e.g. the one its metric
    model was constructed from — instead of re-freezing.

    When {!Pan_obs.Obs} is configured, the analysis records the counters
    [<obs_prefix>.sources], [.pairs], [.ma_paths] and [.improved]
    (default prefix ["pairs"]; Fig. 5 uses ["fig5"], Fig. 6 ["fig6"])
    under a [<obs_prefix>/analyze] span. *)

val fraction_pairs_with : result -> at_least:int -> (pair_counts -> int) -> float
(** Fraction of pairs whose selected counter is at least [at_least] — the
    way the paper reads Fig. 5a/6a ("around 50% of AS pairs gain at least
    1 path below the minimum"). *)

val improvement_cdf : result -> Stats.cdf option
(** CDF over relevant pairs of the relative improvement (Fig. 5b/6b);
    [None] when no pair improves. *)

val pp_counts :
  label:string -> Format.formatter -> result -> unit
(** The Fig. 5a/6a table: fractions of pairs with ≥ n paths satisfying
    each comparison condition, for n in 1..10. *)

val pp_improvements : label:string -> Format.formatter -> result -> unit
(** The Fig. 5b/6b table: percentiles of relative improvement. *)
