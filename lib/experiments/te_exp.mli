(** Extension experiment E12 — traffic engineering with MA multipath.

    Quantifies the paper's §I capacity argument: a fixed gravity-model
    demand set is placed on the network under four regimes — GRC paths
    with single-path routing, GRC paths with multipath, all-MA paths with
    multipath, and all-MA paths with congestion-aware placement — and the
    resulting link-utilization profile is compared.  More authorized
    paths means more room to steer around hot links. *)

open Pan_topology

type regime = {
  label : string;
  mean_utilization : float;
  p95_utilization : float;
  max_utilization : float;
  overloaded_links : int;  (** utilization > 1 *)
  unrouted : int;  (** demands with no authorized path *)
}

type result = { demands : int; regimes : regime list }

val run :
  ?demands:int -> ?k:int -> ?seed:int -> ?volume_scale:float -> Graph.t ->
  result
(** [demands] random source–destination demands (default 300) with
    gravity volumes scaled by [volume_scale] (default 10.0); multipath
    regimes use [k] paths (default 3). *)

val run_default :
  ?params:Gen.params -> ?topology_seed:int -> unit -> Graph.t * result

val pp : Format.formatter -> result -> unit
