(** Experiment E1 — Fig. 2: Price of Dishonesty vs. choice-set size.

    For each choice-set cardinality [W], generate [trials] random choice-set
    combinations for both parties, compute the equilibrium of each induced
    game and record the minimum and mean PoD, plus the mean number of
    equilibrium choices.  The paper runs the experiment for the two uniform
    utility distributions [U⁽¹⁾ = Unif\[-1,1\]²] and
    [U⁽²⁾ = Unif\[-½,1\]²]. *)

open Pan_numerics

type point = {
  w : int;  (** choice-set cardinality [W_X = W_Y] (cancel option included) *)
  min_pod : float;
  mean_pod : float;
  mean_equilibrium_choices : float;
  all_converged : bool;
}

type series = { label : string; points : point list }

val u1 : Distribution.t
(** Marginal of [U⁽¹⁾]: uniform on [\[-1, 1\]]. *)

val u2 : Distribution.t
(** Marginal of [U⁽²⁾]: uniform on [\[-1/2, 1\]]. *)

val run :
  ?construction:Pan_bosco.Service.construction ->
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?ws:int list ->
  ?trials:int ->
  seed:int ->
  label:string ->
  Distribution.t ->
  series
(** Sweep over [ws] (default [2; 5; 10; 20; 35; 50; 75; 100]) with [trials]
    choice-set combinations each (default 200, the paper's setting); both
    parties share the given marginal distribution.  Trials run on [pool]
    (see {!Pan_bosco.Service.trials}, also for the [retries]/[deadline]
    supervision semantics); the series is identical for any pool size. *)

val run_both :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?ws:int list ->
  ?trials:int ->
  seed:int ->
  unit ->
  series list
(** The two series of Fig. 2. *)

val pp_series : Format.formatter -> series -> unit
