(** Dispute wheels (Griffin, Shepherd, Wilfong).

    A {e dispute wheel} is a cyclic structure of pivot nodes, spoke routes
    and rim routes in which every pivot weakly prefers the route around the
    rim (through the next pivot's spoke) to its own spoke.  The absence of
    a dispute wheel guarantees that an SPP instance has a unique stable
    solution and that SPVP is safe under every activation schedule — the
    theoretical backbone of §II: Gao–Rexford configurations have no wheel,
    whereas the GRC-violating configurations that motivate PAN agreements
    do (DISAGREE, WEDGIE) or even lack stable solutions entirely
    (BAD GADGET). *)

open Pan_topology

type spoke = { pivot : Asn.t; spoke : Spp.route; rim : Spp.route }
(** One wheel segment: the pivot's spoke route [Q_i] and the rim route
    [R_i·Q_{i+1}] it weakly prefers (both permitted at the pivot; the rim
    route ends with the next pivot's spoke). *)

type wheel = spoke list
(** At least two segments, cyclically consistent. *)

val find_wheel : Spp.t -> wheel option
(** Search for a dispute wheel by cycle detection on the spoke digraph:
    node [(u, Q)] has an arc to [(w, Q')] when some route permitted at [u]
    and ranked at least as high as [Q] is of the form [R·Q'] with [w ≠ u].
    Exhaustive over permitted routes — intended for gadget-sized
    instances. *)

val has_wheel : Spp.t -> bool

val certified_safe : Spp.t -> bool
(** [not (has_wheel t)]: true implies a unique stable solution and
    convergence under any fair schedule; false is inconclusive on its own
    (wheels are necessary for divergence, not sufficient). *)

val pp_wheel : Format.formatter -> wheel -> unit
