(** Simple Path Vector Protocol (SPVP) dynamics over an SPP instance.

    SPVP abstracts BGP route propagation: at each {e activation}, one node
    recomputes its selection as the best permitted route consistent with its
    neighbors' current selections.  BGP's convergence behaviour on a policy
    configuration — convergence, non-determinism (DISAGREE / wedgies) or
    divergence (BAD GADGET) — is exactly the behaviour of these dynamics
    under fair schedules (§II of the paper). *)

open Pan_numerics

type schedule =
  | Round_robin  (** sweep nodes in ascending order, deterministically *)
  | Random of Rng.t  (** fair random activations *)

type outcome =
  | Converged of { assignment : Spp.assignment; activations : int }
      (** a stable assignment was reached *)
  | Oscillation of { period : int; activations : int }
      (** under [Round_robin], the sweep-level state revisited an earlier
          state without being stable: a persistent oscillation *)
  | Exhausted of { activations : int }
      (** activation budget spent without convergence (only possible under
          [Random]; round-robin always converges or cycles) *)

val run : ?max_activations:int -> schedule:schedule -> Spp.t -> outcome
(** Run the dynamics from the empty assignment ([max_activations] defaults
    to 100,000). *)

val run_from :
  ?max_activations:int ->
  schedule:schedule ->
  Spp.t ->
  Spp.assignment ->
  outcome
(** Same, from a given starting assignment (e.g. to probe recovery after a
    link failure). *)

val converges_deterministically : ?trials:int -> seed:int -> Spp.t -> bool
(** Run [trials] (default 20) random-schedule simulations with distinct
    seeds; [true] iff all converge {e to the same} stable assignment.
    DISAGREE-style instances converge but return [false] here. *)

val pp_outcome : Format.formatter -> outcome -> unit
