open Pan_topology

type violation =
  | Valley of { node : Asn.t; route : Spp.route }
  | Preference of { node : Asn.t; preferred : Spp.route; over : Spp.route }

let pp_violation fmt = function
  | Valley { node; route } ->
      Format.fprintf fmt "%a permits the non-valley-free route [%a]" Asn.pp
        node Spp.pp_route route
  | Preference { node; preferred; over } ->
      Format.fprintf fmt "%a prefers [%a] over the better-class route [%a]"
        Asn.pp node Spp.pp_route preferred Spp.pp_route over

let next_hop_class g node route =
  match route with
  | _ :: next :: _ -> (
      match Graph.relationship g node next with
      | Some Graph.Customer -> 0
      | Some Graph.Peer -> 1
      | Some Graph.Provider -> 2
      | None -> 3)
  | _ -> 3

let violations g t =
  List.concat_map
    (fun node ->
      let permitted = Spp.permitted t node in
      let valley =
        List.filter_map
          (fun route ->
            match Path.make g route with
            | Error _ -> Some (Valley { node; route })
            | Ok p ->
                if Path.is_valley_free g p then None
                else Some (Valley { node; route }))
          permitted
      in
      (* preference must never rank a worse next-hop class above a better
         one *)
      let rec pref_violations = function
        | [] -> []
        | route :: rest ->
            let cls = next_hop_class g node route in
            List.filter_map
              (fun later ->
                if next_hop_class g node later < cls then
                  Some (Preference { node; preferred = route; over = later })
                else None)
              rest
            @ pref_violations rest
      in
      valley @ pref_violations permitted)
    (Spp.nodes t)

let conforms g t = violations g t = []

let remove_link t (x, y) =
  let uses_link route =
    let rec go = function
      | a :: (b :: _ as rest) ->
          (Asn.equal a x && Asn.equal b y)
          || (Asn.equal a y && Asn.equal b x)
          || go rest
      | _ -> false
    in
    go route
  in
  let permitted =
    List.map
      (fun node ->
        (node, List.filter (fun r -> not (uses_link r)) (Spp.permitted t node)))
      (Spp.nodes t)
  in
  Spp.create ~dest:(Spp.dest t) ~permitted
