open Pan_topology

let asn = Asn.of_int

let disagree () =
  let d = asn 0 and n1 = asn 1 and n2 = asn 2 in
  Spp.create ~dest:d
    ~permitted:
      [
        (n1, [ [ n1; n2; d ]; [ n1; d ] ]);
        (n2, [ [ n2; n1; d ]; [ n2; d ] ]);
      ]

let bad_gadget () =
  let d = asn 0 and n1 = asn 1 and n2 = asn 2 and n3 = asn 3 in
  Spp.create ~dest:d
    ~permitted:
      [
        (n1, [ [ n1; n2; d ]; [ n1; d ] ]);
        (n2, [ [ n2; n3; d ]; [ n2; d ] ]);
        (n3, [ [ n3; n1; d ]; [ n3; d ] ]);
      ]

let good_gadget () =
  let d = asn 0 and n1 = asn 1 and n2 = asn 2 and n3 = asn 3 in
  Spp.create ~dest:d
    ~permitted:
      [
        (n1, [ [ n1; d ]; [ n1; n2; d ] ]);
        (n2, [ [ n2; d ]; [ n2; n3; d ] ]);
        (n3, [ [ n3; d ]; [ n3; n1; d ] ]);
      ]

let wedgie () =
  let d = asn 1 and a2 = asn 2 and a3 = asn 3 and a4 = asn 4 in
  Spp.create ~dest:d
    ~permitted:
      [
        (* AS2 depreferences the backup customer route below the
           provider-learned one, as signalled by AS1's community. *)
        (a2, [ [ a2; a3; a4; d ]; [ a2; d ] ]);
        (* AS3 prefers its customer route via AS2 over the peer route. *)
        (a3, [ [ a3; a2; d ]; [ a3; a4; d ] ]);
        (a4, [ [ a4; d ] ]);
      ]

let wedgie_intended () =
  let d = asn 1 and a2 = asn 2 and a3 = asn 3 and a4 = asn 4 in
  Asn.Map.of_seq
    (List.to_seq
       [
         (a2, Some [ a2; a3; a4; d ]);
         (a3, Some [ a3; a4; d ]);
         (a4, Some [ a4; d ]);
       ])

let wedgie_stuck () =
  let d = asn 1 and a2 = asn 2 and a3 = asn 3 and a4 = asn 4 in
  Asn.Map.of_seq
    (List.to_seq
       [
         (a2, Some [ a2; d ]);
         (a3, Some [ a3; a2; d ]);
         (a4, Some [ a4; d ]);
       ])

let fig1 = Gen.fig1_asn

let fig1_disagree () =
  let a = fig1 'A' and b = fig1 'B' and dd = fig1 'D' and e = fig1 'E' in
  Spp.create ~dest:a
    ~permitted:
      [
        (* D prefers the peer-learned route via E (which E obtained from
           its provider B, violating the GRC) over its own provider A. *)
        (dd, [ [ dd; e; b; a ]; [ dd; a ] ]);
        (e, [ [ e; dd; a ]; [ e; b; a ] ]);
        (* B is a passive transit towards its peer A. *)
        (b, [ [ b; a ] ]);
      ]

let fig1_bad_gadget () =
  let a = fig1 'A'
  and b = fig1 'B'
  and c = fig1 'C'
  and dd = fig1 'D'
  and e = fig1 'E' in
  Spp.create ~dest:a
    ~permitted:
      [
        (c, [ [ c; dd; a ]; [ c; a ] ]);
        (dd, [ [ dd; e; b; a ]; [ dd; a ] ]);
        (e, [ [ e; c; a ]; [ e; b; a ] ]);
        (b, [ [ b; a ] ]);
      ]

let surprise () =
  let d = asn 0 and n1 = asn 1 and n2 = asn 2 and n3 = asn 3 and h = asn 4 in
  Spp.create ~dest:d
    ~permitted:
      [
        (n1, [ [ n1; h; d ]; [ n1; n2; d ]; [ n1; d ] ]);
        (n2, [ [ n2; h; d ]; [ n2; n3; d ]; [ n2; d ] ]);
        (n3, [ [ n3; h; d ]; [ n3; n1; d ]; [ n3; d ] ]);
        (h, [ [ h; d ] ]);
      ]
