open Pan_topology

type spoke = { pivot : Asn.t; spoke : Spp.route; rim : Spp.route }

type wheel = spoke list

(* Vertices of the spoke digraph: every (node, permitted route) pair. *)
type vertex = { node : Asn.t; route : Spp.route; rank : int }

let vertices t =
  List.concat_map
    (fun node ->
      List.mapi (fun rank route -> { node; route; rank }) (Spp.permitted t node))
    (Spp.nodes t)

let rec proper_suffixes = function
  | [] | [ _ ] -> []
  | _ :: rest -> rest :: proper_suffixes rest

(* Arcs out of (u, Q): for each route P permitted at u with
   rank(P) <= rank(Q) and P <> Q, and each proper suffix S of P that is
   permitted at its own head w, an arc to (w, S) with rim P. *)
let arcs t v =
  let candidates = Spp.permitted t v.node in
  List.concat
    (List.mapi
       (fun rank p ->
         if rank > v.rank || p = v.route then []
         else
           List.filter_map
             (fun s ->
               match s with
               | w :: _ when not (Asn.equal w v.node) -> (
                   match Spp.rank t w s with
                   | Some s_rank ->
                       Some ({ node = w; route = s; rank = s_rank }, p)
                   | None -> None)
               | _ -> None)
             (proper_suffixes p))
       candidates)

let find_wheel t =
  let verts = vertices t in
  (* DFS with an explicit stack of (vertex, rim) steps to reconstruct the
     cycle when we re-enter a vertex on the current path. *)
  let module M = Map.Make (struct
    type nonrec t = Asn.t * Spp.route

    let compare = compare
  end) in
  let key v = (v.node, v.route) in
  let visited = ref M.empty in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state v = try M.find (key v) !visited with Not_found -> 0 in
  let set v s = visited := M.add (key v) s !visited in
  let exception Found of wheel in
  let rec dfs path v =
    set v 1;
    List.iter
      (fun (next, rim) ->
        match state next with
        | 1 ->
            (* cycle: unwind the path back to [next] *)
            let rec unwind acc = function
              | [] -> acc
              | (u, r) :: rest ->
                  let acc = { pivot = u.node; spoke = u.route; rim = r } :: acc in
                  if key u = key next then acc else unwind acc rest
            in
            raise (Found (unwind [] ((v, rim) :: path)))
        | 0 -> dfs ((v, rim) :: path) next
        | _ -> ())
      (arcs t v);
    set v 2
  in
  try
    List.iter (fun v -> if state v = 0 then dfs [] v) verts;
    None
  with Found w -> Some w

let has_wheel t = find_wheel t <> None

let certified_safe t = not (has_wheel t)

let pp_wheel fmt wheel =
  List.iter
    (fun s ->
      Format.fprintf fmt "pivot %a: spoke [%a], rim [%a]@ " Asn.pp s.pivot
        Spp.pp_route s.spoke Spp.pp_route s.rim)
    wheel
