open Pan_topology
open Pan_numerics

type schedule = Fifo | Random_delivery of Rng.t

type outcome =
  | Quiesced of { assignment : Spp.assignment; messages : int }
  | Diverged of { messages : int }

(* An in-flight message: [sender]'s current announcement as seen when it
   was emitted ([None] = withdrawal). *)
type message = { sender : Asn.t; receiver : Asn.t; route : Spp.route option }

type node = {
  mutable rib_in : Spp.route option Asn.Map.t;
  mutable selected : Spp.route option;
}

(* Who must hear about [sender]'s selection: every node with a permitted
   route whose second AS is [sender]. *)
let listeners t =
  let add map key v =
    Asn.Map.update key
      (function
        | None -> Some (Asn.Set.singleton v)
        | Some s -> Some (Asn.Set.add v s))
      map
  in
  List.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc route ->
          match route with
          | _ :: next :: _ -> add acc next node
          | _ -> acc)
        acc (Spp.permitted t node))
    Asn.Map.empty (Spp.nodes t)

let listeners_of map x =
  match Asn.Map.find_opt x map with
  | Some s -> Asn.Set.elements s
  | None -> []

(* Selection from the RIB-In alone: the best permitted route whose tail
   matches the last announcement from its next hop. *)
let select t node_state node =
  let available route =
    match route with
    | [ _ ] | [] -> false
    | _ :: (next :: _ as tail) ->
        (* uniform rule: a route is usable only if its next hop's last
           announcement matches the tail — including the destination,
           whose self-announcement seeds the whole computation *)
        Asn.Map.find_opt next node_state.rib_in = Some (Some tail)
  in
  List.find_opt available (Spp.permitted t node)

let run ?(max_messages = 100_000) ~schedule t =
  let listener_map = listeners t in
  let nodes = Hashtbl.create 64 in
  List.iter
    (fun n ->
      Hashtbl.replace nodes n { rib_in = Asn.Map.empty; selected = None })
    (Spp.nodes t);
  (* the message pool preserves per-sender order: each sender has a FIFO;
     the schedule picks which sender's head message to deliver *)
  let queues : (Asn.t, message Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let pending = ref 0 in
  let send sender receiver route =
    let q =
      match Hashtbl.find_opt queues sender with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace queues sender q;
          q
    in
    Queue.push { sender; receiver; route } q;
    incr pending
  in
  (* cold start: the destination announces itself to its listeners *)
  let dest = Spp.dest t in
  List.iter
    (fun l -> send dest l (Some [ dest ]))
    (listeners_of listener_map dest);
  let senders_with_mail () =
    Hashtbl.fold
      (fun s q acc -> if Queue.is_empty q then acc else s :: acc)
      queues []
    |> List.sort Asn.compare
  in
  let deliver m =
    match Hashtbl.find_opt nodes m.receiver with
    | None -> () (* announcements to the destination itself are ignored *)
    | Some state ->
        state.rib_in <- Asn.Map.add m.sender m.route state.rib_in;
        let new_selection = select t state m.receiver in
        if new_selection <> state.selected then begin
          state.selected <- new_selection;
          List.iter
            (fun l -> send m.receiver l new_selection)
            (listeners_of listener_map m.receiver)
        end
  in
  let rec loop delivered =
    if !pending = 0 then begin
      let assignment =
        List.fold_left
          (fun acc n -> Asn.Map.add n (Hashtbl.find nodes n).selected acc)
          Asn.Map.empty (Spp.nodes t)
      in
      Quiesced { assignment; messages = delivered }
    end
    else if delivered >= max_messages then Diverged { messages = delivered }
    else begin
      let senders = senders_with_mail () in
      let sender =
        match schedule with
        | Fifo -> List.hd senders
        | Random_delivery rng -> Rng.choose rng (Array.of_list senders)
      in
      let q = Hashtbl.find queues sender in
      let m = Queue.pop q in
      decr pending;
      deliver m;
      loop (delivered + 1)
    end
  in
  loop 0

let quiesces_deterministically ?(trials = 20) ~seed t =
  let rec go i reference =
    if i >= trials then true
    else
      match run ~schedule:(Random_delivery (Rng.create (seed + i))) t with
      | Quiesced { assignment; _ } -> (
          match reference with
          | None -> go (i + 1) (Some assignment)
          | Some r -> Spp.equal_assignment r assignment && go (i + 1) reference
          )
      | Diverged _ -> false
  in
  go 0 None

let pp_outcome fmt = function
  | Quiesced { messages; _ } ->
      Format.fprintf fmt "quiesced after %d messages" messages
  | Diverged { messages } ->
      Format.fprintf fmt "no quiescence within %d messages" messages
