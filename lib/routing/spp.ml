open Pan_topology

type route = Asn.t list

type t = { dest : Asn.t; permitted : route list Asn.Map.t }

let validate_route dest node route =
  let fail msg = invalid_arg ("Spp.create: " ^ msg) in
  match route with
  | [] -> fail "empty route"
  | first :: _ ->
      if not (Asn.equal first node) then
        fail
          (Printf.sprintf "route of AS%d starts at AS%d" (Asn.to_int node)
             (Asn.to_int first));
      let rec last = function
        | [ x ] -> x
        | _ :: rest -> last rest
        | [] -> assert false
      in
      if not (Asn.equal (last route) dest) then
        fail
          (Printf.sprintf "route of AS%d does not end at the destination"
             (Asn.to_int node));
      let rec distinct = function
        | [] -> ()
        | x :: rest ->
            if List.exists (Asn.equal x) rest then
              fail
                (Printf.sprintf "route of AS%d revisits AS%d"
                   (Asn.to_int node) (Asn.to_int x));
            distinct rest
      in
      distinct route

let create ~dest ~permitted =
  let map =
    List.fold_left
      (fun acc (node, routes) ->
        if Asn.equal node dest then
          invalid_arg "Spp.create: the destination has no permitted list";
        if Asn.Map.mem node acc then
          invalid_arg
            (Printf.sprintf "Spp.create: AS%d listed twice" (Asn.to_int node));
        List.iter (validate_route dest node) routes;
        let rec dup_free = function
          | [] -> ()
          | r :: rest ->
              if List.mem r rest then
                invalid_arg
                  (Printf.sprintf "Spp.create: duplicate route for AS%d"
                     (Asn.to_int node));
              dup_free rest
        in
        dup_free routes;
        Asn.Map.add node routes acc)
      Asn.Map.empty permitted
  in
  { dest; permitted = map }

let dest t = t.dest
let nodes t = Asn.Map.fold (fun node _ acc -> node :: acc) t.permitted []
              |> List.rev

let permitted t node =
  match Asn.Map.find_opt node t.permitted with Some r -> r | None -> []

let rank t node route =
  let rec find i = function
    | [] -> None
    | r :: rest -> if r = route then Some i else find (i + 1) rest
  in
  find 0 (permitted t node)

type assignment = route option Asn.Map.t

let initial t = Asn.Map.map (fun _ -> None) t.permitted

let selection t assignment node =
  if Asn.equal node t.dest then Some [ t.dest ]
  else Option.join (Asn.Map.find_opt node assignment)

let consistent t assignment route =
  match route with
  | [] -> false
  | [ d ] -> Asn.equal d t.dest
  | _ :: (next :: _ as tail) -> selection t assignment next = Some tail

let best_available t assignment node =
  List.find_opt (consistent t assignment) (permitted t node)

let is_stable t assignment =
  Asn.Map.for_all
    (fun node _ ->
      selection t assignment node
      = best_available t assignment node)
    t.permitted

let equal_assignment = Asn.Map.equal (Option.equal ( = ))

let stable_solutions ?(max_space = 10_000_000) t =
  let node_list = nodes t in
  let space =
    List.fold_left
      (fun acc node ->
        let choices = List.length (permitted t node) + 1 in
        if acc > max_space / choices then max_space + 1 else acc * choices)
      1 node_list
  in
  if space > max_space then
    invalid_arg "Spp.stable_solutions: search space too large";
  let rec enumerate nodes acc =
    match nodes with
    | [] -> if is_stable t acc then [ acc ] else []
    | node :: rest ->
        let choices = None :: List.map Option.some (permitted t node) in
        List.concat_map
          (fun choice -> enumerate rest (Asn.Map.add node choice acc))
          choices
  in
  enumerate node_list Asn.Map.empty

let pp_route fmt route =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    Asn.pp fmt route

let pp_assignment fmt assignment =
  Asn.Map.iter
    (fun node sel ->
      Format.fprintf fmt "%a: %a@ " Asn.pp node
        (fun fmt -> function
          | None -> Format.pp_print_string fmt "-"
          | Some r -> pp_route fmt r)
        sel)
    assignment
