(** The Stable Paths Problem (SPP) of Griffin, Shepherd and Wilfong, which
    the paper's §II uses to explain why BGP needs the Gao–Rexford
    conditions while PANs do not.

    An SPP instance fixes a destination AS and, for every other node, an
    ordered list of {e permitted routes} (best first).  A {e stable}
    assignment gives each node a route that is (a) consistent — its tail is
    the route currently selected by the next hop — and (b) a best response —
    no higher-ranked permitted route is consistent.  BGP converges exactly
    when the induced best-response dynamics reach such an assignment. *)

open Pan_topology

type route = Asn.t list
(** A route from a node to the destination, both inclusive: [u; ...; dest].
    The destination's own route is [\[dest\]]. *)

type t

val create : dest:Asn.t -> permitted:(Asn.t * route list) list -> t
(** Build an instance. Each listed node supplies its permitted routes, best
    first. @raise Invalid_argument if a route is empty, does not start at
    its node, does not end at [dest], revisits a node, or is listed twice
    for the same node. *)

val dest : t -> Asn.t
val nodes : t -> Asn.t list
(** All nodes except the destination, ascending. *)

val permitted : t -> Asn.t -> route list
(** Permitted routes of a node, best first (empty for unknown nodes). *)

val rank : t -> Asn.t -> route -> int option
(** Position of a route in the node's preference list (0 = best). *)

type assignment = route option Asn.Map.t
(** Current selection of each non-destination node; [None] = no route. *)

val initial : t -> assignment
(** Every node starts with no route. *)

val consistent : t -> assignment -> route -> bool
(** Is the route realizable given the neighbors' current selections? *)

val best_available : t -> assignment -> Asn.t -> route option
(** The node's best permitted route that is consistent, if any. *)

val is_stable : t -> assignment -> bool
(** Is every node best-responding? *)

val stable_solutions : ?max_space:int -> t -> assignment list
(** All stable assignments, by exhaustive search over the product of
    per-node choices.  @raise Invalid_argument if the search space exceeds
    [max_space] (default [10_000_000]) — the checker is meant for gadgets
    and other small instances. *)

val equal_assignment : assignment -> assignment -> bool
val pp_route : Format.formatter -> route -> unit
val pp_assignment : Format.formatter -> assignment -> unit
