(** Message-passing SPVP: the asynchronous BGP model.

    {!Bgp} abstracts BGP as node activations over a shared assignment.
    This module implements the finer-grained standard model: every node
    keeps a RIB-In of the last announcement received from each neighbor,
    announcements and withdrawals travel as messages through per-sender
    FIFO channels, and processing one message may trigger new
    announcements.  Convergence means the network {e quiesces} — no
    messages in flight — at which point the selections necessarily form a
    stable assignment.

    The §II phenomena persist — and sharpen — in this model: GRC
    configurations quiesce under any delivery schedule; BAD GADGET never
    quiesces; and DISAGREE not only quiesces to a timing-dependent state
    but can {e livelock outright} when the initial announcements race
    (the two peers keep re-announcing flip-flopping routes to each other
    forever — a fair non-terminating SPVP execution that the
    coarser activation model of {!Bgp} cannot exhibit). *)

open Pan_numerics

type schedule =
  | Fifo  (** deliver messages in global send order (deterministic) *)
  | Random_delivery of Rng.t
      (** deliver a random pending message each step, preserving
          per-sender order (models variable link latency) *)

type outcome =
  | Quiesced of { assignment : Spp.assignment; messages : int }
      (** no messages in flight; [messages] were delivered in total *)
  | Diverged of { messages : int }
      (** the message budget was exhausted without quiescence *)

val run : ?max_messages:int -> schedule:schedule -> Spp.t -> outcome
(** Start from cold: the destination announces itself; everyone else
    knows nothing.  [max_messages] defaults to 100,000. *)

val quiesces_deterministically : ?trials:int -> seed:int -> Spp.t -> bool
(** Run [trials] (default 20) random-delivery simulations; [true] iff all
    quiesce to the same assignment. *)

val pp_outcome : Format.formatter -> outcome -> unit
