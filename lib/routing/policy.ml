open Pan_topology

let all_simple_routes ?(max_len = 5) g ~dest node =
  if max_len < 2 then invalid_arg "Policy.all_simple_routes: max_len < 2";
  let rec extend current visited acc =
    let head = List.hd current in
    if Asn.equal head dest then List.rev current :: acc
    else if List.length current >= max_len then acc
    else
      Asn.Set.fold
        (fun next acc ->
          if Asn.Set.mem next visited then acc
          else extend (next :: current) (Asn.Set.add next visited) acc)
        (Graph.neighbors g head)
        acc
  in
  if Asn.equal node dest then [ [ dest ] ]
  else extend [ node ] (Asn.Set.singleton node) [] |> List.sort compare

let next_hop_class g route =
  match route with
  | src :: next :: _ -> (
      match Graph.relationship g src next with
      | Some Graph.Customer -> 0
      | Some Graph.Peer -> 1
      | Some Graph.Provider -> 2
      | None -> 3)
  | _ -> 3

let grc_rank g route =
  let next = match route with _ :: n :: _ -> Asn.to_int n | _ -> 0 in
  (next_hop_class g route, List.length route, next)

let instance_of ?max_len g ~dest ~permit ~compare_routes =
  let nodes = List.filter (fun x -> not (Asn.equal x dest)) (Graph.ases g) in
  let permitted =
    List.map
      (fun node ->
        let routes =
          all_simple_routes ?max_len g ~dest node
          |> List.filter (permit node)
          |> List.stable_sort (fun r1 r2 ->
                 match compare_routes node r1 r2 with
                 | 0 -> compare r1 r2
                 | c -> c)
        in
        (node, routes))
      nodes
  in
  Spp.create ~dest ~permitted

let grc_instance ?max_len g ~dest =
  instance_of ?max_len g ~dest
    ~permit:(fun _node route -> Path.is_valley_free g (Path.make_exn g route))
    ~compare_routes:(fun _node r1 r2 -> compare (grc_rank g r1) (grc_rank g r2))

let custom_instance ?max_len g ~dest ~permit ~prefer =
  instance_of ?max_len g ~dest ~permit ~compare_routes:prefer
