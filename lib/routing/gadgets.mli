(** Canonical SPP instances from the BGP-stability literature, plus their
    incarnations on the paper's Fig. 1 topology (§II).

    - DISAGREE converges, but to one of two stable states depending on
      message timing ("BGP wedgie" non-determinism);
    - the BGP WEDGIE (RFC 4264) has an intended and a stuck stable state,
      reachable from each other only through a failure;
    - BAD GADGET has no stable state at all: SPVP oscillates forever. *)


val disagree : unit -> Spp.t
(** Two nodes, each preferring the route through the other: two stable
    solutions, non-deterministic convergence. Destination is AS 0. *)

val bad_gadget : unit -> Spp.t
(** Three nodes in a cyclic preference (Griffin–Wilfong): no stable
    solution; round-robin SPVP oscillates. Destination is AS 0. *)

val good_gadget : unit -> Spp.t
(** Three nodes preferring their direct route: unique stable solution,
    deterministic convergence. Destination is AS 0. *)

val wedgie : unit -> Spp.t
(** The RFC 4264 "3/4 wedgie": customer AS 1 dual-homed to backup provider
    AS 2 (advertisement depreferenced by community) and primary provider
    AS 4, with AS 2 a customer of AS 3 and AS 4 a peer of AS 3.  Two stable
    states: the intended one (traffic via AS 4) and a stuck one (traffic
    via AS 2) that persists after the primary link recovers. *)

val wedgie_intended : unit -> Spp.assignment
(** The intended stable state of {!wedgie}. *)

val wedgie_stuck : unit -> Spp.assignment
(** The stuck stable state of {!wedgie}, reached after failure and recovery
    of the primary link. *)

val fig1_disagree : unit -> Spp.t
(** §II on Fig. 1: D and E violate the GRC by offering each other their
    provider routes towards destination A and preferring peer-learned
    routes.  An instance of DISAGREE: converges non-deterministically. *)

val fig1_bad_gadget : unit -> Spp.t
(** §II on Fig. 1: AS C concludes similar GRC-violating agreements with
    both D and E, completing a cyclic preference towards destination A —
    the BAD GADGET; SPVP oscillates persistently. *)

val surprise : unit -> Spp.t
(** A "benign-looking" configuration (§II): BAD GADGET's cyclic
    preferences, masked by a universally preferred detour through helper
    AS 4.  It converges deterministically — but failing the link (4, 0)
    (via {!Grc_check.remove_link}) reduces it exactly to BAD GADGET and
    SPVP starts oscillating. *)
