open Pan_topology
open Pan_numerics

type schedule = Round_robin | Random of Rng.t

type outcome =
  | Converged of { assignment : Spp.assignment; activations : int }
  | Oscillation of { period : int; activations : int }
  | Exhausted of { activations : int }

let activate t assignment node =
  let best = Spp.best_available t assignment node in
  let current = Option.join (Asn.Map.find_opt node assignment) in
  if best = current then (assignment, false)
  else (Asn.Map.add node best assignment, true)

let serialize assignment =
  (* A canonical representation for cycle detection: Asn.Map is already
     ordered, so the bindings list is canonical. *)
  Asn.Map.bindings assignment

let run_round_robin ~max_activations t start =
  let node_array = Array.of_list (Spp.nodes t) in
  let seen = Hashtbl.create 64 in
  let rec sweep assignment activations sweep_index =
    if activations >= max_activations then Exhausted { activations }
    else begin
      let changed = ref false in
      let assignment = ref assignment in
      Array.iter
        (fun node ->
          let next, delta = activate t !assignment node in
          assignment := next;
          if delta then changed := true)
        node_array;
      let activations = activations + Array.length node_array in
      if not !changed then Converged { assignment = !assignment; activations }
      else
        let key = serialize !assignment in
        match Hashtbl.find_opt seen key with
        | Some earlier ->
            Oscillation { period = sweep_index - earlier; activations }
        | None ->
            Hashtbl.add seen key sweep_index;
            sweep !assignment activations (sweep_index + 1)
    end
  in
  sweep start 0 0

let run_random ~max_activations t start rng =
  let node_array = Array.of_list (Spp.nodes t) in
  if Array.length node_array = 0 then
    Converged { assignment = start; activations = 0 }
  else
    let rec step assignment activations =
      if Spp.is_stable t assignment then Converged { assignment; activations }
      else if activations >= max_activations then Exhausted { activations }
      else
        let node = Rng.choose rng node_array in
        let assignment, _ = activate t assignment node in
        step assignment (activations + 1)
    in
    step start 0

let run_from ?(max_activations = 100_000) ~schedule t start =
  match schedule with
  | Round_robin -> run_round_robin ~max_activations t start
  | Random rng -> run_random ~max_activations t start rng

let run ?max_activations ~schedule t =
  run_from ?max_activations ~schedule t (Spp.initial t)

let converges_deterministically ?(trials = 20) ~seed t =
  let rec go i reference =
    if i >= trials then true
    else
      match run ~schedule:(Random (Rng.create (seed + i))) t with
      | Converged { assignment; _ } -> (
          match reference with
          | None -> go (i + 1) (Some assignment)
          | Some r -> Spp.equal_assignment r assignment && go (i + 1) reference
          )
      | Oscillation _ | Exhausted _ -> false
  in
  go 0 None

let pp_outcome fmt = function
  | Converged { activations; _ } ->
      Format.fprintf fmt "converged after %d activations" activations
  | Oscillation { period; activations } ->
      Format.fprintf fmt
        "oscillation with period %d detected after %d activations" period
        activations
  | Exhausted { activations } ->
      Format.fprintf fmt "no convergence within %d activations" activations
