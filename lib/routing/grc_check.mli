(** Conformance checking of SPP policy configurations against the
    Gao–Rexford conditions, and link-failure surgery on instances.

    §II notes that seemingly benign GRC-violating configurations "may
    easily reduce to the BAD GADGET in case one network link fails":
    {!remove_link} models the failure by withdrawing every route that
    crosses the failed link, so the reduction can be exhibited and tested
    (see {!Gadgets.surprise}). *)

open Pan_topology

type violation =
  | Valley of { node : Asn.t; route : Spp.route }
      (** a permitted route is not valley-free (illegal GRC export chain) *)
  | Preference of { node : Asn.t; preferred : Spp.route; over : Spp.route }
      (** a route is ranked above one with a strictly better next-hop
          class (customer > peer > provider) *)

val violations : Graph.t -> Spp.t -> violation list
(** All GRC violations of the configuration with respect to the topology.
    Routes that are not even paths of the graph are reported as [Valley]
    violations. *)

val conforms : Graph.t -> Spp.t -> bool
(** No violations: by the Gao–Rexford theorem, SPVP is then safe. *)

val remove_link : Spp.t -> Asn.t * Asn.t -> Spp.t
(** Withdraw every permitted route that traverses the (undirected) link. *)

val pp_violation : Format.formatter -> violation -> unit
