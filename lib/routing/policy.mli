(** Deriving SPP instances from an AS topology and a routing policy.

    Permitted routes are enumerated as simple paths up to a length bound and
    filtered/ranked by the policy.  The standard {!grc_instance} uses the
    Gao–Rexford configuration: only valley-free routes are permitted
    (peer/provider routes are exported to customers only), and routes are
    preferred by next-hop relationship (customer > peer > provider), then by
    length, then by lowest next-hop AS number.  [custom_instance] supports
    the GRC-violating configurations of §II. *)

open Pan_topology

val all_simple_routes :
  ?max_len:int -> Graph.t -> dest:Asn.t -> Asn.t -> Spp.route list
(** All simple paths from a node to [dest] along links of the graph, with at
    most [max_len] ASes (default 5), in lexicographic order. Intended for
    small illustration topologies. *)

val grc_rank : Graph.t -> Spp.route -> int * int * int
(** The GRC preference key of a route for its source: smaller is better.
    Exposed for tests and for building custom policies that deviate from
    GRC in controlled ways. *)

val grc_instance : ?max_len:int -> Graph.t -> dest:Asn.t -> Spp.t
(** The SPP instance induced by GRC-conforming policies. By the Gao–Rexford
    theorem its SPVP dynamics converge under any fair schedule. *)

val custom_instance :
  ?max_len:int ->
  Graph.t ->
  dest:Asn.t ->
  permit:(Asn.t -> Spp.route -> bool) ->
  prefer:(Asn.t -> Spp.route -> Spp.route -> int) ->
  Spp.t
(** Build an instance with arbitrary permit/preference policy. [prefer] is a
    comparison (negative = first route preferred); ties are broken by the
    lexicographic order of routes so instances are well-defined. *)
