(** Nash equilibria of the bargaining game by best-response dynamics
    (§V-C5).

    The game is not a potential game, so convergence of alternating
    unilateral optimization is not guaranteed in theory — but, as the paper
    reports, it converges in practice; a round cap guards the exceptions. *)

type result = {
  strategy_x : Strategy.t;
  strategy_y : Strategy.t;
  rounds : int;  (** best-response rounds executed *)
  converged : bool;
      (** both strategies are best responses to each other *)
}

type start =
  | Truthful  (** start from the truthful-rounding strategies (default) *)
  | All_cancel
      (** start from the always-cancel strategy; the dynamics then stay in
          the degenerate no-trade equilibrium — the start-point ablation
          showing why the BOSCO service seeds the dynamics with truthful
          behaviour *)

(** Which best-response kernel drives the dynamics. *)
type kernel =
  | Fast  (** {!Strategy.best_response}: prefix sums + monotone envelope *)
  | Reference
      (** {!Strategy.best_response_reference}: the original O(W²) kernel;
          the bench's baseline and the fingerprint-equality oracle *)

val best_response_dynamics :
  ?workspace:Workspace.t ->
  ?kernel:kernel ->
  ?start:start ->
  ?max_rounds:int ->
  ?tol:float ->
  Game.t ->
  result
(** Alternate exact best responses from the chosen starting strategies
    until a fixed point (tolerance [tol], default [1e-9]) or [max_rounds]
    (default 2000).  [kernel] defaults to [Fast]; [workspace] (created
    internally when absent) carries all kernel buffers and the opponent
    CDF cache across rounds, so a round allocates only its two threshold
    arrays.  Adds the executed round count to the [bosco.br.rounds]
    counter and records each response's duration in the
    [bosco.br.response] histogram. *)

val is_equilibrium :
  ?workspace:Workspace.t ->
  ?kernel:kernel ->
  ?tol:float ->
  Game.t ->
  Strategy.t ->
  Strategy.t ->
  bool
(** The verification each party performs on the mechanism-information set:
    is every strategy a best response to the other?  Shares its
    fixed-point predicate with {!best_response_dynamics}, so convergence
    and verification cannot diverge. *)
