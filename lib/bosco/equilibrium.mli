(** Nash equilibria of the bargaining game by best-response dynamics
    (§V-C5).

    The game is not a potential game, so convergence of alternating
    unilateral optimization is not guaranteed in theory — but, as the paper
    reports, it converges in practice; a round cap guards the exceptions. *)

type result = {
  strategy_x : Strategy.t;
  strategy_y : Strategy.t;
  rounds : int;  (** best-response rounds executed *)
  converged : bool;
      (** both strategies are best responses to each other *)
}

type start =
  | Truthful  (** start from the truthful-rounding strategies (default) *)
  | All_cancel
      (** start from the always-cancel strategy; the dynamics then stay in
          the degenerate no-trade equilibrium — the start-point ablation
          showing why the BOSCO service seeds the dynamics with truthful
          behaviour *)

val best_response_dynamics :
  ?start:start -> ?max_rounds:int -> ?tol:float -> Game.t -> result
(** Alternate exact best responses from the chosen starting strategies
    until a fixed point (tolerance [tol], default [1e-9]) or [max_rounds]
    (default 2000). *)

val is_equilibrium :
  ?tol:float -> Game.t -> Strategy.t -> Strategy.t -> bool
(** The verification each party performs on the mechanism-information set:
    is every strategy a best response to the other? *)
