open Pan_numerics

type t = { claims : Claim.t; thresholds : float array }

let claims t = t.claims
let thresholds t = t.thresholds

let of_thresholds claims thresholds =
  let w = Claim.cardinality claims in
  if Array.length thresholds <> w + 1 then
    invalid_arg "Strategy.of_thresholds: need W + 1 boundaries";
  if thresholds.(0) <> neg_infinity || thresholds.(w) <> infinity then
    invalid_arg "Strategy.of_thresholds: ends must be -inf / +inf";
  for i = 0 to w - 1 do
    if not (thresholds.(i) <= thresholds.(i + 1)) then
      invalid_arg "Strategy.of_thresholds: boundaries must be non-decreasing"
  done;
  { claims; thresholds = Array.copy thresholds }

let truthful_rounding claims =
  let values = Claim.values claims in
  let w = Array.length values in
  let thresholds =
    Array.init (w + 1) (fun i ->
        if i = 0 then neg_infinity else if i = w then infinity else values.(i))
  in
  { claims; thresholds }

let apply t u =
  let th = t.thresholds in
  let w = Array.length th - 1 in
  (* largest i with th.(i) <= u; th.(0) = -inf guarantees existence *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if th.(mid) <= u then go mid hi else go lo (mid - 1)
  in
  let i = Stdlib.min (go 0 (w - 1)) (w - 1) in
  (Claim.values t.claims).(i)

let choice_probabilities dist t =
  let th = t.thresholds in
  let w = Array.length th - 1 in
  let cdf x =
    if x = neg_infinity then 0.0
    else if x = infinity then 1.0
    else Distribution.cdf dist x
  in
  Array.init w (fun i -> Float.max 0.0 (cdf th.(i + 1) -. cdf th.(i)))

let line_coefficients ~opponent_dist ~opponent own_claims =
  let opp_values = Claim.values opponent.claims in
  let opp_probs = choice_probabilities opponent_dist opponent in
  Array.map
    (fun v ->
      if v = neg_infinity then (0.0, 0.0)
      else begin
        let m = ref 0.0 and q = ref 0.0 in
        Array.iteri
          (fun j vy ->
            if vy >= -.v then begin
              m := !m +. opp_probs.(j);
              q := !q +. (opp_probs.(j) *. ((vy -. v) /. 2.0))
            end)
          opp_values;
        (!m, !q)
      end)
    (Claim.values own_claims)

(* Upper envelope of the lines (m_i, q_i): since m is non-decreasing in i,
   the envelope assigns claims with larger index to larger utilities.  This
   is Algorithm 1 with an explicit left-to-right walk — the original
   O(W²) kernel, kept verbatim as the oracle the fast kernel is tested
   against (and benchmarked over). *)
let best_response_reference ~opponent_dist ~opponent own_claims =
  let lines = line_coefficients ~opponent_dist ~opponent own_claims in
  let w = Array.length lines in
  (* A line is dominated if a parallel line lies strictly above it, or is a
     duplicate with a smaller index. *)
  let dominated i =
    let mi, qi = lines.(i) in
    let result = ref false in
    Array.iteri
      (fun j (mj, qj) ->
        if j <> i && mj = mi then
          if qj > qi || (qj = qi && j < i) then result := true)
      lines;
    !result
  in
  let candidates =
    List.filter (fun i -> not (dominated i)) (List.init w Fun.id)
  in
  (* Start: best line as u -> -inf (minimal slope, then maximal
     intercept). *)
  let start =
    List.fold_left
      (fun best i ->
        match best with
        | None -> Some i
        | Some b ->
            let mb, qb = lines.(b) and mi, qi = lines.(i) in
            if mi < mb || (mi = mb && qi > qb) then Some i else Some b)
      None candidates
  in
  let start = Option.get start in
  (* Walk the envelope: from the current line, the next is the candidate
     with steeper slope whose intersection comes first. *)
  let intersection i j =
    let mi, qi = lines.(i) and mj, qj = lines.(j) in
    (qi -. qj) /. (mj -. mi)
  in
  let rec walk current from acc =
    let mi, _ = lines.(current) in
    let next =
      List.fold_left
        (fun best j ->
          let mj, _ = lines.(j) in
          if mj <= mi then best
          else
            let x = intersection current j in
            match best with
            | None -> Some (j, x)
            | Some (jb, xb) ->
                if
                  x < xb
                  || (x = xb && fst lines.(j) > fst lines.(jb))
                then Some (j, x)
                else best)
        None candidates
    in
    match next with
    | None -> List.rev ((current, from) :: acc)
    | Some (j, x) ->
        let x = Float.max x from in
        walk j x ((current, from) :: acc)
  in
  let records = walk start neg_infinity [] in
  (* Convert the visited (claim index, interval start) records into the
     threshold series; unvisited claims get empty intervals (paper's final
     fill loop). *)
  let unset = Float.nan in
  let th = Array.make (w + 1) unset in
  th.(0) <- neg_infinity;
  th.(w) <- infinity;
  List.iter
    (fun (idx, from) -> if idx > 0 then th.(idx) <- from)
    records;
  for i = w - 1 downto 1 do
    if Float.is_nan th.(i) then th.(i) <- th.(i + 1)
  done;
  (* Monotonicity can be violated by floating-point ties; repair. *)
  for i = 1 to w - 1 do
    if th.(i) < th.(i - 1) then th.(i) <- th.(i - 1)
  done;
  { claims = own_claims; thresholds = th }

(* Fast kernel: same envelope, computed in O(W log W).

   Eq. 16/17 for own claim v against the opponent's sorted claims v_y and
   choice probabilities p: the qualifying set {j : v_y(j) >= -v} is a
   suffix, so
     m(v) = Σ_suffix p_j            and
     q(v) = ½ (Σ_suffix p_j·v_y(j)  −  v·m(v))
   are suffix sums accumulated from the tail, with the suffix boundary
   found by binary search (own claims need one search each).  Suffix
   sums — not differences of prefix sums: a tail of tiny probability
   mass would be cancelled away by [total − prefix] (absolute error of
   the total, catastrophic relative error of the tail), whereas a
   right-to-left accumulation of non-negative terms keeps every suffix
   to full relative precision, like the reference's per-claim sums over
   the same terms.  The upper envelope
   of the resulting lines is a single monotone pass: slopes are
   non-decreasing in the claim index, so a stack walk pops every line
   whose interval the next line empties — the convex-hull trick.  The
   parallel-line dominance rule matches the reference exactly: equal
   slopes form a contiguous run (slopes are monotone), within which only
   the first maximal-intercept line survives.

   All buffers and the opponent CDF evaluations come from the workspace,
   so a best-response-dynamics round allocates nothing but the returned
   threshold array.  Results agree with the reference kernel to the
   reassociation error of the suffix sums (thresholds within ~1e-12;
   test/test_strategy_fast.ml pins this down). *)
let best_response ?workspace ~opponent_dist ~opponent own_claims =
  let ws =
    match workspace with Some ws -> ws | None -> Workspace.create ()
  in
  let vx = Claim.values own_claims in
  let w = Array.length vx in
  let vy = Claim.values opponent.claims in
  let ny = Array.length vy in
  let probs =
    Workspace.choice_probabilities ws opponent_dist opponent.thresholds
  in
  (* pv.(0) is forced to 0: the opponent's cancel claim (-inf) never
     qualifies (k >= 1 below), and p·(-inf) would poison the sums. *)
  let pv = Workspace.pv_scratch ws ny in
  pv.(0) <- 0.0;
  for j = 1 to ny - 1 do
    pv.(j) <- probs.(j) *. vy.(j)
  done;
  let suf_p, suf_pv = Workspace.suffix_scratch ws (ny + 1) in
  suf_p.(ny) <- 0.0;
  suf_pv.(ny) <- 0.0;
  for j = ny - 1 downto 0 do
    suf_p.(j) <- probs.(j) +. suf_p.(j + 1);
    suf_pv.(j) <- pv.(j) +. suf_pv.(j + 1)
  done;
  let slope, intercept = Workspace.line_scratch ws w in
  for i = 0 to w - 1 do
    let v = vx.(i) in
    if v = neg_infinity then begin
      slope.(i) <- 0.0;
      intercept.(i) <- 0.0
    end
    else begin
      let k = Prefix.lower_bound ~lo:1 ~hi:ny vy (-.v) in
      let m = suf_p.(k) in
      slope.(i) <- m;
      intercept.(i) <- 0.5 *. (suf_pv.(k) -. (v *. m))
    end
  done;
  (* Monotone envelope: stack of (line, interval start). *)
  let stack_line, stack_from = Workspace.stack_scratch ws w in
  let top = ref (-1) in
  for i = 0 to w - 1 do
    let mi = slope.(i) and qi = intercept.(i) in
    let keep = ref true in
    if !top >= 0 && slope.(stack_line.(!top)) = mi then
      if intercept.(stack_line.(!top)) >= qi then keep := false
      else decr top;
    if !keep then begin
      while
        !top >= 0
        &&
        let t = stack_line.(!top) in
        (intercept.(t) -. qi) /. (mi -. slope.(t)) <= stack_from.(!top)
      do
        decr top
      done;
      let from =
        if !top < 0 then neg_infinity
        else
          let t = stack_line.(!top) in
          (intercept.(t) -. qi) /. (mi -. slope.(t))
      in
      incr top;
      stack_line.(!top) <- i;
      stack_from.(!top) <- from
    end
  done;
  (* Same record-to-threshold conversion as the reference: visited claims
     get their interval start, unvisited ones empty intervals. *)
  let unset = Float.nan in
  let th = Array.make (w + 1) unset in
  th.(0) <- neg_infinity;
  th.(w) <- infinity;
  for s = 0 to !top do
    let idx = stack_line.(s) in
    if idx > 0 then th.(idx) <- stack_from.(s)
  done;
  for i = w - 1 downto 1 do
    if Float.is_nan th.(i) then th.(i) <- th.(i + 1)
  done;
  for i = 1 to w - 1 do
    if th.(i) < th.(i - 1) then th.(i) <- th.(i - 1)
  done;
  { claims = own_claims; thresholds = th }

let equal ?(tol = 1e-9) t1 t2 =
  Claim.equal ~tol t1.claims t2.claims
  && Array.length t1.thresholds = Array.length t2.thresholds
  && Array.for_all2
       (fun a b ->
         a = b || Float.abs (a -. b) <= tol)
       t1.thresholds t2.thresholds

let support_size ?workspace dist t =
  let probs =
    match workspace with
    | Some ws -> Workspace.choice_probabilities ws dist t.thresholds
    | None -> choice_probabilities dist t
  in
  Array.fold_left (fun acc p -> if p > 0.0 then acc + 1 else acc) 0 probs

let pp fmt t =
  let values = Claim.values t.claims in
  let th = t.thresholds in
  Array.iteri
    (fun i v ->
      if th.(i + 1) > th.(i) then
        Format.fprintf fmt "[%g, %g) -> %g@ " th.(i) th.(i + 1) v)
    values
