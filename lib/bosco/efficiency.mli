(** Bargaining efficiency: the expected Nash product and the Price of
    Dishonesty (§V-C6, Eq. 19/20).

    For threshold strategies the double integral of Eq. 19 decomposes over
    the strategy intervals into products of partial moments, so
    {!expected_nash} is computed semi-analytically (quadrature only inside
    each interval).  The truthful benchmark [E(N | σ^T)] integrates
    [((u_X + u_Y)/2)²] over the viable quadrant on a 2-D grid. *)

val expected_nash :
  ?workspace:Workspace.t -> Game.t -> Strategy.t -> Strategy.t -> float
(** [E(N | (σ_X, σ_Y))] of Eq. 19.  [workspace] reuses choice
    probabilities cached during the preceding best-response dynamics
    (identical values, no recomputation). *)

val expected_nash_truthful : ?grid:int -> Game.t -> float
(** [E(N | σ^T)] where both parties claim their true utilities; [grid]
    (default 400) is the midpoint-rule resolution per axis. *)

val mc_expected_nash :
  ?pool:Pan_runner.Pool.t ->
  ?chunk:int ->
  rng:Pan_numerics.Rng.t ->
  samples:int ->
  Game.t ->
  Strategy.t ->
  Strategy.t ->
  float
(** Monte-Carlo estimate of {!expected_nash} by direct simulation of the
    bargaining game ([samples] plays).  Sample chunks ([chunk], default
    4096) draw from split generators and partial sums are folded in index
    order, so the estimate is bit-identical for any pool size. *)

val mc_truthful :
  ?pool:Pan_runner.Pool.t ->
  ?chunk:int ->
  rng:Pan_numerics.Rng.t ->
  samples:int ->
  Game.t ->
  float
(** Monte-Carlo estimate of {!expected_nash_truthful}; same determinism
    contract as {!mc_expected_nash}. *)

val price_of_dishonesty :
  ?workspace:Workspace.t ->
  ?truthful:float ->
  ?grid:int ->
  Game.t ->
  Strategy.t ->
  Strategy.t ->
  float
(** [PoD(σ) = 1 − E(N|σ)/E(N|σ^T)] (Eq. 20).  Pass [truthful] to reuse a
    precomputed benchmark across many equilibria for the same
    distributions.
    @raise Invalid_argument if the truthful benchmark is 0 (the agreement
    is unviable even under honesty, which the paper disregards). *)
