(** Executable checks of the BOSCO theorems (§V-D).

    Theorems 1–4 are proved in the paper; these functions check them on
    concrete equilibria — exhaustively where the claim structure allows it
    (privacy, budget balance) and by deterministic Monte-Carlo sampling of
    true utilities otherwise.  They back the property-based test suite and
    let users validate equilibria produced by a (possibly untrusted) BOSCO
    service. *)

open Pan_numerics

val individual_rationality :
  ?samples:int -> Rng.t -> Game.t -> Strategy.t -> Strategy.t -> bool
(** Theorem 1 (strong individual rationality): sampled plays never leave a
    party with negative after-negotiation utility (tolerance 1e-9).
    [samples] defaults to 1000. *)

val soundness :
  ?samples:int -> Rng.t -> Game.t -> Strategy.t -> Strategy.t -> bool
(** Theorem 2: sampled plays never conclude an agreement whose true
    surplus [u_X + u_Y] is negative. *)

val pod_in_unit_interval :
  ?grid:int -> Game.t -> Strategy.t -> Strategy.t -> bool
(** Theorem 3: the Price of Dishonesty lies in [\[0, 1\]] (up to
    quadrature tolerance 1e-6). *)

val privacy : Strategy.t -> bool
(** Theorem 4: no claim's preimage is a single utility value — trivially
    true for half-open real intervals; checks that every non-empty
    interval has positive length. *)

val budget_balance : Game.outcome -> bool
(** The transfer paid by one party equals the transfer received by the
    other (structurally true; checks the arithmetic of an outcome). *)

val shortest_interval : Strategy.t -> float
(** The length of the shortest non-empty, finite strategy interval — the
    quantitative privacy measure the paper suggests (∞ if there is no
    finite interval). *)
