type result = {
  strategy_x : Strategy.t;
  strategy_y : Strategy.t;
  rounds : int;
  converged : bool;
}

type start = Truthful | All_cancel

(* The always-cancel strategy: every true utility maps to the cancel
   claim, i.e. the whole real line is claim 0's interval. *)
let all_cancel claims =
  let w = Claim.cardinality claims in
  let thresholds =
    Array.init (w + 1) (fun i -> if i = 0 then neg_infinity else infinity)
  in
  Strategy.of_thresholds claims thresholds

let best_response_dynamics ?(start = Truthful) ?(max_rounds = 2000)
    ?(tol = 1e-9) (game : Game.t) =
  let open Game in
  let initial claims =
    match start with
    | Truthful -> Strategy.truthful_rounding claims
    | All_cancel -> all_cancel claims
  in
  let rec iterate sx sy round =
    let sx' =
      Strategy.best_response ~opponent_dist:game.dist_y ~opponent:sy
        game.claims_x
    in
    let sy' =
      Strategy.best_response ~opponent_dist:game.dist_x ~opponent:sx'
        game.claims_y
    in
    if Strategy.equal ~tol sx sx' && Strategy.equal ~tol sy sy' then
      { strategy_x = sx'; strategy_y = sy'; rounds = round; converged = true }
    else if round >= max_rounds then
      { strategy_x = sx'; strategy_y = sy'; rounds = round; converged = false }
    else iterate sx' sy' (round + 1)
  in
  iterate (initial game.claims_x) (initial game.claims_y) 1

let is_equilibrium ?(tol = 1e-9) (game : Game.t) sx sy =
  let open Game in
  let brx =
    Strategy.best_response ~opponent_dist:game.dist_y ~opponent:sy
      game.claims_x
  in
  let bry =
    Strategy.best_response ~opponent_dist:game.dist_x ~opponent:sx
      game.claims_y
  in
  Strategy.equal ~tol brx sx && Strategy.equal ~tol bry sy
