module Obs = Pan_obs.Obs

type result = {
  strategy_x : Strategy.t;
  strategy_y : Strategy.t;
  rounds : int;
  converged : bool;
}

type start = Truthful | All_cancel
type kernel = Fast | Reference

(* The always-cancel strategy: every true utility maps to the cancel
   claim, i.e. the whole real line is claim 0's interval. *)
let all_cancel claims =
  let w = Claim.cardinality claims in
  let thresholds =
    Array.init (w + 1) (fun i -> if i = 0 then neg_infinity else infinity)
  in
  Strategy.of_thresholds claims thresholds

(* The one fixed-point predicate shared by the dynamics' convergence
   check and {!is_equilibrium}'s verification, so the two cannot drift:
   a candidate pair is accepted exactly when each candidate strategy
   equals the corresponding best response within [tol]. *)
let fixed_point ~tol ~candidate_x ~candidate_y ~response_x ~response_y =
  Strategy.equal ~tol response_x candidate_x
  && Strategy.equal ~tol response_y candidate_y

let response ~workspace ~kernel ~opponent_dist ~opponent claims =
  Obs.time "bosco.br.response" (fun () ->
      match kernel with
      | Fast -> Strategy.best_response ~workspace ~opponent_dist ~opponent claims
      | Reference ->
          Strategy.best_response_reference ~opponent_dist ~opponent claims)

let best_response_dynamics ?workspace ?(kernel = Fast) ?(start = Truthful)
    ?(max_rounds = 2000) ?(tol = 1e-9) (game : Game.t) =
  let open Game in
  let workspace =
    match workspace with Some ws -> ws | None -> Workspace.create ()
  in
  let initial claims =
    match start with
    | Truthful -> Strategy.truthful_rounding claims
    | All_cancel -> all_cancel claims
  in
  let finish sx sy rounds converged =
    Obs.incr ~by:rounds "bosco.br.rounds";
    { strategy_x = sx; strategy_y = sy; rounds; converged }
  in
  let rec iterate sx sy round =
    let sx' =
      response ~workspace ~kernel ~opponent_dist:game.dist_y ~opponent:sy
        game.claims_x
    in
    let sy' =
      response ~workspace ~kernel ~opponent_dist:game.dist_x ~opponent:sx'
        game.claims_y
    in
    if
      fixed_point ~tol ~candidate_x:sx ~candidate_y:sy ~response_x:sx'
        ~response_y:sy'
    then finish sx' sy' round true
    else if round >= max_rounds then finish sx' sy' round false
    else iterate sx' sy' (round + 1)
  in
  iterate (initial game.claims_x) (initial game.claims_y) 1

let is_equilibrium ?workspace ?(kernel = Fast) ?(tol = 1e-9) (game : Game.t)
    sx sy =
  let open Game in
  let workspace =
    match workspace with Some ws -> ws | None -> Workspace.create ()
  in
  let brx =
    response ~workspace ~kernel ~opponent_dist:game.dist_y ~opponent:sy
      game.claims_x
  in
  let bry =
    response ~workspace ~kernel ~opponent_dist:game.dist_x ~opponent:sx
      game.claims_y
  in
  fixed_point ~tol ~candidate_x:sx ~candidate_y:sy ~response_x:brx
    ~response_y:bry
