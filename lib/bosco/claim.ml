open Pan_numerics

type t = float array

let cancel = neg_infinity

let of_list claims =
  List.iter
    (fun c ->
      if Float.is_nan c then invalid_arg "Claim.of_list: NaN claim";
      if c = infinity then invalid_arg "Claim.of_list: +inf claim")
    claims;
  let all = cancel :: claims in
  Array.of_list (List.sort_uniq compare all)

let values t = t
let cardinality t = Array.length t

let equal ?(tol = 0.0) t1 t2 =
  Array.length t1 = Array.length t2
  && Array.for_all2
       (fun a b -> a = b || Float.abs (a -. b) <= tol)
       t1 t2

let sample rng dist w =
  if w < 1 then invalid_arg "Claim.sample: w < 1";
  of_list (List.init w (fun _ -> Distribution.sample dist rng))

let grid dist w =
  if w < 1 then invalid_arg "Claim.grid: w < 1";
  if w = 1 then of_list [ Distribution.quantile dist 0.5 ]
  else
    let lo = Distribution.quantile dist 0.01
    and hi = Distribution.quantile dist 0.99 in
    of_list
      (List.init w (fun i ->
           lo +. ((hi -. lo) *. float_of_int i /. float_of_int (w - 1))))

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt v ->
         if v = neg_infinity then Format.pp_print_string fmt "-inf"
         else Format.fprintf fmt "%g" v))
    (Array.to_list t)
