type role = Party_x | Party_y

type settlement = { concluded : bool; transfer : float }

type state = Proposed | Published | Committing | Settled of settlement | Aborted of string

(* The session keeps the published mechanism data alongside the visible
   protocol state. *)
type session = {
  state : state;
  game : Game.t option;
  strategy_x : Strategy.t option;
  strategy_y : Strategy.t option;
  x_verified : bool;
  y_verified : bool;
  claim_x : float option;
  claim_y : float option;
}

let propose () =
  {
    state = Proposed;
    game = None;
    strategy_x = None;
    strategy_y = None;
    x_verified = false;
    y_verified = false;
    claim_x = None;
    claim_y = None;
  }

let state s = s.state

let publish s ~game ~strategy_x ~strategy_y =
  match s.state with
  | Proposed ->
      if not (Equilibrium.is_equilibrium game strategy_x strategy_y) then
        Error "published strategy pair is not a Nash equilibrium"
      else
        Ok
          {
            s with
            state = Published;
            game = Some game;
            strategy_x = Some strategy_x;
            strategy_y = Some strategy_y;
          }
  | _ -> Error "publish: session is not in Proposed"

let verify s role =
  match s.state with
  | Published ->
      let game = Option.get s.game in
      let sx = Option.get s.strategy_x and sy = Option.get s.strategy_y in
      if not (Equilibrium.is_equilibrium game sx sy) then
        Error "verification failed: not an equilibrium"
      else
        let s =
          match role with
          | Party_x -> { s with x_verified = true }
          | Party_y -> { s with y_verified = true }
        in
        Ok
          (if s.x_verified && s.y_verified then { s with state = Committing }
           else s)
  | _ -> Error "verify: session is not in Published"

let claims_of s role =
  let strategy =
    match role with Party_x -> s.strategy_x | Party_y -> s.strategy_y
  in
  Strategy.claims (Option.get strategy)

let commit s role ~claim =
  match s.state with
  | Committing ->
      let in_set =
        Array.exists (fun v -> v = claim) (Claim.values (claims_of s role))
      in
      if not in_set then Error "claim is not in the published choice set"
      else (
        match role with
        | Party_x ->
            if s.claim_x <> None then Error "party X already committed"
            else Ok { s with claim_x = Some claim }
        | Party_y ->
            if s.claim_y <> None then Error "party Y already committed"
            else Ok { s with claim_y = Some claim })
  | _ -> Error "commit: session is not in Committing"

let settle s =
  match s.state with
  | Committing -> (
      match (s.claim_x, s.claim_y) with
      | Some v_x, Some v_y ->
          let settlement =
            if v_x +. v_y >= 0.0 then
              { concluded = true; transfer = (v_x -. v_y) /. 2.0 }
            else { concluded = false; transfer = 0.0 }
          in
          Ok { s with state = Settled settlement }
      | _ -> Error "settle: both commitments are required")
  | _ -> Error "settle: session is not in Committing"

let abort s ~reason =
  match s.state with Settled _ -> s | _ -> { s with state = Aborted reason }

let settlement s =
  match s.state with Settled r -> Some r | _ -> None

let ( let* ) = Result.bind

let run_honest ~rng ~dist_x ~dist_y ~w ~u_x ~u_y =
  let report = Service.negotiate ~rng ~dist_x ~dist_y ~w () in
  let session = propose () in
  let* session =
    publish session ~game:report.Service.game
      ~strategy_x:report.Service.strategy_x
      ~strategy_y:report.Service.strategy_y
  in
  let* session = verify session Party_x in
  let* session = verify session Party_y in
  let v_x = Strategy.apply report.Service.strategy_x u_x in
  let v_y = Strategy.apply report.Service.strategy_y u_y in
  let* session = commit session Party_x ~claim:v_x in
  let* session = commit session Party_y ~claim:v_y in
  let* session = settle session in
  match settlement session with
  | Some { concluded = true; transfer } ->
      Ok
        (Game.Concluded
           { transfer; u_x_after = u_x -. transfer; u_y_after = u_y +. transfer })
  | Some { concluded = false; _ } -> Ok Game.Cancelled
  | None -> Error "internal: settled session without settlement"
