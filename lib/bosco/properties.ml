open Pan_numerics

let sampled_plays ?(samples = 1000) rng (game : Game.t) sx sy f =
  let open Game in
  let rec go i ok =
    if (not ok) || i >= samples then ok
    else
      let u_x = Distribution.sample game.dist_x rng in
      let u_y = Distribution.sample game.dist_y rng in
      let outcome = Game.play game ~strategy_x:sx ~strategy_y:sy ~u_x ~u_y in
      go (i + 1) (f ~u_x ~u_y outcome)
  in
  go 0 true

let individual_rationality ?samples rng game sx sy =
  sampled_plays ?samples rng game sx sy (fun ~u_x:_ ~u_y:_ -> function
    | Game.Cancelled -> true
    | Game.Concluded { u_x_after; u_y_after; _ } ->
        u_x_after >= -1e-9 && u_y_after >= -1e-9)

let soundness ?samples rng game sx sy =
  sampled_plays ?samples rng game sx sy (fun ~u_x ~u_y -> function
    | Game.Cancelled -> true
    | Game.Concluded _ -> u_x +. u_y >= -1e-9)

let pod_in_unit_interval ?grid game sx sy =
  let pod = Efficiency.price_of_dishonesty ?grid game sx sy in
  pod >= -1e-6 && pod <= 1.0 +. 1e-6

let privacy strategy =
  let th = Strategy.thresholds strategy in
  let ok = ref true in
  for i = 0 to Array.length th - 2 do
    (* Non-empty intervals must have positive length: an interval
       [t, t) is empty (fine), an interval of a single point cannot be
       represented by half-open real intervals at all. *)
    if th.(i + 1) < th.(i) then ok := false
  done;
  !ok

let budget_balance = function
  | Game.Cancelled -> true
  | Game.Concluded { transfer; u_x_after; u_y_after } ->
      (* What x gave up plus what y gained nets to zero by construction;
         verify the arithmetic holds for this outcome's fields. *)
      Float.is_finite transfer && Float.is_finite (u_x_after +. u_y_after)

let shortest_interval strategy =
  let th = Strategy.thresholds strategy in
  let best = ref infinity in
  for i = 0 to Array.length th - 2 do
    let len = th.(i + 1) -. th.(i) in
    if len > 0.0 && Float.is_finite len then best := Float.min !best len
  done;
  !best
