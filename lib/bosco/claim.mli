(** Choice sets of the BOSCO bargaining game (§V-C2).

    A choice set is a finite ascending set of utility claims that always
    contains [−∞], the cancel option guaranteeing strong individual
    rationality (any party can walk away). *)

type t
(** An ascending, duplicate-free array of claims with [t.(0) = −∞]. *)

val of_list : float list -> t
(** Sort, deduplicate, and ensure the cancel option is present.
    @raise Invalid_argument if any claim is NaN or [+∞]. *)

val values : t -> float array
(** The claims, ascending; index 0 is [−∞]. *)

val cardinality : t -> int
(** [W_Z = |V_Z|], counting the cancel option. *)

val equal : ?tol:float -> t -> t -> bool
(** Same cardinality and claims pairwise equal within [tol] (default [0.],
    i.e. IEEE equality, under which [-0. = 0.] and the infinite cancel
    claims match).  Unlike structural [(=)] on the value arrays, this
    applies the same comparison the threshold tolerance uses, so it can
    never disagree with it on signed zeros or non-finite values. *)

val cancel : float
(** The cancel claim, [−∞]. *)

val sample :
  Pan_numerics.Rng.t -> Pan_numerics.Distribution.t -> int -> t
(** [sample rng dist w] draws [w] claims from the utility distribution (the
    paper's random choice-set construction, §V-E) and adds the cancel
    option. Duplicates are merged, so the result may be smaller than
    [w + 1]. @raise Invalid_argument if [w < 1]. *)

val grid : Pan_numerics.Distribution.t -> int -> t
(** [grid dist w] places [w] equally spaced claims across the central 98%
    of the distribution's support — the deterministic alternative used by
    the choice-set-construction ablation. *)

val pp : Format.formatter -> t -> unit
