(** The one-shot BOSCO bargaining game (§V-C3).

    Each party commits a claim from its choice set; if the apparent surplus
    [v_X + v_Y] is non-negative the agreement is concluded with the cash
    compensation [Π_{X→Y} = (v_X − v_Y)/2], otherwise the negotiation is
    cancelled and both parties derive zero utility. *)

open Pan_numerics

type t = {
  dist_x : Distribution.t;  (** [U_X], party X's utility distribution *)
  dist_y : Distribution.t;
  claims_x : Claim.t;  (** [V_X] *)
  claims_y : Claim.t;
}

type outcome =
  | Concluded of { transfer : float; u_x_after : float; u_y_after : float }
  | Cancelled

val settle : u_x:float -> u_y:float -> v_x:float -> v_y:float -> outcome
(** The mechanism's decision rule given true utilities and committed
    claims. *)

val play :
  t ->
  strategy_x:Strategy.t ->
  strategy_y:Strategy.t ->
  u_x:float ->
  u_y:float ->
  outcome
(** One play: both parties apply their strategies to their true utilities
    and the mechanism settles. *)

val nash_value : u_x:float -> u_y:float -> outcome -> float
(** The realized Nash bargaining product [N] of Eq. 13: the product of
    after-negotiation utilities on conclusion, 0 on cancellation. *)

val expected_after_utility_x :
  ?workspace:Workspace.t ->
  t ->
  opponent:Strategy.t ->
  u_x:float ->
  v_x:float ->
  float
(** [E(ū_X)(u_X, v_X)] of Eq. 14 — the quantity best responses maximize.
    Exposed so tests can verify Algorithm 1 against brute force.
    [workspace] reuses cached opponent choice probabilities (identical
    values, no recomputation). *)

val pp_outcome : Format.formatter -> outcome -> unit
