open Pan_numerics
module Obs = Pan_obs.Obs

type entry = {
  dist : Distribution.t;
  mutable thresholds : float array;
  mutable probs : float array;
}

type t = {
  mutable entries : entry list;
  capacity : int;
  mutable pv : float array;
  mutable suf_p : float array;
  mutable suf_pv : float array;
  mutable slope : float array;
  mutable intercept : float array;
  mutable stack_line : int array;
  mutable stack_from : float array;
}

let default_capacity = 8

let create ?(cache_capacity = default_capacity) () =
  if cache_capacity < 1 then invalid_arg "Workspace.create: cache_capacity < 1";
  {
    entries = [];
    capacity = cache_capacity;
    pv = [||];
    suf_p = [||];
    suf_pv = [||];
    slope = [||];
    intercept = [||];
    stack_line = [||];
    stack_from = [||];
  }

let clear_cache ws = ws.entries <- []
let cache_size ws = List.length ws.entries
let cache_capacity ws = ws.capacity

let grown a n = if Array.length a >= n then a else Array.make (2 * n) 0.0
let grown_int a n = if Array.length a >= n then a else Array.make (2 * n) 0

let pv_scratch ws n =
  ws.pv <- grown ws.pv n;
  ws.pv

let suffix_scratch ws n =
  ws.suf_p <- grown ws.suf_p n;
  ws.suf_pv <- grown ws.suf_pv n;
  (ws.suf_p, ws.suf_pv)

let line_scratch ws n =
  ws.slope <- grown ws.slope n;
  ws.intercept <- grown ws.intercept n;
  (ws.slope, ws.intercept)

let stack_scratch ws n =
  ws.stack_line <- grown_int ws.stack_line n;
  ws.stack_from <- grown ws.stack_from n;
  (ws.stack_line, ws.stack_from)

let same_thresholds a b =
  a == b
  || Array.length a = Array.length b
     && (let ok = ref true in
         let n = Array.length a in
         let i = ref 0 in
         while !ok && !i < n do
           if not (a.(!i) = b.(!i)) then ok := false;
           incr i
         done;
         !ok)

(* The reference evaluates the CDF independently at both ends of every
   interval; evaluating each threshold point once yields the exact same
   floats (the CDF is a pure function), so caching cannot perturb
   results. *)
let cdf_at dist x =
  if x = neg_infinity then 0.0
  else if x = infinity then 1.0
  else Distribution.cdf dist x

let compute_probs dist thresholds probs =
  let w = Array.length thresholds - 1 in
  let prev = ref (cdf_at dist thresholds.(0)) in
  for i = 0 to w - 1 do
    let next = cdf_at dist thresholds.(i + 1) in
    probs.(i) <- Float.max 0.0 (next -. !prev);
    prev := next
  done

(* LRU lookup: a hit promotes the entry to the list head, so the tail is
   always the least-recently-used entry and eviction on insert trims it
   first.  Promotion reorders scratch state only — the cached floats are
   bit-identical to recomputation, so neither ordering nor eviction can
   perturb results. *)
let find_and_promote ws dist thresholds =
  let rec go acc = function
    | [] -> None
    | e :: rest ->
        if e.dist == dist && same_thresholds e.thresholds thresholds then (
          ws.entries <- e :: List.rev_append acc rest;
          Some e)
        else go (e :: acc) rest
  in
  go [] ws.entries

let choice_probabilities ws dist thresholds =
  let w = Array.length thresholds - 1 in
  if w < 0 then invalid_arg "Workspace.choice_probabilities: no thresholds";
  match find_and_promote ws dist thresholds with
  | Some e ->
      Obs.incr "bosco.br.cdf_cache_hits";
      e.probs
  | None ->
      Obs.incr "bosco.br.cdf_cache_misses";
      let probs = Array.make w 0.0 in
      compute_probs dist thresholds probs;
      let e = { dist; thresholds; probs } in
      let kept = List.filteri (fun i _ -> i < ws.capacity - 1) ws.entries in
      ws.entries <- e :: kept;
      probs
