(** The message-level negotiation protocol between two ASes and a BOSCO
    service (§V-C).

    The paper describes the interaction informally: the parties send the
    agreement content to the service; the service estimates utility
    distributions, constructs choice sets, finds an equilibrium, and
    publishes the mechanism-information set [(U_X, U_Y, V_X, V_Y, σ★)];
    each party verifies the equilibrium and commits a claim; the service
    settles.  This module makes that a checked state machine, so an
    implementation (or a test) cannot commit claims before verification,
    settle twice, or settle with a claim outside the published choice
    set.

    Privacy note: the service never sees true utilities — it settles from
    the committed claims alone ({!settlement}); after-negotiation
    utilities are computed privately by each party. *)

open Pan_numerics

type role = Party_x | Party_y

type settlement = {
  concluded : bool;
  transfer : float;  (** [Π_{X→Y}]; 0 when not concluded *)
}

type state =
  | Proposed  (** agreement content submitted, awaiting the mechanism *)
  | Published  (** mechanism-information set out; awaiting verifications *)
  | Committing  (** both parties verified; claims arriving *)
  | Settled of settlement
  | Aborted of string

type session

val propose : unit -> session
(** Start a session in [Proposed]. *)

val state : session -> state

val publish :
  session ->
  game:Game.t ->
  strategy_x:Strategy.t ->
  strategy_y:Strategy.t ->
  (session, string) result
(** The service publishes the mechanism-information set.  Fails outside
    [Proposed], or if the strategy pair is not actually a Nash
    equilibrium of the game (a dishonest service is rejected up front). *)

val verify : session -> role -> (session, string) result
(** A party re-checks the published equilibrium (the §V-C6 verification
    step); once both parties have verified, the session moves to
    [Committing].  Fails outside [Published]. *)

val commit : session -> role -> claim:float -> (session, string) result
(** Commit a claim.  Fails outside [Committing], if the claim is not in
    the party's published choice set, or on a second commitment by the
    same party. *)

val settle : session -> (session, string) result
(** The service settles once both claims are in: concluded iff the
    apparent surplus is non-negative, with transfer [(v_X − v_Y)/2].
    Fails unless both commitments are present. *)

val abort : session -> reason:string -> session
(** Any participant may abort a non-settled session (no-op when already
    settled). *)

val settlement : session -> settlement option
(** The result of a settled session. *)

val run_honest :
  rng:Rng.t ->
  dist_x:Distribution.t ->
  dist_y:Distribution.t ->
  w:int ->
  u_x:float ->
  u_y:float ->
  (Game.outcome, string) result
(** Drive a full session end to end: negotiate choice sets via
    {!Service.negotiate}, publish, both parties verify, each applies its
    equilibrium strategy to its private true utility, commit, settle —
    and reconstruct the parties' after-negotiation outcome locally. *)
