(** The BOSCO service (§V-C1, §V-E).

    The service estimates the parties' utility distributions, constructs
    choice sets (by random sampling from those distributions, or on a
    deterministic grid for the ablation), finds a Nash equilibrium of the
    induced game by best-response dynamics, scores it by its Price of
    Dishonesty, and communicates the mechanism-information set
    [(U_X, U_Y, V_X, V_Y, σ★)] to the parties — who can verify the
    equilibrium themselves before following it. *)

open Pan_numerics

type construction =
  | Random_sampling  (** the paper's method: claims drawn from [U_Z] *)
  | Grid  (** equally spaced claims (ablation baseline) *)

type report = {
  game : Game.t;
  strategy_x : Strategy.t;
  strategy_y : Strategy.t;
  pod : float;  (** Price of Dishonesty of this equilibrium *)
  rounds : int;
  converged : bool;
  equilibrium_choices_x : int;
      (** claims party X plays with positive probability *)
  equilibrium_choices_y : int;
}

val negotiate :
  ?construction:construction ->
  ?truthful:float ->
  ?workspace:Workspace.t ->
  ?kernel:Equilibrium.kernel ->
  rng:Rng.t ->
  dist_x:Distribution.t ->
  dist_y:Distribution.t ->
  w:int ->
  unit ->
  report
(** Build one choice-set combination with [w] claims per party, run
    best-response dynamics, and score the equilibrium.  [truthful]
    optionally reuses a precomputed truthful benchmark.  A fresh
    {!Workspace.t} is created per negotiation unless [workspace] is
    given; [kernel] selects the best-response kernel (default
    {!Equilibrium.Fast}). *)

val trials :
  ?construction:construction ->
  ?kernel:Equilibrium.kernel ->
  ?pool:Pan_runner.Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?deadline:float ->
  rng:Rng.t ->
  dist_x:Distribution.t ->
  dist_y:Distribution.t ->
  w:int ->
  n:int ->
  unit ->
  report list
(** [n] independent {!negotiate} runs (the paper uses 200 per choice-set
    cardinality); the truthful benchmark is computed once and shared.
    Trials are chunked ([chunk], default 8) onto [pool] with a split
    generator per chunk, so the report list is identical for any pool
    size; [rng] is advanced by one {!Rng.split} per chunk.
    [retries]/[deadline] supervise the chunks as in
    {!Pan_runner.Task.map_reduce}: a chunk recovered by retry replays
    the same split generator, leaving the reports bit-identical. *)

val best : report list -> report
(** Lowest-PoD report. @raise Invalid_argument on an empty list. *)

val mean_pod : report list -> float
val min_pod : report list -> float

val verify : report -> bool
(** The parties' check: the communicated strategy pair really is a Nash
    equilibrium of the communicated game. *)
