module Obs = Pan_obs.Obs

type construction = Random_sampling | Grid

type report = {
  game : Game.t;
  strategy_x : Strategy.t;
  strategy_y : Strategy.t;
  pod : float;
  rounds : int;
  converged : bool;
  equilibrium_choices_x : int;
  equilibrium_choices_y : int;
}

let build_claims construction rng dist w =
  match construction with
  | Random_sampling -> Claim.sample rng dist w
  | Grid -> Claim.grid dist w

let negotiate ?(construction = Random_sampling) ?truthful ?workspace ?kernel
    ~rng ~dist_x ~dist_y ~w () =
  if w < 1 then invalid_arg "Service.negotiate: w < 1";
  let claims_x = build_claims construction rng dist_x w in
  let claims_y = build_claims construction rng dist_y w in
  let game = Game.{ dist_x; dist_y; claims_x; claims_y } in
  (* One workspace per negotiation: buffers and the CDF cache live across
     every dynamics round and the efficiency scoring, and cache traffic
     stays independent of how trials are scheduled onto domains. *)
  let workspace =
    match workspace with Some ws -> ws | None -> Workspace.create ()
  in
  let eq = Equilibrium.best_response_dynamics ~workspace ?kernel game in
  let pod =
    Efficiency.price_of_dishonesty ~workspace ?truthful game
      eq.Equilibrium.strategy_x eq.Equilibrium.strategy_y
  in
  {
    game;
    strategy_x = eq.Equilibrium.strategy_x;
    strategy_y = eq.Equilibrium.strategy_y;
    pod;
    rounds = eq.Equilibrium.rounds;
    converged = eq.Equilibrium.converged;
    equilibrium_choices_x =
      Strategy.support_size ~workspace dist_x eq.Equilibrium.strategy_x;
    equilibrium_choices_y =
      Strategy.support_size ~workspace dist_y eq.Equilibrium.strategy_y;
  }

let trials ?(construction = Random_sampling) ?kernel ?pool ?(chunk = 8)
    ?retries ?deadline ~rng ~dist_x ~dist_y ~w ~n () =
  if n < 1 then invalid_arg "Service.trials: n < 1";
  let truthful =
    Efficiency.expected_nash_truthful
      Game.{ dist_x; dist_y; claims_x = Claim.of_list []; claims_y = Claim.of_list [] }
  in
  (* Each chunk of trials negotiates from its own split generator, so the
     result is identical for any pool size (and trial chunks are
     reproducible in isolation). *)
  let reports =
    Obs.with_span "bosco/trials" (fun () ->
        Pan_runner.Task.map_reduce ?pool ?retries ?deadline ~rng ~n ~chunk
          ~f:(fun crng _ ->
            let r =
              negotiate ~construction ~truthful ?kernel ~rng:crng ~dist_x
                ~dist_y ~w ()
            in
            Obs.incr "bosco.trials";
            if r.converged then Obs.incr "bosco.converged";
            Obs.incr ~by:r.rounds "bosco.rounds";
            r)
          ~combine:(fun acc r -> r :: acc)
          ~init:[] ())
  in
  List.rev reports

let best = function
  | [] -> invalid_arg "Service.best: empty list"
  | r :: rest ->
      List.fold_left (fun b r -> if r.pod < b.pod then r else b) r rest

let mean_pod reports =
  match reports with
  | [] -> invalid_arg "Service.mean_pod: empty list"
  | _ ->
      List.fold_left (fun acc r -> acc +. r.pod) 0.0 reports
      /. float_of_int (List.length reports)

let min_pod reports = (best reports).pod

let verify r =
  Equilibrium.is_equilibrium r.game r.strategy_x r.strategy_y
