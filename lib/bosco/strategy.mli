(** Threshold bargaining strategies and best responses (§V-C4, Alg. 1).

    A strategy maps a party's true utility to a claim from its choice set.
    Best-response strategies are always {e threshold strategies}: claim
    [v_i] is played exactly when the true utility lies in
    [\[t_i, t_{i+1})].  Because the expected after-negotiation utility of
    playing claim [v] is a linear function [m(v)·u + q(v)] of the true
    utility [u] (Eq. 16/17), the best response is the upper envelope of
    [W] lines — computed exactly by {!best_response}. *)

open Pan_numerics

type t
(** A threshold strategy over a fixed choice set. *)

val claims : t -> Claim.t

val thresholds : t -> float array
(** Length [W + 1], non-decreasing, first [−∞] and last [+∞]; claim [i]
    is played on [\[thresholds.(i), thresholds.(i+1))]. *)

val of_thresholds : Claim.t -> float array -> t
(** @raise Invalid_argument if the array length is not [W + 1], the
    boundaries are not non-decreasing, or the ends are not [−∞]/[+∞]. *)

val truthful_rounding : Claim.t -> t
(** The "round down to the nearest claim" strategy — the natural starting
    point of best-response dynamics: thresholds are the claims
    themselves. *)

val apply : t -> float -> float
(** [apply s u = σ(u)]: the claim played at true utility [u]. *)

val choice_probabilities : Distribution.t -> t -> float array
(** [P(σ(u) = v_i)] under the given utility distribution (Eq. 15). *)

val line_coefficients :
  opponent_dist:Distribution.t -> opponent:t -> Claim.t -> (float * float) array
(** For each own claim [v_i], the coefficients [(m_i, q_i)] of the expected
    after-negotiation utility [m_i·u + q_i] (Eq. 16/17), given the
    opponent's strategy. The cancel claim has coefficients [(0, 0)]. *)

val best_response :
  ?workspace:Workspace.t ->
  opponent_dist:Distribution.t ->
  opponent:t ->
  Claim.t ->
  t
(** Algorithm 1, fast kernel: the upper-envelope best response in
    O(W log W) — per-claim sums read off precomputed suffix sums with the
    suffix boundary found by binary search, and the envelope by one
    monotone stack pass over the slope-sorted lines.  [workspace] supplies
    reusable buffers and the opponent-CDF cache; without it a private
    workspace is allocated per call.  Agrees with
    {!best_response_reference} up to the suffix sums' reassociation error
    (thresholds within ~1e-12). *)

val best_response_reference :
  opponent_dist:Distribution.t -> opponent:t -> Claim.t -> t
(** The original O(W²) kernel (per-claim rescans of the opponent's choice
    set, quadratic dominance check, candidate-scanning envelope walk),
    kept as the test oracle and benchmark baseline for {!best_response}. *)

val equal : ?tol:float -> t -> t -> bool
(** Same claim set ({!Claim.equal} with the same [tol]) and thresholds
    pointwise within [tol] (default [1e-9]). *)

val support_size : ?workspace:Workspace.t -> Distribution.t -> t -> int
(** Number of claims played with positive probability — the paper's
    "equilibrium choices" count (§V-E). *)

val pp : Format.formatter -> t -> unit
