(** Scratch buffers and CDF caching for the fast best-response kernel.

    One workspace serves one best-response-dynamics run (and the
    efficiency scoring that follows it): it owns every float array the
    kernel needs per round, so after the first round no further
    allocation happens, and it memoizes opponent choice probabilities —
    the CDF evaluated at the opponent's threshold points — keyed by
    (distribution, thresholds).  Entries are invalidated only by the
    thresholds changing, which is exactly when the cached CDF values stop
    being the right ones.

    A workspace is scratch state only: every value it hands out is
    bit-identical to the uncached computation, so reusing (or not
    reusing) a workspace can never change results.  It is not
    thread-safe; use one workspace per domain (the service allocates one
    per negotiation, which trivially satisfies this and keeps the
    [bosco.br.cdf_cache_*] counters independent of worker scheduling). *)

open Pan_numerics

type t

val create : ?cache_capacity:int -> unit -> t
(** [cache_capacity] bounds the opponent-CDF cache (default 8 entries,
    enough for both parties of a few interleaved negotiations).  When a
    long-lived workspace is reused across many negotiations — the
    marketplace keeps one per domain — the cache evicts
    least-recently-used entries past the cap instead of growing, so
    million-negotiation runs stay flat.
    @raise Invalid_argument if [cache_capacity < 1]. *)

val clear_cache : t -> unit
(** Drop every cached CDF entry (scratch buffers are kept).  Results are
    unaffected — the cache is a pure memo — only the
    [bosco.br.cdf_cache_*] hit/miss split changes. *)

val cache_size : t -> int
(** Number of live CDF cache entries, [<= cache_capacity]. *)

val cache_capacity : t -> int

val choice_probabilities : t -> Distribution.t -> float array -> float array
(** [choice_probabilities ws dist thresholds] is
    [P(σ(u) = v_i)] for each strategy interval (Eq. 15), cached with
    LRU eviction past the workspace's capacity.
    The returned array is owned by the workspace and valid until the
    next cache eviction — read it before the next series of calls, do
    not retain or mutate it.  Distributions are keyed by physical
    identity; thresholds by [==] or element-wise IEEE equality.
    Increments [bosco.br.cdf_cache_hits]/[misses]. *)

(** {2 Kernel scratch} — buffers grown geometrically, contents
    unspecified; each call returns arrays of length at least the request.
    Internal to {!Strategy.best_response}. *)

val pv_scratch : t -> int -> float array
val suffix_scratch : t -> int -> float array * float array
val line_scratch : t -> int -> float array * float array
val stack_scratch : t -> int -> int array * float array
