open Pan_numerics

(* E[N | σ] = Σ_{i,j : v_i + v_j ≥ 0} ∫_{I_i} (u_x − Π_ij) dU_X ·
   ∫_{J_j} (u_y + Π_ij) dU_Y, because N factorizes once the claims (and
   hence the transfer) are fixed by the interval pair. *)
let expected_nash ?workspace (game : Game.t) sx sy =
  let open Game in
  let vx = Claim.values (Strategy.claims sx) in
  let vy = Claim.values (Strategy.claims sy) in
  let thx = Strategy.thresholds sx and thy = Strategy.thresholds sy in
  let probabilities dist s =
    match workspace with
    | Some ws -> Workspace.choice_probabilities ws dist (Strategy.thresholds s)
    | None -> Strategy.choice_probabilities dist s
  in
  let px = probabilities game.dist_x sx in
  let py = probabilities game.dist_y sy in
  let pex =
    Array.init (Array.length vx) (fun i ->
        if px.(i) = 0.0 then 0.0
        else Distribution.partial_expectation game.dist_x thx.(i) thx.(i + 1))
  in
  let pey =
    Array.init (Array.length vy) (fun j ->
        if py.(j) = 0.0 then 0.0
        else Distribution.partial_expectation game.dist_y thy.(j) thy.(j + 1))
  in
  let total = ref 0.0 in
  Array.iteri
    (fun i vi ->
      if vi > neg_infinity && px.(i) > 0.0 then
        Array.iteri
          (fun j vj ->
            if vj > neg_infinity && py.(j) > 0.0 && vi +. vj >= 0.0 then begin
              let pi = (vi -. vj) /. 2.0 in
              let x_factor = pex.(i) -. (pi *. px.(i)) in
              let y_factor = pey.(j) +. (pi *. py.(j)) in
              total := !total +. (x_factor *. y_factor)
            end)
          vy)
    vx;
  !total

let expected_nash_truthful ?(grid = 400) (game : Game.t) =
  let open Game in
  let lo_x, hi_x = Distribution.support game.dist_x in
  let lo_y, hi_y = Distribution.support game.dist_y in
  let clamp lo hi d =
    let flo = if Float.is_finite lo then lo else Distribution.quantile d 0.001 in
    let fhi = if Float.is_finite hi then hi else Distribution.quantile d 0.999 in
    (flo, fhi)
  in
  let bx = clamp lo_x hi_x game.dist_x and by = clamp lo_y hi_y game.dist_y in
  Integrate.grid_2d ~nx:grid ~ny:grid
    (fun ux uy ->
      if ux +. uy >= 0.0 then
        let half = (ux +. uy) /. 2.0 in
        half *. half
        *. Distribution.pdf game.dist_x ux
        *. Distribution.pdf game.dist_y uy
      else 0.0)
    bx by

let mc_expected_nash ?pool ?(chunk = 4096) ~rng ~samples (game : Game.t) sx sy
    =
  if samples < 1 then invalid_arg "Efficiency.mc_expected_nash: samples < 1";
  let open Game in
  let total =
    Pan_runner.Task.map_reduce ?pool ~rng ~n:samples ~chunk
      ~f:(fun crng _ ->
        let u_x = Distribution.sample game.dist_x crng in
        let u_y = Distribution.sample game.dist_y crng in
        let outcome = Game.play game ~strategy_x:sx ~strategy_y:sy ~u_x ~u_y in
        Game.nash_value ~u_x ~u_y outcome)
      ~combine:( +. ) ~init:0.0 ()
  in
  total /. float_of_int samples

let mc_truthful ?pool ?(chunk = 4096) ~rng ~samples (game : Game.t) =
  if samples < 1 then invalid_arg "Efficiency.mc_truthful: samples < 1";
  let open Game in
  let total =
    Pan_runner.Task.map_reduce ?pool ~rng ~n:samples ~chunk
      ~f:(fun crng _ ->
        let u_x = Distribution.sample game.dist_x crng in
        let u_y = Distribution.sample game.dist_y crng in
        if u_x +. u_y >= 0.0 then
          let half = (u_x +. u_y) /. 2.0 in
          half *. half
        else 0.0)
      ~combine:( +. ) ~init:0.0 ()
  in
  total /. float_of_int samples

let price_of_dishonesty ?workspace ?truthful ?grid game sx sy =
  let benchmark =
    match truthful with
    | Some v -> v
    | None -> expected_nash_truthful ?grid game
  in
  if benchmark <= 0.0 then
    invalid_arg "Efficiency.price_of_dishonesty: unviable agreement";
  1.0 -. (expected_nash ?workspace game sx sy /. benchmark)
