type t = { transfer : float; rate : float; volume_shift : float }

let of_outcome ~rate outcome =
  if rate <= 0.0 then invalid_arg "Volume_terms.of_outcome: rate <= 0";
  match outcome with
  | Game.Cancelled -> None
  | Game.Concluded { transfer; _ } ->
      Some { transfer; rate; volume_shift = transfer /. rate }

let pp fmt t =
  if t.volume_shift >= 0.0 then
    Format.fprintf fmt
      "X cedes %g volume units to Y (= %g money at rate %g)" t.volume_shift
      t.transfer t.rate
  else
    Format.fprintf fmt
      "Y cedes %g volume units to X (= %g money at rate %g)"
      (-.t.volume_shift) (-.t.transfer) t.rate
