(** Volume-denominated settlement of a BOSCO outcome.

    The paper notes that adapting BOSCO to flow-volume agreements is open
    (§V); this module implements the natural first step: instead of cash,
    the concluded transfer [Π_{X→Y}] is converted into flow-allowance
    units at a commonly known reference rate [ρ] (e.g. the market transit
    price), and the paying party cedes [Π/ρ] units of its agreement
    allowance to the other party.

    Under the approximation that one unit of allowance is worth [ρ] to
    its holder, the after-settlement utilities equal BOSCO's
    [(u_X − Π, u_Y + Π)], so Theorems 1–3 carry over with respect to the
    claimed utilities; the settlement is budget-balanced in volume units
    by construction (what one party cedes, the other gains).  The
    allowance bookkeeping itself lives in {!Pan_econ.Extension}
    ([shift_allowance]). *)

type t = {
  transfer : float;  (** the underlying cash-equivalent [Π_{X→Y}] *)
  rate : float;  (** reference money-per-volume rate [ρ] *)
  volume_shift : float;
      (** [Π/ρ]: allowance units X cedes to Y (negative: Y cedes to X) *)
}

val of_outcome : rate:float -> Game.outcome -> t option
(** [None] when the negotiation was cancelled.
    @raise Invalid_argument if [rate <= 0]. *)

val pp : Format.formatter -> t -> unit
