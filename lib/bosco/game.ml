open Pan_numerics

type t = {
  dist_x : Distribution.t;
  dist_y : Distribution.t;
  claims_x : Claim.t;
  claims_y : Claim.t;
}

type outcome =
  | Concluded of { transfer : float; u_x_after : float; u_y_after : float }
  | Cancelled

let settle ~u_x ~u_y ~v_x ~v_y =
  (* -inf claims make the sum -inf (or nan only if the other were +inf,
     which choice sets exclude), so cancellation is handled uniformly. *)
  if v_x +. v_y >= 0.0 then
    let transfer = (v_x -. v_y) /. 2.0 in
    Concluded
      { transfer; u_x_after = u_x -. transfer; u_y_after = u_y +. transfer }
  else Cancelled

let play _t ~strategy_x ~strategy_y ~u_x ~u_y =
  settle ~u_x ~u_y ~v_x:(Strategy.apply strategy_x u_x)
    ~v_y:(Strategy.apply strategy_y u_y)

let nash_value ~u_x:_ ~u_y:_ = function
  | Cancelled -> 0.0
  | Concluded { u_x_after; u_y_after; _ } -> u_x_after *. u_y_after

let expected_after_utility_x ?workspace t ~opponent ~u_x ~v_x =
  if v_x = neg_infinity then 0.0
  else begin
    let values = Claim.values (Strategy.claims opponent) in
    let probs =
      match workspace with
      | Some ws ->
          Workspace.choice_probabilities ws t.dist_y
            (Strategy.thresholds opponent)
      | None -> Strategy.choice_probabilities t.dist_y opponent
    in
    let acc = ref 0.0 in
    Array.iteri
      (fun j v_y ->
        if v_y >= -.v_x then
          acc := !acc +. (probs.(j) *. (u_x -. ((v_x -. v_y) /. 2.0))))
      values;
    !acc
  end

let pp_outcome fmt = function
  | Cancelled -> Format.pp_print_string fmt "cancelled"
  | Concluded { transfer; u_x_after; u_y_after } ->
      Format.fprintf fmt "concluded: transfer=%g after=(%g, %g)" transfer
        u_x_after u_y_after
