open Pan_numerics
module Obs = Pan_obs.Obs

let chunk_count ~n ~chunk = (n + chunk - 1) / chunk

(* Every chunk executed — on any path, parallel or sequential — reports
   the same three metrics, so totals are independent of pool size:
   runner.chunks (+1), runner.items (+length), and a runner.chunk
   duration histogram entry.  All are no-ops unless Pan_obs.Obs is
   configured. *)
let instrument_chunk ~items body =
  Obs.time "runner.chunk" (fun () ->
      Obs.incr "runner.chunks";
      Obs.incr ~by:items "runner.items";
      body ())

(* Chunk [c] always receives the [(c+1)]-th split of the master rng; the
   sequential path below splits lazily in the same order, so both paths
   consume the master stream identically. *)
let split_rngs rng m =
  if m = 0 then [||]
  else begin
    let rngs = Array.make m (Rng.split rng) in
    for c = 1 to m - 1 do
      rngs.(c) <- Rng.split rng
    done;
    rngs
  end

let seq_map_reduce ~rng ~n ~chunk ~f ~combine ~init =
  let m = chunk_count ~n ~chunk in
  let acc = ref init in
  for c = 0 to m - 1 do
    let crng = Rng.split rng in
    let hi = min n ((c + 1) * chunk) - 1 in
    instrument_chunk
      ~items:(hi - (c * chunk) + 1)
      (fun () ->
        for i = c * chunk to hi do
          acc := combine !acc (f crng i)
        done)
  done;
  !acc

(* Run [run_chunk 0 .. run_chunk (m-1)] on the pool and return the results
   in chunk order.  The first exception (in completion order) is re-raised
   after every chunk has finished, so the pool stays consistent. *)
let par_chunks pool ~m run_chunk =
  let results = Array.make m None in
  let mutex = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref m in
  let failure = ref None in
  let job c () =
    let outcome =
      try Ok (run_chunk c)
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock mutex;
    (match outcome with
    | Ok v -> results.(c) <- Some v
    | Error err -> ( match !failure with None -> failure := Some err | Some _ -> ()));
    decr remaining;
    if !remaining = 0 then Condition.signal all_done;
    Mutex.unlock mutex
  in
  Pool.run_jobs pool (List.init m (fun c () -> job c ()));
  Mutex.lock mutex;
  while !remaining > 0 do
    Condition.wait all_done mutex
  done;
  Mutex.unlock mutex;
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

(* A run is supervised when the caller asked for retry/deadline policy,
   or when fault injection is active (faults must also hit -j 1 runs so
   the cram tests can exercise the sequential path).  Only the
   supervised path pays for buffering and per-attempt Rng copies. *)
let supervision ~retries ~deadline =
  if retries = 0 && deadline = None && Fault.get () = None then None
  else Some (Supervise.policy ~retries ?deadline ())

(* Supervised map_reduce: chunk results are buffered and folded only
   after the chunk succeeds, so a retried attempt never leaks partial
   items into the accumulator; every attempt of chunk [c] re-runs on a
   pristine Rng.copy of the chunk's split generator (retry determinism). *)
let supervised_map_reduce ?pool ~policy ~partial ~rng ~n ~chunk ~f ~combine
    ~init () =
  let m = chunk_count ~n ~chunk in
  let rngs = split_rngs rng m in
  let run_chunk c =
    let crng = Rng.copy rngs.(c) in
    let hi = min n ((c + 1) * chunk) - 1 in
    instrument_chunk
      ~items:(hi - (c * chunk) + 1)
      (fun () ->
        (* items in reverse index order; re-reversed during the fold *)
        let items = ref [] in
        for i = c * chunk to hi do
          items := f crng i :: !items
        done;
        !items)
  in
  let per_chunk, manifest =
    Supervise.run_chunks ?pool ~policy ~partial ~m run_chunk
  in
  let acc =
    Array.fold_left
      (fun acc -> function
        | Some items -> List.fold_left combine acc (List.rev items)
        | None -> acc)
      init per_chunk
  in
  (acc, manifest)

let map_reduce ?pool ?(retries = 0) ?deadline ~rng ~n ~chunk ~f ~combine ~init
    () =
  if n < 0 then invalid_arg "Task.map_reduce: n < 0";
  if chunk < 1 then invalid_arg "Task.map_reduce: chunk < 1";
  match supervision ~retries ~deadline with
  | Some policy ->
      fst
        (supervised_map_reduce ?pool ~policy ~partial:false ~rng ~n ~chunk ~f
           ~combine ~init ())
  | None -> (
      let m = chunk_count ~n ~chunk in
      match pool with
      | Some p when Pool.domains p > 1 && m > 1 ->
          let rngs = split_rngs rng m in
          let run_chunk c =
            let crng = rngs.(c) in
            let hi = min n ((c + 1) * chunk) - 1 in
            instrument_chunk
              ~items:(hi - (c * chunk) + 1)
              (fun () ->
                (* items in reverse index order; re-reversed during the fold *)
                let items = ref [] in
                for i = c * chunk to hi do
                  items := f crng i :: !items
                done;
                !items)
          in
          let per_chunk = par_chunks p ~m run_chunk in
          Array.fold_left
            (fun acc items -> List.fold_left combine acc (List.rev items))
            init per_chunk
      | _ -> seq_map_reduce ~rng ~n ~chunk ~f ~combine ~init)

let map_reduce_partial ?pool ~policy ~rng ~n ~chunk ~f ~combine ~init () =
  if n < 0 then invalid_arg "Task.map_reduce_partial: n < 0";
  if chunk < 1 then invalid_arg "Task.map_reduce_partial: chunk < 1";
  supervised_map_reduce ?pool ~policy ~partial:true ~rng ~n ~chunk ~f ~combine
    ~init ()

let supervised_map ?pool ~policy ~partial ~chunk ~n ~f () =
  let m = chunk_count ~n ~chunk in
  let run_chunk c =
    let lo = c * chunk in
    let len = min chunk (n - lo) in
    instrument_chunk ~items:len (fun () ->
        let out = Array.make len (f lo) in
        for k = 1 to len - 1 do
          out.(k) <- f (lo + k)
        done;
        out)
  in
  let per_chunk, manifest =
    Supervise.run_chunks ?pool ~policy ~partial ~m run_chunk
  in
  let completed = List.filter_map Fun.id (Array.to_list per_chunk) in
  (Array.concat completed, manifest)

let map ?pool ?(chunk = 16) ?(retries = 0) ?deadline ~n ~f () =
  if n < 0 then invalid_arg "Task.map: n < 0";
  if chunk < 1 then invalid_arg "Task.map: chunk < 1";
  match supervision ~retries ~deadline with
  | Some policy ->
      fst (supervised_map ?pool ~policy ~partial:false ~chunk ~n ~f ())
  | None -> (
      let m = chunk_count ~n ~chunk in
      match pool with
      | Some p when Pool.domains p > 1 && m > 1 ->
          let run_chunk c =
            let lo = c * chunk in
            let len = min chunk (n - lo) in
            instrument_chunk ~items:len (fun () ->
                let out = Array.make len (f lo) in
                for k = 1 to len - 1 do
                  out.(k) <- f (lo + k)
                done;
                out)
          in
          Array.concat (Array.to_list (par_chunks p ~m run_chunk))
      | _ ->
          (* Sequential path: chunked so the instrumentation reports the same
             chunk/item counts as the parallel path; evaluation order (f 0,
             f 1, …) is exactly that of Array.init. *)
          if n = 0 then [||]
          else begin
            let out = ref [||] in
            for c = 0 to m - 1 do
              let lo = c * chunk in
              let hi = min n (lo + chunk) - 1 in
              instrument_chunk
                ~items:(hi - lo + 1)
                (fun () ->
                  if c = 0 then out := Array.make n (f 0);
                  let arr = !out in
                  for i = max 1 lo to hi do
                    arr.(i) <- f i
                  done)
            done;
            !out
          end)

let map_partial ?pool ?(chunk = 16) ~policy ~n ~f () =
  if n < 0 then invalid_arg "Task.map_partial: n < 0";
  if chunk < 1 then invalid_arg "Task.map_partial: chunk < 1";
  supervised_map ?pool ~policy ~partial:true ~chunk ~n ~f ()
