(** Fixed-size domain pool with a mutex/condition work queue.

    A pool with [domains = d] provides [d]-way parallelism: [d - 1] worker
    domains are spawned at creation and block on the queue, and the caller
    of {!run_jobs} participates as the [d]-th worker.  A pool with
    [domains = 1] spawns no domains at all; {!Task} then takes a purely
    sequential path.

    Pools are cheap enough to create per experiment but are designed to be
    reused: {!Task.map_reduce} can be called any number of times on the
    same pool, including after a job raised.

    When {!Pan_obs.Obs} is configured, pool creation records the
    [pool.created] counter and a [pool.domains] high-water gauge, and
    {!run_jobs} counts enqueued jobs under [pool.jobs].  These are
    engine-internal metrics: unlike the [runner.*] family they naturally
    differ between pool sizes (the sequential path never enqueues). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the submitting caller). *)

val shutdown : t -> unit
(** Signal all workers to exit once the queue is drained and join them.
    Idempotent; the pool must not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)

val run_jobs : t -> (unit -> unit) list -> unit
(** Low-level: enqueue jobs and help drain the queue on the calling
    domain.  Returns when the queue is empty; jobs picked up by other
    workers may still be executing, so callers must track completion
    themselves (as {!Task} does).  Jobs must not raise.  Only one
    [run_jobs] may be in flight per pool at a time.
    @raise Invalid_argument if the pool has been shut down. *)
