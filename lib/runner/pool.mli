(** Fixed-size domain pool with a mutex/condition work queue.

    A pool with [domains = d] provides [d]-way parallelism: [d - 1] worker
    domains are spawned at creation and block on the queue, and the caller
    of {!run_jobs} participates as the [d]-th worker.  A pool with
    [domains = 1] spawns no domains at all; {!Task} then takes a purely
    sequential path.

    Pools are cheap enough to create per experiment but are designed to be
    reused: {!Task.map_reduce} can be called any number of times on the
    same pool, including after a job raised.

    The pool is exception-safe: a job that raises cannot kill the worker
    domain that ran it (the domain absorbs the exception and returns to
    the queue) or abort the caller-helps drain in {!run_jobs}.  Jobs are
    expected to report failures through their own channel, as
    {!Task}'s completion barrier and the {!Supervise} engine do; an
    exception that nevertheless escapes is counted, not propagated.

    When {!Pan_obs.Obs} is configured, pool creation records the
    [pool.created] counter and a [pool.domains] high-water gauge, and
    {!run_jobs} counts enqueued jobs under [pool.jobs].  Absorbed job
    exceptions count under [pool.job_failures], and each worker-domain
    loop that survives one counts under [pool.worker_restarts].  These
    are engine-internal metrics: unlike the [runner.*] family they
    naturally differ between pool sizes (the sequential path never
    enqueues). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the submitting caller). *)

val shutdown : t -> unit
(** Signal all workers to exit once the queue is drained and join them.
    Idempotent; the pool must not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)

val run_jobs : t -> (unit -> unit) list -> unit
(** Low-level: enqueue jobs and help drain the queue on the calling
    domain.  Returns when the queue is empty; jobs picked up by other
    workers may still be executing, so callers must track completion
    themselves (as {!Task} does).  Jobs should report failures through
    their own channel: an exception escaping a job is absorbed and
    counted under [pool.job_failures], never propagated, and the
    executing domain stays alive.  Only one [run_jobs] may be in flight
    per pool at a time.
    @raise Invalid_argument if the pool has been shut down. *)
