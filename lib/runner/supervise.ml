module Obs = Pan_obs.Obs
module Clock = Pan_obs.Clock

type policy = { retries : int; deadline : float option }

let default = { retries = 0; deadline = None }

let policy ?(retries = 0) ?deadline () =
  if retries < 0 then invalid_arg "Supervise.policy: retries < 0";
  (match deadline with
  | Some d when not (d > 0.0) -> invalid_arg "Supervise.policy: deadline <= 0"
  | _ -> ());
  { retries; deadline }

type failure = { chunk : int; attempts : int; error : string }

type manifest = {
  total_chunks : int;
  completed_chunks : int;
  retried_chunks : int;
  failures : failure list;
  deadline_expired : bool;
}

let complete m = m.failures = []

let pp_manifest fmt m =
  Format.fprintf fmt
    "# supervision: %d/%d chunks completed, %d retried, %d failed%s@."
    m.completed_chunks m.total_chunks m.retried_chunks (List.length m.failures)
    (if m.deadline_expired then ", deadline expired" else "");
  List.iter
    (fun f ->
      Format.fprintf fmt "#   chunk %d after %d attempts: %s@." f.chunk
        f.attempts f.error)
    m.failures

exception Incomplete of manifest

(* Per-chunk outcome, written by whichever domain ran the chunk and read
   by the coordinator after the completion barrier. *)
type 'a outcome =
  | Done of 'a * int (* attempts used *)
  | Failed of failure * (exn * Printexc.raw_backtrace) option

let run_chunks ?pool ~policy ~partial ~m run =
  let clock =
    match Obs.clock () with Some c -> c | None -> Clock.of_env ()
  in
  let t0 = Clock.now clock in
  let expired () =
    match policy.deadline with
    | None -> false
    | Some d -> Clock.now clock -. t0 >= d
  in
  let outcomes : 'a outcome option array = Array.make m None in
  let hit_deadline = Atomic.make false in
  (* The whole attempt loop runs on one domain, so retries are immediate
     and the (chunk, attempt) fault/replay keys never depend on
     scheduling.  Never raises. *)
  let attempt_chunk c =
    let rec go attempt last_err =
      if expired () then begin
        Atomic.set hit_deadline true;
        Obs.incr "runner.chunks_cancelled";
        let error, exn_bt =
          match last_err with
          | Some ((e, _) as eb) -> (Printexc.to_string e, Some eb)
          | None -> ("deadline expired", None)
        in
        outcomes.(c) <-
          Some (Failed ({ chunk = c; attempts = attempt - 1; error }, exn_bt))
      end
      else
        match
          try
            Fault.inject ~clock ~chunk:c ~attempt;
            Ok (run c)
          with e -> Error (e, Printexc.get_raw_backtrace ())
        with
        | Ok v ->
            if attempt > 1 then Obs.incr "runner.chunks_recovered";
            outcomes.(c) <- Some (Done (v, attempt))
        | Error ((e, _) as eb) ->
            Obs.incr "runner.attempt_failures";
            if attempt <= policy.retries then begin
              Obs.incr "runner.retries";
              go (attempt + 1) (Some eb)
            end
            else begin
              Obs.incr "runner.chunks_failed";
              outcomes.(c) <-
                Some
                  (Failed
                     ( {
                         chunk = c;
                         attempts = attempt;
                         error = Printexc.to_string e;
                       },
                       Some eb ))
            end
    in
    go 1 None
  in
  (match pool with
  | Some p when Pool.domains p > 1 && m > 1 ->
      let mutex = Mutex.create () in
      let all_done = Condition.create () in
      let remaining = ref m in
      let job c =
        attempt_chunk c;
        Mutex.lock mutex;
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock mutex
      in
      Pool.run_jobs p (List.init m (fun c () -> job c));
      Mutex.lock mutex;
      while !remaining > 0 do
        Condition.wait all_done mutex
      done;
      Mutex.unlock mutex
  | _ ->
      for c = 0 to m - 1 do
        attempt_chunk c
      done);
  let results = Array.make m None in
  let completed = ref 0 and retried = ref 0 in
  let failures = ref [] and first_exn = ref None in
  for c = m - 1 downto 0 do
    match outcomes.(c) with
    | Some (Done (v, attempts)) ->
        results.(c) <- Some v;
        incr completed;
        if attempts > 1 then incr retried
    | Some (Failed (f, exn_bt)) ->
        failures := f :: !failures;
        first_exn := exn_bt
    | None -> assert false
  done;
  let deadline_expired = Atomic.get hit_deadline in
  if deadline_expired then Obs.incr "runner.deadline_expired";
  let manifest =
    {
      total_chunks = m;
      completed_chunks = !completed;
      retried_chunks = !retried;
      failures = !failures;
      deadline_expired;
    }
  in
  if (not partial) && manifest.failures <> [] then
    (* All-or-nothing: surface the lowest failed chunk — deterministic,
       unlike completion order.  first_exn holds that chunk's exception
       because the loop above walks chunks in descending order. *)
    match !first_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> raise (Incomplete manifest)
  else (results, manifest)
