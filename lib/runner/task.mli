(** Chunked, deterministic fork/join over a {!Pool}.

    The unit of scheduling is a {e chunk} of consecutive item indices.
    Randomness is assigned per chunk: chunk [c] receives the [(c+1)]-th
    {!Pan_numerics.Rng.split} of the master generator, regardless of which
    worker executes it or in which order chunks complete.  Results are
    therefore bit-for-bit identical for every pool size, including no pool
    at all — the contract every equivalence test in [test/test_runner.ml]
    asserts.

    When {!Pan_obs.Obs} is configured, every executed chunk — on the
    parallel and the sequential path alike — increments the
    [runner.chunks] and [runner.items] counters and records its duration
    in the [runner.chunk] histogram, so metric totals are identical for
    every pool size ([test/test_runner_obs.ml]).  Metric values never
    feed back into results: collection cannot perturb determinism.

    {b Supervision.}  [?retries] and [?deadline] put the run under the
    {!Supervise} engine: failed chunk attempts are retried with a fresh
    {!Pan_numerics.Rng.copy} of the chunk's split generator (so a
    recovered run is bit-identical to a fault-free one, for any pool
    size), and the deadline cancels chunks not yet started.  Runs with
    neither — and no active {!Fault} spec — take the original
    zero-overhead paths.  The [_partial] variants never raise on chunk
    failure: they return the completed portion plus the failure
    manifest (graceful degradation for long sweeps). *)

open Pan_numerics

val map_reduce :
  ?pool:Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  rng:Rng.t ->
  n:int ->
  chunk:int ->
  f:(Rng.t -> int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  init:'b ->
  unit ->
  'b
(** [map_reduce ?pool ~rng ~n ~chunk ~f ~combine ~init ()] evaluates
    [f rng_c i] for every item index [i] in [0 .. n-1], where [rng_c] is
    the split generator of the chunk [c = i / chunk] containing [i], and
    folds the results with [combine] in ascending index order (so even
    non-associative combines such as float accumulation are reproducible).

    [f] must derive all its randomness from its [Rng.t] argument and must
    not mutate state shared across chunks.  Within a chunk, items are
    evaluated in ascending order on one domain, sharing [rng_c].

    On success the master [rng] has been advanced by exactly
    [ceil(n / chunk)] splits, for any pool size.  If some [f] raises and
    [retries] (default [0]) are exhausted for its chunk, the failed
    chunk with the lowest index re-raises its exception with backtrace
    after all chunks have finished; chunks cancelled by [deadline]
    (seconds, measured on the ambient {!Pan_obs.Obs} clock when
    configured) raise {!Supervise.Incomplete} instead.  Either way the
    pool remains usable, but the master [rng] state is unspecified.

    Without [?pool], or when the pool has a single domain, or when there
    is at most one chunk, the purely sequential path is taken: no queue,
    no domains, no intermediate buffers.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val map_reduce_partial :
  ?pool:Pool.t ->
  policy:Supervise.policy ->
  rng:Rng.t ->
  n:int ->
  chunk:int ->
  f:(Rng.t -> int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  init:'b ->
  unit ->
  'b * Supervise.manifest
(** Like {!map_reduce} under [policy], but failures never raise: the
    fold covers completed chunks only (still in ascending index order)
    and the manifest names every failed or cancelled chunk.  With a
    complete manifest the result equals {!map_reduce}'s. *)

val map :
  ?pool:Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?deadline:float ->
  n:int ->
  f:(int -> 'a) ->
  unit ->
  'a array
(** [map ?pool ?chunk ~n ~f ()] is [Array.init n f] evaluated chunk-wise on
    the pool.  [f] must be pure (any randomness would be evaluation-order
    dependent — use {!map_reduce} instead).  [chunk] defaults to 16.
    [retries]/[deadline] behave as in {!map_reduce}.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val map_partial :
  ?pool:Pool.t ->
  ?chunk:int ->
  policy:Supervise.policy ->
  n:int ->
  f:(int -> 'a) ->
  unit ->
  'a array * Supervise.manifest
(** Like {!map} under [policy], but failures never raise: the returned
    array concatenates the completed chunks in index order (failed
    chunks' items are simply missing) alongside the manifest. *)
