(** Chunked, deterministic fork/join over a {!Pool}.

    The unit of scheduling is a {e chunk} of consecutive item indices.
    Randomness is assigned per chunk: chunk [c] receives the [(c+1)]-th
    {!Pan_numerics.Rng.split} of the master generator, regardless of which
    worker executes it or in which order chunks complete.  Results are
    therefore bit-for-bit identical for every pool size, including no pool
    at all — the contract every equivalence test in [test/test_runner.ml]
    asserts.

    When {!Pan_obs.Obs} is configured, every executed chunk — on the
    parallel and the sequential path alike — increments the
    [runner.chunks] and [runner.items] counters and records its duration
    in the [runner.chunk] histogram, so metric totals are identical for
    every pool size ([test/test_runner_obs.ml]).  Metric values never
    feed back into results: collection cannot perturb determinism. *)

open Pan_numerics

val map_reduce :
  ?pool:Pool.t ->
  rng:Rng.t ->
  n:int ->
  chunk:int ->
  f:(Rng.t -> int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  init:'b ->
  unit ->
  'b
(** [map_reduce ?pool ~rng ~n ~chunk ~f ~combine ~init ()] evaluates
    [f rng_c i] for every item index [i] in [0 .. n-1], where [rng_c] is
    the split generator of the chunk [c = i / chunk] containing [i], and
    folds the results with [combine] in ascending index order (so even
    non-associative combines such as float accumulation are reproducible).

    [f] must derive all its randomness from its [Rng.t] argument and must
    not mutate state shared across chunks.  Within a chunk, items are
    evaluated in ascending order on one domain, sharing [rng_c].

    On success the master [rng] has been advanced by exactly
    [ceil(n / chunk)] splits, for any pool size.  If some [f] raises, the
    first exception (in completion order) is re-raised with its backtrace
    after all chunks have finished; the pool remains usable, but the
    master [rng] state is unspecified.

    Without [?pool], or when the pool has a single domain, or when there
    is at most one chunk, the purely sequential path is taken: no queue,
    no domains, no intermediate buffers.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val map :
  ?pool:Pool.t -> ?chunk:int -> n:int -> f:(int -> 'a) -> unit -> 'a array
(** [map ?pool ?chunk ~n ~f ()] is [Array.init n f] evaluated chunk-wise on
    the pool.  [f] must be pure (any randomness would be evaluation-order
    dependent — use {!map_reduce} instead).  [chunk] defaults to 16.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)
