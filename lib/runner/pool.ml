module Obs = Pan_obs.Obs

type job = unit -> unit

type t = {
  domains : int;
  mutex : Mutex.t;
  has_job : Condition.t;
  jobs : job Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.domains

(* Jobs report success/failure through their own channel (as Task's
   completion barrier does); an exception escaping a job must not take a
   pool domain down with it, or an N-domain pool silently degrades to
   N-1 for the rest of the process.  Absorb and count instead. *)
let run_job_absorbing job =
  try job ()
  with _ -> Obs.incr "pool.job_failures"

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
    else if t.closed then None
    else begin
      Condition.wait t.has_job t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      (try job ()
       with _ ->
         (* the worker survives: count the failure, count the loop
            restart, and go back to the queue *)
         Obs.incr "pool.job_failures";
         Obs.incr "pool.worker_restarts");
      worker_loop t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      has_job = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Obs.incr "pool.created";
  Obs.gauge "pool.domains" (float_of_int domains);
  t

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.has_job;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_jobs t jobs =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.run_jobs: pool is shut down"
  end;
  List.iter (fun j -> Queue.push j t.jobs) jobs;
  Obs.incr ~by:(List.length jobs) "pool.jobs";
  Condition.broadcast t.has_job;
  (* Help drain the queue: the caller is the pool's last worker.  A
     raising job must not abort the drain — queued jobs would be
     stranded and Task's completion barrier would deadlock — so absorb,
     count, re-lock, and keep draining. *)
  let rec help () =
    if Queue.is_empty t.jobs then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      run_job_absorbing job;
      Mutex.lock t.mutex;
      help ()
    end
  in
  help ()
