(** Supervision for chunked runs: bounded retry, deadlines, and a
    failure manifest.

    The paper's evaluation rests on long Monte-Carlo sweeps; this layer
    makes them survive faults instead of aborting.  Three guarantees:

    - {b Retry determinism.}  A failed chunk attempt is retried up to
      [retries] extra times.  Every attempt of chunk [c] re-runs with a
      fresh {!Pan_numerics.Rng.copy} of the chunk's split generator, so a
      retried run is bit-identical to a fault-free run — for any pool
      size (see {!Task.map_reduce} and [test/test_supervise.ml]).

    - {b Deadlines.}  A wall-clock budget, measured on the ambient
      {!Pan_obs.Obs} clock when one is configured (virtual clocks make
      deadline tests deterministic) and on {!Pan_obs.Clock.of_env}
      otherwise.  Cancellation is cooperative: the deadline is checked
      at chunk-attempt boundaries, never mid-chunk, so a running attempt
      always finishes.

    - {b Graceful degradation.}  In partial mode a run never raises: it
      returns whatever chunks completed plus a {!manifest} naming every
      failed or cancelled chunk — instead of throwing away a multi-hour
      sweep.

    Fault injection ({!Fault}) hooks in at the same chunk-attempt
    boundary, which is what makes all three testable. *)

type policy = {
  retries : int;  (** extra attempts per chunk after the first *)
  deadline : float option;  (** seconds from the start of the run *)
}

val default : policy
(** No retries, no deadline. *)

val policy : ?retries:int -> ?deadline:float -> unit -> policy
(** @raise Invalid_argument if [retries < 0] or [deadline <= 0]. *)

type failure = {
  chunk : int;
  attempts : int;  (** attempts actually made; [0] = cancelled unstarted *)
  error : string;  (** printed last exception, or ["deadline expired"] *)
}

type manifest = {
  total_chunks : int;
  completed_chunks : int;
  retried_chunks : int;  (** chunks that succeeded after a failed attempt *)
  failures : failure list;  (** ascending chunk order; [[]] iff complete *)
  deadline_expired : bool;
}

val complete : manifest -> bool
val pp_manifest : Format.formatter -> manifest -> unit
(** Deterministic rendering ([# supervision: ...] plus one line per
    failure), safe for golden output. *)

exception Incomplete of manifest
(** Raised by all-or-nothing runs whose only losses are deadline
    cancellations (a chunk that failed with a real exception re-raises
    that exception instead). *)

val run_chunks :
  ?pool:Pool.t ->
  policy:policy ->
  partial:bool ->
  m:int ->
  (int -> 'a) ->
  'a option array * manifest
(** [run_chunks ?pool ~policy ~partial ~m run] executes [run 0 .. run
    (m-1)], each chunk supervised per [policy], on the pool (or
    sequentially in ascending chunk order without one).  [run c] must
    restart from pristine state on every call — the engine calls it once
    per attempt — and must not mutate state shared across chunks.
    {!Fault.inject} is applied before each attempt.

    Slot [c] of the returned array is [Some] iff chunk [c] completed.
    With [partial = false] the function only returns when the manifest
    is complete: otherwise it re-raises the first failed chunk's
    exception (lowest chunk index, with its backtrace), or raises
    {!Incomplete} when that failure is a deadline cancellation.  With
    [partial = true] it always returns.

    When {!Pan_obs.Obs} is configured the engine counts
    [runner.attempt_failures], [runner.retries] (re-attempts scheduled),
    [runner.chunks_recovered] (succeeded after a retry),
    [runner.chunks_failed] (retries exhausted), [runner.chunks_cancelled]
    (deadline) and [runner.deadline_expired]. *)
