open Pan_numerics
module Obs = Pan_obs.Obs
module Clock = Pan_obs.Clock

type spec = { seed : int; rate : float; delay : float; delay_rate : float }

exception Injected of { chunk : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { chunk; attempt } ->
        Some (Printf.sprintf "Fault.Injected(chunk=%d, attempt=%d)" chunk attempt)
    | _ -> None)

let probability name v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    Error (`Msg (Printf.sprintf "%s must be in [0,1], got %g" name v))
  else Ok v

let parse s =
  let ( let* ) = Result.bind in
  let field acc kv =
    let* acc = acc in
    match String.index_opt kv '=' with
    | None -> Error (`Msg (Printf.sprintf "expected key=value, got %S" kv))
    | Some i ->
        let key = String.sub kv 0 i in
        let value = String.sub kv (i + 1) (String.length kv - i - 1) in
        let* f =
          match float_of_string_opt value with
          | Some f -> Ok f
          | None -> Error (`Msg (Printf.sprintf "%s: not a number: %S" key value))
        in
        (match key with
        | "seed" -> Ok { acc with seed = int_of_float f }
        | "rate" ->
            let* r = probability "rate" f in
            Ok { acc with rate = r }
        | "delay" ->
            if Float.is_nan f || f < 0.0 then
              Error (`Msg (Printf.sprintf "delay must be >= 0, got %g" f))
            else Ok { acc with delay = f }
        | "delay-rate" ->
            let* r = probability "delay-rate" f in
            Ok { acc with delay_rate = r }
        | k -> Error (`Msg (Printf.sprintf "unknown key %S" k)))
  in
  let parts =
    List.filter (fun p -> p <> "")
      (String.split_on_char ',' (String.trim s))
  in
  if parts = [] then Error (`Msg "empty fault spec")
  else
    let* spec =
      List.fold_left field
        (Ok { seed = 0; rate = 0.0; delay = 0.0; delay_rate = Float.nan })
        parts
    in
    (* delay-rate defaults to 1 once a delay is requested, 0 otherwise *)
    let delay_rate =
      if Float.is_nan spec.delay_rate then if spec.delay > 0.0 then 1.0 else 0.0
      else spec.delay_rate
    in
    Ok { spec with delay_rate }

let to_string s =
  Printf.sprintf "rate=%g,seed=%d,delay=%g,delay-rate=%g" s.rate s.seed s.delay
    s.delay_rate

let env_var = "PANAGREE_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match parse s with
      | Ok spec -> Some spec
      | Error (`Msg m) -> invalid_arg (env_var ^ ": " ^ m))

(* Written by the coordinating domain before a run, read by every worker:
   an Atomic publishes the spec safely across domains. *)
let current : spec option Atomic.t = Atomic.make (of_env ())
let set spec = Atomic.set current spec
let get () = Atomic.get current

(* One independent uniform draw per (seed, chunk, attempt, purpose):
   Rng.create scrambles the combined key through SplitMix64, so nearby
   keys give unrelated streams. *)
let draw ~seed ~chunk ~attempt ~purpose =
  let key =
    seed
    + (chunk * 1_000_003)
    + (attempt * 7_368_787)
    + (purpose * 97_001_837)
  in
  Rng.float (Rng.create key)

let inject ~clock ~chunk ~attempt =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      if s.delay > 0.0 && draw ~seed:s.seed ~chunk ~attempt ~purpose:1 < s.delay_rate
      then begin
        Obs.incr "fault.delays";
        if Clock.is_virtual clock then Clock.advance clock s.delay
        else Unix.sleepf s.delay
      end;
      if draw ~seed:s.seed ~chunk ~attempt ~purpose:2 < s.rate then begin
        Obs.incr "fault.injected";
        raise (Injected { chunk; attempt })
      end
