(** Deterministic, seed-driven fault injection at chunk boundaries.

    The supervised runner ({!Supervise}) calls {!inject} at the start of
    every chunk attempt.  When a spec is active, the injection decision is
    a pure function of [(spec.seed, chunk, attempt)] — independent of pool
    size, scheduling, and wall-clock time — so a faulty run with enough
    retries reproduces the fault-free result bit-for-bit (the property
    [test/test_supervise.ml] and [test/cli/faults.t] pin down).  A given
    [(chunk, attempt)] pair either always faults or never does; retrying
    moves to the next attempt index and therefore to an independent draw.

    Injection is disabled unless a spec is installed, either explicitly
    ({!set}, the CLI's [--faults] flag) or through the {!env_var}
    environment variable read at program start. *)

type spec = {
  seed : int;  (** stream selector; same seed = same faults *)
  rate : float;  (** probability in [\[0,1\]] that an attempt raises *)
  delay : float;  (** seconds of injected delay per delayed attempt *)
  delay_rate : float;
      (** probability that an attempt is delayed (default [1.0] when a
          [delay] is given, [0.0] otherwise) *)
}

exception Injected of { chunk : int; attempt : int }
(** The injected failure.  A [Printexc] printer is registered, so an
    uncaught injection prints deterministically as
    [Fault.Injected(chunk=C, attempt=A)]. *)

val parse : string -> (spec, [ `Msg of string ]) result
(** Parse a comma-separated [key=value] spec: [rate=0.2,seed=7] with
    optional [delay=0.01] and [delay-rate=0.5].  Unknown keys, malformed
    numbers, and out-of-range probabilities are errors. *)

val to_string : spec -> string
(** Canonical round-trippable form of a spec. *)

val env_var : string
(** ["PANAGREE_FAULTS"] — parsed once at program start; a malformed value
    raises [Invalid_argument] immediately rather than silently running
    fault-free. *)

val set : spec option -> unit
(** Install ([Some]) or clear ([None]) the active spec.  Overrides the
    environment.  Not meant to be called while a run is in flight. *)

val get : unit -> spec option
(** The active spec, if any. *)

val inject : clock:Pan_obs.Clock.t -> chunk:int -> attempt:int -> unit
(** Apply the active spec to one chunk attempt: first the delay draw
    (advancing a virtual [clock] or sleeping on a real one, counted under
    the [fault.delays] counter), then the failure draw
    (@raise Injected, counted under [fault.injected]).  A no-op when no
    spec is active. *)
