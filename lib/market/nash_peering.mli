(** Nash-Peering global bargaining qualifier (Zarchy et al.,
    arXiv:1610.01314) over the marketplace candidate set.

    BOSCO treats every candidate pair as an isolated two-party
    bargaining game; Nash-Peering asks what each AS could get if it
    bargained with its {e whole} candidate neighborhood at once.  Per
    epoch the qualifier takes the enumerated candidates with their econ
    scores (the same [(u_x, u_y)] a BOSCO negotiation would start from —
    see {!Negotiate.score_pair}) and computes every pair's
    Nash-bargaining outcome in one {!Pan_econ.Nash} batch pass: the
    equal-split share each endpoint would receive.  An AS's {e coalition
    value} is the best share any of its candidates offers it — its
    outside option under global bargaining.  A pair {e qualifies} iff it
    is viable and offers both endpoints at least {!theta} of their
    outside option; only qualified pairs proceed to the BOSCO
    negotiation path.

    Because scoring reuses the pair-keyed rng derivation of
    {!Negotiate.negotiate_pair} exactly, both mechanisms see identical
    candidate streams and identical pair randomness — mechanism
    differences in welfare or Price of Dishonesty are attributable to
    the qualifier, never to noise ({!Market.run} [~mechanism:Both]
    exploits this to compare them on one epoch snapshot). *)

open Pan_topology

type score = {
  cand : Candidates.t;
  u_x : float;  (** econ utility of [x] at the best forecast level *)
  u_y : float;
}

type verdict = {
  score : score;
  share : float;
      (** the pair's equal-split Nash share (half its surplus); [0.] if
          not viable *)
  best_x : float;  (** [x]'s coalition value: its best viable share *)
  best_y : float;
  qualified : bool;
}

val theta : float
(** Competitiveness factor: a qualified pair must offer each endpoint at
    least [theta] times its outside option ([0.5]). *)

val of_outcome : Negotiate.outcome -> score
(** Reuse the utilities of an already-run negotiation — the [Both]
    mechanism scores the shared candidate stream for free. *)

val score_pair :
  graph:Graph.t ->
  topo:Compact.t ->
  seed:int ->
  epoch:int ->
  max_demands:int ->
  Candidates.t ->
  score
(** Score one candidate without negotiating it
    ({!Negotiate.score_pair}); bit-identical utilities to a full
    negotiation of the same candidate. *)

val qualify : score array -> verdict array
(** Verdicts in candidate order, one batch {!Pan_econ.Nash} pass plus a
    linear coalition-value sweep.  Deterministic: pure float arithmetic
    in array order. *)

val qualify_oracle : score array -> verdict array
(** Brute-force reference: scalar Nash helpers, quadratic per-endpoint
    rescan.  Bit-identical to {!qualify} (qcheck-pinned); test oracle
    only. *)

val count_qualified : verdict array -> int

val qualify_counted : score array -> verdict array
(** {!qualify} + bump the [market.mech.qualified] counter. *)
