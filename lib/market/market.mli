(** The agreement marketplace: epochs of concurrent BOSCO negotiations
    reshaping the topology (ROADMAP item 1, the paper's Internet-scale
    claim run end-to-end).

    Each epoch: {!Candidates.enumerate} over the current frozen view,
    every candidate negotiated concurrently through the supervised
    runner ({!Negotiate.negotiate_pair} — chunk-deterministic, outcome
    randomness keyed per pair, per-domain arenas), then every signed
    agreement applied to the topology as {e one}
    {!Pan_service.Engine.apply_batch} peering splice.  The splice
    reshapes reachability — next epoch's candidate set is enumerated on
    the updated view — and the engine's invalidation machinery keeps the
    memoized per-pair path store sound between epochs: the market
    queries the store for every signed pair's MA path count, and later
    epochs' splices invalidate exactly the affected entries.

    Determinism: for a fixed config the whole result — agreement set,
    welfare totals, the transcript fingerprint — is bit-identical for
    every pool size, chunk size, and under injected faults with retries
    (the PR 5 supervision contract).  The [oracle] flag additionally
    re-freezes a from-scratch mutated graph after every epoch and
    requires byte-identical snapshots ({!Pan_topology.Compact.Snapshot}),
    pinning the incremental splice chain. *)

open Pan_topology

type config = {
  epochs : int;
  w : int;  (** BOSCO choice-set size per side *)
  max_demands : int;  (** forecast segment demands per side *)
  min_gain : int;  (** candidate filter: both sides gain at least this *)
  max_candidates : int;  (** per-epoch cap, best total gain first *)
  chunk : int;  (** negotiations per runner chunk *)
  seed : int;
}

val default : config
(** 3 epochs, [w = 16], 3 demands, [min_gain = 2], 512 candidates,
    chunk 16, seed 42. *)

(** Which qualifier feeds the BOSCO negotiation path.  [Bosco] is the
    PR 9 marketplace: every enumerated candidate is negotiated.
    [Nash_peering] first runs the {!Nash_peering} global-bargaining
    qualifier over the scored candidate set and negotiates only the
    survivors.  [Both] negotiates every candidate (the Bosco arm) and
    evaluates the Nash-Peering arm counterfactually on the same
    outcomes — shared epoch snapshot, shared candidate stream, shared
    pair-keyed randomness — emitting a per-epoch {!comparison} record;
    the splice applies the Bosco arm's signings. *)
type mechanism = Bosco | Nash_peering | Both

val mechanism_label : mechanism -> string
(** ["bosco"] / ["nash-peering"] / ["both"] — the CLI enum spelling. *)

(** Per-epoch mechanism comparison ([Both] mode): agreement counts,
    welfare, and mean Price of Dishonesty of each arm over the identical
    candidate stream. *)
type comparison = {
  cmp_qualified : int;  (** candidates the Nash-Peering qualifier kept *)
  bosco_signed : int;
  bosco_welfare : float;
  bosco_pod : float;  (** mean over the arm's viable pairs; [nan] if none *)
  nash_signed : int;  (** qualified pairs whose BOSCO dynamics converged *)
  nash_welfare : float;
  nash_pod : float;
}

type epoch_report = {
  epoch : int;  (** 1-based *)
  candidates : int;
  qualified : int;
      (** candidates that reached negotiation: [= candidates] under
          [Bosco], the qualifier's survivors otherwise *)
  viable : int;
  signed : int;
  welfare : float;
      (** summed post-transfer utility of the epoch's signed agreements
          (= summed surplus; Nash transfers are welfare-neutral) *)
  mean_pod : float;  (** over viable negotiations; [nan] if none *)
  new_paths : int;
      (** MA paths the signed pairs gain, from the engine's memo store *)
  invalidated : int;  (** store entries dropped by the epoch's splice *)
  mech : comparison option;  (** [Some] in [Both] mode *)
}

type result = {
  mechanism : mechanism;
  reports : epoch_report list;  (** epoch order *)
  agreements : (Asn.t * Asn.t) list;
      (** signed links in application order *)
  pairs : int;  (** candidates negotiated, all epochs (the qualified subset under [Nash_peering]) *)
  negotiations : int;  (** BOSCO negotiations run (viable candidates) *)
  welfare : float;
  fingerprint : string;
      (** MD5 hex over the per-outcome transcript (exact hex floats) —
          the determinism oracle *)
  oracle_ok : bool option;  (** [Some ok] when run with [~oracle:true] *)
}

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?oracle:bool ->
  ?mechanism:mechanism ->
  config ->
  Graph.t ->
  result
(** Run the marketplace on (a private copy of the link state of) [g].
    [retries]/[deadline] supervise the negotiation sweeps exactly as in
    {!Pan_runner.Task.map_reduce}.  [mechanism] (default [Bosco], which
    is byte-identical to the PR 9 behavior) selects the qualifier; see
    {!mechanism}.  Every mode keeps the determinism contract: result and
    fingerprint are bit-identical for every pool size, chunk size, and
    under injected faults with retries.
    @raise Invalid_argument if [epochs < 1], [w < 1], [chunk < 1],
    [max_demands < 1], or the candidate bounds are invalid. *)

val pp : Format.formatter -> result -> unit
(** Human-readable per-epoch lines plus totals (stable formatting; the
    CLI transcript is cram-pinned). *)
