(** The agreement marketplace: epochs of concurrent BOSCO negotiations
    reshaping the topology (ROADMAP item 1, the paper's Internet-scale
    claim run end-to-end).

    Each epoch: {!Candidates.enumerate} over the current frozen view,
    every candidate negotiated concurrently through the supervised
    runner ({!Negotiate.negotiate_pair} — chunk-deterministic, outcome
    randomness keyed per pair, per-domain arenas), then every signed
    agreement applied to the topology as {e one}
    {!Pan_service.Engine.apply_batch} peering splice.  The splice
    reshapes reachability — next epoch's candidate set is enumerated on
    the updated view — and the engine's invalidation machinery keeps the
    memoized per-pair path store sound between epochs: the market
    queries the store for every signed pair's MA path count, and later
    epochs' splices invalidate exactly the affected entries.

    Determinism: for a fixed config the whole result — agreement set,
    welfare totals, the transcript fingerprint — is bit-identical for
    every pool size, chunk size, and under injected faults with retries
    (the PR 5 supervision contract).  The [oracle] flag additionally
    re-freezes a from-scratch mutated graph after every epoch and
    requires byte-identical snapshots ({!Pan_topology.Compact.Snapshot}),
    pinning the incremental splice chain. *)

open Pan_topology

type config = {
  epochs : int;
  w : int;  (** BOSCO choice-set size per side *)
  max_demands : int;  (** forecast segment demands per side *)
  min_gain : int;  (** candidate filter: both sides gain at least this *)
  max_candidates : int;  (** per-epoch cap, best total gain first *)
  chunk : int;  (** negotiations per runner chunk *)
  seed : int;
}

val default : config
(** 3 epochs, [w = 16], 3 demands, [min_gain = 2], 512 candidates,
    chunk 16, seed 42. *)

type epoch_report = {
  epoch : int;  (** 1-based *)
  candidates : int;
  viable : int;
  signed : int;
  welfare : float;
      (** summed post-transfer utility of the epoch's signed agreements
          (= summed surplus; Nash transfers are welfare-neutral) *)
  mean_pod : float;  (** over viable negotiations; [nan] if none *)
  new_paths : int;
      (** MA paths the signed pairs gain, from the engine's memo store *)
  invalidated : int;  (** store entries dropped by the epoch's splice *)
}

type result = {
  reports : epoch_report list;  (** epoch order *)
  agreements : (Asn.t * Asn.t) list;
      (** signed links in application order *)
  pairs : int;  (** candidates scored, all epochs *)
  negotiations : int;  (** BOSCO negotiations run (viable candidates) *)
  welfare : float;
  fingerprint : string;
      (** MD5 hex over the per-outcome transcript (exact hex floats) —
          the determinism oracle *)
  oracle_ok : bool option;  (** [Some ok] when run with [~oracle:true] *)
}

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?oracle:bool ->
  config ->
  Graph.t ->
  result
(** Run the marketplace on (a private copy of the link state of) [g].
    [retries]/[deadline] supervise the negotiation sweeps exactly as in
    {!Pan_runner.Task.map_reduce}.
    @raise Invalid_argument if [epochs < 1], [w < 1], [chunk < 1],
    [max_demands < 1], or the candidate bounds are invalid. *)

val pp : Format.formatter -> result -> unit
(** Human-readable per-epoch lines plus totals (stable formatting; the
    CLI transcript is cram-pinned). *)
