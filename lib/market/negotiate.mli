(** One marketplace negotiation: econ scoring + BOSCO bargaining.

    Each candidate pair is taken through the full §IV pipeline:

    + build the mutuality agreement the pair would sign (each side
      grants its providers and peers that are not already customers of
      the other side — the {!Candidates} gain sets);
    + forecast segment demands and score the agreement economically with
      the batched {!Pan_econ.Model_fast} kernel: the forecast levels
      (fractions of the maximal choice) are evaluated in {e one} batch
      call against per-domain scratch, and the best-surplus level fixes
      the pre-bargaining utilities [u_x, u_y];
    + if the surplus is non-negative (a cash-compensation agreement is
      viable, §IV-B), run a BOSCO negotiation ({!Pan_bosco.Service}) for
      the strategic bargaining outcome; the agreement is {e signed} iff
      the best-response dynamics converged.

    Everything is deterministic per [(seed, epoch, pair)]: randomness
    comes from a pair-keyed generator, never from scheduling, and the
    per-domain arenas ({!arena}) are pure scratch — reusing them across
    negotiations of a chunk cannot change any bit of the outcome. *)

open Pan_numerics
open Pan_topology

(** Per-domain scratch: one BOSCO workspace (bounded opponent-CDF cache)
    and one econ workspace, created lazily per domain via [Domain.DLS]
    and reused across every negotiation the domain runs. *)
type arena = {
  bosco : Pan_bosco.Workspace.t;
  econ : Pan_econ.Econ_workspace.t;
}

val arena : unit -> arena
(** The calling domain's arena. *)

type outcome = {
  cand : Candidates.t;
  u_x : float;  (** econ utility of [x] at the best forecast level *)
  u_y : float;
  viable : bool;  (** [Nash.viable u_x u_y] *)
  pod : float;  (** BOSCO price of dishonesty; [nan] if not viable *)
  rounds : int;  (** best-response rounds; [0] if not viable *)
  converged : bool;
  signed : bool;  (** viable and the BOSCO dynamics converged *)
}

val forecast_levels : float array
(** Fractions of the maximal choice evaluated per candidate (one
    [Model_fast.utilities_batch] call), ascending. *)

val score_pair :
  graph:Graph.t ->
  topo:Compact.t ->
  seed:int ->
  epoch:int ->
  max_demands:int ->
  Candidates.t ->
  float * float
(** The econ-scoring prefix of {!negotiate_pair} alone: same pair-keyed
    rng derivation, same demand forecast (consuming the rng identically),
    same batched scoring — so [(u_x, u_y)] is bit-identical to the
    utilities a full negotiation of the same candidate would start from.
    The Nash-Peering qualifier ({!Nash_peering}) uses this to score a
    whole candidate set without negotiating it.  Increments
    [market.scored]. *)

val negotiate_pair :
  graph:Graph.t ->
  topo:Compact.t ->
  seed:int ->
  epoch:int ->
  w:int ->
  max_demands:int ->
  truthful:float ->
  dist:Distribution.t ->
  Candidates.t ->
  outcome
(** [graph] is the mutable mirror of [topo] (same links); [truthful] is
    the shared truthful-benchmark value for [dist] (computed once per
    run, see {!Pan_bosco.Efficiency.expected_nash_truthful}); [w] is the
    BOSCO choice-set size.  Uses the calling domain's {!arena}. *)
