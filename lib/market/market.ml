open Pan_numerics
open Pan_topology
module Obs = Pan_obs.Obs
module Engine = Pan_service.Engine
module Efficiency = Pan_bosco.Efficiency
module Claim = Pan_bosco.Claim
module Game = Pan_bosco.Game
module Nash = Pan_econ.Nash

type config = {
  epochs : int;
  w : int;
  max_demands : int;
  min_gain : int;
  max_candidates : int;
  chunk : int;
  seed : int;
}

let default =
  {
    epochs = 3;
    w = 16;
    max_demands = 3;
    min_gain = 2;
    max_candidates = 512;
    chunk = 16;
    seed = 42;
  }

type mechanism = Bosco | Nash_peering | Both

let mechanism_label = function
  | Bosco -> "bosco"
  | Nash_peering -> "nash-peering"
  | Both -> "both"

type comparison = {
  cmp_qualified : int;
  bosco_signed : int;
  bosco_welfare : float;
  bosco_pod : float;
  nash_signed : int;
  nash_welfare : float;
  nash_pod : float;
}

type epoch_report = {
  epoch : int;
  candidates : int;
  qualified : int;
  viable : int;
  signed : int;
  welfare : float;
  mean_pod : float;
  new_paths : int;
  invalidated : int;
  mech : comparison option;
}

type result = {
  mechanism : mechanism;
  reports : epoch_report list;
  agreements : (Asn.t * Asn.t) list;
  pairs : int;
  negotiations : int;
  welfare : float;
  fingerprint : string;
  oracle_ok : bool option;
}

let check_config c =
  let bad fmt = Printf.ksprintf invalid_arg ("Market.run: " ^^ fmt) in
  if c.epochs < 1 then bad "epochs < 1";
  if c.w < 1 then bad "w < 1";
  if c.chunk < 1 then bad "chunk < 1";
  if c.max_demands < 1 then bad "max_demands < 1";
  if c.min_gain < 1 then bad "min_gain < 1";
  if c.max_candidates < 0 then bad "max_candidates < 0"

(* Exact hex floats in the transcript: the fingerprint is the
   determinism oracle, so two runs agree iff every outcome bit agrees. *)
let outcome_line buf epoch (o : Negotiate.outcome) topo =
  let asn i = Asn.to_int (Compact.id topo i) in
  Printf.bprintf buf "e%d AS%d-AS%d g%d/%d u:%h/%h pod:%h r:%d c:%b s:%b\n"
    epoch
    (asn o.Negotiate.cand.Candidates.x)
    (asn o.Negotiate.cand.Candidates.y)
    o.Negotiate.cand.Candidates.gain_x o.Negotiate.cand.Candidates.gain_y
    o.Negotiate.u_x o.Negotiate.u_y o.Negotiate.pod o.Negotiate.rounds
    o.Negotiate.converged o.Negotiate.signed

(* Epoch welfare through the batch Nash helper: post-transfer utilities
   of the signed agreements (equal-split of each surplus), summed. *)
let epoch_welfare signed_outcomes =
  let n = List.length signed_outcomes in
  if n = 0 then 0.0
  else begin
    let u_x = Array.make n 0.0 and u_y = Array.make n 0.0 in
    List.iteri
      (fun i (o : Negotiate.outcome) ->
        u_x.(i) <- o.Negotiate.u_x;
        u_y.(i) <- o.Negotiate.u_y)
      signed_outcomes;
    let out_x = Array.make n 0.0 and out_y = Array.make n 0.0 in
    let _viable = Nash.after_transfer_into ~n ~u_x ~u_y ~out_x ~out_y in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. out_x.(i) +. out_y.(i)
    done;
    !total
  end

let snapshot_bytes topo = Compact.Snapshot.to_string topo

let mean_pod_of viable_o =
  match viable_o with
  | [] -> Float.nan
  | _ ->
      List.fold_left
        (fun acc (o : Negotiate.outcome) -> acc +. o.Negotiate.pod)
        0.0 viable_o
      /. float_of_int (List.length viable_o)

let run ?pool ?retries ?deadline ?(oracle = false) ?(mechanism = Bosco) config
    g =
  check_config config;
  Obs.with_span "market/run" @@ fun () ->
  let engine = Engine.of_graph ~mode:Engine.Incremental g in
  (* Private mutable link state: scenario construction reads it, signed
     agreements mutate it, and the oracle re-freezes it from scratch. *)
  let graph = Graph.copy g in
  let dist = Distribution.uniform (-1.0) 1.0 in
  (* One truthful benchmark shared by every negotiation (they all
     bargain over the same normalized utility distribution). *)
  let truthful =
    Efficiency.expected_nash_truthful
      Game.
        {
          dist_x = dist;
          dist_y = dist;
          claims_x = Claim.of_list [];
          claims_y = Claim.of_list [];
        }
  in
  let buf = Buffer.create 4096 in
  let reports = ref [] in
  let agreements = ref [] in
  let pairs = ref 0 in
  let negotiations = ref 0 in
  let oracle_ok = ref (if oracle then Some true else None) in
  let epoch = ref 1 in
  let continue = ref true in
  while !continue && !epoch <= config.epochs do
    let e = !epoch in
    let topo = Engine.topology engine in
    let cands =
      Candidates.enumerate ?pool ?retries ?deadline ~min_gain:config.min_gain
        ~max_candidates:config.max_candidates topo
    in
    let n = Array.length cands in
    if n = 0 then begin
      reports :=
        {
          epoch = e;
          candidates = 0;
          qualified = 0;
          viable = 0;
          signed = 0;
          welfare = 0.0;
          mean_pod = Float.nan;
          new_paths = 0;
          invalidated = 0;
          mech = None;
        }
        :: !reports;
      Printf.bprintf buf "epoch %d: no candidates\n" e;
      continue := false
    end
    else begin
      (* Outcome randomness is keyed per (seed, epoch, pair) inside
         negotiate_pair / score_pair; the sweep rngs below only drive the
         runner's chunk-splitting, so results are independent of chunk
         size and pool size, and fault retries replay to the same
         bytes. *)
      let negotiate_all cs =
        let rng =
          Rng.create (Hashtbl.hash (config.seed, e, "market-epoch"))
        in
        Obs.with_span "market/negotiate" @@ fun () ->
        Pan_runner.Task.map_reduce ?pool ?retries ?deadline ~rng
          ~n:(Array.length cs) ~chunk:config.chunk
          ~f:(fun _crng i ->
            Negotiate.negotiate_pair ~graph ~topo ~seed:config.seed ~epoch:e
              ~w:config.w ~max_demands:config.max_demands ~truthful ~dist
              cs.(i))
          ~combine:(fun acc o -> o :: acc)
          ~init:[] ()
        |> List.rev
      in
      let score_all cs =
        let rng =
          Rng.create (Hashtbl.hash (config.seed, e, "market-score"))
        in
        Obs.with_span "market/score" @@ fun () ->
        Pan_runner.Task.map_reduce ?pool ?retries ?deadline ~rng
          ~n:(Array.length cs) ~chunk:config.chunk
          ~f:(fun _crng i ->
            Nash_peering.score_pair ~graph ~topo ~seed:config.seed ~epoch:e
              ~max_demands:config.max_demands cs.(i))
          ~combine:(fun acc s -> s :: acc)
          ~init:[] ()
        |> List.rev |> Array.of_list
      in
      (* [outcomes] is what this epoch negotiates, reports, and splices:
         every candidate under Bosco/Both, the qualifier's survivors
         under Nash_peering.  In Both mode the Nash arm is the qualified
         subset of the same outcomes — the qualifier is scored off the
         utilities the Bosco arm already computed ([of_outcome]), so the
         two mechanisms compare on one epoch snapshot, one candidate
         stream, and the same pair-keyed randomness, at no extra
         negotiation cost; the Nash arm's welfare is counterfactual (the
         splice applies the Bosco signings). *)
      let outcomes, qualified, nash_arm =
        match mechanism with
        | Bosco -> (negotiate_all cands, n, None)
        | Nash_peering ->
            let verdicts = Nash_peering.qualify_counted (score_all cands) in
            let kept =
              Array.to_list verdicts
              |> List.filter_map (fun (v : Nash_peering.verdict) ->
                     if v.Nash_peering.qualified then
                       Some v.Nash_peering.score.Nash_peering.cand
                     else None)
              |> Array.of_list
            in
            let q = Array.length kept in
            Printf.bprintf buf "epoch %d: nash-peering %d/%d qualified\n" e q
              n;
            (negotiate_all kept, q, None)
        | Both ->
            let outcomes = negotiate_all cands in
            let scores =
              Array.of_list (List.map Nash_peering.of_outcome outcomes)
            in
            let verdicts = Nash_peering.qualify_counted scores in
            let nash_o =
              List.filteri
                (fun i _ -> verdicts.(i).Nash_peering.qualified)
                outcomes
            in
            let q = Nash_peering.count_qualified verdicts in
            (outcomes, q, Some nash_o)
      in
      List.iter (fun o -> outcome_line buf e o topo) outcomes;
      let viable_o =
        List.filter (fun (o : Negotiate.outcome) -> o.Negotiate.viable) outcomes
      in
      let signed_o =
        List.filter (fun (o : Negotiate.outcome) -> o.Negotiate.signed) outcomes
      in
      pairs := !pairs + List.length outcomes;
      negotiations := !negotiations + List.length viable_o;
      let welfare = epoch_welfare signed_o in
      let mean_pod = mean_pod_of viable_o in
      let mech =
        match nash_arm with
        | None -> None
        | Some nash_o ->
            let nash_signed_o =
              List.filter
                (fun (o : Negotiate.outcome) -> o.Negotiate.signed)
                nash_o
            in
            let c =
              {
                cmp_qualified = qualified;
                bosco_signed = List.length signed_o;
                bosco_welfare = welfare;
                bosco_pod = mean_pod;
                nash_signed = List.length nash_signed_o;
                nash_welfare = epoch_welfare nash_signed_o;
                nash_pod = mean_pod_of nash_o;
              }
            in
            Obs.incr ~by:c.bosco_signed "market.mech.bosco_signed";
            Obs.incr ~by:c.nash_signed "market.mech.nash_signed";
            Printf.bprintf buf
              "mech e%d bosco s:%d w:%h pod:%h | nash q:%d s:%d w:%h pod:%h\n"
              e c.bosco_signed c.bosco_welfare c.bosco_pod c.cmp_qualified
              c.nash_signed c.nash_welfare c.nash_pod;
            Some c
      in
      (* Apply the epoch's signings as one batch splice; the engine
         drops exactly the affected memo entries. *)
      let events =
        List.map
          (fun (o : Negotiate.outcome) ->
            Engine.Link_up
              (Engine.Peer
                 (o.Negotiate.cand.Candidates.x, o.Negotiate.cand.Candidates.y)))
          signed_o
      in
      let invalidated = Engine.apply_batch engine events in
      List.iter
        (fun (o : Negotiate.outcome) ->
          let ix = o.Negotiate.cand.Candidates.x
          and iy = o.Negotiate.cand.Candidates.y in
          let x = Compact.id topo ix and y = Compact.id topo iy in
          Graph.add_peering graph x y;
          agreements := (x, y) :: !agreements)
        signed_o;
      (* Memoized path store across epochs: each signed pair's MA path
         count is served (and cached) by the engine on the post-splice
         view; a later epoch's splice invalidates exactly the affected
         entries. *)
      let new_paths =
        List.fold_left
          (fun acc (o : Negotiate.outcome) ->
            let mids =
              Engine.query engine ~src:o.Negotiate.cand.Candidates.x
                ~dst:o.Negotiate.cand.Candidates.y ~policy:Path_enum.Ma_all
            in
            acc + List.length mids)
          0 signed_o
      in
      if oracle then begin
        let ok =
          String.equal
            (snapshot_bytes (Engine.topology engine))
            (snapshot_bytes (Compact.freeze graph))
        in
        oracle_ok :=
          Some (match !oracle_ok with Some prev -> prev && ok | None -> ok)
      end;
      Printf.bprintf buf
        "epoch %d: %d candidates %d viable %d signed welfare:%h paths:%d \
         invalidated:%d\n"
        e n (List.length viable_o) (List.length signed_o) welfare new_paths
        invalidated;
      reports :=
        {
          epoch = e;
          candidates = n;
          qualified;
          viable = List.length viable_o;
          signed = List.length signed_o;
          welfare;
          mean_pod;
          new_paths;
          invalidated;
          mech;
        }
        :: !reports;
      Obs.incr "market.epochs";
      if signed_o = [] then continue := false
    end;
    incr epoch
  done;
  let reports = List.rev !reports in
  let welfare =
    List.fold_left (fun acc (r : epoch_report) -> acc +. r.welfare) 0.0 reports
  in
  {
    mechanism;
    reports;
    agreements = List.rev !agreements;
    pairs = !pairs;
    negotiations = !negotiations;
    welfare;
    fingerprint = Digest.to_hex (Digest.string (Buffer.contents buf));
    oracle_ok = !oracle_ok;
  }

let pp_pod fmt_nan pod =
  if Float.is_nan pod then fmt_nan else Printf.sprintf "PoD %.3f" pod

let pp fmt r =
  (match r.mechanism with
  | Bosco -> ()
  | m ->
      Format.fprintf fmt "mechanism: %s (theta %.2f)@." (mechanism_label m)
        Nash_peering.theta);
  List.iter
    (fun e ->
      (if r.mechanism = Nash_peering then
         Format.fprintf fmt "epoch %d: %d/%d candidates qualified@." e.epoch
           e.qualified e.candidates);
      Format.fprintf fmt
        "epoch %d: %d candidates, %d viable, %d signed, welfare %.3f, %s, %d \
         new MA paths, %d invalidated@."
        e.epoch e.candidates e.viable e.signed e.welfare
        (pp_pod "PoD -" e.mean_pod)
        e.new_paths e.invalidated;
      match e.mech with
      | None -> ()
      | Some c ->
          Format.fprintf fmt
            "  mechanisms: bosco %d signed, welfare %.3f, %s | nash-peering \
             %d qualified, %d signed, welfare %.3f, %s@."
            c.bosco_signed c.bosco_welfare
            (pp_pod "PoD -" c.bosco_pod)
            c.cmp_qualified c.nash_signed c.nash_welfare
            (pp_pod "PoD -" c.nash_pod))
    r.reports;
  Format.fprintf fmt
    "market: %d pairs scored, %d negotiations, %d agreements signed, total \
     welfare %.3f@."
    r.pairs r.negotiations
    (List.length r.agreements)
    r.welfare;
  (match r.oracle_ok with
  | None -> ()
  | Some ok -> Format.fprintf fmt "delta oracle: %s@." (if ok then "ok" else "MISMATCH"));
  Format.fprintf fmt "transcript fingerprint %s@." r.fingerprint
