(** MA candidate enumeration over the frozen core.

    A marketplace epoch starts from the current {!Pan_topology.Compact}
    view and asks: which {e unconnected} AS pairs would gain new
    destinations from a mutuality agreement?  Candidates live in the
    2-hop neighborhood (an MA is only useful between ASes that can
    actually interconnect through a shared neighbor's facilities, and it
    keeps the pair universe near-linear instead of quadratic); the gain
    of each side is the §VI mutuality count — the counterparty's
    providers and peers that are not already customers of the gaining
    side — computed directly on the CSR rows without materializing the
    {!Pan_topology.Path_enum_compact.ma_gain} bitsets.

    Enumeration is pure over the immutable frozen view, so it fans out
    over sources through the supervised runner; the result is
    bit-identical for every pool size. *)

open Pan_topology

type t = {
  x : int;  (** dense index, [x < y] *)
  y : int;
  gain_x : int;  (** new destinations [x] gains via [y] *)
  gain_y : int;
}

val gains : Compact.t -> int -> int -> int * int
(** [(gain_x, gain_y)] of the pair; exact per-side cardinalities of the
    MA gain sets ([Path_enum_compact.ma_gain] both ways). *)

val compare_candidates : t -> t -> int
(** Total gain descending, ties broken by ascending [(x, y)] — the order
    {!enumerate} sorts and truncates under.  The gain sum saturates at
    [max_int]/[min_int] instead of wrapping, so the order stays total
    (antisymmetric, transitive) even for adversarial gain counts;
    saturated ties fall back to the pair order.  Pinned by a qcheck
    regression in [test_market]. *)

val enumerate :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?min_gain:int ->
  ?max_candidates:int ->
  Compact.t ->
  t array
(** Every unconnected 2-hop pair whose sides both gain at least
    [min_gain] (default 1) destinations, ordered by total gain
    descending (ties: ascending [(x, y)]) and truncated to
    [max_candidates] (default 4096).  Signing a candidate connects the
    pair, which removes it from — and generally reshapes — the next
    epoch's enumeration.  [retries]/[deadline] supervise the fan-out
    exactly as in {!Pan_runner.Task.map}.
    @raise Invalid_argument if [min_gain < 1] or [max_candidates < 0]. *)
