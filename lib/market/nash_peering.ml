module Obs = Pan_obs.Obs
module Nash = Pan_econ.Nash

type score = { cand : Candidates.t; u_x : float; u_y : float }

type verdict = {
  score : score;
  share : float;
  best_x : float;
  best_y : float;
  qualified : bool;
}

let theta = 0.5

let of_outcome (o : Negotiate.outcome) =
  { cand = o.Negotiate.cand; u_x = o.Negotiate.u_x; u_y = o.Negotiate.u_y }

let score_pair ~graph ~topo ~seed ~epoch ~max_demands cand =
  let u_x, u_y =
    Negotiate.score_pair ~graph ~topo ~seed ~epoch ~max_demands cand
  in
  { cand; u_x; u_y }

(* Global bargaining in one batch pass: every candidate's Nash outcome
   (equal-split share of its surplus) through the batch helpers, then
   each AS's coalition value — the best share any of its candidates
   offers it, i.e. its outside option when it can bargain with the whole
   neighborhood instead of one partner at a time.  A pair survives iff
   it is viable and offers both endpoints at least [theta] of their
   outside option.  Pure float arithmetic in candidate order (the
   hashtable is only probed, never iterated), so the verdicts are as
   deterministic as the scores. *)
let qualify scores =
  let n = Array.length scores in
  if n = 0 then [||]
  else begin
    let u_x = Array.make n 0.0 and u_y = Array.make n 0.0 in
    Array.iteri
      (fun i s ->
        u_x.(i) <- s.u_x;
        u_y.(i) <- s.u_y)
      scores;
    let out_x = Array.make n 0.0 and out_y = Array.make n 0.0 in
    let _concluded = Nash.after_transfer_into ~n ~u_x ~u_y ~out_x ~out_y in
    let best = Hashtbl.create (2 * n) in
    let note a share =
      match Hashtbl.find_opt best a with
      | Some b when b >= share -> ()
      | _ -> Hashtbl.replace best a share
    in
    Array.iteri
      (fun i s ->
        if Nash.viable ~u_x:u_x.(i) ~u_y:u_y.(i) then begin
          note s.cand.Candidates.x out_x.(i);
          note s.cand.Candidates.y out_y.(i)
        end)
      scores;
    let best_of a = Option.value ~default:0.0 (Hashtbl.find_opt best a) in
    Array.mapi
      (fun i s ->
        let bx = best_of s.cand.Candidates.x
        and by = best_of s.cand.Candidates.y in
        if not (Nash.viable ~u_x:u_x.(i) ~u_y:u_y.(i)) then
          { score = s; share = 0.0; best_x = bx; best_y = by; qualified = false }
        else
          let share = out_x.(i) in
          {
            score = s;
            share;
            best_x = bx;
            best_y = by;
            qualified = share >= theta *. bx && share >= theta *. by;
          })
      scores
  end

(* Reference implementation for the tests: scalar Nash helpers and a
   quadratic rescan of the whole candidate set per endpoint.  The batch
   helpers are slot-by-slot identical to the scalar ones, so [qualify]
   must agree bit-for-bit. *)
let qualify_oracle scores =
  let share_of s = Nash.after_transfer ~u_x:s.u_x ~u_y:s.u_y in
  let best_for a =
    Array.fold_left
      (fun acc s ->
        if s.cand.Candidates.x = a || s.cand.Candidates.y = a then
          match share_of s with Some (v, _) when v > acc -> v | _ -> acc
        else acc)
      0.0 scores
  in
  Array.map
    (fun s ->
      let bx = best_for s.cand.Candidates.x
      and by = best_for s.cand.Candidates.y in
      match share_of s with
      | None ->
          { score = s; share = 0.0; best_x = bx; best_y = by; qualified = false }
      | Some (v, _) ->
          {
            score = s;
            share = v;
            best_x = bx;
            best_y = by;
            qualified = v >= theta *. bx && v >= theta *. by;
          })
    scores

let count_qualified verdicts =
  Array.fold_left (fun acc v -> if v.qualified then acc + 1 else acc) 0 verdicts

let qualify_counted scores =
  let verdicts = qualify scores in
  Obs.incr ~by:(count_qualified verdicts) "market.mech.qualified";
  verdicts
