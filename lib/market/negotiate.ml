open Pan_numerics
open Pan_topology
open Pan_econ
module Obs = Pan_obs.Obs
module Workspace = Pan_bosco.Workspace
module Service = Pan_bosco.Service

type arena = { bosco : Workspace.t; econ : Econ_workspace.t }

(* One arena per domain, created on the domain's first negotiation and
   reused for every later one it runs — no per-negotiation allocation of
   kernel scratch, and the opponent-CDF cache is keyed per shard.
   Workspaces are bit-identical scratch, so which domain runs which
   negotiation can never change an outcome. *)
let arena_key =
  Domain.DLS.new_key (fun () ->
      {
        bosco = Workspace.create ~cache_capacity:16 ();
        econ = Econ_workspace.create ();
      })

let arena () = Domain.DLS.get arena_key

type outcome = {
  cand : Candidates.t;
  u_x : float;
  u_y : float;
  viable : bool;
  pod : float;
  rounds : int;
  converged : bool;
  signed : bool;
}

let forecast_levels = [| 0.25; 0.5; 0.75; 1.0 |]

(* What [via] offers the gaining side: its providers and peers that are
   not already customers of (or identical to) the gaining side — the
   same filter as Path_enum_compact.ma_gain, classified back into grant
   components so Agreement validation sees subsets of [via]'s actual
   neighbor sets. *)
let grant_for topo ~side ~via =
  let asn i = Compact.id topo i in
  let keep z = z <> side && not (Compact.mem_customer topo side z) in
  let providers = ref Asn.Set.empty and peers = ref Asn.Set.empty in
  Compact.iter_providers topo via (fun z ->
      if keep z then providers := Asn.Set.add (asn z) !providers);
  Compact.iter_peers topo via (fun z ->
      if keep z then peers := Asn.Set.add (asn z) !peers);
  {
    Agreement.providers = !providers;
    peers = !peers;
    customers = Asn.Set.empty;
  }

(* Deterministic per-AS business conditions, the Adoption recipe with a
   market-keyed seed stream: varied transit/stub pricing and internal
   cost rates are what make some agreements viable and others not. *)
let business_of ~seed g x =
  let rng = Rng.create (Hashtbl.hash (seed, Asn.to_int x, "market-biz")) in
  let transit = Pricing.per_usage ~unit_price:(Rng.uniform rng 0.7 1.3) in
  let stub =
    if Rng.float rng < 0.4 then Pricing.flat_rate ~fee:20.0
    else Pricing.per_usage ~unit_price:(Rng.uniform rng 1.2 2.5)
  in
  let internal = Cost.linear ~rate:(Rng.uniform rng 0.05 0.7) in
  Business.of_graph ~default_transit:transit ~default_internal:internal
    ~stub_price:stub g x

let baseline_of g x =
  let entries =
    Asn.Set.fold
      (fun y acc ->
        let v =
          2.0 *. sqrt (float_of_int (Graph.degree g x * Graph.degree g y))
        in
        (y, v) :: acc)
      (Graph.neighbors g x) []
  in
  let stub_volume = 4.0 +. float_of_int (Graph.degree g x) in
  Flows.of_list ((Flows.stub x, stub_volume) :: entries)

(* Forecast demands for one side: the partner's providers first (the
   headline MA case), then peers, in degree order. *)
let demands_for ~rng ~max_demands g ~beneficiary ~transit ~granted =
  let providers, peers =
    Asn.Set.partition
      (fun z -> Asn.Set.mem z (Graph.providers g transit))
      granted
  in
  let by_degree set =
    Asn.Set.elements set
    |> List.map (fun z -> (Graph.degree g z, z))
    |> List.sort (fun (d1, z1) (d2, z2) ->
           match compare d2 d1 with 0 -> Asn.compare z1 z2 | c -> c)
    |> List.map snd
  in
  let dests =
    by_degree providers @ by_degree peers
    |> List.filteri (fun i _ -> i < max_demands)
  in
  let providers = Graph.providers g beneficiary in
  let reroute_from =
    if Asn.Set.is_empty providers then None
    else Some (Asn.Set.min_elt providers)
  in
  let provider_traffic =
    4.0 *. sqrt (float_of_int (Graph.degree g beneficiary))
  in
  List.map
    (fun z ->
      let share = Rng.uniform rng 0.05 0.3 in
      let reroutable =
        if reroute_from = None then 0.0 else provider_traffic *. share
      in
      Traffic_model.
        {
          beneficiary;
          transit;
          dest = z;
          reroutable;
          reroute_from;
          attracted_max = reroutable *. Rng.uniform rng 0.2 0.8;
        })
    dests

(* Score the agreement economically: all forecast levels in one batch
   kernel call, best surplus (ties: lowest level) fixes the utilities a
   cash-compensation bargain starts from. *)
let score_best ~econ_ws model =
  let n_d = Model_fast.n_demands model in
  let stride = 2 * n_d in
  let m = Array.length forecast_levels in
  let demands = Traffic_model.demands (Model_fast.scenario model) in
  let vectors = Array.make (Int.max 1 (m * stride)) 0.0 in
  List.iteri
    (fun d (dem : Traffic_model.segment_demand) ->
      Array.iteri
        (fun l level ->
          let base = (l * stride) + (2 * d) in
          vectors.(base) <- level *. dem.Traffic_model.reroutable;
          vectors.(base + 1) <- level *. dem.Traffic_model.attracted_max)
        forecast_levels)
    demands;
  let out_x, out_y = Econ_workspace.batch_scratch econ_ws m in
  Model_fast.utilities_batch ~workspace:econ_ws model ~vectors ~m ~out_x
    ~out_y;
  let best = ref 0 in
  for i = 1 to m - 1 do
    if
      Nash.surplus ~u_x:out_x.(i) ~u_y:out_y.(i)
      > Nash.surplus ~u_x:out_x.(!best) ~u_y:out_y.(!best)
    then best := i
  done;
  (out_x.(!best), out_y.(!best))

(* The deterministic prefix both mechanisms share: pair-keyed rng,
   agreement construction, forecast demands (which consume the rng), and
   the batched econ scoring.  [negotiate_pair] continues the returned rng
   into BOSCO; [score_pair] stops here.  Because both run exactly these
   operations in this order, the Nash-Peering qualifier and the BOSCO
   path see bit-identical utilities and pair randomness for the same
   candidate stream. *)
let pair_context ~graph ~topo ~seed ~epoch ~max_demands cand =
  let ar = arena () in
  let ix = cand.Candidates.x and iy = cand.Candidates.y in
  let x = Compact.id topo ix and y = Compact.id topo iy in
  let rng =
    Rng.create
      (Hashtbl.hash (seed, epoch, Asn.to_int x, Asn.to_int y, "market-pair"))
  in
  let x_grant = grant_for topo ~side:iy ~via:ix in
  let y_grant = grant_for topo ~side:ix ~via:iy in
  let agreement = Agreement.make_exn graph ~x ~y ~x_grant ~y_grant in
  let demands =
    demands_for ~rng ~max_demands graph ~beneficiary:x ~transit:y
      ~granted:(Agreement.accessible agreement ~to_:x)
    @ demands_for ~rng ~max_demands graph ~beneficiary:y ~transit:x
        ~granted:(Agreement.accessible agreement ~to_:y)
  in
  let scenario =
    Traffic_model.make_scenario_exn ~graph ~agreement
      ~businesses:
        [ (x, business_of ~seed graph x); (y, business_of ~seed graph y) ]
      ~baseline:[ (x, baseline_of graph x); (y, baseline_of graph y) ]
      ~demands
  in
  let model = Model_fast.compile scenario in
  let u_x, u_y = score_best ~econ_ws:ar.econ model in
  (rng, u_x, u_y)

let score_pair ~graph ~topo ~seed ~epoch ~max_demands cand =
  let _rng, u_x, u_y =
    pair_context ~graph ~topo ~seed ~epoch ~max_demands cand
  in
  Obs.incr "market.scored";
  (u_x, u_y)

let negotiate_pair ~graph ~topo ~seed ~epoch ~w ~max_demands ~truthful ~dist
    cand =
  let ar = arena () in
  let rng, u_x, u_y =
    pair_context ~graph ~topo ~seed ~epoch ~max_demands cand
  in
  Obs.incr "market.pairs";
  if not (Nash.viable ~u_x ~u_y) then
    {
      cand;
      u_x;
      u_y;
      viable = false;
      pod = Float.nan;
      rounds = 0;
      converged = false;
      signed = false;
    }
  else begin
    Obs.incr "market.viable";
    let r =
      Service.negotiate ~truthful ~workspace:ar.bosco ~rng ~dist_x:dist
        ~dist_y:dist ~w ()
    in
    Obs.incr "market.negotiations";
    Obs.incr ~by:r.Service.rounds "market.rounds";
    let signed = r.Service.converged in
    if signed then Obs.incr "market.signed";
    {
      cand;
      u_x;
      u_y;
      viable = true;
      pod = r.Service.pod;
      rounds = r.Service.rounds;
      converged = r.Service.converged;
      signed;
    }
  end
