open Pan_topology
module Obs = Pan_obs.Obs

type t = { x : int; y : int; gain_x : int; gain_y : int }

(* |(providers(via) ∪ peers(via)) \ customers(side) \ {side}| counted
   straight off the CSR rows: the two classes are disjoint (a pair is
   linked in at most one class), so no dedup set is needed, and customer
   membership is a binary search per element — no bitset allocation on
   the enumeration hot path. *)
let gain_via topo ~side ~via =
  let g = ref 0 in
  let count z =
    if z <> side && not (Compact.mem_customer topo side z) then incr g
  in
  Compact.iter_providers topo via count;
  Compact.iter_peers topo via count;
  !g

let gains topo x y =
  (gain_via topo ~side:x ~via:y, gain_via topo ~side:y ~via:x)

let candidates_of_source topo ~min_gain x =
  let n = Compact.num_ases topo in
  let seen = Bitset.create ~width:n in
  let acc = ref [] in
  let consider y =
    if y > x && not (Bitset.mem seen y) then begin
      Bitset.unsafe_add seen y;
      if not (Compact.connected topo x y) then begin
        let gx = gain_via topo ~side:x ~via:y in
        if gx >= min_gain then begin
          let gy = gain_via topo ~side:y ~via:x in
          if gy >= min_gain then
            acc := { x; y; gain_x = gx; gain_y = gy } :: !acc
        end
      end
    end
  in
  Compact.iter_neighbors topo x (fun m ->
      Compact.iter_neighbors topo m consider);
  !acc

(* Total gain descending, then (x, y) ascending: a total order, so the
   sort (and the truncation under it) is deterministic.  The ranking sum
   saturates: adversarial gain counts near [max_int] would wrap the
   unboxed addition, flip the comparison sign, and break transitivity —
   undefined sort behavior and a nondeterministic truncation.  Saturated
   ties fall back to the pair order, which keeps the order total. *)
let sat_add a b =
  let s = a + b in
  if a >= 0 && b >= 0 && s < 0 then max_int
  else if a < 0 && b < 0 && s >= 0 then min_int
  else s

let total_gain c = sat_add c.gain_x c.gain_y

let compare_candidates a b =
  match compare (total_gain b) (total_gain a) with
  | 0 -> compare (a.x, a.y) (b.x, b.y)
  | c -> c

let enumerate ?pool ?retries ?deadline ?(min_gain = 1) ?(max_candidates = 4096)
    topo =
  if min_gain < 1 then invalid_arg "Candidates.enumerate: min_gain < 1";
  if max_candidates < 0 then
    invalid_arg "Candidates.enumerate: max_candidates < 0";
  Obs.with_span "market/enumerate" @@ fun () ->
  let n = Compact.num_ases topo in
  let per_src =
    Pan_runner.Task.map ?pool ?retries ?deadline ~n
      ~f:(fun x -> candidates_of_source topo ~min_gain x)
      ()
  in
  let all = List.concat (Array.to_list per_src) in
  let arr = Array.of_list (List.sort compare_candidates all) in
  let kept = Array.sub arr 0 (min max_candidates (Array.length arr)) in
  Obs.incr ~by:(Array.length arr) "market.candidates.enumerated";
  Obs.incr ~by:(Array.length kept) "market.candidates.kept";
  kept
