(** Bundled topology snapshots: the frozen {!Compact} core plus optional
    {!Geo} and {!Bandwidth} tables in one versioned, checksummed container
    (see {!Compact.Snapshot} for the container format).  Loading a bundle
    restores the exact frozen topology without re-parsing or re-freezing —
    the "instant start" path for CAIDA-scale graphs. *)

type bundle = {
  topo : Compact.t;
  geo : Geo.t option;
  bandwidth : Bandwidth.t option;
}

val to_string : ?geo:Geo.t -> ?bandwidth:Bandwidth.t -> Compact.t -> string
(** Serialize a bundle.  Equal inputs produce equal bytes. *)

val of_string : string -> bundle
(** Inverse of {!to_string}.
    @raise Invalid_argument on corrupt, truncated, or version-mismatched
    data (propagated from {!Compact.Snapshot.of_string}, or raised here
    for malformed geo/bandwidth sections). *)

val save : string -> ?geo:Geo.t -> ?bandwidth:Bandwidth.t -> Compact.t -> unit
(** Write [to_string] to a file (binary mode). *)

val load : string -> bundle
(** Read and decode a snapshot file; bumps the [topology.snapshot.*]
    observability counters.
    @raise Invalid_argument as {!of_string}; [Sys_error] on I/O failure. *)
