exception Parse_error of { line : int; text : string; reason : string }

let fail line text reason = raise (Parse_error { line; text; reason })

let parse_line lineno text =
  let trimmed = String.trim text in
  if trimmed = "" || String.length trimmed > 0 && trimmed.[0] = '#' then None
  else
    match String.split_on_char '|' trimmed with
    | as1 :: as2 :: rel :: _rest -> (
        let parse_asn s =
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 0 -> Asn.of_int n
          | _ -> fail lineno text (Printf.sprintf "bad AS number %S" s)
        in
        let a = parse_asn as1 and b = parse_asn as2 in
        match String.trim rel with
        | "-1" -> Some (a, b, Graph.Customer)
        | "0" -> Some (a, b, Graph.Peer)
        | other -> fail lineno text (Printf.sprintf "bad relationship %S" other)
        )
    | _ -> fail lineno text "expected at least 3 '|'-separated fields"

let of_lines lines =
  let g = Graph.create () in
  let lineno = ref 0 in
  Seq.iter
    (fun line ->
      incr lineno;
      match parse_line !lineno line with
      | None -> ()
      | Some (a, b, Graph.Customer) ->
          Graph.add_provider_customer g ~provider:a ~customer:b
      | Some (a, b, Graph.Peer) -> Graph.add_peering g a b
      | Some (_, _, Graph.Provider) -> assert false)
    lines;
  g

let of_string s = of_lines (String.split_on_char '\n' s |> List.to_seq)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = In_channel.input_lines ic in
      of_lines (List.to_seq lines))

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# panagree as-rel2 export\n";
  let p2c =
    Graph.fold_provider_customer_links
      (fun ~provider ~customer acc -> (provider, customer) :: acc)
      g []
    |> List.sort compare
  in
  List.iter
    (fun (p, c) ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%d|-1|panagree\n" (Asn.to_int p) (Asn.to_int c)))
    p2c;
  let p2p =
    Graph.fold_peering_links (fun x y acc -> (x, y) :: acc) g []
    |> List.sort compare
  in
  List.iter
    (fun (x, y) ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%d|0|panagree\n" (Asn.to_int x) (Asn.to_int y)))
    p2p;
  Buffer.contents buf

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))
