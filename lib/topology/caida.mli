(** Reader and writer for the CAIDA AS-relationships format ("as-rel2").

    The paper's evaluation (§VI) is based on the CAIDA serial-2 dataset.
    That dataset is not redistributable here, so the experiments default to
    a synthetic topology ({!Gen}); this module lets a user substitute the
    real file unchanged.

    Format: one relationship per line, [#]-prefixed comment lines ignored:
    {v
    <as1>|<as2>|-1|<source>   provider(as1) -> customer(as2)
    <as1>|<as2>|0|<source>    peer(as1) -- peer(as2)
    v}
    The trailing [<source>] field is optional, as in older serials. *)

exception Parse_error of { line : int; text : string; reason : string }

val parse_line : int -> string -> (Asn.t * Asn.t * Graph.relationship) option
(** Parse a single line ([None] for comments/blank lines). The returned
    relationship is the role of the second AS relative to the first, i.e.
    [-1] yields [Customer]. @raise Parse_error on malformed input. *)

val of_lines : string Seq.t -> Graph.t
(** Build a graph from the lines of a dataset.
    @raise Parse_error on malformed input
    @raise Invalid_argument on conflicting duplicate relationships. *)

val of_string : string -> Graph.t
(** Parse a whole dataset held in memory. *)

val load : string -> Graph.t
(** [load path] reads and parses the file at [path]. *)

val to_string : Graph.t -> string
(** Serialize a graph back to the as-rel2 format (source field ["panagree"]),
    links sorted for reproducible output. *)

val save : string -> Graph.t -> unit
