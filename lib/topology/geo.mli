(** Geolocation of ASes and inter-AS links, and path geodistance (§VI-B).

    The paper derives AS centers of gravity from prefix geolocations
    (prefix2as + GeoLite2) and interconnection coordinates from the CAIDA
    geographic AS-relationship dataset.  Neither dataset is available here,
    so this module generates a synthetic embedding with the same shape:

    - a set of "hub" cities is placed on the globe;
    - provider-less ASes (Tier-1-like) are located at the centroid of a few
      hubs, mimicking the averaging the paper applies to geographically
      distributed top-tier ASes;
    - every other AS is placed near the centroid of its providers, with
      noise that shrinks down the hierarchy;
    - each link's interconnection point lies between its endpoints, with
      jitter.

    Geodistance of a length-3 path [(A1, l12, A2, l23, A3)] is
    [d(A1,l12) + d(l12,l23) + d(l23,A3)] with [d] the great-circle
    (haversine) distance, exactly as in the paper. *)

type point = { lat : float; lon : float }
(** Degrees; latitude in [\[-90, 90\]], longitude in [\[-180, 180\]]. *)

val distance_km : point -> point -> float
(** Great-circle distance on a sphere of radius 6371 km. *)

type t
(** An embedding of a particular graph. *)

val generate : ?hubs:int -> seed:int -> Graph.t -> t
(** Deterministic synthetic embedding ([hubs] defaults to 40).  Freezes
    the graph into a {!Compact} view internally; use {!of_compact} to
    share an existing view. *)

val of_compact : ?hubs:int -> seed:int -> Compact.t -> t
(** Same embedding over an already-frozen topology.  Placement and link
    jitter consume the RNG in frozen iteration order, so
    [of_compact ~seed (Compact.freeze g)] equals [generate ~seed g]. *)

val of_locations : Graph.t -> point Asn.Map.t -> t
(** Build an embedding from externally supplied AS locations (e.g. parsed
    from real datasets); link locations default to endpoint midpoints.
    @raise Invalid_argument if some AS of the graph has no location. *)

val as_location : t -> Asn.t -> point
(** @raise Not_found for an unknown AS. *)

val link_location : t -> Asn.t -> Asn.t -> point
(** Interconnection point of the (unordered) link.
    @raise Not_found if the ASes are not adjacent. *)

val path3_geodistance : t -> Asn.t -> Asn.t -> Asn.t -> float
(** [path3_geodistance t a1 a2 a3] is the geodistance in km of the length-3
    path [a1 - a2 - a3]. *)

val bindings : t -> (Asn.t * point) list * ((Asn.t * Asn.t) * point) list
(** The full AS-location and link-location tables in deterministic order
    (ASes ascending; links by normalized key), for the {!Snapshot} geo
    section. *)

val of_bindings :
  (Asn.t * point) list -> ((Asn.t * Asn.t) * point) list -> t
(** Rebuild an embedding from dumped tables; inverse of {!bindings}. *)
