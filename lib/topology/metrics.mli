(** Structural metrics of AS topologies.

    Used to sanity-check the synthetic generator against the features of
    measured AS graphs (heavy-tailed degrees, peering-dominated link mix,
    shallow hierarchy) and by the economic model, where an AS's
    {e customer cone} — everything reachable by walking only
    provider→customer links — is the classic proxy for its market size. *)

type summary = {
  ases : int;
  p2c_links : int;
  p2p_links : int;
  peering_share : float;  (** fraction of links that are peering *)
  max_degree : int;
  mean_degree : float;
  degree_p99 : float;
  max_hierarchy_depth : int;
      (** longest provider chain from a provider-less AS down to a leaf *)
  provider_less : int;  (** number of ASes with no providers (the core) *)
}

val summary : Graph.t -> summary
(** @raise Invalid_argument on an empty graph. *)

val customer_cone : Graph.t -> Asn.t -> Asn.Set.t
(** The AS itself plus every AS reachable via provider→customer links. *)

val cone_size : Graph.t -> Asn.t -> int

val cone_sizes : Graph.t -> int Asn.Map.t
(** Cone size of every AS, computed in one pass over the provider DAG
    (memoized post-order). *)

val hierarchy_depth : Graph.t -> Asn.t -> int
(** Length (in links) of the longest customer chain below the AS; 0 for
    stubs. @raise Invalid_argument if the provider–customer subgraph
    below the AS contains a cycle. *)

val degrees : Graph.t -> float array
(** Degree of every AS, ascending by ASN — computed on a frozen
    {!Compact} view (O(1) per AS). *)

val degrees_compact : Compact.t -> float array
(** Same, over an existing frozen view (no re-freeze). *)

val degree_histogram : bins:int -> Graph.t -> (float * float * int) array
(** Histogram over AS degrees (see {!Pan_numerics.Stats.histogram}).
    Freezes the graph and reads O(1) CSR degrees. *)

val degree_histogram_compact :
  bins:int -> Compact.t -> (float * float * int) array

val pp_summary : Format.formatter -> summary -> unit
