type t = int

let of_int n =
  if n < 0 then invalid_arg "Asn.of_int: negative AS number";
  n

let to_int n = n
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt n = Format.fprintf fmt "AS%d" n

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list l = Set.of_list l
