(** Word-packed sets of small integers (interned AS indices).

    The compact path algebra ({!Path_enum_compact}) replaces the
    [Asn.Set.t] balanced trees of the legacy implementation with these
    fixed-width bitsets: a set over the universe [0 .. width-1] stored as
    an [int array], so union / intersection / difference are straight-line
    word loops and membership is one load.

    Bitsets are mutable; the binary operators ({!union}, {!inter},
    {!diff}) allocate a fresh result while the [_into] variants update
    their first argument in place.  All binary operations require both
    operands to have the same [width].  Iteration order is always
    ascending, which is what makes the compact and legacy path
    enumerations produce identically-ordered results. *)

type t

val create : width:int -> t
(** Empty set over the universe [0 .. width-1].
    @raise Invalid_argument if [width < 0]. *)

val width : t -> int
val copy : t -> t

val add : t -> int -> unit
(** @raise Invalid_argument if the index is outside the universe. *)

val unsafe_add : t -> int -> unit
(** [add] without the bounds check — for callers whose indices are valid
    by construction (CSR adjacency rows). *)

val remove : t -> int -> unit
(** @raise Invalid_argument if the index is outside the universe. *)

val mem : t -> int -> bool
(** [false] for indices outside the universe (mirroring [Set.mem] on a
    value not in the set). *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val union_into : into:t -> t -> unit
(** [into := into ∪ other]. *)

val diff_into : into:t -> t -> unit
(** [into := into \ other]. *)

val is_empty : t -> bool

val equal : t -> t -> bool
(** Same width and same elements. *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Ascending. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending. *)

val to_list : t -> int list
(** Ascending. *)

val of_list : width:int -> int list -> t
