(** Frozen, immutable view of a {!Graph}: dense [Asn.t ↔ int] interning
    plus sorted int-array CSR adjacency, segmented by relationship class.

    {!Graph.t} stays the {e builder} — hash tables of functional sets,
    convenient while a topology is read from a file or generated.  Once
    the topology stops changing, {!freeze} compacts it into this view:

    - every AS gets a dense index in [0 .. num_ases - 1], assigned in
      ascending ASN order (so index order = ASN order everywhere);
    - each relationship class (providers / peers / customers) is one CSR
      pair [(off, adj)] of int arrays, rows sorted ascending.

    The result is immutable and contains only flat arrays, so a single
    frozen topology is shared read-only across [pan_runner] worker
    domains — no per-worker copy, no locks.  {!degree} is O(1) (three
    offset subtractions) and {!iter_neighbors} allocates nothing, unlike
    the set-union-based {!Graph.neighbors}.

    When {!Pan_obs.Obs} is configured, {!freeze} records a
    [topology.freeze] span and the [topology.freeze] /
    [topology.compact.*] counters, so metric snapshots show how often the
    compact core was (re)built and at what size. *)

type t

val freeze : Graph.t -> t
(** Snapshot the builder.  Later mutations of the graph are not seen. *)

val num_ases : t -> int
val num_provider_customer_links : t -> int
val num_peering_links : t -> int

val id : t -> int -> Asn.t
(** The ASN interned at an index ([ids] are ascending). *)

val asns : t -> Asn.t array
(** All ASNs, ascending — a fresh copy, same contents as
    {!Graph.ases}. *)

val index_of : t -> Asn.t -> int option
(** Binary search over the interning table; [None] for unknown ASes. *)

val index_of_exn : t -> Asn.t -> int
(** @raise Invalid_argument for an AS not in the topology. *)

val degree : t -> int -> int
(** O(1): providers + peers + customers row lengths. *)

val providers_count : t -> int -> int
val peers_count : t -> int -> int
val customers_count : t -> int -> int

val iter_providers : t -> int -> (int -> unit) -> unit
(** Ascending row iteration; allocation-free. *)

val iter_peers : t -> int -> (int -> unit) -> unit
val iter_customers : t -> int -> (int -> unit) -> unit

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Providers, then peers, then customers (each row ascending);
    allocation-free, unlike {!Graph.neighbors} which builds two set
    unions. *)

val mem_provider : t -> int -> int -> bool
(** [mem_provider t x y]: is [y] a provider of [x]?  Binary search in the
    row. *)

val mem_peer : t -> int -> int -> bool
val mem_customer : t -> int -> int -> bool
val connected : t -> int -> int -> bool

val add_providers : t -> int -> Bitset.t -> unit
(** OR the providers row of an AS into a bitset (of width
    [num_ases]). *)

val add_peers : t -> int -> Bitset.t -> unit
val add_customers : t -> int -> Bitset.t -> unit

val iter_peering_links : t -> (int -> int -> unit) -> unit
(** Each undirected peering link once, endpoints ascending, links in
    deterministic (first endpoint, then second) order. *)

val iter_provider_customer_links :
  t -> (provider:int -> customer:int -> unit) -> unit
(** Deterministic: providers ascending, customers ascending within each
    provider. *)

val pp_stats : Format.formatter -> t -> unit

val thaw : t -> Graph.t
(** Rebuild an equivalent mutable builder: every interned AS registered,
    every link re-added.  [freeze (thaw t)] is byte-identical to [t]
    (both intern ascending), which lets a service reconstruct its mutable
    mirror from a snapshot-loaded core. *)

(** Single-link updates to a frozen view — the {e incremental freeze}
    used by the resident path-query service under link churn.

    Each operation splices one element in or out of the two affected CSR
    rows and returns a {e new} [t]; untouched relationship classes are
    shared with the input, and the input itself is never mutated.  Cost
    is O(links in the class) for the splice plus O(num_ases) for the
    offset rebuild — far below a full {!freeze}, which re-sorts every
    row from the hash-table builder.

    Invariant: the result is byte-identical (via {!Snapshot.to_string})
    to [freeze] of the equivalently-mutated {!Graph.t}; the service's
    re-freeze oracle and the churn-equivalence qcheck suite both lean on
    this.

    Endpoints are dense indices (as used by the query layer), and the AS
    set never changes — churn flips links, not ASes.  Each operation
    validates its precondition and raises [Invalid_argument] (with the
    offending ASNs) on out-of-range indices, self-links, adding a link
    that already exists in any class, or removing one that does not. *)
module Delta : sig
  val add_peering : t -> int -> int -> t
  (** [add_peering t i j] links [i] and [j] as settlement-free peers.
      @raise Invalid_argument if already connected (in any class). *)

  val remove_peering : t -> int -> int -> t
  (** @raise Invalid_argument if [i] and [j] are not peers. *)

  val add_provider_customer : t -> provider:int -> customer:int -> t
  (** @raise Invalid_argument if already connected (in any class). *)

  val remove_provider_customer : t -> provider:int -> customer:int -> t
  (** @raise Invalid_argument if [provider] is not a provider of
      [customer]. *)

  (** One link edit of a batch, endpoints as dense indices. *)
  type edit =
    | Add_peering of int * int
    | Remove_peering of int * int
    | Add_provider_customer of { provider : int; customer : int }
    | Remove_provider_customer of { provider : int; customer : int }

  val apply_batch : t -> edit list -> t
  (** [apply_batch t edits] applies the edits left-to-right with the
      exact semantics (validation order, error messages, byte-identical
      result) of folding the single-link operations above, but rebuilds
      each touched relationship class in {e one} splice pass instead of
      one per edit — the marketplace epoch loop applies hundreds of
      signed agreements per epoch this way, and [serve] churn replay
      uses the same entry point.  Edits may revisit the same pair
      (add-then-remove chains behave as in the sequential fold).
      Validation sees the effect of earlier edits in the batch.
      Increments [topology.delta.add]/[remove] per edit plus one
      [topology.delta.batch].
      @raise Invalid_argument exactly when the sequential fold would. *)
end

(** Immutable subgraph restrictions over a frozen view — the masked
    traversal universe used by intent-based candidate generation.

    A mask pairs a blocked-AS bitset (width [num_ases]) with a
    normalized, sorted list of blocked undirected links.  Every
    operation returns a {e new} mask (the blocked state is small, so
    copies are cheap), which lets a mask live inside a memo key while
    link churn derives updated masks from it: a [Delta]-applied
    link-down event composes as {!Mask.exclude_link} and the matching
    link-up as {!Mask.restore_link}, without rebuilding the mask that
    the intent's own static exclusions produced.

    Masks restrict traversal only — the underlying [t] is untouched, so
    one frozen view serves arbitrarily many differently-masked queries
    concurrently. *)
module Mask : sig
  type mask

  val all : t -> mask
  (** No restriction: every AS and link of [t] is allowed. *)

  val width : mask -> int

  val exclude_as : mask -> int -> mask
  (** Block a dense AS index (and implicitly every link at it).
      @raise Invalid_argument on an out-of-range index. *)

  val exclude_link : mask -> int -> int -> mask
  (** Block one undirected link (endpoints in either order); idempotent.
      @raise Invalid_argument on out-of-range indices or a self-link. *)

  val restore_link : mask -> int -> int -> mask
  (** Unblock a link previously blocked with {!exclude_link}; removing a
      link that is not blocked is a no-op.  This is the inverse used
      when a downed link comes back up. *)

  val allows_as : mask -> int -> bool

  val allows_link : mask -> int -> int -> bool
  (** Both endpoints allowed and the link itself not blocked. *)

  val is_trivial : mask -> bool
  (** [true] iff the mask blocks nothing. *)

  val excluded_ases : mask -> int list
  (** Ascending. *)

  val excluded_links : mask -> (int * int) list
  (** Normalized (lo, hi), ascending. *)

  val equal : mask -> mask -> bool
end

(** Versioned binary snapshots of the frozen view.

    A snapshot file is a small container: an 8-byte magic, a format
    version, a section count, the payload length, and an MD5 checksum of
    the payload, followed by tagged sections.  The mandatory ["core"]
    section stores the interned-ASN table and the three per-relationship
    CSR adjacency classes verbatim, so [load] rebuilds the exact frozen
    view without re-parsing or re-freezing — a full-CAIDA service starts
    in milliseconds.  Extra sections (geo and bandwidth tables, see
    {!Snapshot}) ride in the same container under the same checksum.

    Stale or damaged files are rejected loudly: bad magic, an unknown
    format version, a truncated payload, and a checksum mismatch each
    raise [Invalid_argument] with a distinct message — never a decode
    crash on corrupt bytes. *)
module Snapshot : sig
  val format_version : int
  (** Bumped whenever the binary layout changes; [load] refuses other
      versions. *)

  val to_string : ?sections:(string * string) list -> t -> string
  (** Serialize; [sections] are extra [(tag, body)] pairs appended after
      the core section (tags must be unique and not ["core"]). *)

  val of_string : string -> t * (string * string) list
  (** Parse a snapshot image; returns the frozen view and any extra
      sections.  @raise Invalid_argument on any malformed input. *)

  val save : string -> ?sections:(string * string) list -> t -> unit
  (** Write [to_string] to a file. *)

  val load : string -> t
  (** Read a file and decode the core section (extra sections ignored).
      Records [topology.snapshot.load] / [topology.snapshot.ases] when
      {!Pan_obs.Obs} is configured.
      @raise Invalid_argument as {!of_string}, [Sys_error] on I/O. *)

  val load_with_sections : string -> t * (string * string) list
end
