(** The Internet as a mixed graph [G = (A, L↔, L↑)] (§III-A of the paper).

    Nodes are ASes; undirected edges are settlement-free peering links and
    directed edges are provider–customer links.  For an AS [x] the neighbor
    set decomposes into providers [π(x)], peers [ε(x)], and customers
    [γ(x)].

    The structure is built imperatively (matching how topologies are read
    from files or generated) and then queried functionally.  Adding a link
    registers both endpoints automatically.  A pair of ASes can be connected
    by at most one link: re-adding an existing link is idempotent, while
    adding a conflicting link (e.g. a peering between a provider and its
    customer) raises. *)

type t

type relationship =
  | Provider  (** the neighbor is a provider of the queried AS *)
  | Peer
  | Customer  (** the neighbor is a customer of the queried AS *)

val create : unit -> t

val add_as : t -> Asn.t -> unit
(** Register an isolated AS (no-op if already present). *)

val add_provider_customer : t -> provider:Asn.t -> customer:Asn.t -> unit
(** Add a directed transit link.
    @raise Invalid_argument on a self-link or if the pair already has a
    different relationship. *)

val add_peering : t -> Asn.t -> Asn.t -> unit
(** Add an undirected settlement-free peering link.
    @raise Invalid_argument on a self-link or if the pair already has a
    different relationship. *)

val remove_peering : t -> Asn.t -> Asn.t -> unit
(** Remove an existing peering link (the churn mutation used by the
    resident path-query service).  Both endpoints stay registered, so
    interning is stable across removals.
    @raise Invalid_argument if the pair is not peering. *)

val remove_provider_customer : t -> provider:Asn.t -> customer:Asn.t -> unit
(** Remove an existing transit link; endpoints stay registered.
    @raise Invalid_argument if [provider] is not a provider of
    [customer]. *)

val mem : t -> Asn.t -> bool
val num_ases : t -> int
val num_provider_customer_links : t -> int
val num_peering_links : t -> int

val ases : t -> Asn.t list
(** All registered ASes, ascending. *)

val providers : t -> Asn.t -> Asn.Set.t
(** [π(x)]: empty if the AS is unknown. *)

val peers : t -> Asn.t -> Asn.Set.t
(** [ε(x)]. *)

val customers : t -> Asn.t -> Asn.Set.t
(** [γ(x)]. *)

val neighbors : t -> Asn.t -> Asn.Set.t
(** [π(x) ∪ ε(x) ∪ γ(x)]. *)

val degree : t -> Asn.t -> int
(** Total number of neighbors; the degree used by the degree-gravity
    bandwidth model (§VI-C). *)

val relationship : t -> Asn.t -> Asn.t -> relationship option
(** [relationship g x y] is the role of [y] relative to [x] ([Provider] if
    [y] is [x]'s provider, etc.), or [None] if they are not adjacent. *)

val connected : t -> Asn.t -> Asn.t -> bool

val fold_peering_links : (Asn.t -> Asn.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over peering links, each visited once with endpoints ascending.
    Visit order is deterministic and insertion-independent: first
    endpoints ascending, second endpoints ascending within each first. *)

val fold_provider_customer_links :
  (provider:Asn.t -> customer:Asn.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Deterministic, insertion-independent order: providers ascending,
    customers ascending within each provider. *)

val copy : t -> t

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: number of ASes and links of each kind. *)
