(** Enumeration of length-3 paths and of the paths added by mutuality-based
    agreements (MAs) — the machinery behind §VI and Figs. 3–6.

    A length-3 path has 3 ASes and 2 inter-AS links; for a fixed source [x]
    it is determined by its middle AS [y] (a neighbor of [x]) and its
    destination [z] (a neighbor of [y], distinct from [x]).  Path sets are
    therefore represented as a {e mid-set map}: a map from middle AS to the
    set of destinations reachable through it.

    Following §VI, for every pair of peers [(a, b)] the generated MA gives
    [b] access to all of [a]'s providers and peers that are not customers
    of [b], and vice versa.  An AS gains a path {e directly} by being party
    to the MA that creates it, and {e indirectly} by being the AS whose
    connectivity the MA shares (the "subject"). *)

type mid_sets = Asn.Set.t Asn.Map.t
(** Map from middle AS [y] to the destinations [z] of length-3 paths
    [x - y - z] for an implicit source [x]. *)

val total_count : mid_sets -> int
(** Number of paths ([Σ_y |zs(y)|]); for a fixed source and destination all
    length-3 paths are disjoint, as the paper notes. *)

val dest_set : mid_sets -> Asn.Set.t
(** Distinct destinations ("nearby destinations" in the paper). *)

val union : mid_sets -> mid_sets -> mid_sets
val diff : mid_sets -> mid_sets -> mid_sets

val by_destination : mid_sets -> mid_sets
(** Invert the map: destination ↦ set of middle ASes. Used by the per-pair
    geodistance and bandwidth analyses. *)

val iter_paths : (mid:Asn.t -> dst:Asn.t -> unit) -> mid_sets -> unit

val grc : Graph.t -> Asn.t -> mid_sets
(** GRC-conforming length-3 paths from a source: [x - y - z] is included iff
    [z] is a customer of [y], or [y] is a provider of [x] (so [y] exports
    peer and provider routes to [x]). *)

val ma_direct : ?partners:Asn.Set.t -> Graph.t -> Asn.t -> mid_sets
(** Paths the source gains by concluding MAs with its peers (all of them, or
    only those in [partners]): [x - y - z] with [y] a peer of [x] and [z] a
    provider or peer of [y] that is neither [x] nor a customer of [x].
    These are exactly the GRC-violating length-3 paths through a peer, so
    they are disjoint from {!grc}. *)

val ma_indirect : ?concluded:(Asn.t -> Asn.t -> bool) -> Graph.t -> Asn.t ->
  mid_sets
(** Paths the source gains as the subject of other ASes' MAs: [x - y - z]
    such that the MA between peers [y] and [z] gives [z] access to [x]
    (i.e. [x] is a provider or peer of [y] and not a customer of [z]).
    [concluded y z] (default: always true) restricts which MAs are
    actually in force. *)

val economic_paths :
  concluded:(Asn.t -> Asn.t -> bool) -> Graph.t -> Asn.t -> mid_sets
(** Every length-3 path available to the source when only the MAs
    selected by [concluded] are in force: the GRC baseline plus the
    direct gains from the source's own concluded MAs plus the indirect
    gains from other ASes' concluded MAs.  [scenario_paths g Ma_all] is
    the special case [concluded = fun _ _ -> true]. *)

val top_partners : Graph.t -> n:int -> Asn.t -> Asn.t list
(** The [n] peers whose MA would directly give the source the most new
    paths, best first (ties broken by AS number).
    @raise Invalid_argument if [n < 0]. *)

type scenario =
  | Grc  (** no MAs concluded: baseline *)
  | Ma_all  (** all MAs concluded; direct and indirect gains *)
  | Ma_direct_only  (** all MAs concluded; count only directly gained paths *)
  | Ma_top of int  (** the source concludes only its [n] best MAs *)

val scenario_paths : Graph.t -> scenario -> Asn.t -> mid_sets
(** Every length-3 path available to the source under the scenario
    (GRC paths are always included — they remain available).  Counts its
    calls under the [path_enum.legacy] metric; the compact rewrite
    ({!Path_enum_compact.scenario_paths}) counts [path_enum.compact]. *)

val additional_paths : Graph.t -> scenario -> Asn.t -> mid_sets
(** [scenario_paths] minus the GRC baseline. *)

val scenario_label : scenario -> string
