(* Bundle facade over Compact.Snapshot: the core CSR section plus
   optional geo and bandwidth sections in one checksummed container. *)

type bundle = {
  topo : Compact.t;
  geo : Geo.t option;
  bandwidth : Bandwidth.t option;
}

let geo_tag = "geo"
let bw_tag = "bandwidth"

let err fmt = Printf.ksprintf invalid_arg ("Snapshot.load: " ^^ fmt)

let add_u64 buf n = Buffer.add_int64_le buf (Int64.of_int n)
let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

type cursor = { s : string; mutable pos : int }

let read_raw cur what =
  if cur.pos + 8 > String.length cur.s then
    err "truncated %s section at offset %d" what cur.pos;
  let v = String.get_int64_le cur.s cur.pos in
  cur.pos <- cur.pos + 8;
  v

let read_u64 cur what =
  let v = Int64.to_int (read_raw cur what) in
  if v < 0 then err "negative field in %s section" what;
  v

let read_f64 cur what = Int64.float_of_bits (read_raw cur what)

let encode_geo geo =
  let as_rows, link_rows = Geo.bindings geo in
  let buf = Buffer.create (32 * (List.length as_rows + List.length link_rows)) in
  add_u64 buf (List.length as_rows);
  List.iter
    (fun (x, (p : Geo.point)) ->
      add_u64 buf (Asn.to_int x);
      add_f64 buf p.Geo.lat;
      add_f64 buf p.Geo.lon)
    as_rows;
  add_u64 buf (List.length link_rows);
  List.iter
    (fun ((x, y), (p : Geo.point)) ->
      add_u64 buf (Asn.to_int x);
      add_u64 buf (Asn.to_int y);
      add_f64 buf p.Geo.lat;
      add_f64 buf p.Geo.lon)
    link_rows;
  Buffer.contents buf

let decode_geo body =
  let cur = { s = body; pos = 0 } in
  let n_as = read_u64 cur geo_tag in
  let as_rows =
    List.init n_as (fun _ ->
        let x = Asn.of_int (read_u64 cur geo_tag) in
        let lat = read_f64 cur geo_tag in
        let lon = read_f64 cur geo_tag in
        (x, { Geo.lat; lon }))
  in
  let n_links = read_u64 cur geo_tag in
  let link_rows =
    List.init n_links (fun _ ->
        let x = Asn.of_int (read_u64 cur geo_tag) in
        let y = Asn.of_int (read_u64 cur geo_tag) in
        let lat = read_f64 cur geo_tag in
        let lon = read_f64 cur geo_tag in
        ((x, y), { Geo.lat; lon }))
  in
  if cur.pos <> String.length body then
    err "geo section has %d trailing bytes" (String.length body - cur.pos);
  Geo.of_bindings as_rows link_rows

let encode_bw bw =
  let buf = Buffer.create 8 in
  add_f64 buf (Bandwidth.coefficient bw);
  Buffer.contents buf

let decode_bw topo body =
  let cur = { s = body; pos = 0 } in
  let coefficient = read_f64 cur bw_tag in
  if cur.pos <> String.length body then
    err "bandwidth section has %d trailing bytes"
      (String.length body - cur.pos);
  Bandwidth.of_compact ~coefficient topo

let to_string ?geo ?bandwidth topo =
  let sections =
    (match geo with Some g -> [ (geo_tag, encode_geo g) ] | None -> [])
    @
    match bandwidth with
    | Some b -> [ (bw_tag, encode_bw b) ]
    | None -> []
  in
  Compact.Snapshot.to_string ~sections topo

let of_string s =
  let topo, sections = Compact.Snapshot.of_string s in
  {
    topo;
    geo = Option.map decode_geo (List.assoc_opt geo_tag sections);
    bandwidth =
      Option.map (decode_bw topo) (List.assoc_opt bw_tag sections);
  }

let save path ?geo ?bandwidth topo =
  let data = to_string ?geo ?bandwidth topo in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let load path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let bundle = of_string data in
  Pan_obs.Obs.incr "topology.snapshot.load";
  Pan_obs.Obs.incr ~by:(Compact.num_ases bundle.topo) "topology.snapshot.ases";
  bundle
