type mid_sets = Asn.Set.t Asn.Map.t

let total_count m =
  Asn.Map.fold (fun _ zs acc -> acc + Asn.Set.cardinal zs) m 0

let dest_set m =
  Asn.Map.fold (fun _ zs acc -> Asn.Set.union zs acc) m Asn.Set.empty

let add_set mid zs m =
  if Asn.Set.is_empty zs then m
  else
    Asn.Map.update mid
      (function
        | None -> Some zs | Some existing -> Some (Asn.Set.union existing zs))
      m

let union a b = Asn.Map.fold add_set b a

let diff a b =
  Asn.Map.filter_map
    (fun mid zs ->
      let zs' =
        match Asn.Map.find_opt mid b with
        | None -> zs
        | Some other -> Asn.Set.diff zs other
      in
      if Asn.Set.is_empty zs' then None else Some zs')
    a

let by_destination m =
  Asn.Map.fold
    (fun mid zs acc ->
      Asn.Set.fold (fun z acc -> add_set z (Asn.Set.singleton mid) acc) zs acc)
    m Asn.Map.empty

let iter_paths f m =
  Asn.Map.iter (fun mid zs -> Asn.Set.iter (fun dst -> f ~mid ~dst) zs) m

let grc g x =
  let from_neighbor y acc =
    (* Customer routes are exported to every neighbor. *)
    let zs = Asn.Set.remove x (Graph.customers g y) in
    (* Peer and provider routes are exported to customers only. *)
    let zs =
      if Asn.Set.mem y (Graph.providers g x) then
        Asn.Set.remove x
          (Asn.Set.union zs
             (Asn.Set.union (Graph.peers g y) (Graph.providers g y)))
      else zs
    in
    add_set y zs acc
  in
  Asn.Set.fold from_neighbor (Graph.neighbors g x) Asn.Map.empty

(* Destinations AS [x] gains through an MA with its peer [y]: y's providers
   and peers, excluding x itself and x's customers (§VI). *)
let ma_gain g x y =
  Asn.Set.remove x
    (Asn.Set.diff
       (Asn.Set.union (Graph.providers g y) (Graph.peers g y))
       (Graph.customers g x))

let ma_direct ?partners g x =
  let peers_of_x = Graph.peers g x in
  let chosen =
    match partners with
    | None -> peers_of_x
    | Some set -> Asn.Set.inter set peers_of_x
  in
  Asn.Set.fold (fun y acc -> add_set y (ma_gain g x y) acc) chosen
    Asn.Map.empty

let ma_indirect ?(concluded = fun _ _ -> true) g x =
  (* x - y - z where the MA between peers y and z shares x's connectivity
     with z: x must be a provider or peer of y, and not a customer of z. *)
  let mids = Asn.Set.union (Graph.customers g x) (Graph.peers g x) in
  Asn.Set.fold
    (fun y acc ->
      let zs =
        Asn.Set.filter
          (fun z ->
            (not (Asn.equal z x))
            && concluded y z
            && not (Asn.Set.mem x (Graph.customers g z)))
          (Graph.peers g y)
      in
      add_set y zs acc)
    mids Asn.Map.empty

let top_partners g ~n x =
  if n < 0 then invalid_arg "Path_enum.top_partners: n < 0";
  let scored =
    Asn.Set.fold
      (fun y acc -> (Asn.Set.cardinal (ma_gain g x y), y) :: acc)
      (Graph.peers g x) []
  in
  let sorted =
    List.sort
      (fun (c1, y1) (c2, y2) ->
        match compare c2 c1 with 0 -> Asn.compare y1 y2 | c -> c)
      scored
  in
  List.filteri (fun i _ -> i < n) sorted |> List.map snd

let economic_paths ~concluded g x =
  let partners =
    Asn.Set.filter (fun y -> concluded x y) (Graph.peers g x)
  in
  union
    (union (grc g x) (ma_direct ~partners g x))
    (ma_indirect ~concluded g x)

type scenario = Grc | Ma_all | Ma_direct_only | Ma_top of int

let scenario_paths g scenario x =
  Pan_obs.Obs.incr "path_enum.legacy";
  let base = grc g x in
  match scenario with
  | Grc -> base
  | Ma_all -> union (union base (ma_direct g x)) (ma_indirect g x)
  | Ma_direct_only -> union base (ma_direct g x)
  | Ma_top n ->
      let partners = Asn.set_of_list (top_partners g ~n x) in
      union base (ma_direct ~partners g x)

let additional_paths g scenario x =
  diff (scenario_paths g scenario x) (grc g x)

let scenario_label = function
  | Grc -> "GRC"
  | Ma_all -> "MA"
  | Ma_direct_only -> "MA*"
  | Ma_top n -> Printf.sprintf "MA* (Top %d)" n
