(** Autonomous-system numbers.

    A thin abstraction over [int] so that AS identifiers cannot be confused
    with counts or indices, with the set/map instances the topology and
    path-enumeration code needs. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument if the argument is negative. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
