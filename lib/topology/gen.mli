(** Synthetic Internet-like AS topology generator.

    The paper's §VI study runs on the CAIDA AS-relationship graph, which is
    not redistributable.  This generator produces a mixed graph with the
    structural features the study depends on: a small clique of Tier-1 ASes
    peering with each other, a middle tier of transit ASes that multihome to
    providers chosen by preferential attachment (yielding a heavy-tailed
    customer degree distribution) and peer densely with each other, and a
    large fringe of stub ASes.  Real CAIDA data can be substituted via
    {!Caida.load}.

    Generation is deterministic given the seed. *)

type tier = Tier1 | Transit | Stub

type params = {
  n_tier1 : int;  (** size of the top clique (default 12) *)
  n_transit : int;  (** number of transit ASes (default 300) *)
  n_stub : int;  (** number of stub ASes (default 1700) *)
  transit_max_providers : int;
      (** each transit AS gets 1..this providers (default 3) *)
  stub_max_providers : int;  (** each stub gets 1..this providers (default 2) *)
  transit_peering_degree : float;
      (** expected number of peering links per transit AS (default 40.0) *)
  stub_peering_prob : float;
      (** probability that a stub AS joins an IXP and peers with a
          geometric number of other members (default 0.5) *)
  route_server_hubs : int;
      (** number of high-degree transit ASes acting like IXP route
          servers, which peer very widely (default 6); real AS-level
          topologies owe most of their peering-edge mass to a few such
          hubs *)
  hub_peering_prob : float;
      (** probability that any given AS peers with a given hub
          (default 0.25) *)
}

val default_params : params

type t

val generate : ?params:params -> seed:int -> unit -> t

val graph : t -> Graph.t

val tier_of : t -> Asn.t -> tier
(** @raise Not_found for an AS not in the topology. *)

val tier1 : t -> Asn.t list
val transit : t -> Asn.t list
val stubs : t -> Asn.t list

val pp_tier : Format.formatter -> tier -> unit

val fig1 : unit -> Graph.t
(** The 9-AS example topology of the paper's Fig. 1, as reconstructed from
    the text: Tier-1 clique A, B, C (mutual peering); mid-tier D, E, F with
    peerings D–E, E–F, C–D, C–E and transit links A→D, B→E, C→F; stubs with
    D→H, E→I, F→G.  AS numbers: A=1, B=2, ..., I=9. *)

val fig1_asn : char -> Asn.t
(** Map a letter label from Fig. 1 ('A'..'I') to its AS number.
    @raise Invalid_argument for other characters. *)
