type t = { graph : Graph.t; coefficient : float }

let degree_gravity ?(coefficient = 1.0) graph =
  if coefficient <= 0.0 then invalid_arg "Bandwidth.degree_gravity";
  { graph; coefficient }

let link_capacity t x y =
  if not (Graph.connected t.graph x y) then raise Not_found;
  t.coefficient
  *. float_of_int (Graph.degree t.graph x)
  *. float_of_int (Graph.degree t.graph y)

let path3_bandwidth t a1 a2 a3 =
  Float.min (link_capacity t a1 a2) (link_capacity t a2 a3)

let path_bandwidth t path =
  let rec go = function
    | a :: (b :: _ as rest) -> Float.min (link_capacity t a b) (go rest)
    | [ _ ] | [] -> infinity
  in
  match path with
  | _ :: _ :: _ -> go path
  | _ -> invalid_arg "Bandwidth.path_bandwidth: path shorter than 2 ASes"
