type t = { c : Compact.t; coefficient : float }

let of_compact ?(coefficient = 1.0) c =
  if coefficient <= 0.0 then invalid_arg "Bandwidth.degree_gravity";
  { c; coefficient }

let degree_gravity ?coefficient graph =
  of_compact ?coefficient (Compact.freeze graph)

let coefficient t = t.coefficient

let link_capacity t x y =
  match (Compact.index_of t.c x, Compact.index_of t.c y) with
  | Some i, Some j when Compact.connected t.c i j ->
      t.coefficient
      *. float_of_int (Compact.degree t.c i)
      *. float_of_int (Compact.degree t.c j)
  | _ -> raise Not_found

let path3_bandwidth t a1 a2 a3 =
  Float.min (link_capacity t a1 a2) (link_capacity t a2 a3)

let path_bandwidth t path =
  let rec go = function
    | a :: (b :: _ as rest) -> Float.min (link_capacity t a b) (go rest)
    | [ _ ] | [] -> infinity
  in
  match path with
  | _ :: _ :: _ -> go path
  | _ -> invalid_arg "Bandwidth.path_bandwidth: path shorter than 2 ASes"
