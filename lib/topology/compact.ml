module Obs = Pan_obs.Obs

type t = {
  ids : Asn.t array;
  prov_off : int array;
  prov_adj : int array;
  peer_off : int array;
  peer_adj : int array;
  cust_off : int array;
  cust_adj : int array;
  n_p2c : int;
  n_p2p : int;
}

let num_ases t = Array.length t.ids
let num_provider_customer_links t = t.n_p2c
let num_peering_links t = t.n_p2p

let id t i = t.ids.(i)
let asns t = Array.copy t.ids

let index_of t x =
  (* [ids] is sorted ascending, so interning is a binary search — no side
     table to share between domains. *)
  let lo = ref 0 and hi = ref (Array.length t.ids - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Asn.compare t.ids.(mid) x in
    if c = 0 then found := Some mid
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let index_of_exn t x =
  match index_of t x with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Compact.index_of_exn: unknown AS%d" (Asn.to_int x))

(* One relationship class as CSR: [off] has n+1 entries; the neighbors of
   [i] occupy [adj.(off.(i)) .. adj.(off.(i+1) - 1)], sorted ascending. *)
let csr_of ids index rows =
  let n = Array.length ids in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + Asn.Set.cardinal (rows ids.(i))
  done;
  let adj = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    let k = ref off.(i) in
    (* set elements come out ascending by ASN; interning is monotone, so
       each row is ascending by index too *)
    Asn.Set.iter
      (fun y ->
        adj.(!k) <- index y;
        incr k)
      (rows ids.(i))
  done;
  (off, adj)

let freeze g =
  Obs.with_span "topology.freeze" @@ fun () ->
  let ids = Array.of_list (Graph.ases g) in
  (* exact interning table for the build only; queries afterwards use the
     binary search above *)
  let tbl = Hashtbl.create (2 * Array.length ids) in
  Array.iteri (fun i x -> Hashtbl.replace tbl x i) ids;
  let index x = Hashtbl.find tbl x in
  let prov_off, prov_adj = csr_of ids index (Graph.providers g) in
  let peer_off, peer_adj = csr_of ids index (Graph.peers g) in
  let cust_off, cust_adj = csr_of ids index (Graph.customers g) in
  let t =
    {
      ids;
      prov_off;
      prov_adj;
      peer_off;
      peer_adj;
      cust_off;
      cust_adj;
      n_p2c = Graph.num_provider_customer_links g;
      n_p2p = Graph.num_peering_links g;
    }
  in
  Obs.incr "topology.freeze";
  Obs.incr ~by:(num_ases t) "topology.compact.ases";
  Obs.incr ~by:t.n_p2c "topology.compact.p2c_links";
  Obs.incr ~by:t.n_p2p "topology.compact.p2p_links";
  t

let row_iter off adj i f =
  for k = off.(i) to off.(i + 1) - 1 do
    f (Array.unsafe_get adj k)
  done

let iter_providers t i f = row_iter t.prov_off t.prov_adj i f
let iter_peers t i f = row_iter t.peer_off t.peer_adj i f
let iter_customers t i f = row_iter t.cust_off t.cust_adj i f

let iter_neighbors t i f =
  iter_providers t i f;
  iter_peers t i f;
  iter_customers t i f

let providers_count t i = t.prov_off.(i + 1) - t.prov_off.(i)
let peers_count t i = t.peer_off.(i + 1) - t.peer_off.(i)
let customers_count t i = t.cust_off.(i + 1) - t.cust_off.(i)

let degree t i = providers_count t i + peers_count t i + customers_count t i

let row_mem off adj i j =
  let lo = ref off.(i) and hi = ref (off.(i + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = adj.(mid) in
    if v = j then found := true else if v < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_provider t i j = row_mem t.prov_off t.prov_adj i j
let mem_peer t i j = row_mem t.peer_off t.peer_adj i j
let mem_customer t i j = row_mem t.cust_off t.cust_adj i j

let connected t i j = mem_provider t i j || mem_peer t i j || mem_customer t i j

let add_providers t i bs = iter_providers t i (fun j -> Bitset.unsafe_add bs j)
let add_peers t i bs = iter_peers t i (fun j -> Bitset.unsafe_add bs j)
let add_customers t i bs = iter_customers t i (fun j -> Bitset.unsafe_add bs j)

let iter_peering_links t f =
  let n = num_ases t in
  for i = 0 to n - 1 do
    row_iter t.peer_off t.peer_adj i (fun j -> if i < j then f i j)
  done

let iter_provider_customer_links t f =
  let n = num_ases t in
  for provider = 0 to n - 1 do
    row_iter t.cust_off t.cust_adj provider (fun customer ->
        f ~provider ~customer)
  done

let pp_stats fmt t =
  Format.fprintf fmt
    "%d ASes interned, %d provider-customer + %d peering links (CSR)"
    (num_ases t) t.n_p2c t.n_p2p

let thaw t =
  let g = Graph.create () in
  Array.iter (fun x -> Graph.add_as g x) t.ids;
  iter_provider_customer_links t (fun ~provider ~customer ->
      Graph.add_provider_customer g ~provider:t.ids.(provider)
        ~customer:t.ids.(customer));
  iter_peering_links t (fun i j -> Graph.add_peering g t.ids.(i) t.ids.(j));
  g

(* ------------------------------------------------------------------ *)
(* Incremental freeze: single-link CSR splices                         *)

module Delta = struct
  let err name fmt =
    Printf.ksprintf
      (fun msg -> invalid_arg ("Compact.Delta." ^ name ^ ": " ^ msg))
      fmt

  let check_index name t i =
    if i < 0 || i >= num_ases t then
      err name "index %d outside [0, %d)" i (num_ases t)

  let check_endpoints name t i j =
    check_index name t i;
    check_index name t j;
    if i = j then err name "self-link on AS%d" (Asn.to_int t.ids.(i))

  (* Global [adj] position where [v] belongs in row [i] (first element
     >= v), found by binary search — rows are sorted ascending. *)
  let row_lower_bound off adj i v =
    let lo = ref off.(i) and hi = ref off.(i + 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if adj.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Splice [v] into row [row]: one fresh (off, adj) pair, two blits.
     Rows other than [row] keep their contents at shifted offsets; the
     other two relationship classes are shared untouched by the
     caller. *)
  let insert off adj row v =
    let pos = row_lower_bound off adj row v in
    let n = Array.length adj in
    let adj' = Array.make (n + 1) 0 in
    Array.blit adj 0 adj' 0 pos;
    adj'.(pos) <- v;
    Array.blit adj pos adj' (pos + 1) (n - pos);
    let off' = Array.mapi (fun k x -> if k > row then x + 1 else x) off in
    (off', adj')

  let remove off adj row v =
    let pos = row_lower_bound off adj row v in
    let n = Array.length adj in
    let adj' = Array.make (n - 1) 0 in
    Array.blit adj 0 adj' 0 pos;
    Array.blit adj (pos + 1) adj' pos (n - pos - 1);
    let off' = Array.mapi (fun k x -> if k > row then x - 1 else x) off in
    (off', adj')

  let check_unconnected name t i j =
    if connected t i j then
      err name "AS%d and AS%d are already linked" (Asn.to_int t.ids.(i))
        (Asn.to_int t.ids.(j))

  let add_peering t i j =
    let name = "add_peering" in
    check_endpoints name t i j;
    check_unconnected name t i j;
    let peer_off, peer_adj = insert t.peer_off t.peer_adj i j in
    let peer_off, peer_adj = insert peer_off peer_adj j i in
    Obs.incr "topology.delta.add";
    { t with peer_off; peer_adj; n_p2p = t.n_p2p + 1 }

  let remove_peering t i j =
    let name = "remove_peering" in
    check_endpoints name t i j;
    if not (mem_peer t i j) then
      err name "AS%d and AS%d are not peers" (Asn.to_int t.ids.(i))
        (Asn.to_int t.ids.(j));
    let peer_off, peer_adj = remove t.peer_off t.peer_adj i j in
    let peer_off, peer_adj = remove peer_off peer_adj j i in
    Obs.incr "topology.delta.remove";
    { t with peer_off; peer_adj; n_p2p = t.n_p2p - 1 }

  let add_provider_customer t ~provider ~customer =
    let name = "add_provider_customer" in
    check_endpoints name t provider customer;
    check_unconnected name t provider customer;
    let cust_off, cust_adj = insert t.cust_off t.cust_adj provider customer in
    let prov_off, prov_adj = insert t.prov_off t.prov_adj customer provider in
    Obs.incr "topology.delta.add";
    { t with cust_off; cust_adj; prov_off; prov_adj; n_p2c = t.n_p2c + 1 }

  let remove_provider_customer t ~provider ~customer =
    let name = "remove_provider_customer" in
    check_endpoints name t provider customer;
    if not (mem_customer t provider customer) then
      err name "AS%d is not a provider of AS%d"
        (Asn.to_int t.ids.(provider))
        (Asn.to_int t.ids.(customer));
    let cust_off, cust_adj = remove t.cust_off t.cust_adj provider customer in
    let prov_off, prov_adj = remove t.prov_off t.prov_adj customer provider in
    Obs.incr "topology.delta.remove";
    { t with cust_off; cust_adj; prov_off; prov_adj; n_p2c = t.n_p2c - 1 }

  (* ---------------------------------------------------------------- *)
  (* Batch application: N edits, one splice pass per relationship
     class.  Semantics are pinned to the left-to-right fold of the
     single-link operations (same validation, same error messages, and
     a byte-identical result via Snapshot.to_string), but the arrays
     are rebuilt once instead of N times. *)

  type edit =
    | Add_peering of int * int
    | Remove_peering of int * int
    | Add_provider_customer of { provider : int; customer : int }
    | Remove_provider_customer of { provider : int; customer : int }

  (* Directed membership overrides per class: (row, neighbor) -> final
     presence.  Validation consults base CSR membership unless an
     earlier edit in the batch overrode it, which reproduces the
     sequential semantics exactly (including add-then-remove chains on
     the same pair). *)
  let mem_ov ov base (i, j) =
    match Hashtbl.find_opt ov (i, j) with Some b -> b | None -> base i j

  let rebuild_class n off adj ov =
    if Hashtbl.length ov = 0 then (off, adj)
    else begin
      (* group membership overrides per row; each (row, v) key is
         unique, so assoc lookups below are unambiguous *)
      let rows = Hashtbl.create 16 in
      Hashtbl.iter
        (fun (i, v) present ->
          let prev = try Hashtbl.find rows i with Not_found -> [] in
          Hashtbl.replace rows i ((v, present) :: prev))
        ov;
      let off' = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        let base = off.(i + 1) - off.(i) in
        let delta =
          match Hashtbl.find_opt rows i with
          | None -> 0
          | Some l ->
              List.fold_left
                (fun d (v, present) ->
                  let was = row_mem off adj i v in
                  if present && not was then d + 1
                  else if (not present) && was then d - 1
                  else d)
                0 l
        in
        off'.(i + 1) <- off'.(i) + base + delta
      done;
      let adj' = Array.make off'.(n) 0 in
      for i = 0 to n - 1 do
        match Hashtbl.find_opt rows i with
        | None -> Array.blit adj off.(i) adj' off'.(i) (off.(i + 1) - off.(i))
        | Some l ->
            let adds =
              List.filter_map
                (fun (v, present) ->
                  if present && not (row_mem off adj i v) then Some v else None)
                l
              |> List.sort compare
            in
            let removed v = List.assoc_opt v l = Some false in
            (* merge the surviving base row with the sorted additions;
               both sides are ascending, so the output row is too *)
            let k = ref off'.(i) in
            let bp = ref off.(i) in
            let pending = ref adds in
            let emit v =
              adj'.(!k) <- v;
              incr k
            in
            while !bp < off.(i + 1) || !pending <> [] do
              match !pending with
              | a :: rest when !bp >= off.(i + 1) || a < adj.(!bp) ->
                  emit a;
                  pending := rest
              | _ ->
                  let v = adj.(!bp) in
                  incr bp;
                  if not (removed v) then emit v
            done
      done;
      (off', adj')
    end

  let apply_batch t edits =
    let n = num_ases t in
    let peer_ov = Hashtbl.create 16 in
    let cust_ov = Hashtbl.create 16 in
    let prov_ov = Hashtbl.create 16 in
    let mem_peer' i j = mem_ov peer_ov (mem_peer t) (i, j) in
    let mem_customer' i j = mem_ov cust_ov (mem_customer t) (i, j) in
    let mem_provider' i j = mem_ov prov_ov (mem_provider t) (i, j) in
    let connected' i j = mem_provider' i j || mem_peer' i j || mem_customer' i j in
    let check_unconnected' name i j =
      if connected' i j then
        err name "AS%d and AS%d are already linked" (Asn.to_int t.ids.(i))
          (Asn.to_int t.ids.(j))
    in
    let p2p = ref t.n_p2p and p2c = ref t.n_p2c in
    List.iter
      (fun edit ->
        match edit with
        | Add_peering (i, j) ->
            let name = "add_peering" in
            check_endpoints name t i j;
            check_unconnected' name i j;
            Hashtbl.replace peer_ov (i, j) true;
            Hashtbl.replace peer_ov (j, i) true;
            incr p2p;
            Obs.incr "topology.delta.add"
        | Remove_peering (i, j) ->
            let name = "remove_peering" in
            check_endpoints name t i j;
            if not (mem_peer' i j) then
              err name "AS%d and AS%d are not peers" (Asn.to_int t.ids.(i))
                (Asn.to_int t.ids.(j));
            Hashtbl.replace peer_ov (i, j) false;
            Hashtbl.replace peer_ov (j, i) false;
            decr p2p;
            Obs.incr "topology.delta.remove"
        | Add_provider_customer { provider; customer } ->
            let name = "add_provider_customer" in
            check_endpoints name t provider customer;
            check_unconnected' name provider customer;
            Hashtbl.replace cust_ov (provider, customer) true;
            Hashtbl.replace prov_ov (customer, provider) true;
            incr p2c;
            Obs.incr "topology.delta.add"
        | Remove_provider_customer { provider; customer } ->
            let name = "remove_provider_customer" in
            check_endpoints name t provider customer;
            if not (mem_customer' provider customer) then
              err name "AS%d is not a provider of AS%d"
                (Asn.to_int t.ids.(provider))
                (Asn.to_int t.ids.(customer));
            Hashtbl.replace cust_ov (provider, customer) false;
            Hashtbl.replace prov_ov (customer, provider) false;
            decr p2c;
            Obs.incr "topology.delta.remove")
      edits;
    if edits = [] then t
    else begin
      let peer_off, peer_adj = rebuild_class n t.peer_off t.peer_adj peer_ov in
      let cust_off, cust_adj = rebuild_class n t.cust_off t.cust_adj cust_ov in
      let prov_off, prov_adj = rebuild_class n t.prov_off t.prov_adj prov_ov in
      Obs.incr "topology.delta.batch";
      {
        t with
        peer_off;
        peer_adj;
        cust_off;
        cust_adj;
        prov_off;
        prov_adj;
        n_p2p = !p2p;
        n_p2c = !p2c;
      }
    end
end

(* ------------------------------------------------------------------ *)
(* Subgraph restriction masks                                          *)

module Mask = struct
  (* Immutable: every operation copies the (small) blocked state, so a
     mask can be kept as part of a memo key or snapshotted per query
     while churn events derive new masks from it. *)
  type mask = {
    m_width : int;
    blocked : Bitset.t;  (** excluded AS indices *)
    down : (int * int) list;  (** excluded links, normalized lo < hi, sorted *)
  }

  let merr name fmt =
    Printf.ksprintf
      (fun msg -> invalid_arg ("Compact.Mask." ^ name ^ ": " ^ msg))
      fmt

  let all t =
    let m_width = num_ases t in
    { m_width; blocked = Bitset.create ~width:m_width; down = [] }

  let width m = m.m_width

  let check name m i =
    if i < 0 || i >= m.m_width then
      merr name "index %d outside [0, %d)" i m.m_width

  let exclude_as m i =
    check "exclude_as" m i;
    let blocked = Bitset.copy m.blocked in
    Bitset.add blocked i;
    { m with blocked }

  let norm name m i j =
    check name m i;
    check name m j;
    if i = j then merr name "self-link on index %d" i;
    if i < j then (i, j) else (j, i)

  let rec insert_link l ij =
    match l with
    | [] -> [ ij ]
    | hd :: tl ->
        let c = compare hd ij in
        if c = 0 then l
        else if c < 0 then hd :: insert_link tl ij
        else ij :: l

  let exclude_link m i j =
    let ij = norm "exclude_link" m i j in
    { m with down = insert_link m.down ij }

  let restore_link m i j =
    let ij = norm "restore_link" m i j in
    { m with down = List.filter (fun x -> x <> ij) m.down }

  let allows_as m i = not (Bitset.mem m.blocked i)

  let allows_link m i j =
    let ij = if i < j then (i, j) else (j, i) in
    allows_as m i && allows_as m j && not (List.mem ij m.down)

  let is_trivial m = m.down = [] && Bitset.is_empty m.blocked
  let excluded_ases m = Bitset.to_list m.blocked
  let excluded_links m = m.down

  let equal a b =
    a.m_width = b.m_width && a.down = b.down && Bitset.equal a.blocked b.blocked
end

(* ------------------------------------------------------------------ *)
(* Versioned binary snapshots                                          *)

module Snapshot = struct
  let format_version = 1
  let magic = "PANSNAPS"

  (* Layout (all integers little-endian):
       0   8  magic "PANSNAPS"
       8   4  format version (u32)
      12   4  section count (u32)
      16   8  payload length in bytes (u64)
      24  16  MD5 digest of the payload region
      40  ..  payload: per section u16 tag length, tag bytes,
              u64 body length, body bytes
     The "core" section holds the interned-ASN table and the three CSR
     relationship classes; extra sections (geo, bandwidth, ...) ride in
     the same container and are covered by the same checksum. *)

  let header_len = 40
  let core_tag = "core"

  let err fmt = Printf.ksprintf invalid_arg ("Compact.Snapshot.load: " ^^ fmt)

  let add_u64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

  let add_int_array buf a =
    add_u64 buf (Array.length a);
    Array.iter (fun v -> add_u64 buf v) a

  (* Decoding reads straight off the full snapshot string through a
     bounded cursor — no payload/body substring copies, which matter at
     CAIDA scale (a copy per load would triple the allocation the GC has
     to chew through). *)
  type cursor = { s : string; mutable pos : int; limit : int }

  let read_u64 cur =
    if cur.pos + 8 > cur.limit then
      err "truncated payload (need 8 bytes at byte offset %d, have %d)" cur.pos
        (cur.limit - cur.pos);
    let v = Int64.to_int (String.get_int64_le cur.s cur.pos) in
    cur.pos <- cur.pos + 8;
    if v < 0 then err "negative length field at byte offset %d" (cur.pos - 8);
    v

  let read_int_array cur =
    let n = read_u64 cur in
    if cur.pos + (8 * n) > cur.limit then
      err "truncated payload (array of %d words at byte offset %d)" n cur.pos;
    Array.init n (fun _ -> read_u64 cur)

  let encode_core t =
    let buf = Buffer.create (64 * Array.length t.ids) in
    add_u64 buf (Array.length t.ids);
    Array.iter (fun x -> add_u64 buf (Asn.to_int x)) t.ids;
    List.iter
      (fun (off, adj) ->
        add_int_array buf off;
        add_int_array buf adj)
      [
        (t.prov_off, t.prov_adj);
        (t.peer_off, t.peer_adj);
        (t.cust_off, t.cust_adj);
      ];
    add_u64 buf t.n_p2c;
    add_u64 buf t.n_p2p;
    Buffer.contents buf

  let decode_core s pos limit =
    let cur = { s; pos; limit } in
    let n = read_u64 cur in
    if cur.pos + (8 * n) > cur.limit then
      err "truncated payload (ASN table of %d entries at byte offset %d)" n
        cur.pos;
    let ids = Array.init n (fun _ -> Asn.of_int (read_u64 cur)) in
    let read_csr name =
      let off = read_int_array cur in
      let adj = read_int_array cur in
      if Array.length off <> n + 1 then
        err "%s offsets: expected %d entries, found %d" name (n + 1)
          (Array.length off);
      if n >= 0 && (off.(0) <> 0 || off.(n) <> Array.length adj) then
        err "%s offsets do not cover the adjacency array" name;
      (off, adj)
    in
    let prov_off, prov_adj = read_csr "provider" in
    let peer_off, peer_adj = read_csr "peer" in
    let cust_off, cust_adj = read_csr "customer" in
    let n_p2c = read_u64 cur in
    let n_p2p = read_u64 cur in
    if cur.pos <> cur.limit then
      err "core section has %d trailing bytes at byte offset %d"
        (cur.limit - cur.pos) cur.pos;
    {
      ids;
      prov_off;
      prov_adj;
      peer_off;
      peer_adj;
      cust_off;
      cust_adj;
      n_p2c;
      n_p2p;
    }

  let to_string ?(sections = []) t =
    let payload = Buffer.create 4096 in
    let add_section (tag, body) =
      Buffer.add_int16_le payload (String.length tag);
      Buffer.add_string payload tag;
      add_u64 payload (String.length body);
      Buffer.add_string payload body
    in
    let sections = (core_tag, encode_core t) :: sections in
    List.iter add_section sections;
    let payload = Buffer.contents payload in
    let out = Buffer.create (header_len + String.length payload) in
    Buffer.add_string out magic;
    Buffer.add_int32_le out (Int32.of_int format_version);
    Buffer.add_int32_le out (Int32.of_int (List.length sections));
    add_u64 out (String.length payload);
    Buffer.add_string out (Digest.string payload);
    Buffer.add_string out payload;
    Buffer.contents out

  let of_string s =
    if String.length s < header_len then
      err "truncated header (file ends at byte offset %d, need at least %d)"
        (String.length s) header_len;
    if String.sub s 0 8 <> magic then
      err "bad magic %S (not a panagree snapshot)" (String.sub s 0 8);
    let version = Int32.to_int (String.get_int32_le s 8) in
    if version <> format_version then
      err "unsupported format version %d (this build reads version %d)"
        version format_version;
    let n_sections = Int32.to_int (String.get_int32_le s 12) in
    let payload_len = Int64.to_int (String.get_int64_le s 16) in
    let digest = String.sub s 24 16 in
    if String.length s - header_len < payload_len then
      err
        "truncated payload (header declares %d bytes, file ends at byte \
         offset %d)"
        payload_len (String.length s);
    if String.length s - header_len > payload_len then
      err "payload has %d trailing bytes at byte offset %d"
        (String.length s - header_len - payload_len)
        (header_len + payload_len);
    if not (String.equal (Digest.substring s header_len payload_len) digest)
    then
      err "checksum mismatch (corrupt snapshot payload in bytes %d..%d)"
        header_len
        (header_len + payload_len - 1);
    let limit = header_len + payload_len in
    (* Section bodies are located in place; only non-core sections (geo,
       bandwidth — small) are materialised as substrings.  The core body
       is decoded directly out of [s]. *)
    let cur = { s; pos = header_len; limit } in
    let read_section () =
      if cur.pos + 2 > limit then
        err "truncated section header at byte offset %d" cur.pos;
      let tag_len =
        Char.code s.[cur.pos] lor (Char.code s.[cur.pos + 1] lsl 8)
      in
      cur.pos <- cur.pos + 2;
      if cur.pos + tag_len > limit then
        err "truncated section tag at byte offset %d" cur.pos;
      let tag = String.sub s cur.pos tag_len in
      cur.pos <- cur.pos + tag_len;
      let body_len = read_u64 cur in
      if cur.pos + body_len > limit then
        err "truncated section %S at byte offset %d (declares %d bytes, %d \
             available)"
          tag cur.pos body_len (limit - cur.pos);
      let body_pos = cur.pos in
      cur.pos <- cur.pos + body_len;
      (tag, body_pos, body_len)
    in
    let sections = List.init n_sections (fun _ -> read_section ()) in
    if cur.pos <> limit then
      err "payload has %d trailing bytes at byte offset %d" (limit - cur.pos)
        cur.pos;
    match
      List.find_opt (fun (tag, _, _) -> String.equal tag core_tag) sections
    with
    | None -> err "missing %S section" core_tag
    | Some (_, body_pos, body_len) ->
        let t = decode_core s body_pos (body_pos + body_len) in
        let extras =
          List.filter_map
            (fun (tag, pos, len) ->
              if String.equal tag core_tag then None
              else Some (tag, String.sub s pos len))
            sections
        in
        (t, extras)

  let save path ?sections t =
    let data = to_string ?sections t in
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

  let load_with_sections path =
    let data = In_channel.with_open_bin path In_channel.input_all in
    let result = of_string data in
    Obs.incr "topology.snapshot.load";
    Obs.incr ~by:(num_ases (fst result)) "topology.snapshot.ases";
    result

  let load path = fst (load_with_sections path)
end
