module Obs = Pan_obs.Obs

type t = {
  ids : Asn.t array;
  prov_off : int array;
  prov_adj : int array;
  peer_off : int array;
  peer_adj : int array;
  cust_off : int array;
  cust_adj : int array;
  n_p2c : int;
  n_p2p : int;
}

let num_ases t = Array.length t.ids
let num_provider_customer_links t = t.n_p2c
let num_peering_links t = t.n_p2p

let id t i = t.ids.(i)
let asns t = Array.copy t.ids

let index_of t x =
  (* [ids] is sorted ascending, so interning is a binary search — no side
     table to share between domains. *)
  let lo = ref 0 and hi = ref (Array.length t.ids - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Asn.compare t.ids.(mid) x in
    if c = 0 then found := Some mid
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let index_of_exn t x =
  match index_of t x with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Compact.index_of_exn: unknown AS%d" (Asn.to_int x))

(* One relationship class as CSR: [off] has n+1 entries; the neighbors of
   [i] occupy [adj.(off.(i)) .. adj.(off.(i+1) - 1)], sorted ascending. *)
let csr_of ids index rows =
  let n = Array.length ids in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + Asn.Set.cardinal (rows ids.(i))
  done;
  let adj = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    let k = ref off.(i) in
    (* set elements come out ascending by ASN; interning is monotone, so
       each row is ascending by index too *)
    Asn.Set.iter
      (fun y ->
        adj.(!k) <- index y;
        incr k)
      (rows ids.(i))
  done;
  (off, adj)

let freeze g =
  Obs.with_span "topology.freeze" @@ fun () ->
  let ids = Array.of_list (Graph.ases g) in
  (* exact interning table for the build only; queries afterwards use the
     binary search above *)
  let tbl = Hashtbl.create (2 * Array.length ids) in
  Array.iteri (fun i x -> Hashtbl.replace tbl x i) ids;
  let index x = Hashtbl.find tbl x in
  let prov_off, prov_adj = csr_of ids index (Graph.providers g) in
  let peer_off, peer_adj = csr_of ids index (Graph.peers g) in
  let cust_off, cust_adj = csr_of ids index (Graph.customers g) in
  let t =
    {
      ids;
      prov_off;
      prov_adj;
      peer_off;
      peer_adj;
      cust_off;
      cust_adj;
      n_p2c = Graph.num_provider_customer_links g;
      n_p2p = Graph.num_peering_links g;
    }
  in
  Obs.incr "topology.freeze";
  Obs.incr ~by:(num_ases t) "topology.compact.ases";
  Obs.incr ~by:t.n_p2c "topology.compact.p2c_links";
  Obs.incr ~by:t.n_p2p "topology.compact.p2p_links";
  t

let row_iter off adj i f =
  for k = off.(i) to off.(i + 1) - 1 do
    f (Array.unsafe_get adj k)
  done

let iter_providers t i f = row_iter t.prov_off t.prov_adj i f
let iter_peers t i f = row_iter t.peer_off t.peer_adj i f
let iter_customers t i f = row_iter t.cust_off t.cust_adj i f

let iter_neighbors t i f =
  iter_providers t i f;
  iter_peers t i f;
  iter_customers t i f

let providers_count t i = t.prov_off.(i + 1) - t.prov_off.(i)
let peers_count t i = t.peer_off.(i + 1) - t.peer_off.(i)
let customers_count t i = t.cust_off.(i + 1) - t.cust_off.(i)

let degree t i = providers_count t i + peers_count t i + customers_count t i

let row_mem off adj i j =
  let lo = ref off.(i) and hi = ref (off.(i + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = adj.(mid) in
    if v = j then found := true else if v < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_provider t i j = row_mem t.prov_off t.prov_adj i j
let mem_peer t i j = row_mem t.peer_off t.peer_adj i j
let mem_customer t i j = row_mem t.cust_off t.cust_adj i j

let connected t i j = mem_provider t i j || mem_peer t i j || mem_customer t i j

let add_providers t i bs = iter_providers t i (fun j -> Bitset.unsafe_add bs j)
let add_peers t i bs = iter_peers t i (fun j -> Bitset.unsafe_add bs j)
let add_customers t i bs = iter_customers t i (fun j -> Bitset.unsafe_add bs j)

let iter_peering_links t f =
  let n = num_ases t in
  for i = 0 to n - 1 do
    row_iter t.peer_off t.peer_adj i (fun j -> if i < j then f i j)
  done

let iter_provider_customer_links t f =
  let n = num_ases t in
  for provider = 0 to n - 1 do
    row_iter t.cust_off t.cust_adj provider (fun customer ->
        f ~provider ~customer)
  done

let pp_stats fmt t =
  Format.fprintf fmt
    "%d ASes interned, %d provider-customer + %d peering links (CSR)"
    (num_ases t) t.n_p2c t.n_p2p
