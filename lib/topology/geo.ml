open Pan_numerics

type point = { lat : float; lon : float }

let earth_radius_km = 6371.0

let rad deg = deg *. Float.pi /. 180.0

let distance_km p1 p2 =
  let dlat = rad (p2.lat -. p1.lat) and dlon = rad (p2.lon -. p1.lon) in
  let a =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (rad p1.lat) *. cos (rad p2.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. atan2 (sqrt a) (sqrt (1.0 -. a))

type t = {
  as_loc : (Asn.t, point) Hashtbl.t;
  link_loc : (Asn.t * Asn.t, point) Hashtbl.t;
}

let clamp lo hi x = Float.max lo (Float.min hi x)

(* Longitudes are confined to (-150, 150) so naive centroid averaging never
   crosses the antimeridian. *)
let random_hub rng =
  { lat = Rng.uniform rng (-50.0) 65.0; lon = Rng.uniform rng (-145.0) 145.0 }

let centroid points =
  let n = float_of_int (List.length points) in
  let lat = List.fold_left (fun a p -> a +. p.lat) 0.0 points /. n in
  let lon = List.fold_left (fun a p -> a +. p.lon) 0.0 points /. n in
  { lat; lon }

let jitter rng spread p =
  {
    lat = clamp (-85.0) 85.0 (p.lat +. Rng.gaussian rng 0.0 spread);
    lon = clamp (-150.0) 150.0 (p.lon +. Rng.gaussian rng 0.0 spread);
  }

let link_key x y = if Asn.compare x y <= 0 then (x, y) else (y, x)

let midpoint p1 p2 =
  { lat = 0.5 *. (p1.lat +. p2.lat); lon = 0.5 *. (p1.lon +. p2.lon) }

(* Link placement iterates the frozen CSR link lists, so the jitter RNG is
   consumed in a fixed, insertion-independent order: peering links first
   (both endpoints ascending), then provider-customer links. *)
let place_links ?rng c as_loc =
  let link_loc = Hashtbl.create 4096 in
  let place x y =
    let key = link_key x y in
    if not (Hashtbl.mem link_loc key) then begin
      let px = Hashtbl.find as_loc x and py = Hashtbl.find as_loc y in
      let m = midpoint px py in
      let m = match rng with Some r -> jitter r 1.0 m | None -> m in
      Hashtbl.replace link_loc key m
    end
  in
  Compact.iter_peering_links c (fun i j -> place (Compact.id c i) (Compact.id c j));
  Compact.iter_provider_customer_links c (fun ~provider ~customer ->
      place (Compact.id c provider) (Compact.id c customer));
  link_loc

let of_compact ?(hubs = 40) ~seed c =
  if hubs < 1 then invalid_arg "Geo.generate: hubs < 1";
  let rng = Rng.create seed in
  let hub_points = Array.init hubs (fun _ -> random_hub rng) in
  let n = Compact.num_ases c in
  let as_loc = Hashtbl.create 4096 in
  (* Place ASes top-down: provider-less ASes at hub centroids, then each
     remaining AS near the centroid of its already-placed providers.  A
     worklist pass handles provider cycles (possible in hand-built graphs)
     by falling back to a random hub. *)
  let placed i = Hashtbl.mem as_loc (Compact.id c i) in
  let place_root i =
    let k = 1 + Rng.int rng 3 in
    let picks = List.init k (fun _ -> Rng.choose rng hub_points) in
    Hashtbl.replace as_loc (Compact.id c i) (centroid picks)
  in
  for i = 0 to n - 1 do
    if Compact.providers_count c i = 0 then place_root i
  done;
  let pending = ref (List.filter (fun i -> not (placed i)) (List.init n Fun.id)) in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (fun i ->
          let ready = ref [] in
          Compact.iter_providers c i (fun p ->
              if placed p then ready := p :: !ready);
          match !ready with
          | [] -> true
          | ready ->
              let base =
                centroid
                  (List.rev_map
                     (fun p -> Hashtbl.find as_loc (Compact.id c p))
                     ready)
              in
              Hashtbl.replace as_loc (Compact.id c i) (jitter rng 4.0 base);
              progress := true;
              false)
        !pending
  done;
  List.iter (fun i -> place_root i) !pending;
  { as_loc; link_loc = place_links ~rng c as_loc }

let generate ?hubs ~seed g = of_compact ?hubs ~seed (Compact.freeze g)

let of_locations g locations =
  let c = Compact.freeze g in
  let as_loc = Hashtbl.create 4096 in
  Array.iter
    (fun x ->
      match Asn.Map.find_opt x locations with
      | Some p -> Hashtbl.replace as_loc x p
      | None ->
          invalid_arg
            (Printf.sprintf "Geo.of_locations: no location for AS%d"
               (Asn.to_int x)))
    (Compact.asns c);
  { as_loc; link_loc = place_links c as_loc }

let as_location t x = Hashtbl.find t.as_loc x
let link_location t x y = Hashtbl.find t.link_loc (link_key x y)

(* Deterministic table dumps for the binary snapshot: ascending ASN for
   AS locations, lexicographic (normalized) key order for link midpoints,
   so equal tables are equal bytes. *)
let bindings t =
  let as_rows =
    Hashtbl.fold (fun x p acc -> (x, p) :: acc) t.as_loc []
    |> List.sort (fun (x1, _) (x2, _) -> Asn.compare x1 x2)
  in
  let link_rows =
    Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.link_loc []
    |> List.sort (fun ((a1, b1), _) ((a2, b2), _) ->
           match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c)
  in
  (as_rows, link_rows)

let of_bindings as_rows link_rows =
  let as_loc = Hashtbl.create (2 * List.length as_rows) in
  List.iter (fun (x, p) -> Hashtbl.replace as_loc x p) as_rows;
  let link_loc = Hashtbl.create (2 * List.length link_rows) in
  List.iter
    (fun ((x, y), p) -> Hashtbl.replace link_loc (link_key x y) p)
    link_rows;
  { as_loc; link_loc }

let path3_geodistance t a1 a2 a3 =
  let l12 = link_location t a1 a2 and l23 = link_location t a2 a3 in
  distance_km (as_location t a1) l12
  +. distance_km l12 l23
  +. distance_km l23 (as_location t a3)
