open Pan_numerics

type point = { lat : float; lon : float }

let earth_radius_km = 6371.0

let rad deg = deg *. Float.pi /. 180.0

let distance_km p1 p2 =
  let dlat = rad (p2.lat -. p1.lat) and dlon = rad (p2.lon -. p1.lon) in
  let a =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (rad p1.lat) *. cos (rad p2.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. atan2 (sqrt a) (sqrt (1.0 -. a))

type t = {
  as_loc : (Asn.t, point) Hashtbl.t;
  link_loc : (Asn.t * Asn.t, point) Hashtbl.t;
}

let clamp lo hi x = Float.max lo (Float.min hi x)

(* Longitudes are confined to (-150, 150) so naive centroid averaging never
   crosses the antimeridian. *)
let random_hub rng =
  { lat = Rng.uniform rng (-50.0) 65.0; lon = Rng.uniform rng (-145.0) 145.0 }

let centroid points =
  let n = float_of_int (List.length points) in
  let lat = List.fold_left (fun a p -> a +. p.lat) 0.0 points /. n in
  let lon = List.fold_left (fun a p -> a +. p.lon) 0.0 points /. n in
  { lat; lon }

let jitter rng spread p =
  {
    lat = clamp (-85.0) 85.0 (p.lat +. Rng.gaussian rng 0.0 spread);
    lon = clamp (-150.0) 150.0 (p.lon +. Rng.gaussian rng 0.0 spread);
  }

let link_key x y = if Asn.compare x y <= 0 then (x, y) else (y, x)

let midpoint p1 p2 =
  { lat = 0.5 *. (p1.lat +. p2.lat); lon = 0.5 *. (p1.lon +. p2.lon) }

let place_links ?rng g as_loc =
  let link_loc = Hashtbl.create 4096 in
  let place x y =
    let key = link_key x y in
    if not (Hashtbl.mem link_loc key) then begin
      let px = Hashtbl.find as_loc x and py = Hashtbl.find as_loc y in
      let m = midpoint px py in
      let m = match rng with Some r -> jitter r 1.0 m | None -> m in
      Hashtbl.replace link_loc key m
    end
  in
  Graph.fold_peering_links (fun x y () -> place x y) g ();
  Graph.fold_provider_customer_links
    (fun ~provider ~customer () -> place provider customer)
    g ();
  link_loc

let generate ?(hubs = 40) ~seed g =
  if hubs < 1 then invalid_arg "Geo.generate: hubs < 1";
  let rng = Rng.create seed in
  let hub_points = Array.init hubs (fun _ -> random_hub rng) in
  let as_loc = Hashtbl.create 4096 in
  (* Place ASes top-down: provider-less ASes at hub centroids, then each
     remaining AS near the centroid of its already-placed providers.  A
     worklist pass handles provider cycles (possible in hand-built graphs)
     by falling back to a random hub. *)
  let all = Graph.ases g in
  let placed x = Hashtbl.mem as_loc x in
  let place_root x =
    let k = 1 + Rng.int rng 3 in
    let picks = List.init k (fun _ -> Rng.choose rng hub_points) in
    Hashtbl.replace as_loc x (centroid picks)
  in
  List.iter
    (fun x -> if Asn.Set.is_empty (Graph.providers g x) then place_root x)
    all;
  let pending = ref (List.filter (fun x -> not (placed x)) all) in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    pending :=
      List.filter
        (fun x ->
          let provs = Asn.Set.elements (Graph.providers g x) in
          let ready = List.filter placed provs in
          if ready <> [] then begin
            let base = centroid (List.map (Hashtbl.find as_loc) ready) in
            Hashtbl.replace as_loc x (jitter rng 4.0 base);
            progress := true;
            false
          end
          else true)
        !pending
  done;
  List.iter (fun x -> place_root x) !pending;
  { as_loc; link_loc = place_links ~rng g as_loc }

let of_locations g locations =
  let as_loc = Hashtbl.create 4096 in
  List.iter
    (fun x ->
      match Asn.Map.find_opt x locations with
      | Some p -> Hashtbl.replace as_loc x p
      | None ->
          invalid_arg
            (Printf.sprintf "Geo.of_locations: no location for AS%d"
               (Asn.to_int x)))
    (Graph.ases g);
  { as_loc; link_loc = place_links g as_loc }

let as_location t x = Hashtbl.find t.as_loc x
let link_location t x y = Hashtbl.find t.link_loc (link_key x y)

let path3_geodistance t a1 a2 a3 =
  let l12 = link_location t a1 a2 and l23 = link_location t a2 a3 in
  distance_km (as_location t a1) l12
  +. distance_km l12 l23
  +. distance_km l23 (as_location t a3)
