(** {!Path_enum} rewritten against the frozen {!Compact} core.

    Same algebra as the legacy module — length-3 path sets keyed by
    middle AS — but over interned int indices, with every destination set
    a {!Bitset} instead of an [Asn.Set.t].  The union / difference that
    dominate [scenario_paths] sweeps become word-wise array loops, and
    sources can be enumerated in parallel over one shared frozen
    topology.

    Results are element-for-element equal to the legacy implementation
    (modulo interning), the property [test/test_compact.ml] pins down;
    iteration order is ascending by index, which equals ascending by ASN.

    The scenario type is shared with {!Path_enum}.  [scenario_paths]
    counts its calls under the [path_enum.compact] metric (the legacy
    implementation counts [path_enum.legacy]), so a metrics snapshot
    shows which core served an experiment. *)

type mid_sets
(** Map from middle-AS index to the bitset of destination indices, mids
    ascending. *)

val total_count : mid_sets -> int
val dest_set : mid_sets -> Bitset.t

val union : mid_sets -> mid_sets -> mid_sets
val diff : mid_sets -> mid_sets -> mid_sets

val by_destination : mid_sets -> mid_sets
(** Invert: destination index ↦ set of middle indices. *)

val iter_sets : (int -> Bitset.t -> unit) -> mid_sets -> unit
(** Visit [(mid, destinations)] rows, mids ascending. *)

val find : mid_sets -> int -> Bitset.t option
(** Destination set of one mid (binary search). *)

val iter_paths : (mid:int -> dst:int -> unit) -> mid_sets -> unit

val to_mid_sets : Compact.t -> mid_sets -> Path_enum.mid_sets
(** Convert back to the legacy ASN-keyed representation (tests,
    interop). *)

val grc : Compact.t -> int -> mid_sets
val ma_gain : Compact.t -> int -> int -> Bitset.t
val ma_direct : ?partners:Bitset.t -> Compact.t -> int -> mid_sets
val ma_indirect : ?concluded:(int -> int -> bool) -> Compact.t -> int ->
  mid_sets

val top_partners : Compact.t -> n:int -> int -> int list
(** @raise Invalid_argument if [n < 0]. *)

val economic_paths : concluded:(int -> int -> bool) -> Compact.t -> int ->
  mid_sets

val scenario_paths : Compact.t -> Path_enum.scenario -> int -> mid_sets
val additional_paths : Compact.t -> Path_enum.scenario -> int -> mid_sets
