open Pan_numerics

type summary = {
  ases : int;
  p2c_links : int;
  p2p_links : int;
  peering_share : float;
  max_degree : int;
  mean_degree : float;
  degree_p99 : float;
  max_hierarchy_depth : int;
  provider_less : int;
}

let customer_cone g x =
  let rec visit acc x =
    if Asn.Set.mem x acc then acc
    else
      Asn.Set.fold
        (fun c acc -> visit acc c)
        (Graph.customers g x)
        (Asn.Set.add x acc)
  in
  visit Asn.Set.empty x

let cone_size g x = Asn.Set.cardinal (customer_cone g x)

let cone_sizes g =
  (* memoized cone sets bottom-up; the provider-customer subgraph is a
     DAG in well-formed topologies, and the memo table also terminates
     on (malformed) cyclic inputs because membership is checked before
     recursion *)
  let memo = Hashtbl.create 1024 in
  let rec cone x =
    match Hashtbl.find_opt memo x with
    | Some s -> s
    | None ->
        (* mark to cut cycles: a cycle member sees itself as empty *)
        Hashtbl.replace memo x (Asn.Set.singleton x);
        let s =
          Asn.Set.fold
            (fun c acc -> Asn.Set.union acc (cone c))
            (Graph.customers g x)
            (Asn.Set.singleton x)
        in
        Hashtbl.replace memo x s;
        s
  in
  List.fold_left
    (fun acc x -> Asn.Map.add x (Asn.Set.cardinal (cone x)) acc)
    Asn.Map.empty (Graph.ases g)

let hierarchy_depth g x =
  let memo = Hashtbl.create 256 in
  let rec depth trail x =
    if List.exists (Asn.equal x) trail then
      invalid_arg "Metrics.hierarchy_depth: provider-customer cycle";
    match Hashtbl.find_opt memo x with
    | Some d -> d
    | None ->
        let d =
          Asn.Set.fold
            (fun c acc -> Stdlib.max acc (1 + depth (x :: trail) c))
            (Graph.customers g x) 0
        in
        Hashtbl.replace memo x d;
        d
  in
  depth [] x

(* Degrees come from the frozen CSR view: O(1) per AS instead of three
   hash lookups plus set cardinals.  Index order equals ascending ASN
   order, matching the previous [Graph.ases] traversal. *)
let degrees_compact c =
  Array.init (Compact.num_ases c) (fun i ->
      float_of_int (Compact.degree c i))

let degrees g = degrees_compact (Compact.freeze g)

let summary g =
  let c = Compact.freeze g in
  let ases = Compact.num_ases c in
  if ases = 0 then invalid_arg "Metrics.summary: empty graph";
  let degs = degrees_compact c in
  let p2c = Compact.num_provider_customer_links c in
  let p2p = Compact.num_peering_links c in
  let total_links = p2c + p2p in
  let provider_less = ref 0 in
  for i = 0 to ases - 1 do
    if Compact.providers_count c i = 0 then incr provider_less
  done;
  let provider_less = !provider_less in
  let max_depth =
    List.fold_left
      (fun acc x ->
        if Asn.Set.is_empty (Graph.providers g x) then
          Stdlib.max acc (hierarchy_depth g x)
        else acc)
      0 (Graph.ases g)
  in
  {
    ases;
    p2c_links = p2c;
    p2p_links = p2p;
    peering_share =
      (if total_links = 0 then 0.0
       else float_of_int p2p /. float_of_int total_links);
    max_degree = int_of_float (snd (Stats.min_max degs));
    mean_degree = Stats.mean degs;
    degree_p99 = Stats.percentile degs 99.0;
    max_hierarchy_depth = max_depth;
    provider_less;
  }

let degree_histogram ~bins g = Stats.histogram ~bins (degrees g)
let degree_histogram_compact ~bins c = Stats.histogram ~bins (degrees_compact c)

let pp_summary fmt s =
  Format.fprintf fmt
    "%d ASes; %d p2c + %d p2p links (peering share %.2f); degree mean \
     %.1f, p99 %.0f, max %d; hierarchy depth %d; %d provider-less ASes"
    s.ases s.p2c_links s.p2p_links s.peering_share s.mean_degree s.degree_p99
    s.max_degree s.max_hierarchy_depth s.provider_less
