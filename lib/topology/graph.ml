type relationship = Provider | Peer | Customer

type t = {
  providers : (Asn.t, Asn.Set.t) Hashtbl.t;
  peers : (Asn.t, Asn.Set.t) Hashtbl.t;
  customers : (Asn.t, Asn.Set.t) Hashtbl.t;
  mutable known : Asn.Set.t;
  mutable n_p2c : int;
  mutable n_p2p : int;
}

let create () =
  {
    providers = Hashtbl.create 1024;
    peers = Hashtbl.create 1024;
    customers = Hashtbl.create 1024;
    known = Asn.Set.empty;
    n_p2c = 0;
    n_p2p = 0;
  }

let get tbl x =
  match Hashtbl.find_opt tbl x with Some s -> s | None -> Asn.Set.empty

let add_to tbl x y = Hashtbl.replace tbl x (Asn.Set.add y (get tbl x))

let add_as g x = g.known <- Asn.Set.add x g.known

let mem g x = Asn.Set.mem x g.known

let relationship g x y =
  if Asn.Set.mem y (get g.providers x) then Some Provider
  else if Asn.Set.mem y (get g.peers x) then Some Peer
  else if Asn.Set.mem y (get g.customers x) then Some Customer
  else None

let connected g x y = relationship g x y <> None

let check_link name g x y expected =
  if Asn.equal x y then
    invalid_arg (Printf.sprintf "Graph.%s: self-link on AS%d" name
                   (Asn.to_int x));
  match relationship g x y with
  | None -> `Absent
  | Some r when r = expected -> `Already
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Graph.%s: AS%d and AS%d already related differently"
           name (Asn.to_int x) (Asn.to_int y))

let add_provider_customer g ~provider ~customer =
  match check_link "add_provider_customer" g customer provider Provider with
  | `Already -> ()
  | `Absent ->
      add_as g provider;
      add_as g customer;
      add_to g.providers customer provider;
      add_to g.customers provider customer;
      g.n_p2c <- g.n_p2c + 1

let add_peering g x y =
  match check_link "add_peering" g x y Peer with
  | `Already -> ()
  | `Absent ->
      add_as g x;
      add_as g y;
      add_to g.peers x y;
      add_to g.peers y x;
      g.n_p2p <- g.n_p2p + 1

let remove_from tbl x y =
  let s = Asn.Set.remove y (get tbl x) in
  if Asn.Set.is_empty s then Hashtbl.remove tbl x else Hashtbl.replace tbl x s

let remove_peering g x y =
  match relationship g x y with
  | Some Peer ->
      remove_from g.peers x y;
      remove_from g.peers y x;
      g.n_p2p <- g.n_p2p - 1
  | _ ->
      invalid_arg
        (Printf.sprintf "Graph.remove_peering: AS%d and AS%d are not peers"
           (Asn.to_int x) (Asn.to_int y))

let remove_provider_customer g ~provider ~customer =
  match relationship g customer provider with
  | Some Provider ->
      remove_from g.providers customer provider;
      remove_from g.customers provider customer;
      g.n_p2c <- g.n_p2c - 1
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Graph.remove_provider_customer: AS%d is not a provider of AS%d"
           (Asn.to_int provider) (Asn.to_int customer))

let num_ases g = Asn.Set.cardinal g.known
let num_provider_customer_links g = g.n_p2c
let num_peering_links g = g.n_p2p
let ases g = Asn.Set.elements g.known
let providers g x = get g.providers x
let peers g x = get g.peers x
let customers g x = get g.customers x

let neighbors g x =
  Asn.Set.union (get g.providers x)
    (Asn.Set.union (get g.peers x) (get g.customers x))

let degree g x =
  Asn.Set.cardinal (get g.providers x)
  + Asn.Set.cardinal (get g.peers x)
  + Asn.Set.cardinal (get g.customers x)

(* Both folds iterate the known-AS set, not the hash tables: Hashtbl.fold
   visits bindings in an unspecified order, which leaked into everything
   downstream that threads an RNG through a fold (e.g. Geo link jitter).
   Folding the sorted AS set makes the order a stable part of the
   contract: ASes ascending, then neighbors ascending. *)
let fold_peering_links f g init =
  Asn.Set.fold
    (fun x acc ->
      Asn.Set.fold
        (fun y acc -> if Asn.compare x y < 0 then f x y acc else acc)
        (get g.peers x) acc)
    g.known init

let fold_provider_customer_links f g init =
  Asn.Set.fold
    (fun provider acc ->
      Asn.Set.fold
        (fun customer acc -> f ~provider ~customer acc)
        (get g.customers provider)
        acc)
    g.known init

let copy g =
  {
    providers = Hashtbl.copy g.providers;
    peers = Hashtbl.copy g.peers;
    customers = Hashtbl.copy g.customers;
    known = g.known;
    n_p2c = g.n_p2c;
    n_p2p = g.n_p2p;
  }

let pp_stats fmt g =
  Format.fprintf fmt "%d ASes, %d provider-customer links, %d peering links"
    (num_ases g) g.n_p2c g.n_p2p
