module Obs = Pan_obs.Obs

type mid_sets = { width : int; mids : int array; sets : Bitset.t array }

(* Invariant: [mids] strictly ascending, every set non-empty, every set of
   width [width]. *)

let of_sorted_rev ~width pairs =
  let arr = Array.of_list (List.rev pairs) in
  { width; mids = Array.map fst arr; sets = Array.map snd arr }

let of_assoc ~width pairs =
  let arr = Array.of_list pairs in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  { width; mids = Array.map fst arr; sets = Array.map snd arr }

let total_count m =
  let acc = ref 0 in
  Array.iter (fun s -> acc := !acc + Bitset.cardinal s) m.sets;
  !acc

let dest_set m =
  let d = Bitset.create ~width:m.width in
  Array.iter (fun s -> Bitset.union_into ~into:d s) m.sets;
  d

let iter_sets f m = Array.iteri (fun k mid -> f mid m.sets.(k)) m.mids

let find m mid =
  let lo = ref 0 and hi = ref (Array.length m.mids - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let k = (!lo + !hi) / 2 in
    if m.mids.(k) = mid then found := Some m.sets.(k)
    else if m.mids.(k) < mid then lo := k + 1
    else hi := k - 1
  done;
  !found

let union a b =
  if a.width <> b.width then invalid_arg "Path_enum_compact.union";
  let la = Array.length a.mids and lb = Array.length b.mids in
  let acc = ref [] and ia = ref 0 and ib = ref 0 in
  while !ia < la || !ib < lb do
    if !ib >= lb || (!ia < la && a.mids.(!ia) < b.mids.(!ib)) then begin
      acc := (a.mids.(!ia), a.sets.(!ia)) :: !acc;
      incr ia
    end
    else if !ia >= la || b.mids.(!ib) < a.mids.(!ia) then begin
      acc := (b.mids.(!ib), b.sets.(!ib)) :: !acc;
      incr ib
    end
    else begin
      acc := (a.mids.(!ia), Bitset.union a.sets.(!ia) b.sets.(!ib)) :: !acc;
      incr ia;
      incr ib
    end
  done;
  of_sorted_rev ~width:a.width !acc

let diff a b =
  if a.width <> b.width then invalid_arg "Path_enum_compact.diff";
  let acc = ref [] in
  Array.iteri
    (fun k mid ->
      match find b mid with
      | None -> acc := (mid, a.sets.(k)) :: !acc
      | Some other ->
          let d = Bitset.diff a.sets.(k) other in
          if not (Bitset.is_empty d) then acc := (mid, d) :: !acc)
    a.mids;
  of_sorted_rev ~width:a.width !acc

let by_destination m =
  let per_dst = Array.make m.width None in
  iter_sets
    (fun mid zs ->
      Bitset.iter
        (fun z ->
          let bs =
            match per_dst.(z) with
            | Some bs -> bs
            | None ->
                let bs = Bitset.create ~width:m.width in
                per_dst.(z) <- Some bs;
                bs
          in
          Bitset.unsafe_add bs mid)
        zs)
    m;
  let acc = ref [] in
  for z = m.width - 1 downto 0 do
    match per_dst.(z) with Some bs -> acc := (z, bs) :: !acc | None -> ()
  done;
  let arr = Array.of_list !acc in
  { width = m.width; mids = Array.map fst arr; sets = Array.map snd arr }

let iter_paths f m =
  iter_sets (fun mid zs -> Bitset.iter (fun dst -> f ~mid ~dst) zs) m

let to_mid_sets c m =
  let acc = ref Asn.Map.empty in
  iter_sets
    (fun mid zs ->
      let set =
        Bitset.fold (fun z s -> Asn.Set.add (Compact.id c z) s) zs
          Asn.Set.empty
      in
      acc := Asn.Map.add (Compact.id c mid) set !acc)
    m;
  !acc

(* ------------------------------------------------------------------ *)
(* Enumeration proper                                                  *)

let grc c x =
  let n = Compact.num_ases c in
  let acc = ref [] in
  let add_mid y zs = if not (Bitset.is_empty zs) then acc := (y, zs) :: !acc in
  (* Providers export everything they know: customers, peers, their own
     providers. *)
  Compact.iter_providers c x (fun y ->
      let zs = Bitset.create ~width:n in
      Compact.add_customers c y zs;
      Compact.add_peers c y zs;
      Compact.add_providers c y zs;
      Bitset.remove zs x;
      add_mid y zs);
  (* Peers and customers export customer routes only. *)
  let customer_routes y =
    if Compact.customers_count c y > 0 then begin
      let zs = Bitset.create ~width:n in
      Compact.add_customers c y zs;
      Bitset.remove zs x;
      add_mid y zs
    end
  in
  Compact.iter_peers c x customer_routes;
  Compact.iter_customers c x customer_routes;
  of_assoc ~width:n !acc

(* [custx] is the pre-built customers(x) bitset, shared across the peers
   of one source. *)
let ma_gain_pre c ~custx x y =
  let zs = Bitset.create ~width:(Compact.num_ases c) in
  Compact.add_providers c y zs;
  Compact.add_peers c y zs;
  Bitset.diff_into ~into:zs custx;
  Bitset.remove zs x;
  zs

let customers_bitset c x =
  let custx = Bitset.create ~width:(Compact.num_ases c) in
  Compact.add_customers c x custx;
  custx

let ma_gain c x y = ma_gain_pre c ~custx:(customers_bitset c x) x y

let ma_direct ?partners c x =
  let n = Compact.num_ases c in
  let custx = customers_bitset c x in
  let acc = ref [] in
  Compact.iter_peers c x (fun y ->
      let chosen =
        match partners with None -> true | Some p -> Bitset.mem p y
      in
      if chosen then begin
        let zs = ma_gain_pre c ~custx x y in
        if not (Bitset.is_empty zs) then acc := (y, zs) :: !acc
      end);
  of_assoc ~width:n !acc

let ma_indirect ?concluded c x =
  let n = Compact.num_ases c in
  (* z is excluded when z = x or z is a provider of x (then x is a
     customer of z). *)
  let excl = Bitset.create ~width:n in
  Compact.add_providers c x excl;
  Bitset.add excl x;
  let acc = ref [] in
  let from_mid y =
    match concluded with
    | None ->
        (* fast path: one row OR plus one word-wise subtraction *)
        if Compact.peers_count c y > 0 then begin
          let zs = Bitset.create ~width:n in
          Compact.add_peers c y zs;
          Bitset.diff_into ~into:zs excl;
          if not (Bitset.is_empty zs) then acc := (y, zs) :: !acc
        end
    | Some conc ->
        let zs = Bitset.create ~width:n in
        Compact.iter_peers c y (fun z ->
            if (not (Bitset.mem excl z)) && conc y z then
              Bitset.unsafe_add zs z);
        if not (Bitset.is_empty zs) then acc := (y, zs) :: !acc
  in
  (* mids = customers(x) ∪ peers(x); the two classes are disjoint, so the
     two row iterations visit each mid exactly once *)
  Compact.iter_customers c x from_mid;
  Compact.iter_peers c x from_mid;
  of_assoc ~width:n !acc

let top_partners c ~n x =
  if n < 0 then invalid_arg "Path_enum_compact.top_partners: n < 0";
  let custx = customers_bitset c x in
  let scored = ref [] in
  Compact.iter_peers c x (fun y ->
      scored := (Bitset.cardinal (ma_gain_pre c ~custx x y), y) :: !scored);
  let sorted =
    List.sort
      (fun (c1, y1) (c2, y2) ->
        match compare c2 c1 with 0 -> compare y1 y2 | c -> c)
      !scored
  in
  List.filteri (fun i _ -> i < n) sorted |> List.map snd

let economic_paths ~concluded c x =
  let partners = Bitset.create ~width:(Compact.num_ases c) in
  Compact.iter_peers c x (fun y ->
      if concluded x y then Bitset.unsafe_add partners y);
  union
    (union (grc c x) (ma_direct ~partners c x))
    (ma_indirect ~concluded c x)

let scenario_paths c scenario x =
  Obs.incr "path_enum.compact";
  let base = grc c x in
  match (scenario : Path_enum.scenario) with
  | Grc -> base
  | Ma_all -> union (union base (ma_direct c x)) (ma_indirect c x)
  | Ma_direct_only -> union base (ma_direct c x)
  | Ma_top n ->
      let partners =
        Bitset.of_list ~width:(Compact.num_ases c) (top_partners c ~n x)
      in
      union base (ma_direct ~partners c x)

let additional_paths c scenario x = diff (scenario_paths c scenario x) (grc c x)
