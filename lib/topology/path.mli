(** AS-level paths and Gao–Rexford (valley-free) conformance.

    A path is a sequence of distinct, pairwise-adjacent ASes.  Under the
    Gao–Rexford export conditions a path is usable by its source iff its
    step sequence matches [up* peer? down*]: once the path stops climbing
    (crosses a peering link or descends to a customer) it may only descend.
    Mutuality-based agreements create exactly the paths that violate this
    pattern at a peering step. *)

type t = private Asn.t list
(** At least two ASes, all distinct. *)

type step =
  | Up  (** customer → provider *)
  | Flat  (** across a peering link *)
  | Down  (** provider → customer *)

val make : Graph.t -> Asn.t list -> (t, string) result
(** Validate a candidate path: length ≥ 2, distinct ASes, consecutive ASes
    adjacent in the graph. *)

val make_exn : Graph.t -> Asn.t list -> t
(** @raise Invalid_argument when {!make} would return [Error]. *)

val ases : t -> Asn.t list
val source : t -> Asn.t
val destination : t -> Asn.t
val length : t -> int
(** Number of ASes (the paper's "length-3 paths" have 3 ASes, 2 links). *)

val links : t -> (Asn.t * Asn.t) list
val reverse : t -> t

val steps : Graph.t -> t -> step list
(** One step per link, from the source's perspective. *)

val is_valley_free : Graph.t -> t -> bool
(** Does the step sequence match [up* peer? down*]? *)

val grc_usable : Graph.t -> t -> bool
(** Alias of {!is_valley_free}: whether the source could learn and use this
    path in a BGP internet whose ASes follow the GRC export rules. *)

val pp : Format.formatter -> t -> unit
