open Pan_numerics

type tier = Tier1 | Transit | Stub

type params = {
  n_tier1 : int;
  n_transit : int;
  n_stub : int;
  transit_max_providers : int;
  stub_max_providers : int;
  transit_peering_degree : float;
  stub_peering_prob : float;
  route_server_hubs : int;
  hub_peering_prob : float;
}

let default_params =
  {
    n_tier1 = 12;
    n_transit = 300;
    n_stub = 1700;
    transit_max_providers = 3;
    stub_max_providers = 2;
    transit_peering_degree = 40.0;
    stub_peering_prob = 0.5;
    route_server_hubs = 10;
    hub_peering_prob = 0.4;
  }

type t = {
  graph : Graph.t;
  tiers : tier Asn.Map.t;
  tier1 : Asn.t list;
  transit : Asn.t list;
  stubs : Asn.t list;
}

let graph t = t.graph
let tier_of t x = Asn.Map.find x t.tiers
let tier1 t = t.tier1
let transit t = t.transit
let stubs t = t.stubs

let pp_tier fmt = function
  | Tier1 -> Format.pp_print_string fmt "tier1"
  | Transit -> Format.pp_print_string fmt "transit"
  | Stub -> Format.pp_print_string fmt "stub"

(* Preferential choice: pick an element of [candidates] with probability
   proportional to its current customer degree plus one.  The "+1" keeps
   fresh ASes reachable and bounds the tail. *)
let preferential_pick rng g candidates =
  let weights =
    Array.map
      (fun x -> float_of_int (Asn.Set.cardinal (Graph.customers g x) + 1))
      candidates
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = Rng.uniform rng 0.0 total in
  let rec walk i acc =
    if i >= Array.length candidates - 1 then candidates.(i)
    else
      let acc = acc +. weights.(i) in
      if target < acc then candidates.(i) else walk (i + 1) acc
  in
  walk 0 0.0

let pick_providers rng g candidates ~max_providers =
  let count = 1 + Rng.int rng max_providers in
  let rec collect chosen tries =
    if Asn.Set.cardinal chosen >= count || tries > 20 then chosen
    else
      let p = preferential_pick rng g candidates in
      collect (Asn.Set.add p chosen) (tries + 1)
  in
  collect Asn.Set.empty 0

let validate p =
  if p.n_tier1 < 1 then invalid_arg "Gen.generate: n_tier1 < 1";
  if p.n_transit < 0 || p.n_stub < 0 then
    invalid_arg "Gen.generate: negative tier size";
  if p.transit_max_providers < 1 || p.stub_max_providers < 1 then
    invalid_arg "Gen.generate: max_providers < 1";
  if p.transit_peering_degree < 0.0 then
    invalid_arg "Gen.generate: negative peering degree";
  if p.stub_peering_prob < 0.0 || p.stub_peering_prob > 1.0 then
    invalid_arg "Gen.generate: stub_peering_prob outside [0,1]";
  if p.route_server_hubs < 0 then
    invalid_arg "Gen.generate: negative route_server_hubs";
  if p.hub_peering_prob < 0.0 || p.hub_peering_prob > 1.0 then
    invalid_arg "Gen.generate: hub_peering_prob outside [0,1]"

let generate ?(params = default_params) ~seed () =
  validate params;
  let rng = Rng.create seed in
  let g = Graph.create () in
  let next = ref 1 in
  let fresh () =
    let a = Asn.of_int !next in
    incr next;
    Graph.add_as g a;
    a
  in
  let tier1 = List.init params.n_tier1 (fun _ -> fresh ()) in
  (* Tier-1 clique: every pair peers. *)
  List.iteri
    (fun i x ->
      List.iteri (fun j y -> if i < j then Graph.add_peering g x y) tier1)
    tier1;
  (* Transit tier: providers chosen preferentially among tier-1 and
     previously created transit ASes. *)
  let transit = ref [] in
  for _ = 1 to params.n_transit do
    let x = fresh () in
    let candidates = Array.of_list (tier1 @ List.rev !transit) in
    let providers =
      pick_providers rng g candidates
        ~max_providers:params.transit_max_providers
    in
    Asn.Set.iter
      (fun p -> Graph.add_provider_customer g ~provider:p ~customer:x)
      providers;
    transit := x :: !transit
  done;
  let transit = List.rev !transit in
  (* Stub tier: providers drawn preferentially among transit ASes (or
     tier-1 when there is no transit tier). *)
  let stub_candidates =
    Array.of_list (if transit = [] then tier1 else transit)
  in
  let stubs = ref [] in
  for _ = 1 to params.n_stub do
    let x = fresh () in
    let providers =
      pick_providers rng g stub_candidates
        ~max_providers:params.stub_max_providers
    in
    Asn.Set.iter
      (fun p -> Graph.add_provider_customer g ~provider:p ~customer:x)
      providers;
    stubs := x :: !stubs
  done;
  let stubs = List.rev !stubs in
  (* Transit peering mesh: each unordered transit pair peers with the
     probability that yields the requested expected degree. *)
  let transit_arr = Array.of_list transit in
  let nt = Array.length transit_arr in
  if nt > 1 && params.transit_peering_degree > 0.0 then begin
    let p =
      Float.min 1.0 (params.transit_peering_degree /. float_of_int (nt - 1))
    in
    for i = 0 to nt - 1 do
      for j = i + 1 to nt - 1 do
        if Rng.float rng < p
           && not (Graph.connected g transit_arr.(i) transit_arr.(j))
        then Graph.add_peering g transit_arr.(i) transit_arr.(j)
      done
    done
  end;
  (* IXP-like stub peering: a [stub_peering_prob] share of stubs joins an
     exchange and peers with a geometric number of other members — stubs
     or transit ASes — which is what gives edge ASes access to
     mutuality-based agreements in the first place. *)
  let stub_arr = Array.of_list stubs in
  let ixp_targets = Array.of_list (transit @ stubs) in
  if Array.length ixp_targets > 1 then
    Array.iter
      (fun x ->
        if Rng.float rng < params.stub_peering_prob then begin
          let rec add_links remaining =
            if remaining > 0 then begin
              let y = Rng.choose rng ixp_targets in
              if (not (Asn.equal x y)) && not (Graph.connected g x y) then
                Graph.add_peering g x y;
              (* geometric continuation: a heavy-ish tail of sessions per member,
                 as at an IXP route server *)
              if Rng.float rng < 0.7 then add_links (remaining - 1)
            end
          in
          add_links 16
        end)
      stub_arr;
  (* Route-server hubs: the highest-degree transit ASes peer very widely
     across the whole topology, mimicking the few ASes (e.g. large IXP
     route-server participants) that carry most of the peering-edge mass
     in measured AS graphs. *)
  if params.route_server_hubs > 0 && transit <> [] then begin
    let by_degree =
      List.sort
        (fun x y -> compare (Graph.degree g y) (Graph.degree g x))
        transit
    in
    let hubs =
      List.filteri (fun i _ -> i < params.route_server_hubs) by_degree
    in
    let everyone = Array.of_list (transit @ stubs) in
    List.iter
      (fun hub ->
        Array.iter
          (fun x ->
            if
              (not (Asn.equal hub x))
              && (not (Graph.connected g hub x))
              && Rng.float rng < params.hub_peering_prob
            then Graph.add_peering g hub x)
          everyone)
      hubs
  end;
  let tiers =
    let add tier acc x = Asn.Map.add x tier acc in
    let m = List.fold_left (add Tier1) Asn.Map.empty tier1 in
    let m = List.fold_left (add Transit) m transit in
    List.fold_left (add Stub) m stubs
  in
  { graph = g; tiers; tier1; transit; stubs }

let fig1_asn c =
  match c with
  | 'A' .. 'I' -> Asn.of_int (Char.code c - Char.code 'A' + 1)
  | _ -> invalid_arg "Gen.fig1_asn: expected a letter in A..I"

let fig1 () =
  let g = Graph.create () in
  let a c = fig1_asn c in
  let peer x y = Graph.add_peering g (a x) (a y) in
  let p2c x y = Graph.add_provider_customer g ~provider:(a x) ~customer:(a y) in
  peer 'A' 'B';
  peer 'A' 'C';
  peer 'B' 'C';
  peer 'C' 'D';
  peer 'C' 'E';
  peer 'D' 'E';
  peer 'E' 'F';
  p2c 'A' 'D';
  p2c 'B' 'E';
  p2c 'C' 'F';
  p2c 'D' 'H';
  p2c 'E' 'I';
  p2c 'F' 'G';
  g
