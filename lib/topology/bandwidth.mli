(** Inter-AS link capacities under the degree-gravity model (§VI-C).

    Following Saino et al. (the paper's reference [47]), each link is
    endowed with a capacity proportional to the product of the node degrees
    of its endpoints; path bandwidth is the minimum link capacity along the
    path. *)

type t

val degree_gravity : ?coefficient:float -> Graph.t -> t
(** Capacities [coefficient · deg(u) · deg(v)] (default coefficient 1.0).
    Degrees are total neighbor counts at construction time; the graph is
    frozen into a {!Compact} view, so queries are O(1) degrees plus a
    binary-search adjacency check.
    @raise Invalid_argument if [coefficient <= 0]. *)

val of_compact : ?coefficient:float -> Compact.t -> t
(** Same model over an already-frozen topology (shares the view instead
    of re-freezing). *)

val coefficient : t -> float
(** The capacity coefficient, for the {!Snapshot} bandwidth section (the
    rest of the model is derived from the frozen topology). *)

val link_capacity : t -> Asn.t -> Asn.t -> float
(** @raise Not_found if the ASes are not adjacent in the underlying graph. *)

val path3_bandwidth : t -> Asn.t -> Asn.t -> Asn.t -> float
(** Bandwidth of the length-3 path [a1 - a2 - a3]: the smaller of its two
    link capacities. *)

val path_bandwidth : t -> Asn.t list -> float
(** Minimum link capacity along an arbitrary path.
    @raise Invalid_argument on a path with fewer than 2 ASes. *)
