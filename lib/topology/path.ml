type t = Asn.t list

type step = Up | Flat | Down

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.exists (Asn.equal x) rest)) && distinct rest

let make g ases =
  match ases with
  | [] | [ _ ] -> Error "path needs at least 2 ASes"
  | _ ->
      if not (distinct ases) then Error "path contains a repeated AS"
      else
        let rec adjacent = function
          | a :: (b :: _ as rest) ->
              if Graph.connected g a b then adjacent rest
              else
                Error
                  (Printf.sprintf "AS%d and AS%d are not adjacent"
                     (Asn.to_int a) (Asn.to_int b))
          | [ _ ] | [] -> Ok ases
        in
        adjacent ases

let make_exn g ases =
  match make g ases with
  | Ok p -> p
  | Error msg -> invalid_arg ("Path.make_exn: " ^ msg)

let ases p = p

let source = function a :: _ -> a | [] -> assert false

let rec destination = function
  | [ a ] -> a
  | _ :: rest -> destination rest
  | [] -> assert false

let length = List.length

let rec links = function
  | a :: (b :: _ as rest) -> (a, b) :: links rest
  | [ _ ] | [] -> []

let reverse = List.rev

let steps g p =
  let step a b =
    match Graph.relationship g a b with
    | Some Graph.Provider -> Up
    | Some Graph.Peer -> Flat
    | Some Graph.Customer -> Down
    | None -> assert false (* adjacency was checked at construction *)
  in
  List.map (fun (a, b) -> step a b) (links p)

(* up* peer? down*, tracked as a 3-state automaton. *)
let is_valley_free g p =
  let rec run state = function
    | [] -> true
    | s :: rest -> (
        match (state, s) with
        | `Climbing, Up -> run `Climbing rest
        | `Climbing, Flat -> run `Descending rest
        | (`Climbing | `Descending), Down -> run `Descending rest
        | `Descending, (Up | Flat) -> false)
  in
  run `Climbing (steps g p)

let grc_usable = is_valley_free

let pp fmt p =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " - ")
    Asn.pp fmt p
