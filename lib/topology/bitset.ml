let bits_per_word = Sys.int_size

type t = { width : int; words : int array }

let create ~width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make ((width + bits_per_word - 1) / bits_per_word) 0 }

let width t = t.width
let copy t = { t with words = Array.copy t.words }

let check name t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d outside [0, %d)" name i
                   t.width)

let unsafe_add t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

let add t i =
  check "add" t i;
  unsafe_add t i

let remove t i =
  check "remove" t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  if i < 0 || i >= t.width then false
  else t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let same_width name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bitset.%s: widths %d and %d differ" name
                   a.width b.width)

let map2 f a b =
  {
    width = a.width;
    words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i));
  }

let union a b = same_width "union" a b; map2 ( lor ) a b
let inter a b = same_width "inter" a b; map2 ( land ) a b
let diff a b = same_width "diff" a b; map2 (fun x y -> x land lnot y) a b

let union_into ~into b =
  same_width "union_into" into b;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor b.words.(i)
  done

let diff_into ~into b =
  same_width "diff_into" into b;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot b.words.(i)
  done

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.width = b.width && a.words = b.words

(* Kernighan popcount: one iteration per set bit, which is what we want on
   the sparse destination sets the path algebra produces. *)
let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      let lsb = !w land - !w in
      (* index of the isolated bit by binary search — no hardware ctz in
         the stdlib *)
      let b = ref 0 and x = ref lsb in
      if !x land 0xFFFFFFFF = 0 then begin b := !b + 32; x := !x lsr 32 end;
      if !x land 0xFFFF = 0 then begin b := !b + 16; x := !x lsr 16 end;
      if !x land 0xFF = 0 then begin b := !b + 8; x := !x lsr 8 end;
      if !x land 0xF = 0 then begin b := !b + 4; x := !x lsr 4 end;
      if !x land 0x3 = 0 then begin b := !b + 2; x := !x lsr 2 end;
      if !x land 0x1 = 0 then b := !b + 1;
      f (base + !b);
      w := !w land lnot lsb
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list ~width l =
  let t = create ~width in
  List.iter (fun i -> add t i) l;
  t
