(** Prefix/suffix sums and sorted-array search.

    The fast BOSCO best-response kernel reduces Eq. 16/17's per-claim sums
    over the opponent's choice set to reads of precomputed suffix sums:
    the set [{j : v_y(j) >= -v}] of a sorted choice set is a suffix, so
    one O(W) scan plus a binary search per claim replaces the O(W²)
    rescan.  Suffix sums rather than prefix-sum differences because the
    latter cancel: a suffix of tiny probability mass would inherit the
    absolute error of the total, while a tail-up accumulation of
    non-negative terms keeps full relative precision. *)

val exclusive_sums : float array -> float array
(** [exclusive_sums xs] has length [n + 1] with element [i] the sum of
    [xs.(0) .. xs.(i-1)] (element 0 is [0.]), accumulated left to right. *)

val exclusive_sums_into : dst:float array -> float array -> unit
(** Allocation-free {!exclusive_sums}: fills [dst.(0 .. n)] and ignores any
    further elements, so workspaces can reuse one oversized buffer.
    @raise Invalid_argument if [dst] is shorter than [n + 1]. *)

val suffix_sums : float array -> float array
(** [suffix_sums xs] has length [n + 1] with element [i] the sum of
    [xs.(i) .. xs.(n-1)] (element [n] is [0.]), accumulated right to
    left. *)

val suffix_sums_into : dst:float array -> float array -> unit
(** Allocation-free {!suffix_sums}; fills [dst.(0 .. n)].
    @raise Invalid_argument if [dst] is shorter than [n + 1]. *)

val range_sum : float array -> int -> int -> float
(** [range_sum sums i j] is the sum of the underlying elements
    [i .. j-1], i.e. [sums.(j) -. sums.(i)].
    @raise Invalid_argument unless [0 <= i <= j < length sums]. *)

val lower_bound : ?lo:int -> ?hi:int -> float array -> float -> int
(** [lower_bound xs x] is the smallest index [i] (within [\[lo, hi)],
    default the whole array) with [xs.(i) >= x], or [hi] if there is none;
    [xs] must be sorted ascending on that range.
    @raise Invalid_argument on a bad range. *)
