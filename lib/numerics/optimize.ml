let invphi = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section_max ?(tol = 1e-9) f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  while !b -. !a > tol do
    if !fc > !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let grid_max ~n f a b =
  if n <= 0 then invalid_arg "Optimize.grid_max: n <= 0";
  let h = (b -. a) /. float_of_int n in
  let best_x = ref a and best_v = ref (f a) in
  for i = 1 to n do
    let x = a +. (h *. float_of_int i) in
    let v = f x in
    if v > !best_v then begin
      best_x := x;
      best_v := v
    end
  done;
  (!best_x, !best_v)

type box = (float * float) array

let project box p =
  Array.mapi
    (fun i x ->
      let lo, hi = box.(i) in
      Float.max lo (Float.min hi x))
    p

let nelder_mead ?(max_iter = 2000) ?(tol = 1e-10) ~f ~box ~start () =
  let n = Array.length start in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty start";
  let eval p = f (project box p) in
  (* Initial simplex: start plus one perturbed vertex per axis. *)
  let vertex i =
    if i = 0 then Array.copy start
    else
      let p = Array.copy start in
      let lo, hi = box.(i - 1) in
      let step = Float.max 1e-6 (0.1 *. (hi -. lo)) in
      p.(i - 1) <- p.(i - 1) +. step;
      p
  in
  let simplex = Array.init (n + 1) vertex in
  let values = Array.map eval simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> compare values.(j) values.(i)) idx;
    (* descending: idx.(0) best for maximization *)
    let s = Array.map (fun i -> simplex.(i)) idx in
    let v = Array.map (fun i -> values.(i)) idx in
    Array.blit s 0 simplex 0 (n + 1);
    Array.blit v 0 values 0 (n + 1)
  in
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* all vertices except the worst (index n after ordering) *)
      for k = 0 to n - 1 do
        c.(k) <- c.(k) +. (simplex.(i).(k) /. float_of_int n)
      done
    done;
    c
  in
  let combine a alpha b beta =
    Array.init n (fun k -> (alpha *. a.(k)) +. (beta *. b.(k)))
  in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && !iter < max_iter do
    incr iter;
    order ();
    if Float.abs (values.(0) -. values.(n)) <= tol then continue := false
    else begin
      let c = centroid () in
      let worst = simplex.(n) in
      let refl = combine c 2.0 worst (-1.0) in
      let frefl = eval refl in
      if frefl > values.(0) then begin
        (* expansion *)
        let exp_p = combine c 3.0 worst (-2.0) in
        let fexp = eval exp_p in
        if fexp > frefl then begin
          simplex.(n) <- exp_p;
          values.(n) <- fexp
        end
        else begin
          simplex.(n) <- refl;
          values.(n) <- frefl
        end
      end
      else if frefl > values.(n - 1) then begin
        simplex.(n) <- refl;
        values.(n) <- frefl
      end
      else begin
        (* contraction *)
        let con = combine c 0.5 worst 0.5 in
        let fcon = eval con in
        if fcon > values.(n) then begin
          simplex.(n) <- con;
          values.(n) <- fcon
        end
        else
          (* shrink toward best *)
          for i = 1 to n do
            simplex.(i) <- combine simplex.(0) 0.5 simplex.(i) 0.5;
            values.(i) <- eval simplex.(i)
          done
      end
    end
  done;
  order ();
  (project box simplex.(0), values.(0))

let multistart_nelder_mead ?(starts_per_dim = 3) ?(max_iter = 2000) ~f ~box ()
    =
  let n = Array.length box in
  if n = 0 then invalid_arg "Optimize.multistart_nelder_mead: empty box";
  let spd = Stdlib.max 2 starts_per_dim in
  (* Lattice of starts: each coordinate takes spd values across its range. *)
  let coord_value i j =
    let lo, hi = box.(i) in
    lo +. ((hi -. lo) *. (float_of_int j +. 0.5) /. float_of_int spd)
  in
  (* Lattice size spd^n as a capped integer product: int_of_float (spd **
     n) overflows (and saturates arbitrarily) for high-dimensional boxes,
     whereas stopping the product at the cap is exact for every n. *)
  let lattice_cap = 243 in
  let total =
    let rec go acc i =
      if i = 0 then acc
      else if acc > lattice_cap / spd then lattice_cap + 1
      else go (acc * spd) (i - 1)
    in
    go 1 n
  in
  (* Cap the lattice to keep high-dimensional problems tractable; fall back
     to axis midpoints plus the box center when the full grid is too big. *)
  let starts =
    if total <= lattice_cap then
      List.init total (fun flat ->
          let p = Array.make n 0.0 in
          let rest = ref flat in
          for i = 0 to n - 1 do
            p.(i) <- coord_value i (!rest mod spd);
            rest := !rest / spd
          done;
          p)
    else
      let center = Array.map (fun (lo, hi) -> 0.5 *. (lo +. hi)) box in
      center
      :: List.concat
           (List.init n (fun i ->
                List.init spd (fun j ->
                    let p = Array.copy center in
                    p.(i) <- coord_value i j;
                    p)))
  in
  let best = ref None in
  List.iter
    (fun start ->
      let x, v = nelder_mead ~max_iter ~f ~box ~start () in
      match !best with
      | Some (_, bv) when bv >= v -> ()
      | _ -> best := Some (x, v))
    starts;
  match !best with
  | Some r -> r
  | None -> assert false
