let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  check_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

(* Monomorphic Float.compare keeps the sort fast (no polymorphic-compare
   dispatch per element) and gives NaN a defined position — first — so
   one O(1) post-sort check rejects NaN input instead of silently
   returning order-dependent quantiles. *)
let sorted_copy name xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if Float.is_nan sorted.(0) then
    invalid_arg ("Stats." ^ name ^ ": NaN input");
  sorted

let percentile xs p =
  check_nonempty "percentile" xs;
  (* NaN slips through the range comparison (both compare false), then
     propagates through [rank] and truncates to index 0 — reject it
     explicitly. *)
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p out of range";
  let sorted = sorted_copy "percentile" xs in
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = percentile xs 50.0

type cdf = { sorted : float array }

let ecdf xs =
  check_nonempty "ecdf" xs;
  { sorted = sorted_copy "ecdf" xs }

(* Number of elements <= x, via binary search for the rightmost such index. *)
let count_le sorted x =
  let n = Array.length sorted in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if sorted.(mid) <= x then go (mid + 1) hi else go lo mid
  in
  go 0 n

let cdf_at c x =
  float_of_int (count_le c.sorted x) /. float_of_int (Array.length c.sorted)

let survival_at c x = 1.0 -. cdf_at c x

let cdf_points c =
  let n = Array.length c.sorted in
  (* keep only the last occurrence of each value: its index carries the
     full cumulative count *)
  let rec collect i acc =
    if i < 0 then acc
    else if i < n - 1 && c.sorted.(i) = c.sorted.(i + 1) then
      collect (i - 1) acc
    else
      collect (i - 1)
        ((c.sorted.(i), float_of_int (i + 1) /. float_of_int n) :: acc)
  in
  collect (n - 1) []

let histogram ~bins xs =
  check_nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi
    (fun i count ->
      let cell_lo = lo +. (width *. float_of_int i) in
      (cell_lo, cell_lo +. width, count))
    counts

let fraction_where pred xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let hits = Array.fold_left (fun a x -> if pred x then a + 1 else a) 0 xs in
    float_of_int hits /. float_of_int n
