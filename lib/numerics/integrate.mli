(** Numerical quadrature.

    Used to compute expected after-negotiation utilities and the expected
    Nash bargaining product (Eq. 14 and Eq. 19 of the paper), which integrate
    piecewise-smooth functions against utility densities. *)

val trapezoid : n:int -> (float -> float) -> float -> float -> float
(** [trapezoid ~n f a b] integrates [f] over [\[a, b\]] with [n] equal
    panels. @raise Invalid_argument if [n <= 0]. *)

val adaptive_simpson :
  ?epsabs:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** [adaptive_simpson f a b] integrates [f] over [\[a, b\]] by recursive
    Simpson quadrature with absolute tolerance [epsabs] (default [1e-9]) and
    recursion limit [max_depth] (default 40). Returns 0 when [a = b];
    integrates with a sign flip when [a > b]. *)

val grid_2d :
  nx:int ->
  ny:int ->
  (float -> float -> float) ->
  float * float ->
  float * float ->
  float
(** [grid_2d ~nx ~ny f (ax, bx) (ay, by)] integrates [f] over the rectangle
    by the midpoint rule on an [nx × ny] grid. Exact enough for the
    piecewise-bilinear integrands arising in Eq. 19 when combined with the
    cell counts used in the experiments. *)
