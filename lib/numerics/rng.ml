type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

(* Top 53 bits give a uniform dyadic rational in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let limit = Int64.(sub (div min_int b) 1L |> neg |> mul b) in
  let rec loop () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    if Int64.unsigned_compare raw limit < 0 then
      Int64.to_int (Int64.unsigned_rem raw b)
    else loop ()
  in
  loop ()

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate <= 0";
  let u = 1.0 -. float t in
  -.log u /. rate

let gaussian t mu sigma =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let pareto t alpha x_min =
  if alpha <= 0.0 || x_min <= 0.0 then invalid_arg "Rng.pareto";
  let u = 1.0 -. float t in
  x_min /. (u ** (1.0 /. alpha))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: only the first k slots need to be randomized. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
